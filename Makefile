GO ?= go

.PHONY: all build fmt vet lint test race check smoke determinism \
	bench-quick bench-baseline campaign serve-campaign train-campaign

# The full CI gate: every ci.yml job body is a target here, so `make all`
# locally reproduces exactly what CI enforces.
all: check smoke determinism bench-quick

build:
	$(GO) build ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint: fmt vet

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The core CI gate: formatting + vet + build + race-enabled tests.
check: lint build race

# The campaign/checkpoint smoke legs CI runs beyond `check`.
smoke:
	$(GO) test -race -count=1 ./internal/serve/...
	$(GO) run ./cmd/serve-campaign -quick
	$(GO) test -count=1 ./internal/ckpt/... ./internal/chaos/...
	$(GO) run ./cmd/train-campaign -smoke

# Campaign outputs must be byte-identical at every tile-engine worker
# count (the internal/par determinism contract).
determinism:
	$(GO) run ./cmd/serve-campaign -quick -workers 1 > /tmp/serve.w1.txt
	$(GO) run ./cmd/serve-campaign -quick -workers 4 > /tmp/serve.w4.txt
	cmp /tmp/serve.w1.txt /tmp/serve.w4.txt
	$(GO) run ./cmd/train-campaign -smoke -workers 1 > /tmp/train.w1.txt
	$(GO) run ./cmd/train-campaign -smoke -workers 4 > /tmp/train.w4.txt
	cmp /tmp/train.w1.txt /tmp/train.w4.txt

# Quick benchmark pass: writes a fresh BENCH_PR4.json next to the committed
# baseline (as BENCH_PR4.ci.json), gates normalized regressions at 25%, and
# requires the headline 512-wide forward speedup to hold.
bench-quick:
	$(GO) run ./cmd/bench-report -benchtime 0.3s -workers 4 \
		-out BENCH_PR4.ci.json -baseline BENCH_PR4.json \
		-tolerance 0.25 -min-speedup 2.0

# Regenerate the committed benchmark baseline (slow, full benchtime).
bench-baseline:
	$(GO) run ./cmd/bench-report -benchtime 1s -workers 4 -out BENCH_PR4.json

# Regenerate the R1 fault-campaign tables (full size, fixed seed).
campaign:
	$(GO) run ./cmd/fault-campaign -seed 1234

# Regenerate the R2 self-healing service tables (full size, fixed seed).
serve-campaign:
	$(GO) run ./cmd/serve-campaign -seed 1234

# Regenerate the R3 crash-safe training table (full size, fixed seed).
train-campaign:
	$(GO) run ./cmd/train-campaign -seed 1234
