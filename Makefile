GO ?= go

.PHONY: all build fmt vet lint test race check ci-sync smoke cluster-smoke \
	determinism obs-smoke bench-quick bench-baseline campaign \
	serve-campaign train-campaign cluster-campaign

# The full CI gate: every ci.yml job body is a target here, so `make all`
# locally reproduces exactly what CI enforces.
all: check smoke cluster-smoke determinism obs-smoke bench-quick

build:
	$(GO) build ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint: fmt vet

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci-sync proves the promise the ci.yml header makes: every workflow job
# body is exactly a `make` target that exists here, so the Makefile and CI
# can't drift.
ci-sync:
	$(GO) run ./cmd/ci-sync

# The core CI gate: formatting + vet + build + race-enabled tests + the
# CI/Makefile drift check.
check: lint build race ci-sync

# The campaign/checkpoint smoke legs CI runs beyond `check`.
smoke:
	$(GO) test -race -count=1 ./internal/serve/...
	$(GO) run ./cmd/serve-campaign -quick
	$(GO) test -count=1 ./internal/ckpt/... ./internal/chaos/...
	$(GO) run ./cmd/train-campaign -smoke

# Fleet smoke: the R6 cluster campaign's acceptance tests (dominance,
# request accounting, partition staleness, placement churn) plus a seeded
# quick campaign through the real binary.
cluster-smoke:
	$(GO) test -count=1 ./internal/cluster/... ./internal/faults/...
	$(GO) run ./cmd/cluster-campaign -quick

# Campaign outputs must be byte-identical at every tile-engine worker
# count (the internal/par determinism contract). The stable metric and
# trace dumps (-metrics-out/-trace-out) are under the same contract: the
# simulator feeds the registry from virtual time, never the wall clock.
determinism:
	$(GO) run ./cmd/serve-campaign -quick -workers 1 \
		-metrics-out /tmp/serve.w1.metrics -trace-out /tmp/serve.w1.traces > /tmp/serve.w1.txt
	$(GO) run ./cmd/serve-campaign -quick -workers 4 \
		-metrics-out /tmp/serve.w4.metrics -trace-out /tmp/serve.w4.traces > /tmp/serve.w4.txt
	cmp /tmp/serve.w1.txt /tmp/serve.w4.txt
	cmp /tmp/serve.w1.metrics /tmp/serve.w4.metrics
	cmp /tmp/serve.w1.traces /tmp/serve.w4.traces
	$(GO) run ./cmd/serve-campaign -quick -pipeline mlp -batch 4 -workers 1 \
		-metrics-out /tmp/serve.b4.w1.metrics > /tmp/serve.b4.w1.txt
	$(GO) run ./cmd/serve-campaign -quick -pipeline mlp -batch 4 -workers 4 \
		-metrics-out /tmp/serve.b4.w4.metrics > /tmp/serve.b4.w4.txt
	cmp /tmp/serve.b4.w1.txt /tmp/serve.b4.w4.txt
	cmp /tmp/serve.b4.w1.metrics /tmp/serve.b4.w4.metrics
	$(GO) run ./cmd/train-campaign -smoke -workers 1 \
		-metrics-out /tmp/train.w1.metrics > /tmp/train.w1.txt
	$(GO) run ./cmd/train-campaign -smoke -workers 4 \
		-metrics-out /tmp/train.w4.metrics > /tmp/train.w4.txt
	cmp /tmp/train.w1.txt /tmp/train.w4.txt
	cmp /tmp/train.w1.metrics /tmp/train.w4.metrics
	$(GO) run ./cmd/cluster-campaign -quick -workers 1 \
		-metrics-out /tmp/cluster.w1.metrics > /tmp/cluster.w1.txt
	$(GO) run ./cmd/cluster-campaign -quick -workers 4 \
		-metrics-out /tmp/cluster.w4.metrics > /tmp/cluster.w4.txt
	cmp /tmp/cluster.w1.txt /tmp/cluster.w4.txt
	cmp /tmp/cluster.w1.metrics /tmp/cluster.w4.metrics
	$(GO) run ./cmd/bench-report -quick -workers 1 > /tmp/bench.w1.txt
	$(GO) run ./cmd/bench-report -quick -workers 4 > /tmp/bench.w4.txt
	cmp /tmp/bench.w1.txt /tmp/bench.w4.txt

# Observability smoke: boot the campaign with the HTTP endpoint up and probe
# /metrics, /traces and /debug/pprof/profile in-process; diff the stable
# metric dumps across worker counts (fault campaign leg); and bound the
# instrumented tile engine's overhead at 5%. The overhead check is paired —
# a fresh uninstrumented report taken on the same machine is the baseline —
# because cross-machine noise against the committed BENCH.json dwarfs a
# 5% bound even after calibration normalization. The absolute perf budgets
# are off here: this leg only bounds instrumentation overhead.
obs-smoke:
	$(GO) run ./cmd/serve-campaign -quick -pipeline mlp \
		-obs-addr 127.0.0.1:0 -obs-selfcheck > /tmp/obs.selfcheck.txt
	grep "obs-selfcheck: GET /metrics" /tmp/obs.selfcheck.txt
	$(GO) run ./cmd/fault-campaign -quick -workers 1 -metrics-out /tmp/faults.w1.metrics > /dev/null
	$(GO) run ./cmd/fault-campaign -quick -workers 4 -metrics-out /tmp/faults.w4.metrics > /dev/null
	cmp /tmp/faults.w1.metrics /tmp/faults.w4.metrics
	$(GO) run ./cmd/bench-report -benchtime 0.3s -workers 4 -budgets=false \
		-out /tmp/bench.noobs.json
	$(GO) run ./cmd/bench-report -obs -benchtime 0.3s -workers 4 -budgets=false \
		-out /tmp/bench.obs.json -baseline /tmp/bench.noobs.json -tolerance 0.05

# Quick benchmark pass: writes a fresh report next to the committed
# baseline (as BENCH.ci.json), enforces the absolute perf budgets (allocs
# ≤2 on every engine benchmark, update-512 ≥2x, batched forward-1024
# ≥2.24x), and gates regressions at 35% against the committed BENCH.json
# (a regression must show in both raw and calibration-normalized cost;
# 35% because the shared runners' DRAM-vs-cache regime swings more than
# 25% between windows on memory-bound benchmarks, which the cache-resident
# calibration benchmark cannot normalize away — real kernel regressions
# this gate exists for measure well beyond 35%).
# The single-sample forward-512 speedup is memory-bound and noisy on
# shared runners, so -min-speedup is a coarse 1.5x sanity floor; the
# enforced headline floors live in bench-report's budget checks.
#
# Three-strike retry: timing on a shared runner has transient slow spells
# that no single measurement survives; a genuine budget violation or code
# regression is persistent and fails all three attempts, each loudly via
# the named-error machinery.
BENCH_QUICK = $(GO) run ./cmd/bench-report -benchtime 0.3s -workers 4 \
	-out BENCH.ci.json -baseline BENCH.json \
	-tolerance 0.35 -min-speedup 1.5
bench-quick:
	$(BENCH_QUICK) || $(BENCH_QUICK) || $(BENCH_QUICK)

# Regenerate the committed benchmark baseline (slow, full benchtime).
bench-baseline:
	$(GO) run ./cmd/bench-report -benchtime 1s -workers 4 -out BENCH.json

# Regenerate the R1 fault-campaign tables (full size, fixed seed).
campaign:
	$(GO) run ./cmd/fault-campaign -seed 1234

# Regenerate the R2 self-healing service tables (full size, fixed seed).
serve-campaign:
	$(GO) run ./cmd/serve-campaign -seed 1234

# Regenerate the R3 crash-safe training table (full size, fixed seed).
train-campaign:
	$(GO) run ./cmd/train-campaign -seed 1234

# Regenerate the R6 cluster-fleet tables (full size, fixed seed).
cluster-campaign:
	$(GO) run ./cmd/cluster-campaign -seed 1234
