GO ?= go

.PHONY: all build vet test race check campaign serve-campaign train-campaign

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The gate CI runs: vet + build + race-enabled tests.
check: vet build race

# Regenerate the R1 fault-campaign tables (full size, fixed seed).
campaign:
	$(GO) run ./cmd/fault-campaign -seed 1234

# Regenerate the R2 self-healing service tables (full size, fixed seed).
serve-campaign:
	$(GO) run ./cmd/serve-campaign -seed 1234

# Regenerate the R3 crash-safe training table (full size, fixed seed).
train-campaign:
	$(GO) run ./cmd/train-campaign -seed 1234
