// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper (regenerating the corresponding rows/series on the
// first iteration, then timing the experiment), plus ablation benchmarks
// for the design choices called out in DESIGN.md §5.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-size tables (the EXPERIMENTS.md numbers) come from cmd/repro-all;
// the benchmarks use the quick variants so the suite stays fast.
package repro

import (
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/analog"
	"repro/internal/cam"
	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/mann"
	"repro/internal/par"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/recsys"
	"repro/internal/rngutil"
	"repro/internal/tensor"
	"repro/internal/xmann"
)

// benchExperiment prints the experiment's table once, then times repeated
// quick runs.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := core.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	fmt.Printf("\n--- %s: %s ---\n", e.ID, e.Title)
	if err := e.Run(os.Stdout, 1234, true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, 1234, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkC0ReducedPrecision(b *testing.B)       { benchExperiment(b, "C0") }
func BenchmarkC7InferenceEfficiency(b *testing.B)    { benchExperiment(b, "C7") }
func BenchmarkF1CrossbarCycles(b *testing.B)         { benchExperiment(b, "F1") }
func BenchmarkF2RRAMPulseResponse(b *testing.B)      { benchExperiment(b, "F2") }
func BenchmarkC1DeviceSpecSweep(b *testing.B)        { benchExperiment(b, "C1") }
func BenchmarkC2PCMTraining(b *testing.B)            { benchExperiment(b, "C2") }
func BenchmarkC3TikiTaka(b *testing.B)               { benchExperiment(b, "C3") }
func BenchmarkT1XMANNSuite(b *testing.B)             { benchExperiment(b, "T1") }
func BenchmarkC4MetricAccuracy(b *testing.B)         { benchExperiment(b, "C4") }
func BenchmarkF5CosineVsLSH(b *testing.B)            { benchExperiment(b, "F5") }
func BenchmarkC5TCAMVsGPU(b *testing.B)              { benchExperiment(b, "C5") }
func BenchmarkC6FeFETTCAM(b *testing.B)              { benchExperiment(b, "C6") }
func BenchmarkT2RecsysCharacterization(b *testing.B) { benchExperiment(b, "T2") }

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationPulseVsExpected compares the stochastic pulse-train
// update against the expected-value update: accuracy should match while
// costs differ.
func BenchmarkAblationPulseVsExpected(b *testing.B) {
	cfg := analog.DefaultExperiment()
	cfg.Data = dataset.DigitsConfig{Classes: 6, Dim: 16, PerClass: 60, Noise: 0.5, Separation: 1}
	cfg.Hidden = []int{12}
	cfg.Epochs = 6
	for _, mode := range []struct {
		name string
		m    crossbar.UpdateMode
	}{{"stochastic", crossbar.UpdateStochastic}, {"expected", crossbar.UpdateExpected}} {
		b.Run(mode.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				opts := analog.DefaultOptions(crossbar.Ideal(), analog.PlainSGD)
				opts.Cfg.Update = mode.m
				res, _ := analog.RunDigitsAnalog(opts, cfg)
				acc = res.TestAccuracy
			}
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// BenchmarkAblationTTTransfer sweeps the Tiki-Taka transfer interval.
func BenchmarkAblationTTTransfer(b *testing.B) {
	cfg := analog.DefaultExperiment()
	cfg.Data = dataset.DigitsConfig{Classes: 6, Dim: 16, PerClass: 60, Noise: 0.5, Separation: 1}
	cfg.Hidden = []int{12}
	cfg.Epochs = 6
	asym := &crossbar.SoftBoundsModel{P: crossbar.SoftBoundsParams{
		SlopeUp: 0.002, SlopeDown: 0.012, WMin: -1, WMax: 1,
	}}
	for _, every := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("every-%d", every), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				opts := analog.DefaultOptions(asym, analog.TikiTaka)
				opts.TTTransferEvery = every
				res, _ := analog.RunDigitsAnalog(opts, cfg)
				acc = res.TestAccuracy
			}
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// BenchmarkAblationLSHPlanes sweeps the LSH signature width.
func BenchmarkAblationLSHPlanes(b *testing.B) {
	u := dataset.NewFewShotUniverse(dataset.DefaultFewShot(), rngutil.New(7))
	eval := mann.EvalConfig{NWay: 5, KShot: 1, NQuery: 2, Episodes: 15, MemoryEntries: 128, Seed: 11}
	for _, planes := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("planes-%d", planes), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = mann.EvaluateFewShot(u, mann.NewLSHRetriever(u.Cfg.Dim, planes, rngutil.New(3)), eval)
			}
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// BenchmarkAblationTCAMGeometry sweeps bank height: taller banks load the
// search-line drivers, flatter banks pay more combine steps.
func BenchmarkAblationTCAMGeometry(b *testing.B) {
	for _, rows := range []int{256, 512, 1024, 4096} {
		b.Run(fmt.Sprintf("bankrows-%d", rows), func(b *testing.B) {
			geo := cam.DefaultGeometry()
			geo.BankRows = rows
			e := cam.Engine{Tech: cam.CMOS16T(), Geo: geo}
			var lat float64
			for i := 0; i < b.N; i++ {
				lat = e.SearchCost(8192, 128).Latency
			}
			b.ReportMetric(lat*1e9, "ns/search")
		})
	}
}

// BenchmarkAblationEmbeddingCache sweeps cache capacity under Zipf skew.
func BenchmarkAblationEmbeddingCache(b *testing.B) {
	for _, kb := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("cache-%dKB", kb), func(b *testing.B) {
			var hr float64
			for i := 0; i < b.N; i++ {
				hr = recsys.EmbeddingCacheStudy(1_000_000, 64, kb<<10, 1.2, 20000, 5)
			}
			b.ReportMetric(hr, "hitrate")
		})
	}
}

// --- Microbenchmarks of the hot substrate paths ---

func BenchmarkMicroMatVec256(b *testing.B) {
	rng := rngutil.New(1)
	m := tensor.NewMatrix(256, 256)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := make(tensor.Vector, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(x)
	}
}

func BenchmarkMicroCrossbarForward(b *testing.B) {
	a := crossbar.NewArray(256, 256, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(1))
	x := make(tensor.Vector, 256)
	x.Fill(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Forward(x)
	}
}

func BenchmarkMicroCrossbarStochasticUpdate(b *testing.B) {
	a := crossbar.NewArray(256, 256, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(1))
	u := make(tensor.Vector, 256)
	v := make(tensor.Vector, 256)
	rng := rngutil.New(2)
	for i := range u {
		u[i] = rng.Uniform(-1, 1)
		v[i] = rng.Uniform(-1, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Update(0.01, u, v)
	}
}

func BenchmarkMicroTCAMBestMatch(b *testing.B) {
	rng := rngutil.New(3)
	tc := cam.New(128)
	for r := 0; r < 512; r++ {
		tc.Store(cam.RowFromUint(rng.Uint64(), 128))
	}
	q := cam.RowFromUint(rng.Uint64(), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.BestMatch(q)
	}
}

func BenchmarkMicroLSHSign(b *testing.B) {
	rng := rngutil.New(4)
	h := lsh.NewHasher(64, 512, rng)
	v := make(tensor.Vector, 64)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sign(v)
	}
}

func BenchmarkMicroNTMSoftRead(b *testing.B) {
	m := mann.NewNTMMemory(1024, 64)
	w := make(tensor.Vector, 1024)
	w.Fill(1.0 / 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(w)
	}
}

func BenchmarkMicroRecsysInference(b *testing.B) {
	rng := rngutil.New(5)
	m := recsys.NewModel(recsys.RMCSmall(), rng.Child("model"))
	log := dataset.NewClickLog(dataset.DefaultClickLog(), 64, rng.Child("log"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(log.Samples[i%len(log.Samples)])
	}
}

func BenchmarkMicroXMANNSimilarityFunctional(b *testing.B) {
	rng := rngutil.New(6)
	mem := tensor.NewMatrix(64, 32)
	for i := range mem.Data {
		mem.Data[i] = rng.Uniform(0.05, 0.9)
	}
	dm := xmann.NewDistributedMemory(mem, 32, rng.Child("dm"))
	key := make(tensor.Vector, 32)
	key.Fill(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dm.Similarity(key, 5)
	}
}

func BenchmarkMicroQuantizeVec(b *testing.B) {
	q := quant.New(4, 0.4)
	rng := rngutil.New(7)
	v := make(tensor.Vector, 64)
	for i := range v {
		v[i] = rng.NormFloat64() * 0.2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.QuantizeVec(v)
	}
}

func BenchmarkMicroGPUCostModel(b *testing.B) {
	g := perfmodel.DefaultGPU()
	for i := 0; i < b.N; i++ {
		g.MatVec(4096, 128)
	}
}

// --- tile-engine kernels (serial reference vs internal/par) ---
//
// The machine-readable version of these numbers — at 128/512/1024 with the
// regression gate — comes from cmd/bench-report (BENCH_PR4.json); these
// keep the comparison visible in the ordinary `go test -bench` flow.

func kernelFixture(n int) (*tensor.Matrix, tensor.Vector) {
	rng := rngutil.New(uint64(9000 + n))
	m := tensor.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := make(tensor.Vector, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return m, x
}

func BenchmarkKernelForwardSerial512(b *testing.B) {
	m, x := kernelFixture(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(x)
	}
}

func BenchmarkKernelForwardParallel512(b *testing.B) {
	defer par.SetWorkers(0)
	par.SetWorkers(4)
	m, x := kernelFixture(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.MatVec(m, x)
	}
}

func BenchmarkKernelBackwardSerial512(b *testing.B) {
	m, x := kernelFixture(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVecT(x)
	}
}

func BenchmarkKernelBackwardParallel512(b *testing.B) {
	defer par.SetWorkers(0)
	par.SetWorkers(4)
	m, x := kernelFixture(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.MatVecT(m, x)
	}
}
