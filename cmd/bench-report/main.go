// Command bench-report measures the serial reference kernels against the
// internal/par tile engine at 128/512/1024-wide arrays and writes the
// results as machine-readable JSON (BENCH.json) — the repository's
// performance baseline and perf-budget gate.
//
// "Serial" is the scalar reference path: tensor.Matrix.MatVec / MatVecT
// for the MVMs (one goroutine, one accumulator, ascending index order) and
// the generic per-crosspoint update (Config.ReferenceUpdate, one worker)
// for the pulse updates. "Parallel" is the engine path the simulator runs
// now (crossbar.Array ops at the requested -workers, specialized update
// kernel, sample-blocked batched forward). Serial and parallel are
// bit-identical in output; this report tracks only their speed.
//
// Beyond the regression gate (-baseline; a regression must show in both
// raw ns and the calibration-normalized cost, see gate), the report
// enforces absolute perf budgets (-budgets, on by default):
//
//   - allocs/op ≤ 2 on every engine-path benchmark — the zero-alloc
//     dispatch contract (a hot kernel pays for its own closure and output,
//     never for dispatch);
//   - update-512 parallel/serial speedup ≥ 2× — the RPU parallel-update
//     claim (Gokmen & Vlasov 2016) as a continuously enforced invariant;
//   - batched forward-1024 speedup ≥ 2.24× — the PR 4 headline number,
//     carried forward to the sample-blocked batch path at 1024.
//
// Budget and gate failures exit non-zero with named errors; a malformed or
// legacy-named baseline fails loudly instead of being skipped.
//
// With -quick the tool emits a deterministic kernel-checksum table instead
// of timings: every hot kernel runs once on fixed seeded inputs and prints
// an FNV-1a checksum of its outputs. Timings vary run to run; the
// checksums may not — the determinism CI leg byte-diffs this table across
// -workers values.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the BENCH.json schema.
type Report struct {
	Schema     string `json:"schema"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CalibrationNsPerOp is the serial 256×256 MVM on this machine; the
	// regression gate divides every benchmark by it so reports taken on
	// different hardware remain comparable.
	CalibrationNsPerOp float64  `json:"calibration_ns_per_op"`
	Benchmarks         []Result `json:"benchmarks"`
	// SpeedupForward512 is serial/parallel ns at 512 — the headline number.
	SpeedupForward512 float64 `json:"speedup_forward_512"`
	// SpeedupUpdate512 is the reference-update/engine-update ratio at 512 —
	// the parallel stochastic update win the update budget floors.
	SpeedupUpdate512 float64 `json:"speedup_update_512"`
	// SpeedupForwardBatch1024 is the per-batch serial/blocked ratio at 1024
	// over batchSamples samples — the GEMM-style blocking win.
	SpeedupForwardBatch1024 float64 `json:"speedup_forward_batch_1024"`
	// SpeedupUpdateBatch512 is the K-sequential-updates/fused-UpdateBatch
	// ratio at 512 — what one pass over device state buys over K passes.
	SpeedupUpdateBatch512 float64 `json:"speedup_update_batch_512"`
	// SpeedupServeBatch is the end-to-end live-service ratio: an open-loop
	// saturating workload through serve.Service with single dispatch vs
	// dynamic request batching on the same digital pipeline.
	SpeedupServeBatch float64 `json:"speedup_serve_batch"`
	// ObsEnabled records whether the run measured the instrumented tile
	// engine (-obs); overhead reports must not be committed as the baseline.
	ObsEnabled bool `json:"obs_enabled,omitempty"`
}

// Perf budgets: absolute floors and ceilings the committed baseline must
// meet on every machine, independent of the relative regression gate.
const (
	// allocBudget caps allocs/op on every engine-path benchmark (closure +
	// output vector; dispatch itself must stay allocation-free).
	allocBudget = 2
	// updateSpeedupFloor is the minimum update-512 engine speedup over the
	// generic per-crosspoint reference path.
	updateSpeedupFloor = 2.0
	// batchSpeedupFloor is the minimum batched forward-1024 speedup — the
	// PR 4 headline (2.24×), which the sample-blocked path must sustain at
	// the width where the single-sample kernel goes memory-bound.
	batchSpeedupFloor = 2.24
	// batchSamples is the batch width of the batched-forward benchmarks.
	batchSamples = 8
	// updateBatchK is the block size of the fused-update benchmarks.
	updateBatchK = 8
	// serveBatchSpeedupFloor is the minimum live-service batching win: the
	// batched service must move ≥1.5× the requests per second of single
	// dispatch under the open-loop saturating workload.
	serveBatchSpeedupFloor = 1.5
)

// benchReps is how many times each benchmark repeats; the fastest rep is
// kept. Min-of-N is the standard noise-robust cost estimator on a shared
// machine: external load only ever slows a run down, so the minimum is the
// best available estimate of the true cost. Five reps because the shared
// runners see multi-second bandwidth storms: three one-second reps can sit
// entirely inside one, and the regression gate then compares a storm
// minimum against a calm baseline minimum.
const benchReps = 5

func measure(name string, f func(b *testing.B)) Result {
	best := Result{Name: name}
	for rep := 0; rep < benchReps; rep++ {
		r := testing.Benchmark(f)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if rep == 0 || ns < best.NsPerOp {
			best.NsPerOp = ns
			best.AllocsPerOp = r.AllocsPerOp()
			best.BytesPerOp = r.AllocedBytesPerOp()
		}
	}
	return best
}

// measurePair measures a serial/parallel twin interleaved: every rep times
// the serial then the parallel closure back to back, so both sides of the
// ratio see the same machine regime. The returned speedup is the median of
// the per-rep ratios — a slow spell lands on both sides of its rep and
// mostly cancels, instead of skewing whichever independently-measured side
// it happened to hit. The budgeted speedup floors gate these medians.
func measurePair(nameS string, fS func(b *testing.B), nameP string, fP func(b *testing.B)) (Result, Result, float64) {
	s := Result{Name: nameS}
	p := Result{Name: nameP}
	ratios := make([]float64, 0, benchReps)
	for rep := 0; rep < benchReps; rep++ {
		rs := testing.Benchmark(fS)
		rp := testing.Benchmark(fP)
		nsS := float64(rs.T.Nanoseconds()) / float64(rs.N)
		nsP := float64(rp.T.Nanoseconds()) / float64(rp.N)
		if rep == 0 || nsS < s.NsPerOp {
			s.NsPerOp = nsS
			s.AllocsPerOp, s.BytesPerOp = rs.AllocsPerOp(), rs.AllocedBytesPerOp()
		}
		if rep == 0 || nsP < p.NsPerOp {
			p.NsPerOp = nsP
			p.AllocsPerOp, p.BytesPerOp = rp.AllocsPerOp(), rp.AllocedBytesPerOp()
		}
		ratios = append(ratios, nsS/nsP)
	}
	sort.Float64s(ratios)
	return s, p, ratios[len(ratios)/2]
}

// measurePairMin measures an interleaved pair like measurePair but over
// reps repetitions, and returns the ratio of the per-arm minima instead of
// the median per-rep ratio. The whole-service pair needs this: one op runs
// hundreds of milliseconds, so each rep spans seconds and a noise spell no
// longer lands on both sides of the same rep — it corrupts one arm of a
// rep and the per-rep ratio with it. The per-arm minimum discards slow
// spells on each side independently (the same min-of-N argument measure
// makes), and the ratio of minima compares the two clean costs.
func measurePairMin(reps int, nameS string, fS func(b *testing.B), nameP string, fP func(b *testing.B)) (Result, Result, float64) {
	s := Result{Name: nameS}
	p := Result{Name: nameP}
	for rep := 0; rep < reps; rep++ {
		rs := testing.Benchmark(fS)
		rp := testing.Benchmark(fP)
		nsS := float64(rs.T.Nanoseconds()) / float64(rs.N)
		nsP := float64(rp.T.Nanoseconds()) / float64(rp.N)
		if rep == 0 || nsS < s.NsPerOp {
			s.NsPerOp = nsS
			s.AllocsPerOp, s.BytesPerOp = rs.AllocsPerOp(), rs.AllocedBytesPerOp()
		}
		if rep == 0 || nsP < p.NsPerOp {
			p.NsPerOp = nsP
			p.AllocsPerOp, p.BytesPerOp = rp.AllocsPerOp(), rp.AllocedBytesPerOp()
		}
	}
	return s, p, s.NsPerOp / p.NsPerOp
}

// fill seeds a matrix and vectors with the size-keyed deterministic values
// every run of this tool uses.
func fill(n int) (*tensor.Matrix, tensor.Vector, tensor.Vector) {
	rng := rngutil.New(uint64(4000 + n))
	m := tensor.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := make(tensor.Vector, n)
	u := make(tensor.Vector, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		u[i] = rng.NormFloat64()
	}
	return m, x, u
}

// fillBatch derives batchSamples deterministic input vectors and matching
// output buffers.
func fillBatch(n int) (xs, ys []tensor.Vector) {
	rng := rngutil.New(uint64(6000 + n))
	xs = make([]tensor.Vector, batchSamples)
	ys = make([]tensor.Vector, batchSamples)
	for s := range xs {
		xs[s] = make(tensor.Vector, n)
		for i := range xs[s] {
			xs[s][i] = rng.NormFloat64()
		}
		ys[s] = make(tensor.Vector, n)
	}
	return xs, ys
}

func newArray(n int, reference bool) *crossbar.Array {
	cfg := crossbar.DefaultConfig()
	cfg.ReferenceUpdate = reference
	return crossbar.NewArray(n, n, crossbar.Ideal(), cfg, rngutil.New(uint64(5000+n)))
}

func run(workers int) Report {
	rep := Report{Schema: "bench-report/v1", Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	calib := measure("calibration_serial_matvec_256", func(b *testing.B) {
		b.ReportAllocs()
		m, x, _ := fill(256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MatVec(x)
		}
	})
	rep.CalibrationNsPerOp = calib.NsPerOp
	rep.Benchmarks = append(rep.Benchmarks, calib)

	for _, n := range []int{128, 512, 1024} {
		benchSerialF := func(b *testing.B) {
			b.ReportAllocs()
			m, x, _ := fill(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MatVec(x)
			}
		}
		benchParF := func(b *testing.B) {
			b.ReportAllocs()
			par.SetWorkers(workers)
			_, x, _ := fill(n)
			arr := newArray(n, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arr.Forward(x)
			}
		}
		var serialF, parF Result
		if n == 512 {
			// The headline forward pair is measured interleaved so its
			// reported speedup is drift-immune.
			serialF, parF, rep.SpeedupForward512 = measurePair(
				fmt.Sprintf("forward_serial_%d", n), benchSerialF,
				fmt.Sprintf("forward_parallel_%d", n), benchParF)
		} else {
			serialF = measure(fmt.Sprintf("forward_serial_%d", n), benchSerialF)
			parF = measure(fmt.Sprintf("forward_parallel_%d", n), benchParF)
		}
		serialB := measure(fmt.Sprintf("backward_serial_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			m, _, u := fill(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MatVecT(u)
			}
		})
		parB := measure(fmt.Sprintf("backward_parallel_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			par.SetWorkers(workers)
			_, _, u := fill(n)
			arr := newArray(n, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arr.Backward(u)
			}
		})
		// The update's serial twin is the generic per-crosspoint path
		// (Config.ReferenceUpdate — device interface dispatch for every
		// coincidence) at one worker; the parallel side is the specialized
		// engine kernel at the requested workers. Bit-identical outputs,
		// and exactly the pairing the update speedup budget floors.
		var updS, updP Result
		if n == 512 {
			updS, updP, rep.SpeedupUpdate512 = measurePair(
				fmt.Sprintf("update_serial_%d", n), benchUpdate(n, true, 1),
				fmt.Sprintf("update_parallel_%d", n), benchUpdate(n, false, workers))
		} else {
			updS = measure(fmt.Sprintf("update_serial_%d", n), benchUpdate(n, true, 1))
			updP = measure(fmt.Sprintf("update_parallel_%d", n), benchUpdate(n, false, workers))
		}
		par.SetWorkers(0)
		rep.Benchmarks = append(rep.Benchmarks, serialF, serialB, parF, parB, updS, updP)
	}

	// Batched forward at 1024: serial twin is the scalar MVM per sample;
	// the engine side is the sample-blocked kernel over the same batch.
	// One op = the whole batchSamples-sample batch. Interleaved like the
	// other budgeted pairs.
	batchS, batchP, batchSpeedup := measurePair(
		fmt.Sprintf("forward_batch_serial_1024x%d", batchSamples), func(b *testing.B) {
			b.ReportAllocs()
			m, _, _ := fill(1024)
			xs, _ := fillBatch(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := range xs {
					m.MatVec(xs[s])
				}
			}
		},
		fmt.Sprintf("forward_batch_parallel_1024x%d", batchSamples), func(b *testing.B) {
			b.ReportAllocs()
			par.SetWorkers(workers)
			m, _, _ := fill(1024)
			xs, ys := fillBatch(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				par.MatVecBatchInto(m, xs, ys)
			}
		})
	rep.SpeedupForwardBatch1024 = batchSpeedup
	par.SetWorkers(0)
	rep.Benchmarks = append(rep.Benchmarks, batchS, batchP)

	// Fused multi-sample update at 512: the twin applies the same K rank-1
	// updates as K sequential engine Update calls (K passes over device
	// state); the fused side applies them as one UpdateBatch (one pass).
	// Outputs are bit-identical; this pair tracks what the single pass buys.
	ubS, ubP, ubSpeedup := measurePair(
		fmt.Sprintf("update_batch_seq_512x%d", updateBatchK), benchUpdateBatch(512, false, workers),
		fmt.Sprintf("update_batch_fused_512x%d", updateBatchK), benchUpdateBatch(512, true, workers))
	rep.SpeedupUpdateBatch512 = ubSpeedup
	par.SetWorkers(0)
	rep.Benchmarks = append(rep.Benchmarks, ubS, ubP)

	// Live service end to end: the open-loop saturating workload through
	// serve.Service with single dispatch vs dynamic batching. One op is the
	// whole workload, so the ratio is a throughput speedup.
	srvS, srvP, srvSpeedup := measurePairMin(serveBenchReps,
		fmt.Sprintf("serve_single_%dx%d", serveWidth, serveTotalReqs), benchServe(1, workers),
		fmt.Sprintf("serve_batch%d_%dx%d", serveBatchMax, serveWidth, serveTotalReqs), benchServe(serveBatchMax, workers))
	rep.SpeedupServeBatch = srvSpeedup
	par.SetWorkers(0)
	par.SetPlan(par.Plan{})
	rep.Benchmarks = append(rep.Benchmarks, srvS, srvP)
	return rep
}

// benchUpdateBatch benchmarks K rank-1 updates on the engine path, applied
// either fused (one UpdateBatch call) or as K sequential Update calls.
func benchUpdateBatch(n int, fused bool, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		par.SetWorkers(workers)
		arr := newArray(n, false)
		rng := rngutil.New(uint64(8000 + n))
		us := make([]tensor.Vector, updateBatchK)
		vs := make([]tensor.Vector, updateBatchK)
		for k := range us {
			us[k] = make(tensor.Vector, n)
			vs[k] = make(tensor.Vector, n)
			for i := 0; i < n; i++ {
				us[k][i] = rng.NormFloat64()
				vs[k][i] = rng.NormFloat64()
			}
		}
		arr.UpdateBatch(0.001, us, vs) // warm the tile and batch arenas
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fused {
				arr.UpdateBatch(0.001, us, vs)
			} else {
				for k := range us {
					arr.Update(0.001, us[k], vs[k])
				}
			}
		}
	}
}

func benchUpdate(n int, reference bool, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		par.SetWorkers(workers)
		_, x, u := fill(n)
		arr := newArray(n, reference)
		arr.Update(0.001, u, x) // warm the tile arena outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arr.Update(0.001, u, x)
		}
	}
}

// Gate errors. A malformed report must fail the gate loudly: a zero or
// missing calibration would otherwise normalize every ratio to NaN/Inf,
// which compares false against any threshold and silently passes.
var (
	ErrBadCalibration  = errors.New("calibration ns/op missing or non-positive")
	ErrMissingBaseline = errors.New("baseline is missing a tracked benchmark")
	ErrBadMeasurement  = errors.New("benchmark measurement is non-finite or non-positive")
	// ErrLegacyBaseline means only a retired BENCH_PRn.json exists; the gate
	// refuses to read it so stale pre-engine baselines can't mask budgets.
	ErrLegacyBaseline = errors.New("only a legacy-named baseline found")
	// ErrAllocBudget and ErrSpeedupBudget are the absolute perf budgets.
	ErrAllocBudget   = errors.New("alloc budget exceeded")
	ErrSpeedupBudget = errors.New("speedup below budget floor")
)

// budgeted reports whether a benchmark is on the engine path and therefore
// under the allocs/op ceiling. Serial twins are exempt: the scalar
// reference allocates one output per sample by design. The _seq_ twin of
// the fused-update pair is K engine updates per op, so the per-op ceiling
// doesn't fit it either (its fused arm stays budgeted). The serve_ pairs
// are whole-service throughput workloads (goroutines, channels, and one
// result per request are the very thing measured), not kernel hot paths,
// so the kernel alloc ceiling does not apply to them.
func budgeted(name string) bool {
	return !strings.Contains(name, "_serial_") && !strings.Contains(name, "_seq_") &&
		!strings.HasPrefix(name, "calibration") && !strings.HasPrefix(name, "serve_")
}

// checkBudgets enforces the absolute perf budgets on a finished report and
// returns one named error per violation.
func checkBudgets(rep Report) []error {
	var errs []error
	for _, r := range rep.Benchmarks {
		if budgeted(r.Name) && r.AllocsPerOp > allocBudget {
			errs = append(errs, fmt.Errorf("%w: %s has %d allocs/op (budget %d)",
				ErrAllocBudget, r.Name, r.AllocsPerOp, allocBudget))
		}
	}
	if rep.SpeedupUpdate512 < updateSpeedupFloor {
		errs = append(errs, fmt.Errorf("%w: update 512 %.2fx < %.2fx",
			ErrSpeedupBudget, rep.SpeedupUpdate512, updateSpeedupFloor))
	}
	if rep.SpeedupForwardBatch1024 < batchSpeedupFloor {
		errs = append(errs, fmt.Errorf("%w: batched forward 1024 %.2fx < %.2fx",
			ErrSpeedupBudget, rep.SpeedupForwardBatch1024, batchSpeedupFloor))
	}
	if rep.SpeedupServeBatch < serveBatchSpeedupFloor {
		errs = append(errs, fmt.Errorf("%w: batched live service %.2fx < %.2fx",
			ErrSpeedupBudget, rep.SpeedupServeBatch, serveBatchSpeedupFloor))
	}
	return errs
}

// gate compares cur against base and returns the tracked benchmarks that
// regressed beyond tol in both the raw and the calibration-normalized cost.
// It errors — rather than skipping the comparison — when either report's
// calibration is unusable, a current benchmark has no baseline entry, or a
// normalized ratio comes out non-finite.
func gate(cur, base Report, tol float64) ([]string, error) {
	if !(cur.CalibrationNsPerOp > 0) || math.IsInf(cur.CalibrationNsPerOp, 0) {
		return nil, fmt.Errorf("%w: current report has %v", ErrBadCalibration, cur.CalibrationNsPerOp)
	}
	if !(base.CalibrationNsPerOp > 0) || math.IsInf(base.CalibrationNsPerOp, 0) {
		return nil, fmt.Errorf("%w: baseline has %v", ErrBadCalibration, base.CalibrationNsPerOp)
	}
	baseNs := map[string]float64{}
	for _, r := range base.Benchmarks {
		baseNs[r.Name] = r.NsPerOp
	}
	var bad []string
	for _, r := range cur.Benchmarks {
		old, ok := baseNs[r.Name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrMissingBaseline, r.Name)
		}
		normNew := r.NsPerOp / cur.CalibrationNsPerOp
		normOld := old / base.CalibrationNsPerOp
		if !(normNew > 0) || !(normOld > 0) || math.IsInf(normNew, 0) || math.IsInf(normOld, 0) {
			return nil, fmt.Errorf("%w: %s (current %v, baseline %v)",
				ErrBadMeasurement, r.Name, r.NsPerOp, old)
		}
		// A regression must show in BOTH the raw and the calibration-
		// normalized cost. Raw ns is exact on an unchanged machine but
		// meaningless across hardware; normalized transfers across hardware
		// but inherits the calibration benchmark's own noise. A real code
		// regression moves both on the machine CI actually runs; calibration
		// jitter moves only the normalized view, raw machine drift only the
		// raw view — each alone stays below the gate.
		if normNew > normOld*(1+tol) && r.NsPerOp > old*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: %.3f vs baseline %.3f (normalized, +%.0f%%; raw +%.0f%%)",
				r.Name, normNew, normOld, 100*(normNew/normOld-1), 100*(r.NsPerOp/old-1)))
		}
	}
	return bad, nil
}

// stableBaseline is the gate-input filename; legacyBaseline is the last
// retired per-PR name, kept only so the gate can refuse it by name.
const (
	stableBaseline = "BENCH.json"
	legacyBaseline = "BENCH_PR4.json"
)

// resolveBaseline maps the requested baseline path to the file the gate
// should read. Explicit non-default paths pass through untouched so pinned
// comparisons (e.g. the obs-overhead check) keep their exact semantics;
// the default stable name must exist — finding only the retired legacy
// name is a named error, not a fallback.
func resolveBaseline(path string, exists func(string) bool) (string, error) {
	if path != stableBaseline {
		return path, nil
	}
	if exists(path) {
		return path, nil
	}
	if exists(legacyBaseline) {
		return "", fmt.Errorf("%w: %s exists but %s does not; regenerate with `make bench-baseline`",
			ErrLegacyBaseline, legacyBaseline, stableBaseline)
	}
	return path, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench-report: ")
	testing.Init()
	out := flag.String("out", stableBaseline, "output path for the JSON report")
	workers := flag.Int("workers", 4, "tile-engine worker count for the parallel benchmarks")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measuring time (testing -benchtime syntax)")
	baseline := flag.String("baseline", "", "committed baseline JSON to gate against (empty = no gate)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed normalized regression before the gate fails")
	minSpeedup := flag.Float64("min-speedup", 0, "fail unless forward 512 speedup reaches this (0 = no gate)")
	budgets := flag.Bool("budgets", true, "enforce the absolute alloc and speedup budgets")
	withObs := flag.Bool("obs", false, "attach the observability registry to the tile engine, measuring instrumented-path overhead")
	quick := flag.Bool("quick", false, "emit the deterministic kernel checksum table instead of timings")
	tileSpan := flag.Int("tile-span", 0, "override the par.Plan tile span (0 = default)")
	batchSpan := flag.Int("batch-span", 0, "override the par.Plan sample-block span (0 = default)")
	flag.Parse()

	// Zero fields normalize to the default plan, so the flags compose: set
	// either span alone or both to explore blocking geometries.
	par.SetPlan(par.Plan{TileSpan: *tileSpan, BatchSpan: *batchSpan})

	if *quick {
		printChecksums(os.Stdout, *workers)
		return
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		log.Fatal(err)
	}

	if *withObs {
		// Measure the same kernels with metrics attached; gating this report
		// against the committed baseline bounds the instrumentation overhead.
		par.Instrument(obs.NewRegistry())
	}
	rep := run(*workers)
	rep.ObsEnabled = *withObs
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, workers=%d, forward 512 %.2fx, update 512 %.2fx, batch 1024 %.2fx, update-batch 512 %.2fx, serve batch %.2fx)\n",
		*out, len(rep.Benchmarks), rep.Workers,
		rep.SpeedupForward512, rep.SpeedupUpdate512, rep.SpeedupForwardBatch1024,
		rep.SpeedupUpdateBatch512, rep.SpeedupServeBatch)

	failed := false
	if *budgets {
		for _, err := range checkBudgets(rep) {
			fmt.Fprintf(os.Stderr, "BUDGET %v\n", err)
			failed = true
		}
	}
	if *baseline != "" {
		basePath, err := resolveBaseline(*baseline, fileExists)
		if err != nil {
			log.Fatal(err)
		}
		raw, err := os.ReadFile(basePath)
		if err != nil {
			log.Fatal(err)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			log.Fatalf("parse %s: %v", basePath, err)
		}
		bad, err := gate(rep, base, *tolerance)
		if err != nil {
			log.Fatalf("gate against %s: %v", basePath, err)
		}
		if len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "REGRESSION %s\n", b)
			}
			failed = true
		} else {
			fmt.Printf("no regressions beyond %.0f%% against %s\n", *tolerance*100, basePath)
		}
	}
	if *minSpeedup > 0 && rep.SpeedupForward512 < *minSpeedup {
		fmt.Fprintf(os.Stderr, "REGRESSION forward 512 speedup %.2fx below required %.2fx\n",
			rep.SpeedupForward512, *minSpeedup)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
