// Command bench-report measures the serial reference kernels against the
// internal/par tile engine at 128/512/1024-wide arrays and writes the
// results as machine-readable JSON (BENCH.json) — the repository's
// performance baseline. The gate reads the same stable name, falling back
// to the legacy BENCH_PR4.json so the committed PR-4 baseline keeps
// working until a BENCH.json is regenerated.
//
// "Serial" is the scalar reference path the simulator ran before the tile
// engine existed: tensor.Matrix.MatVec / MatVecT, one goroutine, one
// accumulator, ascending index order. "Parallel" is the engine path the
// simulator runs now (crossbar.Array ops at the requested -workers). The
// two are bit-identical in output; this report tracks only their speed.
//
// With -baseline it compares against a previously committed report and
// exits non-zero if any tracked benchmark regressed more than -tolerance.
// Raw ns/op is not comparable across machines, so the gate normalizes every
// benchmark by the run's own calibration benchmark (the serial 256×256
// MVM): a regression means "got slower relative to this machine's scalar
// baseline", which is portable. -min-speedup additionally gates the
// headline forward speedup at 512.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the BENCH.json schema.
type Report struct {
	Schema     string `json:"schema"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CalibrationNsPerOp is the serial 256×256 MVM on this machine; the
	// regression gate divides every benchmark by it so reports taken on
	// different hardware remain comparable.
	CalibrationNsPerOp float64  `json:"calibration_ns_per_op"`
	Benchmarks         []Result `json:"benchmarks"`
	// SpeedupForward512 is serial/parallel ns at 512 — the headline number.
	SpeedupForward512 float64 `json:"speedup_forward_512"`
	// ObsEnabled records whether the run measured the instrumented tile
	// engine (-obs); overhead reports must not be committed as the baseline.
	ObsEnabled bool `json:"obs_enabled,omitempty"`
}

func measure(name string, f func(b *testing.B)) Result {
	r := testing.Benchmark(f)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// fill seeds a matrix and vectors with the size-keyed deterministic values
// every run of this tool uses.
func fill(n int) (*tensor.Matrix, tensor.Vector, tensor.Vector) {
	rng := rngutil.New(uint64(4000 + n))
	m := tensor.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := make(tensor.Vector, n)
	u := make(tensor.Vector, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		u[i] = rng.NormFloat64()
	}
	return m, x, u
}

func newArray(n int) *crossbar.Array {
	return crossbar.NewArray(n, n, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(uint64(5000+n)))
}

func run(workers int) Report {
	rep := Report{Schema: "bench-report/v1", Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	calib := measure("calibration_serial_matvec_256", func(b *testing.B) {
		b.ReportAllocs()
		m, x, _ := fill(256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MatVec(x)
		}
	})
	rep.CalibrationNsPerOp = calib.NsPerOp
	rep.Benchmarks = append(rep.Benchmarks, calib)

	byName := map[string]float64{}
	for _, n := range []int{128, 512, 1024} {
		serialF := measure(fmt.Sprintf("forward_serial_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			m, x, _ := fill(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MatVec(x)
			}
		})
		serialB := measure(fmt.Sprintf("backward_serial_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			m, _, u := fill(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MatVecT(u)
			}
		})
		par.SetWorkers(workers)
		parF := measure(fmt.Sprintf("forward_parallel_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			_, x, _ := fill(n)
			arr := newArray(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arr.Forward(x)
			}
		})
		parB := measure(fmt.Sprintf("backward_parallel_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			_, _, u := fill(n)
			arr := newArray(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arr.Backward(u)
			}
		})
		// The update has no pre-engine scalar twin kernel (the pulse loop IS
		// the kernel), so serial-vs-parallel is the same tiled code at one
		// worker vs the requested count.
		par.SetWorkers(1)
		updS := measure(fmt.Sprintf("update_serial_%d", n), benchUpdate(n))
		par.SetWorkers(workers)
		updP := measure(fmt.Sprintf("update_parallel_%d", n), benchUpdate(n))
		par.SetWorkers(0)
		for _, r := range []Result{serialF, serialB, parF, parB, updS, updP} {
			rep.Benchmarks = append(rep.Benchmarks, r)
			byName[r.Name] = r.NsPerOp
		}
	}
	if p := byName["forward_parallel_512"]; p > 0 {
		rep.SpeedupForward512 = byName["forward_serial_512"] / p
	}
	return rep
}

func benchUpdate(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		_, x, u := fill(n)
		arr := newArray(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arr.Update(0.001, u, x)
		}
	}
}

// Gate errors. A malformed report must fail the gate loudly: a zero or
// missing calibration would otherwise normalize every ratio to NaN/Inf,
// which compares false against any threshold and silently passes.
var (
	ErrBadCalibration  = errors.New("calibration ns/op missing or non-positive")
	ErrMissingBaseline = errors.New("baseline is missing a tracked benchmark")
	ErrBadMeasurement  = errors.New("benchmark measurement is non-finite or non-positive")
)

// gate compares cur against base, normalizing by each report's calibration
// benchmark, and returns the tracked benchmarks that regressed beyond tol.
// It errors — rather than skipping the comparison — when either report's
// calibration is unusable, a current benchmark has no baseline entry, or a
// normalized ratio comes out non-finite.
func gate(cur, base Report, tol float64) ([]string, error) {
	if !(cur.CalibrationNsPerOp > 0) || math.IsInf(cur.CalibrationNsPerOp, 0) {
		return nil, fmt.Errorf("%w: current report has %v", ErrBadCalibration, cur.CalibrationNsPerOp)
	}
	if !(base.CalibrationNsPerOp > 0) || math.IsInf(base.CalibrationNsPerOp, 0) {
		return nil, fmt.Errorf("%w: baseline has %v", ErrBadCalibration, base.CalibrationNsPerOp)
	}
	baseNs := map[string]float64{}
	for _, r := range base.Benchmarks {
		baseNs[r.Name] = r.NsPerOp
	}
	var bad []string
	for _, r := range cur.Benchmarks {
		old, ok := baseNs[r.Name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrMissingBaseline, r.Name)
		}
		normNew := r.NsPerOp / cur.CalibrationNsPerOp
		normOld := old / base.CalibrationNsPerOp
		if !(normNew > 0) || !(normOld > 0) || math.IsInf(normNew, 0) || math.IsInf(normOld, 0) {
			return nil, fmt.Errorf("%w: %s (current %v, baseline %v)",
				ErrBadMeasurement, r.Name, r.NsPerOp, old)
		}
		if normNew > normOld*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: %.3f vs baseline %.3f (normalized, +%.0f%%)",
				r.Name, normNew, normOld, 100*(normNew/normOld-1)))
		}
	}
	return bad, nil
}

// stableBaseline and legacyBaseline are the gate-input filenames. Every PR
// used to commit its own BENCH_PRn.json and re-point the Makefile at it;
// the gate now always reads stableBaseline and only falls back to the last
// legacy name still in the tree.
const (
	stableBaseline = "BENCH.json"
	legacyBaseline = "BENCH_PR4.json"
)

// resolveBaseline maps the requested baseline path to the file the gate
// should read: the stable name when it exists, else the legacy fallback.
// Explicit non-default paths pass through untouched so pinned comparisons
// (e.g. the obs-overhead check) keep their exact semantics.
func resolveBaseline(path string, exists func(string) bool) string {
	if path != stableBaseline {
		return path
	}
	if exists(path) {
		return path
	}
	return legacyBaseline
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench-report: ")
	testing.Init()
	out := flag.String("out", stableBaseline, "output path for the JSON report")
	workers := flag.Int("workers", 4, "tile-engine worker count for the parallel benchmarks")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measuring time (testing -benchtime syntax)")
	baseline := flag.String("baseline", "", "committed baseline JSON to gate against (empty = no gate)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed normalized regression before the gate fails")
	minSpeedup := flag.Float64("min-speedup", 0, "fail unless forward 512 speedup reaches this (0 = no gate)")
	withObs := flag.Bool("obs", false, "attach the observability registry to the tile engine, measuring instrumented-path overhead")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		log.Fatal(err)
	}

	if *withObs {
		// Measure the same kernels with metrics attached; gating this report
		// against the committed baseline bounds the instrumentation overhead.
		par.Instrument(obs.NewRegistry())
	}
	rep := run(*workers)
	rep.ObsEnabled = *withObs
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, workers=%d, forward 512 speedup %.2fx)\n",
		*out, len(rep.Benchmarks), rep.Workers, rep.SpeedupForward512)

	failed := false
	if *baseline != "" {
		basePath := resolveBaseline(*baseline, fileExists)
		raw, err := os.ReadFile(basePath)
		if err != nil {
			log.Fatal(err)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			log.Fatalf("parse %s: %v", basePath, err)
		}
		bad, err := gate(rep, base, *tolerance)
		if err != nil {
			log.Fatalf("gate against %s: %v", basePath, err)
		}
		if len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "REGRESSION %s\n", b)
			}
			failed = true
		} else {
			fmt.Printf("no regressions beyond %.0f%% against %s\n", *tolerance*100, basePath)
		}
	}
	if *minSpeedup > 0 && rep.SpeedupForward512 < *minSpeedup {
		fmt.Fprintf(os.Stderr, "REGRESSION forward 512 speedup %.2fx below required %.2fx\n",
			rep.SpeedupForward512, *minSpeedup)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
