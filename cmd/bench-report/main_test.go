package main

import (
	"errors"
	"testing"
)

func report(calib float64, names map[string]float64) Report {
	r := Report{CalibrationNsPerOp: calib}
	for n, v := range names {
		r.Benchmarks = append(r.Benchmarks, Result{Name: n, NsPerOp: v})
	}
	return r
}

// TestResolveBaseline pins the stable-filename contract: the gate reads
// BENCH.json when present, refuses the retired legacy BENCH_PR4.json with
// a named error, and never rewrites an explicitly chosen path.
func TestResolveBaseline(t *testing.T) {
	only := func(p string) func(string) bool {
		return func(q string) bool { return q == p }
	}
	if got, err := resolveBaseline(stableBaseline, only(stableBaseline)); err != nil || got != stableBaseline {
		t.Fatalf("stable baseline present but resolved to %q, err %v", got, err)
	}
	if _, err := resolveBaseline(stableBaseline, only(legacyBaseline)); !errors.Is(err, ErrLegacyBaseline) {
		t.Fatalf("legacy-only baseline: err = %v, want ErrLegacyBaseline", err)
	}
	// Neither file present: pass the stable name through so the open fails
	// with the ordinary file-not-found error.
	if got, err := resolveBaseline(stableBaseline, func(string) bool { return false }); err != nil || got != stableBaseline {
		t.Fatalf("no baseline: resolved to %q, err %v", got, err)
	}
	if got, err := resolveBaseline("/tmp/pinned.json", only(stableBaseline)); err != nil || got != "/tmp/pinned.json" {
		t.Fatalf("explicit path rewritten to %q, err %v", got, err)
	}
}

func TestGatePassesAndFlagsRegressions(t *testing.T) {
	base := report(100, map[string]float64{"forward_512": 1000})
	ok := report(200, map[string]float64{"forward_512": 2100}) // normalized 10.5 vs 10: within 25%
	bad, err := gate(ok, base, 0.25)
	if err != nil || len(bad) != 0 {
		t.Fatalf("clean report failed the gate: bad=%v err=%v", bad, err)
	}
	slow := report(100, map[string]float64{"forward_512": 1500}) // +50% normalized
	bad, err = gate(slow, base, 0.25)
	if err != nil || len(bad) != 1 {
		t.Fatalf("regression not flagged: bad=%v err=%v", bad, err)
	}
}

// TestGateRequiresBothSignals pins the dual-evidence rule: a benchmark is
// flagged only when it regressed beyond tolerance in raw ns AND in the
// calibration-normalized cost. Calibration jitter (normalized moves, raw
// flat) and whole-machine drift (raw moves, normalized flat) each produce
// only one signal and must not flake the gate.
func TestGateRequiresBothSignals(t *testing.T) {
	base := report(100, map[string]float64{"forward_512": 1000})
	// Calibration jitter: current calibration came out fast, inflating the
	// normalized view (+43%) while raw is up only 7%.
	jitter := report(70, map[string]float64{"forward_512": 1070})
	if bad, err := gate(jitter, base, 0.25); err != nil || len(bad) != 0 {
		t.Fatalf("calibration jitter flagged: bad=%v err=%v", bad, err)
	}
	// Whole-machine drift: everything (calibration included) slowed 2×, so
	// raw is +100% but normalized is flat.
	drift := report(200, map[string]float64{"forward_512": 2000})
	if bad, err := gate(drift, base, 0.25); err != nil || len(bad) != 0 {
		t.Fatalf("machine drift flagged: bad=%v err=%v", bad, err)
	}
	// A real regression moves both views past tolerance.
	real := report(100, map[string]float64{"forward_512": 1500})
	if bad, err := gate(real, base, 0.25); err != nil || len(bad) != 1 {
		t.Fatalf("real regression not flagged: bad=%v err=%v", bad, err)
	}
}

// TestGateFailsLoudly pins the satellite fix: a zero calibration or a
// missing baseline entry used to be skipped silently (NaN/Inf normalized
// ratios compare false against any threshold, so a broken baseline passed
// the gate). Each case must now surface its named error.
func TestGateFailsLoudly(t *testing.T) {
	good := report(100, map[string]float64{"forward_512": 1000})

	if _, err := gate(report(0, map[string]float64{"forward_512": 1000}), good, 0.25); !errors.Is(err, ErrBadCalibration) {
		t.Fatalf("zero current calibration: err = %v, want ErrBadCalibration", err)
	}
	if _, err := gate(good, report(0, map[string]float64{"forward_512": 1000}), 0.25); !errors.Is(err, ErrBadCalibration) {
		t.Fatalf("zero baseline calibration: err = %v, want ErrBadCalibration", err)
	}
	if _, err := gate(good, report(100, map[string]float64{"other": 1}), 0.25); !errors.Is(err, ErrMissingBaseline) {
		t.Fatalf("missing baseline entry: err = %v, want ErrMissingBaseline", err)
	}
	if _, err := gate(report(100, map[string]float64{"forward_512": 0}), good, 0.25); !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("zero current measurement: err = %v, want ErrBadMeasurement", err)
	}
	if _, err := gate(good, report(100, map[string]float64{"forward_512": -5}), 0.25); !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("negative baseline measurement: err = %v, want ErrBadMeasurement", err)
	}
}

// TestBudgetedSelectsEnginePath pins which benchmarks the alloc ceiling
// covers: engine-path benchmarks yes, serial twins and calibration no.
func TestBudgetedSelectsEnginePath(t *testing.T) {
	for name, want := range map[string]bool{
		"forward_parallel_512":          true,
		"backward_parallel_1024":        true,
		"update_parallel_128":           true,
		"forward_batch_parallel_1024x8": true,
		"update_batch_seq_512x8":        false,
		"update_batch_fused_512x8":      true,
		"forward_serial_512":            false,
		"update_serial_512":             false,
		"forward_batch_serial_1024x8":   false,
		"calibration_serial_matvec_256": false,
		"serve_single_1536x192":         false,
		"serve_batch16_1536x192":        false,
	} {
		if got := budgeted(name); got != want {
			t.Errorf("budgeted(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestCheckBudgets pins the absolute perf budgets and their named errors:
// an engine-path benchmark over the alloc ceiling, or a speedup under its
// floor, each yields its own error; a report meeting every budget yields
// none.
func TestCheckBudgets(t *testing.T) {
	clean := Report{
		Benchmarks: []Result{
			{Name: "forward_serial_512", AllocsPerOp: 9}, // serial twins are exempt
			{Name: "forward_parallel_512", AllocsPerOp: allocBudget},
			{Name: "update_parallel_512", AllocsPerOp: 1},
		},
		SpeedupUpdate512:        updateSpeedupFloor + 0.5,
		SpeedupForwardBatch1024: batchSpeedupFloor + 0.5,
		SpeedupServeBatch:       serveBatchSpeedupFloor + 0.5,
	}
	if errs := checkBudgets(clean); len(errs) != 0 {
		t.Fatalf("clean report violated budgets: %v", errs)
	}

	over := clean
	over.Benchmarks = append([]Result(nil), clean.Benchmarks...)
	over.Benchmarks = append(over.Benchmarks, Result{Name: "backward_parallel_512", AllocsPerOp: allocBudget + 1})
	errs := checkBudgets(over)
	if len(errs) != 1 || !errors.Is(errs[0], ErrAllocBudget) {
		t.Fatalf("alloc violation: errs = %v, want one ErrAllocBudget", errs)
	}

	slowUpd := clean
	slowUpd.SpeedupUpdate512 = updateSpeedupFloor - 0.1
	errs = checkBudgets(slowUpd)
	if len(errs) != 1 || !errors.Is(errs[0], ErrSpeedupBudget) {
		t.Fatalf("update speedup violation: errs = %v, want one ErrSpeedupBudget", errs)
	}

	slowBatch := clean
	slowBatch.SpeedupForwardBatch1024 = batchSpeedupFloor - 0.1
	errs = checkBudgets(slowBatch)
	if len(errs) != 1 || !errors.Is(errs[0], ErrSpeedupBudget) {
		t.Fatalf("batch speedup violation: errs = %v, want one ErrSpeedupBudget", errs)
	}

	slowServe := clean
	slowServe.SpeedupServeBatch = serveBatchSpeedupFloor - 0.1
	errs = checkBudgets(slowServe)
	if len(errs) != 1 || !errors.Is(errs[0], ErrSpeedupBudget) {
		t.Fatalf("serve speedup violation: errs = %v, want one ErrSpeedupBudget", errs)
	}
}
