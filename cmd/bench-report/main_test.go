package main

import (
	"errors"
	"testing"
)

func report(calib float64, names map[string]float64) Report {
	r := Report{CalibrationNsPerOp: calib}
	for n, v := range names {
		r.Benchmarks = append(r.Benchmarks, Result{Name: n, NsPerOp: v})
	}
	return r
}

// TestResolveBaseline pins the stable-filename contract: the gate reads
// BENCH.json when present, falls back to the legacy BENCH_PR4.json when
// not, and never rewrites an explicitly chosen path.
func TestResolveBaseline(t *testing.T) {
	only := func(p string) func(string) bool {
		return func(q string) bool { return q == p }
	}
	if got := resolveBaseline(stableBaseline, only(stableBaseline)); got != stableBaseline {
		t.Fatalf("stable baseline present but resolved to %s", got)
	}
	if got := resolveBaseline(stableBaseline, only(legacyBaseline)); got != legacyBaseline {
		t.Fatalf("stable baseline missing: resolved to %s, want the legacy fallback", got)
	}
	if got := resolveBaseline("/tmp/pinned.json", only(stableBaseline)); got != "/tmp/pinned.json" {
		t.Fatalf("explicit path rewritten to %s", got)
	}
}

func TestGatePassesAndFlagsRegressions(t *testing.T) {
	base := report(100, map[string]float64{"forward_512": 1000})
	ok := report(200, map[string]float64{"forward_512": 2100}) // normalized 10.5 vs 10: within 25%
	bad, err := gate(ok, base, 0.25)
	if err != nil || len(bad) != 0 {
		t.Fatalf("clean report failed the gate: bad=%v err=%v", bad, err)
	}
	slow := report(100, map[string]float64{"forward_512": 1500}) // +50% normalized
	bad, err = gate(slow, base, 0.25)
	if err != nil || len(bad) != 1 {
		t.Fatalf("regression not flagged: bad=%v err=%v", bad, err)
	}
}

// TestGateFailsLoudly pins the satellite fix: a zero calibration or a
// missing baseline entry used to be skipped silently (NaN/Inf normalized
// ratios compare false against any threshold, so a broken baseline passed
// the gate). Each case must now surface its named error.
func TestGateFailsLoudly(t *testing.T) {
	good := report(100, map[string]float64{"forward_512": 1000})

	if _, err := gate(report(0, map[string]float64{"forward_512": 1000}), good, 0.25); !errors.Is(err, ErrBadCalibration) {
		t.Fatalf("zero current calibration: err = %v, want ErrBadCalibration", err)
	}
	if _, err := gate(good, report(0, map[string]float64{"forward_512": 1000}), 0.25); !errors.Is(err, ErrBadCalibration) {
		t.Fatalf("zero baseline calibration: err = %v, want ErrBadCalibration", err)
	}
	if _, err := gate(good, report(100, map[string]float64{"other": 1}), 0.25); !errors.Is(err, ErrMissingBaseline) {
		t.Fatalf("missing baseline entry: err = %v, want ErrMissingBaseline", err)
	}
	if _, err := gate(report(100, map[string]float64{"forward_512": 0}), good, 0.25); !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("zero current measurement: err = %v, want ErrBadMeasurement", err)
	}
	if _, err := gate(good, report(100, map[string]float64{"forward_512": -5}), 0.25); !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("negative baseline measurement: err = %v, want ErrBadMeasurement", err)
	}
}
