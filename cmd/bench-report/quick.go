package main

import (
	"fmt"
	"io"
	"math"

	"repro/internal/crossbar"
	"repro/internal/par"
	"repro/internal/tensor"
)

// The -quick mode: run every hot kernel once on fixed seeded inputs and
// print an FNV-1a checksum of the outputs. The table carries no timings,
// so it is byte-identical run to run and — by the tile engine's
// determinism contract — across -workers values; the CI determinism leg
// diffs it at -workers 1 vs 4. The update line is printed for both the
// engine and the reference path, which additionally pins their
// bit-identity into the diffed output.

// fnvMix folds one 64-bit word into an FNV-1a running hash.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

func sumVec(h uint64, v tensor.Vector) uint64 {
	for _, x := range v {
		h = fnvMix(h, math.Float64bits(x))
	}
	return h
}

// stateSum digests the complete exported array state: every device's
// internal scalars and counters, the mirror, and the pulse count — so a
// single flipped bit anywhere in an update's effect changes the line.
func stateSum(a *crossbar.Array) uint64 {
	st := a.ExportState()
	h := uint64(fnvOffset)
	for _, d := range st.Devices {
		for _, f := range d.F {
			h = fnvMix(h, math.Float64bits(f))
		}
		for _, c := range d.N {
			h = fnvMix(h, uint64(c))
		}
	}
	h = sumVec(h, st.Mirror)
	return fnvMix(h, uint64(st.Counts.Pulses))
}

func printChecksums(w io.Writer, workers int) {
	par.SetWorkers(workers)
	defer par.SetWorkers(0)
	fmt.Fprintf(w, "bench-report kernel checksums (deterministic at every worker count)\n")
	fmt.Fprintf(w, "%-18s %6s %18s\n", "kernel", "n", "checksum")
	for _, n := range []int{128, 512, 1024} {
		m, x, u := fill(n)
		arr := newArray(n, false)
		ref := newArray(n, true)
		xs, ys := fillBatch(n)

		// Update first: a fresh array's devices all sit at weight zero, and
		// reads on a zero matrix would checksum a degenerate all-zero
		// vector. The engine and reference update lines must match — their
		// bit-identity is part of the diffed table.
		arr.Update(0.001, u, x)
		arr.Update(-0.002, x, u)
		ref.Update(0.001, u, x)
		ref.Update(-0.002, x, u)
		fmt.Fprintf(w, "%-18s %6d %18x\n", "update", n, stateSum(arr))
		fmt.Fprintf(w, "%-18s %6d %18x\n", "update-reference", n, stateSum(ref))
		fmt.Fprintf(w, "%-18s %6d %18x\n", "forward", n, sumVec(fnvOffset, arr.Forward(x)))
		fmt.Fprintf(w, "%-18s %6d %18x\n", "backward", n, sumVec(fnvOffset, arr.Backward(u)))

		par.MatVecBatchInto(m, xs, ys)
		h := uint64(fnvOffset)
		for _, y := range ys {
			h = sumVec(h, y)
		}
		fmt.Fprintf(w, "%-18s %6d %18x\n", "forward-batch", n, h)

		// The fused multi-sample update on a fresh array: the line pins the
		// batched tile pass's full post-update device state across worker
		// counts, the same contract the scalar update lines carry.
		ub := newArray(n, false)
		ub.UpdateBatch(0.001, xs[:4], xs[4:8])
		fmt.Fprintf(w, "%-18s %6d %18x\n", "update-batch", n, stateSum(ub))
	}
}
