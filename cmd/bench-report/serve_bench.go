package main

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// The live-service benchmark pair: an open-loop saturating workload (every
// request submitted up front from its own goroutine, so the queue stays
// deep) through serve.Service fronting one digital-MLP replica. The arms
// differ only in Policy.BatchMax, so the ratio is what dynamic request
// batching buys end to end — coalesced dispatch through the sample-blocked
// MVM kernel versus one request per dispatch — with the real runtime
// machinery (bounded queue, timed gather, worker pool, per-request result
// channels) on both sides.
//
// The width is chosen to put the single-dispatch arm in the memory-bound
// regime this service actually batches for: at 1536 the layer matrix is
// ~18 MB, far beyond cache, so single dispatch re-streams the weights from
// memory for every request while a coalesced block (BatchSpan covering the
// whole block) streams them once. That traffic amortization is the
// mechanism, not scheduler luck, so the speedup is stable under load.
const (
	serveWidth     = 1536
	serveTotalReqs = 192
	serveBatchMax  = 16
	// serveBenchReps is the rep count for the service pair's min-of-N
	// estimate — more than benchReps because whole-service ops are long and
	// each arm needs enough chances to land a rep clear of machine noise.
	serveBenchReps = 5
)

// digitalPipe serves a digital float MLP as a serve.Pipeline. No analog
// arrays are involved: the pair measures dispatch and coalescing, and the
// MVM runs on the same par tile engine the analog path uses.
type digitalPipe struct{ net *nn.MLP }

func (p *digitalPipe) Infer(x tensor.Vector, verify bool) (tensor.Vector, bool) {
	return p.net.Forward(x).Clone(), true
}

func (p *digitalPipe) InferBatch(xs []tensor.Vector, verify bool) ([]tensor.Vector, []bool) {
	ys := p.net.ForwardBatch(xs)
	oks := make([]bool, len(xs))
	for i := range oks {
		oks[i] = true
	}
	return ys, oks
}

func (p *digitalPipe) CanaryDivergence() float64     { return 0 }
func (p *digitalPipe) Recalibrate() serve.RecalStats { return serve.RecalStats{} }

var _ serve.BatchPipeline = (*digitalPipe)(nil)

// serveWorkload builds the deterministic net and input set both arms share.
func serveWorkload() (*nn.MLP, []tensor.Vector) {
	rng := rngutil.New(uint64(9000 + serveWidth))
	net := nn.NewMLP([]int{serveWidth, serveWidth}, nn.TanhAct, nn.Identity,
		nn.DenseFactory(rng.Child("weights")))
	xs := make([]tensor.Vector, 16)
	for s := range xs {
		xs[s] = make(tensor.Vector, serveWidth)
		for i := range xs[s] {
			xs[s][i] = rng.NormFloat64()
		}
	}
	return net, xs
}

// benchServe runs the open-loop workload on one service worker (a second
// worker only splits blocks — on one replica it adds no throughput); one op
// serves serveTotalReqs requests to completion. The queue holds every outstanding request
// (QueueCap is sized so nothing sheds) and deadlines are far away, so both
// arms answer all requests and the ratio is a pure throughput comparison.
func benchServe(bmax, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		// The request path allocates ~60 KB per request, so the GC pacer
		// fires mid-op and its assist pauses land unevenly across ops —
		// ±30% swings on the shorter batched ops. Collection is forced in
		// the untimed window after every op instead (bounding the heap at
		// one op's garbage), keeping the timed region GC-free for both arms.
		gcPct := debug.SetGCPercent(-1)
		defer debug.SetGCPercent(gcPct)
		par.SetWorkers(workers)
		// Lift the plan so one sample block spans a whole coalesced dispatch:
		// the weight matrix is then streamed once per block instead of once
		// per BatchSpan-sized slice of it. The single-dispatch arm runs the
		// default plan — its blocks are single samples either way.
		if bmax > 1 {
			par.SetPlan(par.Plan{BatchSpan: bmax})
		} else {
			par.SetPlan(par.Plan{})
		}
		net, xs := serveWorkload()
		pol := serve.PolicyNone()
		pol.Deadline = 1e6
		pol.QueueCap = 2 * serveTotalReqs
		pol.BatchMax = bmax
		// The timed gather is what lets the first blocks form before the
		// queue has filled; once it has, every gather fills from the buffer
		// without touching the timer. The single-dispatch arm never gathers.
		pol.BatchWait = 1e-3
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			svc := serve.NewService(pol,
				[]*serve.Replica{serve.NewReplica(0, &digitalPipe{net: net}, pol)}, nil, 1)
			b.StartTimer()
			var wg sync.WaitGroup
			for r := 0; r < serveTotalReqs; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					if _, err := svc.Do(xs[r%len(xs)]); err != nil {
						b.Error(err)
					}
				}(r)
			}
			wg.Wait()
			b.StopTimer()
			svc.Close()
			// Collect the op's request-path garbage off the clock: GC debt
			// is proportional to requests served, not to wall time, so left
			// on the clock it taxes the faster arm's shorter ops relatively
			// more and understates the throughput ratio.
			runtime.GC()
			b.StartTimer()
		}
	}
}
