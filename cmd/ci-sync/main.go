// Command ci-sync enforces the CI/Makefile contract the ci.yml header
// comment promises: every workflow job body is exactly one `make <target>`
// invocation of a target that exists in the Makefile, so `make all`
// locally reproduces the full CI gate and the two can never drift.
//
// It is deliberately a line-level check, not a YAML parser: the contract
// is about the literal `run:` lines, and a stricter grammar here means a
// looser workflow file fails the build instead of silently diverging.
package main

import (
	"fmt"
	"log"
	"os"
	"regexp"
	"strings"
)

var (
	// runLine matches any step command in the workflow, whether the run key
	// opens a list item ("- run: …") or follows a name line ("run: …"). A
	// block-scalar command ("run: |") is captured as "|" and rejected by the
	// grammar below, so multi-line step bodies can't slip through either.
	runLine = regexp.MustCompile(`^\s*(?:-\s+)?run:\s*(.*?)\s*$`)
	// makeOnly is the full grammar a run line must satisfy.
	makeOnly = regexp.MustCompile(`^make ([A-Za-z0-9][A-Za-z0-9_-]*)$`)
	// target matches a Makefile rule header and captures its name.
	target = regexp.MustCompile(`^([A-Za-z0-9][A-Za-z0-9_-]*):`)
)

// makeTargets collects the rule names a Makefile defines.
func makeTargets(makefile string) map[string]bool {
	ts := map[string]bool{}
	for _, line := range strings.Split(makefile, "\n") {
		if m := target.FindStringSubmatch(line); m != nil {
			ts[m[1]] = true
		}
	}
	return ts
}

// checkWorkflow returns one message per run line that is not exactly a
// `make <target>` invocation of a known target.
func checkWorkflow(workflow string, targets map[string]bool) []string {
	var bad []string
	for i, line := range strings.Split(workflow, "\n") {
		m := runLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		cmd := m[1]
		tm := makeOnly.FindStringSubmatch(cmd)
		if tm == nil {
			bad = append(bad, fmt.Sprintf("line %d: run command %q is not exactly `make <target>`", i+1, cmd))
			continue
		}
		if !targets[tm[1]] {
			bad = append(bad, fmt.Sprintf("line %d: run command %q names a target missing from the Makefile", i+1, cmd))
		}
	}
	return bad
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ci-sync: ")
	mk, err := os.ReadFile("Makefile")
	if err != nil {
		log.Fatal(err)
	}
	wf, err := os.ReadFile(".github/workflows/ci.yml")
	if err != nil {
		log.Fatal(err)
	}
	bad := checkWorkflow(string(wf), makeTargets(string(mk)))
	for _, b := range bad {
		fmt.Fprintf(os.Stderr, "ci-sync: ci.yml %s\n", b)
	}
	if len(bad) > 0 {
		os.Exit(1)
	}
	fmt.Println("ci-sync: every ci.yml job body is a Makefile target")
}
