package main

import (
	"strings"
	"testing"
)

const mk = `
.PHONY: check smoke
check: lint build
	go vet ./...
smoke:
	go test ./...
bench-quick:
	go run ./cmd/bench-report
`

func TestMakeTargets(t *testing.T) {
	ts := makeTargets(mk)
	for _, want := range []string{"check", "smoke", "bench-quick"} {
		if !ts[want] {
			t.Errorf("target %q not found", want)
		}
	}
	if ts["go"] || ts[""] {
		t.Error("recipe lines misparsed as targets")
	}
}

func TestCheckWorkflow(t *testing.T) {
	ts := makeTargets(mk)
	ok := `
jobs:
  check:
    steps:
      - run: make check
      - name: quick
        run: make bench-quick
`
	if bad := checkWorkflow(ok, ts); len(bad) != 0 {
		t.Fatalf("clean workflow flagged: %v", bad)
	}
	for name, wf := range map[string]string{
		"raw-command":    "      - run: go test ./...\n",
		"extra-args":     "      - run: make check VERBOSE=1\n",
		"unknown-target": "      - run: make deploy\n",
		"shell-chain":    "      - run: make check && make smoke\n",
	} {
		bad := checkWorkflow(wf, ts)
		if len(bad) != 1 {
			t.Errorf("%s: got %d findings (%v), want 1", name, len(bad), bad)
		}
	}
	multi := "  - run: make check\n  - run: rm -rf /\n  - run: make nope\n"
	bad := checkWorkflow(multi, ts)
	if len(bad) != 2 {
		t.Fatalf("multi: got %v, want 2 findings", bad)
	}
	if !strings.Contains(bad[0], "rm -rf") || !strings.Contains(bad[1], "missing from the Makefile") {
		t.Fatalf("multi: unexpected messages %v", bad)
	}
}
