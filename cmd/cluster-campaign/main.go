// Command cluster-campaign runs experiment R6: the partition-tolerant
// sharded serving fleet under node-level failure injection. A front-end
// router places model shards across simulated nodes by rendezvous hashing
// and drives diurnal multi-tenant load through them while fault scenarios
// (node crash/restart, slow nodes, majority/minority partition, message
// delay and loss) play out in virtual time. It compares remediation
// policies — none, detect (failure detector + retry + staleness
// rejection), and full (+ cross-node hedging + admission control) —
// reporting goodput, p50/p99 latency, shed/unavailable/expired counts,
// staleness, and accuracy under fire. Fixed seeds make every run
// bit-reproducible regardless of -workers.
//
// Observability: -obs-addr serves /metrics (with per-node and per-shard
// labeled series), /traces and /debug/pprof/ while the campaign runs;
// -metrics-out writes a deterministic dump on exit. -obs-selfcheck probes
// the HTTP endpoint in-process — the CI smoke test.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster-campaign: ")
	seed := flag.Uint64("seed", 1234, "campaign seed (same seed = identical tables)")
	quick := flag.Bool("quick", false, "run the reduced-size variant")
	scenario := flag.String("scenario", "all", "fault scenario to run: all, none, crash, slow, or partition")
	nodes := flag.Int("nodes", 0, "fleet size (0 = default)")
	duration := flag.Float64("duration", 0, "arrival window in virtual seconds (0 = default)")
	workers := flag.Int("workers", 0, "tile-engine worker count (0 = all CPUs); any value yields bit-identical output")
	selfcheck := flag.Bool("obs-selfcheck", false, "after the campaign, probe /metrics, /traces and /debug/pprof/profile over HTTP (requires -obs-addr)")
	var hook obs.Hook
	hook.BindFlags(flag.CommandLine)
	flag.Parse()
	par.SetWorkers(*workers)
	if *selfcheck && hook.Addr == "" {
		log.Fatal("-obs-selfcheck requires -obs-addr")
	}
	if err := hook.Start(); err != nil {
		log.Fatal(err)
	}
	par.Instrument(hook.Registry)

	cfg := cluster.DefaultCampaignConfig(*seed, *quick)
	cfg.Obs = hook.Registry
	if *nodes > 0 {
		cfg.Nodes = *nodes
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	switch *scenario {
	case "all":
	case "none":
		cfg.Scenarios = nil
	case "crash", "slow", "partition":
		cfg.Scenarios = []string{*scenario}
	default:
		log.Fatalf("unknown scenario %q (want all, none, crash, slow, or partition)", *scenario)
	}

	var err error
	if *scenario == "all" && *nodes == 0 && *duration == 0 {
		e, _ := core.Lookup("R6")
		fmt.Printf("=== %s: %s ===\npaper: %s\n\n", e.ID, e.Title, e.PaperClaim)
		err = e.Run(os.Stdout, *seed, *quick)
	} else {
		err = cluster.RunR6(os.Stdout, cfg)
	}
	if err == nil && *selfcheck {
		err = runSelfcheck(hook.Server())
	}
	if ferr := hook.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runSelfcheck exercises the live observability endpoint the way the CI
// smoke test needs: every path must answer 200 with a non-empty body, and
// /metrics must carry the fleet counters — labeled per-node series
// included — from the campaign that just ran.
func runSelfcheck(s *obs.Server) error {
	if s == nil {
		return fmt.Errorf("obs-selfcheck: HTTP endpoint is not running")
	}
	base := "http://" + s.Addr()
	client := &http.Client{Timeout: 30 * time.Second}
	for _, path := range []string{"/metrics", "/traces", "/debug/pprof/profile?seconds=1"} {
		body, err := fetch(client, base+path)
		if err != nil {
			return fmt.Errorf("obs-selfcheck: %s: %w", path, err)
		}
		if path == "/metrics" {
			for _, series := range []string{"cluster_sim_completed_total", `cluster_node_served_total{node="0"}`} {
				if !bytes.Contains(body, []byte(series)) {
					return fmt.Errorf("obs-selfcheck: /metrics is missing %s", series)
				}
			}
		}
		fmt.Printf("obs-selfcheck: GET %-32s %d bytes OK\n", path, len(body))
	}
	return nil
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("empty body")
	}
	return body, nil
}
