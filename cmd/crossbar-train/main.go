// Command crossbar-train regenerates the analog-crossbar training
// experiments of §II: the Fig. 1 cycle demonstration (F1), the Fig. 2 RRAM
// pulse response (F2), the RPU device-spec sweep (C1), the PCM study (C2)
// and the asymmetric-device training-algorithm comparison (C3).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crossbar-train: ")
	seed := flag.Uint64("seed", 1234, "experiment seed")
	quick := flag.Bool("quick", false, "run reduced-size variants")
	only := flag.String("experiment", "", "run a single experiment (F1, F2, C0, C1, C2, C3, C7)")
	flag.Parse()

	ids := []string{"F1", "F2", "C0", "C1", "C2", "C3", "C7"}
	if *only != "" {
		ids = []string{*only}
	}
	for _, id := range ids {
		e, ok := core.Lookup(id)
		if !ok {
			log.Fatalf("unknown experiment %q", id)
		}
		fmt.Printf("\n=== %s: %s ===\npaper: %s\n\n", e.ID, e.Title, e.PaperClaim)
		if err := e.Run(os.Stdout, *seed, *quick); err != nil {
			log.Fatal(err)
		}
	}
}
