// Command fault-campaign runs the fault-injection degradation sweeps of
// experiment R1: accuracy and remediation cost as the stuck-fault rate
// rises, for the analog-training MLP, the X-MANN distributed memory, and
// the LSH/TCAM few-shot pipeline. Fixed seeds make every run
// bit-reproducible.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/par"
)

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %w", f, err)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fault-campaign: ")
	seed := flag.Uint64("seed", 1234, "campaign seed (same seed = identical fault history)")
	quick := flag.Bool("quick", false, "run reduced-size variants")
	rates := flag.String("rates", "", "comma-separated stuck-fault rates (default 0,0.05,0.10,0.20)")
	pipeline := flag.String("pipeline", "all", "which sweep to run: analog, xmann, tcam, or all")
	placements := flag.Int("placements", 0, "fault placements averaged per point (0 = default)")
	writefail := flag.Float64("writefail", -1, "pulse-train drop probability during programming (<0 = default)")
	workers := flag.Int("workers", 0, "tile-engine worker count (0 = all CPUs); any value yields bit-identical output")
	var hook obs.Hook
	hook.BindFlags(flag.CommandLine)
	flag.Parse()
	par.SetWorkers(*workers)
	if err := hook.Start(); err != nil {
		log.Fatal(err)
	}
	par.Instrument(hook.Registry)

	cfg := faults.DefaultSweepConfig(*seed, *quick)
	cfg.Obs = hook.Registry
	if *rates != "" {
		parsed, err := parseRates(*rates)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Rates = parsed
	}
	if *placements > 0 {
		cfg.Placements = *placements
	}
	if *writefail >= 0 {
		cfg.WriteFail = *writefail
	}

	var err error
	switch *pipeline {
	case "all":
		if *rates != "" || *placements > 0 || *writefail >= 0 {
			log.Print("note: -rates/-placements/-writefail apply to single pipelines; -pipeline all runs the registered R1 configuration")
		}
		e, _ := core.Lookup("R1")
		fmt.Printf("=== %s: %s ===\npaper: %s\n\n", e.ID, e.Title, e.PaperClaim)
		err = e.Run(os.Stdout, *seed, *quick)
	case "analog":
		printTable(faults.AnalogSweep(cfg))
	case "xmann":
		printTable(faults.XMannSweep(cfg))
	case "tcam":
		printTable(faults.TCAMSweep(cfg))
	default:
		log.Fatalf("unknown pipeline %q (want analog, xmann, tcam, or all)", *pipeline)
	}
	if ferr := hook.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		log.Fatal(err)
	}
}

func printTable(points []faults.Point) {
	fmt.Printf("%-8s %-14s %-10s %-10s %-10s %-8s %s\n",
		"rate", "strategy", "accuracy", "residual", "pulses", "reads", "remapped")
	for _, p := range points {
		fmt.Printf("%-8.2f %-14s %-10.4f %-10.4f %-10.0f %-8.1f %.1f\n",
			p.Rate, p.Strategy, p.Accuracy, p.Residual, p.AvgPulses, p.AvgReads, p.AvgRemapped)
	}
}
