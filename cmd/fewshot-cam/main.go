// Command fewshot-cam regenerates the §IV CAM/TCAM studies: few-shot
// retrieval accuracy across metrics and precisions (C4), the cosine-vs-LSH
// comparison of Fig. 5 (F5), the TCAM-vs-GPU memory-search costs (C5), and
// the 2-FeFET vs 16T CMOS cell comparison (C6).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fewshot-cam: ")
	seed := flag.Uint64("seed", 1234, "experiment seed")
	quick := flag.Bool("quick", false, "run reduced-size variants")
	only := flag.String("experiment", "", "run a single experiment (C4, F5, C5, C6)")
	flag.Parse()

	ids := []string{"C4", "F5", "C5", "C6"}
	if *only != "" {
		ids = []string{*only}
	}
	for _, id := range ids {
		e, ok := core.Lookup(id)
		if !ok {
			log.Fatalf("unknown experiment %q", id)
		}
		fmt.Printf("\n=== %s: %s ===\npaper: %s\n\n", e.ID, e.Title, e.PaperClaim)
		if err := e.Run(os.Stdout, *seed, *quick); err != nil {
			log.Fatal(err)
		}
	}
}
