// Command recsys-char regenerates the §V recommendation-workload
// characterization (experiment T2): per-operator intensity, roofline
// placement, capacity accounting, embedding-locality study, and a
// functional CTR training run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recsys-char: ")
	seed := flag.Uint64("seed", 1234, "experiment seed")
	quick := flag.Bool("quick", false, "run a reduced-size variant")
	flag.Parse()

	e, _ := core.Lookup("T2")
	fmt.Printf("=== %s: %s ===\npaper: %s\n\n", e.ID, e.Title, e.PaperClaim)
	if err := e.Run(os.Stdout, *seed, *quick); err != nil {
		log.Fatal(err)
	}
}
