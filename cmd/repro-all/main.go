// Command repro-all runs the complete experiment registry (every figure,
// claim, and table of the paper) and writes the results to stdout — the
// harness used to produce EXPERIMENTS.md.
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro-all: ")
	seed := flag.Uint64("seed", 1234, "experiment seed")
	quick := flag.Bool("quick", false, "run reduced-size variants")
	workers := flag.Int("workers", 0, "tile-engine worker count (0 = all CPUs); any value yields bit-identical output")
	var hook obs.Hook
	hook.BindFlags(flag.CommandLine)
	flag.Parse()
	par.SetWorkers(*workers)
	if err := hook.Start(); err != nil {
		log.Fatal(err)
	}
	par.Instrument(hook.Registry)

	err := core.RunAll(os.Stdout, *seed, *quick)
	if ferr := hook.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		log.Fatal(err)
	}
}
