// Command serve-campaign runs experiment R2: the self-healing concurrent
// inference service under open-loop Poisson load and progressive fault
// injection. For each pipeline (analog digits MLP on PCM devices, X-MANN
// distributed memory) it compares serving policies — none, retry-only, and
// the full self-healing stack (retry + hedged reads + canary-fed circuit
// breaker + background recalibration + digital fallback) — reporting
// goodput, p50/p99 latency, deadline-miss rate, and accuracy under fire.
// Fixed seeds make every run bit-reproducible.
//
// Observability: -obs-addr serves /metrics, /traces and /debug/pprof/ while
// the campaign runs; -metrics-out and -trace-out write deterministic dumps
// on exit (byte-identical across -workers values). -obs-selfcheck probes
// the HTTP endpoint in-process after the campaign — the CI smoke test.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve-campaign: ")
	seed := flag.Uint64("seed", 1234, "campaign seed (same seed = identical tables)")
	quick := flag.Bool("quick", false, "run the reduced-size variant")
	pipeline := flag.String("pipeline", "all", "which campaign to run: mlp, xmann, or all")
	replicas := flag.Int("replicas", 0, "replica pool size (0 = default)")
	rate := flag.Float64("rate", 0, "arrival rate in requests/s (0 = default)")
	duration := flag.Float64("duration", 0, "arrival window in virtual seconds (0 = default)")
	batch := flag.Int("batch", 0, "coalesce up to N queued requests per dispatch on every policy arm (0 or 1 = off)")
	workers := flag.Int("workers", 0, "tile-engine worker count (0 = all CPUs); any value yields bit-identical output")
	selfcheck := flag.Bool("obs-selfcheck", false, "after the campaign, probe /metrics, /traces and /debug/pprof/profile over HTTP (requires -obs-addr)")
	var hook obs.Hook
	hook.BindFlags(flag.CommandLine)
	flag.Parse()
	par.SetWorkers(*workers)
	if *selfcheck && hook.Addr == "" {
		log.Fatal("-obs-selfcheck requires -obs-addr")
	}
	if err := hook.Start(); err != nil {
		log.Fatal(err)
	}
	par.Instrument(hook.Registry)

	cfg := serve.DefaultCampaignConfig(*seed, *quick)
	cfg.Obs = hook.Registry
	cfg.Tracer = hook.Tracer
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	if *rate > 0 {
		cfg.Rate = *rate
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	cfg = cfg.WithBatch(*batch)

	var err error
	switch *pipeline {
	case "all":
		if *replicas > 0 || *rate > 0 || *duration > 0 || *batch > 1 {
			log.Print("note: -replicas/-rate/-duration/-batch apply to single pipelines; -pipeline all runs the registered R2 configuration")
		}
		e, _ := core.Lookup("R2")
		fmt.Printf("=== %s: %s ===\npaper: %s\n\n", e.ID, e.Title, e.PaperClaim)
		err = e.Run(os.Stdout, *seed, *quick)
	case "mlp":
		fmt.Print(serve.FormatTable("analog digits MLP (PCM devices)", serve.MLPCampaign(cfg)))
	case "xmann":
		fmt.Print(serve.FormatTable("X-MANN distributed memory", serve.XMannCampaign(cfg)))
	default:
		log.Fatalf("unknown pipeline %q (want mlp, xmann, or all)", *pipeline)
	}
	if err == nil && *selfcheck {
		err = runSelfcheck(hook.Server())
	}
	if ferr := hook.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runSelfcheck exercises the live observability endpoint the way the CI
// smoke test needs: every path must answer 200 with a non-empty body, and
// /metrics must carry at least one serve_sim series from the campaign that
// just ran.
func runSelfcheck(s *obs.Server) error {
	if s == nil {
		return fmt.Errorf("obs-selfcheck: HTTP endpoint is not running")
	}
	base := "http://" + s.Addr()
	client := &http.Client{Timeout: 30 * time.Second}
	for _, path := range []string{"/metrics", "/traces", "/debug/pprof/profile?seconds=1"} {
		body, err := fetch(client, base+path)
		if err != nil {
			return fmt.Errorf("obs-selfcheck: %s: %w", path, err)
		}
		if path == "/metrics" && !bytes.Contains(body, []byte("serve_sim_completed_total")) {
			return fmt.Errorf("obs-selfcheck: /metrics is missing serve_sim_completed_total")
		}
		fmt.Printf("obs-selfcheck: GET %-32s %d bytes OK\n", path, len(body))
	}
	return nil
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("empty body")
	}
	return body, nil
}
