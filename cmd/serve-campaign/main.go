// Command serve-campaign runs experiment R2: the self-healing concurrent
// inference service under open-loop Poisson load and progressive fault
// injection. For each pipeline (analog digits MLP on PCM devices, X-MANN
// distributed memory) it compares serving policies — none, retry-only, and
// the full self-healing stack (retry + hedged reads + canary-fed circuit
// breaker + background recalibration + digital fallback) — reporting
// goodput, p50/p99 latency, deadline-miss rate, and accuracy under fire.
// Fixed seeds make every run bit-reproducible.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve-campaign: ")
	seed := flag.Uint64("seed", 1234, "campaign seed (same seed = identical tables)")
	quick := flag.Bool("quick", false, "run the reduced-size variant")
	pipeline := flag.String("pipeline", "all", "which campaign to run: mlp, xmann, or all")
	replicas := flag.Int("replicas", 0, "replica pool size (0 = default)")
	rate := flag.Float64("rate", 0, "arrival rate in requests/s (0 = default)")
	duration := flag.Float64("duration", 0, "arrival window in virtual seconds (0 = default)")
	workers := flag.Int("workers", 0, "tile-engine worker count (0 = all CPUs); any value yields bit-identical output")
	flag.Parse()
	par.SetWorkers(*workers)

	cfg := serve.DefaultCampaignConfig(*seed, *quick)
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	if *rate > 0 {
		cfg.Rate = *rate
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}

	switch *pipeline {
	case "all":
		if *replicas > 0 || *rate > 0 || *duration > 0 {
			log.Print("note: -replicas/-rate/-duration apply to single pipelines; -pipeline all runs the registered R2 configuration")
		}
		e, _ := core.Lookup("R2")
		fmt.Printf("=== %s: %s ===\npaper: %s\n\n", e.ID, e.Title, e.PaperClaim)
		if err := e.Run(os.Stdout, *seed, *quick); err != nil {
			log.Fatal(err)
		}
	case "mlp":
		fmt.Print(serve.FormatTable("analog digits MLP (PCM devices)", serve.MLPCampaign(cfg)))
	case "xmann":
		fmt.Print(serve.FormatTable("X-MANN distributed memory", serve.XMannCampaign(cfg)))
	default:
		log.Fatalf("unknown pipeline %q (want mlp, xmann, or all)", *pipeline)
	}
}
