// Command train-campaign runs experiment R3: the kill-point chaos campaign
// for crash-safe resumable analog training. It trains a mixed-precision MLP
// on PCM crossbars under durable checkpointing (internal/ckpt), kills the
// run at sampled points — mid-epoch, mid-checkpoint-write, between the WAL
// append and the rename, and corrupting a just-committed file — recovers
// from the last good checkpoint each time, and prints the
// graceful-degradation table: kill rate × checkpoint interval × fault level
// → recovered accuracy, replayed epochs, and wasted device pulses, against
// the restart-from-scratch alternative. Fixed seeds make every table
// bit-reproducible; the run fails loudly if any arm is not bit-identical to
// its never-killed reference or recovery fails to dominate scratch restart.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train-campaign: ")
	seed := flag.Uint64("seed", 1234, "campaign seed (same seed = identical tables)")
	quick := flag.Bool("quick", false, "run the reduced-size variant")
	smoke := flag.Bool("smoke", false, "minimal CI run: one killed arm, invariants checked")
	workers := flag.Int("workers", 0, "tile-engine worker count (0 = all CPUs); any value yields bit-identical output")
	var hook obs.Hook
	hook.BindFlags(flag.CommandLine)
	flag.Parse()
	par.SetWorkers(*workers)
	if err := hook.Start(); err != nil {
		log.Fatal(err)
	}
	par.Instrument(hook.Registry)

	var err error
	if *smoke {
		cfg := chaos.DefaultConfig(*seed, true)
		cfg.Exp.Data.PerClass = 40
		cfg.KillRates = []int{0, 2}
		cfg.Levels = []float64{1}
		cfg.Obs = hook.Registry
		cfg.Tracer = hook.Tracer
		var results []chaos.ArmResult
		results, err = chaos.Run(cfg)
		if err == nil {
			fmt.Print(chaos.FormatTable(results))
			err = chaos.CheckInvariants(results)
		}
		if err == nil {
			fmt.Println("\nsmoke OK: bit-identical recovery, wasted-pulse dominance holds")
		}
	} else {
		e, _ := core.Lookup("R3")
		fmt.Printf("=== %s: %s ===\npaper: %s\n\n", e.ID, e.Title, e.PaperClaim)
		err = e.Run(os.Stdout, *seed, *quick)
	}
	if ferr := hook.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		log.Fatal(err)
	}
}
