// Command xmann-bench regenerates the §III-B comparison of the X-MANN
// crossbar accelerator against the GPU baseline over the MANN benchmark
// suite (experiment T1).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xmann-bench: ")
	seed := flag.Uint64("seed", 1234, "experiment seed")
	quick := flag.Bool("quick", false, "run a reduced suite")
	flag.Parse()

	e, _ := core.Lookup("T1")
	fmt.Printf("=== %s: %s ===\npaper: %s\n\n", e.ID, e.Title, e.PaperClaim)
	if err := e.Run(os.Stdout, *seed, *quick); err != nil {
		log.Fatal(err)
	}
}
