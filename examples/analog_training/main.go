// Analog training walkthrough: trains the same network on progressively
// less ideal devices and shows how the §II algorithmic fixes (zero-shifting
// and Tiki-Taka) recover accuracy on an aggressively asymmetric device —
// plus a look at the raw device physics behind Fig. 2.
package main

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/crossbar"
	"repro/internal/dataset"
)

func main() {
	cfg := analog.DefaultExperiment()
	cfg.Data = dataset.DigitsConfig{Classes: 6, Dim: 16, PerClass: 80, Noise: 0.5, Separation: 1}
	cfg.Hidden = []int{16}
	cfg.Epochs = 8

	fmt.Println("device physics: RRAM conductance under alternating pulse ramps")
	trace := crossbar.PulseResponse(crossbar.RRAM(), 1, 200, 200, 42)
	for i := 0; i < len(trace); i += 40 {
		fmt.Printf("  pulse %3d: w = %+.3f\n", i, trace[i])
	}
	fmt.Printf("  symmetry point of this device family: %+.3f\n\n",
		crossbar.FindSymmetryPoint(crossbar.RRAM(), 2000, 1))

	asym := &crossbar.SoftBoundsModel{P: crossbar.SoftBoundsParams{
		SlopeUp: 0.002, SlopeDown: 0.012, WMin: -1, WMax: 1,
	}}

	type runSpec struct {
		name  string
		model crossbar.Model
		mode  analog.Mode
	}
	runs := []runSpec{
		{"ideal device, plain SGD", crossbar.Ideal(), analog.PlainSGD},
		{"asymmetric device, plain SGD", asym, analog.PlainSGD},
		{"asymmetric device, zero-shift", asym, analog.ZeroShift},
		{"asymmetric device, Tiki-Taka", asym, analog.TikiTaka},
		{"RRAM (noisy), mixed precision", crossbar.RRAM(), analog.MixedPrecision},
	}
	digital := analog.RunDigitsDigital(cfg)
	fmt.Printf("%-34s %.3f\n", "fp32 digital reference", digital.TestAccuracy)
	for _, r := range runs {
		res, _ := analog.RunDigitsAnalog(analog.DefaultOptions(r.model, r.mode), cfg)
		fmt.Printf("%-34s %.3f   (final epoch loss %.3f)\n",
			r.name, res.TestAccuracy, res.EpochLoss[len(res.EpochLoss)-1])
	}
}
