// DNC data-structure demo (§I): stores a "subway line" of station feature
// vectors in a differentiable-neural-computer memory using dynamic
// allocation, then rides the temporal link matrix forward and backward —
// recovering the route with no content keys at all, the mechanism behind
// the paper's "navigating the London underground" example.
package main

import (
	"fmt"

	"repro/internal/mann"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

var stations = []string{
	"Paddington", "Baker Street", "King's Cross", "Moorgate", "Liverpool Street",
}

func main() {
	const width = 12
	rng := rngutil.New(7)
	mem := mann.NewDNCMemory(32, width)

	// Each station gets a feature vector; write them in route order with
	// pure allocation-gated writes.
	features := make(map[string]tensor.Vector, len(stations))
	ones := tensor.NewVector(width)
	ones.Fill(1)
	var firstWrite tensor.Vector
	for i, name := range stations {
		v := make(tensor.Vector, width)
		for j := range v {
			v[j] = rng.Normal(0, 1)
		}
		features[name] = v
		ww := mem.Write(v, 5, 1, 1, ones, v)
		if i == 0 {
			firstWrite = ww
		}
	}

	nearest := func(r tensor.Vector) string {
		best, bestSim := "?", -2.0
		for name, f := range features {
			if sim := tensor.CosineSimilarity(r, f); sim > bestSim {
				best, bestSim = name, sim
			}
		}
		return best
	}

	fmt.Println("route stored. riding the temporal links eastbound:")
	attn := firstWrite
	fmt.Printf("  start:  %s\n", nearest(mem.Read(attn)))
	for i := 1; i < len(stations); i++ {
		attn = mem.ReadForward(attn)
		if s := attn.Sum(); s > 0 {
			attn.Scale(1 / s)
		}
		fmt.Printf("  next:   %s\n", nearest(mem.Read(attn)))
	}

	fmt.Println("\nand one stop back westbound:")
	attn = mem.ReadBackward(attn)
	if s := attn.Sum(); s > 0 {
		attn.Scale(1 / s)
	}
	fmt.Printf("  prev:   %s\n", nearest(mem.Read(attn)))

	fmt.Println("\ncontent-based query (\"where is King's Cross?\"):")
	w := mem.ContentWeights(features["King's Cross"], 50)
	fmt.Printf("  found:  %s (attention peak %.2f at slot %d)\n",
		nearest(mem.Read(w)), w[w.ArgMax()], w.ArgMax())

	fmt.Printf("\nmemory ops consumed: %+v\n", mem.Ops)
}
