// Few-shot TCAM pipeline, end to end with images (Fig. 5): a small CNN is
// trained as a classifier on base glyph classes; its penultimate embedding
// then powers few-shot episodes over novel classes, comparing the GPU-style
// fp32 cosine memory against LSH signatures searched in a simulated TCAM —
// including the search-energy bill for both.
package main

import (
	"fmt"

	"repro/internal/cam"
	"repro/internal/dataset"
	"repro/internal/mann"
	"repro/internal/nn"
	"repro/internal/perfmodel"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

const (
	baseClasses  = 20 // CNN trains on these
	novelClasses = 10 // few-shot episodes draw from these
	embedDim     = 32
)

func main() {
	rng := rngutil.New(2024)
	glyphCfg := dataset.DefaultGlyphs()
	glyphCfg.Classes = baseClasses + novelClasses
	u := dataset.NewGlyphUniverse(glyphCfg, rng.Child("glyphs"))

	// 1. Train CNN embedding on the base classes (classifier pre-training,
	// the paper's 4-layer-CNN "helper network" at small scale).
	net := nn.NewConvNet(1, glyphCfg.Size, glyphCfg.Size, []int{8}, embedDim, rng.Child("cnn"))
	head := nn.NewDenseLayer(embedDim, baseClasses, nn.SoftmaxAct, true, nn.DenseFactory(rng.Child("head")))
	fmt.Println("training CNN embedding on base classes...")
	tr := rng.Child("train")
	for step := 0; step < 1500; step++ {
		c := tr.Intn(baseClasses)
		im := u.Sample(c)
		emb := net.Embed(im)
		probs := head.Forward(emb)
		dy := probs.Clone()
		dy[c] -= 1
		dEmb := head.Backward(dy, 0.02)
		net.Backward(dEmb, 0.02)
		if (step+1)%500 == 0 {
			fmt.Printf("  step %4d: loss %.3f\n", step+1, nn.CrossEntropy(probs, c))
		}
	}

	// 2. Few-shot episodes over the held-out novel classes.
	embed := func(im *nn.Image) tensor.Vector { return net.Embed(im) }
	episodes, nway, kshot, nquery := 30, 5, 1, 3

	cosine := &mann.ExactRetriever{Metric: mann.Cosine}
	lshRet := mann.NewLSHRetriever(embedDim, 256, rng.Child("lsh"))

	er := rng.Child("episodes")
	correctCos, correctLSH, total := 0, 0, 0
	for e := 0; e < episodes; e++ {
		cosine.Reset()
		lshRet.Reset()
		perm := er.Perm(novelClasses)[:nway]
		for local, c := range perm {
			for k := 0; k < kshot; k++ {
				v := embed(u.Sample(baseClasses + c))
				cosine.Store(v, local)
				lshRet.Store(v, local)
			}
		}
		for local, c := range perm {
			for q := 0; q < nquery; q++ {
				v := embed(u.Sample(baseClasses + c))
				if cosine.Classify(v) == local {
					correctCos++
				}
				if lshRet.Classify(v) == local {
					correctLSH++
				}
				total++
			}
		}
	}
	fmt.Printf("\n%d-way %d-shot on novel glyph classes (%d queries):\n", nway, kshot, total)
	fmt.Printf("  fp32 cosine memory:   %.3f\n", float64(correctCos)/float64(total))
	fmt.Printf("  LSH + TCAM search:    %.3f\n", float64(correctLSH)/float64(total))

	// 3. What each memory search costs (per §IV-B.2 accounting).
	engine := cam.Engine{Tech: cam.CMOS16T(), Geo: cam.DefaultGeometry()}
	fefet := cam.Engine{Tech: cam.FeFET2T(), Geo: cam.DefaultGeometry()}
	entries := nway * kshot
	gpu := cam.GPUSearchBaseline(entries, embedDim, perfmodel.DefaultGPU())
	cmos := engine.SearchCost(entries, 256)
	fe := fefet.SearchCost(entries, 256)
	fmt.Printf("\nper-search cost at memory size %d:\n", entries)
	fmt.Printf("  GPU+DRAM cosine: %8.3g s  %8.3g J\n", gpu.Latency, gpu.Energy)
	fmt.Printf("  16T CMOS TCAM:   %8.3g s  %8.3g J\n", cmos.Latency, cmos.Energy)
	fmt.Printf("  2-FeFET TCAM:    %8.3g s  %8.3g J\n", fe.Latency, fe.Energy)
}
