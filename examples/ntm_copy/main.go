// Trainable NTM demo (§III): trains a Neural Turing Machine end-to-end on
// the classic copy task — backpropagation flows through the LSTM
// controller, the content/interpolate/shift addressing, the erase-add soft
// writes, and the soft reads. These differentiable-memory operations are
// exactly the kernels X-MANN accelerates; the demo finishes by pricing the
// trained machine's memory traffic on the accelerator model vs the GPU
// baseline.
package main

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mann"
	"repro/internal/perfmodel"
	"repro/internal/rngutil"
	"repro/internal/tensor"
	"repro/internal/xmann"
)

func main() {
	const bits = 4
	rng := rngutil.New(33)
	m := mann.NewTrainableNTM(12, 8, bits+2, bits, 24, rng)
	dr := rng.Child("payloads")

	fmt.Println("training NTM on the copy task (1-3 item payloads)...")
	running := 0.7
	for i := 1; i <= 2500; i++ {
		n := 1 + dr.Intn(3)
		loss := m.CopyTaskLoss(dataset.CopyTask(n, bits, dr), 1.0, 10)
		running = 0.98*running + 0.02*loss
		if i%500 == 0 {
			fmt.Printf("  seq %5d: running recall BCE %.4f\n", i, running)
		}
	}

	// Show one copy episode: payload in, recalled bits out.
	payload := dataset.CopyTask(3, bits, dr)
	T := 2*len(payload) + 2
	xs := make([]tensor.Vector, T)
	start := tensor.NewVector(bits + 2)
	start[bits] = 1
	end := tensor.NewVector(bits + 2)
	end[bits+1] = 1
	xs[0] = start
	for i, p := range payload {
		v := tensor.NewVector(bits + 2)
		copy(v, p)
		xs[1+i] = v
	}
	xs[1+len(payload)] = end
	for t := 2 + len(payload); t < T; t++ {
		xs[t] = tensor.NewVector(bits + 2)
	}
	ys, _ := m.ForwardSeq(xs)
	fmt.Println("\nsample episode (threshold 0.5):")
	correct, total := 0, 0
	for i, p := range payload {
		y := ys[len(payload)+2+i]
		rec := make([]int, bits)
		for j := range rec {
			if y[j] > 0.5 {
				rec[j] = 1
			}
			if float64(rec[j]) == p[j] {
				correct++
			}
			total++
		}
		fmt.Printf("  stored %v -> recalled %v (p=%.2f %.2f %.2f %.2f)\n",
			p, rec, y[0], y[1], y[2], y[3])
	}
	fmt.Printf("bit accuracy on this episode: %d/%d\n", correct, total)

	// Price the trained machine's memory traffic (§III): trace the actual
	// soft reads/writes and run them through the accelerator model.
	w := xmann.WorkloadFromTrace("ntm-copy-trained", 12, 8, T, mann.MemOps{
		Similarities: int64(2 * T), SoftReads: int64(T), SoftWrites: int64(T),
	}, float64(4*24*(bits+2+8+24)))
	cmp := xmann.Compare([]xmann.Workload{w}, xmann.DefaultParams(), perfmodel.DefaultGPU())[0]
	fmt.Printf("\naccelerating this machine's memory ops (X-MANN model vs GPU):\n")
	fmt.Printf("  speedup %.1fx, energy reduction %.1fx per inference\n", cmp.Speedup, cmp.EnergyRatio)
	fmt.Println("  (tiny memories are launch-overhead wins; see cmd/xmann-bench for the suite)")
}
