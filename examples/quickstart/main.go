// Quickstart: a five-minute tour of the library's three pillars — analog
// crossbar training (§II), CAM-based few-shot retrieval (§IV), and
// recommendation-model characterization (§V).
package main

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/mann"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/recsys"
	"repro/internal/rngutil"
)

func main() {
	fmt.Println("== 1. Train an MLP on simulated analog crossbars ==")
	cfg := analog.DefaultExperiment()
	cfg.Data = dataset.DigitsConfig{Classes: 6, Dim: 16, PerClass: 60, Noise: 0.5, Separation: 1}
	cfg.Hidden = []int{12}
	cfg.Epochs = 6

	digital := analog.RunDigitsDigital(cfg)
	fmt.Printf("fp32 digital baseline:            %.3f test accuracy\n", digital.TestAccuracy)

	idealRes, _ := analog.RunDigitsAnalog(analog.DefaultOptions(crossbar.Ideal(), analog.PlainSGD), cfg)
	fmt.Printf("ideal analog device, plain SGD:   %.3f\n", idealRes.TestAccuracy)

	rramRes, _ := analog.RunDigitsAnalog(analog.DefaultOptions(crossbar.RRAM(), analog.TikiTaka), cfg)
	fmt.Printf("RRAM-like device, Tiki-Taka:      %.3f\n", rramRes.TestAccuracy)

	fmt.Println("\n== 2. Few-shot retrieval: fp32 cosine vs 4-bit TCAM metrics ==")
	u := dataset.NewFewShotUniverse(dataset.DefaultFewShot(), rngutil.New(7))
	eval := mann.EvalConfig{NWay: 5, KShot: 1, NQuery: 3, Episodes: 30, MemoryEntries: 256, Seed: 11}
	for _, r := range []mann.Retriever{
		&mann.ExactRetriever{Metric: mann.Cosine},
		&mann.QuantizedRetriever{Metric: mann.LinfL2, Q: quant.New(4, 0.4)},
		mann.NewLSHRetriever(u.Cfg.Dim, 512, rngutil.New(3)),
	} {
		fmt.Printf("%-24s %.3f accuracy\n", r.Name(), mann.EvaluateFewShot(u, r, eval))
	}

	fmt.Println("\n== 3. Recommendation workloads: where does the time go? ==")
	roof := perfmodel.Roofline{PeakFLOPS: 10e12, MemBW: 600e9}
	for _, c := range []recsys.Config{recsys.RMCEmbed(), recsys.RMCMLP()} {
		fmt.Printf("%-10s capacity %8.0f MB, dominant operator at batch 128: %s\n",
			c.Name, float64(recsys.CapacityBytes(c))/1e6, recsys.DominantOp(c, 128, roof))
	}
}
