// Recommendation-model walkthrough (§V): builds a DLRM-shaped model,
// trains it on a synthetic click log, and characterizes where a datacenter
// accelerator would spend its time — operator intensities, roofline bounds,
// model capacity, and the embedding-cache locality study.
package main

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/perfmodel"
	"repro/internal/recsys"
	"repro/internal/rngutil"
)

func main() {
	rng := rngutil.New(99)

	// 1. Train the functional model on a synthetic click log.
	model := recsys.NewModel(recsys.RMCSmall(), rng.Child("model"))
	log := dataset.NewClickLog(dataset.DefaultClickLog(), 2000, rng.Child("log"))
	train, test := log.Samples[:1600], log.Samples[1600:]
	fmt.Printf("click log: %d samples, base CTR %.2f\n", len(log.Samples), log.CTR())
	fmt.Printf("held-out logloss before training: %.3f\n", model.LogLoss(test))
	for epoch := 0; epoch < 4; epoch++ {
		var loss float64
		for _, s := range train {
			loss += model.TrainStep(s, 0.03)
		}
		fmt.Printf("  epoch %d: train logloss %.3f\n", epoch+1, loss/float64(len(train)))
	}
	fmt.Printf("held-out logloss after training:  %.3f (accuracy %.3f)\n\n",
		model.LogLoss(test), model.Accuracy(test))

	// 2. Characterize the three §V regimes.
	roof := perfmodel.Roofline{PeakFLOPS: 10e12, MemBW: 600e9}
	for _, cfg := range []recsys.Config{recsys.RMCSmall(), recsys.RMCEmbed(), recsys.RMCMLP()} {
		fmt.Printf("%s (capacity %.0f MB, dominant op: %s)\n",
			cfg.Name, float64(recsys.CapacityBytes(cfg))/1e6, recsys.DominantOp(cfg, 128, roof))
		for _, op := range recsys.Profile(cfg, 128, roof) {
			fmt.Printf("  %-12s intensity %8.2f FLOP/B  -> %s-bound\n", op.Name, op.Intensity, op.Bound)
		}
	}

	// 3. Embedding locality: how far can an on-chip cache get?
	fmt.Println("\nembedding cache hit rate vs capacity (1M-row table, zipf 1.2):")
	for _, kb := range []int{16, 64, 256, 1024} {
		hr := recsys.EmbeddingCacheStudy(1_000_000, 64, kb<<10, 1.2, 30000, 5)
		fmt.Printf("  %5d KB: %.3f\n", kb, hr)
	}
	fmt.Printf("\nproduction-scale capacity (analytic): %.1f GB\n",
		float64(recsys.CapacityBytes(recsys.ProductionScale()))/1e9)
}
