// Package analog implements the training algorithms that make simulated
// resistive crossbar arrays usable for neural-network training despite
// device non-idealities (§II of the paper):
//
//   - plain in-crossbar SGD (the baseline that degrades on asymmetric
//     devices),
//   - zero-shifting, which re-references each device to its symmetry point
//     (paper ref. [30]),
//   - Tiki-Taka, the coupled-dynamical-system algorithm that trains
//     indistinguishably from ideal devices even with aggressive asymmetry
//     (paper ref. [35]),
//   - mixed-precision training with a digital update accumulator
//     (paper ref. [25]), and
//   - hardware-aware drop-connect training for stuck devices
//     (paper ref. [33]).
//
// Every algorithm is packaged as an nn.Mat implementation, so the unchanged
// network code in package nn trains through them.
package analog

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// Mode selects the analog training algorithm.
type Mode int

// Available training modes.
const (
	PlainSGD Mode = iota
	ZeroShift
	TikiTaka
	MixedPrecision
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case PlainSGD:
		return "plain-sgd"
	case ZeroShift:
		return "zero-shift"
	case TikiTaka:
		return "tiki-taka"
	case MixedPrecision:
		return "mixed-precision"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options configures an analog training session.
type Options struct {
	Model crossbar.Model
	Cfg   crossbar.Config
	Mode  Mode

	// InitScale is the half-range of the uniform random weights programmed
	// into the arrays before training (symmetry breaking).
	InitScale float64

	// SymmetrizeIters is the number of alternating up/down pulse pairs used
	// to locate device symmetry points for zero-shifting (and Tiki-Taka's A
	// array). 0 selects a sensible default.
	SymmetrizeIters int

	// Tiki-Taka hyperparameters (used when Mode == TikiTaka).
	TTGamma         float64 // mixing coefficient γ for the fast array
	TTTransferEvery int     // updates between column transfers
	TTTransferLR    float64 // learning rate of the A→C transfer
}

// DefaultOptions returns a configuration that trains the synthetic-digits
// MLP on the given device model.
func DefaultOptions(model crossbar.Model, mode Mode) Options {
	return Options{
		Model:           model,
		Cfg:             crossbar.DefaultConfig(),
		Mode:            mode,
		InitScale:       0.2,
		SymmetrizeIters: 500,
		TTGamma:         0.1,
		TTTransferEvery: 2,
		TTTransferLR:    0.1,
	}
}

// Session owns the arrays created for one training run so that time-based
// effects (drift) and maintenance (PCM reset) can be applied globally, the
// way a chip controller would.
type Session struct {
	opts      Options
	rng       *rngutil.Source
	arrays    []*crossbar.Array
	hook      crossbar.FaultHook
	residuals []float64
}

// NewSession creates a training session.
func NewSession(opts Options, rng *rngutil.Source) *Session {
	if opts.SymmetrizeIters <= 0 {
		opts.SymmetrizeIters = 500
	}
	return &Session{opts: opts, rng: rng}
}

// Arrays returns all crossbar arrays created by this session's factory.
func (s *Session) Arrays() []*crossbar.Array { return s.arrays }

// AttachHook installs a fault hook (e.g. a faults.Engine) on every array the
// session has built and on every array it builds afterwards, so a fault
// campaign covers the whole training lifetime including initial programming.
func (s *Session) AttachHook(hook crossbar.FaultHook) {
	s.hook = hook
	for _, a := range s.arrays {
		a.SetFaultHook(hook)
	}
}

// ProgramResiduals reports the mean-absolute programming residual of each
// array initialization performed so far, in creation order — nonzero
// residuals reveal write failures and stuck devices at program time.
func (s *Session) ProgramResiduals() []float64 { return s.residuals }

// AdvanceTime applies dt seconds of device drift to every array.
func (s *Session) AdvanceTime(dt float64) {
	for _, a := range s.arrays {
		a.AdvanceTime(dt)
	}
}

// MaintainPCM performs the difference-preserving reset on any array whose
// PCM legs are close to saturation (§II-B.1).
func (s *Session) MaintainPCM(threshold float64) {
	for _, a := range s.arrays {
		if a.MaxSaturation() > threshold {
			a.ResetAll()
		}
	}
}

// newArray builds, registers and randomly initializes one array.
func (s *Session) newArray(rows, cols int, label string) *crossbar.Array {
	a := crossbar.NewArray(rows, cols, s.opts.Model, s.opts.Cfg, s.rng.Child(label))
	if s.hook != nil {
		a.SetFaultHook(s.hook)
	}
	s.arrays = append(s.arrays, a)
	return a
}

// programRandomInit writes small random weights into the array (relative to
// the given reference matrix, which may be nil for absolute programming).
func (s *Session) programRandomInit(a *crossbar.Array, ref *tensor.Matrix, label string) {
	ir := s.rng.Child(label + "-init")
	target := tensor.NewMatrix(a.Rows(), a.Cols())
	for i := range target.Data {
		target.Data[i] = ir.Uniform(-s.opts.InitScale, s.opts.InitScale)
		if ref != nil {
			target.Data[i] += ref.Data[i]
		}
	}
	_, residual := a.Program(target, 4000)
	s.residuals = append(s.residuals, residual)
}

// Factory returns an nn.MatFactory that builds weight storage according to
// the session's mode. Layer construction order is deterministic, so a fixed
// session seed reproduces an identical network.
func (s *Session) Factory() nn.MatFactory {
	idx := 0
	return func(rows, cols int) nn.Mat {
		idx++
		label := fmt.Sprintf("layer%d-%dx%d", idx, rows, cols)
		switch s.opts.Mode {
		case PlainSGD:
			a := s.newArray(rows, cols, label)
			s.programRandomInit(a, nil, label)
			return a
		case ZeroShift:
			return s.newZeroShifted(rows, cols, label)
		case TikiTaka:
			return s.newTikiTaka(rows, cols, label)
		case MixedPrecision:
			a := s.newArray(rows, cols, label)
			s.programRandomInit(a, nil, label)
			return newMixedPrecision(a, s.opts.Model.MeanStep(), s.rng.Child(label+"-mp"))
		}
		panic("analog: unknown mode")
	}
}
