package analog

import (
	"math"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// tinyExperiment is a fast configuration for unit tests (<1s per run).
func tinyExperiment() ExperimentConfig {
	return ExperimentConfig{
		Hidden:    []int{12},
		Epochs:    8,
		LR:        0.05,
		Seed:      99,
		Data:      dataset.DigitsConfig{Classes: 6, Dim: 16, PerClass: 60, Noise: 0.5, Separation: 1},
		TrainFrac: 0.8,
	}
}

// asymmetricModel is a noiseless but strongly asymmetric soft-bounds device,
// the §II-B.5 stress case.
func asymmetricModel() *crossbar.SoftBoundsModel {
	return &crossbar.SoftBoundsModel{P: crossbar.SoftBoundsParams{
		SlopeUp:   0.002,
		SlopeDown: 0.012,
		WMin:      -1, WMax: 1,
	}}
}

func TestDigitalBaselineLearns(t *testing.T) {
	res := RunDigitsDigital(tinyExperiment())
	if res.TestAccuracy < 0.8 {
		t.Fatalf("digital baseline accuracy %v; experiment config broken", res.TestAccuracy)
	}
}

func TestIdealAnalogMatchesDigital(t *testing.T) {
	cfg := tinyExperiment()
	digital := RunDigitsDigital(cfg)
	opts := DefaultOptions(crossbar.Ideal(), PlainSGD)
	analog, _ := RunDigitsAnalog(opts, cfg)
	if analog.TestAccuracy < digital.TestAccuracy-0.08 {
		t.Fatalf("ideal-device analog SGD %v far below digital %v", analog.TestAccuracy, digital.TestAccuracy)
	}
}

func TestAsymmetryDegradesPlainSGD(t *testing.T) {
	cfg := tinyExperiment()
	ideal, _ := RunDigitsAnalog(DefaultOptions(crossbar.Ideal(), PlainSGD), cfg)
	asym, _ := RunDigitsAnalog(DefaultOptions(asymmetricModel(), PlainSGD), cfg)
	if asym.TestAccuracy >= ideal.TestAccuracy-0.03 {
		t.Fatalf("expected degradation: ideal %v vs asymmetric %v", ideal.TestAccuracy, asym.TestAccuracy)
	}
}

func TestTikiTakaRecoversAsymmetricDevice(t *testing.T) {
	cfg := tinyExperiment()
	plain, _ := RunDigitsAnalog(DefaultOptions(asymmetricModel(), PlainSGD), cfg)
	tt, _ := RunDigitsAnalog(DefaultOptions(asymmetricModel(), TikiTaka), cfg)
	if tt.TestAccuracy <= plain.TestAccuracy {
		t.Fatalf("Tiki-Taka %v should beat plain SGD %v on asymmetric devices", tt.TestAccuracy, plain.TestAccuracy)
	}
	ideal, _ := RunDigitsAnalog(DefaultOptions(crossbar.Ideal(), PlainSGD), cfg)
	if tt.TestAccuracy < ideal.TestAccuracy-0.1 {
		t.Fatalf("Tiki-Taka %v should approach ideal-device accuracy %v", tt.TestAccuracy, ideal.TestAccuracy)
	}
}

func TestZeroShiftHelpsAsymmetricDevice(t *testing.T) {
	cfg := tinyExperiment()
	plain, _ := RunDigitsAnalog(DefaultOptions(asymmetricModel(), PlainSGD), cfg)
	zs, _ := RunDigitsAnalog(DefaultOptions(asymmetricModel(), ZeroShift), cfg)
	if zs.TestAccuracy < plain.TestAccuracy-0.02 {
		t.Fatalf("zero-shift %v should not be worse than plain %v", zs.TestAccuracy, plain.TestAccuracy)
	}
}

func TestMixedPrecisionOnNoisyDevice(t *testing.T) {
	cfg := tinyExperiment()
	digital := RunDigitsDigital(cfg)
	mp, _ := RunDigitsAnalog(DefaultOptions(crossbar.RRAM(), MixedPrecision), cfg)
	if mp.TestAccuracy < digital.TestAccuracy-0.1 {
		t.Fatalf("mixed precision %v should approach digital %v even on RRAM", mp.TestAccuracy, digital.TestAccuracy)
	}
}

func TestZeroShiftedMatReferencing(t *testing.T) {
	opts := DefaultOptions(asymmetricModel(), ZeroShift)
	opts.InitScale = 0 // no random init: effective weights must start ≈ 0
	sess := NewSession(opts, rngutil.New(5))
	z := sess.Factory()(6, 6).(*zeroShiftedMat)
	eff := z.EffectiveWeights()
	if eff.MaxAbs() > 0.05 {
		t.Fatalf("zero-shifted effective weights should start near 0, max %v", eff.MaxAbs())
	}
	// The raw array, by contrast, sits at the (non-zero) symmetry point.
	raw := z.a.Weights()
	want := asymmetricModel().SymmetryPoint()
	if math.Abs(raw.At(0, 0)-want) > 0.1 {
		t.Fatalf("raw weight %v should sit near symmetry point %v", raw.At(0, 0), want)
	}
}

func TestTikiTakaTransferMovesC(t *testing.T) {
	opts := DefaultOptions(crossbar.Ideal(), TikiTaka)
	opts.TTTransferEvery = 1
	sess := NewSession(opts, rngutil.New(7))
	tt := sess.Factory()(4, 4).(*tikiTakaMat)
	cBefore := tt.c.EffectiveWeights()
	u := tensor.Vector{1, 1, 1, 1}
	for k := 0; k < 8; k++ {
		tt.Update(0.05, u, u)
	}
	cAfter := tt.c.EffectiveWeights()
	moved := 0.0
	for i := range cAfter.Data {
		moved += math.Abs(cAfter.Data[i] - cBefore.Data[i])
	}
	if moved == 0 {
		t.Fatal("transfers should move the slow array C")
	}
}

func TestSessionRegistersArrays(t *testing.T) {
	sess := NewSession(DefaultOptions(crossbar.PCM(), PlainSGD), rngutil.New(9))
	f := sess.Factory()
	f(4, 4)
	f(3, 5)
	if len(sess.Arrays()) != 2 {
		t.Fatalf("expected 2 arrays, got %d", len(sess.Arrays()))
	}
	sess.AdvanceTime(1000)  // must not panic
	sess.MaintainPCM(0.001) // force reset path
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		PlainSGD: "plain-sgd", ZeroShift: "zero-shift",
		TikiTaka: "tiki-taka", MixedPrecision: "mixed-precision",
	} {
		if m.String() != want {
			t.Errorf("Mode.String() = %q, want %q", m.String(), want)
		}
	}
}

func TestDropConnectMasksDuringTraining(t *testing.T) {
	rng := rngutil.New(11)
	inner := nn.NewDenseMat(4, 4)
	inner.M.Fill(1)
	dc := NewDropConnect(inner, 0.5, rng)
	x := tensor.Vector{1, 1, 1, 1}
	// Training mode: outputs vary as masks are resampled.
	y1 := dc.Forward(x)
	varies := false
	for trial := 0; trial < 20 && !varies; trial++ {
		y2 := dc.Forward(x)
		for i := range y1 {
			if y1[i] != y2[i] {
				varies = true
			}
		}
	}
	if !varies {
		t.Fatal("training-mode forward should vary with resampled masks")
	}
	// Inference mode: exact.
	dc.Train = false
	y := dc.Forward(x)
	for i := range y {
		if y[i] != 4 {
			t.Fatalf("inference forward = %v, want 4s", y)
		}
	}
}

func TestDropConnectUpdateSkipsDropped(t *testing.T) {
	rng := rngutil.New(13)
	inner := nn.NewDenseMat(2, 2)
	dc := NewDropConnect(inner, 1, rng) // drop everything
	dc.Forward(tensor.Vector{1, 1})     // sample all-dropped mask
	dc.Update(1, tensor.Vector{1, 1}, tensor.Vector{1, 1})
	if inner.M.MaxAbs() != 0 {
		t.Fatal("fully dropped update must not change weights")
	}
}

func TestHardwareAwareTrainingTolerant(t *testing.T) {
	cfg := tinyExperiment()
	cfg.Epochs = 8

	// Conventional digital training, then program onto a faulty array.
	conv := RunDigitsDigital(cfg)
	_ = conv

	rng := rngutil.New(cfg.Seed)
	ds := dataset.Digits(cfg.Data, rng.Child("data"))
	train, test := ds.Split(cfg.TrainFrac)
	sizes := []int{cfg.Data.Dim, 12, cfg.Data.Classes}

	trainMLP := func(factory nn.MatFactory) *nn.MLP {
		m := nn.NewMLP(sizes, nn.TanhAct, nn.SoftmaxAct, factory)
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for i := range train.X {
				m.TrainStep(train.X[i], train.Y[i], cfg.LR)
			}
		}
		return m
	}

	plain := trainMLP(nn.DenseFactory(rngutil.New(42)))
	aware := trainMLP(DropConnectFactory(0.08, rngutil.New(42)))
	SetTrainMode(aware, false)

	faulty := crossbar.DefaultConfig()
	faulty.StuckFraction = 0.08

	plainAnalog, _ := ProgramToArrays(plain, crossbar.Ideal(), faulty, rngutil.New(7))
	awareAnalog, _ := ProgramToArrays(aware, crossbar.Ideal(), faulty, rngutil.New(7))

	accPlain := plainAnalog.Accuracy(test.X, test.Y)
	accAware := awareAnalog.Accuracy(test.X, test.Y)
	if accAware < accPlain-0.05 {
		t.Fatalf("hardware-aware training %v should not trail conventional %v on faulty arrays", accAware, accPlain)
	}
}

func TestProgramToArraysFaithful(t *testing.T) {
	cfg := tinyExperiment()
	rng := rngutil.New(cfg.Seed)
	ds := dataset.Digits(cfg.Data, rng.Child("data"))
	train, test := ds.Split(cfg.TrainFrac)
	m := nn.NewMLP([]int{cfg.Data.Dim, 12, cfg.Data.Classes}, nn.TanhAct, nn.SoftmaxAct, nn.DenseFactory(rngutil.New(3)))
	for epoch := 0; epoch < 6; epoch++ {
		for i := range train.X {
			m.TrainStep(train.X[i], train.Y[i], 0.05)
		}
	}
	digitalAcc := m.Accuracy(test.X, test.Y)
	analogNet, arrays := ProgramToArrays(m, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(5))
	if len(arrays) != 2 {
		t.Fatalf("expected 2 arrays, got %d", len(arrays))
	}
	analogAcc := analogNet.Accuracy(test.X, test.Y)
	if analogAcc < digitalAcc-0.05 {
		t.Fatalf("programmed inference %v should match digital %v on ideal devices", analogAcc, digitalAcc)
	}
}

func TestPCMTrainingEndToEnd(t *testing.T) {
	cfg := tinyExperiment()
	sess := NewSession(DefaultOptions(crossbar.PCMProjected(), MixedPrecision), rngutil.New(cfg.Seed).Child("session"))
	res := RunDigits(sess.Factory(), cfg, func(epoch int) {
		sess.AdvanceTime(60) // a minute of drift per epoch
		sess.MaintainPCM(0.9)
	})
	if res.TestAccuracy < 0.8 {
		t.Fatalf("PCM mixed-precision training accuracy %v too low", res.TestAccuracy)
	}
}

// §II (ref. [19]): a convolutional layer maps onto crossbar arrays via
// im2col — every patch is a forward MVM, a backward MVM and a rank-1 pulse
// update. The same ConvMat code must train with analog kernel storage.
func TestConvTrainsOnCrossbar(t *testing.T) {
	sess := NewSession(DefaultOptions(crossbar.Ideal(), PlainSGD), rngutil.New(5))
	c := nn.NewConvMat(1, 2, 2, sess.Factory())
	if len(sess.Arrays()) != 1 {
		t.Fatalf("conv should own one crossbar, got %d", len(sess.Arrays()))
	}
	dr := rngutil.New(6)
	var first, last float64
	for it := 0; it < 400; it++ {
		in := nn.NewImage(1, 4, 4)
		edge := dr.Bernoulli(0.5)
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				v := 0.3 + 0.05*dr.NormFloat64() // positive inputs keep ReLUs alive
				if edge && x >= 2 {
					v += 0.7
				}
				in.Set(0, y, x, v)
			}
		}
		out := c.Forward(in)
		target := nn.NewImage(2, 3, 3)
		if edge {
			for y := 0; y < 3; y++ {
				target.Set(0, y, 1, 1)
			}
		}
		loss := nn.MSE(tensor.Vector(out.Data), tensor.Vector(target.Data))
		if it < 25 {
			first += loss
		}
		if it >= 375 {
			last += loss
		}
		dout := nn.NewImage(2, 3, 3)
		copy(dout.Data, nn.MSEGrad(tensor.Vector(out.Data), tensor.Vector(target.Data)))
		c.Backward(dout, 0.05)
	}
	if last >= 0.6*first {
		t.Fatalf("analog conv did not learn: first %v last %v", first/25, last/25)
	}
	// The work really went through the array's three cycles.
	counts := sess.Arrays()[0].Counts
	if counts.Forwards == 0 || counts.Backwards == 0 || counts.Updates == 0 || counts.Pulses == 0 {
		t.Fatalf("crossbar cycles not exercised: %+v", counts)
	}
}
