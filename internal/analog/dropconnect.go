package analog

import (
	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// DropConnectMat wraps a digital dense matrix and randomly severs a
// fraction P of its connections on every training forward pass — the
// hardware-aware training of §II-B.5 (paper ref. [33]) that makes the
// learned network robust to the stuck/non-yielding crosspoints it will
// encounter when programmed into a real analog array.
type DropConnectMat struct {
	Inner *nn.DenseMat
	P     float64
	rng   *rngutil.Source
	mask  []bool // true = dropped, resampled each training Forward
	Train bool   // when false, behaves exactly like the inner matrix
}

// NewDropConnect wraps inner with drop probability p.
func NewDropConnect(inner *nn.DenseMat, p float64, rng *rngutil.Source) *DropConnectMat {
	return &DropConnectMat{
		Inner: inner,
		P:     p,
		rng:   rng,
		mask:  make([]bool, inner.Rows()*inner.Cols()),
		Train: true,
	}
}

// Rows implements nn.Mat.
func (d *DropConnectMat) Rows() int { return d.Inner.Rows() }

// Cols implements nn.Mat.
func (d *DropConnectMat) Cols() int { return d.Inner.Cols() }

// Forward implements nn.Mat. In training mode a fresh connection mask is
// sampled and applied; the same mask gates Backward and Update until the
// next Forward, so one SGD step sees a consistent sub-network.
//
// No inverted-dropout rescaling is applied: the network is destined for
// arrays whose stuck-at-zero fraction matches the training drop rate, so
// the expected connection survival at inference equals that of training.
func (d *DropConnectMat) Forward(x tensor.Vector) tensor.Vector {
	if !d.Train {
		return d.Inner.Forward(x)
	}
	m := d.Inner.M
	y := make(tensor.Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		base := i * m.Cols
		var s float64
		for j, w := range row {
			d.mask[base+j] = d.rng.Bernoulli(d.P)
			if !d.mask[base+j] {
				s += w * x[j]
			}
		}
		y[i] = s
	}
	return y
}

// Backward implements nn.Mat with the current mask applied.
func (d *DropConnectMat) Backward(dd tensor.Vector) tensor.Vector {
	if !d.Train {
		return d.Inner.Backward(dd)
	}
	m := d.Inner.M
	y := make(tensor.Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		di := dd[i]
		if di == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		base := i * m.Cols
		for j, w := range row {
			if !d.mask[base+j] {
				y[j] += w * di
			}
		}
	}
	return y
}

// Update implements nn.Mat: dropped connections receive no gradient.
func (d *DropConnectMat) Update(scale float64, u, v tensor.Vector) {
	if !d.Train {
		d.Inner.Update(scale, u, v)
		return
	}
	m := d.Inner.M
	for i := 0; i < m.Rows; i++ {
		su := scale * u[i]
		if su == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		base := i * m.Cols
		for j := range row {
			if !d.mask[base+j] {
				row[j] += su * v[j]
			}
		}
	}
}

var _ nn.Mat = (*DropConnectMat)(nil)

// DropConnectFactory returns a factory producing drop-connect-wrapped dense
// matrices for hardware-aware digital pre-training.
func DropConnectFactory(p float64, rng *rngutil.Source) nn.MatFactory {
	dense := nn.DenseFactory(rng.Child("dense"))
	return func(rows, cols int) nn.Mat {
		inner := dense(rows, cols).(*nn.DenseMat)
		return NewDropConnect(inner, p, rng.Child("dropmask"))
	}
}

// SetTrainMode flips every drop-connect layer in the MLP between training
// (masked) and inference (exact) behaviour.
func SetTrainMode(m *nn.MLP, train bool) {
	for _, l := range m.Layers {
		if dc, ok := l.W.(*DropConnectMat); ok {
			dc.Train = train
		}
	}
}

// digitalSource extracts the exact digital weights behind a layer destined
// for analog programming.
func digitalSource(l *nn.DenseLayer) *tensor.Matrix {
	switch w := l.W.(type) {
	case *nn.DenseMat:
		return w.M
	case *DropConnectMat:
		return w.Inner.M
	}
	panic("analog: expected digital source layers")
}

// ProgramToArrays copies a digitally trained MLP onto fresh crossbar arrays
// (write-verify programming) and returns the analog inference network. Any
// DropConnectMat layers contribute their inner exact weights. Stuck-device
// fractions and periphery non-idealities come from cfg.
func ProgramToArrays(m *nn.MLP, model crossbar.Model, cfg crossbar.Config, rng *rngutil.Source) (*nn.MLP, []*crossbar.Array) {
	out := &nn.MLP{}
	var arrays []*crossbar.Array
	for li, l := range m.Layers {
		src := digitalSource(l)
		a := crossbar.NewArray(l.W.Rows(), l.W.Cols(), model, cfg, rng.Child("prog-layer").Child(string(rune('a'+li))))
		a.Program(src, 4000)
		arrays = append(arrays, a)
		out.Layers = append(out.Layers, &nn.DenseLayer{
			In: l.In, Out: l.Out, Bias: l.Bias, Act: l.Act, W: a,
		})
	}
	return out, arrays
}

// ProgramToArraysVerified is ProgramToArrays with closed-loop write-verify
// retry under pol, returning each layer's programming report. If attach is
// non-nil it is called with each fresh array before programming, which is how
// fault campaigns subject the write path to write failures and line opens.
func ProgramToArraysVerified(m *nn.MLP, model crossbar.Model, cfg crossbar.Config, pol crossbar.ProgramPolicy, attach func(*crossbar.Array), rng *rngutil.Source) (*nn.MLP, []*crossbar.Array, []crossbar.ProgramReport) {
	out := &nn.MLP{}
	var arrays []*crossbar.Array
	var reports []crossbar.ProgramReport
	for li, l := range m.Layers {
		src := digitalSource(l)
		a := crossbar.NewArray(l.W.Rows(), l.W.Cols(), model, cfg, rng.Child("prog-layer").Child(string(rune('a'+li))))
		if attach != nil {
			attach(a)
		}
		reports = append(reports, a.ProgramVerify(src, pol))
		arrays = append(arrays, a)
		out.Layers = append(out.Layers, &nn.DenseLayer{
			In: l.In, Out: l.Out, Bias: l.Bias, Act: l.Act, W: a,
		})
	}
	return out, arrays, reports
}
