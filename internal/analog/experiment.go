package analog

import (
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rngutil"
)

// ExperimentConfig drives one digits-classification training run, the
// shared workload of experiments C1–C3.
type ExperimentConfig struct {
	Hidden    []int   // hidden layer sizes
	Epochs    int     // training epochs
	LR        float64 // SGD learning rate
	Seed      uint64
	Data      dataset.DigitsConfig
	TrainFrac float64
}

// DefaultExperiment returns the small-but-meaningful configuration used by
// the device-spec sweeps: a 64-32-10 MLP on the synthetic digits task.
func DefaultExperiment() ExperimentConfig {
	return ExperimentConfig{
		Hidden:    []int{32},
		Epochs:    8,
		LR:        0.05,
		Seed:      1234,
		Data:      dataset.DefaultDigits(),
		TrainFrac: 0.8,
	}
}

// TrainResult summarizes one run.
type TrainResult struct {
	TestAccuracy  float64
	TrainAccuracy float64
	EpochLoss     []float64
}

// EpochHook is called after each epoch; trainers use it for time-based
// device effects (drift) and maintenance (PCM reset).
type EpochHook func(epoch int)

// RunDigits trains an MLP whose weight storage comes from factory on the
// synthetic digits task and reports accuracies. All randomness derives from
// cfg.Seed, so runs are exactly reproducible.
func RunDigits(factory nn.MatFactory, cfg ExperimentConfig, hooks ...EpochHook) TrainResult {
	rng := rngutil.New(cfg.Seed)
	ds := dataset.Digits(cfg.Data, rng.Child("data"))
	train, test := ds.Split(cfg.TrainFrac)

	sizes := append([]int{cfg.Data.Dim}, cfg.Hidden...)
	sizes = append(sizes, cfg.Data.Classes)
	m := nn.NewMLP(sizes, nn.TanhAct, nn.SoftmaxAct, factory)

	res := TrainResult{}
	order := make([]int, train.Len())
	for i := range order {
		order[i] = i
	}
	shuffleRng := rng.Child("order")
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffleRng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var loss float64
		for _, i := range order {
			loss += m.TrainStep(train.X[i], train.Y[i], cfg.LR)
		}
		res.EpochLoss = append(res.EpochLoss, loss/float64(train.Len()))
		for _, h := range hooks {
			h(epoch)
		}
	}
	res.TrainAccuracy = m.Accuracy(train.X, train.Y)
	res.TestAccuracy = m.Accuracy(test.X, test.Y)
	return res
}

// RunDigitsDigital is the fp32 reference run (experiment baseline).
func RunDigitsDigital(cfg ExperimentConfig) TrainResult {
	rng := rngutil.New(cfg.Seed)
	return RunDigits(nn.DenseFactory(rng.Child("weights")), cfg)
}

// RunDigitsAnalog trains on simulated crossbars with the given session
// options.
func RunDigitsAnalog(opts Options, cfg ExperimentConfig, hooks ...EpochHook) (TrainResult, *Session) {
	sess := NewSession(opts, rngutil.New(cfg.Seed).Child("session"))
	res := RunDigits(sess.Factory(), cfg, hooks...)
	return res, sess
}
