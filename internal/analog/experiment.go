package analog

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rngutil"
)

// ExperimentConfig drives one digits-classification training run, the
// shared workload of experiments C1–C3.
type ExperimentConfig struct {
	Hidden    []int   // hidden layer sizes
	Epochs    int     // training epochs
	LR        float64 // SGD learning rate
	Seed      uint64
	Data      dataset.DigitsConfig
	TrainFrac float64
}

// DefaultExperiment returns the small-but-meaningful configuration used by
// the device-spec sweeps: a 64-32-10 MLP on the synthetic digits task.
func DefaultExperiment() ExperimentConfig {
	return ExperimentConfig{
		Hidden:    []int{32},
		Epochs:    8,
		LR:        0.05,
		Seed:      1234,
		Data:      dataset.DefaultDigits(),
		TrainFrac: 0.8,
	}
}

// TrainResult summarizes one run.
type TrainResult struct {
	TestAccuracy  float64
	TrainAccuracy float64
	EpochLoss     []float64
}

// EpochHook is called after each epoch; trainers use it for time-based
// device effects (drift) and maintenance (PCM reset).
type EpochHook func(epoch int)

// RunDigits trains an MLP whose weight storage comes from factory on the
// synthetic digits task and reports accuracies. All randomness derives from
// cfg.Seed, so runs are exactly reproducible.
func RunDigits(factory nn.MatFactory, cfg ExperimentConfig, hooks ...EpochHook) TrainResult {
	res, err := RunDigitsResumable(factory, nil, cfg, Checkpointing{}, hooks...)
	if err != nil {
		// Without a Store or Resume state there are no error paths.
		panic(err)
	}
	return res
}

// epochOrder returns the epoch's sample visit order. Each epoch shuffles the
// identity permutation with its own child stream keyed by the epoch index,
// so the order is a pure function of (seed, epoch): a resumed run replays
// epoch e with exactly the order the uninterrupted run used, without
// checkpointing any shuffle stream position.
func epochOrder(rng *rngutil.Source, epoch, n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	shuffleRng := rng.Child(fmt.Sprintf("order-epoch-%d", epoch))
	shuffleRng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// RunDigitsResumable is RunDigits with crash-safety: it logs a WAL step
// record per epoch, persists durable checkpoints every ck.Every epochs, and
// can resume from a previously saved state — continuing bit-identically
// with the run that was interrupted. sess may be nil for fully digital runs
// (no arrays to checkpoint); when training on crossbars, pass the session
// whose Factory built the network so device state rides in the checkpoint.
func RunDigitsResumable(factory nn.MatFactory, sess *Session, cfg ExperimentConfig, ck Checkpointing, hooks ...EpochHook) (TrainResult, error) {
	rng := rngutil.New(cfg.Seed)
	ds := dataset.Digits(cfg.Data, rng.Child("data"))
	train, test := ds.Split(cfg.TrainFrac)

	sizes := append([]int{cfg.Data.Dim}, cfg.Hidden...)
	sizes = append(sizes, cfg.Data.Classes)
	m := nn.NewMLP(sizes, nn.TanhAct, nn.SoftmaxAct, factory)

	res := TrainResult{}
	start := 0
	if ck.Resume != nil {
		if err := RestoreTraining(m, sess, ck.Resume, ck.Providers); err != nil {
			return res, err
		}
		start = ck.Resume.Epoch
		res.EpochLoss = cloneF(ck.Resume.EpochLoss)
		ck.Obs.Counter("analog_resumes_total", "training runs resumed from a checkpoint").Inc()
	}
	runStart := time.Now()
	for epoch := start; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		span := ck.Tracer.Start("train-epoch", epochStart.Sub(runStart).Seconds())
		order := epochOrder(rng, epoch, train.Len())
		half := len(order) / 2
		var loss float64
		for k, i := range order {
			loss += m.TrainStep(train.X[i], train.Y[i], cfg.LR)
			if ck.Crash != nil && k == half {
				ck.Crash("mid-epoch", epoch)
			}
		}
		res.EpochLoss = append(res.EpochLoss, loss/float64(train.Len()))
		for _, h := range hooks {
			h(epoch)
		}
		if ck.Store != nil {
			var pulses int64
			if sess != nil {
				pulses = sess.TotalPulses()
			}
			if err := ck.Store.AppendStep(epoch, res.EpochLoss[epoch], pulses); err != nil {
				return res, err
			}
			if ck.Every > 0 && (epoch+1)%ck.Every == 0 && epoch+1 < cfg.Epochs {
				span.Stage("checkpoint", time.Since(runStart).Seconds())
				st, err := CaptureTraining(m, sess, epoch+1, res.EpochLoss, ck.Providers)
				if err != nil {
					return res, err
				}
				if _, err := ck.Store.Save(st); err != nil {
					return res, err
				}
			}
		}
		span.End(time.Since(runStart).Seconds())
		if ck.Obs != nil {
			// Epoch counts, losses, and pulse totals track the deterministic
			// training schedule (stable); epoch wall-time is volatile.
			ck.Obs.Counter("analog_epochs_total", "completed training epochs").Inc()
			ck.Obs.Gauge("analog_epoch_loss", "mean training loss of the last completed epoch").
				Set(res.EpochLoss[epoch])
			if sess != nil {
				ck.Obs.Gauge("analog_total_pulses", "cumulative device pulses across session arrays").
					Set(float64(sess.TotalPulses()))
			}
			ck.Obs.Histogram("analog_epoch_seconds", "wall-clock duration of one epoch (windowed)", 256).
				Volatile().Observe(time.Since(epochStart).Seconds())
		}
	}
	res.TrainAccuracy = m.Accuracy(train.X, train.Y)
	res.TestAccuracy = m.Accuracy(test.X, test.Y)
	return res, nil
}

// RunDigitsDigital is the fp32 reference run (experiment baseline).
func RunDigitsDigital(cfg ExperimentConfig) TrainResult {
	rng := rngutil.New(cfg.Seed)
	return RunDigits(nn.DenseFactory(rng.Child("weights")), cfg)
}

// RunDigitsAnalog trains on simulated crossbars with the given session
// options.
func RunDigitsAnalog(opts Options, cfg ExperimentConfig, hooks ...EpochHook) (TrainResult, *Session) {
	sess := NewSession(opts, rngutil.New(cfg.Seed).Child("session"))
	res := RunDigits(sess.Factory(), cfg, hooks...)
	return res, sess
}
