package analog

import (
	"math"

	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// mixedPrecisionMat implements mixed-precision training (§II-B.1, paper
// ref. [25]): matrix-vector products run on the analog array, but weight
// updates accumulate in a digital floating-point buffer χ. Whenever an
// accumulated entry exceeds the device step Δw, the integer number of steps
// is flushed to the device as pulses and subtracted from χ. This removes
// the update-noise and asymmetry sensitivity at the cost of giving up the
// O(1) parallel update (the buffer update is a digital rank-1 op).
type mixedPrecisionMat struct {
	a   *crossbar.Array
	chi *tensor.Matrix // digital accumulator
	dw  float64
	rng *rngutil.Source
}

func newMixedPrecision(a *crossbar.Array, dw float64, rng *rngutil.Source) *mixedPrecisionMat {
	return &mixedPrecisionMat{
		a:   a,
		chi: tensor.NewMatrix(a.Rows(), a.Cols()),
		dw:  dw,
		rng: rng,
	}
}

// Rows implements nn.Mat.
func (m *mixedPrecisionMat) Rows() int { return m.a.Rows() }

// Cols implements nn.Mat.
func (m *mixedPrecisionMat) Cols() int { return m.a.Cols() }

// Forward implements nn.Mat (analog MVM).
func (m *mixedPrecisionMat) Forward(x tensor.Vector) tensor.Vector { return m.a.Forward(x) }

// Backward implements nn.Mat (analog transposed MVM).
func (m *mixedPrecisionMat) Backward(d tensor.Vector) tensor.Vector { return m.a.Backward(d) }

// Update implements nn.Mat: accumulate digitally, flush whole device steps
// as exact pulse bursts to individual crosspoints.
func (m *mixedPrecisionMat) Update(scale float64, u, v tensor.Vector) {
	m.chi.AddOuter(scale, u, v)
	cols := m.a.Cols()
	for i := 0; i < m.a.Rows(); i++ {
		row := m.chi.Data[i*cols : (i+1)*cols]
		for j, acc := range row {
			if math.Abs(acc) < m.dw {
				continue
			}
			k := int(math.Abs(acc) / m.dw)
			m.a.UpdateDeviceExact(i, j, k, acc > 0)
			flushed := float64(k) * m.dw
			if acc < 0 {
				flushed = -flushed
			}
			row[j] = acc - flushed
		}
	}
}

var _ nn.Mat = (*mixedPrecisionMat)(nil)
