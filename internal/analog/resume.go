package analog

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/obs"
)

// Checkpointing configures crash-safety for a resumable training run. The
// zero value disables everything, making RunDigitsResumable behave exactly
// like RunDigits.
type Checkpointing struct {
	// Store receives WAL step records and durable checkpoints; nil disables
	// persistence entirely.
	Store *ckpt.Store
	// Every saves a checkpoint after every Every-th completed epoch (after
	// the epoch hooks have run, so time-based device effects are included).
	// 0 logs WAL records only.
	Every int
	// Resume, when non-nil, is restored over the freshly constructed network
	// before the first epoch; training continues at Resume.Epoch. The caller
	// must build the session/network from the same ExperimentConfig seed the
	// checkpoint came from — construction is deterministic, and the import
	// overwrites every piece of constructed state.
	Resume *ckpt.TrainingState
	// Providers contribute extra run state (e.g. a faults.Engine) to every
	// checkpoint and are restored from Resume.
	Providers []ckpt.StateProvider
	// Crash is the chaos kill-point hook; also fired from inside Store.Save
	// when the caller arms Store.Crash. Nil in production.
	Crash ckpt.CrashFn
	// Obs receives per-epoch training metrics (epoch counts and losses are
	// deterministic and stable; epoch wall-times are volatile). Tracer gets
	// one span per epoch with a checkpoint stage when one is saved; its
	// timestamps are wall-clock seconds since the run started.
	Obs    *obs.Registry
	Tracer *obs.Tracer
}

// TotalPulses reports the cumulative device pulse count across all session
// arrays — the endurance currency the R3 campaign accounts wasted work in.
func (s *Session) TotalPulses() int64 {
	var n int64
	for _, a := range s.arrays {
		n += a.Counts.Pulses
	}
	return n
}

// ExportArrays snapshots the device state of every session array in
// creation order.
func (s *Session) ExportArrays() []crossbar.ArrayState {
	states := make([]crossbar.ArrayState, len(s.arrays))
	for i, a := range s.arrays {
		states[i] = a.ExportState()
	}
	return states
}

// ImportArrays restores previously exported array states; the session must
// have been built to the same shape (same options, same network).
func (s *Session) ImportArrays(states []crossbar.ArrayState) error {
	if len(states) != len(s.arrays) {
		return fmt.Errorf("analog: checkpoint has %d arrays, session built %d", len(states), len(s.arrays))
	}
	for i, st := range states {
		if err := s.arrays[i].ImportState(st); err != nil {
			return fmt.Errorf("analog: array %d: %w", i, err)
		}
	}
	return nil
}

// captureLayer exports the trainer-level state a layer's Mat keeps outside
// the crossbar arrays. Array device state itself travels separately in
// TrainingState.Arrays (session creation order).
func captureLayer(w nn.Mat) (ckpt.LayerState, error) {
	switch m := w.(type) {
	case *crossbar.Array:
		return ckpt.LayerState{Kind: "plain"}, nil
	case *zeroShiftedMat:
		return ckpt.LayerState{Kind: "zero-shift", Floats: [][]float64{cloneF(m.ref.Data)}}, nil
	case *tikiTakaMat:
		return ckpt.LayerState{
			Kind:   "tiki-taka",
			Ints:   []int64{int64(m.updates), int64(m.nextCol)},
			Floats: [][]float64{cloneF(m.a.ref.Data), cloneF(m.c.ref.Data)},
		}, nil
	case *mixedPrecisionMat:
		return ckpt.LayerState{Kind: "mixed-precision", Floats: [][]float64{cloneF(m.chi.Data)}}, nil
	case *nn.DenseMat:
		return ckpt.LayerState{Kind: "dense", Floats: [][]float64{cloneF(m.M.Data)}}, nil
	}
	return ckpt.LayerState{}, fmt.Errorf("analog: layer type %T is not checkpointable", w)
}

// restoreLayer is captureLayer's inverse; it validates kind and shape before
// touching the layer.
func restoreLayer(w nn.Mat, st ckpt.LayerState) error {
	switch m := w.(type) {
	case *crossbar.Array:
		if st.Kind != "plain" {
			return fmt.Errorf("analog: layer kind %q, want plain", st.Kind)
		}
		return nil
	case *zeroShiftedMat:
		if st.Kind != "zero-shift" || len(st.Floats) != 1 || len(st.Floats[0]) != len(m.ref.Data) {
			return fmt.Errorf("analog: bad zero-shift layer state (kind %q)", st.Kind)
		}
		copy(m.ref.Data, st.Floats[0])
		return nil
	case *tikiTakaMat:
		if st.Kind != "tiki-taka" || len(st.Ints) != 2 || len(st.Floats) != 2 ||
			len(st.Floats[0]) != len(m.a.ref.Data) || len(st.Floats[1]) != len(m.c.ref.Data) {
			return fmt.Errorf("analog: bad tiki-taka layer state (kind %q)", st.Kind)
		}
		m.updates = int(st.Ints[0])
		m.nextCol = int(st.Ints[1])
		copy(m.a.ref.Data, st.Floats[0])
		copy(m.c.ref.Data, st.Floats[1])
		return nil
	case *mixedPrecisionMat:
		if st.Kind != "mixed-precision" || len(st.Floats) != 1 || len(st.Floats[0]) != len(m.chi.Data) {
			return fmt.Errorf("analog: bad mixed-precision layer state (kind %q)", st.Kind)
		}
		copy(m.chi.Data, st.Floats[0])
		return nil
	case *nn.DenseMat:
		if st.Kind != "dense" || len(st.Floats) != 1 || len(st.Floats[0]) != len(m.M.Data) {
			return fmt.Errorf("analog: bad dense layer state (kind %q)", st.Kind)
		}
		copy(m.M.Data, st.Floats[0])
		return nil
	}
	return fmt.Errorf("analog: layer type %T is not checkpointable", w)
}

func cloneF(x []float64) []float64 { return append([]float64(nil), x...) }

// CaptureTraining assembles the complete resumable state of a run at an
// epoch boundary: epoch is the number of completed epochs, losses their mean
// losses, sess may be nil for fully digital runs.
func CaptureTraining(m *nn.MLP, sess *Session, epoch int, losses []float64, providers []ckpt.StateProvider) (*ckpt.TrainingState, error) {
	st := &ckpt.TrainingState{
		Epoch:     epoch,
		EpochLoss: cloneF(losses),
	}
	if sess != nil {
		st.Arrays = sess.ExportArrays()
	}
	for i, l := range m.Layers {
		ls, err := captureLayer(l.W)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
		st.Layers = append(st.Layers, ls)
	}
	for _, p := range providers {
		blob, err := p.ExportState()
		if err != nil {
			return nil, fmt.Errorf("analog: provider %s: %w", p.StateKey(), err)
		}
		if st.Extra == nil {
			st.Extra = make(map[string][]byte)
		}
		if _, dup := st.Extra[p.StateKey()]; dup {
			return nil, fmt.Errorf("analog: duplicate provider key %s", p.StateKey())
		}
		st.Extra[p.StateKey()] = blob
	}
	return st, nil
}

// RestoreTraining imports a checkpoint over a freshly constructed run. All
// shapes are validated before any state is mutated at the layer level;
// array imports validate individually (see crossbar.ImportState).
func RestoreTraining(m *nn.MLP, sess *Session, st *ckpt.TrainingState, providers []ckpt.StateProvider) error {
	if len(st.Layers) != len(m.Layers) {
		return fmt.Errorf("analog: checkpoint has %d layers, network has %d", len(st.Layers), len(m.Layers))
	}
	if sess == nil && len(st.Arrays) != 0 {
		return fmt.Errorf("analog: checkpoint has %d arrays but run is digital", len(st.Arrays))
	}
	if sess != nil {
		if err := sess.ImportArrays(st.Arrays); err != nil {
			return err
		}
	}
	for i, l := range m.Layers {
		if err := restoreLayer(l.W, st.Layers[i]); err != nil {
			return fmt.Errorf("layer %d: %w", i, err)
		}
	}
	for _, p := range providers {
		blob, ok := st.Extra[p.StateKey()]
		if !ok {
			return fmt.Errorf("analog: checkpoint missing provider state %s", p.StateKey())
		}
		if err := p.ImportState(blob); err != nil {
			return fmt.Errorf("analog: provider %s: %w", p.StateKey(), err)
		}
	}
	return nil
}
