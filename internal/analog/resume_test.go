package analog

import (
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/rngutil"
)

// resumeCase is one (mode, model) combination whose kill-and-resume run must
// reproduce the uninterrupted run bit-for-bit.
type resumeCase struct {
	name  string
	mode  Mode
	model crossbar.Model
	drift bool // exercise time-based hooks (PCM drift + maintenance)
}

func resumeCases() []resumeCase {
	return []resumeCase{
		{"plain-rram", PlainSGD, crossbar.RRAM(), false},
		{"tikitaka-asym", TikiTaka, asymmetricModel(), false},
		{"mixedprec-pcm", MixedPrecision, crossbar.PCM(), true},
		{"zeroshift-asym", ZeroShift, asymmetricModel(), false},
	}
}

func (c resumeCase) options() Options {
	opts := DefaultOptions(c.model, c.mode)
	opts.SymmetrizeIters = 60 // keep the test fast
	return opts
}

func (c resumeCase) session(cfg ExperimentConfig) *Session {
	return NewSession(c.options(), rngutil.New(cfg.Seed).Child("session"))
}

func (c resumeCase) hooks(sess *Session) []EpochHook {
	if !c.drift {
		return nil
	}
	return []EpochHook{func(epoch int) {
		sess.AdvanceTime(60)
		sess.MaintainPCM(0.9)
	}}
}

// TestResumeBitIdentical is the acceptance-criterion pin: a run killed
// mid-epoch and resumed from its last durable checkpoint must produce a
// TrainResult — accuracies and every per-epoch loss — bit-identical to the
// run that was never killed, for every training mode.
func TestResumeBitIdentical(t *testing.T) {
	cfg := tinyExperiment()
	cfg.Epochs = 6
	const killEpoch = 4 // after the epoch-4 checkpoint (Every=2)

	for _, c := range resumeCases() {
		t.Run(c.name, func(t *testing.T) {
			// Uninterrupted reference run, no checkpointing at all.
			sessA := c.session(cfg)
			want, err := RunDigitsResumable(sessA.Factory(), sessA, cfg, Checkpointing{}, c.hooks(sessA)...)
			if err != nil {
				t.Fatal(err)
			}

			// Killed run: crash mid-epoch killEpoch.
			store, err := ckpt.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			crash := func(site string, seq int) {
				if site == "mid-epoch" && seq == killEpoch {
					panic(ckpt.Crash{Site: site, Seq: seq})
				}
			}
			store.Crash = crash
			killed := func() (died bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(ckpt.Crash); !ok {
							panic(r)
						}
						died = true
					}
				}()
				sessB := c.session(cfg)
				_, _ = RunDigitsResumable(sessB.Factory(), sessB, cfg,
					Checkpointing{Store: store, Every: 2, Crash: crash}, c.hooks(sessB)...)
				return false
			}()
			if !killed {
				t.Fatal("kill point never fired")
			}

			// Recover and resume on a freshly constructed session.
			st, recov, err := store.LoadLatest()
			if err != nil || st == nil {
				t.Fatalf("recovery failed: %+v, %v", recov, err)
			}
			if st.Epoch != killEpoch {
				t.Fatalf("recovered epoch %d, want %d", st.Epoch, killEpoch)
			}
			store.Crash = nil
			sessC := c.session(cfg)
			got, err := RunDigitsResumable(sessC.Factory(), sessC, cfg,
				Checkpointing{Store: store, Every: 2, Resume: st}, c.hooks(sessC)...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("resumed run diverged from uninterrupted run:\nwant %+v\ngot  %+v", want, got)
			}
		})
	}
}

// TestResumeBitIdenticalDigital covers the sess == nil path: a dense digital
// run resumes bit-identically too.
func TestResumeBitIdenticalDigital(t *testing.T) {
	cfg := tinyExperiment()
	cfg.Epochs = 6
	factory := func() nn.MatFactory {
		return nn.DenseFactory(rngutil.New(cfg.Seed).Child("weights"))
	}
	want, err := RunDigitsResumable(factory(), nil, cfg, Checkpointing{})
	if err != nil {
		t.Fatal(err)
	}
	store, _ := ckpt.Open(t.TempDir())
	crash := func(site string, seq int) {
		if site == "mid-epoch" && seq == 3 {
			panic(ckpt.Crash{Site: site, Seq: seq})
		}
	}
	func() {
		defer func() { recover() }()
		_, _ = RunDigitsResumable(factory(), nil, cfg, Checkpointing{Store: store, Every: 2, Crash: crash})
	}()
	st, _, err := store.LoadLatest()
	if err != nil || st == nil {
		t.Fatal("no checkpoint recovered")
	}
	got, err := RunDigitsResumable(factory(), nil, cfg, Checkpointing{Store: store, Every: 2, Resume: st})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("digital resume diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestRestoreRejectsMismatchedNetwork pins that a checkpoint from a
// different architecture is refused, not silently misapplied.
func TestRestoreRejectsMismatchedNetwork(t *testing.T) {
	cfg := tinyExperiment()
	cfg.Epochs = 2
	store, _ := ckpt.Open(t.TempDir())
	sess := NewSession(DefaultOptions(crossbar.RRAM(), PlainSGD), rngutil.New(cfg.Seed).Child("session"))
	if _, err := RunDigitsResumable(sess.Factory(), sess, cfg, Checkpointing{Store: store, Every: 1}); err != nil {
		t.Fatal(err)
	}
	st, _, err := store.LoadLatest()
	if err != nil || st == nil {
		t.Fatal("no checkpoint saved")
	}
	bigger := cfg
	bigger.Hidden = []int{12, 12}
	sess2 := NewSession(DefaultOptions(crossbar.RRAM(), PlainSGD), rngutil.New(cfg.Seed).Child("session"))
	if _, err := RunDigitsResumable(sess2.Factory(), sess2, bigger, Checkpointing{Resume: st}); err == nil {
		t.Fatal("mismatched architecture must be rejected")
	}
}
