package analog

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// tikiTakaMat implements the Tiki-Taka training algorithm (§II-B.5, paper
// ref. [35]): a coupled dynamical system of two arrays. The fast array A
// (zero-shifted) absorbs the raw stochastic gradient updates; because an
// asymmetric device drifts toward its symmetry point under ± pulsing, A
// behaves like a leaky gradient accumulator whose leak cancels the implicit
// asymmetry-induced cost term. Periodically, one column of A is read and
// transferred into the slow array C, which holds the actual weights. The
// effective weight is W = C + γ·A.
type tikiTakaMat struct {
	a, c          *zeroShiftedMat
	gamma         float64
	transferEvery int
	transferLR    float64

	updates int // updates since last transfer
	nextCol int // round-robin transfer column
}

// newTikiTaka builds the A and C arrays for one layer.
func (s *Session) newTikiTaka(rows, cols int, label string) *tikiTakaMat {
	t := &tikiTakaMat{
		gamma:         s.opts.TTGamma,
		transferEvery: s.opts.TTTransferEvery,
		transferLR:    s.opts.TTTransferLR,
	}
	if t.transferEvery <= 0 {
		t.transferEvery = 2
	}
	// A starts exactly at its symmetry point (zero effective weight): build
	// a zero-shifted array without the random-init programming.
	a := s.newArray(rows, cols, label+"-A")
	a.AlternatePulseAll(s.opts.SymmetrizeIters)
	t.a = &zeroShiftedMat{a: a, ref: a.Weights()}
	// C carries the (random) initial network weights.
	t.c = s.newZeroShifted(rows, cols, label+"-C")
	return t
}

// Rows implements nn.Mat.
func (t *tikiTakaMat) Rows() int { return t.c.Rows() }

// Cols implements nn.Mat.
func (t *tikiTakaMat) Cols() int { return t.c.Cols() }

// Forward implements nn.Mat: y = C·x + γ·A·x (two analog MVMs).
func (t *tikiTakaMat) Forward(x tensor.Vector) tensor.Vector {
	y := t.c.Forward(x)
	y.AXPY(t.gamma, t.a.Forward(x))
	return y
}

// Backward implements nn.Mat.
func (t *tikiTakaMat) Backward(d tensor.Vector) tensor.Vector {
	y := t.c.Backward(d)
	y.AXPY(t.gamma, t.a.Backward(d))
	return y
}

// Update implements nn.Mat: stochastic gradient pulses land on A; every
// transferEvery updates one column of A is read out (a single forward array
// operation with a one-hot input) and written into C with a rank-1 pulse
// update, cycling through columns round-robin.
func (t *tikiTakaMat) Update(scale float64, u, v tensor.Vector) {
	t.a.Update(scale, u, v)
	t.updates++
	if t.updates < t.transferEvery {
		return
	}
	t.updates = 0
	oneHot := tensor.NewVector(t.Cols())
	oneHot[t.nextCol] = 1
	colVals := t.a.Forward(oneHot) // reads column nextCol of A
	t.c.Update(t.transferLR, colVals, oneHot)
	t.nextCol = (t.nextCol + 1) % t.Cols()
}

// EffectiveWeights returns the logical weight matrix C + γ·A.
func (t *tikiTakaMat) EffectiveWeights() *tensor.Matrix {
	w := t.c.EffectiveWeights()
	aw := t.a.EffectiveWeights()
	for i := range w.Data {
		w.Data[i] += t.gamma * aw.Data[i]
	}
	return w
}

var _ nn.Mat = (*tikiTakaMat)(nil)
