package analog

import (
	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// zeroShiftedMat implements the zero-shifting technique (§II-B.5, paper
// ref. [30]). The array is first driven to its per-device symmetry points
// by alternating up/down pulses; the resulting weight matrix R is captured
// in a (frozen) reference array. The effective weight is W = A − R, so the
// logical zero weight coincides with the conductance state where
// potentiation and depression steps balance — exactly the condition under
// which SGD's ± updates accumulate gradients without bias.
type zeroShiftedMat struct {
	a   *crossbar.Array
	ref *tensor.Matrix // symmetry-point reference, programmed once and frozen
}

// newZeroShifted builds the array, locates symmetry points, captures the
// reference, and programs a small random initial effective weight.
func (s *Session) newZeroShifted(rows, cols int, label string) *zeroShiftedMat {
	a := s.newArray(rows, cols, label)
	a.AlternatePulseAll(s.opts.SymmetrizeIters)
	ref := a.Weights()
	z := &zeroShiftedMat{a: a, ref: ref}
	s.programRandomInit(a, ref, label)
	return z
}

// Rows implements nn.Mat.
func (z *zeroShiftedMat) Rows() int { return z.a.Rows() }

// Cols implements nn.Mat.
func (z *zeroShiftedMat) Cols() int { return z.a.Cols() }

// Forward implements nn.Mat: (A − R)·x via one analog MVM and one reference
// MVM (in hardware the reference is a second array or column sharing the
// read path; its cost is identical and not modelled separately here).
func (z *zeroShiftedMat) Forward(x tensor.Vector) tensor.Vector {
	y := z.a.Forward(x)
	y.Sub(z.ref.MatVec(x))
	return y
}

// Backward implements nn.Mat.
func (z *zeroShiftedMat) Backward(d tensor.Vector) tensor.Vector {
	y := z.a.Backward(d)
	y.Sub(z.ref.MatVecT(d))
	return y
}

// Update implements nn.Mat: gradient pulses go to the live array only.
func (z *zeroShiftedMat) Update(scale float64, u, v tensor.Vector) {
	z.a.Update(scale, u, v)
}

// EffectiveWeights returns the logical weight matrix A − R.
func (z *zeroShiftedMat) EffectiveWeights() *tensor.Matrix {
	w := z.a.Weights()
	for i := range w.Data {
		w.Data[i] -= z.ref.Data[i]
	}
	return w
}

var _ nn.Mat = (*zeroShiftedMat)(nil)
