package cam

import (
	"testing"
	"testing/quick"

	"repro/internal/perfmodel"
)

func TestTritString(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" || X.String() != "x" {
		t.Fatal("Trit strings wrong")
	}
}

func TestRowBuilders(t *testing.T) {
	r := RowFromBits([]bool{true, false, true})
	if r[0] != One || r[1] != Zero || r[2] != One {
		t.Fatalf("RowFromBits = %v", r)
	}
	r = RowFromUint(0b101, 4)
	if r[0] != One || r[1] != Zero || r[2] != One || r[3] != Zero {
		t.Fatalf("RowFromUint = %v", r)
	}
}

func TestMismatchesSemantics(t *testing.T) {
	stored := Row{One, Zero, X, One}
	query := Row{One, One, Zero, X}
	// pos0 match, pos1 conflict, pos2 stored-X matches, pos3 query-X matches.
	if got := Mismatches(stored, query); got != 1 {
		t.Fatalf("Mismatches = %d, want 1", got)
	}
}

func TestMismatchesPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mismatches(Row{One}, Row{One, Zero})
}

func TestSearchExact(t *testing.T) {
	tc := New(3)
	tc.Store(Row{One, Zero, One})
	tc.Store(Row{One, X, One}) // matches 1x1
	tc.Store(Row{Zero, Zero, Zero})
	got := tc.SearchExact(Row{One, One, One})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("SearchExact = %v, want [1]", got)
	}
	got = tc.SearchExact(Row{One, Zero, One})
	if len(got) != 2 {
		t.Fatalf("SearchExact = %v, want rows 0 and 1", got)
	}
	if tc.Searches != 2 {
		t.Fatalf("search counter = %d", tc.Searches)
	}
}

func TestBestMatch(t *testing.T) {
	tc := New(4)
	tc.Store(RowFromUint(0b0000, 4))
	tc.Store(RowFromUint(0b0111, 4))
	tc.Store(RowFromUint(0b0110, 4))
	idx, m := tc.BestMatch(RowFromUint(0b0100, 4))
	if idx != 0 || m != 1 {
		t.Fatalf("BestMatch = (%d,%d), want (0,1) — first of the tied best rows", idx, m)
	}
	empty := New(4)
	if idx, m := empty.BestMatch(RowFromUint(0, 4)); idx != -1 || m != -1 {
		t.Fatal("empty BestMatch should be (-1,-1)")
	}
}

func TestMatchCounts(t *testing.T) {
	tc := New(2)
	tc.Store(Row{One, One})
	tc.Store(Row{Zero, Zero})
	counts := tc.MatchCounts(Row{One, One})
	if counts[0] != 0 || counts[1] != 2 {
		t.Fatalf("MatchCounts = %v", counts)
	}
}

func TestStoreWidthPanics(t *testing.T) {
	tc := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tc.Store(Row{One})
}

func TestGrayRoundtrip(t *testing.T) {
	f := func(v uint32) bool {
		return GrayDecode(GrayEncode(uint64(v))) == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The defining Gray property: consecutive codes differ in exactly one bit.
func TestGrayAdjacency(t *testing.T) {
	for v := uint64(0); v < 1024; v++ {
		x := GrayEncode(v) ^ GrayEncode(v+1)
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("gray(%d) and gray(%d) differ in != 1 bit", v, v+1)
		}
	}
}

// coveredValues enumerates which code-space values a set of ternary words
// matches.
func coveredValues(words []Row, width int) map[uint64]bool {
	out := make(map[uint64]bool)
	for v := uint64(0); v < 1<<uint(width); v++ {
		row := GrayRow(v, width)
		for _, w := range words {
			if Mismatches(row, w) == 0 {
				out[v] = true
				break
			}
		}
	}
	return out
}

// Property: RangeWords covers exactly [lo, hi] — no more, no less.
func TestRangeWordsExactCover(t *testing.T) {
	const width = 6
	f := func(a, b uint8) bool {
		lo := uint64(a) % (1 << width)
		hi := uint64(b) % (1 << width)
		if hi < lo {
			lo, hi = hi, lo
		}
		cov := coveredValues(RangeWords(lo, hi, width), width)
		for v := uint64(0); v < 1<<width; v++ {
			in := v >= lo && v <= hi
			if cov[v] != in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRangeWordsSingleValue(t *testing.T) {
	words := RangeWords(13, 13, 6)
	if len(words) != 1 {
		t.Fatalf("single-value range should need 1 word, got %d", len(words))
	}
	cov := coveredValues(words, 6)
	if len(cov) != 1 || !cov[13] {
		t.Fatalf("covered = %v", cov)
	}
}

func TestRangeWordsAlignedBlockIsOneWord(t *testing.T) {
	// [16, 31] is an aligned 16-block: exactly one ternary word.
	words := RangeWords(16, 31, 6)
	if len(words) != 1 {
		t.Fatalf("aligned block should need 1 word, got %d", len(words))
	}
}

func TestRangeWordsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RangeWords(5, 3, 6) },
		func() { RangeWords(0, 64, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: CubeQuery covers exactly the clipped L∞ ball.
func TestCubeQueryCover(t *testing.T) {
	const width = 6
	f := func(v8, r8 uint8) bool {
		v := uint64(v8) % (1 << width)
		r := uint64(r8) % 8
		cov := coveredValues(CubeQuery(v, r, width), width)
		for x := uint64(0); x < 1<<width; x++ {
			d := x - v
			if x < v {
				d = v - x
			}
			if cov[x] != (d <= r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCubeQueryClipsAtBoundaries(t *testing.T) {
	cov := coveredValues(CubeQuery(1, 5, 6), 6)
	for x := uint64(0); x <= 6; x++ {
		if !cov[x] {
			t.Fatalf("value %d should be covered", x)
		}
	}
	if cov[7] {
		t.Fatal("value 7 should not be covered")
	}
	// Upper clip.
	cov = coveredValues(CubeQuery(62, 5, 6), 6)
	if !cov[63] || cov[56] {
		t.Fatal("upper clip wrong")
	}
}

func TestSearchCostScaling(t *testing.T) {
	e := Engine{Tech: CMOS16T(), Geo: DefaultGeometry()}
	small := e.SearchCost(512, 128)
	big := e.SearchCost(4096, 128)
	if big.Energy <= small.Energy {
		t.Fatal("more rows must cost more energy")
	}
	// Multi-bank searches run in parallel: latency grows only by the
	// combine tree, far less than proportionally.
	if big.Latency > 2*small.Latency {
		t.Fatalf("banked search latency should stay near-constant: %v vs %v", big.Latency, small.Latency)
	}
	if e.SearchCost(0, 128).Energy != 0 {
		t.Fatal("empty search should be free")
	}
}

func TestWriteCostAndTransistors(t *testing.T) {
	e := Engine{Tech: FeFET2T(), Geo: DefaultGeometry()}
	w := e.WriteCost(128)
	if w.Energy <= 0 || w.Latency <= 0 {
		t.Fatal("write cost must be positive")
	}
	if e.Transistors(512, 128) != 512*128*2 {
		t.Fatal("transistor count wrong")
	}
	c := Engine{Tech: CMOS16T(), Geo: DefaultGeometry()}
	if c.Transistors(512, 128) != 8*e.Transistors(512, 128) {
		t.Fatal("16T cell must be 8x the transistors of 2-FeFET")
	}
}

// C5 calibration: 16T CMOS TCAM vs GPU+DRAM memory search lands in the
// paper's band (≈24× energy, ≈2582× latency) for the canonical M=512,
// D=128 search.
func TestC5RatiosInBand(t *testing.T) {
	e := Engine{Tech: CMOS16T(), Geo: DefaultGeometry()}
	tcam := e.SearchCost(512, 128)
	gpu := GPUSearchBaseline(512, 128, gpuForTest())
	speedup := tcam.Speedup(gpu)
	eratio := tcam.EnergyRatio(gpu)
	if speedup < 1500 || speedup > 4000 {
		t.Fatalf("latency ratio %v outside band around 2582x", speedup)
	}
	if eratio < 15 || eratio > 40 {
		t.Fatalf("energy ratio %v outside band around 24x", eratio)
	}
}

// C6 calibration: 2-FeFET vs 16T CMOS lands near 1.1× latency and 2.4×
// energy.
func TestC6RatiosInBand(t *testing.T) {
	cm := Engine{Tech: CMOS16T(), Geo: DefaultGeometry()}.SearchCost(512, 128)
	fe := Engine{Tech: FeFET2T(), Geo: DefaultGeometry()}.SearchCost(512, 128)
	lat := cm.Latency / fe.Latency
	en := cm.Energy / fe.Energy
	if lat < 1.05 || lat > 1.3 {
		t.Fatalf("FeFET latency gain %v outside band around 1.1x", lat)
	}
	if en < 2.0 || en > 3.0 {
		t.Fatalf("FeFET energy gain %v outside band around 2.4x", en)
	}
}

func gpuForTest() perfmodel.GPU { return perfmodel.DefaultGPU() }

func TestKNearestModesAgree(t *testing.T) {
	tc := New(8)
	vals := []uint64{0b00000000, 0b00000001, 0b00000011, 0b11111111, 0b00001111}
	for _, v := range vals {
		tc.Store(RowFromUint(v, 8))
	}
	q := RowFromUint(0b00000000, 8)
	before := tc.Searches
	bin := tc.KNearestBinary(q, 3)
	binSearches := tc.Searches - before
	before = tc.Searches
	deg := tc.KNearestDegree(q, 3)
	degSearches := tc.Searches - before

	if len(bin) != 3 || len(deg) != 3 {
		t.Fatalf("KNN sizes: %v %v", bin, deg)
	}
	for i := range bin {
		if bin[i] != deg[i] {
			t.Fatalf("modes disagree: %v vs %v", bin, deg)
		}
	}
	// Expected order: exact, 1-bit, 2-bit neighbours.
	if bin[0] != 0 || bin[1] != 1 || bin[2] != 2 {
		t.Fatalf("KNN order wrong: %v", bin)
	}
	// The §IV-B.1 cost asymmetry: k searches vs a single one.
	if binSearches != 3 {
		t.Fatalf("binary-comparator mode used %d searches, want 3", binSearches)
	}
	if degSearches != 1 {
		t.Fatalf("degree-of-match mode used %d searches, want 1", degSearches)
	}
}

func TestKNearestClamped(t *testing.T) {
	tc := New(4)
	tc.Store(RowFromUint(0, 4))
	if got := tc.KNearestBinary(RowFromUint(0, 4), 5); len(got) != 1 {
		t.Fatalf("k beyond rows should clamp: %v", got)
	}
	if got := tc.KNearestDegree(RowFromUint(0, 4), 5); len(got) != 1 {
		t.Fatalf("k beyond rows should clamp: %v", got)
	}
}
