package cam

import "fmt"

// GrayEncode returns the binary-reflected Gray code of v.
func GrayEncode(v uint64) uint64 { return v ^ (v >> 1) }

// GrayDecode inverts GrayEncode.
func GrayDecode(g uint64) uint64 {
	v := g
	for shift := uint(1); shift < 64; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}

// GrayRow returns the Gray code of v as a width-bit TCAM row.
func GrayRow(v uint64, width int) Row { return RowFromUint(GrayEncode(v), width) }

// alignedBlockWord returns the ternary query word matching exactly the
// Gray-coded values in the aligned block [v &^ (2^k−1), v | (2^k−1)]: the
// low k Gray bits become don't-cares. This relies on the BRGC prefix
// property gray(v) >> k == gray(v >> k).
func alignedBlockWord(v uint64, k, width int) Row {
	r := GrayRow(v, width)
	for i := 0; i < k && i < width; i++ {
		r[i] = X
	}
	return r
}

// RangeWords implements the RENE-style range encoding (paper refs. [53],
// [54]): it covers the integer range [lo, hi] (inclusive, within a
// width-bit code space) exactly with a minimal greedy set of aligned
// Gray-coded blocks, each expressed as one ternary query word. Searching
// the words in turn (or loading them into spare query slots) matches
// exactly the stored codes inside the range.
func RangeWords(lo, hi uint64, width int) []Row {
	if hi < lo {
		panic(fmt.Sprintf("cam: bad range [%d,%d]", lo, hi))
	}
	max := uint64(1)<<uint(width) - 1
	if hi > max {
		panic(fmt.Sprintf("cam: range end %d exceeds %d-bit space", hi, width))
	}
	var words []Row
	v := lo
	for {
		// Largest aligned block starting at v that fits within [v, hi].
		k := 0
		for k < width {
			blockSize := uint64(1) << uint(k+1)
			if v&(blockSize-1) != 0 { // not aligned to the larger block
				break
			}
			if v+blockSize-1 > hi { // larger block overshoots
				break
			}
			k++
		}
		words = append(words, alignedBlockWord(v, k, width))
		next := v + uint64(1)<<uint(k)
		if next > hi || next == 0 { // done (or wrapped)
			break
		}
		v = next
	}
	return words
}

// CubeQuery builds the ternary query words covering the L∞ ball of the
// given radius around value in a width-bit code space, clipping at the
// space boundaries — the "cube of increasing sizes" of §IV-B.1.
func CubeQuery(value uint64, radius uint64, width int) []Row {
	max := uint64(1)<<uint(width) - 1
	lo := uint64(0)
	if value > radius {
		lo = value - radius
	}
	hi := value + radius
	if hi > max || hi < value { // clip and guard overflow
		hi = max
	}
	return RangeWords(lo, hi, width)
}
