// Package cam simulates ternary content-addressable memories (TCAMs) — the
// §IV hardware that replaces DRAM-plus-GPU distance computation in
// memory-augmented networks with a single parallel in-memory search. It
// provides the functional array (ternary storage, exact-match and
// best-match search with match-line degree-of-match sensing), the
// binary-reflected-Gray-code range encoding of RENE (paper refs. [53],
// [54]) for L∞ cube queries, and cell-technology cost models (16T CMOS vs
// 2-FeFET, paper ref. [9]) for the energy/latency tables.
package cam

import "fmt"

// Trit is a ternary cell value.
type Trit uint8

// Ternary cell states. X is "don't care": it matches both 0 and 1 whether
// stored or queried.
const (
	Zero Trit = iota
	One
	X
)

// String implements fmt.Stringer.
func (t Trit) String() string {
	switch t {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "x"
	}
	return "?"
}

// Row is one stored TCAM word.
type Row []Trit

// RowFromBits builds a fully specified row from booleans.
func RowFromBits(bits []bool) Row {
	r := make(Row, len(bits))
	for i, b := range bits {
		if b {
			r[i] = One
		}
	}
	return r
}

// RowFromUint builds a width-bit row from the low bits of v (bit 0 first).
func RowFromUint(v uint64, width int) Row {
	r := make(Row, width)
	for i := 0; i < width; i++ {
		if v&(1<<uint(i)) != 0 {
			r[i] = One
		}
	}
	return r
}

// Mismatches counts cells where the stored trit conflicts with the query
// trit; an X on either side never conflicts. This is the quantity the
// match line physically exposes: each conflicting cell opens one pull-down
// path.
func Mismatches(stored, query Row) int {
	if len(stored) != len(query) {
		panic(fmt.Sprintf("cam: width mismatch %d vs %d", len(stored), len(query)))
	}
	m := 0
	for i, s := range stored {
		q := query[i]
		if s != X && q != X && s != q {
			m++
		}
	}
	return m
}

// TCAM is a functional ternary CAM array of uniform width.
type TCAM struct {
	Width int
	Rows  []Row

	// Searches counts search operations issued, for cost accounting.
	Searches int64
}

// New returns an empty TCAM with the given word width.
func New(width int) *TCAM {
	if width <= 0 {
		panic("cam: width must be positive")
	}
	return &TCAM{Width: width}
}

// Store appends a row and returns its index. It panics on width mismatch.
func (t *TCAM) Store(r Row) int {
	if len(r) != t.Width {
		panic(fmt.Sprintf("cam: row width %d, array width %d", len(r), t.Width))
	}
	t.Rows = append(t.Rows, r)
	return len(t.Rows) - 1
}

// Len reports the number of stored rows.
func (t *TCAM) Len() int { return len(t.Rows) }

// SearchExact returns the indices of all rows that match the query with
// zero conflicting cells — the classical single-cycle TCAM operation.
func (t *TCAM) SearchExact(query Row) []int {
	t.Searches++
	var out []int
	for i, r := range t.Rows {
		if Mismatches(r, query) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// BestMatch returns the row with the fewest conflicting cells and that
// count, implementing degree-of-match sensing: the match line of the best
// row discharges slowest (§IV-B.2). It returns (-1, -1) for an empty array.
func (t *TCAM) BestMatch(query Row) (idx, mismatches int) {
	t.Searches++
	idx, mismatches = -1, -1
	for i, r := range t.Rows {
		m := Mismatches(r, query)
		if idx == -1 || m < mismatches {
			idx, mismatches = i, m
		}
	}
	return idx, mismatches
}

// MatchCounts returns the mismatch count of every row for the query in a
// single search — the full degree-of-match readout used when several
// near-matches must be ranked.
func (t *TCAM) MatchCounts(query Row) []int {
	t.Searches++
	out := make([]int, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = Mismatches(r, query)
	}
	return out
}

// KNearestBinary returns the indices of the k best-matching rows using
// binary match comparators only (§IV-B.1): the array cannot rank matches in
// one shot, so one search is issued per retrieved neighbor (each found row
// is masked and the search repeated), charging k match-line cycles.
func (t *TCAM) KNearestBinary(query Row, k int) []int {
	if k > len(t.Rows) {
		k = len(t.Rows)
	}
	taken := make([]bool, len(t.Rows))
	out := make([]int, 0, k)
	for len(out) < k {
		t.Searches++
		best, bestM := -1, -1
		for i, r := range t.Rows {
			if taken[i] {
				continue
			}
			if m := Mismatches(r, query); best == -1 || m < bestM {
				best, bestM = i, m
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}

// KNearestDegree returns the same k best rows using a single
// degree-of-match search: the match-line discharge rates expose every row's
// mismatch count at once (§IV-B.2), so only one search is charged.
func (t *TCAM) KNearestDegree(query Row, k int) []int {
	counts := t.MatchCounts(query) // one search
	if k > len(counts) {
		k = len(counts)
	}
	out := make([]int, 0, k)
	taken := make([]bool, len(counts))
	for len(out) < k {
		best, bestM := -1, -1
		for i, m := range counts {
			if taken[i] {
				continue
			}
			if best == -1 || m < bestM {
				best, bestM = i, m
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}
