package cam

import (
	"math"

	"repro/internal/perfmodel"
)

// CellTech captures the circuit-level parameters of one TCAM cell
// technology. The two instances below are calibrated so that the
// architecture-level ratios match the paper's reported numbers (C5: 16T
// CMOS TCAM vs DRAM+GPU search ≈ 24× energy / ≈ 2582× latency; C6: 2-FeFET
// vs 16T CMOS ≈ 2.4× energy / ≈ 1.1× latency) — see DESIGN.md §4,
// substitution 4.
type CellTech struct {
	Name string
	// TransistorsPerCell is the cell footprint (16 for CMOS, 2 for FeFET);
	// it drives the area/capacity argument of §IV-C.
	TransistorsPerCell int
	// SearchEnergyPerCell is the energy per bit-cell per search (J),
	// covering search-line toggling and match-line charge share.
	SearchEnergyPerCell float64
	// PrechargeTime is the fixed match-line precharge phase (s).
	PrechargeTime float64
	// SLTimePerRow is the search-line driver delay per attached row (s);
	// taller banks load the drivers more.
	SLTimePerRow float64
	// SenseTime is the match-line sense phase (s).
	SenseTime float64
	// WriteEnergyPerCell / WriteTimePerWord price storing one row.
	WriteEnergyPerCell float64
	WriteTimePerWord   float64
}

// CMOS16T returns the conventional 16-transistor CMOS TCAM cell.
func CMOS16T() CellTech {
	return CellTech{
		Name:                "cmos-16t",
		TransistorsPerCell:  16,
		SearchEnergyPerCell: 3.2e-12,
		PrechargeTime:       0.8e-9,
		SLTimePerRow:        2.0e-12,
		SenseTime:           0.3e-9,
		WriteEnergyPerCell:  8e-12,
		WriteTimePerWord:    1e-9,
	}
}

// FeFET2T returns the 2-FeFET TCAM cell of the paper's ref. [9]: an 8×
// smaller cell whose lighter search lines shave latency and whose
// ferroelectric switching keeps per-cell search energy below CMOS.
func FeFET2T() CellTech {
	return CellTech{
		Name:                "fefet-2t",
		TransistorsPerCell:  2,
		SearchEnergyPerCell: 1.33e-12,
		PrechargeTime:       0.8e-9,
		SLTimePerRow:        1.62e-12,
		SenseTime:           0.3e-9,
		WriteEnergyPerCell:  12e-12, // FE polarization write
		WriteTimePerWord:    5e-9,
	}
}

// Geometry fixes the physical banking of a logical TCAM.
type Geometry struct {
	// BankRows is the maximum rows per physical bank; larger stores search
	// multiple banks in parallel.
	BankRows int
	// CombineTime/CombineEnergy price the cross-bank best-match reduce per
	// additional bank.
	CombineTime   float64
	CombineEnergy float64
}

// DefaultGeometry matches the 512–1024-row banks typical of TCAM macros.
func DefaultGeometry() Geometry {
	return Geometry{BankRows: 1024, CombineTime: 0.1e-9, CombineEnergy: 50e-15}
}

// Engine prices searches of a logical TCAM built from a cell technology
// and a banking geometry.
type Engine struct {
	Tech CellTech
	Geo  Geometry
}

// SearchCost returns the energy/latency of one fully parallel search over
// rows×width cells. Banks search concurrently: energy sums, latency takes
// one bank plus the best-match combine tree.
func (e Engine) SearchCost(rows, width int) *perfmodel.Cost {
	c := perfmodel.NewCost()
	if rows == 0 {
		return c
	}
	banks := (rows + e.Geo.BankRows - 1) / e.Geo.BankRows
	bankRows := rows
	if bankRows > e.Geo.BankRows {
		bankRows = e.Geo.BankRows
	}
	cells := int64(rows) * int64(width)
	c.Add("tcam.cell-search", cells, e.Tech.SearchEnergyPerCell, 0)
	lat := e.Tech.PrechargeTime + e.Tech.SLTimePerRow*float64(bankRows) + e.Tech.SenseTime
	c.AddParallel("tcam.search", int64(banks), 0, lat)
	if banks > 1 {
		levels := int64(math.Ceil(math.Log2(float64(banks))))
		c.Add("tcam.combine", levels, e.Tech.SearchEnergyPerCell, e.Geo.CombineTime)
		c.Energy += float64(banks-1) * e.Geo.CombineEnergy
	}
	return c
}

// WriteCost returns the cost of storing one width-bit row.
func (e Engine) WriteCost(width int) *perfmodel.Cost {
	c := perfmodel.NewCost()
	c.Add("tcam.write", 1, float64(width)*e.Tech.WriteEnergyPerCell, e.Tech.WriteTimePerWord)
	return c
}

// Transistors reports the total transistor count of a rows×width array —
// the §IV-C capacity argument for compact cells.
func (e Engine) Transistors(rows, width int) int64 {
	return int64(rows) * int64(width) * int64(e.Tech.TransistorsPerCell)
}

// GPUSearchBaseline prices the conventional MANN memory search: streaming M
// stored D-dimensional fp32 vectors from device memory to the GPU and
// computing cosine similarities (≈3 FLOPs per element for dot product and
// norms). Only dynamic (compute + memory transfer) energy is attributed, as
// in the memory-search comparisons of the paper's ref. [9].
func GPUSearchBaseline(m, d int, g perfmodel.GPU) *perfmodel.Cost {
	g.IdlePower = 0
	flops := 3 * float64(m) * float64(d)
	bytes := 4 * (float64(m)*float64(d) + float64(d) + float64(m))
	return g.Kernel(flops, bytes)
}
