// Package chaos is the kill-point chaos harness of experiment R3: it
// crashes analog training runs at sampled points — mid-epoch, mid-way
// through a checkpoint temp-file write, between the WAL intent append and
// the rename, and just after commit (then corrupting the committed file) —
// recovers each time from the last good checkpoint in internal/ckpt, and
// verifies that the recovered run finishes with a TrainResult bit-identical
// to the run that was never killed.
//
// The motivating economics come from the paper's §II: on-device crossbar
// training spends device endurance (pulse events), not just time, so the
// campaign's graceful-degradation table prices recovery in replayed epochs
// and wasted pulses against the restart-from-scratch alternative across
// kill rate × checkpoint interval × fault level.
package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"repro/internal/analog"
	"repro/internal/ckpt"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/rngutil"
)

// Config parameterizes one chaos campaign. Everything is deterministic in
// the config: the kill schedule is a fixed function of (kills, epochs), and
// all randomness derives from Exp.Seed.
type Config struct {
	// Exp is the training workload every arm runs.
	Exp analog.ExperimentConfig
	// Opts selects the device model and training algorithm.
	Opts analog.Options
	// KillRates is the number of kills per run swept (0 = never killed).
	KillRates []int
	// Intervals is the checkpoint-every-N-epochs axis.
	Intervals []int
	// Levels scales the mid-training fault campaign injected through
	// faults.Engine (0 = fault-free; the engine is not even attached).
	Levels []float64
	// DriftPerEpoch seconds of device drift are applied after every epoch,
	// with a difference-preserving PCM reset past MaintainThreshold — the
	// time-based state a checkpoint must capture to resume bit-identically.
	DriftPerEpoch     float64
	MaintainThreshold float64
	// Obs and Tracer are threaded into every attempt's Checkpointing and the
	// checkpoint store; crash/recovery counters are deterministic (stable),
	// save and fsync latencies volatile.
	Obs    *obs.Registry
	Tracer *obs.Tracer
}

// DefaultConfig returns the R3 campaign configuration: a mixed-precision
// MLP on PCM devices (the paper's flagship analog training stack), kill
// rates 0–3 against checkpoint intervals 1–2 under two fault levels.
func DefaultConfig(seed uint64, quick bool) Config {
	c := Config{
		Exp: analog.ExperimentConfig{
			Hidden:    []int{16},
			Epochs:    8,
			LR:        0.05,
			Seed:      seed,
			Data:      dataset.DigitsConfig{Classes: 6, Dim: 16, PerClass: 50, Noise: 0.5, Separation: 1},
			TrainFrac: 0.8,
		},
		Opts:              analog.DefaultOptions(crossbar.PCM(), analog.MixedPrecision),
		KillRates:         []int{0, 1, 3},
		Intervals:         []int{1, 2},
		Levels:            []float64{0, 1},
		DriftPerEpoch:     30,
		MaintainThreshold: 0.9,
	}
	if quick {
		c.Exp.Epochs = 6
		c.KillRates = []int{0, 2}
		c.Intervals = []int{2}
	}
	return c
}

// planAt scales the mid-training fault campaign: progressive stuck-at
// failures with corrupt frozen values plus periodic drift bursts, the two
// §II-B.2 processes that accumulate device damage a resumed run must agree
// with bit-for-bit.
func planAt(level float64) faults.Plan {
	if level <= 0 {
		return faults.Plan{}
	}
	return faults.Plan{
		StuckPerOp:      0.0004 * level,
		StuckValueStd:   0.3,
		WriteFail:       0.002 * level,
		DriftBurstEvery: 2500,
		DriftBurstDt:    20 * level,
	}
}

// kill is one scheduled crash: the earliest epoch it may fire at and its
// flavor. Flavors map to ckpt crash sites; "corrupt" fires at
// "ckpt-committed" and then truncates the committed file, forcing recovery
// to detect the corruption and fall back to the previous good checkpoint.
type kill struct {
	epoch  int
	flavor string
}

// killFlavors rotates through every crash class the durability protocol
// must survive.
var killFlavors = []string{"mid-epoch", "corrupt", "wal-appended", "ckpt-mid-write"}

// schedule spreads n kills evenly across the run.
func schedule(n, epochs int) []kill {
	ks := make([]kill, 0, n)
	for i := 0; i < n; i++ {
		ks = append(ks, kill{
			epoch:  (i + 1) * epochs / (n + 1),
			flavor: killFlavors[i%len(killFlavors)],
		})
	}
	return ks
}

// killer arms the next scheduled kill as a ckpt.CrashFn. A kill fires at
// the first matching site whose sequence number has reached its epoch, so
// save-path flavors wait for the next checkpoint after the scheduled epoch.
type killer struct {
	pending []kill
	last    kill
}

func (k *killer) fn(site string, seq int) {
	if len(k.pending) == 0 {
		return
	}
	next := k.pending[0]
	want := next.flavor
	if want == "corrupt" {
		want = "ckpt-committed"
	}
	if site == want && seq >= next.epoch {
		k.pending = k.pending[1:]
		k.last = next
		panic(ckpt.Crash{Site: site, Seq: seq})
	}
}

// ArmResult is one row of the graceful-degradation table.
type ArmResult struct {
	Kills int     // scheduled kills
	Every int     // checkpoint interval (epochs)
	Level float64 // fault-campaign intensity

	Crashes      int     // kills that actually fired
	Rejected     int     // corrupt checkpoint files detected and refused
	Replayed     int     // completed epochs redone across all recoveries
	WastedRec    int64   // pulses lost with checkpoint recovery
	WastedScr    int64   // pulses lost had each crash restarted from scratch
	Accuracy     float64 // recovered run's final test accuracy
	BitIdentical bool    // TrainResult equals the never-killed run's exactly
}

// attemptOutcome reports one training attempt inside an arm.
type attemptOutcome struct {
	res     analog.TrainResult
	sess    *analog.Session
	crashed bool
	flavor  string
	err     error
}

// build constructs a fresh session (and fault engine at level > 0) from the
// config seed. Construction is deterministic, so every attempt of an arm
// rebuilds the identical starting point before the checkpoint import
// rewinds it to the crashed run's last durable state.
func (c Config) build(level float64, ck *analog.Checkpointing) (*analog.Session, []analog.EpochHook) {
	sess := analog.NewSession(c.Opts, rngutil.New(c.Exp.Seed).Child("session"))
	if level > 0 {
		eng := faults.NewEngine(planAt(level), rngutil.New(c.Exp.Seed).Child("chaos-faults"))
		sess.AttachHook(eng)
		ck.Providers = []ckpt.StateProvider{eng}
	}
	hook := func(int) {
		sess.AdvanceTime(c.DriftPerEpoch)
		sess.MaintainPCM(c.MaintainThreshold)
	}
	return sess, []analog.EpochHook{hook}
}

// train runs one uninterrupted training pass (the never-killed reference).
func (c Config) train(level float64, ck analog.Checkpointing) (analog.TrainResult, *analog.Session, error) {
	sess, hooks := c.build(level, &ck)
	res, err := analog.RunDigitsResumable(sess.Factory(), sess, c.Exp, ck, hooks...)
	return res, sess, err
}

// attempt runs one (possibly killed) training attempt, converting a chaos
// crash panic into a reported outcome. The session is captured before the
// run so wear at the crash point is readable after the panic unwinds.
func (c Config) attempt(level float64, ck analog.Checkpointing, k *killer) (out attemptOutcome) {
	sess, hooks := c.build(level, &ck)
	out.sess = sess
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(ckpt.Crash); !ok {
				panic(r)
			}
			out.crashed = true
			out.flavor = k.last.flavor
		}
	}()
	out.res, out.err = analog.RunDigitsResumable(sess.Factory(), sess, c.Exp, ck, hooks...)
	return out
}

// corruptNewest truncates the newest committed checkpoint file, simulating
// media damage after a clean commit.
func corruptNewest(dir string) error {
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if len(files) == 0 {
		return nil
	}
	sort.Sort(sort.Reverse(sort.StringSlice(files)))
	raw, err := os.ReadFile(files[0])
	if err != nil {
		return err
	}
	return os.WriteFile(files[0], raw[:len(raw)/2], 0o644)
}

// ckptPulses reads the cumulative pulse count a checkpoint was taken at.
func ckptPulses(st *ckpt.TrainingState) int64 {
	if st == nil {
		return 0
	}
	var n int64
	for _, a := range st.Arrays {
		n += a.Counts.Pulses
	}
	return n
}

// RunArm executes one table row: it kills the run per schedule, recovers
// from the last good checkpoint each time, and compares the final result to
// the never-killed reference run ref.
func (c Config) RunArm(kills, every int, level float64, ref analog.TrainResult) (ArmResult, error) {
	arm := ArmResult{Kills: kills, Every: every, Level: level}
	dir, err := os.MkdirTemp("", "chaos-arm-*")
	if err != nil {
		return arm, err
	}
	defer os.RemoveAll(dir)
	store, err := ckpt.Open(dir)
	if err != nil {
		return arm, err
	}
	k := &killer{pending: schedule(kills, c.Exp.Epochs)}
	store.Crash = k.fn
	store.Obs = c.Obs

	var crashPulses int64 = -1 // pulses at the previous attempt's crash
	var res analog.TrainResult
	for attempt := 0; ; attempt++ {
		if attempt > kills+1 {
			return arm, fmt.Errorf("chaos: arm (%d kills, every %d) did not converge in %d attempts", kills, every, attempt)
		}
		st, recov, err := store.LoadLatest()
		if err != nil {
			return arm, err
		}
		arm.Rejected += len(recov.Rejected)
		if crashPulses >= 0 { // this load is a recovery from a crash
			arm.Replayed += recov.Replayed()
			arm.WastedRec += crashPulses - ckptPulses(st)
			arm.WastedScr += crashPulses
		}
		out := c.attempt(level, analog.Checkpointing{
			Store: store, Every: every, Resume: st, Crash: k.fn,
			Obs: c.Obs, Tracer: c.Tracer,
		}, k)
		if out.err != nil {
			return arm, out.err
		}
		if !out.crashed {
			res = out.res
			break
		}
		arm.Crashes++
		crashPulses = out.sess.TotalPulses()
		if out.flavor == "corrupt" {
			if err := corruptNewest(dir); err != nil {
				return arm, err
			}
		}
	}
	arm.Accuracy = res.TestAccuracy
	arm.BitIdentical = reflect.DeepEqual(res, ref)
	arm.exportObs(c.Obs)
	return arm, nil
}

// exportObs folds one arm's crash/recovery accounting into reg. Arms run
// sequentially and their schedules are deterministic, so these counters are
// stable.
func (arm ArmResult) exportObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("chaos_arms_total", "chaos campaign arms completed").Inc()
	reg.Counter("chaos_crashes_total", "scheduled kills that fired").Add(int64(arm.Crashes))
	reg.Counter("chaos_rejected_total", "corrupt checkpoints detected and refused").Add(int64(arm.Rejected))
	reg.Counter("chaos_replayed_epochs_total", "completed epochs redone across recoveries").Add(int64(arm.Replayed))
}

// Run executes the full campaign grid. Reference (never-killed) runs are
// computed once per fault level and shared across the grid.
func Run(c Config) ([]ArmResult, error) {
	refs := map[float64]analog.TrainResult{}
	for _, level := range c.Levels {
		res, _, err := c.train(level, analog.Checkpointing{Obs: c.Obs, Tracer: c.Tracer})
		if err != nil {
			return nil, err
		}
		refs[level] = res
	}
	var out []ArmResult
	for _, level := range c.Levels {
		for _, every := range c.Intervals {
			for _, kills := range c.KillRates {
				arm, err := c.RunArm(kills, every, level, refs[level])
				if err != nil {
					return nil, err
				}
				out = append(out, arm)
			}
		}
	}
	return out, nil
}

// FormatTable renders the graceful-degradation table.
func FormatTable(results []ArmResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-6s %-6s | %-7s %-8s %-8s %-12s %-12s %-9s %-9s\n",
		"kills", "ckpt", "fault", "crashes", "rejected", "replayed",
		"wasted-rec", "wasted-scr", "test-acc", "bit-ident")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 96))
	for _, r := range results {
		ident := "YES"
		if !r.BitIdentical {
			ident = "NO"
		}
		fmt.Fprintf(&b, "%-6d %-6d %-6.1f | %-7d %-8d %-8d %-12d %-12d %-9.3f %-9s\n",
			r.Kills, r.Every, r.Level, r.Crashes, r.Rejected, r.Replayed,
			r.WastedRec, r.WastedScr, r.Accuracy, ident)
	}
	return b.String()
}

// CheckInvariants verifies the campaign's acceptance criteria on a result
// set: every arm recovered bit-identically, and recovery strictly dominates
// restart-from-scratch on wasted pulses at every non-zero kill rate.
func CheckInvariants(results []ArmResult) error {
	for _, r := range results {
		if !r.BitIdentical {
			return fmt.Errorf("chaos: arm (%d kills, every %d, level %.1f) is not bit-identical to the unkilled run",
				r.Kills, r.Every, r.Level)
		}
		if r.Kills > 0 && r.Crashes == 0 {
			return fmt.Errorf("chaos: arm (%d kills, every %d, level %.1f) never crashed", r.Kills, r.Every, r.Level)
		}
		if r.Crashes > 0 && r.WastedRec >= r.WastedScr {
			return fmt.Errorf("chaos: arm (%d kills, every %d, level %.1f): recovery wasted %d pulses, scratch %d — no dominance",
				r.Kills, r.Every, r.Level, r.WastedRec, r.WastedScr)
		}
	}
	return nil
}
