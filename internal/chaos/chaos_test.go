package chaos

import (
	"reflect"
	"strings"
	"testing"
)

func testConfig() Config {
	c := DefaultConfig(99, true)
	c.Exp.Data.PerClass = 40 // keep the grid fast
	return c
}

// TestCampaignInvariants runs the quick campaign grid and pins the
// acceptance criteria: every killed arm recovers bit-identically to the
// unkilled run, recovery strictly dominates restart-from-scratch on wasted
// pulses wherever a crash fired, and the corrupt-after-commit flavor forces
// at least one detected-and-rejected checkpoint file.
func TestCampaignInvariants(t *testing.T) {
	results, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(results); err != nil {
		t.Fatal(err)
	}
	sawCorruptRejection := false
	for _, r := range results {
		if r.Kills >= 2 && r.Rejected > 0 {
			sawCorruptRejection = true
		}
		if r.Kills > 0 && r.Replayed == 0 {
			t.Fatalf("arm %+v crashed but reports no replayed epochs", r)
		}
	}
	if !sawCorruptRejection {
		t.Fatal("corrupt-after-commit flavor never produced a rejected checkpoint")
	}
}

// TestCampaignDeterministic: the same config yields the same table,
// including the wear accounting.
func TestCampaignDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.KillRates = []int{2}
	cfg.Levels = []float64{1}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("campaign not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestScheduleCoversAllFlavors sanity-checks the kill schedule shape.
func TestScheduleCoversAllFlavors(t *testing.T) {
	ks := schedule(4, 8)
	if len(ks) != 4 {
		t.Fatalf("want 4 kills, got %d", len(ks))
	}
	seen := map[string]bool{}
	last := 0
	for _, k := range ks {
		seen[k.flavor] = true
		if k.epoch < last {
			t.Fatalf("kill epochs not monotone: %+v", ks)
		}
		last = k.epoch
	}
	for _, f := range killFlavors {
		if !seen[f] {
			t.Fatalf("flavor %s missing from schedule %+v", f, ks)
		}
	}
}

// TestFormatTable smoke-checks the rendering.
func TestFormatTable(t *testing.T) {
	s := FormatTable([]ArmResult{{Kills: 1, Every: 2, Level: 1, Crashes: 1,
		Replayed: 2, WastedRec: 10, WastedScr: 100, Accuracy: 0.9, BitIdentical: true}})
	if !strings.Contains(s, "YES") || !strings.Contains(s, "wasted-rec") {
		t.Fatalf("table malformed:\n%s", s)
	}
}
