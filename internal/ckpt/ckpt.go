// Package ckpt makes long analog training runs crash-safe: versioned,
// CRC-checksummed, atomically written checkpoints of the full training
// state — per-layer device conductances (PCM G⁺/G⁻ legs included), trainer
// accumulators, epoch position, and random-stream positions — plus a small
// write-ahead log of per-epoch step records so recovery can pinpoint the
// last durable epoch and report exactly how much work a crash destroyed.
//
// The durability protocol is the classic temp-file-plus-rename dance:
//
//  1. the checkpoint payload is written to a .tmp file and fsynced;
//  2. an intent record naming the final file is appended to the WAL;
//  3. the temp file is renamed over the final name and the directory is
//     fsynced (the commit point — rename is atomic on POSIX);
//  4. a commit record is appended to the WAL.
//
// A crash at any point leaves either the previous checkpoint intact (steps
// 1–3) or the new one fully durable (after 3). Recovery never trusts a file
// because the WAL names it: every candidate is re-validated against its
// embedded CRC, and truncated or corrupted files are rejected in favour of
// the previous good one.
//
// The paper's central workload (§II: on-device crossbar training) makes the
// artifact being protected expensive — multi-epoch pulse sequences burn
// device endurance — so the chaos campaign (internal/chaos, experiment R3)
// measures recovery cost in replayed epochs and wasted pulses, not just
// wall-clock.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/crossbar"
)

// Format constants. Version bumps whenever TrainingState's encoding
// changes; readers reject versions they do not understand rather than
// misdecode them.
const (
	magic   = "ANLGCKP1"
	version = uint32(1)
)

// headerSize is magic + version + payload length + payload CRC.
const headerSize = len(magic) + 4 + 8 + 4

// ErrCorrupt marks a checkpoint file that failed validation — truncated,
// bit-flipped, wrong magic, or undecodable. Recovery treats it as absent
// and falls back; it is never loaded silently.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// LayerState carries the trainer-level extras of one network layer that
// live outside the crossbar arrays: a zero-shift reference matrix, the
// Tiki-Taka transfer position, a mixed-precision digital accumulator, or a
// plain digital weight matrix. Kind-specific meaning is documented by the
// exporter (internal/analog).
type LayerState struct {
	Kind   string
	Ints   []int64
	Floats [][]float64
}

// TrainingState is the complete resumable state of a training run at an
// epoch boundary. Restoring it and re-running the remaining epochs yields a
// bit-identical TrainResult to the uninterrupted run (pinned by
// internal/analog's resume tests).
type TrainingState struct {
	// Epoch is the number of completed epochs; resume continues at Epoch.
	Epoch int
	// EpochLoss holds the per-epoch mean losses of epochs [0, Epoch).
	EpochLoss []float64
	// Arrays is the device state of every crossbar the session owns, in
	// session creation order.
	Arrays []crossbar.ArrayState
	// Layers is per-layer trainer state in network layer order.
	Layers []LayerState
	// Extra carries the state of registered StateProviders (e.g. a
	// mid-training fault engine), keyed by provider key.
	Extra map[string][]byte
}

// StateProvider is extra run state that must ride along in checkpoints for
// the run to be resumable — the canonical example is faults.Engine, whose
// random stream and open-line registry must restore with the arrays.
type StateProvider interface {
	// StateKey names the provider's slot in TrainingState.Extra; keys must
	// be unique within a run.
	StateKey() string
	// ExportState serializes the provider's current state.
	ExportState() ([]byte, error)
	// ImportState restores previously exported state.
	ImportState([]byte) error
}

// CrashFn is the chaos-testing hook: the durability-critical code paths
// call it (when non-nil) at named sites with a sequence number (the epoch
// being persisted). A chaos harness panics from inside it to simulate a
// crash at exactly that point; production runs leave it nil. Sites:
//
//	"mid-epoch"      — between two training samples (from internal/analog)
//	"ckpt-mid-write" — half the checkpoint payload written to the temp file
//	"wal-appended"   — intent logged, rename not yet performed
//	"ckpt-committed" — rename durable, commit record written
type CrashFn func(site string, seq int)

// Crash is the panic value a chaos CrashFn raises; the campaign driver
// recovers it and treats everything else as a real failure.
type Crash struct {
	Site string
	Seq  int
}

// Error implements error so a recovered Crash can flow through error paths.
func (c Crash) Error() string {
	return fmt.Sprintf("simulated crash at %s (seq %d)", c.Site, c.Seq)
}

// encode serializes st with gob. Gob is self-describing and stable for a
// fixed struct shape; the envelope CRC, not the encoding, provides
// integrity.
func encode(st *TrainingState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("ckpt: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decode(payload []byte) (*TrainingState, error) {
	st := &TrainingState{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("%w: payload undecodable: %v", ErrCorrupt, err)
	}
	return st, nil
}

// writeEnvelope writes the framed checkpoint to w: magic, version, payload
// length, payload CRC32 (Castagnoli), payload. crash, when armed, fires
// after half the payload — the torn-write point of a real power cut.
func writeEnvelope(w io.Writer, payload []byte, epoch int, crash CrashFn) error {
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, version)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(payload)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	half := len(payload) / 2
	if _, err := w.Write(payload[:half]); err != nil {
		return err
	}
	if crash != nil {
		crash("ckpt-mid-write", epoch)
	}
	_, err := w.Write(payload[half:])
	return err
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ReadFile loads and validates one checkpoint file. Any deviation from the
// format — short file, wrong magic, unknown version, length mismatch, CRC
// mismatch, undecodable payload — returns an error wrapping ErrCorrupt, so
// callers can distinguish corruption (fall back to an older file) from I/O
// errors like a missing directory.
func ReadFile(path string) (*TrainingState, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerSize {
		return nil, fmt.Errorf("%w: %s: short header (%d bytes)", ErrCorrupt, path, len(raw))
	}
	if string(raw[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	off := len(magic)
	ver := binary.LittleEndian.Uint32(raw[off:])
	if ver != version {
		return nil, fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, path, ver)
	}
	off += 4
	plen := binary.LittleEndian.Uint64(raw[off:])
	off += 8
	sum := binary.LittleEndian.Uint32(raw[off:])
	off += 4
	payload := raw[off:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("%w: %s: payload %d bytes, header says %d",
			ErrCorrupt, path, len(payload), plen)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: %s: CRC mismatch", ErrCorrupt, path)
	}
	st, err := decode(payload)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}
