package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// arbitraryState builds a TrainingState whose arrays cover every device
// technology in a non-trivial lifetime position: pulsed, updated, read
// (random streams mid-draw), drifted (PCM differential pairs with unequal
// legs), and with run-time frozen devices.
func arbitraryState(t *testing.T, seed uint64) *TrainingState {
	t.Helper()
	rng := rngutil.New(seed)
	models := []crossbar.Model{
		crossbar.Ideal(), crossbar.RRAM(), crossbar.PCM(),
		crossbar.PCMProjected(), crossbar.FeFET(), crossbar.ECRAM(),
	}
	st := &TrainingState{
		Epoch:     3,
		EpochLoss: []float64{1.9, 1.2, 0.7},
		Extra:     map[string][]byte{"fault-engine": {9, 8, 7, 6}},
	}
	for i, m := range models {
		cfg := crossbar.DefaultConfig()
		cfg.ReadNoise = 0.02
		a := crossbar.NewArray(4+i%3, 3+i%2, m, cfg, rng.Child(m.Name()))
		u := make(tensor.Vector, a.Rows())
		v := make(tensor.Vector, a.Cols())
		for k := range u {
			u[k] = rng.Uniform(-1, 1)
		}
		for k := range v {
			v[k] = rng.Uniform(-1, 1)
		}
		a.PulseAll(5, true)
		a.Update(0.3, u, v)
		a.Forward(v)
		a.AdvanceTime(97) // PCM pairs mid-drift
		a.Update(-0.2, u, v)
		a.FreezeAt(0, 0, 0.33)
		st.Arrays = append(st.Arrays, a.ExportState())
	}
	st.Layers = []LayerState{
		{Kind: "plain"},
		{Kind: "tikitaka", Ints: []int64{1, 2}},
		{Kind: "mixedprec", Floats: [][]float64{{0.01, -0.02, 0.03}}},
	}
	return st
}

// TestSaveLoadRoundTrip is the core property: an arbitrary training state
// survives the durable save/load cycle byte-for-byte (compared through the
// canonical encoding, which is what training actually restores from).
func TestSaveLoadRoundTrip(t *testing.T) {
	st := arbitraryState(t, 41)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path, err := s.Save(st)
	if err != nil {
		t.Fatal(err)
	}
	got, recov, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || recov.Path != path || len(recov.Rejected) != 0 {
		t.Fatalf("load: state=%v recovery=%+v", got != nil, recov)
	}
	a, _ := encode(st)
	b, err := encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("loaded state does not round-trip byte-for-byte")
	}
	// And the array states inside restore onto live arrays exactly
	// (device-level round-trip is pinned in package crossbar; here we pin
	// that the file format preserved them).
	if got.Arrays[2].Model != "pcm" {
		t.Fatalf("array order/model not preserved: %q", got.Arrays[2].Model)
	}
}

// TestTruncationDetectedAtEveryOffset: a checkpoint truncated at every
// possible byte offset must be rejected as corrupt — no prefix of a valid
// file is a valid file.
func TestTruncationDetectedAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	path, err := s.Save(arbitraryState(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(t.TempDir(), "ckpt-000003.ckpt")
	for off := 0; off < len(raw); off++ {
		if err := os.WriteFile(victim, raw[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(victim); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at offset %d/%d not detected: %v", off, len(raw), err)
		}
	}
}

// TestBitFlipDetectedEverywhere: flipping any single byte — header or
// payload — must be caught by the magic/version/length checks or the CRC.
func TestBitFlipDetectedEverywhere(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	path, err := s.Save(arbitraryState(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	victim := filepath.Join(t.TempDir(), "ckpt-000003.ckpt")
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x5a
		if err := os.WriteFile(victim, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(victim); err == nil {
			t.Fatalf("bit flip at offset %d/%d not detected", off, len(raw))
		}
	}
}

// TestFallbackToPreviousGood: recovery must refuse a corrupted newest
// checkpoint and fall back to the previous good file, reporting the
// rejection.
func TestFallbackToPreviousGood(t *testing.T) {
	s, _ := Open(t.TempDir())
	old := arbitraryState(t, 3)
	old.Epoch = 2
	if _, err := s.Save(old); err != nil {
		t.Fatal(err)
	}
	newer := arbitraryState(t, 5)
	newer.Epoch = 4
	newPath, err := s.Save(newer)
	if err != nil {
		t.Fatal(err)
	}
	// Torn write on the newest file.
	raw, _ := os.ReadFile(newPath)
	if err := os.WriteFile(newPath, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, recov, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Epoch != 2 {
		t.Fatalf("expected fallback to epoch-2 checkpoint, got %+v", got)
	}
	if len(recov.Rejected) != 1 || !strings.Contains(recov.Rejected[0], "ckpt-000004") {
		t.Fatalf("rejection not reported: %+v", recov.Rejected)
	}
}

// TestLoadLatestFreshDirectory: an empty store is a fresh start, not an
// error.
func TestLoadLatestFreshDirectory(t *testing.T) {
	s, _ := Open(t.TempDir())
	st, recov, err := s.LoadLatest()
	if err != nil || st != nil {
		t.Fatalf("fresh dir: state=%v err=%v", st, err)
	}
	if recov.LastWALEpoch != -1 || recov.Replayed() != 0 {
		t.Fatalf("fresh recovery = %+v", recov)
	}
}

// TestWALTornTail: a log truncated mid-record yields the intact prefix and
// flags the torn tail.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for e := 0; e < 4; e++ {
		if err := s.AppendStep(e, 1.0/float64(e+1), int64(1000*(e+1))); err != nil {
			t.Fatal(err)
		}
	}
	raw, _ := os.ReadFile(s.walPath())
	if err := os.WriteFile(s.walPath(), raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := s.WAL()
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("torn tail not detected")
	}
	if len(recs) != 3 || recs[2].Epoch != 2 || recs[2].Pulses != 3000 {
		t.Fatalf("intact prefix wrong: %+v", recs)
	}
}

// TestRecoveryReplayedAccounting: WAL says the run completed epochs 0..5
// but the newest durable checkpoint holds 3 completed epochs → recovery
// must report 3 replayed epochs.
func TestRecoveryReplayedAccounting(t *testing.T) {
	s, _ := Open(t.TempDir())
	st := arbitraryState(t, 13)
	st.Epoch = 3
	if _, err := s.Save(st); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 6; e++ {
		if err := s.AppendStep(e, 0.5, int64(e)); err != nil {
			t.Fatal(err)
		}
	}
	_, recov, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if recov.Epoch != 3 || recov.LastWALEpoch != 5 || recov.Replayed() != 3 {
		t.Fatalf("recovery accounting = %+v (replayed %d)", recov, recov.Replayed())
	}
}

// simulateCrashAt runs save with a CrashFn armed at one site and recovers
// the panic, returning whether it fired.
func simulateCrashAt(t *testing.T, s *Store, st *TrainingState, site string) (fired bool) {
	t.Helper()
	s.Crash = func(at string, seq int) {
		if at == site {
			panic(Crash{Site: at, Seq: seq})
		}
	}
	defer func() {
		s.Crash = nil
		if r := recover(); r != nil {
			if _, ok := r.(Crash); !ok {
				panic(r)
			}
			fired = true
		}
	}()
	_, _ = s.Save(st)
	return false
}

// TestCrashSitesLeavePreviousCheckpointLoadable walks every kill point of
// the durability protocol and checks the invariant the whole design rests
// on: after a crash anywhere, LoadLatest still returns a valid state — the
// new checkpoint if the rename committed, the previous one otherwise.
func TestCrashSitesLeavePreviousCheckpointLoadable(t *testing.T) {
	for _, site := range []string{"ckpt-mid-write", "wal-appended", "ckpt-committed"} {
		t.Run(site, func(t *testing.T) {
			s, _ := Open(t.TempDir())
			base := arbitraryState(t, 17)
			base.Epoch = 1
			if _, err := s.Save(base); err != nil {
				t.Fatal(err)
			}
			next := arbitraryState(t, 19)
			next.Epoch = 2
			if !simulateCrashAt(t, s, next, site) {
				t.Fatalf("site %s never fired", site)
			}
			got, recov, err := s.LoadLatest()
			if err != nil || got == nil {
				t.Fatalf("recovery after %s: state=%v err=%v (%+v)", site, got != nil, err, recov)
			}
			wantEpoch := 1
			if site == "ckpt-committed" { // rename already durable
				wantEpoch = 2
			}
			if got.Epoch != wantEpoch {
				t.Fatalf("after %s: recovered epoch %d, want %d", site, got.Epoch, wantEpoch)
			}
			if len(recov.Rejected) != 0 {
				t.Fatalf("after %s: unexpected rejections %v", site, recov.Rejected)
			}
		})
	}
}
