package ckpt

import "time"

// logWAL appends one record through the store's WAL, timing the append
// (dominated by its fsync) when a registry is attached. The record count is
// deterministic — it tracks the training schedule — so it is stable; the
// fsync latency is wall-clock and therefore volatile.
func (s *Store) logWAL(rec WalRecord) error {
	if s.Obs == nil {
		return appendWAL(s.walPath(), rec)
	}
	t0 := time.Now()
	err := appendWAL(s.walPath(), rec)
	s.Obs.Histogram("ckpt_wal_fsync_seconds",
		"wall-clock latency of one WAL append+fsync (windowed)", 1024).Volatile().
		Observe(time.Since(t0).Seconds())
	s.Obs.Counter("ckpt_wal_records_total", "WAL records appended").Inc()
	return err
}

// noteSave records one completed checkpoint save.
func (s *Store) noteSave(t0 time.Time) {
	if s.Obs == nil {
		return
	}
	s.Obs.Counter("ckpt_saves_total", "checkpoints saved through the durability protocol").Inc()
	s.Obs.Histogram("ckpt_save_seconds",
		"wall-clock latency of one full checkpoint save (windowed)", 256).Volatile().
		Observe(time.Since(t0).Seconds())
}

// noteRecovery records what LoadLatest found.
func (s *Store) noteRecovery(rec Recovery) {
	if s.Obs == nil {
		return
	}
	s.Obs.Counter("ckpt_recoveries_total", "recovery scans performed").Inc()
	s.Obs.Counter("ckpt_rejected_total", "corrupt checkpoint candidates refused during recovery").
		Add(int64(len(rec.Rejected)))
	if rec.TornWAL {
		s.Obs.Counter("ckpt_torn_wal_total", "recoveries that discarded a torn WAL tail").Inc()
	}
}
