package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Store manages a checkpoint directory: durable saves, WAL step records,
// retention, and recovery. One Store serves one training run's directory;
// it is not safe for concurrent use (training is single-threaded through
// the epoch loop that drives it).
type Store struct {
	dir string
	// Keep is how many validated checkpoint files are retained; older ones
	// are pruned after each successful save. At least 2, so a checkpoint
	// that turns out corrupt on recovery always has a predecessor to fall
	// back to.
	Keep int
	// Crash is the chaos hook threaded into the durability protocol; nil in
	// production.
	Crash CrashFn
	// Obs, when non-nil, receives save/WAL/recovery instrumentation: record
	// and save counts are deterministic (stable); fsync and save latencies
	// are wall-clock (volatile).
	Obs *obs.Registry
}

// Open creates (if needed) and wraps a checkpoint directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, Keep: 2}, nil
}

// Dir returns the managed directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) walPath() string { return filepath.Join(s.dir, walName) }

// fileFor names the checkpoint file of an epoch; zero-padding keeps
// lexicographic and numeric order identical.
func (s *Store) fileFor(epoch int) string { return fmt.Sprintf("ckpt-%06d.ckpt", epoch) }

// AppendStep logs one completed training epoch to the WAL. Recovery uses
// these records to pinpoint the last epoch the crashed run had reached, so
// the campaign can report replayed work precisely.
func (s *Store) AppendStep(epoch int, loss float64, pulses int64) error {
	return s.logWAL(WalRecord{Type: RecEpoch, Epoch: epoch, Loss: loss, Pulses: pulses})
}

// WAL returns the log's intact records and whether a torn tail was
// discarded.
func (s *Store) WAL() ([]WalRecord, bool, error) { return readWAL(s.walPath()) }

// Save writes st as the newest checkpoint using the atomic protocol
// documented on the package: temp write + fsync, WAL intent, rename +
// directory fsync, WAL commit, prune. It returns the final file path.
func (s *Store) Save(st *TrainingState) (string, error) {
	t0 := time.Now()
	name := s.fileFor(st.Epoch)
	final := filepath.Join(s.dir, name)
	tmp := final + ".tmp"

	payload, err := encode(st)
	if err != nil {
		return "", err
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if err := writeEnvelope(f, payload, st.Epoch, s.Crash); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}

	if err := s.logWAL(WalRecord{Type: RecIntent, Epoch: st.Epoch, File: name}); err != nil {
		return "", err
	}
	if s.Crash != nil {
		s.Crash("wal-appended", st.Epoch)
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	if err := syncDir(s.dir); err != nil {
		return "", err
	}
	if err := s.logWAL(WalRecord{Type: RecCommit, Epoch: st.Epoch, File: name}); err != nil {
		return "", err
	}
	if s.Crash != nil {
		s.Crash("ckpt-committed", st.Epoch)
	}
	s.prune()
	s.noteSave(t0)
	return final, nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// checkpointFiles lists the directory's checkpoint files sorted
// newest-first (by epoch, thanks to the padded names).
func (s *Store) checkpointFiles() []string {
	matches, _ := filepath.Glob(filepath.Join(s.dir, "ckpt-*.ckpt"))
	sort.Sort(sort.Reverse(sort.StringSlice(matches)))
	return matches
}

// prune removes checkpoint files beyond Keep and any stray temp files from
// crashed saves. Best-effort: retention is an optimization, not a
// correctness requirement, so errors are ignored.
func (s *Store) prune() {
	keep := s.Keep
	if keep < 2 {
		keep = 2
	}
	files := s.checkpointFiles()
	for i, f := range files {
		if i >= keep {
			os.Remove(f)
		}
	}
	tmps, _ := filepath.Glob(filepath.Join(s.dir, "ckpt-*.ckpt.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}
}

// Recovery reports what LoadLatest found: which file (if any) was loaded,
// which candidates were rejected as corrupt and why, and how far the
// crashed run had progressed per the WAL — the inputs to the campaign's
// replayed-epoch accounting.
type Recovery struct {
	// Path is the loaded checkpoint file ("" when starting fresh).
	Path string
	// Epoch is the resume epoch: the loaded state's epoch, or 0 fresh.
	Epoch int
	// Rejected lists corrupt candidate files that were refused, newest
	// first, with the validation failure appended.
	Rejected []string
	// LastWALEpoch is the highest completed epoch the WAL records (-1 when
	// the log is empty): epochs in (Epoch, LastWALEpoch] were completed by
	// the crashed run and must be replayed.
	LastWALEpoch int
	// TornWAL reports whether the log had a truncated/corrupt tail
	// (discarded, expected after a crash mid-append).
	TornWAL bool
}

// Replayed returns how many completed epochs the recovered run must redo.
func (r Recovery) Replayed() int {
	if r.LastWALEpoch+1 <= r.Epoch {
		return 0
	}
	return r.LastWALEpoch + 1 - r.Epoch
}

// LoadLatest finds the newest valid checkpoint. Corrupted or truncated
// candidates are rejected — never loaded silently — and recovery falls
// back to the next older file; with no valid checkpoint it returns a nil
// state (start from scratch). The error return is reserved for real I/O
// failures (e.g. unreadable directory), not corruption.
func (s *Store) LoadLatest() (*TrainingState, Recovery, error) {
	rec := Recovery{LastWALEpoch: -1}
	recs, torn, err := readWAL(s.walPath())
	if err != nil {
		return nil, rec, err
	}
	rec.TornWAL = torn
	for _, r := range recs {
		if r.Type == RecEpoch && r.Epoch > rec.LastWALEpoch {
			rec.LastWALEpoch = r.Epoch
		}
	}
	for _, path := range s.checkpointFiles() {
		st, err := ReadFile(path)
		if err != nil {
			rec.Rejected = append(rec.Rejected, fmt.Sprintf("%s: %s", filepath.Base(path), trimPath(err)))
			continue
		}
		rec.Path = path
		rec.Epoch = st.Epoch
		s.noteRecovery(rec)
		return st, rec, nil
	}
	s.noteRecovery(rec)
	return nil, rec, nil
}

// trimPath shortens validation errors for the recovery report.
func trimPath(err error) string {
	msg := err.Error()
	if i := strings.LastIndex(msg, ": "); i >= 0 && strings.Contains(msg[:i], "/") {
		return msg[i+2:]
	}
	return msg
}
