package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
)

// RecordType discriminates WAL records.
type RecordType uint8

// WAL record types.
const (
	// RecEpoch is appended after every completed training epoch; it is how
	// recovery knows which epochs had been reached (and must be replayed)
	// even when no checkpoint survived them.
	RecEpoch RecordType = iota + 1
	// RecIntent is appended after the checkpoint temp file is durable but
	// before the rename: it names the file about to be committed.
	RecIntent
	// RecCommit is appended after the rename is durable: the named file is
	// now the latest checkpoint.
	RecCommit
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case RecEpoch:
		return "epoch"
	case RecIntent:
		return "intent"
	case RecCommit:
		return "commit"
	}
	return fmt.Sprintf("RecordType(%d)", uint8(t))
}

// WalRecord is one step record of the write-ahead log.
type WalRecord struct {
	Type   RecordType
	Epoch  int
	Loss   float64 // RecEpoch: mean training loss of the epoch
	Pulses int64   // RecEpoch: cumulative device pulses at epoch end
	File   string  // RecIntent/RecCommit: checkpoint file name
}

// walName is the log's file name inside a Store directory.
const walName = "wal.log"

// appendWAL appends one CRC-framed record to the log and fsyncs it. Frame:
// uint32 body length, uint32 body CRC32C, gob body. A crash mid-append
// leaves a truncated tail that readWAL detects and discards — exactly the
// torn-tail semantics of a real database log.
func appendWAL(path string, rec WalRecord) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return fmt.Errorf("ckpt: wal encode: %w", err)
	}
	frame := make([]byte, 0, 8+body.Len())
	frame = binary.LittleEndian.AppendUint32(frame, uint32(body.Len()))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(body.Bytes(), crcTable))
	frame = append(frame, body.Bytes()...)

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readWAL parses the log, returning every intact record in order plus
// whether a truncated or corrupted tail was discarded. A missing log is an
// empty history, not an error (fresh directory).
func readWAL(path string) (recs []WalRecord, torn bool, err error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	off := 0
	for off < len(raw) {
		if off+8 > len(raw) {
			return recs, true, nil
		}
		blen := int(binary.LittleEndian.Uint32(raw[off:]))
		sum := binary.LittleEndian.Uint32(raw[off+4:])
		body := raw[off+8:]
		if blen > len(body) {
			return recs, true, nil
		}
		body = body[:blen]
		if crc32.Checksum(body, crcTable) != sum {
			return recs, true, nil
		}
		var rec WalRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			return recs, true, nil
		}
		recs = append(recs, rec)
		off += 8 + blen
	}
	return recs, false, nil
}
