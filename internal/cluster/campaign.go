package cluster

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rngutil"
	"repro/internal/serve"
)

// CampaignConfig parameterizes experiment R6: diurnal multi-tenant load
// against a sharded fleet under node-level fault scenarios, compared
// across remediation policies. Bit-reproducible in (config, Seed).
type CampaignConfig struct {
	Seed  uint64
	Quick bool
	// Nodes is the fleet size; Shards and ReplicasPer the placement.
	Nodes, Shards, ReplicasPer int
	// Duration is the arrival window in virtual seconds.
	Duration float64
	Traffic  TrafficConfig
	Lat      serve.LatencyModel
	Net      NetModel
	Detector DetectorConfig
	// RefreshEvery is the model-version broadcast period.
	RefreshEvery float64
	// Scenarios are the node-fault scenarios swept; Levels the non-zero
	// intensity multipliers applied to each (the fault-free baseline runs
	// once under scenario "none" at level 0).
	Scenarios []string
	Levels    []float64
	Policies  []Policy
	// Obs, when non-nil, accumulates counters and per-node/per-shard
	// labeled series across every cell.
	Obs *obs.Registry
}

// DefaultCampaignConfig returns the R6 configuration.
func DefaultCampaignConfig(seed uint64, quick bool) CampaignConfig {
	c := CampaignConfig{
		Seed:        seed,
		Quick:       quick,
		Nodes:       6,
		Shards:      8,
		ReplicasPer: 2,
		Duration:    6.0,
		Traffic: TrafficConfig{
			BaseRate:      260,
			DiurnalAmp:    0.5,
			DiurnalPeriod: 6.0,
			Bursts:        []Burst{{At: 1.5, For: 0.5, Mult: 2.5}, {At: 4.0, For: 0.4, Mult: 2.0}},
			Tenants: []Tenant{
				{Name: "batch", Share: 0.3, RatePerSec: 140, Burst: 30},
				{Name: "online", Share: 0.7, RatePerSec: 400, Burst: 80, ClosedClients: 4, ThinkTime: 0.05},
			},
		},
		Lat:          serve.DefaultLatencyModel(),
		Net:          DefaultNetModel(),
		Detector:     DefaultDetectorConfig(),
		RefreshEvery: 0.5,
		Scenarios:    []string{"crash", "slow", "partition"},
		Levels:       []float64{1, 2},
		Policies:     []Policy{PolicyNone(), PolicyDetect(), PolicyFull()},
	}
	if quick {
		c.Nodes = 5
		c.Shards = 6
		c.Duration = 3.0
		c.Traffic.BaseRate = 180
		c.Traffic.Bursts = []Burst{{At: 1.0, For: 0.4, Mult: 2.5}}
		c.Levels = []float64{1, 2}
	}
	return c
}

// scenarioPlan scales one named node-fault scenario by the level
// multiplier. The fleet timing context: ~1 ms services, 25 ms deadlines,
// 50 ms heartbeats, 0.5 s model refreshes.
func scenarioPlan(name string, level float64, cfg CampaignConfig) faults.NodePlan {
	if level <= 0 || name == "none" {
		return faults.NodePlan{}
	}
	switch name {
	case "crash":
		// Nodes crash and come back stale: restarts long enough that the
		// detector notices, short enough that re-admission matters.
		return faults.NodePlan{
			CrashesPerNode: 0.5 * level,
			RestartAfter:   0.20 * cfg.Duration,
			MsgLoss:        0.005 * level,
		}
	case "slow":
		// A subset of nodes stragglers at SlowFactor× service time in
		// recurring windows — the case hedging exists for.
		return faults.NodePlan{
			SlowNodes:  1 + int(level/2),
			SlowFactor: 8 * level,
			SlowEvery:  cfg.Duration / 3,
			SlowFor:    cfg.Duration / 6,
			MsgLoss:    0.005 * level,
		}
	case "partition":
		// A minority cell is cut off mid-run and heals later; the fabric
		// is lossy and slow throughout.
		minority := cfg.Nodes/2 - 1
		if minority < 1 {
			minority = 1
		}
		return faults.NodePlan{
			PartitionAt:   0.30 * cfg.Duration,
			PartitionFor:  0.25 * cfg.Duration * level,
			MinorityNodes: minority,
			MsgLoss:       0.01 * level,
			MsgDelayMult:  1 + 0.5*level,
		}
	}
	panic("cluster: unknown scenario " + name)
}

// buildShards trains the golden digits MLP once and programs one pure
// analog pipeline per shard (no fault hook, zero read noise): answers are
// deterministic functions of the programmed state, so the single-threaded
// sim shares the pipelines across every cell and policy arm.
func buildShards(cfg CampaignConfig) ([]serve.Pipeline, []serve.SimRequest) {
	rng := rngutil.New(cfg.Seed)
	dcfg := dataset.DigitsConfig{Classes: 6, Dim: 16, PerClass: 80, Noise: 0.5, Separation: 1}
	ds := dataset.Digits(dcfg, rng.Child("data"))
	train, test := ds.Split(0.75)

	golden := nn.NewMLP([]int{dcfg.Dim, 12, dcfg.Classes}, nn.TanhAct, nn.SoftmaxAct,
		nn.DenseFactory(rng.Child("weights")))
	for epoch := 0; epoch < 8; epoch++ {
		for i := range train.X {
			golden.TrainStep(train.X[i], train.Y[i], 0.05)
		}
	}

	pcfg := serve.DefaultMLPPipelineConfig()
	pipes := make([]serve.Pipeline, cfg.Shards)
	for sh := 0; sh < cfg.Shards; sh++ {
		pipes[sh] = serve.NewMLPPipeline(golden, nil, pcfg, nil,
			rng.Child(fmt.Sprintf("shard%d", sh)))
	}
	var reqs []serve.SimRequest
	for i := range test.X {
		reqs = append(reqs, serve.SimRequest{X: test.X[i], Want: test.Y[i]})
	}
	return pipes, reqs
}

// Campaign sweeps (scenario × level × policy) and returns one row per
// cell, fault-free baseline first. Every policy inside a cell faces the
// identical node-fault schedule and arrival stream (common random
// numbers).
func Campaign(cfg CampaignConfig) []CellResult {
	pipes, reqs := buildShards(cfg)
	type cell struct {
		scenario string
		level    float64
	}
	cells := []cell{{"none", 0}}
	for _, sc := range cfg.Scenarios {
		for _, lv := range cfg.Levels {
			cells = append(cells, cell{sc, lv})
		}
	}
	var results []CellResult
	for ci, c := range cells {
		plan := scenarioPlan(c.scenario, c.level, cfg)
		schedule := plan.Schedule(cfg.Nodes, cfg.Duration,
			rngutil.New(cfg.Seed+7919*uint64(ci+1)))
		for _, pol := range cfg.Policies {
			m := RunClusterSim(SimConfig{
				Policy:       pol,
				Traffic:      cfg.Traffic,
				Lat:          cfg.Lat,
				Net:          cfg.Net,
				Detector:     cfg.Detector,
				Duration:     cfg.Duration,
				Nodes:        cfg.Nodes,
				Placement:    Placement{Shards: cfg.Shards, ReplicasPer: cfg.ReplicasPer},
				ShardPipes:   pipes,
				Requests:     reqs,
				Plan:         plan,
				Schedule:     schedule,
				RefreshEvery: cfg.RefreshEvery,
				RNG:          rngutil.New(cfg.Seed + 104729*uint64(ci+1)),
				Obs:          cfg.Obs,
			})
			results = append(results, CellResult{Scenario: c.scenario, Level: c.level, Policy: pol.Name, M: m})
		}
	}
	return results
}

// RunR6 renders the full R6 experiment table to w — the body the repro
// pipeline and cmd/cluster-campaign share, so every caller prints
// byte-identical tables for one config.
func RunR6(w io.Writer, cfg CampaignConfig) error {
	fmt.Fprintf(w, "sharded fleet: %d nodes, %d shards x%d replicas, %.0f req/s base (diurnal + bursts) for %.1fs virtual, deadline %.1fms\n",
		cfg.Nodes, cfg.Shards, cfg.ReplicasPer, cfg.Traffic.BaseRate, cfg.Duration, cfg.Policies[0].Deadline*1e3)
	fmt.Fprintf(w, "policies: none (blind routing, stale served), detect (failure detector + retry + staleness rejection), full (+ hedging + admission control)\n\n")
	results := Campaign(cfg)
	for _, r := range results {
		if err := r.M.Check(); err != nil {
			return fmt.Errorf("%s/%.2f/%s: %w", r.Scenario, r.Level, r.Policy, err)
		}
	}
	fmt.Fprint(w, FormatClusterTable("sharded analog serving fleet (node-level chaos)", results))
	return nil
}
