package cluster

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rngutil"
)

// quickResults runs the CI-gated quick campaign once and shares the rows
// across the acceptance tests (the campaign is deterministic, so sharing
// changes nothing).
var (
	campOnce sync.Once
	campRows []CellResult
)

func quickResults(t *testing.T) []CellResult {
	t.Helper()
	campOnce.Do(func() {
		campRows = Campaign(DefaultCampaignConfig(1234, true))
	})
	return campRows
}

func findCell(t *testing.T, rows []CellResult, scenario string, level float64, policy string) *Metrics {
	t.Helper()
	for i := range rows {
		r := &rows[i]
		if r.Scenario == scenario && r.Level == level && r.Policy == policy {
			return &r.M
		}
	}
	t.Fatalf("no cell %s/%.2f/%s in campaign results", scenario, level, policy)
	return nil
}

// TestClusterCampaignDeterministic pins the acceptance criterion: the
// table and the stable metrics dump are byte-identical across repeated
// runs and across tile-engine worker counts.
func TestClusterCampaignDeterministic(t *testing.T) {
	run := func(workers int) (string, string) {
		par.SetWorkers(workers)
		defer par.SetWorkers(0)
		reg := obs.NewRegistry()
		cfg := DefaultCampaignConfig(1234, true)
		cfg.Obs = reg
		var table, dump strings.Builder
		if err := RunR6(&table, cfg); err != nil {
			t.Fatalf("RunR6: %v", err)
		}
		reg.WriteStable(&dump)
		return table.String(), dump.String()
	}
	t1, d1 := run(1)
	t4, d4 := run(4)
	if t1 != t4 {
		t.Fatalf("campaign table differs between -workers 1 and 4:\n--- w1 ---\n%s--- w4 ---\n%s", t1, t4)
	}
	if d1 != d4 {
		t.Fatal("stable metrics dump differs between -workers 1 and 4")
	}
	t1b, _ := run(1)
	if t1 != t1b {
		t.Fatal("campaign table differs between two identical runs")
	}
}

// TestClusterAccounting pins the no-lost/no-double invariant: in every
// cell — partitions included — every offered request reaches exactly one
// terminal disposition, and race-losing replies are discarded, never
// double-served.
func TestClusterAccounting(t *testing.T) {
	for _, r := range quickResults(t) {
		if err := r.M.Check(); err != nil {
			t.Errorf("%s/%.2f/%s: %v", r.Scenario, r.Level, r.Policy, err)
		}
		if r.M.Offered == 0 {
			t.Errorf("%s/%.2f/%s: no traffic reached the fleet", r.Scenario, r.Level, r.Policy)
		}
	}
}

// TestClusterDominance pins the headline robustness claim: the full
// remediation stack weakly dominates the no-remediation arm on BOTH
// goodput and accuracy at every non-zero node-fault level, in every
// scenario.
func TestClusterDominance(t *testing.T) {
	rows := quickResults(t)
	cfg := DefaultCampaignConfig(1234, true)
	for _, sc := range cfg.Scenarios {
		for _, lv := range cfg.Levels {
			none := findCell(t, rows, sc, lv, "none")
			full := findCell(t, rows, sc, lv, "full")
			if full.Goodput() < none.Goodput() {
				t.Errorf("%s/%.2f: full goodput %.4f < none %.4f", sc, lv, full.Goodput(), none.Goodput())
			}
			if full.Accuracy() < none.Accuracy() {
				t.Errorf("%s/%.2f: full accuracy %.4f < none %.4f", sc, lv, full.Accuracy(), none.Accuracy())
			}
		}
	}
}

// TestMinorityPartitionShedsNotStale pins the partition invariant: under
// every partition cell the full stack never serves a stale shard — stale
// replies are rejected and the request retried or shed — while the
// no-remediation arm demonstrably does serve stale (the hazard is real,
// not vacuously avoided).
func TestMinorityPartitionShedsNotStale(t *testing.T) {
	rows := quickResults(t)
	cfg := DefaultCampaignConfig(1234, true)
	staleNoneTotal := 0
	for _, lv := range cfg.Levels {
		for _, pol := range []string{"detect", "full"} {
			m := findCell(t, rows, "partition", lv, pol)
			if m.StaleServed != 0 {
				t.Errorf("partition/%.2f: %s served %d stale replies, want 0", lv, pol, m.StaleServed)
			}
		}
		staleNoneTotal += findCell(t, rows, "partition", lv, "none").StaleServed
	}
	if staleNoneTotal == 0 {
		t.Error("no-remediation arm served no stale replies under partition — the staleness hazard is not being exercised")
	}
}

// TestClusterRemediationActive sanity-checks that the stack's layers all
// fire somewhere in the campaign (a knob wired to nothing would pass the
// dominance test vacuously).
func TestClusterRemediationActive(t *testing.T) {
	var hedges, retries, quarantines, readmits, resyncs, crashes int
	for _, r := range quickResults(t) {
		hedges += r.M.Hedges
		retries += r.M.Retries
		quarantines += r.M.Quarantines
		readmits += r.M.Readmits
		resyncs += r.M.Resyncs
		crashes += r.M.Crashes
	}
	for name, v := range map[string]int{
		"hedges": hedges, "retries": retries, "quarantines": quarantines,
		"readmits": readmits, "resyncs": resyncs, "crashes": crashes,
	} {
		if v == 0 {
			t.Errorf("campaign never exercised %s", name)
		}
	}
}

// TestTokenBucket covers the admission limiter: burst capacity, refill,
// and the unlimited zero-rate bucket.
func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(10, 2)
	if !b.take(0) || !b.take(0) {
		t.Fatal("burst capacity 2 should admit two immediate requests")
	}
	if b.take(0) {
		t.Fatal("third immediate request should be rate-limited")
	}
	if !b.take(0.1) {
		t.Fatal("after 0.1s at 10/s one token should have refilled")
	}
	var unlimited *tokenBucket
	if !unlimited.take(0) || !newTokenBucket(0, 0).take(5) {
		t.Fatal("nil/zero-rate buckets must admit everything")
	}
}

// TestTrafficGenerator covers the arrival process: strictly increasing
// arrivals, rate curve below the thinning envelope everywhere, and
// determinism in the seed.
func TestTrafficGenerator(t *testing.T) {
	cfg := DefaultCampaignConfig(1, true).Traffic
	for x := 0.0; x < 10; x += 0.05 {
		if cfg.Rate(x) > cfg.maxRate()+1e-9 {
			t.Fatalf("Rate(%.2f) = %.1f exceeds the thinning envelope %.1f", x, cfg.Rate(x), cfg.maxRate())
		}
	}
	draw := func() []float64 {
		g := newTrafficGen(cfg, rngutil.New(99))
		var ts []float64
		t0 := 0.0
		for i := 0; i < 200; i++ {
			t0 = g.Next(t0)
			ts = append(ts, t0)
		}
		return ts
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across same-seed generators: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d: %v then %v", i, a[i-1], a[i])
		}
		if math.IsInf(a[i], 0) || math.IsNaN(a[i]) {
			t.Fatalf("arrival %d is not finite: %v", i, a[i])
		}
	}
}
