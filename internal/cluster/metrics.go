package cluster

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Metrics is the per-arm accounting of one cluster campaign cell. Every
// offered request lands in exactly one terminal disposition — Completed,
// RateLimited, Unavailable, Shed, or Expired — which the request-ID
// accounting invariant (Check) pins.
type Metrics struct {
	// Offered counts front-door arrivals (open- plus closed-loop).
	Offered int
	// Completed requests were answered with an accepted reply before their
	// deadline (the router expires a request at its deadline, so late
	// replies are discarded as duplicates); of those, Correct matched the
	// digital reference AND were model-fresh — Good is the same count from
	// the offered side. StaleServed were answered from a shard missing
	// model refreshes (an accepted-but-stale reply — only policies without
	// VersionCheck do this; graded incorrect).
	Completed, Correct, Good, StaleServed int
	// RateLimited were rejected by a tenant token bucket; Unavailable
	// found no routable replica at admission; Shed ran out of non-stale
	// options mid-flight (stale replies rejected, no retries left);
	// Expired hit their deadline with no accepted reply.
	RateLimited, Unavailable, Shed, Expired int
	// Remediation and fleet activity.
	Retries, Hedges, StaleRejected, Resyncs int
	Suspects, Quarantines, Readmits         int
	Crashes, Restarts                       int
	// Message-level accounting: duplicate replies discarded at the router
	// (the not-double-served half of the invariant) and messages lost to
	// partition or the lossy fabric.
	DupReplies, MsgsLost int
	// AccountingViolations counts double terminal dispositions — always 0
	// unless the simulator itself is broken.
	AccountingViolations int

	latencies []float64 // accepted-reply latencies, virtual seconds
}

// Goodput is the fraction of offered requests answered on time, correctly,
// and from a fresh model — the headline number.
func (m *Metrics) Goodput() float64 {
	if m.Offered == 0 {
		return 0
	}
	return float64(m.Good) / float64(m.Offered)
}

// Accuracy is the fraction of completed requests answered correctly and
// fresh. Stale or wrong completions count against it.
func (m *Metrics) Accuracy() float64 {
	if m.Completed == 0 {
		return 0
	}
	return float64(m.Correct) / float64(m.Completed)
}

// LatencyQuantile reports the q-th accepted-reply latency quantile in
// seconds by nearest rank (0 when nothing completed).
func (m *Metrics) LatencyQuantile(q float64) float64 {
	return obs.Quantile(m.latencies, q)
}

// Check verifies the request-ID accounting invariant: every offered
// request has exactly one terminal disposition and none was double-served.
func (m *Metrics) Check() error {
	terminals := m.Completed + m.RateLimited + m.Unavailable + m.Shed + m.Expired
	if terminals != m.Offered {
		return fmt.Errorf("cluster: %d offered requests but %d terminal dispositions", m.Offered, terminals)
	}
	if m.AccountingViolations != 0 {
		return fmt.Errorf("cluster: %d requests reached two terminal dispositions", m.AccountingViolations)
	}
	return nil
}

// CellResult is one (scenario, level, policy) row of the campaign table.
type CellResult struct {
	Scenario string
	Level    float64
	Policy   string
	M        Metrics
}

// FormatClusterTable renders campaign results as the fixed-width
// deterministic table the R6 acceptance criterion pins: goodput, latency
// quantiles, shed/unavailable/expired rates, staleness, and accuracy for
// every policy under every fault scenario and level.
func FormatClusterTable(title string, results []CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-10s %6s %-8s %8s %8s %8s %7s %7s %7s %7s %8s %6s %6s\n",
		"scenario", "level", "policy", "goodput", "p50ms", "p99ms",
		"shed", "unavail", "expired", "stale", "acc", "retry", "hedge")
	for _, r := range results {
		shed := r.M.Shed + r.M.RateLimited
		fmt.Fprintf(&b, "%-10s %6.2f %-8s %8.4f %8.3f %8.3f %7d %7d %7d %7d %8.4f %6d %6d\n",
			r.Scenario, r.Level, r.Policy,
			r.M.Goodput(),
			r.M.LatencyQuantile(0.50)*1e3,
			r.M.LatencyQuantile(0.99)*1e3,
			shed, r.M.Unavailable, r.M.Expired, r.M.StaleServed,
			r.M.Accuracy(),
			r.M.Retries, r.M.Hedges)
	}
	return b.String()
}
