// Package cluster grows the single-node self-healing service of
// internal/serve into a simulated multi-node fleet: a front-end router
// placing model shards by rendezvous hashing, per-tenant token-bucket
// admission control, cross-node hedging and bounded retry, a heartbeat
// failure detector with quarantine and re-admission, and a node-level
// fault scenario engine (crash/restart, slow node, majority/minority
// partition, message delay and loss) layered on internal/faults — all
// driven deterministically in the virtual-time simulator, so campaign
// tables are bit-identical at a fixed seed regardless of -workers.
package cluster

// rendezvousScore is the highest-random-weight score of (shard, node):
// a splitmix64-style avalanche over the pair, so every (shard, node)
// edge gets an independent, stable weight. Placement is the descending
// sort of these scores — no coordination state, and a node join/leave
// only remaps the shards whose top-R set that node enters or exits
// (~K·R/N shards, the minimal-churn property pinned by tests).
func rendezvousScore(shard, node uint64) uint64 {
	x := shard*0x9e3779b97f4a7c15 + node + 0xd1b54a32d192ed03
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Placement computes shard→node assignment for a fleet. Pure function of
// (shard, node IDs): no state, deterministic across runs and processes.
type Placement struct {
	// Shards is the number of model shards; ReplicasPer how many nodes
	// host a copy of each shard.
	Shards, ReplicasPer int
}

// NodesFor returns the nodes hosting shard, best rendezvous score first,
// at most ReplicasPer of them. nodes is the current membership (IDs need
// not be dense). The leading entry is the shard's primary.
func (p Placement) NodesFor(shard int, nodes []int) []int {
	type cand struct {
		node  int
		score uint64
	}
	cands := make([]cand, 0, len(nodes))
	for _, n := range nodes {
		cands = append(cands, cand{n, rendezvousScore(uint64(shard), uint64(n))})
	}
	// Insertion sort by descending score (ties broken by node ID for total
	// order); fleets are small, and avoiding sort.Slice keeps the hot path
	// allocation-light.
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i - 1
		for j >= 0 && (cands[j].score < c.score || (cands[j].score == c.score && cands[j].node > c.node)) {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}
	r := p.ReplicasPer
	if r > len(cands) {
		r = len(cands)
	}
	out := make([]int, r)
	for i := 0; i < r; i++ {
		out[i] = cands[i].node
	}
	return out
}

// Table materializes the full placement: Table(nodes)[s] is NodesFor(s, nodes).
func (p Placement) Table(nodes []int) [][]int {
	t := make([][]int, p.Shards)
	for s := range t {
		t[s] = p.NodesFor(s, nodes)
	}
	return t
}
