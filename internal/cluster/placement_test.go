package cluster

import (
	"reflect"
	"testing"
)

// TestRendezvousDeterministic pins that placement is a pure function:
// repeated evaluation, any membership-slice order, same assignment.
func TestRendezvousDeterministic(t *testing.T) {
	p := Placement{Shards: 64, ReplicasPer: 2}
	nodes := []int{0, 1, 2, 3, 4, 5}
	a := p.Table(nodes)
	b := p.Table(nodes)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two evaluations of the same placement differ")
	}
	shuffled := []int{5, 2, 0, 4, 1, 3}
	for s := 0; s < p.Shards; s++ {
		if got := p.NodesFor(s, shuffled); !reflect.DeepEqual(got, a[s]) {
			t.Fatalf("shard %d: membership order changed placement: %v vs %v", s, got, a[s])
		}
	}
}

// TestRendezvousMinimalChurn pins the rendezvous property the router
// depends on: a node leave only remaps shards that node hosted, a join
// only remaps shards the new node wins — ~K·R/N shards, not a reshuffle.
func TestRendezvousMinimalChurn(t *testing.T) {
	const nNodes = 10
	p := Placement{Shards: 256, ReplicasPer: 2}
	nodes := make([]int, nNodes)
	for i := range nodes {
		nodes[i] = i
	}
	before := p.Table(nodes)

	// Leave: drop node 7.
	without := make([]int, 0, nNodes-1)
	for _, n := range nodes {
		if n != 7 {
			without = append(without, n)
		}
	}
	moved := 0
	for s, old := range before {
		now := p.NodesFor(s, without)
		hosted := false
		for _, n := range old {
			if n == 7 {
				hosted = true
			}
		}
		if !hosted {
			if !reflect.DeepEqual(now, old) {
				t.Fatalf("shard %d did not host the leaving node but was remapped: %v -> %v", s, old, now)
			}
			continue
		}
		moved++
	}
	expect := float64(p.Shards*p.ReplicasPer) / nNodes // ≈ K·R/N
	if f := float64(moved); f > 2*expect || moved == 0 {
		t.Fatalf("leave remapped %d shards, want ~%.0f (at most twice that)", moved, expect)
	}

	// Join: add node 10 to the original fleet.
	joined := append(append([]int(nil), nodes...), 10)
	moved = 0
	for s, old := range before {
		now := p.NodesFor(s, joined)
		gained := false
		for _, n := range now {
			if n == 10 {
				gained = true
			}
		}
		if !gained {
			if !reflect.DeepEqual(now, old) {
				t.Fatalf("shard %d did not gain the joining node but was remapped: %v -> %v", s, old, now)
			}
			continue
		}
		moved++
	}
	expect = float64(p.Shards*p.ReplicasPer) / float64(nNodes+1)
	if f := float64(moved); f > 2*expect || moved == 0 {
		t.Fatalf("join remapped %d shards, want ~%.0f (at most twice that)", moved, expect)
	}
}

// TestPlacementBalance sanity-checks the hash spread: no node hosts a
// grossly outsized share of shard replicas.
func TestPlacementBalance(t *testing.T) {
	p := Placement{Shards: 512, ReplicasPer: 2}
	nodes := []int{0, 1, 2, 3, 4, 5, 6, 7}
	load := map[int]int{}
	for _, placed := range p.Table(nodes) {
		if len(placed) != p.ReplicasPer {
			t.Fatalf("placement returned %d replicas, want %d", len(placed), p.ReplicasPer)
		}
		if placed[0] == placed[1] {
			t.Fatalf("duplicate node in placement: %v", placed)
		}
		for _, n := range placed {
			load[n]++
		}
	}
	mean := float64(p.Shards*p.ReplicasPer) / float64(len(nodes))
	for n, l := range load {
		if f := float64(l); f > 2*mean || f < mean/2 {
			t.Fatalf("node %d hosts %d replicas, mean is %.0f — hash spread is badly skewed", n, l, mean)
		}
	}
}
