package cluster

// Policy is one remediation arm of the cluster campaign: which layers of
// the stack are switched on at the front-end router.
type Policy struct {
	Name string
	// Detector enables the heartbeat failure detector: nodes the detector
	// holds Suspect/Down are skipped at routing time, and re-admitted
	// nodes get their model version resynced. Off, the router routes
	// blindly — crashed and partitioned nodes included.
	Detector bool
	// Admission enables the per-tenant token buckets.
	Admission bool
	// Hedge enables cross-node hedged attempts after an adaptive delay
	// drawn from the router's observed reply-latency quantile.
	Hedge bool
	// VersionCheck makes the router reject replies computed against a
	// model version older than the one current when the request arrived
	// (retrying elsewhere, or shedding if out of options) instead of
	// serving stale shards.
	VersionCheck bool
	// MaxAttempts bounds dispatches per request (hedges excluded);
	// RetryAfter is the per-attempt timeout before the router re-sends
	// to the next candidate node.
	MaxAttempts int
	RetryAfter  float64
	// HedgeQuantile/HedgeMin shape the adaptive hedge delay.
	HedgeQuantile float64
	HedgeMin      float64
	// Deadline is the end-to-end request budget in seconds.
	Deadline float64
}

// PolicyNone is the no-remediation baseline: blind round-robin over the
// shard's placement (down or partitioned nodes included), one attempt, no
// admission control, and stale replies served as if fresh.
func PolicyNone() Policy {
	return Policy{
		Name:        "none",
		MaxAttempts: 1,
		Deadline:    0.025,
	}
}

// PolicyDetect adds the failure detector, bounded retry, and staleness
// rejection — but no hedging and no admission control.
func PolicyDetect() Policy {
	return Policy{
		Name:         "detect",
		Detector:     true,
		VersionCheck: true,
		MaxAttempts:  2,
		RetryAfter:   0.008,
		Deadline:     0.025,
	}
}

// PolicyFull is the whole stack: detector, admission, hedging, retry, and
// staleness rejection.
func PolicyFull() Policy {
	return Policy{
		Name:          "full",
		Detector:      true,
		Admission:     true,
		Hedge:         true,
		VersionCheck:  true,
		MaxAttempts:   3,
		RetryAfter:    0.008,
		HedgeQuantile: 0.9,
		HedgeMin:      0.002,
		Deadline:      0.025,
	}
}

// DetectorConfig parameterizes the heartbeat failure detector.
type DetectorConfig struct {
	// HeartbeatEvery is the probe period per node (seconds).
	HeartbeatEvery float64
	// SuspectMisses consecutive probe failures mark a node Suspect (out of
	// rotation); DownMisses mark it Down (quarantined).
	SuspectMisses, DownMisses int
	// ReadmitStreak consecutive probe successes return a Down node to
	// rotation (through Probation), with its model version resynced.
	ReadmitStreak int
}

// DefaultDetectorConfig suits the campaign timing: ~1 ms services against
// a 25 ms deadline, probes every 50 ms, so a crashed node leaves rotation
// within ~100–150 ms and rejoins within ~100 ms of answering again.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		HeartbeatEvery: 0.05,
		SuspectMisses:  2,
		DownMisses:     3,
		ReadmitStreak:  2,
	}
}

// Detector states for one node, as seen from the router.
const (
	dAlive = iota
	dSuspect
	dDown
	dProbation
)
