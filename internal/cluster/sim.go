package cluster

import (
	"container/heap"
	"math"
	"strconv"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/rngutil"
	"repro/internal/serve"
)

// NetModel prices one message hop between the router and a node: delay is
// Base·exp(N(0, Jitter)) seconds, further multiplied by the scenario's
// MsgDelayMult when set.
type NetModel struct {
	Base, Jitter float64
}

// DefaultNetModel suits the campaign timing: ~0.2 ms hops against ~1 ms
// services and a 25 ms deadline.
func DefaultNetModel() NetModel {
	return NetModel{Base: 0.2e-3, Jitter: 0.3}
}

// SimConfig drives one (scenario, level, policy) cell of the cluster
// campaign through the virtual-time simulator. Bit-reproducible in
// (config, RNG seed): the event loop is single-threaded and heap-ordered
// by (time, seq), exactly like the internal/serve simulator it extends.
type SimConfig struct {
	Policy   Policy
	Traffic  TrafficConfig
	Lat      serve.LatencyModel
	Net      NetModel
	Detector DetectorConfig
	// Duration is the arrival window in virtual seconds.
	Duration float64
	// Nodes is the fleet size; Placement the shard→node assignment.
	Nodes     int
	Placement Placement
	// ShardPipes[s] serves shard s's inferences. Pipelines must be pure
	// (no fault hook, zero read noise): the single-threaded sim shares
	// them across nodes and cells.
	ShardPipes []serve.Pipeline
	// Requests is the graded request stream (drawn in order, wrapping).
	Requests []serve.SimRequest
	// Plan and Schedule are the node-level fault scenario: Schedule's
	// timed events drive crash/restart/slow/partition, Plan's MsgLoss and
	// MsgDelayMult degrade every message.
	Plan     faults.NodePlan
	Schedule []faults.NodeEvent
	// RefreshEvery is the model-version broadcast period: the router bumps
	// the fleet version and pushes it to every reachable node. Nodes that
	// miss broadcasts (crashed, partitioned) serve stale until resynced.
	RefreshEvery float64
	// RNG seeds every stream; Obs, when non-nil, accumulates counters and
	// per-node/per-shard labeled series (virtual-time fed, so dumps are
	// byte-identical at any -workers value).
	RNG *rngutil.Source
	Obs *obs.Registry
}

// event kinds (seq breaks time ties).
const (
	evArrival = iota
	evClientArrival
	evReqAtNode
	evNodeDone
	evReplyAtRouter
	evRetry
	evHedge
	evDeadline
	evHeartbeat
	evVersionBump
	evScenario
)

type cReq struct {
	id       int64
	idx      int // request-stream index
	tenant   int
	shard    int
	client   int // closed-loop client index within tenant, -1 for open-loop
	arrive   float64
	deadline float64
	stampVer int64
	attempts int
	tried    []int
	hedged   bool
	done     bool
}

func (r *cReq) triedNode(id int) bool {
	for _, t := range r.tried {
		if t == id {
			return true
		}
	}
	return false
}

// attempt is one dispatch of a request to a node, threaded through the
// request→service→reply message chain.
type attempt struct {
	req     *cReq
	node    int
	epoch   int64
	sentAt  float64
	ver     int64
	correct bool
}

type node struct {
	id      int
	up      bool
	epoch   int64 // bumped on crash; invalidates in-flight service events
	version int64
	freeAt  float64
	slow    int // nesting count of active slow windows
	// minority marks the node cut off in the current partition.
	minority bool
	// router-side detector view.
	state    int
	misses   int
	okStreak int
	// accounting.
	served int64
}

type simEvent struct {
	t    float64
	seq  int64
	kind int
	req  *cReq
	att  *attempt
	node int
	nev  faults.NodeEvent
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type sim struct {
	cfg   SimConfig
	pol   Policy
	nodes []*node
	place [][]int // shard → placement node IDs, best first
	h     eventHeap
	seq   int64
	rr    int

	gen     *trafficGen
	buckets []*tokenBucket
	latRN   *rngutil.Source
	netRN   *rngutil.Source
	hbRN    *rngutil.Source
	verRN   *rngutil.Source
	thinkRN *rngutil.Source

	routerVer int64
	partition bool
	horizon   float64

	ids      int64
	reqIdx   int
	disposed map[int64]bool
	latWin   []float64 // recent reply latencies for the hedge estimator
	latNext  int

	shardServed []int64
	m           Metrics
}

// RunClusterSim drives one policy arm through the fleet simulator and
// returns its metrics.
func RunClusterSim(cfg SimConfig) Metrics {
	if cfg.Policy.MaxAttempts <= 0 {
		cfg.Policy.MaxAttempts = 1
	}
	s := &sim{
		cfg:         cfg,
		pol:         cfg.Policy,
		gen:         newTrafficGen(cfg.Traffic, cfg.RNG),
		latRN:       cfg.RNG.Child("service"),
		netRN:       cfg.RNG.Child("network"),
		hbRN:        cfg.RNG.Child("heartbeat"),
		verRN:       cfg.RNG.Child("version"),
		thinkRN:     cfg.RNG.Child("think"),
		horizon:     cfg.Duration + 0.2,
		disposed:    map[int64]bool{},
		shardServed: make([]int64, cfg.Placement.Shards),
	}
	memberIDs := make([]int, cfg.Nodes)
	for i := range memberIDs {
		memberIDs[i] = i
		s.nodes = append(s.nodes, &node{id: i, up: true})
	}
	s.place = cfg.Placement.Table(memberIDs)
	for _, t := range cfg.Traffic.Tenants {
		s.buckets = append(s.buckets, newTokenBucket(t.RatePerSec, t.Burst))
	}

	s.push(s.gen.Next(0), evArrival, nil, nil, 0, faults.NodeEvent{})
	for ti, t := range cfg.Traffic.Tenants {
		for c := 0; c < t.ClosedClients; c++ {
			at := s.thinkRN.Uniform(0, math.Max(t.ThinkTime, 1e-6))
			s.pushClient(at, ti, c)
		}
	}
	if s.pol.Detector {
		for i := range s.nodes {
			s.push(cfg.Detector.HeartbeatEvery*float64(i+1)/float64(cfg.Nodes),
				evHeartbeat, nil, nil, i, faults.NodeEvent{})
		}
	}
	if cfg.RefreshEvery > 0 {
		s.push(cfg.RefreshEvery, evVersionBump, nil, nil, 0, faults.NodeEvent{})
	}
	for _, ev := range cfg.Schedule {
		s.push(ev.T, evScenario, nil, nil, 0, ev)
	}

	for s.h.Len() > 0 {
		e := heap.Pop(&s.h).(*simEvent)
		switch e.kind {
		case evArrival:
			s.onArrival(e.t)
		case evClientArrival:
			s.onClientArrival(e.t, e.node, int(e.nev.T)) // node=tenant, nev.T=client (see pushClient)
		case evReqAtNode:
			s.onReqAtNode(e.t, e.att)
		case evNodeDone:
			s.onNodeDone(e.t, e.att)
		case evReplyAtRouter:
			s.onReply(e.t, e.att)
		case evRetry:
			s.onRetry(e.t, e.req, e.node)
		case evHedge:
			s.onHedge(e.t, e.req)
		case evDeadline:
			s.onDeadline(e.t, e.req)
		case evHeartbeat:
			s.onHeartbeat(e.t, e.node)
		case evVersionBump:
			s.onVersionBump(e.t)
		case evScenario:
			s.onScenario(e.t, e.nev)
		}
	}
	s.exportObs()
	return s.m
}

func (s *sim) push(t float64, kind int, req *cReq, att *attempt, node int, nev faults.NodeEvent) {
	s.seq++
	heap.Push(&s.h, &simEvent{t: t, seq: s.seq, kind: kind, req: req, att: att, node: node, nev: nev})
}

// pushClient encodes a closed-loop (tenant, client) pair into the generic
// event: node carries the tenant, nev.T the client index.
func (s *sim) pushClient(t float64, tenant, client int) {
	s.push(t, evClientArrival, nil, nil, tenant, faults.NodeEvent{T: float64(client)})
}

func (s *sim) reachable(n *node) bool {
	return n.up && !(s.partition && n.minority)
}

func (s *sim) netDelay() float64 {
	d := s.cfg.Net.Base * math.Exp(s.netRN.Normal(0, s.cfg.Net.Jitter))
	if s.cfg.Plan.MsgDelayMult > 1 {
		d *= s.cfg.Plan.MsgDelayMult
	}
	return d
}

func (s *sim) msgLost() bool {
	return s.cfg.Plan.MsgLoss > 0 && s.netRN.Bernoulli(s.cfg.Plan.MsgLoss)
}

// terminal marks the request's one terminal disposition; callers increment
// the matching counter iff it returns true. Double terminals are counted,
// never silently absorbed — the request-ID accounting invariant.
func (s *sim) terminal(t float64, req *cReq) bool {
	if req.done || s.disposed[req.id] {
		s.m.AccountingViolations++
		return false
	}
	req.done = true
	s.disposed[req.id] = true
	if req.client >= 0 {
		think := s.cfg.Traffic.Tenants[req.tenant].ThinkTime
		u := s.thinkRN.Uniform(0, 1)
		if u <= 0 {
			u = 1e-12
		}
		next := t - math.Log(u)*think
		if next <= s.cfg.Duration {
			s.pushClient(next, req.tenant, req.client)
		}
	}
	return true
}

func (s *sim) onArrival(t float64) {
	if t > s.cfg.Duration {
		return
	}
	s.push(s.gen.Next(t), evArrival, nil, nil, 0, faults.NodeEvent{})
	s.admit(t, s.newRequest(t, s.gen.Tenant(), -1))
}

func (s *sim) onClientArrival(t float64, tenant, client int) {
	if t > s.cfg.Duration {
		return
	}
	s.admit(t, s.newRequest(t, tenant, client))
}

func (s *sim) newRequest(t float64, tenant, client int) *cReq {
	s.ids++
	req := &cReq{
		id:       s.ids,
		idx:      s.reqIdx,
		tenant:   tenant,
		shard:    s.reqIdx % s.cfg.Placement.Shards,
		client:   client,
		arrive:   t,
		deadline: t + s.pol.Deadline,
		stampVer: s.routerVer,
	}
	s.reqIdx++
	return req
}

func (s *sim) admit(t float64, req *cReq) {
	s.m.Offered++
	if s.pol.Admission && !s.buckets[req.tenant].take(t) {
		if s.terminal(t, req) {
			s.m.RateLimited++
		}
		return
	}
	cands := s.candidates(req, t)
	if len(cands) == 0 {
		// Every replica of the shard is out of rotation (down, suspect, or
		// stranded in the minority cell): shed at the front door rather
		// than serve a stale shard or let the request rot to its deadline.
		if s.terminal(t, req) {
			s.m.Unavailable++
		}
		return
	}
	s.push(req.deadline, evDeadline, req, nil, 0, faults.NodeEvent{})
	s.dispatch(t, req, cands[0], false)
}

// candidates orders the shard's placement nodes for the next dispatch.
// With the detector on, only Alive nodes are routable, least router-side
// backlog first (load-aware tie-breaking), placement rank breaking exact
// ties. Without it, the router rotates blindly over the placement — down
// and partitioned nodes included, exactly the naivety the campaign
// measures.
func (s *sim) candidates(req *cReq, t float64) []int {
	placed := s.place[req.shard]
	if !s.pol.Detector {
		out := make([]int, 0, len(placed))
		start := s.rr
		s.rr++
		for i := range placed {
			id := placed[(start+i)%len(placed)]
			if !req.triedNode(id) {
				out = append(out, id)
			}
		}
		return out
	}
	type cand struct {
		id      int
		rank    int
		backlog float64
	}
	cands := make([]cand, 0, len(placed))
	for rank, id := range placed {
		n := s.nodes[id]
		if n.state != dAlive || req.triedNode(id) {
			continue
		}
		backlog := n.freeAt - t
		if backlog < 0 {
			backlog = 0
		}
		cands = append(cands, cand{id, rank, backlog})
	}
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i - 1
		for j >= 0 && (cands[j].backlog > c.backlog ||
			(cands[j].backlog == c.backlog && cands[j].rank > c.rank)) {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

func (s *sim) dispatch(t float64, req *cReq, nodeID int, isHedge bool) {
	req.tried = append(req.tried, nodeID)
	if isHedge {
		req.hedged = true
		s.m.Hedges++
	} else {
		req.attempts++
	}
	att := &attempt{req: req, node: nodeID, sentAt: t}
	if s.msgLost() {
		s.m.MsgsLost++
	} else {
		s.push(t+s.netDelay(), evReqAtNode, nil, att, 0, faults.NodeEvent{})
	}
	if !isHedge && req.attempts < s.pol.MaxAttempts && s.pol.RetryAfter > 0 {
		s.push(t+s.pol.RetryAfter, evRetry, req, nil, req.attempts, faults.NodeEvent{})
	}
	if !isHedge && !req.hedged && s.pol.Hedge && len(s.place[req.shard]) > 1 {
		s.push(t+s.hedgeDelay(), evHedge, req, nil, 0, faults.NodeEvent{})
	}
}

// hedgeDelay is the router's adaptive hedge trigger: the HedgeQuantile of
// recently observed reply latencies (unbiased nearest-rank estimate),
// clamped to [HedgeMin, Deadline/2].
func (s *sim) hedgeDelay() float64 {
	d := s.pol.HedgeMin
	if len(s.latWin) > 0 {
		q := obs.Quantile(append([]float64(nil), s.latWin...), s.pol.HedgeQuantile)
		if q > d {
			d = q
		}
	}
	if max := s.pol.Deadline / 2; d > max {
		d = max
	}
	return d
}

func (s *sim) observeLatency(l float64) {
	const window = 64
	if len(s.latWin) < window {
		s.latWin = append(s.latWin, l)
		return
	}
	s.latWin[s.latNext] = l
	s.latNext = (s.latNext + 1) % window
}

func (s *sim) onReqAtNode(t float64, att *attempt) {
	n := s.nodes[att.node]
	if !s.reachable(n) {
		// The request died crossing a partition boundary, or hit a node
		// that crashed while it was in flight.
		s.m.MsgsLost++
		return
	}
	start := t
	if n.freeAt > start {
		start = n.freeAt
	}
	dur := s.cfg.Lat.AttemptDuration(s.latRN, false)
	if n.slow > 0 && s.cfg.Plan.SlowFactor > 1 {
		dur *= s.cfg.Plan.SlowFactor
	}
	n.freeAt = start + dur
	att.epoch = n.epoch
	att.ver = n.version
	req := att.req
	y, _ := s.cfg.ShardPipes[req.shard].Infer(s.cfg.Requests[req.idx%len(s.cfg.Requests)].X, false)
	att.correct = y.ArgMax() == s.cfg.Requests[req.idx%len(s.cfg.Requests)].Want
	s.push(start+dur, evNodeDone, nil, att, 0, faults.NodeEvent{})
}

func (s *sim) onNodeDone(t float64, att *attempt) {
	n := s.nodes[att.node]
	if !n.up || n.epoch != att.epoch {
		// The node crashed mid-service: the in-flight work is gone. The
		// router's retry timer or the deadline covers the request.
		return
	}
	n.served++
	s.shardServed[att.req.shard]++
	if s.msgLost() {
		s.m.MsgsLost++
		return
	}
	s.push(t+s.netDelay(), evReplyAtRouter, nil, att, 0, faults.NodeEvent{})
}

func (s *sim) onReply(t float64, att *attempt) {
	if s.partition && s.nodes[att.node].minority {
		// The reply can't cross the partition back to the router.
		s.m.MsgsLost++
		return
	}
	req := att.req
	if req.done {
		// First accepted reply wins; the race loser is discarded here —
		// never double-served.
		s.m.DupReplies++
		return
	}
	s.observeLatency(t - att.sentAt)
	stale := att.ver < req.stampVer
	if stale && s.pol.VersionCheck {
		s.m.StaleRejected++
		if req.attempts < s.pol.MaxAttempts && t < req.deadline {
			if cands := s.candidates(req, t); len(cands) > 0 {
				s.m.Retries++
				s.dispatch(t, req, cands[0], false)
				return
			}
		}
		// Out of fresh options: shed rather than serve the stale shard.
		if s.terminal(t, req) {
			s.m.Shed++
		}
		return
	}
	if s.terminal(t, req) {
		s.m.Completed++
		s.m.latencies = append(s.m.latencies, t-req.arrive)
		correct := att.correct && !stale
		if stale {
			s.m.StaleServed++
		}
		if correct {
			s.m.Correct++
			s.m.Good++
		}
	}
}

func (s *sim) onRetry(t float64, req *cReq, attemptNo int) {
	// Fire only for the newest attempt, and only if it is still
	// unanswered (a stale-rejection retry supersedes this timer).
	if req.done || req.attempts != attemptNo || t >= req.deadline {
		return
	}
	cands := s.candidates(req, t)
	if len(cands) == 0 {
		return
	}
	// Retry only where it can still win: a candidate whose backlog eats
	// the remaining deadline budget would just queue more work onto an
	// overloaded node without saving this request.
	if backlog := s.nodes[cands[0]].freeAt - t; backlog > (req.deadline-t)/2 {
		return
	}
	s.m.Retries++
	s.dispatch(t, req, cands[0], false)
}

func (s *sim) onHedge(t float64, req *cReq) {
	if req.done || req.hedged || t >= req.deadline {
		return
	}
	// Hedge only onto an idle node: a hedge that queues behind other work
	// cannot beat the primary, and during overload it would double the
	// load exactly when capacity is scarcest.
	if cands := s.candidates(req, t); len(cands) > 0 && s.nodes[cands[0]].freeAt <= t {
		s.dispatch(t, req, cands[0], true)
	}
}

func (s *sim) onDeadline(t float64, req *cReq) {
	if req.done {
		return
	}
	if s.terminal(t, req) {
		s.m.Expired++
	}
}

// onHeartbeat probes one node: a round trip that fails on partition, a
// down node, or either leg getting lost. The detector folds the result in.
func (s *sim) onHeartbeat(t float64, nodeID int) {
	if t <= s.horizon {
		s.push(t+s.cfg.Detector.HeartbeatEvery, evHeartbeat, nil, nil, nodeID, faults.NodeEvent{})
	}
	n := s.nodes[nodeID]
	lost := s.cfg.Plan.MsgLoss > 0 && (s.hbRN.Bernoulli(s.cfg.Plan.MsgLoss) || s.hbRN.Bernoulli(s.cfg.Plan.MsgLoss))
	if s.reachable(n) && !lost {
		n.misses = 0
		switch n.state {
		case dAlive:
			if n.version < s.routerVer {
				// The probe reply exposes a stale shard on a live node
				// (a restart that missed broadcasts): resync it.
				n.version = s.routerVer
				s.m.Resyncs++
			}
		case dSuspect:
			n.state = dAlive
		case dDown, dProbation:
			n.state = dProbation
			n.okStreak++
			if n.okStreak >= s.cfg.Detector.ReadmitStreak {
				n.state = dAlive
				n.okStreak = 0
				n.version = s.routerVer
				s.m.Readmits++
				s.m.Resyncs++
			}
		}
		return
	}
	n.okStreak = 0
	n.misses++
	switch {
	case n.state == dAlive && n.misses >= s.cfg.Detector.SuspectMisses:
		n.state = dSuspect
		s.m.Suspects++
	case n.state == dSuspect && n.misses >= s.cfg.Detector.DownMisses:
		n.state = dDown
		s.m.Quarantines++
	case n.state == dProbation:
		n.state = dDown
	}
}

// onVersionBump advances the fleet model version and broadcasts the
// delta. Deltas apply contiguously (log replication): a node that is
// down, partitioned, or loses one broadcast has a gap it cannot bridge
// from later deltas alone — it serves stale until a detector resync
// pushes the full state. Policies without the detector never resync,
// which is exactly the staleness the campaign measures.
func (s *sim) onVersionBump(t float64) {
	s.routerVer++
	for _, n := range s.nodes {
		if s.reachable(n) && n.version == s.routerVer-1 &&
			!(s.cfg.Plan.MsgLoss > 0 && s.verRN.Bernoulli(s.cfg.Plan.MsgLoss)) {
			n.version = s.routerVer
		}
	}
	if t+s.cfg.RefreshEvery <= s.cfg.Duration {
		s.push(t+s.cfg.RefreshEvery, evVersionBump, nil, nil, 0, faults.NodeEvent{})
	}
}

func (s *sim) onScenario(t float64, ev faults.NodeEvent) {
	switch ev.Kind {
	case faults.NodeCrash:
		n := s.nodes[ev.Node]
		if n.up {
			n.up = false
			n.epoch++
			n.freeAt = 0
			s.m.Crashes++
		}
	case faults.NodeRestart:
		n := s.nodes[ev.Node]
		if !n.up {
			// Back, but with whatever model version it had at crash time:
			// stale until a broadcast or a detector resync reaches it.
			n.up = true
			n.freeAt = t
			s.m.Restarts++
		}
	case faults.NodeSlowStart:
		s.nodes[ev.Node].slow++
	case faults.NodeSlowEnd:
		if n := s.nodes[ev.Node]; n.slow > 0 {
			n.slow--
		}
	case faults.PartitionStart:
		s.partition = true
		for _, id := range ev.Nodes {
			s.nodes[id].minority = true
		}
	case faults.PartitionHeal:
		s.partition = false
		for _, n := range s.nodes {
			n.minority = false
		}
	}
}

// exportObs folds the cell's final accounting into the shared registry,
// including the per-node and per-shard labeled series. Cells run
// sequentially, so accumulation order — and the stable dump — is
// deterministic.
func (s *sim) exportObs() {
	r := s.cfg.Obs
	if r == nil {
		return
	}
	add := func(name, help string, v int) {
		r.Counter(name, help).Add(int64(v))
	}
	add("cluster_sim_offered_total", "requests offered to the simulated fleet", s.m.Offered)
	add("cluster_sim_completed_total", "requests answered with an accepted reply", s.m.Completed)
	add("cluster_sim_good_total", "requests answered on time, correctly, and fresh", s.m.Good)
	add("cluster_sim_ratelimited_total", "requests rejected by a tenant token bucket", s.m.RateLimited)
	add("cluster_sim_unavailable_total", "requests with no routable replica at admission", s.m.Unavailable)
	add("cluster_sim_shed_total", "requests shed after stale replies exhausted their retries", s.m.Shed)
	add("cluster_sim_expired_total", "requests that hit their deadline unanswered", s.m.Expired)
	add("cluster_sim_stale_served_total", "accepted replies computed against a stale model version", s.m.StaleServed)
	add("cluster_sim_stale_rejected_total", "stale replies rejected by the version check", s.m.StaleRejected)
	add("cluster_sim_retries_total", "retry dispatches", s.m.Retries)
	add("cluster_sim_hedges_total", "hedged dispatches", s.m.Hedges)
	add("cluster_sim_dup_replies_total", "race-losing replies discarded at the router", s.m.DupReplies)
	add("cluster_sim_msgs_lost_total", "messages lost to partition, crash, or the lossy fabric", s.m.MsgsLost)
	add("cluster_sim_crashes_total", "node crash events", s.m.Crashes)
	add("cluster_sim_quarantines_total", "detector down transitions", s.m.Quarantines)
	add("cluster_sim_readmits_total", "quarantined nodes re-admitted to rotation", s.m.Readmits)
	add("cluster_sim_resyncs_total", "model-version resyncs pushed by the detector", s.m.Resyncs)
	const nodeHelp = "requests served per node (fleet hot-spot view)"
	for _, n := range s.nodes {
		r.Counter(obs.Series("cluster_node_served_total", "node", strconv.Itoa(n.id)), nodeHelp).Add(n.served)
	}
	const shardHelp = "requests served per shard (placement balance view)"
	for sh, v := range s.shardServed {
		r.Counter(obs.Series("cluster_shard_served_total", "shard", strconv.Itoa(sh)), shardHelp).Add(v)
	}
	h := r.Histogram("cluster_sim_latency_seconds",
		"accepted-reply latency of simulated fleet requests (virtual time, exact quantiles)", 0)
	for _, l := range s.m.latencies {
		h.Observe(l)
	}
}
