package cluster

import (
	"math"

	"repro/internal/rngutil"
)

// Tenant is one traffic class at the front door: a share of the open-loop
// arrival stream plus, optionally, a pool of closed-loop clients that each
// hold one request in flight and think between requests. The admission
// layer rate-limits per tenant.
type Tenant struct {
	Name string
	// Share is the tenant's weight in the open-loop mix (normalized over
	// all tenants).
	Share float64
	// Bucket parameterizes the tenant's token bucket at the router:
	// RatePerSec sustained, Burst capacity. Zero RatePerSec means
	// unlimited (no bucket).
	RatePerSec, Burst float64
	// ClosedClients is the size of this tenant's closed-loop pool;
	// ThinkTime the mean exponential think time between a terminal
	// disposition and the client's next request.
	ClosedClients int
	ThinkTime     float64
}

// Burst is one square load spike on top of the diurnal curve.
type Burst struct {
	At, For float64
	// Mult multiplies the base rate for the window (e.g. 3 = 3× load).
	Mult float64
}

// TrafficConfig shapes the arrival process: a Poisson base rate modulated
// by a diurnal sinusoid, with square bursts layered on, split across
// tenants, plus closed-loop client pools. All draws are seeded; the same
// (config, rng) yields the identical arrival sequence.
type TrafficConfig struct {
	// BaseRate is the mean open-loop arrival rate (req/s) before
	// modulation.
	BaseRate float64
	// DiurnalAmp in [0,1) scales the sinusoid: rate(t) = BaseRate ·
	// (1 + DiurnalAmp·sin(2πt/DiurnalPeriod)).
	DiurnalAmp    float64
	DiurnalPeriod float64
	Bursts        []Burst
	Tenants       []Tenant
}

// Rate evaluates the instantaneous open-loop arrival rate at time t.
func (c TrafficConfig) Rate(t float64) float64 {
	r := c.BaseRate
	if c.DiurnalAmp > 0 && c.DiurnalPeriod > 0 {
		r *= 1 + c.DiurnalAmp*math.Sin(2*math.Pi*t/c.DiurnalPeriod)
	}
	for _, b := range c.Bursts {
		if t >= b.At && t < b.At+b.For {
			r *= b.Mult
		}
	}
	return r
}

// maxRate bounds Rate over any t — the thinning envelope.
func (c TrafficConfig) maxRate() float64 {
	r := c.BaseRate * (1 + c.DiurnalAmp)
	mult := 1.0
	for _, b := range c.Bursts {
		if b.Mult > mult {
			mult = b.Mult
		}
	}
	return r * mult
}

// trafficGen draws the open-loop arrival sequence by thinning a
// homogeneous Poisson process at the envelope rate: candidate points
// arrive at maxRate and are kept with probability Rate(t)/maxRate —
// the standard exact simulation of a nonhomogeneous Poisson process.
type trafficGen struct {
	cfg    TrafficConfig
	rng    *rngutil.Source
	tenRN  *rngutil.Source
	env    float64
	shares []float64 // cumulative tenant shares, normalized
}

func newTrafficGen(cfg TrafficConfig, rng *rngutil.Source) *trafficGen {
	g := &trafficGen{
		cfg:   cfg,
		rng:   rng.Child("arrivals"),
		tenRN: rng.Child("tenants"),
		env:   cfg.maxRate(),
	}
	var total float64
	for _, t := range cfg.Tenants {
		total += t.Share
	}
	acc := 0.0
	for _, t := range cfg.Tenants {
		acc += t.Share / total
		g.shares = append(g.shares, acc)
	}
	return g
}

// Next returns the first kept arrival strictly after t (math.Inf(1) only
// if the envelope rate is zero).
func (g *trafficGen) Next(t float64) float64 {
	if g.env <= 0 {
		return math.Inf(1)
	}
	for {
		u := g.rng.Uniform(0, 1)
		if u <= 0 {
			u = 1e-12
		}
		t -= math.Log(u) / g.env
		if g.rng.Uniform(0, 1)*g.env <= g.cfg.Rate(t) {
			return t
		}
	}
}

// Tenant draws the tenant index of one open-loop arrival from the mix.
func (g *trafficGen) Tenant() int {
	u := g.tenRN.Uniform(0, 1)
	for i, acc := range g.shares {
		if u <= acc {
			return i
		}
	}
	return len(g.shares) - 1
}

// tokenBucket is the per-tenant admission limiter: capacity burst, refill
// rate tokens/s, continuous refill in virtual time.
type tokenBucket struct {
	rate, burst float64
	tokens      float64
	last        float64
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take attempts to spend one token at time t; false means rate-limited.
// A zero-rate bucket admits everything (the unlimited tenant).
func (b *tokenBucket) take(t float64) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	b.tokens += (t - b.last) * b.rate
	b.last = t
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
