// Package core is the paper-facing facade of the repository: a registry
// that maps every quantitative artifact of "Emerging Neural Workloads and
// Their Impact on Hardware" (DATE 2020) — figures F1/F2/F5, claims C1–C6,
// tables T1/T2, per DESIGN.md — to a runnable experiment that regenerates
// the corresponding numbers on the simulated substrates.
//
// Command-line tools (cmd/*) and the benchmark harness (bench_test.go)
// both drive experiments exclusively through this registry, so every
// reported number has exactly one implementation.
package core

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the artifact identifier from DESIGN.md (e.g. "T1").
	ID string
	// Title is a one-line description of what is regenerated.
	Title string
	// PaperClaim restates the number/shape the paper reports.
	PaperClaim string
	// Quick runs a reduced-size variant when true (used by unit tests);
	// the full variant regenerates the EXPERIMENTS.md numbers.
	Run func(w io.Writer, seed uint64, quick bool) error
}

var registry = map[string]Experiment{}

// register adds an experiment at package init; duplicate IDs panic.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("core: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Registry returns all experiments ordered by ID.
func Registry() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAll executes every experiment in ID order, writing section headers
// between them.
func RunAll(w io.Writer, seed uint64, quick bool) error {
	for _, e := range Registry() {
		fmt.Fprintf(w, "\n=== %s: %s ===\npaper: %s\n\n", e.ID, e.Title, e.PaperClaim)
		if err := e.Run(w, seed, quick); err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
	}
	return nil
}
