package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"C0", "C1", "C2", "C3", "C4", "C5", "C6", "C7", "F1", "F2", "F5", "R1", "R2", "R3", "R6", "T1", "T2"}
	got := Registry()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.PaperClaim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("T1"); !ok {
		t.Fatal("T1 should exist")
	}
	if _, ok := Lookup("Z9"); ok {
		t.Fatal("Z9 should not exist")
	}
}

// Every experiment must run in quick mode and produce non-trivial output.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, 42, true); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if buf.Len() < 40 {
				t.Fatalf("%s produced only %d bytes", e.ID, buf.Len())
			}
		})
	}
}

func TestRunAllQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, 42, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"F1", "T1", "T2"} {
		if !strings.Contains(out, "=== "+id) {
			t.Fatalf("RunAll output missing section %s", id)
		}
	}
}

// Quick smoke of key in-band numbers on the quick variants: T1 bands.
func TestT1QuickOutputHasRatios(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("T1")
	if err := e.Run(&buf, 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x") || !strings.Contains(buf.String(), "copy-seq") {
		t.Fatalf("unexpected T1 output: %s", buf.String())
	}
}
