package core

import (
	"fmt"
	"io"

	"repro/internal/chaos"
	"repro/internal/obs"
)

func init() {
	register(Experiment{
		ID:    "R3",
		Title: "Crash-safe resumable analog training: kill-point chaos campaign (§II-B, §IV-B.1)",
		PaperClaim: "on-device crossbar training spends device endurance (pulse events), so a crashed " +
			"run that restarts from scratch pays for every lost epoch in wear, not just time; durable " +
			"checkpoints of the full device state (PCM conductance pairs included) bound the damage " +
			"and resume bit-identically",
		Run: runR3,
	})
}

func runR3(w io.Writer, seed uint64, quick bool) error {
	cfg := chaos.DefaultConfig(seed, quick)
	cfg.Obs = obs.Default()
	cfg.Tracer = obs.DefaultTracer()
	fmt.Fprintf(w, "workload: %s on %s, %d epochs; kills spread evenly, flavors rotate\n",
		cfg.Opts.Mode, cfg.Opts.Model.Name(), cfg.Exp.Epochs)
	fmt.Fprintf(w, "kill flavors: mid-epoch, corrupt-after-commit, wal-appended (pre-rename), ckpt-mid-write\n")
	fmt.Fprintf(w, "wasted pulses: recovery = lost since last good checkpoint; scratch = lost since run start\n\n")
	results, err := chaos.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(w, chaos.FormatTable(results))
	if err := chaos.CheckInvariants(results); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nall arms recovered bit-identically; recovery dominates scratch restart at every non-zero kill rate\n")
	return nil
}
