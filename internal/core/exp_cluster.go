package core

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func init() {
	register(Experiment{
		ID:    "R6",
		Title: "Partition-tolerant sharded serving fleet under node-level failure injection (§IV-B.2, fleet scale)",
		PaperClaim: "serving workloads only matter at fleet scale, where node loss, stragglers, and " +
			"partitions — not just device faults — set the reliability floor; a router with failure " +
			"detection, cross-node hedging, admission control, and staleness rejection sustains goodput " +
			"and accuracy where blind routing collapses",
		Run: runR6,
	})
}

func runR6(w io.Writer, seed uint64, quick bool) error {
	cfg := cluster.DefaultCampaignConfig(seed, quick)
	cfg.Obs = obs.Default()
	return cluster.RunR6(w, cfg)
}
