package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/analog"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// expConfig returns the shared digits-MLP experiment configuration for the
// crossbar studies (quick: test-sized; full: the EXPERIMENTS.md runs).
func expConfig(seed uint64, quick bool) analog.ExperimentConfig {
	cfg := analog.DefaultExperiment()
	cfg.Seed = seed
	if quick {
		cfg.Data = dataset.DigitsConfig{Classes: 6, Dim: 16, PerClass: 60, Noise: 0.5, Separation: 1}
		cfg.Hidden = []int{12}
		cfg.Epochs = 6
	}
	return cfg
}

func init() {
	register(Experiment{
		ID:    "F1",
		Title: "Crossbar MVM / transposed MVM / parallel rank-1 stochastic update (Fig. 1)",
		PaperClaim: "a crossbar performs all three cycles in O(1) array operations with an " +
			"unbiased stochastic update E[dW] = lr*(d (x) x)",
		Run: runF1,
	})
	register(Experiment{
		ID:    "F2",
		Title: "Analog RRAM pulse response: 3 cycles of 1000 potentiation + 1000 depression pulses (Fig. 2)",
		PaperClaim: "nonlinear, saturating, asymmetric conductance response with " +
			"cycle-to-cycle stochasticity",
		Run: runF2,
	})
	register(Experiment{
		ID:    "C1",
		Title: "RPU device-spec sweep: update asymmetry x granularity vs training accuracy",
		PaperClaim: "symmetry within a few percent and ~0.1% granularity retain accuracy; " +
			"coarse or strongly asymmetric devices degrade training",
		Run: runC1,
	})
	register(Experiment{
		ID:    "C2",
		Title: "PCM training: drift, projection liner, periodic reset, mixed precision",
		PaperClaim: "differential PCM needs periodic reset; projection liner suppresses drift; " +
			"mixed-precision updates recover near-digital accuracy",
		Run: runC2,
	})
	register(Experiment{
		ID:    "C3",
		Title: "Asymmetric-device training: plain SGD vs zero-shifting vs Tiki-Taka (+stuck devices)",
		PaperClaim: "Tiki-Taka on aggressively asymmetric devices trains indistinguishably from " +
			"ideal symmetric devices; drop-connect training accommodates stuck devices",
		Run: runC3,
	})
}

func runF1(w io.Writer, seed uint64, quick bool) error {
	n := 256
	if quick {
		n = 32
	}
	a := crossbar.NewArray(n, n, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(seed))
	rng := rngutil.New(seed).Child("vectors")
	x := make(tensor.Vector, n)
	d := make(tensor.Vector, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Uniform(-1, 1)
		d[i] = rng.Uniform(-1, 1)
	}
	a.Forward(x)
	a.Backward(d)
	a.Update(0.01, d, x)
	fmt.Fprintf(w, "array %dx%d: forward=%d backward=%d update=%d array-ops total\n",
		n, n, a.Counts.Forwards, a.Counts.Backwards, a.Counts.Updates)
	fmt.Fprintf(w, "digital MAC equivalent of the same work: %d\n", a.Counts.DigitalMACs)
	fmt.Fprintf(w, "O(1) claim: 3 array ops replace %d MACs (ratio %.0fx)\n",
		a.Counts.DigitalMACs, float64(a.Counts.DigitalMACs)/3)

	// Unbiasedness of the stochastic update, averaged over trials.
	trials := 200
	if quick {
		trials = 50
	}
	u := tensor.Vector{0.8, -0.5, 0.3}
	v := tensor.Vector{0.6, -0.9}
	var meanErr, meanMag float64
	sum := tensor.NewMatrix(3, 2)
	for trial := 0; trial < trials; trial++ {
		small := crossbar.NewArray(3, 2, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(seed+uint64(trial)+1))
		before := small.Weights()
		small.Update(0.01, u, v)
		after := small.Weights()
		for i := range sum.Data {
			sum.Data[i] += after.Data[i] - before.Data[i]
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			want := 0.01 * u[i] * v[j]
			meanErr += math.Abs(sum.At(i, j)/float64(trials) - want)
			meanMag += math.Abs(want)
		}
	}
	fmt.Fprintf(w, "stochastic update bias over %d trials: %.1f%% of update magnitude\n",
		trials, 100*meanErr/meanMag)
	return nil
}

func runF2(w io.Writer, seed uint64, quick bool) error {
	cycles, pulses := 3, 1000
	if quick {
		pulses = 200
	}
	trace := crossbar.PulseResponse(crossbar.RRAM(), cycles, pulses, pulses, seed)
	fmt.Fprintf(w, "%d-point conductance trace (%d cycles x %d up + %d down)\n",
		len(trace), cycles, pulses, pulses)
	stride := len(trace) / 24
	fmt.Fprintf(w, "trace (every %dth point):", stride)
	for i := 0; i < len(trace); i += stride {
		fmt.Fprintf(w, " %.3f", trace[i])
	}
	fmt.Fprintln(w)
	up100 := trace[pulses/10-1] - trace[0]
	upLast := trace[pulses-1] - trace[pulses-1-pulses/10]
	fmt.Fprintf(w, "saturation: first-decile potentiation moves %.4f, last decile %.4f (ratio %.1fx)\n",
		up100, upLast, up100/math.Max(upLast, 1e-9))
	fmt.Fprintf(w, "measured up/down asymmetry of the model: %.2f (0 = symmetric)\n",
		crossbar.MeasureAsymmetry(crossbar.RRAM(), 100, seed))
	return nil
}

func runC1(w io.Writer, seed uint64, quick bool) error {
	cfg := expConfig(seed, quick)
	digital := analog.RunDigitsDigital(cfg)
	fmt.Fprintf(w, "fp32 digital reference accuracy: %.3f\n\n", digital.TestAccuracy)
	fmt.Fprintf(w, "%-12s %-14s %s\n", "asymmetry", "granularity", "test accuracy")

	asyms := []float64{0, 0.02, 0.05, 0.10, 0.30}
	grans := []float64{0.001, 0.002, 0.01, 0.04} // fraction of the 2.0 weight range
	if quick {
		asyms = []float64{0, 0.05, 0.30}
		grans = []float64{0.001, 0.04}
	}
	for _, g := range grans {
		for _, a := range asyms {
			model := &crossbar.LinearStepModel{P: crossbar.LinearStepParams{
				DwMin:      2 * g, // dw over the [-1,1] range
				Asymmetry:  a,
				CycleNoise: 0.1,
				WMin:       -1, WMax: 1,
			}}
			opts := analog.DefaultOptions(model, analog.PlainSGD)
			res, _ := analog.RunDigitsAnalog(opts, cfg)
			fmt.Fprintf(w, "%-12.2f %-14.3f %.3f\n", a, g, res.TestAccuracy)
		}
	}
	fmt.Fprintln(w, "\n(granularity 0.001 = the paper's 0.1% of range; asymmetry <= 0.05 = 'a few percent')")
	return nil
}

func runC2(w io.Writer, seed uint64, quick bool) error {
	cfg := expConfig(seed, quick)
	digital := analog.RunDigitsDigital(cfg)

	type row struct {
		name string
		res  analog.TrainResult
	}
	var rows []row

	// Mixed-precision training on plain and projected PCM with per-epoch
	// drift and saturation maintenance.
	for _, mc := range []struct {
		name  string
		model crossbar.Model
		drift float64
	}{
		{"pcm mixed-precision (no liner, 60s drift/epoch)", crossbar.PCM(), 60},
		{"pcm mixed-precision (projection liner)", crossbar.PCMProjected(), 60},
	} {
		sess := analog.NewSession(analog.DefaultOptions(mc.model, analog.MixedPrecision), rngutil.New(cfg.Seed).Child("session"))
		res := analog.RunDigits(sess.Factory(), cfg, func(epoch int) {
			sess.AdvanceTime(mc.drift)
			sess.MaintainPCM(0.9)
		})
		rows = append(rows, row{mc.name, res})
	}
	// Plain analog SGD on PCM without maintenance: saturation hurts.
	noReset, _ := analog.RunDigitsAnalog(analog.DefaultOptions(crossbar.PCM(), analog.PlainSGD), cfg)
	rows = append(rows, row{"pcm plain SGD (no reset, no liner)", noReset})

	fmt.Fprintf(w, "%-48s %s\n", "configuration", "test accuracy")
	fmt.Fprintf(w, "%-48s %.3f\n", "fp32 digital reference", digital.TestAccuracy)
	for _, r := range rows {
		fmt.Fprintf(w, "%-48s %.3f\n", r.name, r.res.TestAccuracy)
	}

	// Drift of programmed inference weights over time, with and without
	// the projection liner.
	fmt.Fprintf(w, "\ninference drift (relative output loss after 10^6 s):\n")
	for _, mc := range []struct {
		name  string
		model crossbar.Model
	}{{"pcm", crossbar.PCM()}, {"pcm-projected", crossbar.PCMProjected()}} {
		a := crossbar.NewArray(8, 8, mc.model, crossbar.DefaultConfig(), rngutil.New(seed))
		a.PulseAll(150, true)
		ones := make(tensor.Vector, 8)
		ones.Fill(1)
		before := a.Forward(ones).Sum()
		a.AdvanceTime(1e6)
		after := a.Forward(ones).Sum()
		fmt.Fprintf(w, "  %-14s %.1f%%\n", mc.name, 100*(before-after)/before)
	}
	return nil
}

func runC3(w io.Writer, seed uint64, quick bool) error {
	cfg := expConfig(seed, quick)
	asym := &crossbar.SoftBoundsModel{P: crossbar.SoftBoundsParams{
		SlopeUp: 0.002, SlopeDown: 0.012, WMin: -1, WMax: 1,
	}}
	fmt.Fprintf(w, "device: soft-bounds, measured asymmetry %.2f\n\n",
		crossbar.MeasureAsymmetry(asym, 100, seed))
	fmt.Fprintf(w, "%-36s %s\n", "training algorithm", "test accuracy")

	ideal, _ := analog.RunDigitsAnalog(analog.DefaultOptions(crossbar.Ideal(), analog.PlainSGD), cfg)
	fmt.Fprintf(w, "%-36s %.3f\n", "ideal symmetric device + SGD", ideal.TestAccuracy)
	for _, mode := range []analog.Mode{analog.PlainSGD, analog.ZeroShift, analog.TikiTaka} {
		res, _ := analog.RunDigitsAnalog(analog.DefaultOptions(asym, mode), cfg)
		fmt.Fprintf(w, "%-36s %.3f\n", "asymmetric device + "+mode.String(), res.TestAccuracy)
	}

	// Stuck devices: conventional vs hardware-aware (drop-connect) training
	// programmed onto faulty arrays, averaged over fault placements. At this
	// network scale both training styles tolerate the faults gracefully
	// (accuracy well above the asymmetric-device failure mode above); the
	// qualitative claim reproduced is fault *tolerance*, with drop-connect
	// providing insurance at no accuracy cost.
	const stuckFrac = 0.20
	fmt.Fprintf(w, "\nstuck devices (%.0f%%), inference after programming (mean of 3 fault placements):\n", 100*stuckFrac)
	rng := rngutil.New(cfg.Seed)
	ds := dataset.Digits(cfg.Data, rng.Child("data"))
	train, test := ds.Split(cfg.TrainFrac)
	sizes := append([]int{cfg.Data.Dim}, cfg.Hidden...)
	sizes = append(sizes, cfg.Data.Classes)
	trainMLP := func(factory nn.MatFactory) *nn.MLP {
		m := nn.NewMLP(sizes, nn.TanhAct, nn.SoftmaxAct, factory)
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for i := range train.X {
				m.TrainStep(train.X[i], train.Y[i], cfg.LR)
			}
		}
		return m
	}
	faulty := crossbar.DefaultConfig()
	faulty.StuckFraction = stuckFrac
	plain := trainMLP(nn.DenseFactory(rngutil.New(seed + 1)))
	aware := trainMLP(analog.DropConnectFactory(stuckFrac/2, rngutil.New(seed+1)))
	analog.SetTrainMode(aware, false)
	var accPlain, accAware float64
	for s := uint64(0); s < 3; s++ {
		plainA, _ := analog.ProgramToArrays(plain, crossbar.Ideal(), faulty, rngutil.New(seed+2+s))
		awareA, _ := analog.ProgramToArrays(aware, crossbar.Ideal(), faulty, rngutil.New(seed+2+s))
		accPlain += plainA.Accuracy(test.X, test.Y)
		accAware += awareA.Accuracy(test.X, test.Y)
	}
	fmt.Fprintf(w, "%-36s %.3f\n", "conventional training", accPlain/3)
	fmt.Fprintf(w, "%-36s %.3f\n", "hardware-aware (drop-connect)", accAware/3)
	return nil
}
