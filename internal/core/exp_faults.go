package core

import (
	"fmt"
	"io"

	"repro/internal/faults"
	"repro/internal/obs"
)

func init() {
	register(Experiment{
		ID:    "R1",
		Title: "Fault-injection campaign: graceful degradation vs remediation (§II-B.2, §IV-B.2)",
		PaperClaim: "stuck/non-yielding crosspoints degrade accuracy progressively; write-verify " +
			"retry and redundancy-based remapping recover most of the loss at bounded extra cost",
		Run: runR1,
	})
}

func printPoints(w io.Writer, points []faults.Point, costHeader string) {
	fmt.Fprintf(w, "%-8s %-14s %-10s %-10s %s\n", "rate", "strategy", "accuracy", "residual", costHeader)
	for _, p := range points {
		fmt.Fprintf(w, "%-8.2f %-14s %-10.3f %-10.4f %.0f pulses, %.1f reads, %.1f remapped\n",
			p.Rate, p.Strategy, p.Accuracy, p.Residual, p.AvgPulses, p.AvgReads, p.AvgRemapped)
	}
}

func runR1(w io.Writer, seed uint64, quick bool) error {
	cfg := faults.DefaultSweepConfig(seed, quick)
	cfg.Obs = obs.Default()

	fmt.Fprintf(w, "analog digits MLP: stuck fraction x remediation (writefail %.2f, %d placements)\n",
		cfg.WriteFail, cfg.Placements)
	printPoints(w, faults.AnalogSweep(cfg), "cost")

	fmt.Fprintf(w, "\nX-MANN distributed memory: similarity top-1 agreement / soft-read rel-L2 error\n")
	printPoints(w, faults.XMannSweep(cfg), "cost")

	fmt.Fprintf(w, "\nTCAM few-shot (5-way 1-shot): stuck-cell rate x spatial redundancy\n")
	fmt.Fprintf(w, "%-8s %-14s %-10s %s\n", "rate", "strategy", "accuracy", "searches/query")
	for _, p := range faults.TCAMSweep(cfg) {
		fmt.Fprintf(w, "%-8.2f %-14s %-10.4f %.1f\n", p.Rate, p.Strategy, p.Accuracy, p.AvgReads)
	}
	return nil
}
