package core

import (
	"fmt"
	"io"

	"repro/internal/cam"
	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/mann"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/rngutil"
	"repro/internal/xmann"
)

func init() {
	register(Experiment{
		ID:    "T1",
		Title: "X-MANN vs GPU on the MANN benchmark suite (§III-B)",
		PaperClaim: "23.7x-45.7x speedup and 75.1x-267.1x energy reduction over a " +
			"state-of-the-art GPU across benchmarks with diverse memory capacities",
		Run: runT1,
	})
	register(Experiment{
		ID:    "C4",
		Title: "Few-shot retrieval accuracy: fp32 cosine vs 4-bit fixed-point metrics (§IV-B.1)",
		PaperClaim: "combined Linf+L2 at 4-bit with 512 memory entries reaches 96.00% on " +
			"Omniglot 5-way 1-shot vs 99.06% for fp32 cosine; a few TCAM lookups replace M*D multiplies",
		Run: runC4,
	})
	register(Experiment{
		ID:    "F5",
		Title: "Cosine vs LSH-Hamming retrieval across few-shot settings (Fig. 5 inset)",
		PaperClaim: "LSH-based TCAM retrieval approaches (sometimes matches) cosine accuracy; " +
			"the gap grows for harder settings; plane count is tuned until accuracy saturates",
		Run: runF5,
	})
	register(Experiment{
		ID:         "C5",
		Title:      "Memory-search energy/latency: 16T CMOS TCAM vs GPU+DRAM (§IV-B.2)",
		PaperClaim: "24x energy and 2582x latency reduction for the memory search operation",
		Run:        runC5,
	})
	register(Experiment{
		ID:    "C6",
		Title: "2-FeFET TCAM vs 16T CMOS TCAM (§IV-C)",
		PaperClaim: "a further 1.1x latency and 2.4x energy reduction, with an 8x smaller cell " +
			"enabling larger MANN memories",
		Run: runC6,
	})
}

func runT1(w io.Writer, seed uint64, quick bool) error {
	_ = seed
	suite := xmann.Suite()
	if quick {
		suite = suite[:3]
	}
	fmt.Fprintf(w, "%-16s %10s %12s %12s %10s %10s\n",
		"benchmark", "memory", "GPU time", "X-MANN time", "speedup", "energy x")
	for _, c := range xmann.Compare(suite, xmann.DefaultParams(), perfmodel.DefaultGPU()) {
		fmt.Fprintf(w, "%-16s %8.1fMB %10.3gs %10.3gs %9.1fx %9.1fx\n",
			c.Workload.Name, float64(c.Workload.MemoryBytes())/1e6,
			c.GPU.Latency, c.XMANN.Latency, c.Speedup, c.EnergyRatio)
	}
	return nil
}

// fewshotEval builds the evaluation setup shared by C4 and F5.
func fewshotEval(seed uint64, quick bool) (*dataset.FewShotUniverse, mann.EvalConfig) {
	u := dataset.NewFewShotUniverse(dataset.DefaultFewShot(), rngutil.New(seed))
	cfg := mann.EvalConfig{
		NWay: 5, KShot: 1, NQuery: 3, Episodes: 100, MemoryEntries: 512, Seed: seed + 1,
	}
	if quick {
		cfg.Episodes = 15
		cfg.MemoryEntries = 128
	}
	return u, cfg
}

func runC4(w io.Writer, seed uint64, quick bool) error {
	u, cfg := fewshotEval(seed, quick)
	fmt.Fprintf(w, "5-way 1-shot, %d-entry memory, %d episodes\n\n", cfg.MemoryEntries, cfg.Episodes)
	fmt.Fprintf(w, "%-24s %s\n", "retrieval scheme", "accuracy")

	retrievers := []mann.Retriever{
		&mann.ExactRetriever{Metric: mann.Cosine},
		&mann.QuantizedRetriever{Metric: mann.L2, Q: quant.New(4, 0.4)},
		&mann.QuantizedRetriever{Metric: mann.L1, Q: quant.New(4, 0.4)},
		&mann.QuantizedRetriever{Metric: mann.Linf, Q: quant.New(4, 0.4)},
		&mann.QuantizedRetriever{Metric: mann.LinfL2, Q: quant.New(4, 0.4)},
		&mann.QuantizedRetriever{Metric: mann.LinfL2, Q: quant.New(2, 0.4)},
		&mann.QuantizedRetriever{Metric: mann.LinfL2, Q: quant.New(8, 0.4)},
	}
	for _, r := range retrievers {
		fmt.Fprintf(w, "%-24s %.4f\n", r.Name(), mann.EvaluateFewShot(u, r, cfg))
	}

	cube := mann.NewCubeRetriever(quant.New(4, 0.4), u.Cfg.Dim)
	acc := mann.EvaluateFewShot(u, cube, cfg)
	queriesLastEpisode := float64(cfg.NWay * cfg.NQuery)
	fmt.Fprintf(w, "%-24s %.4f  (%.1f TCAM lookups/query vs %d multiplies for cosine)\n",
		cube.Name(), acc, float64(cube.Searches())/queriesLastEpisode,
		cfg.MemoryEntries*u.Cfg.Dim)
	return nil
}

func runF5(w io.Writer, seed uint64, quick bool) error {
	u, cfg := fewshotEval(seed, quick)
	settings := []struct{ nway, kshot int }{{5, 1}, {5, 5}, {20, 1}, {20, 5}}
	fmt.Fprintf(w, "%-10s %-12s %-12s %s\n", "setting", "cosine", "lsh-512", "gap")
	for _, s := range settings {
		c := cfg
		c.NWay, c.KShot = s.nway, s.kshot
		cos := mann.EvaluateFewShot(u, &mann.ExactRetriever{Metric: mann.Cosine}, c)
		lshAcc := mann.EvaluateFewShot(u, mann.NewLSHRetriever(u.Cfg.Dim, 512, rngutil.New(seed+3)), c)
		fmt.Fprintf(w, "%dw%ds%-6s %-12.4f %-12.4f %+.4f\n", s.nway, s.kshot, "", cos, lshAcc, cos-lshAcc)
	}

	// Plane-count tuning curve (the paper: tuned until accuracy saturates).
	fmt.Fprintf(w, "\nLSH plane-count tuning (5-way 1-shot):\n")
	planes := []int{16, 32, 64, 128, 256, 512, 1024}
	if quick {
		planes = []int{32, 128, 512}
	}
	for _, p := range planes {
		acc := mann.EvaluateFewShot(u, mann.NewLSHRetriever(u.Cfg.Dim, p, rngutil.New(seed+3)), cfg)
		fmt.Fprintf(w, "  %4d planes: %.4f\n", p, acc)
	}
	return nil
}

func runC5(w io.Writer, seed uint64, quick bool) error {
	_ = seed
	engine := cam.Engine{Tech: cam.CMOS16T(), Geo: cam.DefaultGeometry()}
	gpu := perfmodel.DefaultGPU()
	sizes := []int{512, 2048, 8192, 65536}
	if quick {
		sizes = []int{512, 8192}
	}
	const d = 128
	fmt.Fprintf(w, "%-8s %14s %14s %12s %12s\n", "entries", "GPU search", "TCAM search", "latency x", "energy x")
	for _, m := range sizes {
		base := cam.GPUSearchBaseline(m, d, gpu)
		tc := engine.SearchCost(m, d)
		fmt.Fprintf(w, "%-8d %11.3gs %12.3gs %11.0fx %11.1fx\n",
			m, base.Latency, tc.Latency, tc.Speedup(base), tc.EnergyRatio(base))
	}
	fmt.Fprintf(w, "\n(LSH signature cost equals the dense layer it replaces: %d MACs)\n",
		lsh.NewHasher(64, 128, rngutil.New(1)).MACsPerSignature())
	return nil
}

func runC6(w io.Writer, seed uint64, quick bool) error {
	_, _ = seed, quick
	geo := cam.DefaultGeometry()
	cm := cam.Engine{Tech: cam.CMOS16T(), Geo: geo}
	fe := cam.Engine{Tech: cam.FeFET2T(), Geo: geo}
	const m, d = 512, 128
	cc := cm.SearchCost(m, d)
	fc := fe.SearchCost(m, d)
	fmt.Fprintf(w, "%-12s %12s %12s %14s\n", "cell", "latency", "energy", "transistors")
	fmt.Fprintf(w, "%-12s %10.3gs %10.3gJ %14d\n", cm.Tech.Name, cc.Latency, cc.Energy, cm.Transistors(m, d))
	fmt.Fprintf(w, "%-12s %10.3gs %10.3gJ %14d\n", fe.Tech.Name, fc.Latency, fc.Energy, fe.Transistors(m, d))
	fmt.Fprintf(w, "gain: %.2fx latency, %.2fx energy, %.0fx fewer transistors\n",
		cc.Latency/fc.Latency, cc.Energy/fc.Energy,
		float64(cm.Transistors(m, d))/float64(fe.Transistors(m, d)))
	fmt.Fprintf(w, "same transistor budget holds %.0fx more memory entries (larger MANN memories, §IV-C)\n",
		float64(cm.Tech.TransistorsPerCell)/float64(fe.Tech.TransistorsPerCell))

	// Why capacity matters: lifelong-learning accuracy vs memory entries
	// (age-based eviction forgets early classes once the stream outgrows
	// the memory).
	u := dataset.NewFewShotUniverse(dataset.DefaultFewShot(), rngutil.New(seed))
	nClasses, perClass, queries := 120, 2, 300
	if quick {
		nClasses, queries = 40, 100
	}
	fmt.Fprintf(w, "\nlifelong retrieval accuracy vs memory capacity (%d-class stream):\n", nClasses)
	for _, capacity := range []int{16, 32, 64, 128, 256} {
		acc := mann.LifelongAccuracy(u, capacity, nClasses, perClass, queries, seed+7)
		fmt.Fprintf(w, "  %4d entries: %.3f\n", capacity, acc)
	}
	return nil
}
