package core

import (
	"fmt"
	"io"

	"repro/internal/analog"
	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/rngutil"
)

func init() {
	register(Experiment{
		ID:    "C0",
		Title: "Reduced-precision digital training and inference (§II intro)",
		PaperClaim: "8-bit training proceeds without accuracy degradation (ref. [11]); " +
			"2-bit integer weights and activations retain state-of-the-art inference accuracy " +
			"with clipping-calibrated quantizers (ref. [13])",
		Run: runC0,
	})
	register(Experiment{
		ID:    "C7",
		Title: "Crossbar inference efficiency vs device resistance (§II-B.1)",
		PaperClaim: "raising PCM device resistance toward 100 MOhm pushes projected " +
			"efficiency to 172-250 TOP/s/W for 14nm-class accelerators",
		Run: runC7,
	})
}

func runC0(w io.Writer, seed uint64, quick bool) error {
	cfg := expConfig(seed, quick)
	trainOne := func(factory nn.MatFactory) float64 {
		return analog.RunDigits(factory, cfg).TestAccuracy
	}

	fp32 := trainOne(nn.DenseFactory(rngutil.New(seed).Child("weights")))
	fmt.Fprintf(w, "%-44s %s\n", "configuration", "test accuracy")
	fmt.Fprintf(w, "%-44s %.3f\n", "fp32", fp32)

	// Low-precision *training*: weights stored on a 2^bits grid, updates
	// applied with stochastic rounding.
	for _, bits := range []int{8, 6, 4} {
		acc := trainOne(quant.SRFactory(bits, 1, rngutil.New(seed)))
		fmt.Fprintf(w, "%-44s %.3f\n", fmt.Sprintf("%d-bit weight storage + stochastic rounding", bits), acc)
	}

	// Quantization-aware training for low-precision *inference*: fp32
	// master weights, fake-quantized weights and activations.
	for _, bits := range []int{4, 2} {
		acc := trainOne(quant.QATFactory(bits, 1, bits, 2, rngutil.New(seed)))
		fmt.Fprintf(w, "%-44s %.3f\n", fmt.Sprintf("QAT: %d-bit weights + %d-bit activations", bits, bits), acc)
	}
	fmt.Fprintln(w, "\n(QAT uses the straight-through estimator with PACT-style fixed clipping scales)")
	return nil
}

func runC7(w io.Writer, seed uint64, quick bool) error {
	_, _ = seed, quick
	m := crossbar.DefaultInferenceEnergy()
	fmt.Fprintf(w, "256x256 analog tile, %.1fV / %.0fns reads:\n\n", m.ReadVoltage, m.PulseWidth*1e9)
	fmt.Fprintf(w, "%-16s %16s %14s\n", "resistance", "energy/MVM", "TOP/s/W")
	for _, r := range []float64{1e4, 1e5, 1e6, 1e7, 1e8} {
		fmt.Fprintf(w, "%13.0e Ohm %14.3g J %12.1f\n",
			r, m.MVMEnergy(256, 256, r), m.TOPSPerWatt(256, 256, r))
	}
	fmt.Fprintln(w, "\n(array read power scales as V^2/R; beyond ~10 MOhm the converters dominate and")
	fmt.Fprintln(w, " efficiency saturates in the paper's projected 172-250 TOP/s/W band)")
	return nil
}
