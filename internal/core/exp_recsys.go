package core

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/perfmodel"
	"repro/internal/recsys"
	"repro/internal/rngutil"
)

func init() {
	register(Experiment{
		ID:    "T2",
		Title: "Recommendation-model characterization (§V, Fig. 6)",
		PaperClaim: "embedding ops have orders-of-magnitude lower compute intensity than MLP ops; " +
			"models range from compute-dominated to memory-bound; capacities run 100s of MB to 10s of GB",
		Run: runT2,
	})
}

func runT2(w io.Writer, seed uint64, quick bool) error {
	r := perfmodel.Roofline{PeakFLOPS: 10e12, MemBW: 600e9}
	batch := 128

	configs := []recsys.Config{recsys.RMCSmall(), recsys.RMCEmbed(), recsys.RMCMLP()}
	fmt.Fprintf(w, "per-operator profile (batch %d):\n", batch)
	fmt.Fprintf(w, "%-14s %-12s %14s %14s %12s %10s\n",
		"config", "operator", "FLOPs", "bytes", "intensity", "bound")
	for _, cfg := range configs {
		for _, op := range recsys.Profile(cfg, batch, r) {
			fmt.Fprintf(w, "%-14s %-12s %14.3g %14.3g %12.3g %10s\n",
				cfg.Name, op.Name, op.FLOPs, op.Bytes, op.Intensity, op.Bound)
		}
	}

	fmt.Fprintf(w, "\ndominant operator and roofline time per inference batch:\n")
	for _, cfg := range configs {
		fmt.Fprintf(w, "  %-14s dominant=%-12s time=%.3gs\n",
			cfg.Name, recsys.DominantOp(cfg, batch, r), recsys.InferenceTime(cfg, batch, r))
	}

	fmt.Fprintf(w, "\nmodel capacity (analytic):\n")
	for _, cfg := range append(configs, recsys.ProductionScale()) {
		fmt.Fprintf(w, "  %-14s %10.1f MB\n", cfg.Name, float64(recsys.CapacityBytes(cfg))/1e6)
	}

	// Embedding-locality study: hit rate vs cache size and Zipf skew.
	accesses := 40000
	if quick {
		accesses = 8000
	}
	fmt.Fprintf(w, "\nembedding cache hit rate (1M-row table, 64-dim rows):\n")
	fmt.Fprintf(w, "%-12s", "cache")
	skews := []float64{1.05, 1.2, 1.5, 2.0}
	for _, s := range skews {
		fmt.Fprintf(w, " zipf=%-6.2f", s)
	}
	fmt.Fprintln(w)
	for _, cacheKB := range []int{16, 64, 256, 1024} {
		fmt.Fprintf(w, "%8d KB ", cacheKB)
		for _, s := range skews {
			hr := recsys.EmbeddingCacheStudy(1_000_000, 64, cacheKB<<10, s, accesses, seed)
			fmt.Fprintf(w, "   %6.3f  ", hr)
		}
		fmt.Fprintln(w)
	}

	// Near-memory processing for embedding gathers (ref. [66]): pooling at
	// the DIMM rank shrinks channel traffic by the multi-hot factor.
	nmp := recsys.DefaultNMP()
	fmt.Fprintf(w, "\nnear-memory embedding gathers (%d ranks):\n", nmp.Ranks)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "lookups/table", "latency gain", "energy gain")
	for _, lk := range []int{4, 16, 64} {
		lat, en := nmp.NMPSpeedup(recsys.GatherWork{Tables: 8, LookupsPer: lk, EmbDim: 64, Batch: 16})
		fmt.Fprintf(w, "%-12d %11.1fx %11.1fx\n", lk, lat, en)
	}

	// Functional check: the model actually learns CTR signal.
	n := 1500
	if quick {
		n = 600
	}
	rng := rngutil.New(seed)
	model := recsys.NewModel(recsys.RMCSmall(), rng.Child("model"))
	log := dataset.NewClickLog(dataset.DefaultClickLog(), n, rng.Child("log"))
	split := n * 4 / 5
	train, test := log.Samples[:split], log.Samples[split:]
	before := model.LogLoss(test)
	for epoch := 0; epoch < 3; epoch++ {
		for _, s := range train {
			model.TrainStep(s, 0.03)
		}
	}
	fmt.Fprintf(w, "\nCTR training (rm-small, %d samples): held-out logloss %.3f -> %.3f, accuracy %.3f\n",
		n, before, model.LogLoss(test), model.Accuracy(test))
	return nil
}
