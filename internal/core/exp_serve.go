package core

import (
	"fmt"
	"io"

	"repro/internal/serve"
)

func init() {
	register(Experiment{
		ID:    "R2",
		Title: "Self-healing inference service: goodput and accuracy under live fault injection (§II-B, §IV-B.2)",
		PaperClaim: "device non-idealities accumulate during deployment, not just at programming time; " +
			"a serving layer with retry, hedging, and online recalibration sustains goodput and " +
			"accuracy where an unprotected service degrades",
		Run: runR2,
	})
}

func runR2(w io.Writer, seed uint64, quick bool) error {
	cfg := serve.DefaultCampaignConfig(seed, quick)
	fmt.Fprintf(w, "open-loop Poisson load: %.0f req/s for %.1fs virtual, %d replicas, deadline %.1fms\n",
		cfg.Rate, cfg.Duration, cfg.Replicas, cfg.Policies[0].Deadline*1e3)
	fmt.Fprintf(w, "policies: none (no remediation), retry (verify reads + backoff), self-heal (full stack)\n\n")
	fmt.Fprint(w, serve.FormatTable("analog digits MLP (PCM devices)", serve.MLPCampaign(cfg)))
	fmt.Fprintln(w)
	fmt.Fprint(w, serve.FormatTable("X-MANN distributed memory", serve.XMannCampaign(cfg)))
	return nil
}
