package core

import (
	"io"

	"repro/internal/obs"
	"repro/internal/serve"
)

func init() {
	register(Experiment{
		ID:    "R2",
		Title: "Self-healing inference service: goodput and accuracy under live fault injection (§II-B, §IV-B.2)",
		PaperClaim: "device non-idealities accumulate during deployment, not just at programming time; " +
			"a serving layer with retry, hedging, and online recalibration sustains goodput and " +
			"accuracy where an unprotected service degrades",
		Run: runR2,
	})
}

func runR2(w io.Writer, seed uint64, quick bool) error {
	cfg := serve.DefaultCampaignConfig(seed, quick)
	cfg.Obs = obs.Default()
	cfg.Tracer = obs.DefaultTracer()
	return serve.RunR2(w, cfg)
}
