package crossbar

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// UpdateMode selects how the rank-1 update is realized on the array.
type UpdateMode int

const (
	// UpdateStochastic applies the fully parallel stochastic pulse scheme of
	// Fig. 1 (right): independent Bernoulli pulse trains on rows and
	// columns; each coincidence steps the crosspoint once.
	UpdateStochastic UpdateMode = iota
	// UpdateExpected applies the expected number of pulses per device
	// directly (rounded stochastically). It preserves device nonlinearity
	// and bounds while avoiding per-slot train generation; the ablation
	// bench compares the two.
	UpdateExpected
)

// Config holds the peripheral-circuit and array-level parameters.
type Config struct {
	// BL is the pulse-train length for stochastic updates (≤ 64).
	BL int
	// Update selects the update realization.
	Update UpdateMode
	// ReadNoise is the std of additive output noise per MVM component,
	// in weight·input units (0 = noiseless periphery).
	ReadNoise float64
	// ADCBits quantizes MVM outputs to this many bits over
	// [-OutputRange, +OutputRange]; 0 disables output quantization.
	ADCBits int
	// OutputRange is the ADC full-scale (bound management); outputs clip.
	OutputRange float64
	// DACBits quantizes inputs over [-InputRange, +InputRange]; 0 disables.
	DACBits int
	// InputRange is the DAC full-scale; inputs clip.
	InputRange float64
	// StuckFraction is the probability that a crosspoint is non-yielding
	// and frozen (§II-B.2 imperfect yield).
	StuckFraction float64
	// StuckValueStd freezes faulty devices at a random weight drawn from
	// N(0, StuckValueStd) — the "corrupt device" model — instead of at
	// their pristine initial state (0 keeps the stuck-at-initial model).
	StuckValueStd float64
	// IRDrop is a first-order interconnect attenuation coefficient: outputs
	// are scaled by 1 − IRDrop·cols/256, the voltage-drop penalty that
	// grows with array width for low-resistance devices (§II-A).
	IRDrop float64
	// ReferenceUpdate forces the generic per-crosspoint update path (device
	// interface dispatch for every coincidence) even when a specialized
	// kernel exists for the array's device model. The two paths are
	// bit-identical — the reference exists as the scalar twin the benchmark
	// gate measures the engine against, exactly as tensor.Matrix.MatVec is
	// the scalar twin of the tiled forward kernel.
	ReferenceUpdate bool
}

// DefaultConfig returns sensible periphery defaults: 31-slot trains,
// stochastic updates, ideal converters, no faults.
func DefaultConfig() Config {
	return Config{BL: 31, Update: UpdateStochastic, OutputRange: 10, InputRange: 1}
}

// OpCounts tallies array-level operations; each Forward/Backward/Update is
// one constant-time array operation regardless of size (the O(1) claim of
// §II-A), while DigitalMACs counts what the same work costs digitally.
type OpCounts struct {
	Forwards, Backwards, Updates int64
	Pulses                       int64 // total device pulse events
	DigitalMACs                  int64 // rows·cols per equivalent digital op
}

// Array is a crossbar of devices implementing the nn.Mat contract: forward
// MVM along rows, backward (transposed) MVM along columns, and the parallel
// rank-1 pulse update.
//
// Concurrency contract: an Array is single-writer. Every operation — reads
// included, since Forward/Backward consume the array's random stream and
// advance op counters and hook state — must be serialized by the caller
// (the tile has one set of peripheral drivers; two simultaneous operations
// have no physical meaning). A background reprogrammer therefore may not
// race a serving read: hand ownership off explicitly, e.g. with the
// per-replica mutex of internal/serve.Replica. The guard below turns a
// violated contract into an immediate panic instead of a silent data race.
type Array struct {
	rows, cols int
	cfg        Config
	model      Model
	dev        []Device // row-major
	stuck      []bool
	stuckCount int            // number of true entries in stuck, maintained on every transition
	w          *tensor.Matrix // mirror of device weights for fast MVM
	rng        *rngutil.Source
	hook       FaultHook // optional run-time fault injector (see hooks.go)
	busy       atomic.Int32
	Counts     OpCounts

	// lin aliases dev as concrete noiseless linear-step devices when the
	// model supports the specialized update kernel (nil otherwise). The
	// devices themselves are shared — the slice only skips the interface
	// dispatch on the update hot path.
	lin []*linearStepDevice
	// linScale is the flat copy of each linear device's step-size scale and
	// linP the shared step parameters: the specialized kernel reads these
	// (and the weight mirror) instead of chasing pointers into 64-byte
	// device objects, which is where the generic path spends most of its
	// time on large arrays. When every device carries the same scale
	// (DeviceVar 0, or a checkpoint that restored uniform scales) linUniform
	// is set and the kernel drops the per-device scale load entirely,
	// folding dwMin·scale into the per-column step table.
	linScale   []float64
	linP       LinearStepParams
	linUniform bool
	// linDirty marks that the specialized kernel has advanced the weight
	// mirror without writing per-device state back; syncLin settles the
	// debt before any path reads or pulses devices directly. For non-stuck
	// linear devices the mirror is exactly the device weight, so the
	// deferred write-back is lossless.
	linDirty bool
	// arena holds the reusable per-update buffers (pulse trains, per-tile
	// pulse counts, per-tile RNG substreams), sized on first use. It is
	// scratch state, deliberately outside ArrayState: every update derives
	// the tile streams fresh from (rng seed, update counter, tile), so a
	// checkpoint-restored array reproduces them exactly.
	arena updateArena
}

// updateArena is the reusable scratch space of the update hot path — the
// allocations that used to be made per update (13–16 allocs/op in the PR 4
// baseline) now happen once per array.
type updateArena struct {
	rowTrains []uint64
	colTrains []uint64
	pulses    []int64
	tileSrc   []*rngutil.Source
	// colMulUp/colMulDown are the per-column signed step multipliers of the
	// specialized linear kernel, indexed by the row's drive direction:
	// colMulUp[j] applies on rows driving up, colMulDown[j] on rows driving
	// down. Precomputing them turns the per-hit sign logic into one multiply.
	colMulUp   []float64
	colMulDown []float64
	// colSlots is the slot-major column index: for each train slot s, the
	// columns whose train has slot s set occupy
	// colSlotBuf[colSlotOff[s]:colSlotOff[s+1]]. The specialized kernel walks
	// it so its work is proportional to actual pulse coincidences instead of
	// rows×cols popcount probes.
	colSlotOff []int32
	colSlotBuf []int32
	// Fused multi-sample (UpdateBatch) scratch: the per-sample tables above,
	// replicated K times so one tile pass can apply all K rank-1 updates.
	// Sized by ensureBatchArena on first batched use; bK is the sample
	// capacity.
	bK          int
	bRowTrains  []uint64  // K×rows, sample-major
	bColMulUp   []float64 // K×cols
	bColMulDown []float64 // K×cols
	bSlotOff    []int32   // K×(BL+1)
	bSlotBuf    []int32   // K×(BL·cols)
}

// ensureArena sizes the update scratch buffers on first use, and resizes
// the per-tile ones if the active par.Plan has changed the tile grid since
// (a plan is normally fixed for the life of the process, but the arena is
// scratch — it must simply follow the grid the kernels run on).
func (a *Array) ensureArena() {
	tiles := par.Tiles(a.rows)
	if a.arena.rowTrains != nil && len(a.arena.pulses) >= tiles {
		return
	}
	a.arena.rowTrains = make([]uint64, a.rows)
	a.arena.colTrains = make([]uint64, a.cols)
	a.arena.pulses = make([]int64, tiles)
	a.arena.tileSrc = make([]*rngutil.Source, tiles)
	if a.lin != nil {
		a.arena.colMulUp = make([]float64, a.cols)
		a.arena.colMulDown = make([]float64, a.cols)
		a.arena.colSlotOff = make([]int32, a.cfg.BL+1)
		a.arena.colSlotBuf = make([]int32, a.cfg.BL*a.cols)
	}
}

// ensureBatchArena sizes the fused multi-sample update scratch for k
// samples (growing it if a larger batch arrives; never shrinking).
func (a *Array) ensureBatchArena(k int) {
	if a.arena.bK >= k {
		return
	}
	a.arena.bK = k
	a.arena.bRowTrains = make([]uint64, k*a.rows)
	a.arena.bColMulUp = make([]float64, k*a.cols)
	a.arena.bColMulDown = make([]float64, k*a.cols)
	a.arena.bSlotOff = make([]int32, k*(a.cfg.BL+1))
	a.arena.bSlotBuf = make([]int32, k*a.cfg.BL*a.cols)
}

// NewArray builds a rows×cols crossbar of fresh devices from model.
func NewArray(rows, cols int, model Model, cfg Config, rng *rngutil.Source) *Array {
	if cfg.BL <= 0 || cfg.BL > 64 {
		panic(fmt.Sprintf("crossbar: BL must be in [1,64], got %d", cfg.BL))
	}
	a := &Array{
		rows: rows, cols: cols, cfg: cfg, model: model,
		dev:   make([]Device, rows*cols),
		stuck: make([]bool, rows*cols),
		w:     tensor.NewMatrix(rows, cols),
		rng:   rng.Child("array"),
	}
	devRng := rng.Child("devices")
	faultRng := rng.Child("faults")
	// Stuck values draw from a separate stream so that the set of stuck
	// devices is *nested* across fault rates for a fixed seed (device i is
	// stuck iff its private uniform draw < StuckFraction): raising the rate
	// only ever adds faults, which keeps degradation sweeps monotone by
	// construction.
	valueRng := rng.Child("stuck-values")
	lo, hi := model.WeightBounds()
	for i := range a.dev {
		a.dev[i] = model.New(devRng)
		a.stuck[i] = faultRng.Bernoulli(cfg.StuckFraction)
		if a.stuck[i] {
			a.stuckCount++
		}
		a.w.Data[i] = a.dev[i].Weight()
		if a.stuck[i] && cfg.StuckValueStd > 0 {
			v := valueRng.Normal(0, cfg.StuckValueStd)
			if v < lo {
				v = lo
			} else if v > hi {
				v = hi
			}
			a.w.Data[i] = v // frozen at the corrupt value
		}
	}
	if lm, ok := model.(*LinearStepModel); ok && lm.P.CycleNoise == 0 {
		// Noiseless linear-step devices take the specialized update kernel:
		// their pulse response involves no random draws, so the coincidence
		// pass can apply it inline without interface dispatch.
		a.lin = make([]*linearStepDevice, len(a.dev))
		a.linScale = make([]float64, len(a.dev))
		a.linP = lm.P
		for i, d := range a.dev {
			a.lin[i] = d.(*linearStepDevice)
			a.linScale[i] = a.lin[i].scale
		}
		a.refreshLinUniform()
	}
	return a
}

// refreshLinUniform recomputes whether every linear device shares one step
// scale (checked by value, so it also holds after checkpoint restore).
func (a *Array) refreshLinUniform() {
	a.linUniform = true
	for _, s := range a.linScale {
		if s != a.linScale[0] {
			a.linUniform = false
			return
		}
	}
}

// syncLin writes the mirror weights of a specialized-kernel array back into
// the per-device state. The fast update kernel advances only the mirror
// (a.w.Data is exactly d.w for every non-stuck linear device); every path
// that reads or pulses devices directly calls syncLin first, so device
// state is always settled before it is observed. Stuck devices are skipped:
// their mirror entry may hold a frozen corrupt value that is deliberately
// distinct from the pristine device state.
func (a *Array) syncLin() {
	if !a.linDirty {
		return
	}
	for idx, d := range a.lin {
		if !a.stuck[idx] {
			d.w = a.w.Data[idx]
		}
	}
	a.linDirty = false
}

// acquire claims the array periphery for one externally driven operation,
// panicking if another goroutine is already inside — the fail-fast
// enforcement of the single-writer contract (see the Array doc comment).
// Hook callbacks that reenter the array mid-operation (AdvanceTime, Freeze,
// FreezeAt) are intentionally unguarded: they run inside an acquired op.
func (a *Array) acquire() {
	if !a.busy.CompareAndSwap(0, 1) {
		panic("crossbar: concurrent Array access — the array is single-writer; serialize callers (see internal/serve.Replica)")
	}
}

func (a *Array) release() { a.busy.Store(0) }

// Rows implements nn.Mat.
func (a *Array) Rows() int { return a.rows }

// Cols implements nn.Mat.
func (a *Array) Cols() int { return a.cols }

// Model returns the device model backing the array.
func (a *Array) Model() Model { return a.model }

// OpOrderPinned implements nn.OrderPinned: while a fault hook is attached,
// batched callers must replay the exact per-sample op order of the
// sequential path, because hook state is order-sensitive and typically
// shared across the arrays of one network.
func (a *Array) OpOrderPinned() bool { return a.hook != nil }

// Weights returns a snapshot of the current (noiseless) device weights.
func (a *Array) Weights() *tensor.Matrix { return a.w.Clone() }

// quantize maps x onto the 2^bits-level uniform grid spanning
// [-fullScale, fullScale] (endpoints included), clipping out-of-range inputs.
func quantize(x float64, bits int, fullScale float64) float64 {
	if bits <= 0 {
		return x
	}
	n := int64(1) << uint(bits) // number of levels
	step := 2 * fullScale / float64(n-1)
	k := int64(math.Round((x + fullScale) / step))
	if k < 0 {
		k = 0
	} else if k > n-1 {
		k = n - 1
	}
	return -fullScale + float64(k)*step
}

func (a *Array) irFactor() float64 {
	f := 1 - a.cfg.IRDrop*float64(a.cols)/256
	if f < 0 {
		return 0
	}
	return f
}

// Forward implements nn.Mat: one analog MVM y = W·x with DAC quantization,
// read noise, IR-drop attenuation, and ADC quantization. The MVM executes
// as row tiles across the par worker pool — all tiles of a crossbar compute
// in parallel in hardware (§II-A), and the software mirrors that — while
// the periphery (DAC, hook callbacks, read noise from the array's private
// stream, ADC) stays on the calling goroutine, so results are bit-identical
// at every worker count.
func (a *Array) Forward(x tensor.Vector) tensor.Vector {
	a.acquire()
	defer a.release()
	return a.forwardLocked(x)
}

// forwardLocked is the Forward body, callable while the periphery is
// already owned (batched reads issue many of these under one acquire).
func (a *Array) forwardLocked(x tensor.Vector) tensor.Vector {
	if len(x) != a.cols {
		panic(fmt.Sprintf("crossbar: Forward expects %d inputs, got %d", a.cols, len(x)))
	}
	if a.hook != nil {
		a.hook.BeginOp(a, OpForward)
	}
	xin := x
	if a.cfg.DACBits > 0 || a.hook != nil {
		xin = make(tensor.Vector, len(x))
		for j, v := range x {
			xin[j] = quantize(v, a.cfg.DACBits, a.cfg.InputRange)
		}
	}
	if a.hook != nil {
		a.hook.FilterInput(a, OpForward, xin)
	}
	y := par.MatVec(a.w, xin)
	a.finishRead(y)
	if a.hook != nil {
		a.hook.FilterOutput(a, OpForward, y)
	}
	a.Counts.Forwards++
	a.Counts.DigitalMACs += int64(a.rows) * int64(a.cols)
	return y
}

// ForwardBatch runs one analog MVM per input under a single periphery
// acquisition — the batched read used by serving pipelines and evaluation
// loops. Results are bit-identical to calling Forward on each input in
// order: the MVMs of the whole batch execute as one sample-blocked
// (row-tile × sample-block) grid (par.MatVecBatchInto, which amortizes each
// weight-row load over BatchSpan samples), then the periphery randomness
// (read noise) is drawn serially per sample in index order, exactly the
// sequence the one-by-one path draws. With a fault hook installed the batch
// degrades to sequential forwards so the hook observes the same well-formed
// op stream either way.
func (a *Array) ForwardBatch(xs []tensor.Vector) []tensor.Vector {
	a.acquire()
	defer a.release()
	ys := make([]tensor.Vector, len(xs))
	if a.hook != nil {
		for s, x := range xs {
			ys[s] = a.forwardLocked(x)
		}
		return ys
	}
	for s, x := range xs {
		if len(x) != a.cols {
			panic(fmt.Sprintf("crossbar: ForwardBatch expects %d inputs, got %d (sample %d)", a.cols, len(x), s))
		}
		ys[s] = make(tensor.Vector, a.rows)
	}
	xin := xs
	if a.cfg.DACBits > 0 {
		xin = make([]tensor.Vector, len(xs))
		for s, x := range xs {
			q := make(tensor.Vector, len(x))
			for j, v := range x {
				q[j] = quantize(v, a.cfg.DACBits, a.cfg.InputRange)
			}
			xin[s] = q
		}
	}
	par.MatVecBatchInto(a.w, xin, ys)
	for _, y := range ys {
		a.finishRead(y)
		a.Counts.Forwards++
		a.Counts.DigitalMACs += int64(a.rows) * int64(a.cols)
	}
	return ys
}

// Backward implements nn.Mat: the transposed MVM yᵀ = Wᵀ·d obtained by
// swapping the roles of rows and columns at the periphery.
func (a *Array) Backward(d tensor.Vector) tensor.Vector {
	a.acquire()
	defer a.release()
	if len(d) != a.rows {
		panic(fmt.Sprintf("crossbar: Backward expects %d inputs, got %d", a.rows, len(d)))
	}
	if a.hook != nil {
		a.hook.BeginOp(a, OpBackward)
	}
	din := d
	if a.cfg.DACBits > 0 || a.hook != nil {
		din = make(tensor.Vector, len(d))
		for i, v := range d {
			din[i] = quantize(v, a.cfg.DACBits, a.cfg.InputRange)
		}
	}
	if a.hook != nil {
		a.hook.FilterInput(a, OpBackward, din)
	}
	y := par.MatVecT(a.w, din)
	a.finishRead(y)
	if a.hook != nil {
		a.hook.FilterOutput(a, OpBackward, y)
	}
	a.Counts.Backwards++
	a.Counts.DigitalMACs += int64(a.rows) * int64(a.cols)
	return y
}

func (a *Array) finishRead(y tensor.Vector) {
	ir := a.irFactor()
	for i := range y {
		y[i] *= ir
		if a.cfg.ReadNoise > 0 {
			y[i] += a.rng.Normal(0, a.cfg.ReadNoise)
		}
		if a.cfg.ADCBits > 0 {
			y[i] = quantize(y[i], a.cfg.ADCBits, a.cfg.OutputRange)
		}
	}
}

// Update implements nn.Mat: W += scale·(u ⊗ v) in expectation, realized with
// device pulses per the configured update mode.
func (a *Array) Update(scale float64, u, v tensor.Vector) {
	a.acquire()
	defer a.release()
	a.updateLocked(scale, u, v)
}

// updateLocked is the Update body, callable while the periphery is already
// owned (the batched update issues several of these under one acquire when
// it cannot fuse).
func (a *Array) updateLocked(scale float64, u, v tensor.Vector) {
	if len(u) != a.rows || len(v) != a.cols {
		panic(fmt.Sprintf("crossbar: Update shape mismatch %dx%d vs %dx%d", a.rows, a.cols, len(u), len(v)))
	}
	if scale == 0 {
		return
	}
	if a.hook != nil {
		a.hook.BeginOp(a, OpUpdate)
	}
	a.Counts.Updates++
	a.Counts.DigitalMACs += int64(a.rows) * int64(a.cols)
	switch a.cfg.Update {
	case UpdateStochastic:
		a.updateStochastic(scale, u, v)
	case UpdateExpected:
		a.updateExpected(scale, u, v)
	default:
		panic("crossbar: unknown update mode")
	}
}

// UpdateBatch applies the K rank-1 updates W += scale·(us[k] ⊗ vs[k]), k
// ascending, under a single periphery acquisition — the batched write used
// when a trainer or serving queue has several samples in hand. For arrays
// of noiseless linear-step devices (the same configuration the specialized
// sequential kernel covers: no fault hook, no ReferenceUpdate, stochastic
// mode) the K updates fuse into ONE tile pass over device state: each row
// of the weight mirror is streamed once for all K samples instead of once
// per sample, which is where a large array's update time goes. The fused
// pass is bit-identical to K sequential Update calls — every crosspoint
// sees its coincident pulses in the same sample-ascending order, the pulse
// trains draw from the array's serial stream in the same sequence, and the
// op counters advance identically. Any other configuration falls back to
// the sequential path under the held periphery, so UpdateBatch is always
// safe to call.
func (a *Array) UpdateBatch(scale float64, us, vs []tensor.Vector) {
	a.acquire()
	defer a.release()
	if len(us) != len(vs) {
		panic(fmt.Sprintf("crossbar: UpdateBatch sample counts %d vs %d", len(us), len(vs)))
	}
	for k := range us {
		if len(us[k]) != a.rows || len(vs[k]) != a.cols {
			panic(fmt.Sprintf("crossbar: UpdateBatch shape mismatch %dx%d vs %dx%d (sample %d)",
				a.rows, a.cols, len(us[k]), len(vs[k]), k))
		}
	}
	if scale == 0 || len(us) == 0 {
		return
	}
	if a.cfg.Update != UpdateStochastic || a.lin == nil || a.hook != nil ||
		a.cfg.ReferenceUpdate || len(us) == 1 {
		for k := range us {
			a.updateLocked(scale, us[k], vs[k])
		}
		return
	}
	a.updateStochasticLinearBatch(scale, us, vs)
}

// reseedTileRNGs repositions the arena's per-tile pulse-noise streams for
// the current update operation. Each stream is keyed by the array's base
// seed, the update counter, and the tile index — never by execution order —
// so a tile draws the identical sequence whether tiles run on one worker or
// eight, and whether the run is fresh or resumed from a checkpoint (the
// counter is part of ArrayState; the streams themselves are re-derived per
// op, so the arena needs no serialization). The streams live in the arena
// and are reseeded in place, so no allocation happens after the first
// update.
func (a *Array) reseedTileRNGs(tiles int) {
	for t := 0; t < tiles; t++ {
		if a.arena.tileSrc[t] == nil {
			a.arena.tileSrc[t] = a.rng.Sub(uint64(a.Counts.Updates), uint64(t))
		} else {
			a.rng.SubInto(a.arena.tileSrc[t], uint64(a.Counts.Updates), uint64(t))
		}
	}
}

// runUpdateTiles executes one tiled update pass over the row tiles of the
// array. Without a fault hook the tiles run on the par worker pool (each
// tile touches a disjoint row range of devices and weight mirror, and
// draws only from its own per-tile keyed stream). With a hook installed the
// tiles run sequentially in tile order on the calling goroutine — the
// hook's per-op ordering guarantee (see FaultHook) must hold, and hooks
// keep private random streams that are not tile-keyed — which by the
// determinism contract produces the identical result. Per-tile pulse
// counts are reduced into Counts.Pulses in fixed tile order. needRNG=false
// skips the per-tile stream reseed for passes that provably draw nothing
// (the noiseless specialized kernel); fn then receives nil streams.
func (a *Array) runUpdateTiles(needRNG bool, fn func(t, lo, hi int, rng *rngutil.Source) int64) {
	tiles := par.Tiles(a.rows)
	a.ensureArena()
	if needRNG {
		a.reseedTileRNGs(tiles)
	}
	pulses := a.arena.pulses
	src := a.arena.tileSrc
	rows := a.rows
	run := par.Run
	if a.hook != nil {
		run = par.RunSeq
	}
	run(tiles, func(t int) {
		lo, hi := par.Bounds(t, rows)
		pulses[t] = fn(t, lo, hi, src[t])
	})
	for _, n := range pulses {
		a.Counts.Pulses += n
	}
}

// updateStochastic implements the Fig. 1 (right) scheme: each row i carries
// a Bernoulli(p_i) pulse train, each column j a Bernoulli(q_j) train, over
// BL slots; a crosspoint steps once per coincident slot. The amplification
// factors are chosen so that E[Δw_ij] = scale·u_i·v_j when probabilities do
// not saturate.
//
// The pulse trains draw from the array's serial stream (O(rows+cols) work)
// into the reusable arena, then the O(rows·cols) coincidence/pulse pass runs
// as row tiles on the worker pool. Arrays of noiseless linear-step devices
// take the specialized kernel (updateStochasticLinear) unless a fault hook
// or Config.ReferenceUpdate forces the generic per-crosspoint path; the two
// are bit-identical.
func (a *Array) updateStochastic(scale float64, u, v tensor.Vector) {
	bl := a.cfg.BL
	dw := a.model.MeanStep()
	c := math.Sqrt(math.Abs(scale) / (float64(bl) * dw))
	a.ensureArena()
	rowTrains := a.arena.rowTrains
	colTrains := a.arena.colTrains
	for i, ui := range u {
		rowTrains[i] = a.train(math.Abs(ui) * c)
	}
	for j, vj := range v {
		colTrains[j] = a.train(math.Abs(vj) * c)
	}
	sgnScale := math.Signbit(scale)
	if a.lin != nil && a.hook == nil && !a.cfg.ReferenceUpdate {
		a.updateStochasticLinear(sgnScale, u, v)
		return
	}
	a.syncLin() // the generic path pulses devices directly
	cols := a.cols
	a.runUpdateTiles(true, func(_, lo, hi int, rng *rngutil.Source) int64 {
		var n int64
		for i := lo; i < hi; i++ {
			rt := rowTrains[i]
			if rt == 0 {
				continue
			}
			upRow := math.Signbit(u[i]) == sgnScale // sign(u_i·scale) > 0
			base := i * cols
			for j := 0; j < cols; j++ {
				k := bits.OnesCount64(rt & colTrains[j])
				if k == 0 {
					continue
				}
				up := upRow == !math.Signbit(v[j]) // XOR with sign(v_j)
				n += a.pulseFrom(rng, base+j, k, up)
			}
		}
		return n
	})
}

// updateStochasticLinear is the specialized coincidence pass for arrays of
// noiseless linear-step devices. It exploits three structural facts: the
// per-pulse step involves no random draw and no state dependence, every
// device shares the model's step parameters (only the per-device scale
// varies), and for non-stuck devices the weight mirror IS the device weight.
// The kernel therefore runs entirely on flat arrays — trains, stuck map,
// scale, mirror — applying the same multiply/add/clip sequence as
// linearStepDevice.Pulse without ever touching a device object, and settles
// the per-device state lazily (syncLin). Because no randomness is consumed,
// the tile streams are not even reseeded (needRNG=false); results are
// bit-identical to the generic path on the same devices.
func (a *Array) updateStochasticLinear(sgnScale bool, u, v tensor.Vector) {
	rowTrains := a.arena.rowTrains
	colTrains := a.arena.colTrains
	cols := a.cols
	stuck := a.stuck
	hasStuck := a.stuckCount > 0
	scale := a.linScale
	wData := a.w.Data
	dwMin := a.linP.DwMin
	wMin, wMax := a.linP.WMin, a.linP.WMax
	// Per-column signed multipliers fold the per-hit direction logic into a
	// single multiply. A potentiating hit applies (dwMin·scale)·(1+a) and a
	// depressing hit subtracts (dwMin·scale)·(1−a); subtraction is carried by
	// the multiplier's sign, which is exact in IEEE arithmetic (x − s and
	// x + (−s) are the same operation, and a sign flip through a multiply is
	// exact), so results stay bit-identical to linearStepDevice.Pulse.
	mulUp := a.arena.colMulUp
	mulDown := a.arena.colMulDown
	up, down := 1+a.linP.Asymmetry, -(1 - a.linP.Asymmetry)
	for j, vj := range v {
		if !math.Signbit(vj) {
			mulUp[j], mulDown[j] = up, down
		} else {
			mulUp[j], mulDown[j] = down, up
		}
	}
	uniform := a.linUniform && len(scale) > 0
	if uniform {
		// One shared scale: fold dwMin·scale into the column tables, so the
		// per-pulse step is a single L1 load. (dwMin·s)·m for the shared s is
		// exactly dwMin·scale[idx]·mul[j] for every device.
		base := dwMin * scale[0]
		for j := range mulUp {
			mulUp[j] *= base
			mulDown[j] *= base
		}
	}
	// Slot-major column index: for each of the BL train slots, the columns
	// whose train fires in that slot. The coincidence pass then walks, per
	// row, only the slots the row fires in and only the columns firing in
	// the same slot — work proportional to actual pulse coincidences, not
	// rows×cols probes. Applying a device's k coincident pulses one slot at
	// a time instead of as one burst is bit-identical: each pulse is the same
	// state-independent add-then-clip, so only the count matters, and slots
	// are visited in ascending order per row either way.
	bl := a.cfg.BL
	off := a.arena.colSlotOff
	buf := a.arena.colSlotBuf
	fillSlotBuckets(colTrains, bl, off, buf)
	a.linDirty = true
	a.runUpdateTiles(false, func(_, lo, hi int, _ *rngutil.Source) int64 {
		var n int64
		for i := lo; i < hi; i++ {
			rt := rowTrains[i]
			if rt == 0 {
				continue
			}
			mul := mulDown
			if math.Signbit(u[i]) == sgnScale { // sign(u_i·scale) > 0: row drives up
				mul = mulUp
			}
			base := i * cols
			row := wData[base : base+cols : base+cols]
			for rr := rt; rr != 0; rr &= rr - 1 {
				s := bits.TrailingZeros64(rr)
				for _, j32 := range buf[off[s]:off[s+1]] {
					j := int(j32)
					if hasStuck && stuck[base+j] {
						continue
					}
					var step float64
					if uniform {
						step = mul[j]
					} else {
						step = dwMin * scale[base+j] * mul[j]
					}
					w := row[j] + step
					if w < wMin {
						w = wMin
					} else if w > wMax {
						w = wMax
					}
					row[j] = w
					n++
				}
			}
		}
		return n
	})
}

// fillSlotBuckets builds the slot-major column index of one train set: for
// each of the bl slots, the columns whose train fires in that slot occupy
// buf[off[s]:off[s+1]], in ascending column order.
func fillSlotBuckets(colTrains []uint64, bl int, off, buf []int32) {
	for s := 0; s <= bl; s++ {
		off[s] = 0
	}
	for _, ct := range colTrains {
		for r := ct; r != 0; r &= r - 1 {
			off[bits.TrailingZeros64(r)+1]++
		}
	}
	for s := 0; s < bl; s++ {
		off[s+1] += off[s]
	}
	// Fill slot buckets, columns in ascending order within each slot.
	var cur [64]int32
	for s := 0; s < bl; s++ {
		cur[s] = off[s]
	}
	for j, ct := range colTrains {
		for r := ct; r != 0; r &= r - 1 {
			s := bits.TrailingZeros64(r)
			buf[cur[s]] = int32(j)
			cur[s]++
		}
	}
}

// updateStochasticLinearBatch is the fused K-sample coincidence pass. It
// runs the per-sample periphery (op counters, pulse-train draws, column
// step tables, slot buckets) serially in sample order — consuming the
// array's random stream in exactly the sequence K sequential updates would
// — then applies all K updates in ONE tile pass over the weight mirror:
// each row is loaded once and the K samples' coincident pulses land on it
// in ascending sample order, which per crosspoint is the same pulse
// sequence the sequential path applies (each pulse is the same
// state-independent add-then-clip), so the result is bit-identical.
func (a *Array) updateStochasticLinearBatch(scale float64, us, vs []tensor.Vector) {
	K := len(us)
	bl := a.cfg.BL
	dw := a.model.MeanStep()
	c := math.Sqrt(math.Abs(scale) / (float64(bl) * dw))
	sgnScale := math.Signbit(scale)
	a.ensureArena()
	a.ensureBatchArena(K)
	ar := &a.arena
	rows, cols := a.rows, a.cols
	up, down := 1+a.linP.Asymmetry, -(1 - a.linP.Asymmetry)
	dwMin := a.linP.DwMin
	linScale := a.linScale
	uniform := a.linUniform && len(linScale) > 0
	for k := 0; k < K; k++ {
		a.Counts.Updates++
		a.Counts.DigitalMACs += int64(rows) * int64(cols)
		rt := ar.bRowTrains[k*rows : (k+1)*rows]
		for i, ui := range us[k] {
			rt[i] = a.train(math.Abs(ui) * c)
		}
		ct := ar.colTrains
		for j, vj := range vs[k] {
			ct[j] = a.train(math.Abs(vj) * c)
		}
		mulUp := ar.bColMulUp[k*cols : (k+1)*cols]
		mulDown := ar.bColMulDown[k*cols : (k+1)*cols]
		for j, vj := range vs[k] {
			if !math.Signbit(vj) {
				mulUp[j], mulDown[j] = up, down
			} else {
				mulUp[j], mulDown[j] = down, up
			}
		}
		if uniform {
			base := dwMin * linScale[0]
			for j := range mulUp {
				mulUp[j] *= base
				mulDown[j] *= base
			}
		}
		fillSlotBuckets(ct, bl,
			ar.bSlotOff[k*(bl+1):(k+1)*(bl+1)],
			ar.bSlotBuf[k*bl*cols:(k+1)*bl*cols])
	}
	stuck := a.stuck
	hasStuck := a.stuckCount > 0
	wData := a.w.Data
	wMin, wMax := a.linP.WMin, a.linP.WMax
	a.linDirty = true
	a.runUpdateTiles(false, func(_, lo, hi int, _ *rngutil.Source) int64 {
		var n int64
		for i := lo; i < hi; i++ {
			base := i * cols
			row := wData[base : base+cols : base+cols]
			for k := 0; k < K; k++ {
				rt := ar.bRowTrains[k*rows+i]
				if rt == 0 {
					continue
				}
				mul := ar.bColMulDown[k*cols : (k+1)*cols]
				if math.Signbit(us[k][i]) == sgnScale { // sign(u_i·scale) > 0: row drives up
					mul = ar.bColMulUp[k*cols : (k+1)*cols]
				}
				off := ar.bSlotOff[k*(bl+1):]
				buf := ar.bSlotBuf[k*bl*cols:]
				for rr := rt; rr != 0; rr &= rr - 1 {
					s := bits.TrailingZeros64(rr)
					for _, j32 := range buf[off[s]:off[s+1]] {
						j := int(j32)
						if hasStuck && stuck[base+j] {
							continue
						}
						var step float64
						if uniform {
							step = mul[j]
						} else {
							step = dwMin * linScale[base+j] * mul[j]
						}
						w := row[j] + step
						if w < wMin {
							w = wMin
						} else if w > wMax {
							w = wMax
						}
						row[j] = w
						n++
					}
				}
			}
		}
		return n
	})
}

// train samples a BL-slot Bernoulli(p) pulse train as a bitmask.
func (a *Array) train(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1 // probability saturation; bound management in the trainer
	}
	var t uint64
	for s := 0; s < a.cfg.BL; s++ {
		if a.rng.Float64() < p {
			t |= 1 << uint(s)
		}
	}
	return t
}

// updateExpected applies round-to-pulse updates: n_ij = |scale·u_i·v_j|/Δw
// pulses with stochastic rounding of the fractional part. The rounding
// draws and the pulse cycle noise both come from the tile's keyed stream.
func (a *Array) updateExpected(scale float64, u, v tensor.Vector) {
	a.syncLin()
	dw := a.model.MeanStep()
	a.runUpdateTiles(true, func(_, lo, hi int, rng *rngutil.Source) int64 {
		var pulses int64
		for i := lo; i < hi; i++ {
			ui := u[i]
			if ui == 0 {
				continue
			}
			base := i * a.cols
			su := scale * ui
			for j, vj := range v {
				if vj == 0 {
					continue
				}
				target := su * vj
				n := math.Abs(target) / dw
				k := int(n)
				if rng.Float64() < n-float64(k) {
					k++
				}
				if k == 0 {
					continue
				}
				pulses += a.pulseFrom(rng, base+j, k, target > 0)
			}
		}
		return pulses
	})
}

// pulseFrom applies k pulses to device idx (skipping stuck devices, routing
// through the fault hook's write path), drawing cycle noise from rng, and
// refreshes the weight mirror. It returns the pulses actually issued so
// tile-parallel callers can reduce counts in deterministic order.
func (a *Array) pulseFrom(rng *rngutil.Source, idx, k int, up bool) int64 {
	if a.stuck[idx] {
		return 0
	}
	if a.hook != nil {
		k = a.hook.FilterPulses(a, idx/a.cols, idx%a.cols, k, up)
		if k <= 0 {
			return 0
		}
	}
	a.dev[idx].Pulse(k, up, rng)
	a.w.Data[idx] = a.dev[idx].Weight()
	return int64(k)
}

// pulse is the serial path (programming, single-device addressing): noise
// draws come from the array's own stream and the count lands directly on
// Counts.Pulses. It settles any lazily deferred mirror state first, since
// it pulses the device object directly.
func (a *Array) pulse(idx, k int, up bool) {
	a.syncLin()
	a.Counts.Pulses += a.pulseFrom(a.rng, idx, k, up)
}

// UpdateDeviceExact applies exactly k pulses in the given direction to
// device (i, j) — the single-device programming path used by
// mixed-precision trainers, where the digital controller addresses one
// crosspoint at a time.
func (a *Array) UpdateDeviceExact(i, j, k int, up bool) {
	a.acquire()
	defer a.release()
	if i < 0 || i >= a.rows || j < 0 || j >= a.cols {
		panic(fmt.Sprintf("crossbar: UpdateDeviceExact index (%d,%d) out of %dx%d", i, j, a.rows, a.cols))
	}
	a.pulse(i*a.cols+j, k, up)
}

// PulseAll applies n identical pulses to every (non-stuck) device — the
// "all-ones" parallel pulsing used for symmetry-point programming and for
// the Fig. 2 potentiation/depression traces.
func (a *Array) PulseAll(n int, up bool) {
	a.acquire()
	defer a.release()
	a.pulseAll(n, up)
}

func (a *Array) pulseAll(n int, up bool) {
	for idx := range a.dev {
		a.pulse(idx, n, up)
	}
}

// AlternatePulseAll applies iters alternating (up, down) pulse pairs to
// every device, driving each toward its symmetry point — the zero-shifting
// programming step of §II-B.5.
func (a *Array) AlternatePulseAll(iters int) {
	a.acquire()
	defer a.release()
	for it := 0; it < iters; it++ {
		a.pulseAll(1, true)
		a.pulseAll(1, false)
	}
}

// AdvanceTime applies dt seconds of drift/relaxation to every device that
// models it, then refreshes the weight mirror. Stuck devices do not drift:
// their conductance path is frozen, which also preserves the corrupt value
// of StuckValueStd devices (the mirror, not the pristine device state, is
// what they expose). A fault hook may rescale dt (accelerated aging).
func (a *Array) AdvanceTime(dt float64) {
	if a.hook != nil {
		dt = a.hook.FilterAdvance(a, dt)
	}
	for idx, d := range a.dev {
		if a.stuck[idx] {
			continue
		}
		if dr, ok := d.(Drifter); ok {
			dr.Drift(dt)
			a.w.Data[idx] = d.Weight()
		}
	}
}

// ResetAll invokes the refresh operation on every resettable device (e.g.
// the PCM pair's difference-preserving reset) and refreshes the mirror.
func (a *Array) ResetAll() {
	a.acquire()
	defer a.release()
	for idx, d := range a.dev {
		if a.stuck[idx] {
			continue
		}
		if r, ok := d.(Resetter); ok {
			r.Reset()
			a.w.Data[idx] = d.Weight()
		}
	}
}

// MaxSaturation reports the worst per-leg saturation across PCM pairs
// (0 for arrays of other device types); trainers reset when it nears 1.
func (a *Array) MaxSaturation() float64 {
	var worst float64
	for _, d := range a.dev {
		if p, ok := d.(*pcmPair); ok {
			if s := p.Saturation(); s > worst {
				worst = s
			}
		}
	}
	return worst
}

// StuckCount reports the number of non-yielding devices.
func (a *Array) StuckCount() int { return a.stuckCount }

// Program drives every device toward the corresponding target weight with
// up/down pulses (closed-loop write-verify, maxPulses per device). It is
// used to load externally trained weights for inference experiments.
//
// It reports the total number of write pulses issued and the mean absolute
// residual |w − target| over yielding devices, so that programming under
// faults (write failures, noisy devices that fail to converge within the
// budget) is observable instead of silently stopping at the pulse cap.
// Stuck devices are skipped; their error is a detection/remapping problem
// (package faults), not a programming one. See ProgramVerify for the
// retrying variant with exponential pulse-budget backoff.
//
// Program takes exclusive ownership of the array for the whole pass (the
// single-writer contract of the Array doc comment): a serving read
// interleaved with reprogramming would observe half-written weights and,
// worse, race on the weight mirror. Callers that reprogram in the
// background must hold the same lock their readers use — see
// internal/serve.Replica for the ownership-handoff pattern and its -race
// hammer test.
func (a *Array) Program(target *tensor.Matrix, maxPulses int) (pulsesUsed int, residual float64) {
	a.acquire()
	defer a.release()
	if target.Rows != a.rows || target.Cols != a.cols {
		panic("crossbar: Program shape mismatch")
	}
	for idx := range a.dev {
		if a.stuck[idx] {
			continue
		}
		p, _ := a.programDevice(idx, target.Data[idx], maxPulses)
		pulsesUsed += p
	}
	return pulsesUsed, a.Residual(target)
}

// programDevice runs the write-verify loop on one yielding device: read,
// compare against want, pulse toward it, stop when within one mean step or
// when the pulse budget runs out. The controller aims at the nearest
// representable weight — a target beyond the device bounds would otherwise
// burn the whole budget pushing into the rail. Pulses are issued through
// the fault-hook write path, so dropped writes consume budget — exactly the
// closed-loop behaviour of a real programming controller. It reports pulses
// attempted and the remaining error against the requested target.
func (a *Array) programDevice(idx int, want float64, maxPulses int) (pulses int, err float64) {
	a.syncLin() // write-verify reads the device weight directly
	dw := a.model.MeanStep()
	aim := a.clampToBounds(want)
	d := a.dev[idx]
	for p := 0; p < maxPulses; p++ {
		diff := aim - d.Weight()
		if math.Abs(diff) < dw {
			break
		}
		a.pulse(idx, 1, diff > 0)
		pulses++
	}
	a.w.Data[idx] = d.Weight()
	return pulses, math.Abs(want - d.Weight())
}

// clampToBounds limits a requested weight to the model's representable
// range.
func (a *Array) clampToBounds(w float64) float64 {
	lo, hi := a.model.WeightBounds()
	if w < lo {
		return lo
	}
	if w > hi {
		return hi
	}
	return w
}

// ProgramDevice runs closed-loop write-verify on the single crosspoint
// (i, j) — the path column remapping uses to relocate one logical column
// onto a spare. It reports pulses attempted and the remaining |error|
// (for a stuck device: 0 pulses and the frozen value's error).
func (a *Array) ProgramDevice(i, j int, want float64, maxPulses int) (pulses int, err float64) {
	a.acquire()
	defer a.release()
	if i < 0 || i >= a.rows || j < 0 || j >= a.cols {
		panic(fmt.Sprintf("crossbar: ProgramDevice index (%d,%d) out of %dx%d", i, j, a.rows, a.cols))
	}
	idx := i*a.cols + j
	if a.stuck[idx] {
		return 0, math.Abs(want - a.w.Data[idx])
	}
	return a.programDevice(idx, want, maxPulses)
}

// Residual reports the mean absolute weight error against target over
// yielding (non-stuck) devices — the quantity a programming controller can
// actually drive to zero.
func (a *Array) Residual(target *tensor.Matrix) float64 {
	if target.Rows != a.rows || target.Cols != a.cols {
		panic("crossbar: Residual shape mismatch")
	}
	var sum float64
	n := 0
	for idx := range a.dev {
		if a.stuck[idx] {
			continue
		}
		sum += math.Abs(a.w.Data[idx] - target.Data[idx])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
