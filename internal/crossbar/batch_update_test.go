package crossbar

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// batchScript applies three rounds of [forward, K-sample update, forward]
// to a fresh array, with the update realized either as one UpdateBatch or
// as K sequential Update calls (fused=false), and returns the observed
// outputs, final state, and op counters.
func batchScript(model Model, cfg Config, k int, fused bool, seq bool) ([]tensor.Vector, ArrayState, OpCounts) {
	a := NewArray(97, 131, model, cfg, rngutil.New(4242))
	data := rngutil.New(7)
	var outs []tensor.Vector
	for step := 0; step < 3; step++ {
		x := scriptVec(131, 6, data)
		outs = append(outs, a.Forward(x))
		us := make([]tensor.Vector, k)
		vs := make([]tensor.Vector, k)
		for s := range us {
			us[s] = scriptVec(97, 4, data)
			vs[s] = scriptVec(131, 3, data)
		}
		switch {
		case seq:
			for s := range us {
				a.Update(0.02, us[s], vs[s])
			}
		case fused:
			a.UpdateBatch(0.02, us, vs)
		default:
			a.UpdateBatch(0.02, us, vs)
		}
		outs = append(outs, a.Forward(x))
	}
	return outs, a.ExportState(), a.Counts
}

// TestUpdateBatchBitIdentical is the fused multi-sample kernel's
// correctness gate: for every linear-step variant, K updates applied as
// one UpdateBatch must leave bit-identical outputs, exported state, and op
// counters as the same K updates applied sequentially — including against
// the ReferenceUpdate scalar twin — at several worker counts and batch
// sizes.
func TestUpdateBatchBitIdentical(t *testing.T) {
	defer par.SetWorkers(0)
	stuck := DefaultConfig()
	stuck.StuckFraction = 0.08
	stuck.StuckValueStd = 0.3
	models := []struct {
		name  string
		model *LinearStepModel
		cfg   Config
	}{
		{"ideal", Ideal(), DefaultConfig()},
		{"device-var", &LinearStepModel{P: LinearStepParams{
			DwMin: 0.002, DeviceVar: 0.3, WMin: -1, WMax: 1,
		}}, DefaultConfig()},
		{"asymmetric-stuck", &LinearStepModel{P: LinearStepParams{
			DwMin: 0.002, Asymmetry: 0.05, WMin: -0.8, WMax: 0.9,
		}}, stuck},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			for _, k := range []int{1, 3, 8} {
				par.SetWorkers(1)
				wantOuts, wantState, wantCounts := batchScript(tc.model, tc.cfg, k, false, true)
				ref := tc.cfg
				ref.ReferenceUpdate = true
				par.SetWorkers(4)
				refOuts, refState, refCounts := batchScript(tc.model, ref, k, false, true)
				if !reflect.DeepEqual(refState, wantState) || refCounts != wantCounts {
					t.Fatalf("k=%d: sequential reference path disagrees with sequential engine path", k)
				}
				for o := range wantOuts {
					for i := range wantOuts[o] {
						if math.Float64bits(refOuts[o][i]) != math.Float64bits(wantOuts[o][i]) {
							t.Fatalf("k=%d: reference output %d element %d diverged", k, o, i)
						}
					}
				}
				for _, w := range []int{1, 4} {
					par.SetWorkers(w)
					gotOuts, gotState, gotCounts := batchScript(tc.model, tc.cfg, k, true, false)
					if gotCounts != wantCounts {
						t.Fatalf("k=%d workers=%d: fused counts %+v, want %+v", k, w, gotCounts, wantCounts)
					}
					if !reflect.DeepEqual(gotState, wantState) {
						t.Fatalf("k=%d workers=%d: fused state diverged from sequential", k, w)
					}
					for o := range wantOuts {
						for i := range wantOuts[o] {
							if math.Float64bits(gotOuts[o][i]) != math.Float64bits(wantOuts[o][i]) {
								t.Fatalf("k=%d workers=%d: fused output %d element %d diverged", k, w, o, i)
							}
						}
					}
				}
			}
		})
	}
}

// TestUpdateBatchNonDefaultPlan repeats the fused-vs-sequential identity
// under a non-default blocking geometry: the plan moves the tile grid (and
// with it the per-tile RNG keying of other paths), and the fused kernel
// must track it exactly.
func TestUpdateBatchNonDefaultPlan(t *testing.T) {
	defer par.SetPlan(par.DefaultPlan())
	defer par.SetWorkers(0)
	par.SetPlan(par.Plan{TileSpan: 23, BatchSpan: 3})
	par.SetWorkers(4)
	wantOuts, wantState, wantCounts := batchScript(Ideal(), DefaultConfig(), 5, false, true)
	gotOuts, gotState, gotCounts := batchScript(Ideal(), DefaultConfig(), 5, true, false)
	if gotCounts != wantCounts {
		t.Fatalf("fused counts %+v, want %+v", gotCounts, wantCounts)
	}
	if !reflect.DeepEqual(gotState, wantState) {
		t.Fatal("fused state diverged from sequential under non-default plan")
	}
	for o := range wantOuts {
		for i := range wantOuts[o] {
			if math.Float64bits(gotOuts[o][i]) != math.Float64bits(wantOuts[o][i]) {
				t.Fatalf("output %d element %d diverged under non-default plan", o, i)
			}
		}
	}
}

// TestUpdateBatchFallbacks pins that configurations without a fused kernel
// (reference path, expected-pulse mode) still produce the sequential
// result through UpdateBatch's fallback loop.
func TestUpdateBatchFallbacks(t *testing.T) {
	defer par.SetWorkers(0)
	par.SetWorkers(2)
	for name, cfg := range map[string]Config{
		"reference": func() Config { c := DefaultConfig(); c.ReferenceUpdate = true; return c }(),
		"expected":  func() Config { c := DefaultConfig(); c.Update = UpdateExpected; return c }(),
	} {
		wantOuts, wantState, wantCounts := batchScript(Ideal(), cfg, 4, false, true)
		gotOuts, gotState, gotCounts := batchScript(Ideal(), cfg, 4, true, false)
		if gotCounts != wantCounts || !reflect.DeepEqual(gotState, wantState) {
			t.Fatalf("%s: fallback batch diverged from sequential", name)
		}
		for o := range wantOuts {
			for i := range wantOuts[o] {
				if math.Float64bits(gotOuts[o][i]) != math.Float64bits(wantOuts[o][i]) {
					t.Fatalf("%s: output %d element %d diverged", name, o, i)
				}
			}
		}
	}
}

// TestUpdateBatchAllocBudget keeps the fused kernel inside the same ≤2
// allocs/op budget as the sequential hot path once its arena is warm.
func TestUpdateBatchAllocBudget(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	defer par.SetWorkers(0)
	par.SetWorkers(4)
	a := NewArray(256, 256, Ideal(), DefaultConfig(), rngutil.New(21))
	data := rngutil.New(2)
	const k = 8
	us := make([]tensor.Vector, k)
	vs := make([]tensor.Vector, k)
	for s := range us {
		us[s] = scriptVec(256, 4, data)
		vs[s] = scriptVec(256, 3, data)
	}
	fn := func() { a.UpdateBatch(0.02, us, vs) }
	fn() // warm the arenas
	if got := testing.AllocsPerRun(30, fn); got > 2 {
		t.Errorf("UpdateBatch: %.1f allocs/op, budget 2", got)
	}
}
