package crossbar

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// The Array must satisfy the network-facing Mat contract.
var _ nn.Mat = (*Array)(nil)

func idealArray(rows, cols int, seed uint64) *Array {
	return NewArray(rows, cols, Ideal(), DefaultConfig(), rngutil.New(seed))
}

func TestIdealForwardMatchesDigital(t *testing.T) {
	rng := rngutil.New(1)
	a := idealArray(4, 6, 1)
	// Program a known matrix.
	target := tensor.NewMatrix(4, 6)
	for i := range target.Data {
		target.Data[i] = rng.Uniform(-0.5, 0.5)
	}
	a.Program(target, 2000)
	x := make(tensor.Vector, 6)
	for j := range x {
		x[j] = rng.Uniform(-1, 1)
	}
	got := a.Forward(x)
	want := a.Weights().MatVec(x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("ideal forward must equal mirror MVM: %v vs %v", got, want)
		}
	}
	// And the programmed weights should be close to the target (within a
	// couple of steps of write-verify resolution).
	for i := range target.Data {
		if math.Abs(a.Weights().Data[i]-target.Data[i]) > 3*Ideal().MeanStep() {
			t.Fatalf("programming error too large at %d: %v vs %v", i, a.Weights().Data[i], target.Data[i])
		}
	}
}

func TestBackwardIsTranspose(t *testing.T) {
	rng := rngutil.New(2)
	a := idealArray(5, 3, 2)
	target := tensor.NewMatrix(5, 3)
	for i := range target.Data {
		target.Data[i] = rng.Uniform(-0.5, 0.5)
	}
	a.Program(target, 2000)
	d := tensor.Vector{0.3, -0.8, 0.1, 0.5, -0.2}
	got := a.Backward(d)
	want := a.Weights().MatVecT(d)
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-9 {
			t.Fatalf("backward must be transposed MVM")
		}
	}
}

func TestForwardShapePanics(t *testing.T) {
	a := idealArray(2, 3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Forward(tensor.Vector{1, 2})
}

// Property F1: the stochastic update is unbiased — E[ΔW] = scale·u⊗v.
func TestStochasticUpdateUnbiased(t *testing.T) {
	u := tensor.Vector{0.8, -0.5, 0.3}
	v := tensor.Vector{0.6, -0.9}
	scale := 0.01
	const trials = 400
	sum := tensor.NewMatrix(3, 2)
	for trial := 0; trial < trials; trial++ {
		a := NewArray(3, 2, Ideal(), DefaultConfig(), rngutil.New(uint64(trial+1)))
		before := a.Weights()
		a.Update(scale, u, v)
		after := a.Weights()
		for i := range sum.Data {
			sum.Data[i] += after.Data[i] - before.Data[i]
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			got := sum.At(i, j) / trials
			want := scale * u[i] * v[j]
			// Binomial noise scales like sqrt; allow 35 % relative + floor.
			tol := 0.35*math.Abs(want) + 5e-4
			if math.Abs(got-want) > tol {
				t.Errorf("E[dW(%d,%d)] = %v, want %v (tol %v)", i, j, got, want, tol)
			}
		}
	}
}

// Property: the expected-pulse update mode is also unbiased and close to
// the target in a single shot for updates large relative to the step.
func TestExpectedUpdateAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Update = UpdateExpected
	a := NewArray(2, 2, Ideal(), cfg, rngutil.New(9))
	u := tensor.Vector{1, -1}
	v := tensor.Vector{1, 0.5}
	before := a.Weights()
	a.Update(0.05, u, v)
	after := a.Weights()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			got := after.At(i, j) - before.At(i, j)
			want := 0.05 * u[i] * v[j]
			if math.Abs(got-want) > 2*Ideal().MeanStep() {
				t.Errorf("dW(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

// Property: device weights never escape the model bounds regardless of the
// pulse sequence applied.
func TestWeightBoundsInvariant(t *testing.T) {
	models := []Model{Ideal(), RRAM(), PCM(), FeFET(), ECRAM()}
	f := func(seed int64, nUp, nDown uint8) bool {
		for _, m := range models {
			rng := rngutil.New(uint64(seed))
			d := m.New(rng)
			pr := rng.Child("p")
			d.Pulse(int(nUp), true, pr)
			d.Pulse(int(nDown), false, pr)
			lo, hi := m.WeightBounds()
			w := d.Weight()
			if w < lo-1e-9 || w > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStuckDevicesFrozen(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StuckFraction = 1 // everything stuck
	a := NewArray(3, 3, Ideal(), cfg, rngutil.New(5))
	if a.StuckCount() != 9 {
		t.Fatalf("StuckCount = %d", a.StuckCount())
	}
	before := a.Weights()
	a.Update(0.5, tensor.Vector{1, 1, 1}, tensor.Vector{1, 1, 1})
	a.PulseAll(10, true)
	after := a.Weights()
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("stuck device moved")
		}
	}
}

func TestADCQuantization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ADCBits = 2
	cfg.OutputRange = 1
	a := NewArray(1, 1, Ideal(), cfg, rngutil.New(7))
	tgt := tensor.NewMatrix(1, 1)
	tgt.Set(0, 0, 0.9)
	a.Program(tgt, 2000)
	y := a.Forward(tensor.Vector{1})
	// 2-bit ADC over [-1,1]: levels at -1, -1/3, 1/3, 1.
	valid := []float64{-1, -1.0 / 3, 1.0 / 3, 1}
	ok := false
	for _, lv := range valid {
		if math.Abs(y[0]-lv) < 1e-9 {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("output %v not on 2-bit grid", y[0])
	}
}

func TestDACQuantizationClipping(t *testing.T) {
	if got := quantize(5, 4, 1); got != 1 {
		t.Errorf("quantize should clip: got %v", got)
	}
	if got := quantize(-5, 4, 1); got != -1 {
		t.Errorf("quantize should clip negative: got %v", got)
	}
	if got := quantize(0.37, 0, 1); got != 0.37 {
		t.Errorf("bits=0 should be identity: got %v", got)
	}
}

func TestReadNoiseApplied(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadNoise = 0.1
	a := NewArray(2, 2, Ideal(), cfg, rngutil.New(11))
	x := tensor.Vector{1, 1}
	y1 := a.Forward(x)
	y2 := a.Forward(x)
	if y1[0] == y2[0] && y1[1] == y2[1] {
		t.Fatal("read noise should vary between reads")
	}
}

func TestIRDropAttenuates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IRDrop = 0.5
	a := NewArray(1, 256, Ideal(), cfg, rngutil.New(13))
	tgt := tensor.NewMatrix(1, 256)
	tgt.Fill(0.5)
	a.Program(tgt, 3000)
	ones := make(tensor.Vector, 256)
	ones.Fill(1)
	y := a.Forward(ones)
	ideal := a.Weights().MatVec(ones)
	if y[0] >= ideal[0]*0.6 {
		t.Fatalf("IR drop should attenuate wide arrays: got %v vs ideal %v", y[0], ideal[0])
	}
}

func TestOpCountsTrackArrayOps(t *testing.T) {
	a := idealArray(8, 8, 17)
	a.Forward(make(tensor.Vector, 8))
	a.Backward(make(tensor.Vector, 8))
	a.Update(0.01, make(tensor.Vector, 8), make(tensor.Vector, 8))
	if a.Counts.Forwards != 1 || a.Counts.Backwards != 1 || a.Counts.Updates != 1 {
		t.Fatalf("op counts wrong: %+v", a.Counts)
	}
	if a.Counts.DigitalMACs != 3*64 {
		t.Fatalf("digital MAC equivalent wrong: %d", a.Counts.DigitalMACs)
	}
}

// F2: the RRAM pulse response must show saturation (diminishing steps),
// asymmetry, and cycle-to-cycle stochasticity.
func TestRRAMPulseResponseShape(t *testing.T) {
	trace := PulseResponse(RRAM(), 3, 1000, 1000, 42)
	if len(trace) != 6000 {
		t.Fatalf("trace length %d", len(trace))
	}
	// Saturation: the first 100 potentiation pulses move the weight much
	// more than the last 100 of the same ramp.
	firstMove := trace[99] - trace[0]
	lastMove := trace[999] - trace[899]
	if lastMove > firstMove/2 {
		t.Errorf("no saturation: first-100 move %v, last-100 move %v", firstMove, lastMove)
	}
	// Potentiation must raise conductance and depression lower it.
	if trace[999] <= trace[0] {
		t.Error("potentiation ramp did not increase weight")
	}
	if trace[1999] >= trace[999] {
		t.Error("depression ramp did not decrease weight")
	}
	// Cycle-to-cycle stochasticity: cycles should not repeat exactly.
	if trace[999] == trace[2999] {
		t.Error("cycles identical; expected stochastic variation")
	}
}

func TestIdealPulseResponseLinear(t *testing.T) {
	trace := PulseResponse(Ideal(), 1, 100, 0, 1)
	dw := Ideal().MeanStep()
	for i := 1; i < len(trace); i++ {
		if math.Abs((trace[i]-trace[i-1])-dw) > 1e-12 {
			t.Fatalf("ideal device step not constant at pulse %d", i)
		}
	}
}

func TestSymmetryPointMatchesAnalytic(t *testing.T) {
	m := RRAM()
	m.P.CycleNoise = 0 // deterministic for the analytic check
	m.P.DeviceVar = 0
	got := FindSymmetryPoint(m, 4000, 3)
	want := m.SymmetryPoint()
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("symmetry point %v, analytic %v", got, want)
	}
}

func TestMeasureAsymmetry(t *testing.T) {
	if a := MeasureAsymmetry(Ideal(), 10, 1); math.Abs(a) > 1e-9 {
		t.Errorf("ideal device asymmetry = %v, want 0", a)
	}
	m := &LinearStepModel{P: LinearStepParams{DwMin: 0.01, Asymmetry: 0.3, WMin: -1, WMax: 1}}
	if a := MeasureAsymmetry(m, 10, 1); math.Abs(a-0.3) > 0.02 {
		t.Errorf("asymmetric device measured %v, want 0.3", a)
	}
}

func TestPCMUnidirectionalPair(t *testing.T) {
	rng := rngutil.New(19)
	d := PCM().New(rng).(*pcmPair)
	pr := rng.Child("p")
	w0 := d.Weight()
	d.Pulse(50, true, pr)
	if d.Weight() <= w0 {
		t.Fatal("up pulses must raise weight")
	}
	gpBefore := d.gp
	d.Pulse(50, false, pr)
	// Depression must not reduce G⁺ (unidirectional): it raises G⁻ instead.
	if d.gp != gpBefore {
		t.Fatal("depression must not touch the positive leg")
	}
	if d.gn <= 0.25 {
		t.Fatal("depression must raise the negative leg")
	}
}

func TestPCMResetPreservesWeight(t *testing.T) {
	rng := rngutil.New(23)
	d := PCM().New(rng).(*pcmPair)
	pr := rng.Child("p")
	d.Pulse(100, true, pr)
	d.Pulse(60, false, pr)
	w := d.Weight()
	sat := d.Saturation()
	d.Reset()
	if math.Abs(d.Weight()-w) > 1e-12 {
		t.Fatalf("reset changed weight: %v -> %v", w, d.Weight())
	}
	if d.Saturation() >= sat {
		t.Fatal("reset should restore headroom")
	}
}

func TestPCMSaturationBlocksUpdatesWithoutReset(t *testing.T) {
	rng := rngutil.New(29)
	d := PCM().New(rng).(*pcmPair)
	pr := rng.Child("p")
	// Alternate heavily: both legs saturate, weight stops responding.
	for i := 0; i < 3000; i++ {
		d.Pulse(1, true, pr)
		d.Pulse(1, false, pr)
	}
	w := d.Weight()
	d.Pulse(20, true, pr)
	moved := math.Abs(d.Weight() - w)
	if moved > 0.01 {
		t.Fatalf("saturated pair still moves by %v; expected blocked updates", moved)
	}
	if d.Saturation() < 0.9 {
		t.Fatalf("expected near-saturated legs, got %v", d.Saturation())
	}
}

func TestPCMDriftAndProjection(t *testing.T) {
	rng := rngutil.New(31)
	plain := PCM().New(rng.Child("a")).(*pcmPair)
	proj := PCMProjected().New(rng.Child("b")).(*pcmPair)
	pr := rng.Child("p")
	plain.Pulse(200, true, pr)
	proj.Pulse(200, true, pr)
	wPlain, wProj := plain.Weight(), proj.Weight()
	plain.Drift(1e6)
	proj.Drift(1e6)
	dropPlain := (wPlain - plain.Weight()) / wPlain
	dropProj := (wProj - proj.Weight()) / wProj
	if dropPlain <= 0 {
		t.Fatal("PCM should drift down")
	}
	if dropProj >= dropPlain/2 {
		t.Fatalf("projection liner should suppress drift: plain %v proj %v", dropPlain, dropProj)
	}
}

func TestFeFETEnduranceFreeze(t *testing.T) {
	m := FeFET()
	m.P.Endurance = 100
	rng := rngutil.New(37)
	d := m.New(rng).(*fefetDevice)
	pr := rng.Child("p")
	d.Pulse(100, true, pr)
	if !d.WornOut() {
		t.Fatal("device should be worn out after endurance pulses")
	}
	w := d.Weight()
	d.Pulse(50, true, pr)
	if d.Weight() != w {
		t.Fatal("worn-out device must not move")
	}
}

func TestECRAMSymmetryAndRelaxation(t *testing.T) {
	// ECRAM should be far more symmetric than RRAM.
	ecramAsym := math.Abs(MeasureAsymmetry(ECRAM(), 50, 1))
	rramAsym := math.Abs(MeasureAsymmetry(RRAM(), 50, 1))
	if ecramAsym >= rramAsym {
		t.Fatalf("ECRAM asym %v should beat RRAM %v", ecramAsym, rramAsym)
	}
	rng := rngutil.New(41)
	d := ECRAM().New(rng).(*ecramDevice)
	pr := rng.Child("p")
	d.Pulse(300, true, pr)
	w := d.Weight()
	d.Drift(7200) // two relaxation time constants
	if math.Abs(d.Weight()) >= math.Abs(w) {
		t.Fatal("ECRAM open-circuit relaxation should decay toward rest")
	}
}

func TestArrayAdvanceTimeAndReset(t *testing.T) {
	a := NewArray(2, 2, PCM(), DefaultConfig(), rngutil.New(43))
	a.PulseAll(100, true)
	w := a.Weights()
	a.AdvanceTime(1e6)
	w2 := a.Weights()
	if w2.At(0, 0) >= w.At(0, 0) {
		t.Fatal("array drift should lower PCM weights")
	}
	if a.MaxSaturation() <= 0 {
		t.Fatal("saturation should be positive after pulses")
	}
	a.ResetAll()
	if a.MaxSaturation() > 0.5 {
		t.Fatal("reset should restore headroom")
	}
}

func TestZeroUpdateNoop(t *testing.T) {
	a := idealArray(2, 2, 47)
	before := a.Weights()
	a.Update(0, tensor.Vector{1, 1}, tensor.Vector{1, 1})
	after := a.Weights()
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("zero-scale update must be a no-op")
		}
	}
	if a.Counts.Updates != 0 {
		t.Fatal("zero-scale update should not count")
	}
}

func TestBadBLPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BL = 100
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewArray(2, 2, Ideal(), cfg, rngutil.New(1))
}

func TestModelNames(t *testing.T) {
	for _, m := range []Model{Ideal(), RRAM(), PCM(), PCMProjected(), FeFET(), ECRAM()} {
		if m.Name() == "" {
			t.Error("model must have a name")
		}
		if m.MeanStep() <= 0 {
			t.Errorf("%s: MeanStep must be positive", m.Name())
		}
		lo, hi := m.WeightBounds()
		if lo >= hi {
			t.Errorf("%s: bad bounds", m.Name())
		}
	}
}

// C7: inference efficiency rises with device resistance and saturates in
// the paper's projected band at 100 MOhm.
func TestInferenceEfficiencyBand(t *testing.T) {
	m := DefaultInferenceEnergy()
	low := m.TOPSPerWatt(256, 256, 1e4)
	high := m.TOPSPerWatt(256, 256, 1e8)
	if high <= low {
		t.Fatal("efficiency must rise with device resistance")
	}
	if high < 172 || high > 260 {
		t.Fatalf("efficiency at 100 MOhm = %v TOP/s/W, outside the 172-250 band", high)
	}
	if low > 20 {
		t.Fatalf("low-resistance efficiency %v should be array-power limited", low)
	}
	// Monotone in resistance.
	prev := 0.0
	for _, r := range []float64{1e4, 1e5, 1e6, 1e7, 1e8} {
		e := m.TOPSPerWatt(256, 256, r)
		if e <= prev {
			t.Fatalf("efficiency not monotone at R=%v", r)
		}
		prev = e
	}
}

func TestMVMEnergyComponents(t *testing.T) {
	m := DefaultInferenceEnergy()
	// At very low resistance the array term dominates: energy should scale
	// roughly inversely with R.
	e1 := m.MVMEnergy(256, 256, 1e4)
	e2 := m.MVMEnergy(256, 256, 2e4)
	if e2 >= e1 {
		t.Fatal("array energy must fall with resistance")
	}
	if ratio := e1 / e2; ratio < 1.5 {
		t.Fatalf("low-R regime should be array-dominated, ratio %v", ratio)
	}
}

func TestStuckAtRandomValue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StuckFraction = 1
	cfg.StuckValueStd = 0.3
	a := NewArray(8, 8, Ideal(), cfg, rngutil.New(3))
	// Corrupt devices freeze at nonzero random values...
	if a.Weights().MaxAbs() == 0 {
		t.Fatal("corrupt devices should freeze at random values")
	}
	lo, hi := Ideal().WeightBounds()
	for _, w := range a.Weights().Data {
		if w < lo || w > hi {
			t.Fatalf("stuck value %v outside device bounds", w)
		}
	}
	// ...and stay frozen under pulsing and programming.
	before := a.Weights()
	a.PulseAll(100, true)
	tgt := tensor.NewMatrix(8, 8)
	tgt.Fill(0.9)
	a.Program(tgt, 1000)
	after := a.Weights()
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("corrupt device changed state")
		}
	}
}
