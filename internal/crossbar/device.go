// Package crossbar simulates analog resistive crossbar arrays — the
// Resistive Processing Unit (RPU) substrate of §II of the paper. It models
// the three array cycles of Fig. 1 (forward MVM, backward transposed MVM,
// and the fully parallel stochastic-pulse rank-1 update) together with the
// device non-idealities that drive the paper's discussion: bounded and
// state-dependent conductance steps, update asymmetry, cycle-to-cycle and
// device-to-device variability, stuck (non-yielding) crosspoints, PCM
// unidirectionality and drift, FeFET endurance, and peripheral effects
// (read noise, DAC/ADC quantization, IR-drop attenuation).
//
// The simulation methodology follows the paper's ref. [14] (Gokmen &
// Vlasov): devices are behavioural — they expose how the weight changes per
// voltage pulse — and training algorithms interact with them only through
// pulse statistics, never through direct weight writes.
package crossbar

import (
	"math"

	"repro/internal/rngutil"
)

// Device is the state of a single crosspoint element in normalized weight
// units. Implementations capture the update physics of a device technology.
type Device interface {
	// Weight returns the current stored weight (the device's signed,
	// normalized conductance contribution).
	Weight() float64
	// Pulse applies n potentiation (up=true) or depression (up=false)
	// voltage pulses, mutating the stored weight per the device physics.
	Pulse(n int, up bool, rng *rngutil.Source)
}

// Drifter is implemented by devices whose conductance decays with time
// (e.g. PCM resistance drift, ECRAM open-circuit relaxation).
type Drifter interface {
	// Drift advances device time by dt seconds.
	Drift(dt float64)
}

// Resetter is implemented by devices that support an occasional
// refresh/reset operation (e.g. the PCM differential pair's simultaneous
// reset that preserves the weight difference, §II-B.1).
type Resetter interface {
	Reset()
}

// Model builds fresh devices and documents nominal array-level properties.
type Model interface {
	// Name identifies the technology, e.g. "rram-softbounds".
	Name() string
	// New returns a fresh device with device-to-device variation applied.
	New(rng *rngutil.Source) Device
	// MeanStep is the nominal per-pulse |Δw| at w≈0; trainers use it to
	// convert learning rates into pulse probabilities.
	MeanStep() float64
	// WeightBounds reports the representable weight range.
	WeightBounds() (lo, hi float64)
}

// ---------------------------------------------------------------------------
// Ideal / linear-step device
// ---------------------------------------------------------------------------

// LinearStepParams parameterizes a device with a state-independent step.
// Asymmetry a scales potentiation steps by (1+a) and depression steps by
// (1-a); the paper's RPU spec (§II-A) requires |a| within a few percent.
type LinearStepParams struct {
	DwMin      float64 // nominal per-pulse weight change
	Asymmetry  float64 // up/down step imbalance in [-1, 1]
	CycleNoise float64 // per-pulse multiplicative noise std (relative)
	DeviceVar  float64 // device-to-device step-size variation std (relative)
	WMin, WMax float64 // weight bounds
}

// LinearStepModel is a bidirectional device with constant (state-
// independent) steps — the "ideal" reference when Asymmetry, CycleNoise and
// DeviceVar are zero.
type LinearStepModel struct {
	P LinearStepParams
}

// Ideal returns a perfectly symmetric, noiseless device meeting the RPU
// spec: per-pulse step equal to 0.1 % of the weight range.
func Ideal() *LinearStepModel {
	return &LinearStepModel{P: LinearStepParams{
		DwMin: 0.002, WMin: -1, WMax: 1, // 0.002/2.0 = 0.1 % of range
	}}
}

// Name implements Model.
func (m *LinearStepModel) Name() string { return "linear-step" }

// MeanStep implements Model.
func (m *LinearStepModel) MeanStep() float64 { return m.P.DwMin }

// WeightBounds implements Model.
func (m *LinearStepModel) WeightBounds() (float64, float64) { return m.P.WMin, m.P.WMax }

// New implements Model.
func (m *LinearStepModel) New(rng *rngutil.Source) Device {
	scale := 1.0
	if m.P.DeviceVar > 0 {
		scale = math.Max(0.05, rng.Normal(1, m.P.DeviceVar))
	}
	return &linearStepDevice{p: m.P, scale: scale}
}

type linearStepDevice struct {
	p     LinearStepParams
	scale float64
	w     float64
}

func (d *linearStepDevice) Weight() float64 { return d.w }

func (d *linearStepDevice) Pulse(n int, up bool, rng *rngutil.Source) {
	for k := 0; k < n; k++ {
		step := d.p.DwMin * d.scale
		if up {
			step *= 1 + d.p.Asymmetry
		} else {
			step *= 1 - d.p.Asymmetry
		}
		if d.p.CycleNoise > 0 {
			step *= 1 + rng.Normal(0, d.p.CycleNoise)
		}
		if up {
			d.w += step
		} else {
			d.w -= step
		}
		d.clip()
	}
}

func (d *linearStepDevice) clip() {
	if d.w < d.p.WMin {
		d.w = d.p.WMin
	} else if d.w > d.p.WMax {
		d.w = d.p.WMax
	}
}

// ---------------------------------------------------------------------------
// Soft-bounds (RRAM-like) device
// ---------------------------------------------------------------------------

// SoftBoundsParams parameterizes a device whose step size shrinks as the
// weight approaches its bounds — the saturating, asymmetric behaviour that
// filamentary RRAM exhibits (Fig. 2). The potentiation step at weight w is
// SlopeUp·(WMax−w) and the depression step is SlopeDown·(w−WMin); both decay
// to zero at the respective bound, producing the exponential-looking
// potentiation/depression envelopes of the figure.
type SoftBoundsParams struct {
	SlopeUp    float64 // potentiation gain per pulse
	SlopeDown  float64 // depression gain per pulse
	CycleNoise float64 // per-pulse multiplicative noise std (relative)
	DeviceVar  float64 // device-to-device slope variation std (relative)
	WMin, WMax float64
}

// SoftBoundsModel is the RRAM-like device model.
type SoftBoundsModel struct {
	P SoftBoundsParams
}

// RRAM returns a soft-bounds device with the qualitative characteristics
// reported for analog filamentary RRAM (paper refs. [22], [30]): strongly
// state-dependent steps, noticeable up/down imbalance, and per-pulse
// stochasticity, with ~1000 resolvable states across the range.
func RRAM() *SoftBoundsModel {
	return &SoftBoundsModel{P: SoftBoundsParams{
		SlopeUp:    0.004,
		SlopeDown:  0.006, // aggressive asymmetry, §II-B.5
		CycleNoise: 0.3,
		DeviceVar:  0.2,
		WMin:       -1, WMax: 1,
	}}
}

// Name implements Model.
func (m *SoftBoundsModel) Name() string { return "rram-softbounds" }

// MeanStep implements Model.
func (m *SoftBoundsModel) MeanStep() float64 {
	// Nominal step at w=0.
	return 0.5 * (m.P.SlopeUp*m.P.WMax + m.P.SlopeDown*(-m.P.WMin))
}

// WeightBounds implements Model.
func (m *SoftBoundsModel) WeightBounds() (float64, float64) { return m.P.WMin, m.P.WMax }

// New implements Model.
func (m *SoftBoundsModel) New(rng *rngutil.Source) Device {
	d := &softBoundsDevice{p: m.P, up: 1, down: 1}
	if m.P.DeviceVar > 0 {
		d.up = math.Max(0.05, rng.Normal(1, m.P.DeviceVar))
		d.down = math.Max(0.05, rng.Normal(1, m.P.DeviceVar))
	}
	return d
}

// SymmetryPoint returns the weight at which mean potentiation and
// depression steps balance — the fixed point reached under alternating
// up/down pulsing, used by the zero-shifting technique (§II-B.5).
func (m *SoftBoundsModel) SymmetryPoint() float64 {
	// SlopeUp·(WMax−w*) = SlopeDown·(w*−WMin)
	return (m.P.SlopeUp*m.P.WMax + m.P.SlopeDown*m.P.WMin) / (m.P.SlopeUp + m.P.SlopeDown)
}

type softBoundsDevice struct {
	p        SoftBoundsParams
	up, down float64 // per-device slope scale factors
	w        float64
}

func (d *softBoundsDevice) Weight() float64 { return d.w }

func (d *softBoundsDevice) Pulse(n int, up bool, rng *rngutil.Source) {
	for k := 0; k < n; k++ {
		var step float64
		if up {
			step = d.p.SlopeUp * d.up * (d.p.WMax - d.w)
		} else {
			step = d.p.SlopeDown * d.down * (d.w - d.p.WMin)
		}
		if step < 0 {
			step = 0
		}
		if d.p.CycleNoise > 0 {
			step *= 1 + rng.Normal(0, d.p.CycleNoise)
		}
		if up {
			d.w += step
		} else {
			d.w -= step
		}
		if d.w < d.p.WMin {
			d.w = d.p.WMin
		} else if d.w > d.p.WMax {
			d.w = d.p.WMax
		}
	}
}
