package crossbar

// InferenceEnergyModel projects the energy efficiency of crossbar MVM
// inference as a function of device resistance (§II-B.1): at low device
// resistance the array's static read power dominates (V²/R per device), so
// raising the base resistance deep into the MΩ range shifts the bill to
// the converters and pushes efficiency toward the paper's projected
// 172–250 TOP/s/W for 14 nm-class accelerators at up to 100 MΩ.
type InferenceEnergyModel struct {
	ReadVoltage float64 // volts applied to each row during an MVM
	PulseWidth  float64 // seconds the read inputs are held
	ADCEnergy   float64 // joules per output sample conversion
	DACEnergy   float64 // joules per input drive
	StaticPerOp float64 // joules of control/buffer overhead per MVM
}

// DefaultInferenceEnergy returns 14 nm-class periphery constants calibrated
// so that a 256×256 array at 100 MΩ base resistance lands in the paper's
// 172–250 TOP/s/W band.
func DefaultInferenceEnergy() InferenceEnergyModel {
	return InferenceEnergyModel{
		ReadVoltage: 0.2,
		PulseWidth:  100e-9,
		ADCEnergy:   1.5e-12,
		DACEnergy:   0.5e-12,
		StaticPerOp: 20e-12,
	}
}

// MVMEnergy returns the energy of one rows×cols analog MVM with devices of
// the given average resistance (ohms).
func (m InferenceEnergyModel) MVMEnergy(rows, cols int, resistance float64) float64 {
	devices := float64(rows) * float64(cols)
	array := devices * m.ReadVoltage * m.ReadVoltage / resistance * m.PulseWidth
	periphery := float64(rows)*m.ADCEnergy + float64(cols)*m.DACEnergy
	return array + periphery + m.StaticPerOp
}

// TOPSPerWatt returns the inference efficiency (tera-operations per second
// per watt, counting one multiply and one add per crosspoint) at the given
// device resistance.
func (m InferenceEnergyModel) TOPSPerWatt(rows, cols int, resistance float64) float64 {
	ops := 2 * float64(rows) * float64(cols)
	return ops / m.MVMEnergy(rows, cols, resistance) / 1e12
}
