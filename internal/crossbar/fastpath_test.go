package crossbar

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// TestReferenceUpdateBitIdentical is the specialized update kernel's
// correctness gate: for every linear-step variant the engine accelerates,
// the full mixed-op script must produce bit-identical outputs and exported
// state (devices and mirror) under the fast path and under
// Config.ReferenceUpdate — the scalar twin the benchmark speedup budget is
// measured against.
func TestReferenceUpdateBitIdentical(t *testing.T) {
	defer par.SetWorkers(0)
	stuck := DefaultConfig()
	stuck.StuckFraction = 0.08
	stuck.StuckValueStd = 0.3
	models := []struct {
		name  string
		model *LinearStepModel
		cfg   Config
	}{
		{"ideal", Ideal(), DefaultConfig()},
		{"device-var", &LinearStepModel{P: LinearStepParams{
			DwMin: 0.002, DeviceVar: 0.3, WMin: -1, WMax: 1,
		}}, DefaultConfig()},
		{"asymmetric", &LinearStepModel{P: LinearStepParams{
			DwMin: 0.002, Asymmetry: 0.05, WMin: -0.8, WMax: 0.9,
		}}, DefaultConfig()},
		{"var-asym-stuck", &LinearStepModel{P: LinearStepParams{
			DwMin: 0.0025, Asymmetry: -0.04, DeviceVar: 0.25, WMin: -1, WMax: 1,
		}}, stuck},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			par.SetWorkers(4)
			ref := tc.cfg
			ref.ReferenceUpdate = true
			wantOuts, wantState := runOpScript(tc.model, ref)
			gotOuts, gotState := runOpScript(tc.model, tc.cfg)
			for o := range wantOuts {
				for i := range wantOuts[o] {
					if math.Float64bits(gotOuts[o][i]) != math.Float64bits(wantOuts[o][i]) {
						t.Fatalf("output %d element %d = %x, want %x (reference path)",
							o, i, math.Float64bits(gotOuts[o][i]), math.Float64bits(wantOuts[o][i]))
					}
				}
			}
			if !reflect.DeepEqual(gotState, wantState) {
				t.Fatal("engine state diverged from reference update path")
			}
		})
	}
}

// TestUpdateAllocBudget is the crossbar-level twin of the par alloc tests:
// once the arena is warm, the hot array ops stay within the ≤2 allocs/op
// budget the bench-report gate enforces (output vector and/or dispatch
// closure, nothing else).
func TestUpdateAllocBudget(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	defer par.SetWorkers(0)
	par.SetWorkers(4)
	a := NewArray(256, 256, Ideal(), DefaultConfig(), rngutil.New(21))
	ref := DefaultConfig()
	ref.ReferenceUpdate = true
	b := NewArray(256, 256, Ideal(), ref, rngutil.New(21))
	data := rngutil.New(2)
	x := scriptVec(256, 5, data)
	u := scriptVec(256, 4, data)
	v := scriptVec(256, 3, data)
	for name, tc := range map[string]struct {
		budget float64
		fn     func()
	}{
		"update-engine":    {2, func() { a.Update(0.02, u, v) }},
		"update-reference": {2, func() { b.Update(0.02, u, v) }},
		"forward":          {2, func() { a.Forward(x) }},
		"backward":         {2, func() { a.Backward(u) }},
	} {
		tc.fn() // warm the arena and tile RNG streams
		if got := testing.AllocsPerRun(30, tc.fn); got > tc.budget {
			t.Errorf("%s: %.1f allocs/op, budget %.0f", name, got, tc.budget)
		}
	}
}

// droppingHook is a deterministic fault injector: it suppresses every Nth
// pulse train reaching the write path. Attaching it pins the op order
// (hooked arrays run tiles sequentially), so its observation sequence — and
// therefore the array it produces — must be invariant across worker counts.
type droppingHook struct {
	NopHook
	n     int
	calls int
}

func (h *droppingHook) FilterPulses(_ *Array, _, _, k int, _ bool) int {
	h.calls++
	if h.calls%h.n == 0 {
		return 0
	}
	return k
}

// TestWorkerInvarianceWithFaultHook extends the worker-count invariance
// acceptance to arrays with an active fault hook: the hook's deterministic
// pulse-dropping must see the identical call sequence at every worker
// count, so outputs, state, and the hook's own counter all match.
func TestWorkerInvarianceWithFaultHook(t *testing.T) {
	defer par.SetWorkers(0)
	run := func() ([]tensor.Vector, ArrayState, int) {
		a := NewArray(97, 131, Ideal(), DefaultConfig(), rngutil.New(777))
		h := &droppingHook{n: 5}
		a.SetFaultHook(h)
		data := rngutil.New(3)
		var outs []tensor.Vector
		for step := 0; step < 3; step++ {
			x := scriptVec(131, 6, data)
			outs = append(outs, a.Forward(x))
			a.Update(0.02, scriptVec(97, 4, data), scriptVec(131, 3, data))
			outs = append(outs, a.Forward(x))
		}
		return outs, a.ExportState(), h.calls
	}
	par.SetWorkers(1)
	wantOuts, wantState, wantCalls := run()
	if wantCalls == 0 {
		t.Fatal("fault hook never saw a pulse train")
	}
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		gotOuts, gotState, gotCalls := run()
		if gotCalls != wantCalls {
			t.Fatalf("workers=%d: hook saw %d pulse calls, want %d", w, gotCalls, wantCalls)
		}
		for o := range wantOuts {
			for i := range wantOuts[o] {
				if math.Float64bits(gotOuts[o][i]) != math.Float64bits(wantOuts[o][i]) {
					t.Fatalf("workers=%d: output %d element %d diverged", w, o, i)
				}
			}
		}
		if !reflect.DeepEqual(gotState, wantState) {
			t.Fatalf("workers=%d: state diverged with active fault hook", w)
		}
	}
}

// TestCheckpointMidFastPath pins the deferred-writeback barrier on the
// checkpoint path: exporting immediately after a fast-path Update (while
// the device-state writeback is still pending) must settle every device, so
// a restore into a fresh array continues bit-identically with the original.
func TestCheckpointMidFastPath(t *testing.T) {
	defer par.SetWorkers(0)
	par.SetWorkers(4)
	a := NewArray(97, 131, Ideal(), DefaultConfig(), rngutil.New(42))
	data := rngutil.New(9)
	for step := 0; step < 3; step++ {
		a.Forward(scriptVec(131, 6, data))
		a.Update(0.05, scriptVec(97, 4, data), scriptVec(131, 3, data))
	}
	// The last op was a fast-path update: device writeback is pending here.
	st := a.ExportState()
	for i, d := range st.Devices {
		if math.Float64bits(d.F[0]) != math.Float64bits(st.Mirror[i]) {
			t.Fatalf("exported device %d weight %x disagrees with mirror %x (writeback not settled)",
				i, math.Float64bits(d.F[0]), math.Float64bits(st.Mirror[i]))
		}
	}
	b := NewArray(97, 131, Ideal(), DefaultConfig(), rngutil.New(1))
	if err := b.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	for step := 0; step < 3; step++ {
		x := scriptVec(131, 5, data)
		u := scriptVec(97, 3, data)
		v := scriptVec(131, 4, data)
		ya := a.Forward(x)
		yb := b.Forward(x)
		for i := range ya {
			if math.Float64bits(ya[i]) != math.Float64bits(yb[i]) {
				t.Fatalf("step %d: restored array diverged at output %d", step, i)
			}
		}
		a.Update(0.02, u, v)
		b.Update(0.02, u, v)
	}
	if !reflect.DeepEqual(a.ExportState(), b.ExportState()) {
		t.Fatal("restored array state diverged after continued updates")
	}
}
