package crossbar

import (
	"math"

	"repro/internal/rngutil"
)

// FeFETParams parameterizes a ferroelectric-FET synapse (§II-B.3):
// soft-bounds switching (partial-domain polarization), moderate asymmetry,
// and — its distinguishing limitation — finite endurance: after Endurance
// update pulses the gate stack degrades and the device freezes in place.
type FeFETParams struct {
	Soft      SoftBoundsParams
	Endurance int64 // total pulses before the device stops responding
}

// FeFETModel builds FeFET devices.
type FeFETModel struct {
	P FeFETParams
}

// FeFET returns a device with published-like FeFET behaviour: faster,
// lower-voltage writes than Flash (modelled by a larger step), asymmetric
// updates, and 10⁶-class endurance (§II-B.3 cites 10⁶–10⁹).
func FeFET() *FeFETModel {
	return &FeFETModel{P: FeFETParams{
		Soft: SoftBoundsParams{
			SlopeUp:    0.005,
			SlopeDown:  0.008,
			CycleNoise: 0.2,
			DeviceVar:  0.15,
			WMin:       -1, WMax: 1,
		},
		Endurance: 1_000_000,
	}}
}

// Name implements Model.
func (m *FeFETModel) Name() string { return "fefet" }

// MeanStep implements Model.
func (m *FeFETModel) MeanStep() float64 {
	return 0.5 * (m.P.Soft.SlopeUp*m.P.Soft.WMax + m.P.Soft.SlopeDown*(-m.P.Soft.WMin))
}

// WeightBounds implements Model.
func (m *FeFETModel) WeightBounds() (float64, float64) { return m.P.Soft.WMin, m.P.Soft.WMax }

// New implements Model.
func (m *FeFETModel) New(rng *rngutil.Source) Device {
	inner := (&SoftBoundsModel{P: m.P.Soft}).New(rng).(*softBoundsDevice)
	return &fefetDevice{soft: inner, endurance: m.P.Endurance}
}

type fefetDevice struct {
	soft      *softBoundsDevice
	pulses    int64
	endurance int64
}

func (d *fefetDevice) Weight() float64 { return d.soft.Weight() }

func (d *fefetDevice) Pulse(n int, up bool, rng *rngutil.Source) {
	if d.pulses >= d.endurance {
		return // worn out: stuck at current state
	}
	remaining := d.endurance - d.pulses
	if int64(n) > remaining {
		n = int(remaining)
	}
	d.pulses += int64(n)
	d.soft.Pulse(n, up, rng)
}

// WornOut reports whether the device has exhausted its endurance.
func (d *fefetDevice) WornOut() bool { return d.pulses >= d.endurance }

// ECRAMParams parameterizes an electrochemical RAM device (§II-B.4): the
// intrinsically analog, battery-like synapse with highly symmetric, nearly
// linear updates (~1000 steps), excellent SNR, but a nonzero open-circuit
// potential that relaxes the state toward a rest level over time.
type ECRAMParams struct {
	Linear    LinearStepParams
	RestLevel float64 // open-circuit equilibrium weight
	TauRelax  float64 // relaxation time constant in seconds (0 = none)
}

// ECRAMModel builds ECRAM devices.
type ECRAMModel struct {
	P ECRAMParams
}

// ECRAM returns a device with demonstrated ECRAM characteristics
// (paper ref. [42]): ~1000 symmetric up/down steps across the range and an
// order of magnitude lower cycle noise than RRAM, plus slow open-circuit
// relaxation representing the retention issue of §II-B.4.
func ECRAM() *ECRAMModel {
	return &ECRAMModel{P: ECRAMParams{
		Linear: LinearStepParams{
			DwMin:      0.002, // 1000 steps over [-1, 1]
			Asymmetry:  0.01,
			CycleNoise: 0.03,
			DeviceVar:  0.05,
			WMin:       -1, WMax: 1,
		},
		RestLevel: 0,
		TauRelax:  3600, // seconds
	}}
}

// Name implements Model.
func (m *ECRAMModel) Name() string { return "ecram" }

// MeanStep implements Model.
func (m *ECRAMModel) MeanStep() float64 { return m.P.Linear.DwMin }

// WeightBounds implements Model.
func (m *ECRAMModel) WeightBounds() (float64, float64) {
	return m.P.Linear.WMin, m.P.Linear.WMax
}

// New implements Model.
func (m *ECRAMModel) New(rng *rngutil.Source) Device {
	inner := (&LinearStepModel{P: m.P.Linear}).New(rng).(*linearStepDevice)
	return &ecramDevice{lin: inner, p: m.P}
}

type ecramDevice struct {
	lin *linearStepDevice
	p   ECRAMParams
}

func (d *ecramDevice) Weight() float64 { return d.lin.Weight() }

func (d *ecramDevice) Pulse(n int, up bool, rng *rngutil.Source) { d.lin.Pulse(n, up, rng) }

// Drift implements Drifter: exponential relaxation toward the rest level.
func (d *ecramDevice) Drift(dt float64) {
	if d.p.TauRelax <= 0 {
		return
	}
	f := math.Exp(-dt / d.p.TauRelax)
	d.lin.w = d.p.RestLevel + (d.lin.w-d.p.RestLevel)*f
}
