package crossbar

import "repro/internal/tensor"

// OpKind identifies the array operation a fault hook is intercepting.
type OpKind int

// The three array cycles of Fig. 1, as seen by a FaultHook.
const (
	OpForward OpKind = iota
	OpBackward
	OpUpdate
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpForward:
		return "forward"
	case OpBackward:
		return "backward"
	case OpUpdate:
		return "update"
	}
	return "op?"
}

// FaultHook intercepts array operations so that run-time fault processes —
// devices that fail mid-training, line opens, transient read upsets,
// dropped write pulses, accelerated aging — can be injected over an
// array's lifetime rather than only at construction (§II-B.2; Rasch et
// al. argue non-idealities must act *during* simulation). Package faults
// provides the campaign engine implementation; NopHook is a convenient
// embedding base.
//
// Hooks see vectors after DAC quantization (inputs) and after the full
// read chain (outputs), i.e. at the array periphery where the physical
// fault mechanisms live.
//
// Ordering guarantee: within one array operation the hook is called in a
// fixed sequence — for reads, BeginOp then FilterInput then FilterOutput;
// for updates, BeginOp then zero or more FilterPulses — with no
// interleaving from other operations on the same array, because Array is
// single-writer.
// A hook shared by arrays driven from different goroutines must synchronize
// its own internal state; the per-array call sequence remains well-formed
// either way. See TestFaultHookOrdering.
type FaultHook interface {
	// BeginOp is called once at the start of every Forward/Backward/Update;
	// it is the lifetime clock progressive fault processes tick on.
	BeginOp(a *Array, op OpKind)
	// FilterInput may mutate the input vector in place (e.g. zero the
	// entries of open column lines on a forward pass). The slice is a
	// private copy; mutating it never aliases caller data.
	FilterInput(a *Array, op OpKind, x tensor.Vector)
	// FilterOutput may mutate the output vector in place (read upsets,
	// open row lines).
	FilterOutput(a *Array, op OpKind, y tensor.Vector)
	// FilterPulses reports how many of the k pulses requested for device
	// (row, col) actually land; returning 0 drops the write entirely
	// (write failure). Called for update, programming and maintenance
	// pulses alike — a failing write path affects them all.
	FilterPulses(a *Array, row, col, k int, up bool) int
	// FilterAdvance may rescale the time advanced by AdvanceTime
	// (accelerated-aging campaigns return dt multiplied by a stress
	// factor).
	FilterAdvance(a *Array, dt float64) float64
}

// NopHook is a FaultHook that does nothing; embed it to implement only a
// subset of the interface.
type NopHook struct{}

// BeginOp implements FaultHook.
func (NopHook) BeginOp(*Array, OpKind) {}

// FilterInput implements FaultHook.
func (NopHook) FilterInput(*Array, OpKind, tensor.Vector) {}

// FilterOutput implements FaultHook.
func (NopHook) FilterOutput(*Array, OpKind, tensor.Vector) {}

// FilterPulses implements FaultHook.
func (NopHook) FilterPulses(_ *Array, _, _, k int, _ bool) int { return k }

// FilterAdvance implements FaultHook.
func (NopHook) FilterAdvance(_ *Array, dt float64) float64 { return dt }

// SetFaultHook installs (or, with nil, removes) the array's fault hook.
func (a *Array) SetFaultHook(h FaultHook) { a.hook = h }

// FaultHook returns the installed hook (nil if none).
func (a *Array) FaultHook() FaultHook { return a.hook }

// Freeze marks device (i, j) stuck at its current weight — the run-time
// "device fails mid-life" event of progressive fault campaigns. Frozen
// devices ignore all subsequent pulses but keep contributing their last
// weight to MVMs.
func (a *Array) Freeze(i, j int) {
	idx := i*a.cols + j
	if !a.stuck[idx] {
		a.stuck[idx] = true
		a.stuckCount++
	}
}

// FreezeAt freezes device (i, j) at weight w (clipped to the model bounds)
// — the corrupt-device failure mode, where the post-failure conductance is
// unrelated to the stored weight.
func (a *Array) FreezeAt(i, j int, w float64) {
	lo, hi := a.model.WeightBounds()
	if w < lo {
		w = lo
	} else if w > hi {
		w = hi
	}
	idx := i*a.cols + j
	if !a.stuck[idx] {
		a.stuck[idx] = true
		a.stuckCount++
	}
	a.w.Data[idx] = w
}

// IsStuck reports whether device (i, j) is non-yielding (from fabrication
// or a run-time failure).
func (a *Array) IsStuck(i, j int) bool { return a.stuck[i*a.cols+j] }

// DeviceWeight returns the effective weight of device (i, j) as seen by
// MVMs (for stuck corrupt devices this is the frozen value, not the
// underlying device state).
func (a *Array) DeviceWeight(i, j int) float64 { return a.w.Data[i*a.cols+j] }
