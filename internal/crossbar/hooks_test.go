package crossbar

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// hookEvent is one recorded FaultHook callback.
type hookEvent struct {
	arr   *Array
	op    OpKind
	phase string // "begin", "input", "output", "pulses"
}

// recordingHook logs every callback; it synchronizes its own state so one
// instance can be shared by arrays driven from different goroutines, as the
// FaultHook doc requires.
type recordingHook struct {
	NopHook
	mu     sync.Mutex
	events []hookEvent
}

func (h *recordingHook) log(a *Array, op OpKind, phase string) {
	h.mu.Lock()
	h.events = append(h.events, hookEvent{arr: a, op: op, phase: phase})
	h.mu.Unlock()
}

func (h *recordingHook) BeginOp(a *Array, op OpKind) { h.log(a, op, "begin") }
func (h *recordingHook) FilterInput(a *Array, op OpKind, _ tensor.Vector) {
	h.log(a, op, "input")
}
func (h *recordingHook) FilterOutput(a *Array, op OpKind, _ tensor.Vector) {
	h.log(a, op, "output")
}
func (h *recordingHook) FilterPulses(a *Array, _, _, k int, _ bool) int {
	h.log(a, OpUpdate, "pulses")
	return k
}

// checkWellFormed asserts that a per-array event stream is a concatenation
// of well-formed op sequences: begin → input → output for reads, and
// begin → pulses* for updates.
func checkWellFormed(t *testing.T, events []hookEvent) {
	t.Helper()
	i := 0
	for i < len(events) {
		if events[i].phase != "begin" {
			t.Fatalf("event %d: got phase %q, want op to start with \"begin\"", i, events[i].phase)
		}
		op := events[i].op
		i++
		switch op {
		case OpForward, OpBackward:
			if i >= len(events) || events[i].phase != "input" || events[i].op != op {
				t.Fatalf("event %d: %s op missing FilterInput after BeginOp", i, op)
			}
			i++
			if i >= len(events) || events[i].phase != "output" || events[i].op != op {
				t.Fatalf("event %d: %s op missing FilterOutput after FilterInput", i, op)
			}
			i++
		case OpUpdate:
			for i < len(events) && events[i].phase == "pulses" {
				i++
			}
		}
	}
}

// TestFaultHookOrdering pins the documented single-operation call sequence:
// BeginOp, then FilterInput, then FilterOutput (reads) or FilterPulses
// (updates), with nothing interleaved.
func TestFaultHookOrdering(t *testing.T) {
	rng := rngutil.New(7)
	a := NewArray(4, 3, Ideal(), DefaultConfig(), rng)
	h := &recordingHook{}
	a.SetFaultHook(h)

	x := tensor.Vector{0.2, -0.1, 0.4}
	d := tensor.Vector{0.1, 0.2, -0.3, 0.05}
	a.Forward(x)
	a.Backward(d)
	a.Update(0.1, d, x)

	checkWellFormed(t, h.events)
	wantOps := []OpKind{OpForward, OpBackward, OpUpdate}
	var gotOps []OpKind
	for _, e := range h.events {
		if e.phase == "begin" {
			gotOps = append(gotOps, e.op)
		}
	}
	if len(gotOps) != len(wantOps) {
		t.Fatalf("got %d ops, want %d", len(gotOps), len(wantOps))
	}
	for i := range wantOps {
		if gotOps[i] != wantOps[i] {
			t.Fatalf("op %d = %v, want %v", i, gotOps[i], wantOps[i])
		}
	}
	// The update above has non-zero inputs everywhere, so at least one pulse
	// train must have reached the write path.
	pulses := 0
	for _, e := range h.events {
		if e.phase == "pulses" {
			pulses++
		}
	}
	if pulses == 0 {
		t.Fatal("update issued no FilterPulses callbacks")
	}
}

// TestFaultHookOrderingConcurrent drives two arrays, each from its own
// goroutine (respecting the per-array single-writer contract), through one
// shared synchronized hook, and asserts every per-array subsequence of the
// interleaved log is still well-formed.
func TestFaultHookOrderingConcurrent(t *testing.T) {
	h := &recordingHook{}
	arrays := make([]*Array, 2)
	for i := range arrays {
		arrays[i] = NewArray(6, 5, Ideal(), DefaultConfig(), rngutil.New(uint64(100+i)))
		arrays[i].SetFaultHook(h)
	}

	var wg sync.WaitGroup
	for i, a := range arrays {
		wg.Add(1)
		go func(i int, a *Array) {
			defer wg.Done()
			rng := rngutil.New(uint64(999 + i))
			x := make(tensor.Vector, a.Cols())
			d := make(tensor.Vector, a.Rows())
			for it := 0; it < 200; it++ {
				for j := range x {
					x[j] = rng.Uniform(-1, 1)
				}
				for j := range d {
					d[j] = rng.Uniform(-1, 1)
				}
				a.Forward(x)
				a.Backward(d)
				a.Update(0.05, d, x)
			}
		}(i, a)
	}
	wg.Wait()

	for i, a := range arrays {
		var mine []hookEvent
		for _, e := range h.events {
			if e.arr == a {
				mine = append(mine, e)
			}
		}
		if len(mine) == 0 {
			t.Fatalf("array %d produced no hook events", i)
		}
		t.Run(fmt.Sprintf("array-%d", i), func(t *testing.T) { checkWellFormed(t, mine) })
	}
}

// TestArraySingleWriterGuard documents the fail-fast behaviour: entering
// the array from a hook-free second operation while one is in flight
// panics instead of racing. The reentrancy is simulated with a hook that
// calls back into a guarded method.
type reentrantHook struct{ NopHook }

func (reentrantHook) FilterOutput(a *Array, _ OpKind, _ tensor.Vector) {
	a.Forward(make(tensor.Vector, a.Cols())) // illegal: second op inside the first
}

func TestArraySingleWriterGuard(t *testing.T) {
	a := NewArray(2, 2, Ideal(), DefaultConfig(), rngutil.New(1))
	a.SetFaultHook(reentrantHook{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from reentrant guarded operation")
		}
	}()
	a.Forward(tensor.Vector{1, 0})
}
