package crossbar

import (
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// scriptVec fills a length-n vector from rng, leaving exact zeros every
// zeroEvery elements so the backward kernel's skip path is exercised.
func scriptVec(n, zeroEvery int, rng *rngutil.Source) tensor.Vector {
	v := make(tensor.Vector, n)
	for i := range v {
		if zeroEvery > 0 && i%zeroEvery == 0 {
			continue
		}
		v[i] = rng.NormFloat64()
	}
	return v
}

// runOpScript builds a 97×131 array (multiple of neither the tile span nor
// the 4-row kernel block) and drives a fixed mixed-op script through it,
// returning every op output plus the final exported state.
func runOpScript(model Model, cfg Config) ([]tensor.Vector, ArrayState) {
	a := NewArray(97, 131, model, cfg, rngutil.New(777))
	data := rngutil.New(3)
	var outs []tensor.Vector
	for step := 0; step < 4; step++ {
		x := scriptVec(131, 6, data)
		outs = append(outs, a.Forward(x))
		outs = append(outs, a.Backward(scriptVec(97, 5, data)))
		a.Update(0.02, scriptVec(97, 4, data), scriptVec(131, 3, data))
		a.UpdateDeviceExact(step, step, 3, step%2 == 0)
		outs = append(outs, a.Forward(x))
	}
	a.PulseAll(1, true)
	a.AdvanceTime(5)
	outs = append(outs, a.Forward(scriptVec(131, 0, data)))
	return outs, a.ExportState()
}

// TestArrayWorkerCountInvariance is the tile engine's acceptance property
// on real arrays: the identical op script produces bit-identical outputs,
// counters, device state, and RNG position at every worker count, for both
// update modes, for noiseless and noisy devices (RRAM cycle noise draws one
// normal per pulse from the per-tile streams), and with the full periphery
// (DAC/ADC quantization, read noise, IR drop, stuck devices) enabled.
func TestArrayWorkerCountInvariance(t *testing.T) {
	defer par.SetWorkers(0)
	noisy := DefaultConfig()
	noisy.ReadNoise = 0.02
	noisy.DACBits = 6
	noisy.ADCBits = 8
	noisy.IRDrop = 0.05
	noisy.StuckFraction = 0.05
	expected := DefaultConfig()
	expected.Update = UpdateExpected
	cases := []struct {
		name  string
		model Model
		cfg   Config
	}{
		{"ideal-stochastic", Ideal(), DefaultConfig()},
		{"ideal-expected", Ideal(), expected},
		{"rram-stochastic", RRAM(), DefaultConfig()},
		{"rram-periphery", RRAM(), noisy},
		{"pcm-stochastic", PCM(), DefaultConfig()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			par.SetWorkers(1)
			wantOuts, wantState := runOpScript(tc.model, tc.cfg)
			for _, w := range []int{2, 8} {
				par.SetWorkers(w)
				gotOuts, gotState := runOpScript(tc.model, tc.cfg)
				if len(gotOuts) != len(wantOuts) {
					t.Fatalf("workers=%d: %d outputs, want %d", w, len(gotOuts), len(wantOuts))
				}
				for o := range wantOuts {
					for i := range wantOuts[o] {
						if math.Float64bits(gotOuts[o][i]) != math.Float64bits(wantOuts[o][i]) {
							t.Fatalf("workers=%d: output %d element %d = %x, want %x",
								w, o, i, math.Float64bits(gotOuts[o][i]), math.Float64bits(wantOuts[o][i]))
						}
					}
				}
				if !reflect.DeepEqual(gotState, wantState) {
					t.Fatalf("workers=%d: exported state diverged from serial run", w)
				}
			}
		})
	}
}

// TestForwardBatchBitIdenticalToSequential drives the same inputs through
// one array sequentially and through a twin array (same seed) batched, with
// read noise enabled so the periphery randomness sequence is part of the
// contract, and requires bit-identical outputs and op counters.
func TestForwardBatchBitIdenticalToSequential(t *testing.T) {
	defer par.SetWorkers(0)
	cfg := DefaultConfig()
	cfg.ReadNoise = 0.01
	cfg.DACBits = 7
	seq := NewArray(70, 90, RRAM(), cfg, rngutil.New(55))
	data := rngutil.New(8)
	xs := make([]tensor.Vector, 9)
	for s := range xs {
		xs[s] = scriptVec(90, 4, data)
	}
	var want []tensor.Vector
	for _, x := range xs {
		want = append(want, seq.Forward(x))
	}
	for _, w := range []int{1, 2, 8} {
		par.SetWorkers(w)
		bat := NewArray(70, 90, RRAM(), cfg, rngutil.New(55))
		got := bat.ForwardBatch(xs)
		for s := range want {
			for i := range want[s] {
				if math.Float64bits(got[s][i]) != math.Float64bits(want[s][i]) {
					t.Fatalf("workers=%d: sample %d element %d diverged from sequential", w, s, i)
				}
			}
		}
		if bat.Counts != seq.Counts {
			t.Fatalf("workers=%d: counts %+v, want %+v", w, bat.Counts, seq.Counts)
		}
	}
}

// TestParallelOpsDuringSnapshot hammers tiled forwards and updates on an
// array at workers=8 while another goroutine repeatedly takes ExportState
// snapshots, with ownership handed off through a mutex exactly as
// internal/serve.Replica does. Under -race this proves the engine's tile
// goroutines never outlive the op that spawned them: every tile write
// happens-before the mutex release, so the snapshot can never observe a
// torn op.
func TestParallelOpsDuringSnapshot(t *testing.T) {
	defer par.SetWorkers(0)
	par.SetWorkers(8)
	a := NewArray(128, 96, RRAM(), DefaultConfig(), rngutil.New(12))
	data := rngutil.New(4)
	x := scriptVec(96, 3, data)
	u := scriptVec(128, 4, data)
	v := scriptVec(96, 5, data)

	var mu sync.Mutex
	var stop atomic.Bool
	var snaps atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			mu.Lock()
			st := a.ExportState()
			mu.Unlock()
			if st.Rows != 128 {
				t.Error("snapshot with wrong geometry")
				return
			}
			snaps.Add(1)
		}
	}()
	for i := 0; i < 300; i++ {
		mu.Lock()
		a.Forward(x)
		a.Update(0.01, u, v)
		mu.Unlock()
	}
	stop.Store(true)
	<-done
	if snaps.Load() == 0 {
		t.Fatal("no snapshots completed during the op hammer")
	}
}
