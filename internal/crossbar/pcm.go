package crossbar

import (
	"math"

	"repro/internal/rngutil"
)

// PCMParams parameterizes the phase-change-memory differential pair of
// §II-B.1. Each leg is a unidirectional conductance in [0, GMax] whose
// potentiation step shrinks as it crystallizes (saturates); the signed
// weight is w = G⁺ − G⁻. Depression of the weight is implemented by
// potentiating the negative leg. Both legs drift toward lower conductance
// over time with exponent Nu; a projection liner (§II-B.1, refs. [26],[27])
// divides the effective drift exponent by ProjectionFactor.
type PCMParams struct {
	DG         float64 // nominal conductance increment per pulse
	GMax       float64 // per-leg conductance ceiling
	Gamma      float64 // saturation exponent: step ∝ (1−g/GMax)^Gamma
	CycleNoise float64 // per-pulse multiplicative noise std
	DeviceVar  float64 // device-to-device increment variation std
	Nu         float64 // drift exponent ν: g(t) = g·(1+t/T0)^(−ν)
	T0         float64 // drift reference time in seconds
	Projection float64 // ≥1; liner factor dividing ν (1 = no liner)
}

// PCMModel builds PCM differential-pair devices.
type PCMModel struct {
	P PCMParams
}

// PCM returns a differential-pair model with literature-typical analog PCM
// behaviour: saturating unidirectional SET, ~1 % cycle noise floor, and
// resistance drift with ν ≈ 0.03 (unprojected).
func PCM() *PCMModel {
	return &PCMModel{P: PCMParams{
		DG:         0.004,
		GMax:       1.0,
		Gamma:      2.0,
		CycleNoise: 0.25,
		DeviceVar:  0.15,
		Nu:         0.03,
		T0:         1.0,
		Projection: 1.0,
	}}
}

// PCMProjected returns the same device with a metallic projection liner
// that suppresses drift by roughly an order of magnitude.
func PCMProjected() *PCMModel {
	m := PCM()
	m.P.Projection = 10
	return m
}

// Name implements Model.
func (m *PCMModel) Name() string {
	if m.P.Projection > 1 {
		return "pcm-projected"
	}
	return "pcm"
}

// MeanStep implements Model.
func (m *PCMModel) MeanStep() float64 {
	// Step at g = GMax/2, the mid-programming regime.
	return m.P.DG * math.Pow(0.5, m.P.Gamma)
}

// WeightBounds implements Model.
func (m *PCMModel) WeightBounds() (float64, float64) { return -m.P.GMax, m.P.GMax }

// New implements Model.
func (m *PCMModel) New(rng *rngutil.Source) Device {
	scale := 1.0
	if m.P.DeviceVar > 0 {
		scale = math.Max(0.05, rng.Normal(1, m.P.DeviceVar))
	}
	// Start both legs mid-range so the pair has programming headroom in both
	// directions, as done when arrays are initialized for training.
	return &pcmPair{p: m.P, scale: scale, gp: 0.25 * m.P.GMax, gn: 0.25 * m.P.GMax}
}

type pcmPair struct {
	p      PCMParams
	scale  float64
	gp, gn float64 // G⁺ and G⁻ legs
}

func (d *pcmPair) Weight() float64 { return d.gp - d.gn }

func (d *pcmPair) Pulse(n int, up bool, rng *rngutil.Source) {
	for k := 0; k < n; k++ {
		g := &d.gn
		if up {
			g = &d.gp
		}
		headroom := 1 - *g/d.p.GMax
		if headroom < 0 {
			headroom = 0
		}
		step := d.p.DG * d.scale * math.Pow(headroom, d.p.Gamma)
		if d.p.CycleNoise > 0 {
			step *= 1 + rng.Normal(0, d.p.CycleNoise)
		}
		if step < 0 {
			step = 0
		}
		*g += step
		if *g > d.p.GMax {
			*g = d.p.GMax
		}
	}
}

// Drift implements Drifter: both legs decay multiplicatively; the liner
// (Projection > 1) reduces the effective exponent.
func (d *pcmPair) Drift(dt float64) {
	nu := d.p.Nu / d.p.Projection
	f := math.Pow(1+dt/d.p.T0, -nu)
	d.gp *= f
	d.gn *= f
}

// Reset implements Resetter: the simultaneous RESET that keeps the weight
// difference while restoring programming headroom (§II-B.1). The common
// mode min(G⁺, G⁻) is removed from both legs.
func (d *pcmPair) Reset() {
	common := math.Min(d.gp, d.gn)
	d.gp -= common
	d.gn -= common
}

// Saturation reports how much of the per-leg range is consumed, the
// quantity that forces periodic resets: max(G⁺, G⁻)/GMax.
func (d *pcmPair) Saturation() float64 {
	return math.Max(d.gp, d.gn) / d.p.GMax
}
