package crossbar

import (
	"math"

	"repro/internal/tensor"
)

// ProgramPolicy bounds the closed-loop write-verify-retry programming of
// ProgramVerify. Each round re-verifies every device and re-programs the
// ones still outside Tolerance, doubling the per-device pulse budget each
// retry (exponential pulse-count backoff): devices that converge cheaply
// never pay for the stragglers, while noisy or write-degraded devices get
// geometrically growing budgets instead of a single silent cap.
type ProgramPolicy struct {
	// MaxPulses is the per-device pulse budget of the first round.
	MaxPulses int
	// MaxRetries is the number of additional verify-retry rounds.
	MaxRetries int
	// Tolerance is the acceptable per-device |w − target| in weight units;
	// 0 selects 1.5× the model's mean step.
	Tolerance float64
}

// DefaultProgramPolicy mirrors the historical single-shot budget of 4000
// pulses, split into a cheap first round plus up to three doubling retries
// (1000 + 2000 + 4000 + 8000 worst case, but only for devices that need it).
func DefaultProgramPolicy() ProgramPolicy {
	return ProgramPolicy{MaxPulses: 1000, MaxRetries: 3}
}

// ProgramReport summarizes one ProgramVerify call — the observable that
// fault-campaign harnesses log and assert on.
type ProgramReport struct {
	// Rounds is the number of write-verify rounds run (1 = no retry needed).
	Rounds int
	// Pulses is the total write pulses attempted across all rounds.
	Pulses int
	// Residual is the mean |w − target| over yielding devices after the
	// final round, with the target clipped to the device's representable
	// range: range clipping is a quantization property of the technology,
	// not a programming failure the retry loop could fix.
	Residual float64
	// WorstErr is the worst yielding-device |w − target| after the final
	// round (clipped target).
	WorstErr float64
	// Failed counts yielding devices still outside tolerance after the
	// final round (programming failures), and Stuck the non-yielding
	// devices that write-verify cannot touch at all.
	Failed int
	Stuck  int
}

// Converged reports whether every yielding device finished inside
// tolerance.
func (r ProgramReport) Converged() bool { return r.Failed == 0 }

// ProgramVerify programs target into the array with bounded retries and
// exponential pulse-budget backoff per ProgramPolicy. It is the remediated
// write path of the fault-resilience study: under write failures or
// cycle-to-cycle noise, single-shot Program leaves stragglers that the
// retry rounds recover.
//
// Like Program, it owns the array exclusively for the whole multi-round
// pass (single-writer contract): a background recalibrator must hold the
// same lock its serving readers use, never interleave with them.
func (a *Array) ProgramVerify(target *tensor.Matrix, pol ProgramPolicy) ProgramReport {
	a.acquire()
	defer a.release()
	if target.Rows != a.rows || target.Cols != a.cols {
		panic("crossbar: ProgramVerify shape mismatch")
	}
	if pol.MaxPulses <= 0 {
		pol.MaxPulses = DefaultProgramPolicy().MaxPulses
	}
	tol := pol.Tolerance
	if tol <= 0 {
		tol = 1.5 * a.model.MeanStep()
	}
	rep := ProgramReport{}
	budget := pol.MaxPulses
	for round := 0; ; round++ {
		rep.Rounds++
		progressed := false
		for idx := range a.dev {
			if a.stuck[idx] {
				continue
			}
			if math.Abs(a.w.Data[idx]-a.clampToBounds(target.Data[idx])) <= tol {
				continue
			}
			p, _ := a.programDevice(idx, target.Data[idx], budget)
			rep.Pulses += p
			progressed = true
		}
		if !progressed || round >= pol.MaxRetries {
			break
		}
		if a.worstYieldingErr(target) <= tol {
			break
		}
		budget *= 2 // exponential backoff: stragglers get a bigger budget
	}
	var sum float64
	n := 0
	for idx := range a.dev {
		if a.stuck[idx] {
			rep.Stuck++
			continue
		}
		e := math.Abs(a.w.Data[idx] - a.clampToBounds(target.Data[idx]))
		sum += e
		n++
		if e > rep.WorstErr {
			rep.WorstErr = e
		}
		if e > tol {
			rep.Failed++
		}
	}
	if n > 0 {
		rep.Residual = sum / float64(n)
	}
	return rep
}

func (a *Array) worstYieldingErr(target *tensor.Matrix) float64 {
	worst := 0.0
	for idx := range a.dev {
		if a.stuck[idx] {
			continue
		}
		if e := math.Abs(a.w.Data[idx] - a.clampToBounds(target.Data[idx])); e > worst {
			worst = e
		}
	}
	return worst
}
