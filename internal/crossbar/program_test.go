package crossbar

import (
	"math"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func randomTarget(rows, cols int, scale float64, seed uint64) *tensor.Matrix {
	rng := rngutil.New(seed)
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Uniform(-scale, scale)
	}
	return m
}

func TestProgramReportsPulsesAndResidual(t *testing.T) {
	a := idealArray(6, 5, 61)
	target := randomTarget(6, 5, 0.5, 62)
	pulses, residual := a.Program(target, 2000)
	if pulses <= 0 {
		t.Fatal("programming from scratch must spend pulses")
	}
	if residual > 1.5*Ideal().MeanStep() {
		t.Fatalf("ideal-device residual %v should be within write-verify resolution", residual)
	}
	// A second pass has nothing left to do.
	pulses2, _ := a.Program(target, 2000)
	if pulses2 != 0 {
		t.Fatalf("re-programming a converged array spent %d pulses", pulses2)
	}
}

// Program must converge on noisy, asymmetric RRAM too, just less tightly
// than on the ideal device.
func TestProgramConvergenceRRAMvsIdeal(t *testing.T) {
	tIdeal := randomTarget(8, 8, 0.4, 71)
	ideal := NewArray(8, 8, Ideal(), DefaultConfig(), rngutil.New(72))
	rram := NewArray(8, 8, RRAM(), DefaultConfig(), rngutil.New(72))
	_, rIdeal := ideal.Program(tIdeal, 4000)
	_, rRRAM := rram.Program(tIdeal, 4000)
	if rIdeal > 1.5*Ideal().MeanStep() {
		t.Fatalf("ideal residual %v too large", rIdeal)
	}
	if rRRAM > 5*RRAM().MeanStep() {
		t.Fatalf("rram residual %v did not converge", rRRAM)
	}
	if rRRAM <= rIdeal {
		t.Fatalf("noisy rram (%v) should not beat the ideal device (%v)", rRRAM, rIdeal)
	}
}

// Out-of-range targets must not burn the pulse budget: the controller aims
// at the nearest representable weight.
func TestProgramClampsUnreachableTargets(t *testing.T) {
	a := idealArray(1, 1, 73)
	tgt := tensor.NewMatrix(1, 1)
	tgt.Set(0, 0, 5) // far beyond WMax = 1
	pulses, _ := a.Program(tgt, 10000)
	_, hi := Ideal().WeightBounds()
	need := int(hi/Ideal().MeanStep()) + 2
	if pulses > need {
		t.Fatalf("spent %d pulses on a clipped target; the rail is %d away", pulses, need)
	}
	if math.Abs(a.Weights().At(0, 0)-hi) > 2*Ideal().MeanStep() {
		t.Fatalf("weight %v should sit at the bound %v", a.Weights().At(0, 0), hi)
	}
}

// dropHook drops pulse trains with probability p — a minimal write-failure
// injector for exercising the retry loop without importing package faults.
type dropHook struct {
	NopHook
	rng *rngutil.Source
	p   float64
}

func (h *dropHook) FilterPulses(a *Array, row, col, k int, up bool) int {
	if h.rng.Bernoulli(h.p) {
		return 0
	}
	return k
}

func TestProgramVerifyRetryBeatsSingleShotUnderWriteFailures(t *testing.T) {
	target := randomTarget(6, 6, 0.5, 81)

	single := idealArray(6, 6, 82)
	single.SetFaultHook(&dropHook{rng: rngutil.New(83), p: 0.4})
	_, rSingle := single.Program(target, 150)

	retried := idealArray(6, 6, 82)
	retried.SetFaultHook(&dropHook{rng: rngutil.New(83), p: 0.4})
	rep := retried.ProgramVerify(target, ProgramPolicy{MaxPulses: 150, MaxRetries: 4})

	if rSingle < 10*Ideal().MeanStep() {
		t.Fatalf("single-shot residual %v unexpectedly small; test needs write pressure", rSingle)
	}
	if rep.Residual >= rSingle/2 {
		t.Fatalf("retry residual %v should clearly beat single-shot %v", rep.Residual, rSingle)
	}
	if rep.Rounds < 2 {
		t.Fatalf("expected retry rounds under write failures, got %d", rep.Rounds)
	}
	if !rep.Converged() {
		t.Fatalf("retry should converge: %+v", rep)
	}
}

func TestProgramVerifyCountsStuck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StuckFraction = 0.5
	cfg.StuckValueStd = 0.3
	a := NewArray(10, 10, Ideal(), cfg, rngutil.New(91))
	rep := a.ProgramVerify(randomTarget(10, 10, 0.3, 92), DefaultProgramPolicy())
	if rep.Stuck != a.StuckCount() {
		t.Fatalf("report counts %d stuck, array has %d", rep.Stuck, a.StuckCount())
	}
	if rep.Stuck == 0 {
		t.Fatal("half-stuck array should report stuck devices")
	}
}

// The corrupt-value draw comes from its own RNG stream, so turning
// StuckValueStd on must not move which devices are stuck (the yield draw):
// C3-style experiments stay comparable across the two stuck models.
func TestStuckMaskIndependentOfValueModel(t *testing.T) {
	base := DefaultConfig()
	base.StuckFraction = 0.3
	corrupt := base
	corrupt.StuckValueStd = 0.5
	a := NewArray(12, 12, Ideal(), base, rngutil.New(101))
	b := NewArray(12, 12, Ideal(), corrupt, rngutil.New(101))
	if a.StuckCount() != b.StuckCount() {
		t.Fatalf("stuck counts differ: %d vs %d", a.StuckCount(), b.StuckCount())
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if a.IsStuck(i, j) != b.IsStuck(i, j) {
				t.Fatalf("stuck mask differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestFreezeAtClipsAndFreezes(t *testing.T) {
	a := idealArray(3, 3, 103)
	a.FreezeAt(1, 2, 7)
	if !a.IsStuck(1, 2) {
		t.Fatal("FreezeAt must mark the device stuck")
	}
	_, hi := Ideal().WeightBounds()
	if got := a.DeviceWeight(1, 2); got != hi {
		t.Fatalf("frozen value %v should clip to bound %v", got, hi)
	}
	a.PulseAll(50, false)
	if got := a.DeviceWeight(1, 2); got != hi {
		t.Fatalf("frozen device moved to %v", got)
	}
}
