package crossbar

import (
	"fmt"

	"repro/internal/rngutil"
)

// DeviceState is the complete internal state of one crosspoint device in
// plain serializable data: the technology kind plus kind-specific scalars
// (for a PCM pair that is both legs G⁺ and G⁻ and the per-device increment
// scale, not merely the effective weight — restoring the weight alone would
// lose programming headroom and drift position).
type DeviceState struct {
	Kind string
	F    []float64 // kind-specific floating-point state
	N    []int64   // kind-specific counters (e.g. FeFET endurance consumed)
}

// StateCoder is implemented by devices whose full internal state can be
// exported and restored exactly. Every device model in this package
// implements it; the checkpoint subsystem (package ckpt) depends on it for
// crash-safe training.
type StateCoder interface {
	// ExportState returns a noise-free copy of the device's internal state.
	ExportState() DeviceState
	// ImportState overwrites the device's internal state. It fails when the
	// state was exported from a different device kind or shape.
	ImportState(DeviceState) error
}

// Every device technology in the package is checkpointable.
var (
	_ StateCoder = (*linearStepDevice)(nil)
	_ StateCoder = (*softBoundsDevice)(nil)
	_ StateCoder = (*pcmPair)(nil)
	_ StateCoder = (*fefetDevice)(nil)
	_ StateCoder = (*ecramDevice)(nil)
)

func (st DeviceState) check(kind string, nf, nn int) error {
	if st.Kind != kind {
		return fmt.Errorf("crossbar: device state kind %q, want %q", st.Kind, kind)
	}
	if len(st.F) != nf || len(st.N) != nn {
		return fmt.Errorf("crossbar: %s state shape %d/%d, want %d/%d",
			kind, len(st.F), len(st.N), nf, nn)
	}
	return nil
}

// ExportState implements StateCoder.
func (d *linearStepDevice) ExportState() DeviceState {
	return DeviceState{Kind: "linear-step", F: []float64{d.w, d.scale}}
}

// ImportState implements StateCoder.
func (d *linearStepDevice) ImportState(st DeviceState) error {
	if err := st.check("linear-step", 2, 0); err != nil {
		return err
	}
	d.w, d.scale = st.F[0], st.F[1]
	return nil
}

// ExportState implements StateCoder.
func (d *softBoundsDevice) ExportState() DeviceState {
	return DeviceState{Kind: "soft-bounds", F: []float64{d.w, d.up, d.down}}
}

// ImportState implements StateCoder.
func (d *softBoundsDevice) ImportState(st DeviceState) error {
	if err := st.check("soft-bounds", 3, 0); err != nil {
		return err
	}
	d.w, d.up, d.down = st.F[0], st.F[1], st.F[2]
	return nil
}

// ExportState implements StateCoder: both PCM legs are captured, so a pair
// exported mid-drift or near saturation restores with identical headroom.
func (d *pcmPair) ExportState() DeviceState {
	return DeviceState{Kind: "pcm", F: []float64{d.gp, d.gn, d.scale}}
}

// ImportState implements StateCoder.
func (d *pcmPair) ImportState(st DeviceState) error {
	if err := st.check("pcm", 3, 0); err != nil {
		return err
	}
	d.gp, d.gn, d.scale = st.F[0], st.F[1], st.F[2]
	return nil
}

// ExportState implements StateCoder: the wear counter rides along so a
// restored device keeps its endurance budget.
func (d *fefetDevice) ExportState() DeviceState {
	return DeviceState{
		Kind: "fefet",
		F:    []float64{d.soft.w, d.soft.up, d.soft.down},
		N:    []int64{d.pulses},
	}
}

// ImportState implements StateCoder.
func (d *fefetDevice) ImportState(st DeviceState) error {
	if err := st.check("fefet", 3, 1); err != nil {
		return err
	}
	d.soft.w, d.soft.up, d.soft.down = st.F[0], st.F[1], st.F[2]
	d.pulses = st.N[0]
	return nil
}

// ExportState implements StateCoder.
func (d *ecramDevice) ExportState() DeviceState {
	return DeviceState{Kind: "ecram", F: []float64{d.lin.w, d.lin.scale}}
}

// ImportState implements StateCoder.
func (d *ecramDevice) ImportState(st DeviceState) error {
	if err := st.check("ecram", 2, 0); err != nil {
		return err
	}
	d.lin.w, d.lin.scale = st.F[0], st.F[1]
	return nil
}

// ArrayState is the complete serializable state of an Array: every device's
// internal state, the stuck map, the effective-weight mirror (which carries
// the frozen values of corrupt stuck devices — they are not recoverable
// from device state), the array's private random stream position, and the
// operation counters. Round-tripping through Export/Import is exact: a
// restored array continues bit-identically with the original.
type ArrayState struct {
	Rows, Cols int
	Model      string
	Devices    []DeviceState
	Stuck      []bool
	Mirror     []float64
	RNG        rngutil.State
	Counts     OpCounts
}

// ExportState captures the array's full state, noise-free — unlike Forward
// it reads device state directly rather than through the periphery, the way
// a chip controller addresses raw conductances for checkpointing.
//
// It takes the single-writer busy guard like every other array operation,
// so a snapshot can never observe a torn write: callers serialize it with
// reads the same way (see internal/serve.Replica, and the -race test
// TestSnapshotDuringForwardReads).
func (a *Array) ExportState() ArrayState {
	a.acquire()
	defer a.release()
	a.syncLin() // settle lazily deferred device state before capturing it
	st := ArrayState{
		Rows:    a.rows,
		Cols:    a.cols,
		Model:   a.model.Name(),
		Devices: make([]DeviceState, len(a.dev)),
		Stuck:   append([]bool(nil), a.stuck...),
		Mirror:  append([]float64(nil), a.w.Data...),
		RNG:     a.rng.State(),
		Counts:  a.Counts,
	}
	for i, d := range a.dev {
		st.Devices[i] = d.(StateCoder).ExportState()
	}
	return st
}

// ImportState restores a previously exported state onto this array. The
// array must have been built with the same shape and device model; the
// import is rejected (with no partial mutation of device state) otherwise.
func (a *Array) ImportState(st ArrayState) error {
	a.acquire()
	defer a.release()
	if st.Rows != a.rows || st.Cols != a.cols {
		return fmt.Errorf("crossbar: state is %dx%d, array is %dx%d",
			st.Rows, st.Cols, a.rows, a.cols)
	}
	if st.Model != a.model.Name() {
		return fmt.Errorf("crossbar: state from model %q, array is %q", st.Model, a.model.Name())
	}
	if len(st.Devices) != len(a.dev) || len(st.Stuck) != len(a.dev) || len(st.Mirror) != len(a.dev) {
		return fmt.Errorf("crossbar: state arrays have %d/%d/%d entries, want %d",
			len(st.Devices), len(st.Stuck), len(st.Mirror), len(a.dev))
	}
	// Validate every device state before mutating any, so a corrupt state
	// cannot leave the array half-imported.
	for i, d := range a.dev {
		probe := d.(StateCoder).ExportState()
		if err := st.Devices[i].check(probe.Kind, len(probe.F), len(probe.N)); err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}
	for i, d := range a.dev {
		if err := d.(StateCoder).ImportState(st.Devices[i]); err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}
	copy(a.stuck, st.Stuck)
	a.stuckCount = 0
	for _, s := range a.stuck {
		if s {
			a.stuckCount++
		}
	}
	copy(a.w.Data, st.Mirror)
	a.rng = rngutil.FromState(st.RNG)
	a.Counts = st.Counts
	if a.lin != nil {
		// Devices and mirror were both overwritten consistently, and the
		// restored per-device scales must be visible to the flat kernel.
		a.linDirty = false
		for i, d := range a.lin {
			a.linScale[i] = d.scale
		}
		a.refreshLinUniform()
	}
	return nil
}
