package crossbar

import (
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// allModels returns one instance of every device technology, including the
// drifting PCM pair whose differential legs must round-trip exactly.
func allModels() []Model {
	return []Model{Ideal(), RRAM(), PCM(), PCMProjected(), FeFET(), ECRAM()}
}

// scrambleArray drives an array through a representative slice of its
// lifetime — programming pulses, rank-1 updates, reads (which consume the
// array stream), drift, and a couple of run-time freezes — so exported
// states carry non-trivial device internals (PCM pairs mid-drift, FeFET
// wear counters, frozen corrupt values in the mirror).
func scrambleArray(a *Array, rng *rngutil.Source) {
	u := make(tensor.Vector, a.Rows())
	v := make(tensor.Vector, a.Cols())
	for i := range u {
		u[i] = rng.Uniform(-1, 1)
	}
	for j := range v {
		v[j] = rng.Uniform(-1, 1)
	}
	a.PulseAll(3, true)
	a.Update(0.2, u, v)
	a.Forward(v)
	a.Backward(u)
	a.AdvanceTime(137)
	a.Update(-0.1, u, v)
	a.Freeze(0, 0)
	a.FreezeAt(a.Rows()-1, a.Cols()-1, 0.42)
}

// TestArrayStateRoundTripAllModels is the checkpoint property at the array
// level: export → import into a freshly built twin → re-export must be
// byte-identical, and the twin must continue bit-identically (same reads,
// same update results) for every device technology.
func TestArrayStateRoundTripAllModels(t *testing.T) {
	for _, m := range allModels() {
		t.Run(m.Name(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.ReadNoise = 0.01 // make reads consume the array stream
			a := NewArray(5, 4, m, cfg, rngutil.New(31))
			scrambleArray(a, rngutil.New(77))
			st := a.ExportState()

			// The twin is built from a different seed on purpose: import
			// must overwrite every piece of constructed state.
			b := NewArray(5, 4, m, cfg, rngutil.New(99))
			if err := b.ImportState(st); err != nil {
				t.Fatalf("ImportState: %v", err)
			}
			if got := b.ExportState(); !reflect.DeepEqual(st, got) {
				t.Fatalf("re-export differs from exported state:\n%+v\nvs\n%+v", st, got)
			}

			// Continuation must be bit-identical: same reads, same pulses.
			x := make(tensor.Vector, a.Cols())
			for j := range x {
				x[j] = 0.1 * float64(j+1)
			}
			// Restore a itself too, so both sides continue from st.
			if err := a.ImportState(st); err != nil {
				t.Fatalf("self ImportState: %v", err)
			}
			for step := 0; step < 3; step++ {
				ya, yb := a.Forward(x), b.Forward(x)
				for i := range ya {
					if ya[i] != yb[i] {
						t.Fatalf("step %d: forward diverged: %v vs %v", step, ya, yb)
					}
				}
				a.PulseAll(1, step%2 == 0)
				b.PulseAll(1, step%2 == 0)
			}
			wa, wb := a.Weights(), b.Weights()
			for i := range wa.Data {
				if wa.Data[i] != wb.Data[i] {
					t.Fatal("weights diverged after identical pulse sequences")
				}
			}
		})
	}
}

// TestImportStateRejectsMismatch pins that a state from the wrong shape,
// model, or device kind is rejected without partially mutating the array.
func TestImportStateRejectsMismatch(t *testing.T) {
	a := NewArray(3, 3, PCM(), DefaultConfig(), rngutil.New(1))
	before := a.ExportState()

	wrongShape := NewArray(2, 3, PCM(), DefaultConfig(), rngutil.New(2)).ExportState()
	if err := a.ImportState(wrongShape); err == nil {
		t.Fatal("shape mismatch must be rejected")
	}
	wrongModel := NewArray(3, 3, RRAM(), DefaultConfig(), rngutil.New(3)).ExportState()
	if err := a.ImportState(wrongModel); err == nil {
		t.Fatal("model mismatch must be rejected")
	}
	corrupt := a.ExportState()
	corrupt.Devices[4] = DeviceState{Kind: "pcm", F: []float64{1}} // truncated scalars
	if err := a.ImportState(corrupt); err == nil {
		t.Fatal("malformed device state must be rejected")
	}
	if got := a.ExportState(); !reflect.DeepEqual(before, got) {
		t.Fatal("rejected imports must not mutate the array")
	}
}

// TestSnapshotDuringForwardReads is the satellite -race test: a checkpoint
// snapshot taken concurrently with forward reads, serialized by the same
// caller-side mutex serving uses (the busy guard turns an unserialized
// overlap into a panic), must never observe a torn write — every exported
// state is internally consistent: the mirror of a yielding device equals
// that device's weight.
func TestSnapshotDuringForwardReads(t *testing.T) {
	a := NewArray(8, 8, PCM(), DefaultConfig(), rngutil.New(17))
	var mu sync.Mutex // the Replica-style ownership handoff
	var stop atomic.Bool
	var wg sync.WaitGroup

	x := make(tensor.Vector, a.Cols())
	for j := range x {
		x[j] = 0.25
	}
	u := make(tensor.Vector, a.Rows())
	for i := range u {
		u[i] = 0.5
	}

	wg.Add(1)
	go func() { // writer: updates and reads
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			mu.Lock()
			a.Forward(x)
			a.Update(0.05, u, x)
			mu.Unlock()
		}
	}()

	snapshots := 0
	for i := 0; i < 200; i++ {
		mu.Lock()
		st := a.ExportState()
		mu.Unlock()
		snapshots++
		for idx := range st.Devices {
			if st.Stuck[idx] {
				continue
			}
			var w float64
			switch st.Devices[idx].Kind {
			case "pcm":
				w = st.Devices[idx].F[0] - st.Devices[idx].F[1]
			default:
				w = st.Devices[idx].F[0]
			}
			if math.Abs(w-st.Mirror[idx]) > 1e-15 {
				t.Fatalf("torn snapshot: device %d state %v vs mirror %v", idx, w, st.Mirror[idx])
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if snapshots == 0 {
		t.Fatal("no snapshots taken")
	}
}

// TestSnapshotHonorsBusyGuard pins the fail-fast contract itself: an export
// racing an in-flight operation without caller serialization panics rather
// than returning a torn state.
func TestSnapshotHonorsBusyGuard(t *testing.T) {
	a := NewArray(4, 4, Ideal(), DefaultConfig(), rngutil.New(3))
	a.acquire() // simulate an op in flight
	defer a.release()
	defer func() {
		if recover() == nil {
			t.Fatal("ExportState during an in-flight op must panic (busy guard)")
		}
	}()
	a.ExportState()
}
