package crossbar

import "repro/internal/rngutil"

// PulseResponse reproduces the Fig. 2 measurement protocol on a fresh
// device: cycles repetitions of nUp potentiation pulses followed by nDown
// depression pulses, recording the device weight (read current proxy) after
// every pulse. The returned trace has cycles·(nUp+nDown) points.
func PulseResponse(model Model, cycles, nUp, nDown int, seed uint64) []float64 {
	rng := rngutil.New(seed)
	d := model.New(rng.Child("device"))
	pr := rng.Child("pulses")
	trace := make([]float64, 0, cycles*(nUp+nDown))
	for c := 0; c < cycles; c++ {
		for p := 0; p < nUp; p++ {
			d.Pulse(1, true, pr)
			trace = append(trace, d.Weight())
		}
		for p := 0; p < nDown; p++ {
			d.Pulse(1, false, pr)
			trace = append(trace, d.Weight())
		}
	}
	return trace
}

// FindSymmetryPoint drives a fresh device with alternating single up/down
// pulses until its weight converges, returning the final weight — the
// empirical symmetry point exploited by zero-shifting (§II-B.5).
func FindSymmetryPoint(model Model, iters int, seed uint64) float64 {
	rng := rngutil.New(seed)
	d := model.New(rng.Child("device"))
	pr := rng.Child("pulses")
	for i := 0; i < iters; i++ {
		d.Pulse(1, true, pr)
		d.Pulse(1, false, pr)
	}
	return d.Weight()
}

// MeasureAsymmetry empirically estimates the up/down step imbalance of a
// device model at its symmetry-neutral state: (|Δ⁺| − |Δ⁻|)/(|Δ⁺| + |Δ⁻|),
// averaged over trials fresh devices. 0 means perfectly symmetric.
func MeasureAsymmetry(model Model, trials int, seed uint64) float64 {
	rng := rngutil.New(seed)
	var num, den float64
	for t := 0; t < trials; t++ {
		d := model.New(rng.Child("device"))
		pr := rng.Child("pulses")
		w0 := d.Weight()
		d.Pulse(1, true, pr)
		up := d.Weight() - w0
		w1 := d.Weight()
		d.Pulse(1, false, pr)
		down := w1 - d.Weight()
		num += up - down
		den += up + down
	}
	if den == 0 {
		return 0
	}
	return num / den
}
