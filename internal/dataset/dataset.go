// Package dataset provides the deterministic synthetic workloads used in
// place of the paper's proprietary or external datasets (MNIST, Omniglot,
// production recommendation traces). Difficulty is controlled by explicit
// class-separation and noise parameters so that fp32 baselines can be
// calibrated near the paper's reported baseline accuracies, per the
// substitution policy in DESIGN.md §4.
package dataset

import (
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// Classification is a labelled vector dataset.
type Classification struct {
	X       []tensor.Vector
	Y       []int
	Classes int
	Dim     int
}

// Len returns the number of examples.
func (c *Classification) Len() int { return len(c.X) }

// Shuffle permutes the examples in place using rng.
func (c *Classification) Shuffle(rng *rngutil.Source) {
	rng.Shuffle(len(c.X), func(i, j int) {
		c.X[i], c.X[j] = c.X[j], c.X[i]
		c.Y[i], c.Y[j] = c.Y[j], c.Y[i]
	})
}

// Split partitions the dataset into train/test by fraction (test gets the
// tail). It does not shuffle; call Shuffle first if desired.
func (c *Classification) Split(trainFrac float64) (train, test *Classification) {
	n := int(float64(len(c.X)) * trainFrac)
	train = &Classification{X: c.X[:n], Y: c.Y[:n], Classes: c.Classes, Dim: c.Dim}
	test = &Classification{X: c.X[n:], Y: c.Y[n:], Classes: c.Classes, Dim: c.Dim}
	return train, test
}

// DigitsConfig parameterizes the synthetic MNIST stand-in.
type DigitsConfig struct {
	Classes    int     // number of digit classes (default 10)
	Dim        int     // feature dimension, e.g. 64 for 8×8 "images"
	PerClass   int     // examples per class
	Noise      float64 // within-class Gaussian noise std
	Separation float64 // prototype magnitude; larger = easier
}

// DefaultDigits is a 10-class, 64-dim configuration calibrated so that a
// small fp32 MLP lands in the mid-90s while device non-idealities (coarse
// steps, update asymmetry) produce clearly visible degradation — the
// contrast experiments C1–C3 are about.
func DefaultDigits() DigitsConfig {
	return DigitsConfig{Classes: 10, Dim: 64, PerClass: 220, Noise: 0.8, Separation: 1.0}
}

// Digits generates the synthetic digit-classification dataset. Each class
// has a fixed random prototype in [-sep, sep]^Dim with a sparse active-pixel
// structure (like a digit's stroke support); samples are the prototype plus
// i.i.d. Gaussian noise, clamped to a bounded range like pixel intensities.
func Digits(cfg DigitsConfig, rng *rngutil.Source) *Classification {
	protoRng := rng.Child("prototypes")
	sampleRng := rng.Child("samples")
	protos := make([]tensor.Vector, cfg.Classes)
	for c := range protos {
		p := make(tensor.Vector, cfg.Dim)
		for i := range p {
			// ~40 % of "pixels" active per class, like stroke support.
			if protoRng.Bernoulli(0.4) {
				p[i] = protoRng.Uniform(0.5*cfg.Separation, cfg.Separation)
			}
		}
		protos[c] = p
	}
	ds := &Classification{Classes: cfg.Classes, Dim: cfg.Dim}
	for c := 0; c < cfg.Classes; c++ {
		for k := 0; k < cfg.PerClass; k++ {
			x := protos[c].Clone()
			for i := range x {
				x[i] += sampleRng.Normal(0, cfg.Noise)
			}
			x.Clamp(-1.5*cfg.Separation, 1.5*cfg.Separation)
			ds.X = append(ds.X, x)
			ds.Y = append(ds.Y, c)
		}
	}
	ds.Shuffle(rng.Child("shuffle"))
	return ds
}

// TwoBlobs generates a trivially separable two-class dataset, useful for
// smoke-testing training loops quickly.
func TwoBlobs(n int, dim int, sep float64, rng *rngutil.Source) *Classification {
	ds := &Classification{Classes: 2, Dim: dim}
	for i := 0; i < n; i++ {
		c := i % 2
		x := make(tensor.Vector, dim)
		center := sep
		if c == 0 {
			center = -sep
		}
		for j := range x {
			x[j] = rng.Normal(center, 1)
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, c)
	}
	return ds
}
