package dataset

import (
	"math"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func TestDigitsShapeAndDeterminism(t *testing.T) {
	cfg := DigitsConfig{Classes: 4, Dim: 16, PerClass: 10, Noise: 0.3, Separation: 1}
	a := Digits(cfg, rngutil.New(1))
	b := Digits(cfg, rngutil.New(1))
	if a.Len() != 40 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels not deterministic")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("features not deterministic")
			}
		}
	}
	c := Digits(cfg, rngutil.New(2))
	diff := false
	for i := range a.X {
		if a.Y[i] != c.Y[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestDigitsAllClassesPresent(t *testing.T) {
	ds := Digits(DefaultDigits(), rngutil.New(3))
	seen := make(map[int]int)
	for _, y := range ds.Y {
		if y < 0 || y >= ds.Classes {
			t.Fatalf("label %d out of range", y)
		}
		seen[y]++
	}
	if len(seen) != ds.Classes {
		t.Fatalf("only %d classes present", len(seen))
	}
}

func TestDigitsNearestPrototypeSeparable(t *testing.T) {
	// Classes should be separable by a nearest-class-mean rule well above
	// chance; this is what makes the dataset a meaningful MNIST stand-in.
	ds := Digits(DefaultDigits(), rngutil.New(5))
	means := make([]tensor.Vector, ds.Classes)
	counts := make([]int, ds.Classes)
	for i := range means {
		means[i] = tensor.NewVector(ds.Dim)
	}
	for i, x := range ds.X {
		means[ds.Y[i]].Add(x)
		counts[ds.Y[i]]++
	}
	for c := range means {
		means[c].Scale(1 / float64(counts[c]))
	}
	correct := 0
	for i, x := range ds.X {
		best, bestD := -1, math.Inf(1)
		for c := range means {
			d := tensor.EuclideanDistance(x, means[c])
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == ds.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(ds.Len())
	if acc < 0.85 {
		t.Fatalf("nearest-mean accuracy %v; dataset too hard", acc)
	}
}

func TestSplit(t *testing.T) {
	ds := TwoBlobs(100, 4, 2, rngutil.New(1))
	train, test := ds.Split(0.8)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
}

func TestFewShotUniverse(t *testing.T) {
	u := NewFewShotUniverse(DefaultFewShot(), rngutil.New(7))
	if len(u.Protos) != 200 {
		t.Fatalf("protos = %d", len(u.Protos))
	}
	for _, p := range u.Protos {
		if math.Abs(p.Norm2()-1) > 1e-9 {
			t.Fatal("prototypes must be unit norm")
		}
	}
}

func TestSampleEpisodeShape(t *testing.T) {
	u := NewFewShotUniverse(DefaultFewShot(), rngutil.New(9))
	ep := u.SampleEpisode(5, 1, 3)
	if len(ep.Support) != 5 || len(ep.Query) != 15 {
		t.Fatalf("episode sizes %d/%d", len(ep.Support), len(ep.Query))
	}
	seen := map[int]bool{}
	for _, l := range ep.SupportLabels {
		seen[l] = true
	}
	if len(seen) != 5 {
		t.Fatal("support must contain all 5 classes")
	}
	for _, l := range ep.QueryLabels {
		if l < 0 || l >= 5 {
			t.Fatalf("query label %d out of range", l)
		}
	}
}

func TestEpisodeCosineBaselineIsStrong(t *testing.T) {
	// With default calibration, 1-NN cosine on 5-way 1-shot should exceed 95%.
	u := NewFewShotUniverse(DefaultFewShot(), rngutil.New(11))
	correct, total := 0, 0
	for e := 0; e < 50; e++ {
		ep := u.SampleEpisode(5, 1, 2)
		for qi, q := range ep.Query {
			best, bestSim := -1, -2.0
			for si, s := range ep.Support {
				if sim := tensor.CosineSimilarity(q, s); sim > bestSim {
					best, bestSim = ep.SupportLabels[si], sim
				}
			}
			if best == ep.QueryLabels[qi] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Fatalf("cosine 5w1s baseline = %v, calibration broken", acc)
	}
}

func TestEpisodePanicsWhenTooManyWays(t *testing.T) {
	u := NewFewShotUniverse(FewShotConfig{Classes: 3, Dim: 8, Noise: 0.1}, rngutil.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	u.SampleEpisode(5, 1, 1)
}

func TestCopyTask(t *testing.T) {
	seq := CopyTask(6, 8, rngutil.New(13))
	if len(seq) != 6 {
		t.Fatalf("len = %d", len(seq))
	}
	for _, v := range seq {
		if len(v) != 8 {
			t.Fatal("width wrong")
		}
		for _, b := range v {
			if b != 0 && b != 1 {
				t.Fatalf("non-binary element %v", b)
			}
		}
	}
}

func TestAssocRecall(t *testing.T) {
	task := NewAssocRecall(5, 8, rngutil.New(15))
	if len(task.Keys) != 5 || len(task.Values) != 5 {
		t.Fatal("wrong item count")
	}
	if task.QueryIdx < 0 || task.QueryIdx >= 5 {
		t.Fatal("query index out of range")
	}
}

func TestClickLogShapes(t *testing.T) {
	cfg := DefaultClickLog()
	log := NewClickLog(cfg, 100, rngutil.New(17))
	if len(log.Samples) != 100 {
		t.Fatalf("samples = %d", len(log.Samples))
	}
	for _, s := range log.Samples {
		if len(s.Dense) != cfg.DenseDim {
			t.Fatal("dense dim wrong")
		}
		if len(s.Sparse) != len(cfg.TableSizes) {
			t.Fatal("table count wrong")
		}
		for t2, idxs := range s.Sparse {
			if len(idxs) != cfg.LookupsPer {
				t.Fatal("lookup count wrong")
			}
			for _, ix := range idxs {
				if ix < 0 || ix >= cfg.TableSizes[t2] {
					t.Fatalf("index %d out of table %d range", ix, t2)
				}
			}
		}
		if s.Click != 0 && s.Click != 1 {
			t.Fatal("click must be binary")
		}
	}
}

func TestClickLogZipfSkew(t *testing.T) {
	// Under Zipf, the most popular row should absorb far more than uniform share.
	cfg := DefaultClickLog()
	log := NewClickLog(cfg, 2000, rngutil.New(19))
	trace := log.AccessTrace(0)
	counts := map[int]int{}
	for _, ix := range trace {
		counts[ix]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformShare := float64(len(trace)) / float64(cfg.TableSizes[0])
	if float64(max) < 10*uniformShare {
		t.Fatalf("access pattern not skewed: max=%d uniform=%v", max, uniformShare)
	}
}

func TestClickLogCTRReasonable(t *testing.T) {
	log := NewClickLog(DefaultClickLog(), 2000, rngutil.New(21))
	ctr := log.CTR()
	if ctr < 0.2 || ctr > 0.8 {
		t.Fatalf("CTR = %v, labels degenerate", ctr)
	}
}

func TestGlyphUniverse(t *testing.T) {
	u := NewGlyphUniverse(DefaultGlyphs(), rngutil.New(23))
	if len(u.Templates) != 30 {
		t.Fatalf("templates = %d", len(u.Templates))
	}
	// Templates must have some ink.
	for c, tpl := range u.Templates {
		ink := 0.0
		for _, v := range tpl.Data {
			ink += v
		}
		if ink < 3 {
			t.Fatalf("template %d nearly empty (ink=%v)", c, ink)
		}
	}
	im := u.Sample(0)
	if im.H != 16 || im.W != 16 {
		t.Fatal("sample shape wrong")
	}
	for _, v := range im.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
	}
}

func TestGlyphEpisode(t *testing.T) {
	u := NewGlyphUniverse(DefaultGlyphs(), rngutil.New(25))
	s, sl, q, ql := u.GlyphEpisode(5, 2, 3)
	if len(s) != 10 || len(sl) != 10 || len(q) != 15 || len(ql) != 15 {
		t.Fatalf("episode sizes %d %d %d %d", len(s), len(sl), len(q), len(ql))
	}
}

func TestGlyphSamplesVary(t *testing.T) {
	u := NewGlyphUniverse(DefaultGlyphs(), rngutil.New(27))
	a := u.Sample(3)
	b := u.Sample(3)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two samples of same class should differ (jitter)")
	}
}
