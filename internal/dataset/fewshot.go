package dataset

import (
	"fmt"
	"math"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// FewShotConfig parameterizes the Omniglot-like few-shot universe: a large
// pool of character classes, each a unit prototype in feature space, with
// within-class Gaussian perturbation. The fp32-cosine baseline accuracy on
// 5-way 1-shot is calibrated by Noise (DESIGN.md §4 substitution 2).
type FewShotConfig struct {
	Classes int     // size of the class universe (Omniglot has 1623)
	Dim     int     // feature dimensionality of the embeddings
	Noise   float64 // within-class perturbation std (per dimension)

	// NuisanceDims appends distractor dimensions carrying no class signal,
	// only noise of std NuisanceStd. Raw cosine retrieval degrades with
	// nuisance energy; a trained embedding learns to suppress it — the
	// meta-learning ("learning to learn") setting of §I.
	NuisanceDims int
	NuisanceStd  float64
}

// TotalDim reports the full sample dimensionality including nuisance.
func (c FewShotConfig) TotalDim() int { return c.Dim + c.NuisanceDims }

// DefaultFewShot matches the calibration used by experiments C4/F5: with
// Noise 0.75 and Dim 64, fp32 cosine 5-way 1-shot with a 512-entry memory
// lands near the paper's 99 % band while the 4-bit combined L∞+L2 metric
// drops to the mid-90s, reproducing the §IV-B.1 gap.
func DefaultFewShot() FewShotConfig {
	return FewShotConfig{Classes: 200, Dim: 64, Noise: 0.75}
}

// FewShotUniverse holds the class prototypes from which episodes are drawn.
type FewShotUniverse struct {
	Cfg    FewShotConfig
	Protos []tensor.Vector
	rng    *rngutil.Source
}

// NewFewShotUniverse samples the class prototypes (unit-normalized random
// Gaussian directions, so classes are roughly equidistant in angle).
func NewFewShotUniverse(cfg FewShotConfig, rng *rngutil.Source) *FewShotUniverse {
	u := &FewShotUniverse{Cfg: cfg, rng: rng.Child("episodes")}
	pr := rng.Child("protos")
	for c := 0; c < cfg.Classes; c++ {
		p := make(tensor.Vector, cfg.Dim)
		for i := range p {
			p[i] = pr.NormFloat64()
		}
		norm := p.Norm2()
		if norm > 0 {
			p.Scale(1 / norm)
		}
		u.Protos = append(u.Protos, p)
	}
	return u
}

// Sample draws one example of class c: prototype + noise in the signal
// dimensions, pure noise in any nuisance dimensions.
func (u *FewShotUniverse) Sample(c int, rng *rngutil.Source) tensor.Vector {
	x := make(tensor.Vector, u.Cfg.TotalDim())
	copy(x, u.Protos[c])
	perDim := u.Cfg.Noise / math.Sqrt(float64(u.Cfg.Dim))
	for i := 0; i < u.Cfg.Dim; i++ {
		x[i] += rng.Normal(0, perDim)
	}
	for i := u.Cfg.Dim; i < len(x); i++ {
		x[i] = rng.Normal(0, u.Cfg.NuisanceStd)
	}
	return x
}

// Episode is one N-way K-shot task: a labelled support set and query set.
// Labels are episode-local (0..NWay-1); Classes records which universe
// classes the locals map to.
type Episode struct {
	NWay, KShot   int
	Classes       []int // global class of each episode-local label
	Support       []tensor.Vector
	SupportLabels []int
	Query         []tensor.Vector
	QueryLabels   []int
}

// SampleEpisode draws an N-way K-shot episode with nQuery queries per class.
func (u *FewShotUniverse) SampleEpisode(nWay, kShot, nQuery int) *Episode {
	if nWay > u.Cfg.Classes {
		panic(fmt.Sprintf("dataset: %d-way episode exceeds %d classes", nWay, u.Cfg.Classes))
	}
	perm := u.rng.Perm(u.Cfg.Classes)[:nWay]
	ep := &Episode{NWay: nWay, KShot: kShot, Classes: perm}
	for local, c := range perm {
		for k := 0; k < kShot; k++ {
			ep.Support = append(ep.Support, u.Sample(c, u.rng))
			ep.SupportLabels = append(ep.SupportLabels, local)
		}
		for q := 0; q < nQuery; q++ {
			ep.Query = append(ep.Query, u.Sample(c, u.rng))
			ep.QueryLabels = append(ep.QueryLabels, local)
		}
	}
	return ep
}

// CopyTask generates a batch of sequences for the NTM copy task: seqLen
// random bit-vectors of width bits, to be reproduced after an end marker.
func CopyTask(seqLen, bits int, rng *rngutil.Source) []tensor.Vector {
	seq := make([]tensor.Vector, seqLen)
	for t := range seq {
		v := make(tensor.Vector, bits)
		for i := range v {
			if rng.Bernoulli(0.5) {
				v[i] = 1
			}
		}
		seq[t] = v
	}
	return seq
}

// AssocRecallTask generates item/query pairs for the associative-recall
// MANN benchmark: nItems random (key, value) bit-vector pairs; the task is
// to return the value bound to a queried key.
type AssocRecallTask struct {
	Keys, Values []tensor.Vector
	QueryIdx     int
}

// NewAssocRecall draws an associative-recall instance.
func NewAssocRecall(nItems, bits int, rng *rngutil.Source) *AssocRecallTask {
	t := &AssocRecallTask{QueryIdx: rng.Intn(nItems)}
	for i := 0; i < nItems; i++ {
		t.Keys = append(t.Keys, CopyTask(1, bits, rng)[0])
		t.Values = append(t.Values, CopyTask(1, bits, rng)[0])
	}
	return t
}
