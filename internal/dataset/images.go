package dataset

import (
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// GlyphConfig parameterizes the Omniglot-like glyph image generator used by
// the CNN-embedding few-shot pipeline. Each class is a procedural "glyph":
// a random walk of strokes on a small grid; samples are jittered, shifted
// renderings of the class glyph.
type GlyphConfig struct {
	Classes int
	Size    int     // square image side, e.g. 16
	Strokes int     // stroke segments per glyph
	Jitter  float64 // per-pixel intensity noise
}

// DefaultGlyphs is small enough to train a CNN embedding in seconds.
func DefaultGlyphs() GlyphConfig {
	return GlyphConfig{Classes: 30, Size: 16, Strokes: 6, Jitter: 0.15}
}

// GlyphUniverse holds per-class template images.
type GlyphUniverse struct {
	Cfg       GlyphConfig
	Templates []*nn.Image
	rng       *rngutil.Source
}

// NewGlyphUniverse draws the class templates.
func NewGlyphUniverse(cfg GlyphConfig, rng *rngutil.Source) *GlyphUniverse {
	u := &GlyphUniverse{Cfg: cfg, rng: rng.Child("glyph-samples")}
	tr := rng.Child("glyph-templates")
	for c := 0; c < cfg.Classes; c++ {
		im := nn.NewImage(1, cfg.Size, cfg.Size)
		// Random-walk strokes: start somewhere, take unit steps, stamp pixels.
		y, x := tr.Intn(cfg.Size), tr.Intn(cfg.Size)
		for s := 0; s < cfg.Strokes; s++ {
			length := 2 + tr.Intn(cfg.Size/2)
			dy, dx := tr.Intn(3)-1, tr.Intn(3)-1
			if dy == 0 && dx == 0 {
				dx = 1
			}
			for step := 0; step < length; step++ {
				if y >= 0 && y < cfg.Size && x >= 0 && x < cfg.Size {
					im.Set(0, y, x, 1)
				}
				y += dy
				x += dx
			}
			y = tensor.ClampInt(y, 0, cfg.Size-1)
			x = tensor.ClampInt(x, 0, cfg.Size-1)
		}
		u.Templates = append(u.Templates, im)
	}
	return u
}

// Sample renders one jittered example of class c: the template shifted by
// up to ±1 pixel with additive intensity noise.
func (u *GlyphUniverse) Sample(c int) *nn.Image {
	tpl := u.Templates[c]
	out := nn.NewImage(1, u.Cfg.Size, u.Cfg.Size)
	dy, dx := u.rng.Intn(3)-1, u.rng.Intn(3)-1
	for y := 0; y < u.Cfg.Size; y++ {
		for x := 0; x < u.Cfg.Size; x++ {
			sy, sx := y+dy, x+dx
			v := 0.0
			if sy >= 0 && sy < u.Cfg.Size && sx >= 0 && sx < u.Cfg.Size {
				v = tpl.At(0, sy, sx)
			}
			v += u.rng.Normal(0, u.Cfg.Jitter)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			out.Set(0, y, x, v)
		}
	}
	return out
}

// GlyphEpisode draws an N-way K-shot episode of glyph images with nQuery
// queries per class; labels are episode-local.
func (u *GlyphUniverse) GlyphEpisode(nWay, kShot, nQuery int) (support []*nn.Image, supportLabels []int, query []*nn.Image, queryLabels []int) {
	perm := u.rng.Perm(u.Cfg.Classes)[:nWay]
	for local, c := range perm {
		for k := 0; k < kShot; k++ {
			support = append(support, u.Sample(c))
			supportLabels = append(supportLabels, local)
		}
		for q := 0; q < nQuery; q++ {
			query = append(query, u.Sample(c))
			queryLabels = append(queryLabels, local)
		}
	}
	return support, supportLabels, query, queryLabels
}
