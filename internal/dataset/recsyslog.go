package dataset

import (
	"math/rand"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// ClickSample is one recommendation-inference input: dense user/context
// features plus one multi-hot sparse index list per embedding table, and the
// ground-truth click label.
type ClickSample struct {
	Dense  tensor.Vector
	Sparse [][]int // Sparse[t] = indices into table t
	Click  float64 // 0 or 1
}

// ClickLogConfig parameterizes the synthetic recommendation trace. Sparse
// indices follow a Zipf distribution, matching the heavy-tailed item
// popularity that makes embedding-access locality studies meaningful (§V-B).
type ClickLogConfig struct {
	DenseDim    int
	TableSizes  []int   // rows per embedding table
	LookupsPer  int     // multi-hot: indices per table per sample
	ZipfS       float64 // Zipf exponent (>1); larger = more skewed
	LatentNoise float64 // label noise
}

// DefaultClickLog mirrors a small DLRM-like input spec.
func DefaultClickLog() ClickLogConfig {
	return ClickLogConfig{
		DenseDim:    16,
		TableSizes:  []int{10000, 5000, 2000, 500},
		LookupsPer:  4,
		ZipfS:       1.2,
		LatentNoise: 0.2,
	}
}

// ClickLog generates n samples. Labels come from a hidden linear "taste"
// model over dense features and latent item factors, so a trained model has
// real signal to find.
type ClickLog struct {
	Cfg     ClickLogConfig
	Samples []ClickSample
}

// NewClickLog generates the synthetic trace.
func NewClickLog(cfg ClickLogConfig, n int, rng *rngutil.Source) *ClickLog {
	denseRng := rng.Child("dense")
	labelRng := rng.Child("label")
	// Hidden per-item affinity: each table row carries a scalar latent factor.
	latents := make([][]float64, len(cfg.TableSizes))
	lr := rng.Child("latent")
	for t, sz := range cfg.TableSizes {
		latents[t] = make([]float64, sz)
		for i := range latents[t] {
			latents[t][i] = lr.NormFloat64()
		}
	}
	denseTaste := make(tensor.Vector, cfg.DenseDim)
	for i := range denseTaste {
		denseTaste[i] = lr.NormFloat64()
	}

	zipfs := make([]*rand.Zipf, len(cfg.TableSizes))
	for t, sz := range cfg.TableSizes {
		zipfs[t] = rand.NewZipf(rng.Child("zipf").Rand, cfg.ZipfS, 1, uint64(sz-1))
	}

	log := &ClickLog{Cfg: cfg}
	for i := 0; i < n; i++ {
		s := ClickSample{Dense: make(tensor.Vector, cfg.DenseDim)}
		for j := range s.Dense {
			s.Dense[j] = denseRng.NormFloat64()
		}
		score := tensor.Dot(s.Dense, denseTaste) / float64(cfg.DenseDim)
		for t := range cfg.TableSizes {
			idxs := make([]int, cfg.LookupsPer)
			for k := range idxs {
				idxs[k] = int(zipfs[t].Uint64())
				score += latents[t][idxs[k]] / float64(len(cfg.TableSizes)*cfg.LookupsPer)
			}
			s.Sparse = append(s.Sparse, idxs)
		}
		score += labelRng.Normal(0, cfg.LatentNoise)
		if score > 0 {
			s.Click = 1
		}
		log.Samples = append(log.Samples, s)
	}
	return log
}

// AccessTrace flattens the log into the per-table sequence of row indices
// touched, for cache-locality simulation.
func (l *ClickLog) AccessTrace(table int) []int {
	var trace []int
	for _, s := range l.Samples {
		trace = append(trace, s.Sparse[table]...)
	}
	return trace
}

// CTR returns the fraction of positive labels in the log.
func (l *ClickLog) CTR() float64 {
	if len(l.Samples) == 0 {
		return 0
	}
	pos := 0.0
	for _, s := range l.Samples {
		pos += s.Click
	}
	return pos / float64(len(l.Samples))
}
