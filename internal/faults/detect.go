package faults

import (
	"math"

	"repro/internal/crossbar"
	"repro/internal/tensor"
)

// Diagnosis is the result of one checksum-probe detection pass.
type Diagnosis struct {
	// SuspectCols are the physical columns whose checksum deviated.
	SuspectCols []int
	// Dead lists the (row, col) crosspoints confirmed outside tolerance
	// by a column probe.
	Dead [][2]int
	// DeadPerCol counts dead crosspoints per physical column.
	DeadPerCol []int
	// Reads is the number of array read operations the pass consumed.
	Reads int
}

// DeadCount reports the total confirmed-dead crosspoints.
func (d Diagnosis) DeadCount() int { return len(d.Dead) }

// Detect locates dead crosspoints on a against the intended weight matrix
// want using the read path only — the way a chip controller must, since it
// cannot inspect device state directly. It is a two-level scheme:
//
//  1. Checksum pass: two transposed reads (the all-ones and alternating
//     ±1 probes — the role a dedicated checksum row plays in hardware)
//     yield every column's weight sum; columns whose sums deviate from
//     the target's are suspects. Two probes with different sign patterns
//     keep opposite-signed faults in one column from cancelling silently.
//  2. Column probes: each suspect column j is read out exactly with a
//     one-hot forward MVM e_j, and crosspoints with |w − want| > cellTol
//     are flagged dead.
//
// Cost is 2 + |suspects| reads instead of the cols reads of a full scan.
// The pass runs through any installed fault hook, so transient read upsets
// can cause (harmless) false positives — exactly as on silicon.
func Detect(a *crossbar.Array, want *tensor.Matrix, cellTol float64) Diagnosis {
	rows, cols := a.Rows(), a.Cols()
	if want.Rows != rows || want.Cols != cols {
		panic("faults: Detect shape mismatch")
	}
	if cellTol <= 0 {
		cellTol = 1.5 * a.Model().MeanStep()
	}
	// Compare against the *achievable* target: programming can only reach
	// the device's weight bounds, so a saturated weight is not a fault and
	// relocating it would waste a spare on an error remapping cannot fix.
	lo, hi := a.Model().WeightBounds()
	aim := func(w float64) float64 {
		if w < lo {
			return lo
		}
		if w > hi {
			return hi
		}
		return w
	}
	diag := Diagnosis{DeadPerCol: make([]int, cols)}

	// Level 1: checksum reads. Column sums come out of the transposed MVM.
	ones := make(tensor.Vector, rows)
	alt := make(tensor.Vector, rows)
	for i := range ones {
		ones[i] = 1
		if i%2 == 0 {
			alt[i] = 1
		} else {
			alt[i] = -1
		}
	}
	gotOnes := a.Backward(ones)
	gotAlt := a.Backward(alt)
	diag.Reads += 2
	colTol := 3 * cellTol * math.Sqrt(float64(rows))
	for j := 0; j < cols; j++ {
		var wantOnes, wantAlt float64
		for i := 0; i < rows; i++ {
			w := aim(want.At(i, j))
			wantOnes += w
			if i%2 == 0 {
				wantAlt += w
			} else {
				wantAlt -= w
			}
		}
		if math.Abs(gotOnes[j]-wantOnes) > colTol || math.Abs(gotAlt[j]-wantAlt) > colTol {
			diag.SuspectCols = append(diag.SuspectCols, j)
		}
	}

	// Level 2: one-hot probes of the suspect columns.
	probe := make(tensor.Vector, cols)
	cellThresh := 2 * cellTol
	for _, j := range diag.SuspectCols {
		probe[j] = 1
		col := a.Forward(probe)
		probe[j] = 0
		diag.Reads++
		for i := 0; i < rows; i++ {
			if math.Abs(col[i]-aim(want.At(i, j))) > cellThresh {
				diag.Dead = append(diag.Dead, [2]int{i, j})
				diag.DeadPerCol[j]++
			}
		}
	}
	return diag
}
