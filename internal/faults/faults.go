// Package faults is the fault-injection and resilience subsystem of the
// repository (§II-B.2 of the paper: imperfect yield, drift, and asymmetric
// updates drive accuracy loss on analog crossbars). It provides
//
//   - a deterministic, seeded fault *campaign engine* (Engine) that injects
//     faults over an array's lifetime — progressive stuck-at failures,
//     drift bursts, row/column line opens, transient read upsets, and
//     write failures — through the crossbar.FaultHook run-time interface
//     (Rasch et al.: non-idealities must act during simulation, not only
//     at initialization);
//
//   - *remediation machinery*: checksum-probe fault detection (Detect),
//     redundant-column remapping that relocates weights off detected-dead
//     crosspoints (RemappedArray), and — together with
//     crossbar.ProgramVerify — closed-loop write-verify with bounded
//     retry and exponential pulse-budget backoff (Kazemi et al.:
//     detection plus remapping recovers most fault-induced loss);
//
//   - graceful-degradation sweeps (AnalogSweep, XMannSweep, TCAMSweep)
//     that measure accuracy and remediation cost as fault rate rises, for
//     the analog-training, X-MANN differentiable-memory, and TCAM
//     few-shot pipelines. cmd/fault-campaign and experiment R1 drive
//     them.
//
// Everything is seeded: the same Plan and seed reproduce the same fault
// history bit-for-bit.
package faults

import (
	"repro/internal/crossbar"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// Plan parameterizes the fault processes of a campaign. All rates are per
// array operation (one Forward, Backward, or Update — the lifetime clock
// of the array) or per element, as noted. The zero Plan injects nothing.
type Plan struct {
	// StuckPerOp is the expected number of new stuck-at device failures
	// per array op (progressive yield loss: devices fail mid-training).
	StuckPerOp float64
	// StuckValueStd: new failures freeze at a random weight drawn from
	// N(0, StuckValueStd) — the corrupt-device model; 0 freezes devices
	// at their current weight.
	StuckValueStd float64
	// ReadUpset is the per-output-element probability of a transient
	// upset on each read; upset elements get N(0, UpsetMag) added.
	ReadUpset float64
	UpsetMag  float64
	// WriteFail is the probability that a device's pulse train is dropped
	// entirely (write failure); the write-verify loop observes no change
	// and retries, consuming budget.
	WriteFail float64
	// LineOpenPerOp is the probability per op that one additional row or
	// column line opens (interconnect break): an open row reads zero and
	// accepts no updates; an open column passes no input.
	LineOpenPerOp float64
	// DriftBurstEvery > 0 applies a DriftBurstDt-second drift burst every
	// that many ops (temperature excursions, retention events).
	DriftBurstEvery int
	DriftBurstDt    float64
	// DriftScale multiplies all time advanced through AdvanceTime
	// (accelerated aging); 0 means 1 (no scaling).
	DriftScale float64
}

// Stats counts the fault events a campaign has injected so far.
type Stats struct {
	Ops            int64 // array operations observed
	StuckInjected  int64 // progressive device failures
	LineOpens      int64 // row/column opens
	Upsets         int64 // transient read upsets
	DroppedWrites  int64 // pulse trains lost to write failures
	DriftBursts    int64
	MaskedReads    int64 // output elements zeroed by open lines
	BlockedUpdates int64 // pulse trains blocked by open lines
}

// arrayState is the per-array campaign state (which lines have opened).
type arrayState struct {
	openRows map[int]bool
	openCols map[int]bool
}

// Engine is a seeded fault campaign bound to one or more arrays via
// crossbar.SetFaultHook. One engine may drive several arrays (a session's
// layers); the fault history is deterministic in (Plan, seed, call order).
//
// An Engine is not safe for concurrent use: it shares one random stream and
// one state map across its arrays. Arrays served from different goroutines
// (replicas in internal/serve) must each get their own engine — Clone
// hands out identical-schedule engines for exactly that purpose.
type Engine struct {
	plan  Plan
	seed  uint64 // derived stream seed, kept so Clone/Reset can rewind it
	rng   *rngutil.Source
	stats Stats
	state map[*crossbar.Array]*arrayState
	order []*crossbar.Array // attach order, for positional state export
}

// NewEngine builds a campaign engine for plan, seeded by rng.
func NewEngine(plan Plan, rng *rngutil.Source) *Engine {
	r := rng.Child("campaign")
	return &Engine{plan: plan, seed: r.Seed(), rng: r, state: map[*crossbar.Array]*arrayState{}}
}

// Clone returns a fresh engine with the same plan and the same random
// stream rewound to the start: driven through an identical op sequence, the
// clone injects a bit-identical fault history. Policy sweeps use it to
// replay one campaign schedule across arms (and to give each concurrently
// served replica its own engine) without rebuilding the campaign by hand.
// The clone tracks no arrays until attached.
func (e *Engine) Clone() *Engine {
	return &Engine{plan: e.plan, seed: e.seed, rng: rngutil.New(e.seed), state: map[*crossbar.Array]*arrayState{}}
}

// Reset rewinds the engine to its initial state: zeroed stats, forgotten
// line-open state, and the random stream rewound to the start, so the same
// schedule replays without drift in the random stream. Faults already
// frozen into attached arrays are not undone — rebuild the arrays (the
// sweep arms do) to replay a campaign from scratch.
func (e *Engine) Reset() {
	e.rng = rngutil.New(e.seed)
	e.stats = Stats{}
	e.state = map[*crossbar.Array]*arrayState{}
	e.order = nil
}

// Attach installs the engine as a's fault hook and begins tracking it.
func (e *Engine) Attach(a *crossbar.Array) {
	e.stateOf(a)
	a.SetFaultHook(e)
}

// Stats returns a snapshot of the injected-fault counters.
func (e *Engine) Stats() Stats { return e.stats }

// Plan returns the engine's fault plan.
func (e *Engine) Plan() Plan { return e.plan }

// OpenLines reports how many row and column lines have opened on a.
func (e *Engine) OpenLines(a *crossbar.Array) (rows, cols int) {
	s := e.stateOf(a)
	return len(s.openRows), len(s.openCols)
}

func (e *Engine) stateOf(a *crossbar.Array) *arrayState {
	s, ok := e.state[a]
	if !ok {
		s = &arrayState{openRows: map[int]bool{}, openCols: map[int]bool{}}
		e.state[a] = s
		e.order = append(e.order, a)
	}
	return s
}

// BeginOp implements crossbar.FaultHook: the lifetime clock. Progressive
// stuck-at failures, line opens, and drift bursts land here.
func (e *Engine) BeginOp(a *crossbar.Array, op crossbar.OpKind) {
	e.stats.Ops++
	// Progressive stuck-at: expected StuckPerOp failures this op.
	for p := e.plan.StuckPerOp; p > 0; p-- {
		if p < 1 && !e.rng.Bernoulli(p) {
			break
		}
		e.freezeRandom(a)
	}
	if e.plan.LineOpenPerOp > 0 && e.rng.Bernoulli(e.plan.LineOpenPerOp) {
		e.openRandomLine(a)
	}
	if e.plan.DriftBurstEvery > 0 && e.stats.Ops%int64(e.plan.DriftBurstEvery) == 0 {
		e.stats.DriftBursts++
		a.AdvanceTime(e.plan.DriftBurstDt)
	}
}

// freezeRandom sticks one currently yielding device; with a full array it
// gives up after a bounded number of draws (keeping rng consumption
// finite and deterministic).
func (e *Engine) freezeRandom(a *crossbar.Array) {
	rows, cols := a.Rows(), a.Cols()
	for try := 0; try < 64; try++ {
		i, j := e.rng.Intn(rows), e.rng.Intn(cols)
		if a.IsStuck(i, j) {
			continue
		}
		if e.plan.StuckValueStd > 0 {
			a.FreezeAt(i, j, e.rng.Normal(0, e.plan.StuckValueStd))
		} else {
			a.Freeze(i, j)
		}
		e.stats.StuckInjected++
		return
	}
}

func (e *Engine) openRandomLine(a *crossbar.Array) {
	s := e.stateOf(a)
	n := e.rng.Intn(a.Rows() + a.Cols())
	if n < a.Rows() {
		s.openRows[n] = true
	} else {
		s.openCols[n-a.Rows()] = true
	}
	e.stats.LineOpens++
}

// FilterInput implements crossbar.FaultHook: open input lines pass nothing.
// On a forward pass inputs ride the columns; on a backward pass, the rows.
func (e *Engine) FilterInput(a *crossbar.Array, op crossbar.OpKind, x tensor.Vector) {
	s := e.stateOf(a)
	switch op {
	case crossbar.OpForward:
		for j := range x {
			if s.openCols[j] {
				x[j] = 0
			}
		}
	case crossbar.OpBackward:
		for i := range x {
			if s.openRows[i] {
				x[i] = 0
			}
		}
	}
}

// FilterOutput implements crossbar.FaultHook: open output lines read zero,
// and transient upsets perturb surviving outputs.
func (e *Engine) FilterOutput(a *crossbar.Array, op crossbar.OpKind, y tensor.Vector) {
	s := e.stateOf(a)
	for i := range y {
		open := false
		switch op {
		case crossbar.OpForward:
			open = s.openRows[i]
		case crossbar.OpBackward:
			open = s.openCols[i]
		}
		if open {
			y[i] = 0
			e.stats.MaskedReads++
			continue
		}
		if e.plan.ReadUpset > 0 && e.rng.Bernoulli(e.plan.ReadUpset) {
			y[i] += e.rng.Normal(0, e.plan.UpsetMag)
			e.stats.Upsets++
		}
	}
}

// FilterPulses implements crossbar.FaultHook: open lines block the write
// path, and write failures drop whole pulse trains.
func (e *Engine) FilterPulses(a *crossbar.Array, row, col, k int, up bool) int {
	s := e.stateOf(a)
	if s.openRows[row] || s.openCols[col] {
		e.stats.BlockedUpdates++
		return 0
	}
	if e.plan.WriteFail > 0 && e.rng.Bernoulli(e.plan.WriteFail) {
		e.stats.DroppedWrites++
		return 0
	}
	return k
}

// FilterAdvance implements crossbar.FaultHook: accelerated aging.
func (e *Engine) FilterAdvance(a *crossbar.Array, dt float64) float64 {
	if e.plan.DriftScale > 0 {
		return dt * e.plan.DriftScale
	}
	return dt
}

var _ crossbar.FaultHook = (*Engine)(nil)
