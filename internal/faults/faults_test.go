package faults

import (
	"math"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// The remapped array must satisfy the network-facing Mat contract.
var _ nn.Mat = (*RemappedArray)(nil)

func idealArray(rows, cols int, seed uint64) *crossbar.Array {
	return crossbar.NewArray(rows, cols, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(seed))
}

func randomTarget(rows, cols int, scale float64, seed uint64) *tensor.Matrix {
	rng := rngutil.New(seed)
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Uniform(-scale, scale)
	}
	return m
}

// runCampaign drives one array through a fixed op sequence under an engine
// and returns the final weights and stats.
func runCampaign(seed uint64, plan Plan, ops int) (*tensor.Matrix, Stats) {
	a := idealArray(8, 8, seed)
	e := NewEngine(plan, rngutil.New(seed+1))
	e.Attach(a)
	x := make(tensor.Vector, 8)
	for i := range x {
		x[i] = 0.5
	}
	for op := 0; op < ops; op++ {
		a.Forward(x)
		a.Update(0.01, x, x)
	}
	return a.Weights(), e.Stats()
}

func TestEngineDeterministic(t *testing.T) {
	plan := Plan{StuckPerOp: 0.3, StuckValueStd: 0.4, ReadUpset: 0.1, UpsetMag: 0.2,
		WriteFail: 0.2, LineOpenPerOp: 0.05}
	w1, s1 := runCampaign(7, plan, 40)
	w2, s2 := runCampaign(7, plan, 40)
	if s1 != s2 {
		t.Fatalf("stats differ across identical campaigns: %+v vs %+v", s1, s2)
	}
	for i := range w1.Data {
		if w1.Data[i] != w2.Data[i] {
			t.Fatal("weights differ across identical campaigns")
		}
	}
}

func TestProgressiveStuckInjection(t *testing.T) {
	a := idealArray(16, 16, 11)
	e := NewEngine(Plan{StuckPerOp: 1, StuckValueStd: 0.5}, rngutil.New(12))
	e.Attach(a)
	before := a.StuckCount()
	x := make(tensor.Vector, 16)
	const ops = 50
	for op := 0; op < ops; op++ {
		a.Forward(x)
	}
	st := e.Stats()
	if st.Ops != ops {
		t.Fatalf("ops = %d, want %d", st.Ops, ops)
	}
	if st.StuckInjected != ops {
		t.Fatalf("expected one failure per op on a mostly-healthy array, got %d", st.StuckInjected)
	}
	if got := a.StuckCount() - before; int64(got) != st.StuckInjected {
		t.Fatalf("array gained %d stuck devices, engine claims %d", got, st.StuckInjected)
	}
}

func TestReadUpsetsPerturbOutputs(t *testing.T) {
	clean := idealArray(4, 4, 21)
	noisy := idealArray(4, 4, 21)
	e := NewEngine(Plan{ReadUpset: 1, UpsetMag: 0.5}, rngutil.New(22))
	e.Attach(noisy)
	x := tensor.Vector{1, 1, 1, 1}
	yc := clean.Forward(x)
	yn := noisy.Forward(x)
	same := true
	for i := range yc {
		if yc[i] != yn[i] {
			same = false
		}
	}
	if same {
		t.Fatal("certain upsets left every output untouched")
	}
	if e.Stats().Upsets == 0 {
		t.Fatal("upset counter did not move")
	}
}

func TestLineOpensMaskEverything(t *testing.T) {
	a := idealArray(4, 4, 31)
	a.Program(randomTarget(4, 4, 0.5, 32), 2000)
	e := NewEngine(Plan{LineOpenPerOp: 1}, rngutil.New(33))
	e.Attach(a)
	x := tensor.Vector{1, 1, 1, 1}
	for op := 0; op < 200; op++ {
		a.Forward(x)
	}
	rows, cols := e.OpenLines(a)
	if rows != 4 || cols != 4 {
		t.Fatalf("after 200 certain opens all 8 lines should be open, got %d rows %d cols", rows, cols)
	}
	y := a.Forward(x)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("output %d = %v through fully-open array", i, v)
		}
	}
}

func TestDriftBurstsFireOnSchedule(t *testing.T) {
	a := crossbar.NewArray(4, 4, crossbar.PCM(), crossbar.DefaultConfig(), rngutil.New(41))
	a.PulseAll(100, true)
	w := a.Weights().At(0, 0)
	e := NewEngine(Plan{DriftBurstEvery: 10, DriftBurstDt: 1e5}, rngutil.New(42))
	e.Attach(a)
	x := make(tensor.Vector, 4)
	for op := 0; op < 30; op++ {
		a.Forward(x)
	}
	if got := e.Stats().DriftBursts; got != 3 {
		t.Fatalf("30 ops at every-10 should fire 3 bursts, got %d", got)
	}
	if a.Weights().At(0, 0) >= w {
		t.Fatal("drift bursts should decay PCM weights")
	}
}

func TestWriteFailuresDropPulses(t *testing.T) {
	a := idealArray(6, 6, 51)
	e := NewEngine(Plan{WriteFail: 0.5}, rngutil.New(52))
	e.Attach(a)
	rep := a.ProgramVerify(randomTarget(6, 6, 0.5, 53), crossbar.ProgramPolicy{MaxPulses: 200, MaxRetries: 5})
	if e.Stats().DroppedWrites == 0 {
		t.Fatal("write failures never fired")
	}
	if !rep.Converged() {
		t.Fatalf("retry should out-persist 50%% write drops: %+v", rep)
	}
}

func TestDetectFindsPlantedDeadCells(t *testing.T) {
	a := idealArray(8, 6, 61)
	target := randomTarget(8, 6, 0.3, 62)
	a.Program(target, 4000)
	// Plant two dead crosspoints far from their targets.
	a.FreezeAt(2, 3, target.At(2, 3)+0.7)
	a.FreezeAt(5, 1, target.At(5, 1)-0.6)
	diag := Detect(a, target, 0)
	if diag.DeadCount() != 2 {
		t.Fatalf("planted 2 dead cells, detected %d: %+v", diag.DeadCount(), diag.Dead)
	}
	found := map[[2]int]bool{}
	for _, d := range diag.Dead {
		found[d] = true
	}
	if !found[[2]int{2, 3}] || !found[[2]int{5, 1}] {
		t.Fatalf("wrong cells flagged: %+v", diag.Dead)
	}
	if want := 2 + len(diag.SuspectCols); diag.Reads != want {
		t.Fatalf("detection cost %d reads, want %d", diag.Reads, want)
	}
	if len(diag.SuspectCols) != 2 {
		t.Fatalf("noiseless checksums should suspect exactly the 2 faulty columns, got %v", diag.SuspectCols)
	}
}

func TestDetectIgnoresSaturatedTargets(t *testing.T) {
	a := idealArray(6, 4, 63)
	target := randomTarget(6, 4, 0.3, 64)
	target.Set(1, 2, 3) // beyond WMax: representation error, not a fault
	a.Program(target, 4000)
	diag := Detect(a, target, 0)
	if diag.DeadCount() != 0 {
		t.Fatalf("saturated target flagged as dead: %+v", diag.Dead)
	}
}

func TestRepairRecoversMVMFidelity(t *testing.T) {
	r := NewRemappedArray(8, 6, 2, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(71))
	target := randomTarget(8, 6, 0.3, 72)
	r.Program(target, crossbar.DefaultProgramPolicy())
	// Kill three crosspoints of physical column 4.
	for _, i := range []int{1, 3, 6} {
		r.Arr.FreezeAt(i, 4, target.At(i, 4)+0.8)
	}
	x := make(tensor.Vector, 6)
	x.Fill(1)
	want := target.MatVec(x)
	errBefore := maxAbsDiff(r.Forward(x), want)

	rep := r.Repair(target, 0, 2000)
	if rep.Remapped != 1 {
		t.Fatalf("expected exactly the damaged column to move, moved %d", rep.Remapped)
	}
	if rep.SparesLeft != 1 {
		t.Fatalf("spares left = %d, want 1", rep.SparesLeft)
	}
	errAfter := maxAbsDiff(r.Forward(x), want)
	if errAfter >= errBefore/4 {
		t.Fatalf("repair barely helped: error %v -> %v", errBefore, errAfter)
	}
	if res := r.Residual(target); res > 2*crossbar.Ideal().MeanStep() {
		t.Fatalf("logical residual %v after repair", res)
	}
}

func TestRepairKeepsColumnWhenSparesAreWorse(t *testing.T) {
	r := NewRemappedArray(6, 3, 1, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(81))
	target := randomTarget(6, 3, 0.3, 82)
	r.Program(target, crossbar.DefaultProgramPolicy())
	// One dead cell in a logical column; the only spare is deader.
	r.Arr.FreezeAt(2, 1, target.At(2, 1)+0.8)
	for _, i := range []int{0, 1, 4} {
		r.Arr.FreezeAt(i, 3, 0.9) // spare column 3
	}
	rep := r.Repair(target, 0, 2000)
	if rep.Remapped != 0 {
		t.Fatalf("moved a column onto a worse spare (%d remapped)", rep.Remapped)
	}
	if rep.SparesLeft != 1 {
		t.Fatal("spare should not be consumed")
	}
}

func TestRemappedArrayGeometryAndGating(t *testing.T) {
	r := NewRemappedArray(4, 3, 2, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(91))
	if r.Rows() != 4 || r.Cols() != 3 {
		t.Fatalf("logical geometry %dx%d", r.Rows(), r.Cols())
	}
	if r.Arr.Cols() != 5 {
		t.Fatalf("physical columns %d, want 5", r.Arr.Cols())
	}
	if r.SparesLeft() != 2 {
		t.Fatalf("spares %d", r.SparesLeft())
	}
	target := randomTarget(4, 3, 0.3, 92)
	r.Program(target, crossbar.DefaultProgramPolicy())
	x := tensor.Vector{0.5, -0.5, 1}
	y := r.Forward(x)
	if len(y) != 4 {
		t.Fatalf("forward length %d", len(y))
	}
	if got := maxAbsDiff(y, target.MatVec(x)); got > 0.05 {
		t.Fatalf("logical MVM off by %v", got)
	}
	d := tensor.Vector{1, -1, 0.5, 0}
	if got := len(r.Backward(d)); got != 3 {
		t.Fatalf("backward length %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size forward should panic")
		}
	}()
	r.Forward(tensor.Vector{1, 2, 3, 4, 5})
}

func TestFaultyTCAMRedundancyHarmlessAtZeroRate(t *testing.T) {
	rng1 := rngutil.New(101)
	rng2 := rngutil.New(101)
	r1 := NewFaultyLSHRetriever(16, 32, 20, 0, 1, rng1)
	r2 := NewFaultyLSHRetriever(16, 32, 40, 0, 2, rng2)
	vr := rngutil.New(102)
	var stored []tensor.Vector
	for c := 0; c < 5; c++ {
		v := make(tensor.Vector, 16)
		for i := range v {
			v[i] = vr.Uniform(-1, 1)
		}
		stored = append(stored, v)
		r1.Store(v, c)
		r2.Store(v, c)
	}
	if r1.RowsUsed() != 5 || r2.RowsUsed() != 10 {
		t.Fatalf("rows used %d / %d", r1.RowsUsed(), r2.RowsUsed())
	}
	for c, v := range stored {
		if g1, g2 := r1.Classify(v), r2.Classify(v); g1 != g2 || g1 != c {
			t.Fatalf("fault-free retrievers disagree on class %d: %d vs %d", c, g1, g2)
		}
	}
}

func TestFaultyTCAMFaultMapSurvivesReset(t *testing.T) {
	r := NewFaultyLSHRetriever(8, 16, 10, 0.5, 1, rngutil.New(111))
	before := append([]tcamCellFault(nil), r.faultMap...)
	stuck := 0
	for _, f := range before {
		if f != cellHealthy {
			stuck++
		}
	}
	if stuck == 0 {
		t.Fatal("half-rate fault map is empty")
	}
	r.Store(make(tensor.Vector, 8), 0)
	r.Reset()
	if r.RowsUsed() != 0 {
		t.Fatal("reset should clear contents")
	}
	for i, f := range r.faultMap {
		if f != before[i] {
			t.Fatal("reset healed the chip")
		}
	}
}

// The nested-fault-set property: for a fixed seed the stuck-cell set at a
// lower rate is a subset of the set at a higher rate.
func TestFaultyTCAMNestedFaultSets(t *testing.T) {
	lowR := NewFaultyLSHRetriever(8, 16, 20, 0.1, 1, rngutil.New(121))
	highR := NewFaultyLSHRetriever(8, 16, 20, 0.3, 1, rngutil.New(121))
	lowCount := 0
	for i, f := range lowR.faultMap {
		if f != cellHealthy {
			lowCount++
			if highR.faultMap[i] == cellHealthy {
				t.Fatalf("cell %d stuck at rate 0.1 but healthy at 0.3", i)
			}
		}
	}
	if lowCount == 0 {
		t.Fatal("no faults at rate 0.1")
	}
}

func TestTCAMSweepShape(t *testing.T) {
	cfg := DefaultSweepConfig(42, true)
	cfg.Rates = []float64{0, 0.2}
	points := TCAMSweep(cfg)
	if len(points) != len(cfg.Rates)*len(cfg.Redundancies) {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Fatalf("accuracy %v out of range", p.Accuracy)
		}
	}
	// Paired episodes: redundancy is exactly harmless on a fault-free chip.
	if points[0].Accuracy != points[1].Accuracy {
		t.Fatalf("rate-0 accuracies differ across redundancy: %v vs %v",
			points[0].Accuracy, points[1].Accuracy)
	}
}

func TestXMannSweepRetryDominatesAtZeroRate(t *testing.T) {
	cfg := DefaultSweepConfig(42, true)
	cfg.Rates = []float64{0}
	cfg.Placements = 1
	points := XMannSweep(cfg)
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	none, retry := points[0], points[1]
	if none.Strategy != "none" || retry.Strategy != "retry" {
		t.Fatalf("unexpected strategies %q %q", none.Strategy, retry.Strategy)
	}
	if retry.Accuracy < none.Accuracy {
		t.Fatalf("retry agreement %v below single-shot %v", retry.Accuracy, none.Accuracy)
	}
	if retry.Residual >= none.Residual {
		t.Fatalf("retry soft-read error %v should beat %v", retry.Residual, none.Residual)
	}
}

func maxAbsDiff(a, b tensor.Vector) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
