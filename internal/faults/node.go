package faults

import (
	"sort"

	"repro/internal/rngutil"
)

// NodePlan extends the device-level fault vocabulary of this package one
// level up the stack: whole-node failures in a serving fleet. Where Plan
// describes what goes wrong inside one crossbar array, NodePlan describes
// what goes wrong around it — the node crashes and restarts, runs slow,
// gets cut off by a network partition, or talks over a lossy link. The
// zero NodePlan injects nothing. Everything is seeded: the same plan,
// fleet size, and seed reproduce the same node-fault history bit-for-bit.
type NodePlan struct {
	// CrashesPerNode is the expected number of crash events per node over
	// the schedule window; crash times are drawn uniformly over the window.
	// A crashed node drops all in-flight work and loses any state the
	// layer above chooses not to persist.
	CrashesPerNode float64
	// RestartAfter is how long (seconds) a crashed node stays down before
	// it restarts. 0 means crashed nodes never come back.
	RestartAfter float64

	// SlowNodes picks that many distinct nodes (drawn without replacement)
	// to suffer degraded-service windows: every SlowEvery seconds the node
	// runs SlowFor seconds at SlowFactor× its normal service time.
	SlowNodes  int
	SlowFactor float64
	SlowEvery  float64
	SlowFor    float64

	// PartitionFor > 0 opens a network partition at PartitionAt lasting
	// PartitionFor seconds: MinorityNodes nodes (drawn without
	// replacement) land in the minority cell, unreachable from the
	// majority cell (where the router lives) until the partition heals.
	PartitionAt   float64
	PartitionFor  float64
	MinorityNodes int

	// MsgLoss is the per-message loss probability on otherwise healthy
	// links; MsgDelayMult multiplies the base network delay of every
	// message (a congested fabric).
	MsgLoss      float64
	MsgDelayMult float64
}

// Kinds of node-level fault events, in schedule vocabulary order.
const (
	NodeCrash = iota
	NodeRestart
	NodeSlowStart
	NodeSlowEnd
	PartitionStart
	PartitionHeal
)

// NodeEvent is one entry of a node-fault schedule. Node identifies the
// affected node for crash/restart/slow events; Nodes lists the minority
// cell for PartitionStart (empty for PartitionHeal).
type NodeEvent struct {
	T     float64
	Kind  int
	Node  int
	Nodes []int
}

// Schedule expands the plan into a deterministic, time-sorted event list
// for a fleet of n nodes over a window of duration seconds. The draw order
// is fixed (crashes, then slow windows, then the partition), so the same
// (plan, n, duration, rng) always yields the identical schedule.
func (p NodePlan) Schedule(n int, duration float64, rng *rngutil.Source) []NodeEvent {
	var evs []NodeEvent
	r := rng.Child("node-faults")

	if p.CrashesPerNode > 0 {
		cr := r.Child("crash")
		for node := 0; node < n; node++ {
			crashes := int(p.CrashesPerNode)
			if cr.Bernoulli(p.CrashesPerNode - float64(crashes)) {
				crashes++
			}
			for c := 0; c < crashes; c++ {
				at := cr.Uniform(0, duration)
				evs = append(evs, NodeEvent{T: at, Kind: NodeCrash, Node: node})
				if p.RestartAfter > 0 {
					evs = append(evs, NodeEvent{T: at + p.RestartAfter, Kind: NodeRestart, Node: node})
				}
			}
		}
	}

	if p.SlowNodes > 0 && p.SlowFactor > 1 && p.SlowEvery > 0 && p.SlowFor > 0 {
		sr := r.Child("slow")
		for _, node := range pickDistinct(sr, n, p.SlowNodes) {
			// Stagger each victim's first window by a draw so slow spells
			// don't all align across victims.
			start := sr.Uniform(0, p.SlowEvery)
			for t := start; t < duration; t += p.SlowEvery {
				evs = append(evs, NodeEvent{T: t, Kind: NodeSlowStart, Node: node})
				evs = append(evs, NodeEvent{T: t + p.SlowFor, Kind: NodeSlowEnd, Node: node})
			}
		}
	}

	if p.PartitionFor > 0 && p.MinorityNodes > 0 {
		pr := r.Child("partition")
		minority := pickDistinct(pr, n, p.MinorityNodes)
		evs = append(evs, NodeEvent{T: p.PartitionAt, Kind: PartitionStart, Nodes: minority})
		evs = append(evs, NodeEvent{T: p.PartitionAt + p.PartitionFor, Kind: PartitionHeal})
	}

	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	return evs
}

// pickDistinct draws k distinct node IDs from [0, n) in a deterministic
// order (sorted ascending for schedule stability).
func pickDistinct(rng *rngutil.Source, n, k int) []int {
	if k >= n {
		k = n
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Fisher–Yates prefix shuffle: the first k entries are the sample.
	for i := 0; i < k; i++ {
		j := i + int(rng.Uniform(0, float64(n-i)))
		if j >= n {
			j = n - 1
		}
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := append([]int(nil), perm[:k]...)
	sort.Ints(out)
	return out
}
