package faults

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/rngutil"
)

// TestNodeScheduleDeterministic pins that the same (plan, fleet, seed)
// expands to the identical node-fault schedule.
func TestNodeScheduleDeterministic(t *testing.T) {
	plan := NodePlan{
		CrashesPerNode: 0.8,
		RestartAfter:   0.5,
		SlowNodes:      2,
		SlowFactor:     8,
		SlowEvery:      1.0,
		SlowFor:        0.4,
		PartitionAt:    1.5,
		PartitionFor:   1.0,
		MinorityNodes:  2,
	}
	a := plan.Schedule(6, 5.0, rngutil.New(7))
	b := plan.Schedule(6, 5.0, rngutil.New(7))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two schedules from the same seed differ")
	}
	if len(a) == 0 {
		t.Fatal("plan injected nothing")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].T < a[j].T }) {
		t.Fatal("schedule is not time-sorted")
	}
}

// TestNodeScheduleShape checks the structural invariants: every crash has
// a matching restart RestartAfter later, the partition opens and heals
// with a distinct minority of the requested size, and the zero plan is
// empty.
func TestNodeScheduleShape(t *testing.T) {
	if evs := (NodePlan{}).Schedule(4, 3.0, rngutil.New(1)); len(evs) != 0 {
		t.Fatalf("zero plan produced %d events", len(evs))
	}
	plan := NodePlan{
		CrashesPerNode: 1.0,
		RestartAfter:   0.25,
		PartitionAt:    1.0,
		PartitionFor:   0.5,
		MinorityNodes:  2,
	}
	evs := plan.Schedule(5, 4.0, rngutil.New(3))
	crashAt := map[int][]float64{}
	restartAt := map[int][]float64{}
	var minority []int
	heals := 0
	for _, e := range evs {
		switch e.Kind {
		case NodeCrash:
			crashAt[e.Node] = append(crashAt[e.Node], e.T)
		case NodeRestart:
			restartAt[e.Node] = append(restartAt[e.Node], e.T)
		case PartitionStart:
			minority = e.Nodes
		case PartitionHeal:
			heals++
		}
	}
	for node, crashes := range crashAt {
		restarts := restartAt[node]
		if len(restarts) != len(crashes) {
			t.Fatalf("node %d: %d crashes but %d restarts", node, len(crashes), len(restarts))
		}
		for i := range crashes {
			if got := restarts[i] - crashes[i]; got != plan.RestartAfter {
				t.Fatalf("node %d restart %d came %.3fs after the crash, want %.3f", node, i, got, plan.RestartAfter)
			}
		}
	}
	if len(minority) != plan.MinorityNodes || heals != 1 {
		t.Fatalf("partition: minority %v (want %d nodes), %d heals (want 1)", minority, plan.MinorityNodes, heals)
	}
	seen := map[int]bool{}
	for _, n := range minority {
		if seen[n] || n < 0 || n >= 5 {
			t.Fatalf("minority cell %v has duplicates or out-of-range nodes", minority)
		}
		seen[n] = true
	}
}
