package faults

import "repro/internal/obs"

// ExportObs folds the engine's injected-fault counters into reg. Fault
// histories are deterministic in (Plan, seed, call order), and sweep arms
// run sequentially, so these counters are stable: they appear in the
// deterministic dump and must be byte-identical at any worker count.
func (e *Engine) ExportObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := e.Stats()
	add := func(name, help string, v int64) {
		reg.Counter(name, help).Add(v)
	}
	add("faults_ops_total", "array operations observed by fault engines", st.Ops)
	add("faults_stuck_injected_total", "progressive stuck-at device failures injected", st.StuckInjected)
	add("faults_line_opens_total", "row/column line opens injected", st.LineOpens)
	add("faults_upsets_total", "transient read upsets injected", st.Upsets)
	add("faults_dropped_writes_total", "pulse trains lost to write failures", st.DroppedWrites)
	add("faults_drift_bursts_total", "drift bursts applied", st.DriftBursts)
	add("faults_masked_reads_total", "output elements zeroed by open lines", st.MaskedReads)
	add("faults_blocked_updates_total", "pulse trains blocked by open lines", st.BlockedUpdates)
}

// exportSweepCell folds one sweep cell's remediation-cost accounting
// (accumulated across placements, pre-averaging) into reg.
func exportSweepCell(reg *obs.Registry, pt Point) {
	if reg == nil {
		return
	}
	reg.Counter("faults_sweep_cells_total", "sweep (rate, strategy) cells measured").Inc()
	reg.Counter("faults_program_pulses_total", "write pulses spent programming across sweep cells").
		Add(int64(pt.AvgPulses + 0.5))
	reg.Counter("faults_detect_reads_total", "detection reads consumed across sweep cells").
		Add(int64(pt.AvgReads + 0.5))
	reg.Counter("faults_remapped_columns_total", "logical columns relocated by remapping across sweep cells").
		Add(int64(pt.AvgRemapped + 0.5))
}
