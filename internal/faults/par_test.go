package faults

import (
	"math"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func parVec(n, zeroEvery int, rng *rngutil.Source) tensor.Vector {
	v := make(tensor.Vector, n)
	for i := range v {
		if zeroEvery > 0 && i%zeroEvery == 0 {
			continue
		}
		v[i] = rng.NormFloat64()
	}
	return v
}

// runHookedScript drives a fixed op mix through an engine-hooked remapped
// array — forwards, backwards, both pulse-update flavours, and a repair
// pass — and returns every output plus the physical array state.
func runHookedScript() ([]tensor.Vector, crossbar.ArrayState) {
	plan := Plan{StuckPerOp: 0.3, ReadUpset: 0.01, UpsetMag: 0.5, WriteFail: 0.05}
	eng := NewEngine(plan, rngutil.New(31))
	arr := NewRemappedArray(80, 70, 6, crossbar.RRAM(), crossbar.DefaultConfig(), rngutil.New(17))
	eng.Attach(arr.Arr)
	data := rngutil.New(5)
	target := tensor.NewMatrix(80, 70)
	for i := range target.Data {
		target.Data[i] = data.Uniform(-0.4, 0.4)
	}
	var outs []tensor.Vector
	for step := 0; step < 3; step++ {
		x := parVec(70, 6, data)
		outs = append(outs, arr.Forward(x))
		outs = append(outs, arr.Backward(parVec(80, 5, data)))
		arr.Update(0.02, parVec(80, 4, data), parVec(70, 3, data))
		outs = append(outs, arr.Forward(x))
	}
	arr.Repair(target, 0, 50)
	outs = append(outs, arr.Forward(parVec(70, 0, data)))
	return outs, arr.Arr.ExportState()
}

// TestHookedOpsWorkerCountInvariance pins determinism under an active
// fault-injection hook: with an Engine attached, tiled updates run
// sequentially in tile order and batched reads degrade to the per-sample
// stream, so the whole fault campaign — stuck failures, read upsets,
// dropped writes, repair — must be bit-identical at every worker count.
func TestHookedOpsWorkerCountInvariance(t *testing.T) {
	defer par.SetWorkers(0)
	par.SetWorkers(1)
	wantOuts, wantState := runHookedScript()
	for _, w := range []int{4, 8} {
		par.SetWorkers(w)
		gotOuts, gotState := runHookedScript()
		for o := range wantOuts {
			for i := range wantOuts[o] {
				if math.Float64bits(gotOuts[o][i]) != math.Float64bits(wantOuts[o][i]) {
					t.Fatalf("workers=%d: output %d element %d diverged under active hook", w, o, i)
				}
			}
		}
		if len(gotState.Devices) != len(wantState.Devices) {
			t.Fatalf("workers=%d: device state size diverged", w)
		}
		for i := range wantState.Mirror {
			if math.Float64bits(gotState.Mirror[i]) != math.Float64bits(wantState.Mirror[i]) {
				t.Fatalf("workers=%d: weight mirror diverged at %d under active hook", w, i)
			}
		}
		if gotState.RNG != wantState.RNG || gotState.Counts != wantState.Counts {
			t.Fatalf("workers=%d: rng/counters diverged under active hook", w)
		}
	}
}

// TestRemappedForwardBatchMatchesSequential verifies the logical batched
// read: scatter to physical geometry plus the tiled batch grid must equal
// per-sample Forward calls bit for bit, with and without relocated columns.
func TestRemappedForwardBatchMatchesSequential(t *testing.T) {
	defer par.SetWorkers(0)
	data := rngutil.New(9)
	xs := make([]tensor.Vector, 7)
	for s := range xs {
		xs[s] = parVec(40, 3, data)
	}
	build := func() *RemappedArray {
		cfg := crossbar.DefaultConfig()
		cfg.StuckFraction = 0.1
		return NewRemappedArray(30, 40, 4, crossbar.Ideal(), cfg, rngutil.New(23))
	}
	seq := build()
	var want []tensor.Vector
	for _, x := range xs {
		want = append(want, seq.Forward(x))
	}
	for _, w := range []int{1, 8} {
		par.SetWorkers(w)
		bat := build()
		for s, y := range bat.ForwardBatch(xs) {
			for i := range y {
				if math.Float64bits(y[i]) != math.Float64bits(want[s][i]) {
					t.Fatalf("workers=%d: batched sample %d element %d diverged", w, s, i)
				}
			}
		}
	}
}
