package faults

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/crossbar"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// RemappedArray is a crossbar with redundant (spare) columns and a
// logical→physical column map: the remapping remediation of Kazemi et al.
// A logical C-column weight matrix lives on a physical array of C + S
// columns; when detection finds a physical column riddled with dead
// crosspoints, the logical column is relocated onto the healthiest spare
// and the abandoned column's input line is simply never driven again.
//
// It implements nn.Mat with the *logical* geometry, so networks train and
// infer through it unchanged.
type RemappedArray struct {
	// Arr is the physical array (rows × logical+spare columns).
	Arr     *crossbar.Array
	logical int
	colOf   []int // logical column -> physical column
	spares  []int // unused physical columns, ascending
	// Remapped counts relocations performed so far.
	Remapped int
}

// NewRemappedArray builds a rows×logicalCols logical array backed by a
// physical crossbar with spareCols redundant columns.
func NewRemappedArray(rows, logicalCols, spareCols int, model crossbar.Model, cfg crossbar.Config, rng *rngutil.Source) *RemappedArray {
	if spareCols < 0 {
		panic("faults: negative spare count")
	}
	r := &RemappedArray{
		Arr:     crossbar.NewArray(rows, logicalCols+spareCols, model, cfg, rng),
		logical: logicalCols,
		colOf:   make([]int, logicalCols),
	}
	for j := range r.colOf {
		r.colOf[j] = j
	}
	for s := 0; s < spareCols; s++ {
		r.spares = append(r.spares, logicalCols+s)
	}
	return r
}

// Rows implements nn.Mat.
func (r *RemappedArray) Rows() int { return r.Arr.Rows() }

// Cols implements nn.Mat (the logical width).
func (r *RemappedArray) Cols() int { return r.logical }

// SparesLeft reports the remaining redundant columns.
func (r *RemappedArray) SparesLeft() int { return len(r.spares) }

// OpOrderPinned implements nn.OrderPinned by delegating to the physical
// array (pinned while a fault hook is attached).
func (r *RemappedArray) OpOrderPinned() bool { return r.Arr.OpOrderPinned() }

// mapIn scatters a logical column vector onto the physical columns;
// retired and unused spare columns receive zero input, so whatever their
// stuck devices hold can never reach an output.
func (r *RemappedArray) mapIn(v tensor.Vector) tensor.Vector {
	vp := make(tensor.Vector, r.Arr.Cols())
	for j, p := range r.colOf {
		vp[p] = v[j]
	}
	return vp
}

// Forward implements nn.Mat.
func (r *RemappedArray) Forward(x tensor.Vector) tensor.Vector {
	if len(x) != r.logical {
		panic(fmt.Sprintf("faults: Forward expects %d inputs, got %d", r.logical, len(x)))
	}
	return r.Arr.Forward(r.mapIn(x))
}

// ForwardBatch implements nn.BatchMat: the whole batch is scattered to
// physical geometry and executed as one tile grid under a single periphery
// acquisition. Bit-identical to sequential Forward calls.
func (r *RemappedArray) ForwardBatch(xs []tensor.Vector) []tensor.Vector {
	xp := make([]tensor.Vector, len(xs))
	for s, x := range xs {
		if len(x) != r.logical {
			panic(fmt.Sprintf("faults: ForwardBatch expects %d inputs, got %d (sample %d)", r.logical, len(x), s))
		}
		xp[s] = r.mapIn(x)
	}
	return r.Arr.ForwardBatch(xp)
}

// Backward implements nn.Mat: the physical transposed MVM followed by a
// gather of the mapped columns.
func (r *RemappedArray) Backward(d tensor.Vector) tensor.Vector {
	yp := r.Arr.Backward(d)
	y := make(tensor.Vector, r.logical)
	for j, p := range r.colOf {
		y[j] = yp[p]
	}
	return y
}

// Update implements nn.Mat.
func (r *RemappedArray) Update(scale float64, u, v tensor.Vector) {
	if len(v) != r.logical {
		panic(fmt.Sprintf("faults: Update expects %d column entries, got %d", r.logical, len(v)))
	}
	r.Arr.Update(scale, u, r.mapIn(v))
}

// PhysTarget expands a logical target matrix to physical geometry under
// the current mapping (unmapped columns target zero).
func (r *RemappedArray) PhysTarget(target *tensor.Matrix) *tensor.Matrix {
	if target.Rows != r.Arr.Rows() || target.Cols != r.logical {
		panic("faults: PhysTarget shape mismatch")
	}
	phys := tensor.NewMatrix(r.Arr.Rows(), r.Arr.Cols())
	for i := 0; i < target.Rows; i++ {
		for j, p := range r.colOf {
			phys.Set(i, p, target.At(i, j))
		}
	}
	return phys
}

// Program write-verifies the logical target into the mapped columns with
// retry and backoff.
func (r *RemappedArray) Program(target *tensor.Matrix, pol crossbar.ProgramPolicy) crossbar.ProgramReport {
	return r.Arr.ProgramVerify(r.PhysTarget(target), pol)
}

// Weights returns the logical weight view.
func (r *RemappedArray) Weights() *tensor.Matrix {
	phys := r.Arr.Weights()
	out := tensor.NewMatrix(r.Arr.Rows(), r.logical)
	for i := 0; i < out.Rows; i++ {
		for j, p := range r.colOf {
			out.Set(i, j, phys.At(i, p))
		}
	}
	return out
}

// Residual reports the mean |weight − target| over mapped, yielding
// crosspoints — the logical programming error, excluding retired columns.
// As in crossbar.ProgramReport, the target is clipped to the device range.
func (r *RemappedArray) Residual(target *tensor.Matrix) float64 {
	lo, hi := r.Arr.Model().WeightBounds()
	var sum float64
	n := 0
	for i := 0; i < r.Arr.Rows(); i++ {
		for j, p := range r.colOf {
			if r.Arr.IsStuck(i, p) {
				continue
			}
			want := math.Min(hi, math.Max(lo, target.At(i, j)))
			sum += math.Abs(r.Arr.DeviceWeight(i, p) - want)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RepairReport summarizes one Repair pass for degradation accounting.
type RepairReport struct {
	Diagnosis Diagnosis
	// Remapped is the number of logical columns relocated this pass.
	Remapped int
	// Pulses spent reprogramming relocated columns.
	Pulses int
	// SparesLeft after the pass.
	SparesLeft int
}

// Repair runs detection against the logical target and relocates the
// worst-damaged logical columns onto spares: columns are ranked by
// confirmed-dead crosspoints, and each moves only if a spare with strictly
// fewer dead cells exists (otherwise relocation would not help). Moved
// columns are reprogrammed with per-device write-verify using maxPulses.
func (r *RemappedArray) Repair(target *tensor.Matrix, cellTol float64, maxPulses int) RepairReport {
	diag := Detect(r.Arr, r.PhysTarget(target), cellTol)
	rep := RepairReport{Diagnosis: diag}

	// Rank logical columns by damage, worst first (stable on index).
	order := make([]int, r.logical)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		return diag.DeadPerCol[r.colOf[order[a]]] > diag.DeadPerCol[r.colOf[order[b]]]
	})

	for _, j := range order {
		if len(r.spares) == 0 {
			break
		}
		dead := diag.DeadPerCol[r.colOf[j]]
		if dead == 0 {
			break
		}
		// Healthiest spare: fewest dead cells, lowest index on ties.
		best, bestDead := -1, 0
		for si, p := range r.spares {
			if best == -1 || diag.DeadPerCol[p] < bestDead {
				best, bestDead = si, diag.DeadPerCol[p]
			}
		}
		if bestDead >= dead {
			continue // no spare is healthier than the incumbent
		}
		spare := r.spares[best]
		r.spares = append(r.spares[:best], r.spares[best+1:]...)
		r.colOf[j] = spare
		r.Remapped++
		rep.Remapped++
		for i := 0; i < r.Arr.Rows(); i++ {
			p, _ := r.Arr.ProgramDevice(i, spare, target.At(i, j), maxPulses)
			rep.Pulses += p
		}
	}
	rep.SparesLeft = len(r.spares)
	return rep
}
