package faults

import (
	"testing"

	"repro/internal/crossbar"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// driveOps runs a fixed op sequence against a fresh array attached to e and
// returns the resulting fault counters plus the final weight snapshot.
func driveOps(e *Engine, arraySeed uint64) (Stats, *tensor.Matrix) {
	a := crossbar.NewArray(8, 6, crossbar.Ideal(), crossbar.DefaultConfig(), rngutil.New(arraySeed))
	e.Attach(a)
	rng := rngutil.New(arraySeed + 1)
	x := make(tensor.Vector, a.Cols())
	d := make(tensor.Vector, a.Rows())
	for it := 0; it < 300; it++ {
		for j := range x {
			x[j] = rng.Uniform(-1, 1)
		}
		for j := range d {
			d[j] = rng.Uniform(-1, 1)
		}
		a.Forward(x)
		a.Backward(d)
		a.Update(0.05, d, x)
	}
	return e.Stats(), a.Weights()
}

func sameStats(a, b Stats) bool { return a == b }

// TestEngineCloneReplaysSchedule is the property policy sweeps rely on: a
// cloned engine driven through the same op sequence injects a bit-identical
// fault history, without rebuilding the campaign by hand.
func TestEngineCloneReplaysSchedule(t *testing.T) {
	plan := Plan{
		StuckPerOp:      0.02,
		StuckValueStd:   0.5,
		ReadUpset:       0.01,
		UpsetMag:        1.0,
		WriteFail:       0.1,
		LineOpenPerOp:   0.002,
		DriftBurstEvery: 97,
		DriftBurstDt:    3,
	}
	base := NewEngine(plan, rngutil.New(42))
	clone := base.Clone() // cloned BEFORE base consumes its stream

	s1, w1 := driveOps(base, 7)
	s2, w2 := driveOps(clone, 7)
	if !sameStats(s1, s2) {
		t.Fatalf("clone stats diverged:\nbase  %+v\nclone %+v", s1, s2)
	}
	if s1.StuckInjected == 0 || s1.Upsets == 0 || s1.DroppedWrites == 0 {
		t.Fatalf("campaign too quiet to be a meaningful replay check: %+v", s1)
	}
	for i := range w1.Data {
		if w1.Data[i] != w2.Data[i] {
			t.Fatalf("weight %d diverged: %g vs %g", i, w1.Data[i], w2.Data[i])
		}
	}

	// A clone taken AFTER the base ran must still replay from the start:
	// the stream rewinds to construction, not to the current position.
	late := base.Clone()
	s3, w3 := driveOps(late, 7)
	if !sameStats(s1, s3) {
		t.Fatalf("late clone stats diverged:\nbase %+v\nlate %+v", s1, s3)
	}
	for i := range w1.Data {
		if w1.Data[i] != w3.Data[i] {
			t.Fatalf("late-clone weight %d diverged: %g vs %g", i, w1.Data[i], w3.Data[i])
		}
	}
}

// TestEngineResetRewindsStream checks Reset: zeroed stats, forgotten line
// state, and the identical fault history on a rebuilt array.
func TestEngineResetRewindsStream(t *testing.T) {
	plan := Plan{StuckPerOp: 0.03, ReadUpset: 0.02, UpsetMag: 0.5, LineOpenPerOp: 0.005}
	e := NewEngine(plan, rngutil.New(9))
	s1, w1 := driveOps(e, 11)

	e.Reset()
	if got := e.Stats(); got != (Stats{}) {
		t.Fatalf("Reset left stats %+v", got)
	}
	s2, w2 := driveOps(e, 11)
	if !sameStats(s1, s2) {
		t.Fatalf("replay after Reset diverged:\nfirst  %+v\nsecond %+v", s1, s2)
	}
	for i := range w1.Data {
		if w1.Data[i] != w2.Data[i] {
			t.Fatalf("weight %d diverged after Reset: %g vs %g", i, w1.Data[i], w2.Data[i])
		}
	}
}
