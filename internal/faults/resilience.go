package faults

import (
	"fmt"
	"math"

	"repro/internal/analog"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/mann"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rngutil"
	"repro/internal/tensor"
	"repro/internal/xmann"
)

// Strategy selects the remediation level of a degradation sweep.
type Strategy int

// Remediation strategies, in increasing order of machinery.
const (
	// StrategyNone programs single-shot with a tight pulse budget and lives
	// with whatever lands on the array.
	StrategyNone Strategy = iota
	// StrategyRetry adds closed-loop write-verify with bounded retry and
	// exponential pulse-budget backoff.
	StrategyRetry
	// StrategyRemapRetry adds checksum-probe detection and redundant-column
	// remapping on top of retry.
	StrategyRemapRetry
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "none"
	case StrategyRetry:
		return "retry"
	case StrategyRemapRetry:
		return "remap+retry"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// SweepConfig parameterizes the graceful-degradation sweeps. All sweeps are
// bit-reproducible in (config, Seed).
type SweepConfig struct {
	Seed  uint64
	Quick bool
	// Rates are the stuck-fault fractions swept (ascending).
	Rates []float64
	// Placements is the number of independent fault placements averaged per
	// point (common random numbers across strategies: every strategy sees
	// the same placement seeds).
	Placements int
	// WriteFail is the per-pulse-train drop probability injected by the
	// campaign engine during programming.
	WriteFail float64
	// Strategies compared by the analog and X-MANN sweeps.
	Strategies []Strategy
	// Redundancies compared by the TCAM sweep (copies per stored word).
	Redundancies []int
	// Obs, when non-nil, accumulates injection and remediation counters from
	// every sweep cell. Fed from deterministic fault histories only, so the
	// resulting dump is stable across worker counts.
	Obs *obs.Registry
}

// DefaultSweepConfig returns the campaign configuration of experiment R1.
func DefaultSweepConfig(seed uint64, quick bool) SweepConfig {
	cfg := SweepConfig{
		Seed:         seed,
		Quick:        quick,
		Rates:        []float64{0, 0.05, 0.10, 0.20},
		Placements:   4,
		WriteFail:    0.25,
		Strategies:   []Strategy{StrategyNone, StrategyRetry, StrategyRemapRetry},
		Redundancies: []int{1, 2},
	}
	if quick {
		cfg.Placements = 3
	}
	return cfg
}

// Point is one measured (fault rate, strategy) cell of a degradation sweep,
// averaged over fault placements.
type Point struct {
	Rate     float64
	Strategy string
	// Accuracy is the task metric: test accuracy (analog), similarity top-1
	// agreement with the digital reference (X-MANN), or few-shot accuracy
	// (TCAM).
	Accuracy float64
	// Residual is the secondary error metric: mean programming residual
	// (analog) or soft-read relative L2 error (X-MANN).
	Residual float64
	// AvgPulses, AvgReads, AvgRemapped account the remediation cost: write
	// pulses spent programming, detection reads consumed, and logical
	// columns relocated.
	AvgPulses   float64
	AvgReads    float64
	AvgRemapped float64
}

// sweepPolicies returns the programming policies of the two write paths: a
// tight single-shot budget for StrategyNone, the same base budget with
// doubling retries otherwise.
func sweepPolicies() (none, retry crossbar.ProgramPolicy) {
	none = crossbar.ProgramPolicy{MaxPulses: 500, MaxRetries: 0}
	retry = crossbar.ProgramPolicy{MaxPulses: 500, MaxRetries: 3}
	return none, retry
}

// analogExpConfig mirrors the digits-MLP configuration of the crossbar
// experiments (C1–C3) so the degradation curves are comparable to them.
func analogExpConfig(seed uint64, quick bool) analog.ExperimentConfig {
	cfg := analog.DefaultExperiment()
	cfg.Seed = seed
	if quick {
		cfg.Data = dataset.DigitsConfig{Classes: 6, Dim: 16, PerClass: 60, Noise: 0.5, Separation: 1}
		cfg.Hidden = []int{12}
		cfg.Epochs = 6
	}
	return cfg
}

// AnalogSweep measures digits-MLP inference accuracy after programming a
// digitally trained network onto arrays with a stuck-device fraction f
// (corrupt-value model) under write failures, across remediation strategies
// (§II-B.2: yield loss is the dominant analog accuracy hazard).
func AnalogSweep(cfg SweepConfig) []Point {
	ecfg := analogExpConfig(cfg.Seed, cfg.Quick)
	rng := rngutil.New(ecfg.Seed)
	ds := dataset.Digits(ecfg.Data, rng.Child("data"))
	train, test := ds.Split(ecfg.TrainFrac)

	// One digitally trained source network, shared by every sweep cell.
	sizes := append([]int{ecfg.Data.Dim}, ecfg.Hidden...)
	sizes = append(sizes, ecfg.Data.Classes)
	m := nn.NewMLP(sizes, nn.TanhAct, nn.SoftmaxAct, nn.DenseFactory(rng.Child("weights")))
	for epoch := 0; epoch < ecfg.Epochs; epoch++ {
		for i := range train.X {
			m.TrainStep(train.X[i], train.Y[i], ecfg.LR)
		}
	}

	nonePol, retryPol := sweepPolicies()
	var points []Point
	for _, rate := range cfg.Rates {
		arrCfg := crossbar.DefaultConfig()
		arrCfg.StuckFraction = rate
		// Corrupt-value faults: failed devices freeze at extreme conductances
		// (shorts/opens map to weight extremes), the damaging §II-B.2 case.
		arrCfg.StuckValueStd = 0.8
		for _, strat := range cfg.Strategies {
			var pt Point
			pt.Rate, pt.Strategy = rate, strat.String()
			for p := 0; p < cfg.Placements; p++ {
				// Common random numbers: the placement seed is shared across
				// strategies, so each strategy faces the same fault draw.
				pseed := cfg.Seed + 1000 + 17*uint64(p)
				engine := NewEngine(Plan{WriteFail: cfg.WriteFail}, rngutil.New(pseed).Child("engine"))
				prng := rngutil.New(pseed)
				switch strat {
				case StrategyNone, StrategyRetry:
					pol := nonePol
					if strat == StrategyRetry {
						pol = retryPol
					}
					net, _, reports := analog.ProgramToArraysVerified(m, crossbar.Ideal(), arrCfg, pol, engine.Attach, prng)
					pt.Accuracy += net.Accuracy(test.X, test.Y)
					for _, r := range reports {
						pt.AvgPulses += float64(r.Pulses)
						pt.Residual += r.Residual / float64(len(reports))
					}
				case StrategyRemapRetry:
					net := &nn.MLP{}
					for li, l := range m.Layers {
						src := l.W.(*nn.DenseMat).M
						spares := tensor.MaxInt(2, l.W.Cols()/4)
						r := NewRemappedArray(l.W.Rows(), l.W.Cols(), spares, crossbar.Ideal(), arrCfg,
							prng.Child("prog-layer").Child(string(rune('a'+li))))
						engine.Attach(r.Arr)
						rep := r.Program(src, retryPol)
						fix := r.Repair(src, 0, retryPol.MaxPulses)
						// Relocated columns get the same write-verify service
						// as everyone else; only out-of-tolerance devices are
						// touched, so the pass is cheap when nothing moved.
						rep2 := r.Program(src, retryPol)
						pt.AvgPulses += float64(rep.Pulses + fix.Pulses + rep2.Pulses)
						pt.AvgReads += float64(fix.Diagnosis.Reads)
						pt.AvgRemapped += float64(fix.Remapped)
						pt.Residual += r.Residual(src) / float64(len(m.Layers))
						net.Layers = append(net.Layers, &nn.DenseLayer{
							In: l.In, Out: l.Out, Bias: l.Bias, Act: l.Act, W: r,
						})
					}
					pt.Accuracy += net.Accuracy(test.X, test.Y)
				}
				engine.ExportObs(cfg.Obs)
			}
			exportSweepCell(cfg.Obs, pt)
			n := float64(cfg.Placements)
			pt.Accuracy /= n
			pt.Residual /= n
			pt.AvgPulses /= n
			pt.AvgReads /= n
			pt.AvgRemapped /= n
			points = append(points, pt)
		}
	}
	return points
}

// XMannSweep measures the X-MANN soft-read/similarity pipeline on
// stuck-afflicted tiles: top-1 agreement of the crossbar similarity with the
// digital reference, and the soft-read relative L2 error, for single-shot vs
// write-verify-retry programming of the distributed memory.
func XMannSweep(cfg SweepConfig) []Point {
	M, D, tileRows, keys := 32, 16, 8, 32
	if cfg.Quick {
		M, D, keys = 16, 8, 16
	}
	const beta = 10.0

	nonePol, retryPol := sweepPolicies()
	var points []Point
	for _, rate := range cfg.Rates {
		arrCfg := crossbar.DefaultConfig()
		arrCfg.StuckFraction = rate
		arrCfg.StuckValueStd = 0.3
		for _, strat := range cfg.Strategies {
			if strat == StrategyRemapRetry {
				continue // memory tiles have no spare columns in this sweep
			}
			pol := nonePol
			if strat == StrategyRetry {
				pol = retryPol
			}
			var pt Point
			pt.Rate, pt.Strategy = rate, strat.String()
			for p := 0; p < cfg.Placements; p++ {
				pseed := cfg.Seed + 2000 + 17*uint64(p)
				prng := rngutil.New(pseed)
				mem := tensor.NewMatrix(M, D)
				mr := prng.Child("memory")
				for i := range mem.Data {
					mem.Data[i] = mr.Float64()
				}
				engine := NewEngine(Plan{WriteFail: cfg.WriteFail}, rngutil.New(pseed).Child("engine"))
				d, reports := xmann.NewDistributedMemoryOpts(mem, tileRows, xmann.MemoryOptions{
					Cfg: &arrCfg, Policy: &pol, Attach: engine.Attach,
				}, prng.Child("tiles"))
				for _, r := range reports {
					pt.AvgPulses += float64(r.Pulses)
				}
				kr := prng.Child("keys")
				for k := 0; k < keys; k++ {
					key := make(tensor.Vector, D)
					for i := range key {
						key[i] = kr.Float64()
					}
					ref := xmann.ReferenceSimilarity(mem, key, beta)
					got := d.Similarity(key, beta)
					if argmax(got) == argmax(ref) {
						pt.Accuracy++
					}
					// Soft read with the reference attention: r = wᵀM.
					want := make(tensor.Vector, D)
					for i := 0; i < M; i++ {
						for j := 0; j < D; j++ {
							want[j] += ref[i] * mem.At(i, j)
						}
					}
					pt.Residual += relL2(d.SoftRead(ref), want)
				}
				engine.ExportObs(cfg.Obs)
			}
			exportSweepCell(cfg.Obs, pt)
			n := float64(cfg.Placements)
			pt.Accuracy /= n * float64(keys)
			pt.Residual /= n * float64(keys)
			pt.AvgPulses /= n
			points = append(points, pt)
		}
	}
	return points
}

// TCAMSweep measures LSH/TCAM few-shot accuracy as the stuck-cell rate of
// the TCAM array rises, with spatial redundancy (R stored copies per
// support vector) as the remediation axis.
func TCAMSweep(cfg SweepConfig) []Point {
	eval := mann.EvalConfig{
		NWay: 5, KShot: 1, NQuery: 3, Episodes: 60, MemoryEntries: 32, Seed: cfg.Seed + 1,
	}
	planes := 64
	if cfg.Quick {
		eval.Episodes = 15
		eval.MemoryEntries = 16
		planes = 32
	}

	var points []Point
	for _, rate := range cfg.Rates {
		for _, red := range cfg.Redundancies {
			// A fresh universe per cell pairs the episode stream across all
			// (rate, redundancy) cells: every cell faces identical tasks.
			u := dataset.NewFewShotUniverse(dataset.DefaultFewShot(), rngutil.New(cfg.Seed))
			capacity := eval.MemoryEntries * red
			r := NewFaultyLSHRetriever(u.Cfg.Dim, planes, capacity, rate, red, rngutil.New(cfg.Seed+7))
			acc := mann.EvaluateFewShot(u, r, eval)
			if cfg.Obs != nil {
				cfg.Obs.Counter("faults_tcam_searches_total",
					"TCAM searches issued across sweep cells").Add(int64(r.Searches()))
			}
			points = append(points, Point{
				Rate:     rate,
				Strategy: fmt.Sprintf("redundancy-x%d", red),
				Accuracy: acc,
				AvgReads: float64(r.Searches()) / float64(eval.Episodes*eval.NWay*eval.NQuery),
			})
		}
	}
	return points
}

func argmax(v tensor.Vector) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func relL2(got, want tensor.Vector) float64 {
	var num, den float64
	for i := range want {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
