package faults

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/rngutil"
)

// LineState is the open-line registry of one array, rows and columns sorted
// ascending so the encoding is canonical.
type LineState struct {
	Rows, Cols []int
}

// EngineState is the resumable state of a campaign engine: the position of
// its random stream, the injected-fault counters (which also clock the
// drift-burst schedule), and the open-line registry of every attached array
// in attach order. Stuck devices live in the arrays themselves and travel
// with crossbar.ArrayState.
type EngineState struct {
	RNG   rngutil.State
	Stats Stats
	Lines []LineState
}

// StateKey implements ckpt.StateProvider.
func (e *Engine) StateKey() string { return "faults-engine" }

// ExportState implements ckpt.StateProvider: it serializes the engine's
// EngineState with gob. Array identity is positional — the i-th LineState
// belongs to the i-th array the engine was attached to — so a restoring run
// must Attach the rebuilt arrays in the same order before ImportState.
func (e *Engine) ExportState() ([]byte, error) {
	st := EngineState{RNG: e.rng.State(), Stats: e.stats}
	for _, a := range e.order {
		s := e.state[a]
		ls := LineState{}
		for r := range s.openRows {
			ls.Rows = append(ls.Rows, r)
		}
		for c := range s.openCols {
			ls.Cols = append(ls.Cols, c)
		}
		sort.Ints(ls.Rows)
		sort.Ints(ls.Cols)
		st.Lines = append(st.Lines, ls)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("faults: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// ImportState implements ckpt.StateProvider: it restores a previously
// exported state onto an engine already attached (in the same order) to the
// rebuilt arrays of the resuming run.
func (e *Engine) ImportState(blob []byte) error {
	var st EngineState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return fmt.Errorf("faults: decode state: %w", err)
	}
	if len(st.Lines) != len(e.order) {
		return fmt.Errorf("faults: state tracks %d arrays, engine attached to %d", len(st.Lines), len(e.order))
	}
	e.rng = rngutil.FromState(st.RNG)
	e.seed = st.RNG.Seed
	e.stats = st.Stats
	for i, a := range e.order {
		s := e.state[a]
		s.openRows = map[int]bool{}
		s.openCols = map[int]bool{}
		for _, r := range st.Lines[i].Rows {
			if r < 0 || r >= a.Rows() {
				return fmt.Errorf("faults: open row %d out of range for array %d", r, i)
			}
			s.openRows[r] = true
		}
		for _, c := range st.Lines[i].Cols {
			if c < 0 || c >= a.Cols() {
				return fmt.Errorf("faults: open col %d out of range for array %d", c, i)
			}
			s.openCols[c] = true
		}
	}
	return nil
}
