package faults

import (
	"reflect"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// chaoticPlan exercises every fault process the engine implements.
func chaoticPlan() Plan {
	return Plan{
		StuckPerOp:      0.2,
		StuckValueStd:   0.3,
		ReadUpset:       0.05,
		UpsetMag:        0.1,
		WriteFail:       0.1,
		LineOpenPerOp:   0.08,
		DriftBurstEvery: 7,
		DriftBurstDt:    5,
	}
}

func statePair(seed1, seed2 uint64) (*crossbar.Array, *crossbar.Array) {
	a := crossbar.NewArray(6, 5, crossbar.PCM(), crossbar.DefaultConfig(), rngutil.New(seed1))
	b := crossbar.NewArray(4, 7, crossbar.RRAM(), crossbar.DefaultConfig(), rngutil.New(seed2))
	return a, b
}

// drive pushes both arrays through n op rounds under the engine's faults.
func drive(a1, a2 *crossbar.Array, n int) {
	x1 := make(tensor.Vector, a1.Cols())
	u1 := make(tensor.Vector, a1.Rows())
	x2 := make(tensor.Vector, a2.Cols())
	u2 := make(tensor.Vector, a2.Rows())
	for i := range x1 {
		x1[i] = 0.3
	}
	for i := range u1 {
		u1[i] = 0.5
	}
	for i := range x2 {
		x2[i] = -0.2
	}
	for i := range u2 {
		u2[i] = 0.4
	}
	for i := 0; i < n; i++ {
		a1.Forward(x1)
		a2.Forward(x2)
		a1.Update(0.1, u1, x1)
		a2.Update(-0.1, u2, x2)
	}
}

// TestEngineStateRoundTrip: an engine checkpointed mid-campaign and restored
// onto rebuilt arrays must continue the fault history bit-identically — same
// stats, same open lines, same device trajectories.
func TestEngineStateRoundTrip(t *testing.T) {
	e := NewEngine(chaoticPlan(), rngutil.New(5))
	a1, a2 := statePair(1, 2)
	e.Attach(a1)
	e.Attach(a2)
	drive(a1, a2, 40)

	blob, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	st1, st2 := a1.ExportState(), a2.ExportState()

	// Rebuild from scratch, as a resuming run does: fresh engine with the
	// same construction seed, fresh arrays, same attach order, then import.
	f := NewEngine(chaoticPlan(), rngutil.New(5))
	b1, b2 := statePair(11, 12) // different seeds: import must overwrite
	f.Attach(b1)
	f.Attach(b2)
	if err := b1.ImportState(st1); err != nil {
		t.Fatal(err)
	}
	if err := b2.ImportState(st2); err != nil {
		t.Fatal(err)
	}
	if err := f.ImportState(blob); err != nil {
		t.Fatal(err)
	}

	// Both campaigns continue; histories must stay identical.
	drive(a1, a2, 40)
	drive(b1, b2, 40)
	if !reflect.DeepEqual(e.Stats(), f.Stats()) {
		t.Fatalf("stats diverged:\n%+v\nvs\n%+v", e.Stats(), f.Stats())
	}
	for i, pair := range [][2]*crossbar.Array{{a1, b1}, {a2, b2}} {
		ra, ca := e.OpenLines(pair[0])
		rb, cb := f.OpenLines(pair[1])
		if ra != rb || ca != cb {
			t.Fatalf("array %d open lines diverged: (%d,%d) vs (%d,%d)", i, ra, ca, rb, cb)
		}
		wa, wb := pair[0].Weights(), pair[1].Weights()
		for k := range wa.Data {
			if wa.Data[k] != wb.Data[k] {
				t.Fatalf("array %d weights diverged after restore", i)
			}
		}
	}
}

// TestEngineImportRejectsWrongAttachCount pins the positional contract.
func TestEngineImportRejectsWrongAttachCount(t *testing.T) {
	e := NewEngine(chaoticPlan(), rngutil.New(9))
	a1, a2 := statePair(1, 2)
	e.Attach(a1)
	e.Attach(a2)
	blob, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	f := NewEngine(chaoticPlan(), rngutil.New(9))
	b1, _ := statePair(1, 2)
	f.Attach(b1)
	if err := f.ImportState(blob); err == nil {
		t.Fatal("import with mismatched attach count must fail")
	}
}
