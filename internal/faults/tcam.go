package faults

import (
	"fmt"

	"repro/internal/cam"
	"repro/internal/lsh"
	"repro/internal/mann"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// tcamCellFault is one physical TCAM cell's manufacturing state.
type tcamCellFault uint8

const (
	cellHealthy tcamCellFault = iota
	cellStuck0                // always stores 0, whatever is written
	cellStuck1                // always stores 1
	cellStuckX                // always stores X (can never mismatch: over-matches)
)

// FaultyLSHRetriever is the LSH/TCAM few-shot retriever of §IV-B.2
// evaluated on an imperfect TCAM array: a seeded fraction of physical
// cells is stuck (at 0, 1, or don't-care, equiprobably), corrupting every
// word written through them. Redundancy R stores each support vector in R
// distinct physical rows — different rows, different fault cells — and
// classifies with the best match over all copies, the spatial-redundancy
// remediation of the degradation study.
//
// It implements mann.Retriever, so mann.EvaluateFewShot drives it
// unchanged. Reset clears the stored words but keeps the physical fault
// map: the chip does not heal between episodes.
type FaultyLSHRetriever struct {
	Redundancy int

	hasher   *lsh.Hasher
	tcam     *cam.TCAM
	labels   []int
	faultMap []tcamCellFault // capacity rows × width, row-major
	width    int
	next     int   // next physical row to be written
	searches int64 // search ops from TCAM generations already reset away
}

// NewFaultyLSHRetriever builds the retriever with nPlanes hash bits over a
// physical array of capacity rows whose cells are stuck with probability
// stuckRate. redundancy < 1 is treated as 1.
func NewFaultyLSHRetriever(dim, nPlanes, capacity int, stuckRate float64, redundancy int, rng *rngutil.Source) *FaultyLSHRetriever {
	if redundancy < 1 {
		redundancy = 1
	}
	r := &FaultyLSHRetriever{
		Redundancy: redundancy,
		hasher:     lsh.NewHasher(dim, nPlanes, rng.Child("planes")),
		tcam:       cam.New(nPlanes),
		faultMap:   make([]tcamCellFault, capacity*nPlanes),
		width:      nPlanes,
	}
	// Yield draws and fault-type draws come from separate streams so that,
	// for a fixed seed, the stuck-cell set at a lower rate is a subset of
	// the set at any higher rate — degradation sweeps are then monotone in
	// the fault population by construction.
	fr := rng.Child("cells")
	tr := rng.Child("types")
	for i := range r.faultMap {
		if fr.Bernoulli(stuckRate) {
			r.faultMap[i] = tcamCellFault(1 + tr.Intn(3))
		}
	}
	return r
}

// Name implements mann.Retriever.
func (r *FaultyLSHRetriever) Name() string {
	return fmt.Sprintf("lsh-tcam-faulty-x%d", r.Redundancy)
}

// Reset implements mann.Retriever: clears contents, keeps the fault map.
func (r *FaultyLSHRetriever) Reset() {
	r.searches += r.tcam.Searches
	r.tcam = cam.New(r.width)
	r.labels = nil
	r.next = 0
}

// row builds the fault-corrupted word that lands in physical row `phys`
// when `sig` is written to it.
func (r *FaultyLSHRetriever) row(phys int, sig lsh.Signature) cam.Row {
	row := make(cam.Row, r.width)
	for c := 0; c < r.width; c++ {
		if sig.Get(c) {
			row[c] = cam.One
		}
		if base := phys * r.width; base+c < len(r.faultMap) {
			switch r.faultMap[base+c] {
			case cellStuck0:
				row[c] = cam.Zero
			case cellStuck1:
				row[c] = cam.One
			case cellStuckX:
				row[c] = cam.X
			}
		}
	}
	return row
}

// Store implements mann.Retriever: the signature is written into
// Redundancy consecutive physical rows, each through its own fault cells.
func (r *FaultyLSHRetriever) Store(v tensor.Vector, label int) {
	sig := r.hasher.Sign(v)
	for c := 0; c < r.Redundancy; c++ {
		r.tcam.Store(r.row(r.next, sig))
		r.labels = append(r.labels, label)
		r.next++
	}
}

// Classify implements mann.Retriever: one degree-of-match search over all
// physical rows; the best copy of any entry wins.
func (r *FaultyLSHRetriever) Classify(q tensor.Vector) int {
	sig := r.hasher.Sign(q)
	row := make(cam.Row, r.width)
	for c := 0; c < r.width; c++ {
		if sig.Get(c) {
			row[c] = cam.One
		}
	}
	idx, _ := r.tcam.BestMatch(row)
	if idx < 0 {
		return -1
	}
	return r.labels[idx]
}

// Searches reports TCAM search operations consumed across all episodes
// (cost accounting: the redundant copies cost storage rows, not extra
// searches).
func (r *FaultyLSHRetriever) Searches() int64 { return r.searches + r.tcam.Searches }

// RowsUsed reports the physical rows consumed since the last Reset.
func (r *FaultyLSHRetriever) RowsUsed() int { return r.next }

var _ mann.Retriever = (*FaultyLSHRetriever)(nil)
