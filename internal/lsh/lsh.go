// Package lsh implements random-hyperplane locality-sensitive hashing
// (paper ref. [56]), the encoding that lets a TCAM perform similarity
// search: real-valued feature vectors are hashed to binary signatures whose
// Hamming distance approximates angular (cosine) distance, so a single
// parallel Hamming search over a TCAM replaces M·D floating-point
// multiplications (§IV-B.2).
package lsh

import (
	"fmt"
	"math/bits"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// Signature is a packed binary LSH signature.
type Signature struct {
	Bits  int
	Words []uint64
}

// Get reports bit i.
func (s Signature) Get(i int) bool { return s.Words[i/64]&(1<<uint(i%64)) != 0 }

// set sets bit i.
func (s Signature) set(i int) { s.Words[i/64] |= 1 << uint(i%64) }

// Hamming returns the Hamming distance between two signatures of equal
// length; it panics on length mismatch.
func Hamming(a, b Signature) int {
	if a.Bits != b.Bits {
		panic(fmt.Sprintf("lsh: signature length mismatch %d vs %d", a.Bits, b.Bits))
	}
	d := 0
	for w := range a.Words {
		d += bits.OnesCount64(a.Words[w] ^ b.Words[w])
	}
	return d
}

// Hasher maps feature vectors to binary signatures using random projection
// hyperplanes. In the few-shot pipeline of Fig. 5 it replaces the CNN's
// last fully connected layer (paper ref. [9]): computationally it is the
// same dense matrix-vector product followed by a sign, so the substitution
// adds no storage or compute.
type Hasher struct {
	Dim    int
	Planes []tensor.Vector
}

// NewHasher draws nPlanes random Gaussian hyperplanes for dim-dimensional
// inputs.
func NewHasher(dim, nPlanes int, rng *rngutil.Source) *Hasher {
	h := &Hasher{Dim: dim}
	pr := rng.Child("planes")
	for p := 0; p < nPlanes; p++ {
		v := make(tensor.Vector, dim)
		for i := range v {
			v[i] = pr.NormFloat64()
		}
		h.Planes = append(h.Planes, v)
	}
	return h
}

// NumPlanes reports the signature length in bits.
func (h *Hasher) NumPlanes() int { return len(h.Planes) }

// Sign computes the signature of v: bit p is 1 iff v lies on the positive
// side of hyperplane p.
func (h *Hasher) Sign(v tensor.Vector) Signature {
	if len(v) != h.Dim {
		panic(fmt.Sprintf("lsh: input dim %d, hasher expects %d", len(v), h.Dim))
	}
	s := Signature{Bits: len(h.Planes), Words: make([]uint64, (len(h.Planes)+63)/64)}
	for p, plane := range h.Planes {
		if tensor.Dot(plane, v) >= 0 {
			s.set(p)
		}
	}
	return s
}

// MACsPerSignature reports the multiply-accumulate cost of hashing one
// vector (identical to one dense layer of the same shape).
func (h *Hasher) MACsPerSignature() int { return h.Dim * len(h.Planes) }
