package lsh

import (
	"math"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func TestSignatureSelfDistanceZero(t *testing.T) {
	rng := rngutil.New(1)
	h := NewHasher(16, 64, rng)
	v := make(tensor.Vector, 16)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	s := h.Sign(v)
	if Hamming(s, s) != 0 {
		t.Fatal("self distance must be 0")
	}
	// Signing the same vector twice must be deterministic.
	s2 := h.Sign(v)
	if Hamming(s, s2) != 0 {
		t.Fatal("hashing must be deterministic")
	}
}

func TestHammingSymmetricAndBounded(t *testing.T) {
	rng := rngutil.New(2)
	h := NewHasher(8, 100, rng)
	a := h.Sign(randVec(rng, 8))
	b := h.Sign(randVec(rng, 8))
	if Hamming(a, b) != Hamming(b, a) {
		t.Fatal("Hamming must be symmetric")
	}
	if d := Hamming(a, b); d < 0 || d > 100 {
		t.Fatalf("distance %d out of [0,100]", d)
	}
}

func TestHammingMismatchPanics(t *testing.T) {
	rng := rngutil.New(3)
	a := NewHasher(4, 32, rng).Sign(randVec(rng, 4))
	b := NewHasher(4, 64, rng).Sign(randVec(rng, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Hamming(a, b)
}

func randVec(rng *rngutil.Source, n int) tensor.Vector {
	v := make(tensor.Vector, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// The LSH property: E[Hamming(sig(a), sig(b))] / bits = angle(a,b)/π.
// Verify monotonicity and approximate calibration at 3 angles.
func TestCollisionProbabilityTracksAngle(t *testing.T) {
	rng := rngutil.New(4)
	const bits = 2048
	h := NewHasher(2, bits, rng)
	angles := []float64{0.1, math.Pi / 4, math.Pi / 2}
	prev := -1.0
	for _, th := range angles {
		a := tensor.Vector{1, 0}
		b := tensor.Vector{math.Cos(th), math.Sin(th)}
		frac := float64(Hamming(h.Sign(a), h.Sign(b))) / bits
		want := th / math.Pi
		if math.Abs(frac-want) > 0.05 {
			t.Errorf("angle %v: hamming frac %v, want %v", th, frac, want)
		}
		if frac <= prev {
			t.Errorf("hamming fraction must grow with angle")
		}
		prev = frac
	}
}

func TestAntipodalVectorsMaxDistance(t *testing.T) {
	rng := rngutil.New(5)
	h := NewHasher(4, 256, rng)
	v := randVec(rng, 4)
	neg := v.Clone()
	neg.Scale(-1)
	d := Hamming(h.Sign(v), h.Sign(neg))
	// Sign boundary handling (>= 0) can keep a few bits equal only when a
	// projection is exactly zero, which has measure zero here.
	if d != 256 {
		t.Fatalf("antipodal distance %d, want 256", d)
	}
}

func TestGetBit(t *testing.T) {
	rng := rngutil.New(6)
	h := NewHasher(3, 70, rng) // spans two words
	s := h.Sign(tensor.Vector{1, 2, 3})
	count := 0
	for i := 0; i < s.Bits; i++ {
		if s.Get(i) {
			count++
		}
	}
	// Cross-check popcount path with bit-by-bit path using an empty sig.
	zero := Signature{Bits: 70, Words: make([]uint64, 2)}
	if Hamming(s, zero) != count {
		t.Fatalf("bit count mismatch: %d vs %d", Hamming(s, zero), count)
	}
}

func TestMACsPerSignature(t *testing.T) {
	h := NewHasher(64, 128, rngutil.New(7))
	if h.MACsPerSignature() != 64*128 {
		t.Fatalf("MACs = %d", h.MACsPerSignature())
	}
	if h.NumPlanes() != 128 {
		t.Fatalf("NumPlanes = %d", h.NumPlanes())
	}
}

func TestInputDimPanics(t *testing.T) {
	h := NewHasher(4, 8, rngutil.New(8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Sign(tensor.Vector{1, 2})
}

// Same-class vectors (small perturbations) must land closer in Hamming
// space than random other vectors — the property that makes TCAM retrieval
// work (§IV-B.2).
func TestLocalitySensitivity(t *testing.T) {
	rng := rngutil.New(9)
	h := NewHasher(32, 256, rng)
	base := randVec(rng, 32)
	near := base.Clone()
	for i := range near {
		near[i] += rng.Normal(0, 0.1)
	}
	far := randVec(rng, 32)
	dNear := Hamming(h.Sign(base), h.Sign(near))
	dFar := Hamming(h.Sign(base), h.Sign(far))
	if dNear >= dFar {
		t.Fatalf("near %d should beat far %d", dNear, dFar)
	}
}
