package mann

import (
	"sort"

	"repro/internal/tensor"
)

// DNCMemory extends the NTM memory with the differentiable-neural-computer
// mechanisms (paper refs. [3], [4]) that let a MANN build and traverse data
// structures: a usage vector driving dynamic allocation, and a temporal
// link matrix recording write order so reads can walk forward or backward
// through stored sequences — the capability behind the paper's "navigating
// the London underground" example.
type DNCMemory struct {
	N, W int
	M    *tensor.Matrix

	// Usage ∈ [0,1] per location: how occupied the slot is.
	Usage tensor.Vector
	// Precedence is the degree to which each location was the last write.
	Precedence tensor.Vector
	// Link[i][j] ≈ "location i was written right after location j".
	Link *tensor.Matrix

	Ops MemOps
}

// NewDNCMemory returns an empty memory with all slots free.
func NewDNCMemory(n, w int) *DNCMemory {
	d := &DNCMemory{
		N: n, W: w,
		M:          tensor.NewMatrix(n, w),
		Usage:      tensor.NewVector(n),
		Precedence: tensor.NewVector(n),
		Link:       tensor.NewMatrix(n, n),
	}
	d.M.Fill(1e-6)
	return d
}

// Allocation returns the DNC allocation weighting: free slots (low usage)
// receive weight in order of freeness, a[φ(j)] = (1−u[φ(j)])·Π_{i<j} u[φ(i)]
// over the usage-sorted ordering φ.
func (d *DNCMemory) Allocation() tensor.Vector {
	order := make([]int, d.N)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return d.Usage[order[a]] < d.Usage[order[b]] })
	a := tensor.NewVector(d.N)
	prod := 1.0
	for _, idx := range order {
		a[idx] = (1 - d.Usage[idx]) * prod
		prod *= d.Usage[idx]
	}
	return a
}

// ContentWeights returns softmax(β·cos(key, M_i)), as in the NTM.
func (d *DNCMemory) ContentWeights(key tensor.Vector, beta float64) tensor.Vector {
	sims := make(tensor.Vector, d.N)
	for i := 0; i < d.N; i++ {
		sims[i] = tensor.CosineSimilarity(key, d.M.Row(i))
	}
	d.Ops.Similarities++
	d.Ops.MACs += int64(d.N) * int64(d.W)
	return tensor.SoftmaxT(sims, beta)
}

// Write performs one DNC write: the write weighting interpolates between
// content lookup and allocation (allocGate), scaled by writeGate, then the
// memory, usage, temporal link matrix and precedence are updated.
func (d *DNCMemory) Write(key tensor.Vector, beta, allocGate, writeGate float64, erase, add tensor.Vector) tensor.Vector {
	if len(erase) != d.W || len(add) != d.W {
		panic("mann: DNC write shape mismatch")
	}
	content := d.ContentWeights(key, beta)
	alloc := d.Allocation()
	ww := make(tensor.Vector, d.N)
	for i := range ww {
		ww[i] = writeGate * (allocGate*alloc[i] + (1-allocGate)*content[i])
	}
	// Memory erase/add.
	for i := 0; i < d.N; i++ {
		if ww[i] == 0 {
			continue
		}
		row := d.M.Row(i)
		for j := range row {
			row[j] = row[j]*(1-ww[i]*erase[j]) + ww[i]*add[j]
		}
	}
	d.Ops.SoftWrites++
	d.Ops.MACs += 2 * int64(d.N) * int64(d.W)
	// Usage grows where written: u = u + w − u∘w.
	for i := range d.Usage {
		d.Usage[i] = d.Usage[i] + ww[i] - d.Usage[i]*ww[i]
	}
	// Temporal links: L[i][j] = (1 − w_i − w_j)·L[i][j] + w_i·p[j].
	for i := 0; i < d.N; i++ {
		wi := ww[i]
		row := d.Link.Row(i)
		for j := 0; j < d.N; j++ {
			if i == j {
				row[j] = 0
				continue
			}
			row[j] = (1-wi-ww[j])*row[j] + wi*d.Precedence[j]
			if row[j] < 0 {
				row[j] = 0
			}
		}
	}
	// Precedence: p = (1 − Σw)·p + w.
	sw := ww.Sum()
	for i := range d.Precedence {
		d.Precedence[i] = (1-sw)*d.Precedence[i] + ww[i]
	}
	return ww
}

// ReadForward returns the forward temporal weighting L·w_prev: attention
// moves to whatever was written immediately after the previously read slot.
func (d *DNCMemory) ReadForward(prev tensor.Vector) tensor.Vector {
	if len(prev) != d.N {
		panic("mann: DNC read shape mismatch")
	}
	d.Ops.MACs += int64(d.N) * int64(d.N)
	return d.Link.MatVec(prev)
}

// ReadBackward returns the backward temporal weighting Lᵀ·w_prev.
func (d *DNCMemory) ReadBackward(prev tensor.Vector) tensor.Vector {
	if len(prev) != d.N {
		panic("mann: DNC read shape mismatch")
	}
	d.Ops.MACs += int64(d.N) * int64(d.N)
	return d.Link.MatVecT(prev)
}

// Read performs the soft read r = wᵀM.
func (d *DNCMemory) Read(w tensor.Vector) tensor.Vector {
	if len(w) != d.N {
		panic("mann: DNC read shape mismatch")
	}
	d.Ops.SoftReads++
	d.Ops.MACs += int64(d.N) * int64(d.W)
	return d.M.MatVecT(w)
}

// Free releases locations according to the given weighting (a free gate of
// 1 applied to a read weighting in the full DNC): usage decays where freed.
func (d *DNCMemory) Free(w tensor.Vector) {
	if len(w) != d.N {
		panic("mann: DNC free shape mismatch")
	}
	for i := range d.Usage {
		d.Usage[i] *= 1 - w[i]
	}
}
