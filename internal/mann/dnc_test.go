package mann

import (
	"math"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func TestDNCAllocationPrefersFreeSlots(t *testing.T) {
	d := NewDNCMemory(4, 2)
	d.Usage = tensor.Vector{0.9, 0.1, 0.5, 0.05}
	a := d.Allocation()
	// Slot 3 (lowest usage) must get the most allocation.
	if a.ArgMax() != 3 {
		t.Fatalf("allocation should peak at the freest slot: %v", a)
	}
	if a[0] >= a[1] {
		t.Fatalf("nearly-full slot should receive less than a free one: %v", a)
	}
	// Allocation is a sub-distribution: values in [0,1], sum ≤ 1.
	sum := 0.0
	for _, x := range a {
		if x < 0 || x > 1 {
			t.Fatalf("allocation weight %v out of range", x)
		}
		sum += x
	}
	if sum > 1+1e-9 {
		t.Fatalf("allocation sums to %v > 1", sum)
	}
}

func TestDNCWriteRaisesUsage(t *testing.T) {
	d := NewDNCMemory(4, 3)
	key := tensor.Vector{1, 0, 0}
	ones := tensor.Vector{1, 1, 1}
	ww := d.Write(key, 1, 1, 1, ones, tensor.Vector{0.5, 0.5, 0.5})
	idx := ww.ArgMax()
	if d.Usage[idx] < 0.5 {
		t.Fatalf("written slot usage %v should rise", d.Usage[idx])
	}
	d.Free(ww)
	if d.Usage[idx] > 0.5 {
		t.Fatalf("freed slot usage %v should fall", d.Usage[idx])
	}
}

// The headline DNC capability: write a sequence with allocation-gated
// writes, then traverse it *in order* using only the temporal link matrix —
// no content keys — recovering every stored item.
func TestDNCSequenceTraversalViaLinks(t *testing.T) {
	const n, w, seqLen = 16, 8, 6
	d := NewDNCMemory(n, w)
	rng := rngutil.New(7)
	items := make([]tensor.Vector, seqLen)
	ones := tensor.NewVector(w)
	ones.Fill(1)
	writeWeights := make([]tensor.Vector, seqLen)
	for i := range items {
		v := make(tensor.Vector, w)
		for j := range v {
			v[j] = rng.Uniform(0.1, 1)
		}
		items[i] = v
		// Pure allocation writes (allocGate 1): each lands on a fresh slot.
		writeWeights[i] = d.Write(v, 5, 1, 1, ones, v)
	}
	// Start from the first written location and walk the links forward.
	attn := writeWeights[0]
	got := d.Read(attn)
	for j := range got {
		if math.Abs(got[j]-items[0][j]) > 0.05 {
			t.Fatalf("first item read wrong: %v vs %v", got, items[0])
		}
	}
	for step := 1; step < seqLen; step++ {
		attn = d.ReadForward(attn)
		// Renormalize the soft attention (controller-side sharpening).
		if s := attn.Sum(); s > 0 {
			attn.Scale(1 / s)
		}
		got := d.Read(attn)
		for j := range got {
			if math.Abs(got[j]-items[step][j]) > 0.1 {
				t.Fatalf("forward traversal step %d read %v, want %v", step, got, items[step])
			}
		}
	}
	// And backward traversal returns to the previous item.
	back := d.ReadBackward(attn)
	if s := back.Sum(); s > 0 {
		back.Scale(1 / s)
	}
	got = d.Read(back)
	for j := range got {
		if math.Abs(got[j]-items[seqLen-2][j]) > 0.1 {
			t.Fatalf("backward traversal read %v, want %v", got, items[seqLen-2])
		}
	}
}

func TestDNCContentLookupAfterWrites(t *testing.T) {
	d := NewDNCMemory(8, 4)
	rng := rngutil.New(9)
	ones := tensor.Vector{1, 1, 1, 1}
	var keys []tensor.Vector
	for i := 0; i < 4; i++ {
		v := make(tensor.Vector, 4)
		for j := range v {
			v[j] = rng.Normal(0, 1) // well-separated directions
		}
		keys = append(keys, v)
		d.Write(v, 5, 1, 1, ones, v)
	}
	// Content lookup with a stored key should focus on its slot.
	wts := d.ContentWeights(keys[2], 50)
	got := d.Read(wts)
	for j := range got {
		if math.Abs(got[j]-keys[2][j]) > 0.1 {
			t.Fatalf("content recall %v, want %v", got, keys[2])
		}
	}
}

func TestDNCLinkMatrixProperties(t *testing.T) {
	d := NewDNCMemory(6, 3)
	ones := tensor.Vector{1, 1, 1}
	rng := rngutil.New(11)
	for i := 0; i < 4; i++ {
		v := make(tensor.Vector, 3)
		for j := range v {
			v[j] = rng.Uniform(0.1, 1)
		}
		d.Write(v, 5, 1, 1, ones, v)
	}
	for i := 0; i < d.N; i++ {
		if d.Link.At(i, i) != 0 {
			t.Fatal("link diagonal must stay zero")
		}
		rowSum := d.Link.Row(i).Sum()
		if rowSum < -1e-9 || rowSum > 1+1e-9 {
			t.Fatalf("link row %d sums to %v, outside [0,1]", i, rowSum)
		}
	}
}

func TestDNCShapePanics(t *testing.T) {
	d := NewDNCMemory(4, 2)
	for _, fn := range []func(){
		func() { d.Write(tensor.Vector{1, 0}, 1, 1, 1, tensor.Vector{1}, tensor.Vector{1, 1}) },
		func() { d.Read(tensor.Vector{1}) },
		func() { d.ReadForward(tensor.Vector{1}) },
		func() { d.ReadBackward(tensor.Vector{1}) },
		func() { d.Free(tensor.Vector{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDNCOpsCounted(t *testing.T) {
	d := NewDNCMemory(4, 2)
	d.Write(tensor.Vector{1, 0}, 1, 1, 1, tensor.Vector{1, 1}, tensor.Vector{1, 1})
	d.Read(tensor.Vector{0.25, 0.25, 0.25, 0.25})
	if d.Ops.SoftWrites != 1 || d.Ops.SoftReads != 1 || d.Ops.Similarities != 1 {
		t.Fatalf("op counts wrong: %+v", d.Ops)
	}
}
