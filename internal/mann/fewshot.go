package mann

import (
	"repro/internal/cam"
	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/quant"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// Retriever is a pluggable support-set memory: the §IV study compares fp32
// cosine retrieval (the GPU baseline) against fixed-point alternative
// metrics and CAM-friendly encodings by swapping only this component.
type Retriever interface {
	// Name identifies the retrieval scheme in result tables.
	Name() string
	// Reset clears all stored entries.
	Reset()
	// Store writes a labelled support vector.
	Store(v tensor.Vector, label int)
	// Classify returns the predicted label for a query (-1 if empty).
	Classify(q tensor.Vector) int
}

// ExactRetriever retrieves with full-precision scores — the conventional
// software MANN memory.
type ExactRetriever struct {
	Metric Metric
	keys   []tensor.Vector
	labels []int
}

// Name implements Retriever.
func (r *ExactRetriever) Name() string { return "fp32-" + r.Metric.String() }

// Reset implements Retriever.
func (r *ExactRetriever) Reset() { r.keys, r.labels = nil, nil }

// Store implements Retriever.
func (r *ExactRetriever) Store(v tensor.Vector, label int) {
	r.keys = append(r.keys, v.Clone())
	r.labels = append(r.labels, label)
}

// Classify implements Retriever.
func (r *ExactRetriever) Classify(q tensor.Vector) int {
	n := r.Metric.Nearest(q, r.keys)
	if n < 0 {
		return -1
	}
	return r.labels[n]
}

// QuantizedRetriever stores and queries fixed-point feature vectors — the
// precision/metric combination study of §IV-B.1.
type QuantizedRetriever struct {
	Metric Metric
	Q      *quant.Quantizer
	keys   []tensor.Vector
	labels []int
}

// Name implements Retriever.
func (r *QuantizedRetriever) Name() string {
	return fmtBits(r.Q.Bits) + "-" + r.Metric.String()
}

func fmtBits(b int) string {
	digits := ""
	if b >= 10 {
		digits += string(rune('0' + b/10))
	}
	digits += string(rune('0' + b%10))
	return digits + "bit"
}

// Reset implements Retriever.
func (r *QuantizedRetriever) Reset() { r.keys, r.labels = nil, nil }

// Store implements Retriever.
func (r *QuantizedRetriever) Store(v tensor.Vector, label int) {
	r.keys = append(r.keys, r.Q.QuantizeVec(v))
	r.labels = append(r.labels, label)
}

// Classify implements Retriever.
func (r *QuantizedRetriever) Classify(q tensor.Vector) int {
	n := r.Metric.Nearest(r.Q.QuantizeVec(q), r.keys)
	if n < 0 {
		return -1
	}
	return r.labels[n]
}

// LSHRetriever hashes vectors to binary signatures and retrieves by minimum
// Hamming distance with a single parallel TCAM best-match search
// (§IV-B.2, Fig. 5).
type LSHRetriever struct {
	Hasher *lsh.Hasher
	TCAM   *cam.TCAM
	labels []int
}

// NewLSHRetriever builds the retriever with nPlanes hash bits.
func NewLSHRetriever(dim, nPlanes int, rng *rngutil.Source) *LSHRetriever {
	return &LSHRetriever{
		Hasher: lsh.NewHasher(dim, nPlanes, rng),
		TCAM:   cam.New(nPlanes),
	}
}

// Name implements Retriever.
func (r *LSHRetriever) Name() string { return "lsh-hamming" }

// Reset implements Retriever.
func (r *LSHRetriever) Reset() {
	r.TCAM = cam.New(r.Hasher.NumPlanes())
	r.labels = nil
}

// Store implements Retriever.
func (r *LSHRetriever) Store(v tensor.Vector, label int) {
	sig := r.Hasher.Sign(v)
	row := make(cam.Row, sig.Bits)
	for i := 0; i < sig.Bits; i++ {
		if sig.Get(i) {
			row[i] = cam.One
		}
	}
	r.TCAM.Store(row)
	r.labels = append(r.labels, label)
}

// Classify implements Retriever.
func (r *LSHRetriever) Classify(q tensor.Vector) int {
	sig := r.Hasher.Sign(q)
	row := make(cam.Row, sig.Bits)
	for i := 0; i < sig.Bits; i++ {
		if sig.Get(i) {
			row[i] = cam.One
		}
	}
	idx, _ := r.TCAM.BestMatch(row)
	if idx < 0 {
		return -1
	}
	return r.labels[idx]
}

// Searches reports the TCAM search count consumed so far.
func (r *LSHRetriever) Searches() int64 { return r.TCAM.Searches }

// CubeRetriever implements the RENE-style expanding-cube search of
// §IV-B.1: feature vectors are quantized, Gray-coded, and stored in a
// TCAM; a query issues L∞ cube searches of growing radius until candidates
// match, then ranks candidates by L2 in the near-memory function unit.
type CubeRetriever struct {
	Q     *quant.Quantizer
	Dim   int
	Radii []uint64

	tcam   *cam.TCAM
	codes  [][]int
	labels []int
}

// NewCubeRetriever builds the retriever for dim-dimensional vectors with
// the given fixed-point quantizer.
func NewCubeRetriever(q *quant.Quantizer, dim int) *CubeRetriever {
	return &CubeRetriever{
		Q:   q,
		Dim: dim,
		// One cube at the noise-matched radius plus a best-match fallback
		// keeps retrieval at "a few TCAM lookups" (§IV-B.1); calibrated for
		// the default few-shot universe and 4-bit codes.
		Radii: []uint64{7},
		tcam:  cam.New(dim * q.Bits),
	}
}

// Name implements Retriever.
func (r *CubeRetriever) Name() string { return fmtBits(r.Q.Bits) + "-tcam-cube-l2" }

// Reset implements Retriever.
func (r *CubeRetriever) Reset() {
	r.tcam = cam.New(r.Dim * r.Q.Bits)
	r.codes, r.labels = nil, nil
}

// Store implements Retriever.
func (r *CubeRetriever) Store(v tensor.Vector, label int) {
	codes := r.Q.Codes(v)
	row := make(cam.Row, 0, r.Dim*r.Q.Bits)
	for _, c := range codes {
		row = append(row, cam.GrayRow(uint64(c), r.Q.Bits)...)
	}
	r.tcam.Store(row)
	r.codes = append(r.codes, codes)
	r.labels = append(r.labels, label)
}

// alignedCover returns the ternary word for the smallest aligned Gray block
// containing [lo, hi] around value v (a single-word over-approximate cover;
// over-matching is harmless for a prefilter that is refined by L2).
func alignedCover(v, lo, hi uint64, bits int) cam.Row {
	k := 0
	for k < bits {
		mask := uint64(1)<<uint(k) - 1
		blockLo := v &^ mask
		blockHi := v | mask
		if blockLo <= lo && blockHi >= hi {
			break
		}
		k++
	}
	row := cam.GrayRow(v, bits)
	for i := 0; i < k && i < bits; i++ {
		row[i] = cam.X
	}
	return row
}

// Classify implements Retriever: expanding cube prefilter + L2 refine.
func (r *CubeRetriever) Classify(q tensor.Vector) int {
	if len(r.labels) == 0 {
		return -1
	}
	codes := r.Q.Codes(q)
	max := uint64(r.Q.Levels() - 1)
	for _, radius := range r.Radii {
		query := make(cam.Row, 0, r.Dim*r.Q.Bits)
		for _, c := range codes {
			v := uint64(c)
			lo := uint64(0)
			if v > radius {
				lo = v - radius
			}
			hi := v + radius
			if hi > max {
				hi = max
			}
			query = append(query, alignedCover(v, lo, hi, r.Q.Bits)...)
		}
		matches := r.tcam.SearchExact(query)
		if len(matches) == 0 {
			continue
		}
		// L2 refine among candidates, in code space.
		best, bestD := -1, int64(-1)
		for _, mi := range matches {
			var d int64
			for j, c := range r.codes[mi] {
				diff := int64(c - codes[j])
				d += diff * diff
			}
			if best == -1 || d < bestD {
				best, bestD = mi, d
			}
		}
		return r.labels[best]
	}
	// Fall back to a full degree-of-match search (one more TCAM op).
	q2 := make(cam.Row, 0, r.Dim*r.Q.Bits)
	for _, c := range codes {
		q2 = append(q2, cam.GrayRow(uint64(c), r.Q.Bits)...)
	}
	idx, _ := r.tcam.BestMatch(q2)
	return r.labels[idx]
}

// Searches reports TCAM lookups consumed so far — the "only a few TCAM
// lookups" cost claim of §IV-B.1.
func (r *CubeRetriever) Searches() int64 { return r.tcam.Searches }

// EvalConfig parameterizes one few-shot evaluation (experiment C4/F5).
type EvalConfig struct {
	NWay, KShot int
	NQuery      int // queries per class per episode
	Episodes    int
	// MemoryEntries pads the support memory with distractor entries from
	// outside classes up to this total (0 = no distractors), reproducing
	// the "512 memory entries" setting of §IV-B.1.
	MemoryEntries int
	Seed          uint64
}

// EvaluateFewShot measures classification accuracy of a retriever over
// episodic tasks drawn from the universe. Distractor entries are labelled
// -1 so retrieving one is always an error.
func EvaluateFewShot(u *dataset.FewShotUniverse, r Retriever, cfg EvalConfig) float64 {
	rng := rngutil.New(cfg.Seed)
	correct, total := 0, 0
	for e := 0; e < cfg.Episodes; e++ {
		r.Reset()
		ep := u.SampleEpisode(cfg.NWay, cfg.KShot, cfg.NQuery)
		for i, s := range ep.Support {
			r.Store(s, ep.SupportLabels[i])
		}
		inEpisode := make(map[int]bool, len(ep.Classes))
		for _, c := range ep.Classes {
			inEpisode[c] = true
		}
		for extra := len(ep.Support); extra < cfg.MemoryEntries; extra++ {
			c := rng.Intn(u.Cfg.Classes)
			for inEpisode[c] {
				c = rng.Intn(u.Cfg.Classes)
			}
			r.Store(u.Sample(c, rng), -1)
		}
		for qi, q := range ep.Query {
			if r.Classify(q) == ep.QueryLabels[qi] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
