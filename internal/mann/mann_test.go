package mann

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/quant"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func TestMetricStrings(t *testing.T) {
	for m, want := range map[Metric]string{
		Cosine: "cosine", L1: "l1", L2: "l2", Linf: "linf", LinfL2: "linf+l2",
	} {
		if m.String() != want {
			t.Errorf("String = %q, want %q", m.String(), want)
		}
	}
}

func TestMetricScores(t *testing.T) {
	a := tensor.Vector{0, 0}
	b := tensor.Vector{3, 4}
	if got := L2.Score(a, b); got != -5 {
		t.Errorf("L2 score = %v", got)
	}
	if got := L1.Score(a, b); got != -7 {
		t.Errorf("L1 score = %v", got)
	}
	if got := Linf.Score(a, b); got != -4 {
		t.Errorf("Linf score = %v", got)
	}
	if got := Cosine.Score(tensor.Vector{1, 0}, tensor.Vector{2, 0}); math.Abs(got-1) > 1e-9 {
		t.Errorf("Cosine score = %v", got)
	}
}

func TestNearestAllMetrics(t *testing.T) {
	keys := []tensor.Vector{{1, 0}, {0, 1}, {0.9, 0.1}}
	q := tensor.Vector{1, 0.05}
	for _, m := range []Metric{Cosine, L1, L2, Linf, LinfL2} {
		got := m.Nearest(q, keys)
		if got != 0 && got != 2 { // both are plausible nearest; never key 1
			t.Errorf("%v.Nearest = %d", m, got)
		}
	}
	if Cosine.Nearest(q, nil) != -1 {
		t.Error("empty keys should return -1")
	}
}

func TestTopKOrdering(t *testing.T) {
	keys := []tensor.Vector{{0, 0}, {1, 0}, {5, 0}, {0.1, 0}}
	q := tensor.Vector{0, 0}
	top := L2.TopK(q, keys, 3)
	if len(top) != 3 || top[0] != 0 || top[1] != 3 || top[2] != 1 {
		t.Fatalf("TopK = %v", top)
	}
	if got := L2.TopK(q, keys, 10); len(got) != 4 {
		t.Fatalf("TopK with k>n = %v", got)
	}
}

func TestKVMemoryBasics(t *testing.T) {
	m := NewKVMemory(3, Cosine)
	if m.Read(tensor.Vector{1, 0}) != -1 {
		t.Fatal("empty memory should return -1")
	}
	m.Write(tensor.Vector{1, 0}, 7)
	if m.Read(tensor.Vector{0.9, 0.1}) != 7 {
		t.Fatal("retrieval failed")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestKVMemoryRefreshSameClass(t *testing.T) {
	m := NewKVMemory(4, Cosine)
	m.Write(tensor.Vector{1, 0}, 1)
	m.Write(tensor.Vector{0.8, 0.2}, 1) // same class, near: refresh not insert
	if m.Len() != 1 {
		t.Fatalf("refresh should not grow memory: len=%d", m.Len())
	}
	// Key moved toward the new example.
	if m.Keys[0][1] == 0 {
		t.Fatal("refresh should average the key")
	}
}

func TestKVMemoryEvictsOldest(t *testing.T) {
	m := NewKVMemory(2, L2)
	m.Write(tensor.Vector{0, 0}, 0)
	m.Write(tensor.Vector{10, 10}, 1)
	m.Write(tensor.Vector{-10, 10}, 2) // evicts class 0 (oldest)
	if m.Len() != 2 {
		t.Fatalf("capacity exceeded: %d", m.Len())
	}
	if m.Read(tensor.Vector{0, 0}) == 0 {
		t.Fatal("oldest entry should have been evicted")
	}
}

func TestKVMemoryReadKMajority(t *testing.T) {
	m := NewKVMemory(8, L2)
	m.Write(tensor.Vector{0, 0}, 5)
	m.Write(tensor.Vector{0.1, 0}, 5)
	m.Write(tensor.Vector{0.2, 0}, 9)
	if got := m.ReadK(tensor.Vector{0.05, 0}, 3); got != 5 {
		t.Fatalf("ReadK = %d, want majority 5", got)
	}
	empty := NewKVMemory(2, L2)
	if empty.ReadK(tensor.Vector{0, 0}, 3) != -1 {
		t.Fatal("empty ReadK should be -1")
	}
}

func TestKVMemoryCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKVMemory(0, Cosine)
}

func TestNTMContentAddressing(t *testing.T) {
	m := NewNTMMemory(4, 3)
	copy(m.M.Row(0), tensor.Vector{1, 0, 0})
	copy(m.M.Row(1), tensor.Vector{0, 1, 0})
	copy(m.M.Row(2), tensor.Vector{0, 0, 1})
	copy(m.M.Row(3), tensor.Vector{1, 1, 0})
	w := m.ContentWeights(tensor.Vector{1, 0, 0}, 20)
	if w.ArgMax() != 0 {
		t.Fatalf("content weights should peak at row 0: %v", w)
	}
	if math.Abs(w.Sum()-1) > 1e-9 {
		t.Fatal("weights must be a distribution")
	}
	if m.Ops.Similarities != 1 || m.Ops.MACs != 12 {
		t.Fatalf("op accounting wrong: %+v", m.Ops)
	}
}

func TestNTMSoftReadIsWeightedSum(t *testing.T) {
	m := NewNTMMemory(2, 2)
	copy(m.M.Row(0), tensor.Vector{1, 0})
	copy(m.M.Row(1), tensor.Vector{0, 1})
	r := m.Read(tensor.Vector{0.25, 0.75})
	if math.Abs(r[0]-0.25) > 1e-9 || math.Abs(r[1]-0.75) > 1e-9 {
		t.Fatalf("soft read = %v", r)
	}
}

func TestNTMWriteEraseAdd(t *testing.T) {
	m := NewNTMMemory(2, 2)
	copy(m.M.Row(0), tensor.Vector{0.5, 0.5})
	ones := tensor.Vector{1, 1}
	m.Write(tensor.Vector{1, 0}, ones, tensor.Vector{0.9, 0.1})
	if math.Abs(m.M.At(0, 0)-0.9) > 1e-9 || math.Abs(m.M.At(0, 1)-0.1) > 1e-9 {
		t.Fatalf("full-weight write should replace: %v", m.M.Row(0))
	}
	// Partial weight: convex blend.
	m2 := NewNTMMemory(1, 1)
	m2.M.Set(0, 0, 1)
	m2.Write(tensor.Vector{0.5}, tensor.Vector{1}, tensor.Vector{0})
	if math.Abs(m2.M.At(0, 0)-0.5) > 1e-9 {
		t.Fatalf("half-weight erase wrong: %v", m2.M.At(0, 0))
	}
}

func TestNTMAddressingInterpolationAndShift(t *testing.T) {
	m := NewNTMMemory(4, 2)
	prev := tensor.Vector{1, 0, 0, 0}
	// Gate 0: ignore content, pure shift of prev by +1.
	p := HeadParams{Key: tensor.Vector{1, 1}, Beta: 1, Gate: 0, Shift: tensor.Vector{0, 0, 1}, Gamma: 1}
	w := m.Address(p, prev)
	want := tensor.Vector{0, 1, 0, 0}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-9 {
			t.Fatalf("shifted weights = %v, want %v", w, want)
		}
	}
	// Sharpening concentrates a soft distribution.
	soft := tensor.Vector{0.4, 0.3, 0.2, 0.1}
	p2 := HeadParams{Key: tensor.Vector{1, 1}, Beta: 1, Gate: 0, Shift: tensor.Vector{0, 1, 0}, Gamma: 4}
	w2 := m.Address(p2, soft)
	if w2[0] <= soft[0] {
		t.Fatal("gamma sharpening should concentrate mass")
	}
}

func TestCopyMachineExactRecall(t *testing.T) {
	rng := rngutil.New(3)
	seq := dataset.CopyTask(8, 6, rng)
	cm := NewCopyMachine(16, 6)
	out := cm.Run(seq)
	for t2, v := range out {
		for j := range v {
			if math.Abs(v[j]-seq[t2][j]) > 1e-6 {
				t.Fatalf("recall mismatch at step %d: %v vs %v", t2, v, seq[t2])
			}
		}
	}
	// The copy machine must have exercised all three memory op kinds.
	ops := cm.Mem.Ops
	if ops.SoftReads == 0 || ops.SoftWrites == 0 {
		t.Fatalf("ops not counted: %+v", ops)
	}
}

func TestCopyMachineTooLongPanics(t *testing.T) {
	cm := NewCopyMachine(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cm.Run(make([]tensor.Vector, 3))
}

// --- Few-shot retrieval accuracy (C4 / F5 shape at test scale) ---

func fewshotUniverse() *dataset.FewShotUniverse {
	return dataset.NewFewShotUniverse(dataset.DefaultFewShot(), rngutil.New(7))
}

func quickEval(t *testing.T, r Retriever) float64 {
	t.Helper()
	u := fewshotUniverse()
	return EvaluateFewShot(u, r, EvalConfig{
		NWay: 5, KShot: 1, NQuery: 2, Episodes: 25, MemoryEntries: 128, Seed: 11,
	})
}

func TestCosineBaselineNear99(t *testing.T) {
	acc := quickEval(t, &ExactRetriever{Metric: Cosine})
	if acc < 0.96 {
		t.Fatalf("fp32 cosine accuracy %v below the paper's ~99%% band", acc)
	}
}

func TestCombinedMetricBelowCosineButStrong(t *testing.T) {
	cos := quickEval(t, &ExactRetriever{Metric: Cosine})
	comb := quickEval(t, &QuantizedRetriever{Metric: LinfL2, Q: quant.New(4, 0.4)})
	if comb > cos {
		t.Fatalf("4-bit linf+l2 %v should not beat fp32 cosine %v", comb, cos)
	}
	if comb < 0.85 {
		t.Fatalf("4-bit linf+l2 %v collapsed; calibration broken", comb)
	}
}

func TestPureLinfWorstMetric(t *testing.T) {
	linf := quickEval(t, &QuantizedRetriever{Metric: Linf, Q: quant.New(4, 0.4)})
	l2 := quickEval(t, &QuantizedRetriever{Metric: L2, Q: quant.New(4, 0.4)})
	if linf >= l2 {
		t.Fatalf("pure L∞ %v should trail L2 %v (the motivation for combining)", linf, l2)
	}
}

func TestLSHApproachesCosine(t *testing.T) {
	cos := quickEval(t, &ExactRetriever{Metric: Cosine})
	lshAcc := quickEval(t, NewLSHRetriever(64, 512, rngutil.New(3)))
	if lshAcc < cos-0.08 {
		t.Fatalf("LSH-512 %v should approach cosine %v (Fig. 5 inset)", lshAcc, cos)
	}
}

func TestMorePlanesBetterLSH(t *testing.T) {
	small := quickEval(t, NewLSHRetriever(64, 32, rngutil.New(3)))
	big := quickEval(t, NewLSHRetriever(64, 512, rngutil.New(3)))
	if big <= small {
		t.Fatalf("512 planes %v should beat 32 planes %v", big, small)
	}
}

func TestCubeRetrieverFewLookups(t *testing.T) {
	u := fewshotUniverse()
	c := NewCubeRetriever(quant.New(4, 0.4), 64)
	acc := EvaluateFewShot(u, c, EvalConfig{
		NWay: 5, KShot: 1, NQuery: 2, Episodes: 10, MemoryEntries: 128, Seed: 13,
	})
	if acc < 0.85 {
		t.Fatalf("cube retriever accuracy %v too low", acc)
	}
	// Lookups per query in the final episode must be "a few", not M·D.
	perQuery := float64(c.Searches()) / 10.0
	if perQuery > 4 {
		t.Fatalf("%v TCAM lookups per query; expected a few", perQuery)
	}
}

func TestRetrieverNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, r := range []Retriever{
		&ExactRetriever{Metric: Cosine},
		&QuantizedRetriever{Metric: LinfL2, Q: quant.New(4, 0.4)},
		NewLSHRetriever(8, 16, rngutil.New(1)),
		NewCubeRetriever(quant.New(4, 0.4), 8),
	} {
		if names[r.Name()] {
			t.Fatalf("duplicate retriever name %q", r.Name())
		}
		names[r.Name()] = true
	}
}

func TestEvaluateFewShotEmptyConfig(t *testing.T) {
	u := fewshotUniverse()
	if acc := EvaluateFewShot(u, &ExactRetriever{Metric: Cosine}, EvalConfig{}); acc != 0 {
		t.Fatalf("zero-episode eval should be 0, got %v", acc)
	}
}

// Lifelong learning: accuracy must grow with memory capacity once the
// class stream outgrows the memory (§IV-C's case for larger MANN memories).
func TestLifelongAccuracyGrowsWithCapacity(t *testing.T) {
	u := fewshotUniverse()
	const nClasses, perClass, queries = 60, 2, 150
	small := LifelongAccuracy(u, 16, nClasses, perClass, queries, 5)
	medium := LifelongAccuracy(u, 60, nClasses, perClass, queries, 5)
	large := LifelongAccuracy(u, 160, nClasses, perClass, queries, 5)
	if !(small < medium && medium <= large) {
		t.Fatalf("capacity curve not monotone: %v %v %v", small, medium, large)
	}
	if large < 0.9 {
		t.Fatalf("full-capacity lifelong accuracy %v too low", large)
	}
	if small > 0.55 {
		t.Fatalf("tiny memory should forget most classes, got %v", small)
	}
}
