package mann

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// MatchingNet is an episodically trained embedding network with cosine
// attention over the support set — the matching-network approach to
// one-shot learning (the paper's ref. [5], Vinyals et al.), i.e. the
// "helper network that generates feature embeddings" of §VI. The query's
// class distribution is softmax(β·cos(f(q), f(sᵢ))) summed per class;
// training backpropagates the episode cross-entropy through the attention
// into the shared embedding MLP.
type MatchingNet struct {
	Embed *nn.MLP
	Beta  float64
}

// NewMatchingNet builds an embedding MLP inDim → hidden → embedDim.
func NewMatchingNet(inDim, hidden, embedDim int, beta float64, rng *rngutil.Source) *MatchingNet {
	return &MatchingNet{
		Embed: nn.NewMLP([]int{inDim, hidden, embedDim}, nn.TanhAct, nn.Identity, nn.DenseFactory(rng)),
		Beta:  beta,
	}
}

// classProbs computes the per-support attention p and the per-class
// probabilities for a query embedding.
func (m *MatchingNet) classProbs(eq tensor.Vector, supports []tensor.Vector, labels []int, nway int) (p tensor.Vector, classP tensor.Vector) {
	logits := make(tensor.Vector, len(supports))
	for i, es := range supports {
		logits[i] = m.Beta * tensor.CosineSimilarity(eq, es)
	}
	p = tensor.Softmax(logits)
	classP = make(tensor.Vector, nway)
	for i, pi := range p {
		classP[labels[i]] += pi
	}
	return p, classP
}

// Classify predicts the episode-local label of a query given raw support
// vectors.
func (m *MatchingNet) Classify(q tensor.Vector, supports []tensor.Vector, labels []int, nway int) int {
	eq := m.Embed.Forward(q).Clone()
	es := make([]tensor.Vector, len(supports))
	for i, s := range supports {
		es[i] = m.Embed.Forward(s).Clone()
	}
	_, classP := m.classProbs(eq, es, labels, nway)
	return classP.ArgMax()
}

// cosGrad returns d cos(a,b) / da.
func cosGrad(a, b tensor.Vector) tensor.Vector {
	na := a.Norm2() + 1e-12
	nb := b.Norm2() + 1e-12
	cos := tensor.Dot(a, b) / (na * nb)
	g := make(tensor.Vector, len(a))
	for i := range g {
		g[i] = b[i]/(na*nb) - cos*a[i]/(na*na)
	}
	return g
}

// TrainEpisode performs one SGD step on a full episode and returns the mean
// query cross-entropy before the update.
func (m *MatchingNet) TrainEpisode(ep *dataset.Episode, lr float64) float64 {
	// Embed all supports once (treated as constants during the query pass;
	// their own gradients are accumulated and applied afterwards).
	es := make([]tensor.Vector, len(ep.Support))
	for i, s := range ep.Support {
		es[i] = m.Embed.Forward(s).Clone()
	}
	dSupports := make([]tensor.Vector, len(ep.Support))
	for i := range dSupports {
		dSupports[i] = tensor.NewVector(len(es[i]))
	}

	var totalLoss float64
	for qi, q := range ep.Query {
		eq := m.Embed.Forward(q).Clone()
		p, classP := m.classProbs(eq, es, ep.SupportLabels, ep.NWay)
		y := ep.QueryLabels[qi]
		P := math.Max(classP[y], 1e-12)
		totalLoss += -math.Log(P)

		// dL/dlogit_i = p_i − p_i·1[label_i==y]/P.
		dEq := tensor.NewVector(len(eq))
		for i := range p {
			dlogit := p[i]
			if ep.SupportLabels[i] == y {
				dlogit -= p[i] / P
			}
			if dlogit == 0 {
				continue
			}
			scale := m.Beta * dlogit
			dEq.AXPY(scale, cosGrad(eq, es[i]))
			dSupports[i].AXPY(scale, cosGrad(es[i], eq))
		}
		// The embedding cache still holds q's forward pass.
		m.Embed.Backward(dEq, lr)
	}

	// Apply accumulated support gradients (one re-forward each to restore
	// the layer caches for backprop).
	for i, s := range ep.Support {
		m.Embed.Forward(s)
		m.Embed.Backward(dSupports[i], lr)
	}
	return totalLoss / float64(len(ep.Query))
}

// MetaTrain runs episodic training against a universe and returns the mean
// loss of the final 10 % of episodes.
func (m *MatchingNet) MetaTrain(u *dataset.FewShotUniverse, nway, kshot, nquery, episodes int, lr float64) float64 {
	var tail float64
	tailStart := episodes * 9 / 10
	count := 0
	for e := 0; e < episodes; e++ {
		ep := u.SampleEpisode(nway, kshot, nquery)
		loss := m.TrainEpisode(ep, lr)
		if e >= tailStart {
			tail += loss
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return tail / float64(count)
}

// EvaluateMatching measures episodic accuracy of the (frozen) matching net
// on a universe — typically one whose classes were never seen in training.
func EvaluateMatching(m *MatchingNet, u *dataset.FewShotUniverse, nway, kshot, nquery, episodes int) float64 {
	correct, total := 0, 0
	for e := 0; e < episodes; e++ {
		ep := u.SampleEpisode(nway, kshot, nquery)
		for qi, q := range ep.Query {
			if m.Classify(q, ep.Support, ep.SupportLabels, ep.NWay) == ep.QueryLabels[qi] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// EvaluateRawCosine is the no-embedding baseline on the same protocol.
func EvaluateRawCosine(u *dataset.FewShotUniverse, nway, kshot, nquery, episodes int) float64 {
	correct, total := 0, 0
	for e := 0; e < episodes; e++ {
		ep := u.SampleEpisode(nway, kshot, nquery)
		for qi, q := range ep.Query {
			if Cosine.Nearest(q, ep.Support) >= 0 &&
				ep.SupportLabels[Cosine.Nearest(q, ep.Support)] == ep.QueryLabels[qi] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
