package mann

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func nuisanceConfig() dataset.FewShotConfig {
	return dataset.FewShotConfig{
		Classes: 120, Dim: 32, Noise: 0.6,
		NuisanceDims: 32, NuisanceStd: 0.3,
	}
}

func TestCosGradNumeric(t *testing.T) {
	rng := rngutil.New(1)
	a := make(tensor.Vector, 5)
	b := make(tensor.Vector, 5)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	g := cosGrad(a, b)
	const h = 1e-6
	for i := range a {
		ap := a.Clone()
		ap[i] += h
		am := a.Clone()
		am[i] -= h
		num := (tensor.CosineSimilarity(ap, b) - tensor.CosineSimilarity(am, b)) / (2 * h)
		if math.Abs(num-g[i]) > 1e-5 {
			t.Fatalf("cosGrad[%d]: numeric %v vs analytic %v", i, num, g[i])
		}
	}
}

func TestMatchingNetClassifiesObviousEpisode(t *testing.T) {
	// Even untrained, an identity-ish embedding should solve well-separated
	// supports most of the time; here we just exercise the full path.
	rng := rngutil.New(2)
	net := NewMatchingNet(4, 8, 4, 10, rng)
	supports := []tensor.Vector{{1, 0, 0, 0}, {0, 0, 0, 1}}
	labels := []int{0, 1}
	got := net.Classify(tensor.Vector{1, 0.01, 0, 0}, supports, labels, 2)
	if got != 0 && got != 1 {
		t.Fatalf("Classify returned invalid label %d", got)
	}
}

func TestMatchingNetEpisodeLossDecreases(t *testing.T) {
	cfg := nuisanceConfig()
	u := dataset.NewFewShotUniverse(cfg, rngutil.New(3))
	net := NewMatchingNet(cfg.TotalDim(), 48, 24, 10, rngutil.New(4))
	var first, last float64
	const episodes = 120
	for e := 0; e < episodes; e++ {
		loss := net.TrainEpisode(u.SampleEpisode(5, 1, 3), 0.02)
		if e < 10 {
			first += loss
		}
		if e >= episodes-10 {
			last += loss
		}
	}
	if last >= first {
		t.Fatalf("episodic loss did not decrease: first10=%v last10=%v", first/10, last/10)
	}
}

// The meta-learning headline: a matching net trained on one set of classes
// transfers to *unseen* classes and beats raw cosine on a universe with
// nuisance dimensions.
func TestMatchingNetBeatsRawCosineOnUnseenClasses(t *testing.T) {
	cfg := nuisanceConfig()
	trainU := dataset.NewFewShotUniverse(cfg, rngutil.New(1))
	evalU := dataset.NewFewShotUniverse(cfg, rngutil.New(2)) // disjoint classes

	raw := EvaluateRawCosine(evalU, 5, 1, 3, 50)
	net := NewMatchingNet(cfg.TotalDim(), 48, 24, 10, rngutil.New(3))
	net.MetaTrain(trainU, 5, 1, 3, 300, 0.02)
	learned := EvaluateMatching(net, evalU, 5, 1, 3, 50)

	if learned < raw+0.08 {
		t.Fatalf("trained embedding %v should clearly beat raw cosine %v", learned, raw)
	}
}

func TestEvaluateHelpersEmpty(t *testing.T) {
	cfg := nuisanceConfig()
	u := dataset.NewFewShotUniverse(cfg, rngutil.New(9))
	net := NewMatchingNet(cfg.TotalDim(), 8, 4, 10, rngutil.New(10))
	if EvaluateMatching(net, u, 5, 1, 3, 0) != 0 {
		t.Fatal("zero episodes should evaluate to 0")
	}
	if EvaluateRawCosine(u, 5, 1, 3, 0) != 0 {
		t.Fatal("zero episodes should evaluate to 0")
	}
	if net.MetaTrain(u, 5, 1, 2, 0, 0.01) != 0 {
		t.Fatal("zero-episode training should report 0")
	}
}

func TestNuisanceDimsHurtRawCosine(t *testing.T) {
	clean := dataset.FewShotConfig{Classes: 120, Dim: 32, Noise: 0.6}
	dirty := nuisanceConfig()
	cleanAcc := EvaluateRawCosine(dataset.NewFewShotUniverse(clean, rngutil.New(5)), 5, 1, 3, 40)
	dirtyAcc := EvaluateRawCosine(dataset.NewFewShotUniverse(dirty, rngutil.New(5)), 5, 1, 3, 40)
	if dirtyAcc >= cleanAcc {
		t.Fatalf("nuisance dims should hurt raw cosine: clean %v dirty %v", cleanAcc, dirtyAcc)
	}
}
