package mann

import (
	"fmt"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// KVMemory is the lifelong key-value memory module of the paper's refs.
// [6]/[48] (Kaiser et al., "Learning to Remember Rare Events"): an external
// associative memory holding (key, class, age) triples. Writes insert new
// entries or refresh matching ones; when full, the oldest entry is evicted.
// Reads return the class of the most similar key. Caching support examples
// here is what prevents a MANN from overfitting to its most recent classes
// (§IV-A).
type KVMemory struct {
	Capacity int
	Metric   Metric

	Keys   []tensor.Vector
	Labels []int
	Ages   []int

	clock int
}

// NewKVMemory builds an empty memory with the given capacity and retrieval
// metric.
func NewKVMemory(capacity int, metric Metric) *KVMemory {
	if capacity <= 0 {
		panic(fmt.Sprintf("mann: capacity must be positive, got %d", capacity))
	}
	return &KVMemory{Capacity: capacity, Metric: metric}
}

// Len reports the number of stored entries.
func (m *KVMemory) Len() int { return len(m.Keys) }

// Write inserts (key, label). If the nearest stored key already has this
// label, that entry is refreshed (moving-average key update, age reset);
// otherwise a new entry is inserted, evicting the oldest when full.
func (m *KVMemory) Write(key tensor.Vector, label int) {
	m.clock++
	if n := m.Metric.Nearest(key, m.Keys); n >= 0 && m.Labels[n] == label {
		// Refresh: average the stored key toward the new example.
		stored := m.Keys[n]
		for i := range stored {
			stored[i] = 0.5 * (stored[i] + key[i])
		}
		m.Ages[n] = m.clock
		return
	}
	if len(m.Keys) >= m.Capacity {
		oldest := 0
		for i, a := range m.Ages {
			if a < m.Ages[oldest] {
				oldest = i
			}
		}
		m.Keys[oldest] = key.Clone()
		m.Labels[oldest] = label
		m.Ages[oldest] = m.clock
		return
	}
	m.Keys = append(m.Keys, key.Clone())
	m.Labels = append(m.Labels, label)
	m.Ages = append(m.Ages, m.clock)
}

// Read returns the label of the entry most similar to the query, or -1 for
// an empty memory.
func (m *KVMemory) Read(query tensor.Vector) int {
	n := m.Metric.Nearest(query, m.Keys)
	if n < 0 {
		return -1
	}
	return m.Labels[n]
}

// ReadK returns the majority label among the k most similar entries (ties
// broken toward the more similar entry), or -1 for an empty memory.
func (m *KVMemory) ReadK(query tensor.Vector, k int) int {
	idxs := m.Metric.TopK(query, m.Keys, k)
	if len(idxs) == 0 {
		return -1
	}
	votes := map[int]int{}
	best, bestVotes := m.Labels[idxs[0]], 0
	for _, i := range idxs {
		votes[m.Labels[i]]++
		if votes[m.Labels[i]] > bestVotes {
			best, bestVotes = m.Labels[i], votes[m.Labels[i]]
		}
	}
	return best
}

// LifelongAccuracy streams nClasses·perClass labelled examples through a
// capacity-limited KVMemory (writes interleaved across classes), then
// queries every class. Once the class count outgrows the capacity, the
// age-based eviction forgets early classes — so accuracy rises with memory
// size. This is the §IV-C argument for denser CAM cells: the same
// transistor budget holds more entries, and more entries remember more.
func LifelongAccuracy(u LifelongSource, capacity, nClasses, perClass, queries int, seed uint64) float64 {
	rng := rngutil.New(seed)
	mem := NewKVMemory(capacity, Cosine)
	for k := 0; k < perClass; k++ {
		for c := 0; c < nClasses; c++ {
			mem.Write(u.Sample(c, rng.Child("w")), c)
		}
	}
	correct, total := 0, 0
	for q := 0; q < queries; q++ {
		c := rng.Intn(nClasses)
		if mem.Read(u.Sample(c, rng.Child("q"))) == c {
			correct++
		}
		total++
	}
	return float64(correct) / float64(total)
}

// LifelongSource is the sampling interface LifelongAccuracy needs; it is
// satisfied by *dataset.FewShotUniverse.
type LifelongSource interface {
	Sample(class int, rng *rngutil.Source) tensor.Vector
}
