// Package mann implements memory-augmented neural networks: the NTM-style
// differentiable memory of §III (content addressing, soft read, soft write),
// the key-value lifelong memory module used for one/few-shot learning in
// §IV, the similarity metrics the paper's CAM study compares (cosine, L1,
// L2, L∞, combined L∞+L2, LSH Hamming), and the episodic evaluation harness
// that produces the accuracy tables of experiments C4 and F5.
package mann

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Metric identifies a vector similarity/distance used for memory retrieval.
type Metric int

// Supported retrieval metrics. Similarities are converted internally so
// that *larger Score is always better*.
const (
	Cosine Metric = iota
	L1
	L2
	Linf
	// LinfL2 is the combined metric of §IV-B.1 (paper ref. [48]): an L∞
	// prefilter selects a candidate set (cheap on a TCAM via cube queries)
	// and L2 ranks within it.
	LinfL2
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case L1:
		return "l1"
	case L2:
		return "l2"
	case Linf:
		return "linf"
	case LinfL2:
		return "linf+l2"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Score returns the similarity of query and key under m (larger = more
// similar). Distances are negated.
func (m Metric) Score(query, key tensor.Vector) float64 {
	switch m {
	case Cosine:
		return tensor.CosineSimilarity(query, key)
	case L1:
		return -tensor.ManhattanDistance(query, key)
	case L2:
		return -tensor.EuclideanDistance(query, key)
	case Linf:
		return -tensor.ChebyshevDistance(query, key)
	case LinfL2:
		// Pairwise fallback when the combined metric is scored one key at a
		// time; Nearest implements the real two-stage form.
		return -tensor.ChebyshevDistance(query, key)
	}
	panic("mann: unknown metric")
}

// Nearest returns the index of the best-scoring key for the query, or -1
// for an empty key set. For LinfL2 it performs the two-stage search of
// §IV-B.1: an L∞ prefilter retains keys within 25 % of the best cube
// radius, and L2 ranks the survivors.
func (m Metric) Nearest(query tensor.Vector, keys []tensor.Vector) int {
	if m == LinfL2 {
		return nearestLinfL2(query, keys)
	}
	best, bestScore := -1, math.Inf(-1)
	for i, k := range keys {
		if s := m.Score(query, k); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// nearestLinfL2 is the software rendering of the TCAM flow: find the
// minimal L∞ cube radius that contains at least one key, widen it slightly
// (one expansion step), and pick the L2-nearest key inside.
func nearestLinfL2(query tensor.Vector, keys []tensor.Vector) int {
	if len(keys) == 0 {
		return -1
	}
	dists := make([]float64, len(keys))
	minD := math.Inf(1)
	for i, k := range keys {
		dists[i] = tensor.ChebyshevDistance(query, k)
		if dists[i] < minD {
			minD = dists[i]
		}
	}
	cutoff := minD * 1.25
	best, bestL2 := -1, math.Inf(1)
	for i, k := range keys {
		if dists[i] > cutoff {
			continue
		}
		if d := tensor.EuclideanDistance(query, k); d < bestL2 {
			best, bestL2 = i, d
		}
	}
	return best
}

// TopK returns the indices of the k best-scoring keys, best first.
func (m Metric) TopK(query tensor.Vector, keys []tensor.Vector, k int) []int {
	type scored struct {
		idx   int
		score float64
	}
	top := make([]scored, 0, k+1)
	for i, key := range keys {
		s := m.Score(query, key)
		pos := len(top)
		for pos > 0 && top[pos-1].score < s {
			pos--
		}
		if pos < k {
			top = append(top, scored{})
			copy(top[pos+1:], top[pos:])
			top[pos] = scored{i, s}
			if len(top) > k {
				top = top[:k]
			}
		}
	}
	out := make([]int, len(top))
	for i, s := range top {
		out[i] = s.idx
	}
	return out
}
