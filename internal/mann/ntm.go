package mann

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MemOps counts differentiable-memory operations, the quantities X-MANN
// maps onto crossbar hardware (§III): every op also records its digital
// MAC-equivalent cost, which is what a CPU/GPU pays.
type MemOps struct {
	Similarities int64 // full-memory similarity sweeps
	SoftReads    int64
	SoftWrites   int64
	MACs         int64 // digital multiply-accumulate equivalents
}

// NTMMemory is the N×W differentiable memory matrix of a Neural Turing
// Machine (paper refs. [3], [8]) with the standard addressing pipeline:
// content similarity → sharpen (β) → interpolation gate → convolutional
// shift → sharpening (γ), and soft read / erase-add write heads. All
// operations touch every memory location — the property that makes the
// memory the performance and energy bottleneck on conventional hardware.
type NTMMemory struct {
	N, W int
	M    *tensor.Matrix
	Ops  MemOps
}

// NewNTMMemory returns an all-small-constant memory (the usual NTM init).
func NewNTMMemory(n, w int) *NTMMemory {
	m := &NTMMemory{N: n, W: w, M: tensor.NewMatrix(n, w)}
	m.M.Fill(1e-6)
	return m
}

// HeadParams are the addressing parameters a controller emits per head per
// time step.
type HeadParams struct {
	Key   tensor.Vector // content key, length W
	Beta  float64       // content sharpening ≥ 0
	Gate  float64       // ∈[0,1]: 1 = content addressing, 0 = previous weights
	Shift tensor.Vector // distribution over shifts {-1, 0, +1}
	Gamma float64       // final sharpening ≥ 1
}

// ContentWeights returns softmax(β · cosine(key, M_i)) over all rows — one
// full-memory similarity sweep.
func (m *NTMMemory) ContentWeights(key tensor.Vector, beta float64) tensor.Vector {
	if len(key) != m.W {
		panic(fmt.Sprintf("mann: key width %d, memory width %d", len(key), m.W))
	}
	sims := make(tensor.Vector, m.N)
	for i := 0; i < m.N; i++ {
		sims[i] = tensor.CosineSimilarity(key, m.M.Row(i))
	}
	m.Ops.Similarities++
	m.Ops.MACs += int64(m.N) * int64(m.W)
	return tensor.SoftmaxT(sims, beta)
}

// Address runs the full NTM addressing pipeline given the previous weights.
func (m *NTMMemory) Address(p HeadParams, prev tensor.Vector) tensor.Vector {
	wc := m.ContentWeights(p.Key, p.Beta)
	// Interpolation.
	wg := make(tensor.Vector, m.N)
	for i := range wg {
		wg[i] = p.Gate*wc[i] + (1-p.Gate)*prev[i]
	}
	// Circular convolutional shift with kernel over {-1, 0, +1}.
	ws := make(tensor.Vector, m.N)
	for i := range ws {
		for s, p2 := range p.Shift {
			offset := s - 1 // shift amount
			src := ((i-offset)%m.N + m.N) % m.N
			ws[i] += wg[src] * p2
		}
	}
	// Sharpen.
	if p.Gamma != 1 {
		var sum float64
		for i := range ws {
			ws[i] = math.Pow(math.Max(ws[i], 0), p.Gamma)
			sum += ws[i]
		}
		if sum > 0 {
			ws.Scale(1 / sum)
		}
	}
	return ws
}

// Read performs the soft read r = wᵀM — every location contributes in
// proportion to its weight.
func (m *NTMMemory) Read(w tensor.Vector) tensor.Vector {
	if len(w) != m.N {
		panic(fmt.Sprintf("mann: weight length %d, memory rows %d", len(w), m.N))
	}
	m.Ops.SoftReads++
	m.Ops.MACs += int64(m.N) * int64(m.W)
	return m.M.MatVecT(w)
}

// Write performs the soft write: M ← M ∘ (1 − w⊗erase) + w⊗add.
func (m *NTMMemory) Write(w, erase, add tensor.Vector) {
	if len(w) != m.N || len(erase) != m.W || len(add) != m.W {
		panic("mann: write shape mismatch")
	}
	for i := 0; i < m.N; i++ {
		row := m.M.Row(i)
		wi := w[i]
		if wi == 0 {
			continue
		}
		for j := range row {
			row[j] = row[j]*(1-wi*erase[j]) + wi*add[j]
		}
	}
	m.Ops.SoftWrites++
	m.Ops.MACs += 2 * int64(m.N) * int64(m.W)
}

// OneHot returns a weight vector focused entirely on row i.
func (m *NTMMemory) OneHot(i int) tensor.Vector {
	w := tensor.NewVector(m.N)
	w[i%m.N] = 1
	return w
}

// CopyMachine wires an NTMMemory into the classic copy task: the sequence
// is written to consecutive locations via shift-based addressing, then read
// back. It demonstrates (and tests) the full soft read/write mechanics with
// an exactly checkable result.
type CopyMachine struct {
	Mem *NTMMemory
}

// NewCopyMachine builds a machine able to store sequences up to n vectors
// of width w.
func NewCopyMachine(n, w int) *CopyMachine {
	return &CopyMachine{Mem: NewNTMMemory(n, w)}
}

// Run stores the sequence then recalls it, returning the recalled vectors.
func (c *CopyMachine) Run(seq []tensor.Vector) []tensor.Vector {
	if len(seq) > c.Mem.N {
		panic("mann: sequence longer than memory")
	}
	ones := tensor.NewVector(c.Mem.W)
	ones.Fill(1)
	// Write phase: location-based addressing marching forward.
	w := c.Mem.OneHot(0)
	shiftFwd := tensor.Vector{0, 0, 1} // shift +1
	for t, x := range seq {
		c.Mem.Write(w, ones, x)
		if t < len(seq)-1 {
			w = c.Mem.Address(HeadParams{Key: x, Beta: 0, Gate: 0, Shift: shiftFwd, Gamma: 1}, w)
		}
	}
	// Read phase: rewind to location 0 and march again.
	w = c.Mem.OneHot(0)
	out := make([]tensor.Vector, len(seq))
	for t := range seq {
		out[t] = c.Mem.Read(w)
		if t < len(seq)-1 {
			w = c.Mem.Address(HeadParams{Key: out[t], Beta: 0, Gate: 0, Shift: shiftFwd, Gamma: 1}, w)
		}
	}
	return out
}
