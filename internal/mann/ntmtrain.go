package mann

import (
	"math"

	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// TrainableNTM is a Neural Turing Machine trained end-to-end with
// backpropagation through time *through the differentiable memory*: the
// LSTM controller, the head-parameter projections, the content/interpolate/
// shift addressing pipeline, the erase-add soft writes, and the soft reads
// all carry gradients (paper refs. [3], [8]; the workload class §III
// accelerates). Addressing uses γ=1 (no final sharpening), the standard
// simplification that keeps the copy task learnable at small scale.
type TrainableNTM struct {
	N, W, In, Out, H int

	Ctrl *nn.LSTM // input: [x; r_prev]

	// Head projections from the controller state (read head, write head).
	rKey, wKey     *linear // W outputs, tanh
	rBeta, wBeta   *linear // 1 output, softplus
	rGate, wGate   *linear // 1 output, sigmoid
	rShift, wShift *linear // 3 outputs, softmax
	erase, add     *linear // W outputs, sigmoid / tanh
	out            *linear // Out outputs from [h; r], sigmoid
}

// linear is a bias-carrying dense projection with explicit gradient
// accumulation (the BPTT bookkeeping nn.DenseLayer does not provide).
type linear struct {
	W  *tensor.Matrix
	B  tensor.Vector
	DW *tensor.Matrix
	DB tensor.Vector
}

func newLinear(out, in int, rng *rngutil.Source) *linear {
	l := &linear{
		W: tensor.NewMatrix(out, in), B: tensor.NewVector(out),
		DW: tensor.NewMatrix(out, in), DB: tensor.NewVector(out),
	}
	nn.InitXavier(l.W, rng)
	return l
}

func (l *linear) fwd(x tensor.Vector) tensor.Vector {
	y := l.W.MatVec(x)
	y.Add(l.B)
	return y
}

// bwd accumulates parameter gradients for input x and output gradient dy,
// returning dL/dx.
func (l *linear) bwd(x, dy tensor.Vector) tensor.Vector {
	l.DW.AddOuter(1, dy, x)
	l.DB.Add(dy)
	return l.W.MatVecT(dy)
}

func (l *linear) zeroGrad() {
	l.DW.Fill(0)
	l.DB.Fill(0)
}

func (l *linear) gradNorm() float64 { return l.DW.FrobeniusNorm() + l.DB.Norm2() }

func (l *linear) apply(lr, scale float64) {
	for i := range l.W.Data {
		l.W.Data[i] -= lr * scale * l.DW.Data[i]
	}
	for i := range l.B {
		l.B[i] -= lr * scale * l.DB[i]
	}
}

func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	return math.Log1p(math.Exp(x))
}

// NewTrainableNTM builds the machine: memory N×W, inputs In, outputs Out,
// controller hidden size H.
func NewTrainableNTM(n, w, in, out, h int, rng *rngutil.Source) *TrainableNTM {
	m := &TrainableNTM{
		N: n, W: w, In: in, Out: out, H: h,
		Ctrl:   nn.NewLSTM(in+w, h, rng.Child("ctrl")),
		rKey:   newLinear(w, h, rng.Child("rkey")),
		wKey:   newLinear(w, h, rng.Child("wkey")),
		rBeta:  newLinear(1, h, rng.Child("rbeta")),
		wBeta:  newLinear(1, h, rng.Child("wbeta")),
		rGate:  newLinear(1, h, rng.Child("rgate")),
		wGate:  newLinear(1, h, rng.Child("wgate")),
		rShift: newLinear(3, h, rng.Child("rshift")),
		wShift: newLinear(3, h, rng.Child("wshift")),
		erase:  newLinear(w, h, rng.Child("erase")),
		add:    newLinear(w, h, rng.Child("add")),
		out:    newLinear(out, h+w, rng.Child("out")),
	}
	return m
}

// headFwd caches one head's addressing intermediates.
type headFwd struct {
	keyRaw, key     tensor.Vector
	betaRaw, beta   float64
	gateRaw, gate   float64
	shiftRaw, shift tensor.Vector
	sims, wc, wg, w tensor.Vector
	wPrev           tensor.Vector
}

// ntmStep caches one time step.
type ntmStep struct {
	x, ctrlIn        tensor.Vector
	ctrlCache        *nn.StepCache
	h                tensor.Vector
	MPrev, MNew      *tensor.Matrix
	read, write      *headFwd
	eraseRaw, eraseV tensor.Vector
	addRaw, addV     tensor.Vector
	rPrev, r         tensor.Vector
	outIn, yRaw, y   tensor.Vector
}

// address runs the γ=1 addressing pipeline against memory M.
func (m *TrainableNTM) address(h tensor.Vector, M *tensor.Matrix, wPrev tensor.Vector,
	keyL, betaL, gateL, shiftL *linear) *headFwd {
	f := &headFwd{wPrev: wPrev.Clone()}
	f.keyRaw = keyL.fwd(h)
	f.key = tensor.Apply(f.keyRaw, tensor.Tanh)
	f.betaRaw = betaL.fwd(h)[0]
	f.beta = softplus(f.betaRaw)
	f.gateRaw = gateL.fwd(h)[0]
	f.gate = tensor.Sigmoid(f.gateRaw)
	f.shiftRaw = shiftL.fwd(h)
	f.shift = tensor.Softmax(f.shiftRaw)

	f.sims = make(tensor.Vector, m.N)
	for i := 0; i < m.N; i++ {
		f.sims[i] = tensor.CosineSimilarity(f.key, M.Row(i))
	}
	f.wc = tensor.SoftmaxT(f.sims, f.beta)
	f.wg = make(tensor.Vector, m.N)
	for i := range f.wg {
		f.wg[i] = f.gate*f.wc[i] + (1-f.gate)*wPrev[i]
	}
	f.w = make(tensor.Vector, m.N)
	for i := range f.w {
		for s, p := range f.shift {
			offset := s - 1
			src := ((i-offset)%m.N + m.N) % m.N
			f.w[i] += f.wg[src] * p
		}
	}
	return f
}

// State carries the recurrent machine state between steps.
type State struct {
	M      *tensor.Matrix
	H, C   tensor.Vector
	R      tensor.Vector
	WR, WW tensor.Vector
}

// InitState returns the fixed initial state: constant memory, zero
// controller state, attention focused on slot 0.
func (m *TrainableNTM) InitState() *State {
	s := &State{
		M:  tensor.NewMatrix(m.N, m.W),
		H:  tensor.NewVector(m.H),
		C:  tensor.NewVector(m.H),
		R:  tensor.NewVector(m.W),
		WR: tensor.NewVector(m.N),
		WW: tensor.NewVector(m.N),
	}
	s.M.Fill(0.1)
	s.WR[0] = 1
	s.WW[0] = 1
	return s
}

// forwardStep advances one step, returning the cache and mutating st.
func (m *TrainableNTM) forwardStep(x tensor.Vector, st *State) *ntmStep {
	c := &ntmStep{x: x.Clone(), rPrev: st.R.Clone(), MPrev: st.M.Clone()}
	c.ctrlIn = make(tensor.Vector, 0, m.In+m.W)
	c.ctrlIn = append(c.ctrlIn, x...)
	c.ctrlIn = append(c.ctrlIn, st.R...)
	h, cc, cache := m.Ctrl.StepWithCache(c.ctrlIn, st.H, st.C)
	c.h, c.ctrlCache = h, cache
	st.H, st.C = h.Clone(), cc.Clone()

	c.read = m.address(h, c.MPrev, st.WR, m.rKey, m.rBeta, m.rGate, m.rShift)
	c.write = m.address(h, c.MPrev, st.WW, m.wKey, m.wBeta, m.wGate, m.wShift)
	st.WR, st.WW = c.read.w.Clone(), c.write.w.Clone()

	c.eraseRaw = m.erase.fwd(h)
	c.eraseV = tensor.Apply(c.eraseRaw, tensor.Sigmoid)
	c.addRaw = m.add.fwd(h)
	c.addV = tensor.Apply(c.addRaw, tensor.Tanh)

	// Write, then read from the updated memory.
	c.MNew = c.MPrev.Clone()
	for i := 0; i < m.N; i++ {
		wi := c.write.w[i]
		if wi == 0 {
			continue
		}
		row := c.MNew.Row(i)
		for j := range row {
			row[j] = row[j]*(1-wi*c.eraseV[j]) + wi*c.addV[j]
		}
	}
	st.M = c.MNew.Clone()
	c.r = c.MNew.MatVecT(c.read.w)
	st.R = c.r.Clone()

	c.outIn = make(tensor.Vector, 0, m.H+m.W)
	c.outIn = append(c.outIn, h...)
	c.outIn = append(c.outIn, c.r...)
	c.yRaw = m.out.fwd(c.outIn)
	c.y = tensor.Apply(c.yRaw, tensor.Sigmoid)
	return c
}

// ForwardSeq runs the machine over a sequence from the initial state and
// returns the outputs plus the caches for BackwardSeq.
func (m *TrainableNTM) ForwardSeq(xs []tensor.Vector) ([]tensor.Vector, []*ntmStep) {
	st := m.InitState()
	ys := make([]tensor.Vector, len(xs))
	steps := make([]*ntmStep, len(xs))
	for t, x := range xs {
		steps[t] = m.forwardStep(x, st)
		ys[t] = steps[t].y
	}
	return ys, steps
}

// headBwd backpropagates the addressing pipeline of one head: given dL/dw
// it accumulates projection grads, returns dL/dh, dL/dM (added into dM),
// and dL/dwPrev for the previous step.
func (m *TrainableNTM) headBwd(f *headFwd, dw tensor.Vector, h tensor.Vector, M, dM *tensor.Matrix,
	keyL, betaL, gateL, shiftL *linear) (dh, dwPrev tensor.Vector) {
	// Shift backward.
	dwg := make(tensor.Vector, m.N)
	dshift := tensor.NewVector(3)
	for i := 0; i < m.N; i++ {
		if dw[i] == 0 {
			continue
		}
		for s, p := range f.shift {
			offset := s - 1
			src := ((i-offset)%m.N + m.N) % m.N
			dwg[src] += dw[i] * p
			dshift[s] += dw[i] * f.wg[src]
		}
	}
	// Softmax jacobian for shift.
	dot := tensor.Dot(dshift, f.shift)
	dshiftRaw := make(tensor.Vector, 3)
	for s := range dshiftRaw {
		dshiftRaw[s] = f.shift[s] * (dshift[s] - dot)
	}
	dh = shiftL.bwd(h, dshiftRaw)

	// Interpolation backward.
	dwc := make(tensor.Vector, m.N)
	dwPrev = make(tensor.Vector, m.N)
	var dgate float64
	for i := 0; i < m.N; i++ {
		dwc[i] = f.gate * dwg[i]
		dwPrev[i] = (1 - f.gate) * dwg[i]
		dgate += dwg[i] * (f.wc[i] - f.wPrev[i])
	}
	dgateRaw := dgate * tensor.SigmoidPrime(f.gate)
	dh.Add(gateL.bwd(h, tensor.Vector{dgateRaw}))

	// Content softmax backward: wc = softmax(beta·sims).
	dotc := tensor.Dot(dwc, f.wc)
	dlogit := make(tensor.Vector, m.N)
	for i := range dlogit {
		dlogit[i] = f.wc[i] * (dwc[i] - dotc)
	}
	var dbeta float64
	dsims := make(tensor.Vector, m.N)
	for i := range dlogit {
		dbeta += dlogit[i] * f.sims[i]
		dsims[i] = f.beta * dlogit[i]
	}
	dbetaRaw := dbeta * tensor.Sigmoid(f.betaRaw) // softplus'
	dh.Add(betaL.bwd(h, tensor.Vector{dbetaRaw}))

	// Cosine similarity backward into key and memory rows.
	dkey := tensor.NewVector(m.W)
	for i := 0; i < m.N; i++ {
		if dsims[i] == 0 {
			continue
		}
		row := M.Row(i)
		dkey.AXPY(dsims[i], cosGrad(f.key, row))
		dM.Row(i).AXPY(dsims[i], cosGrad(row, f.key))
	}
	// Key tanh backward.
	dkeyRaw := make(tensor.Vector, m.W)
	for j := range dkeyRaw {
		dkeyRaw[j] = dkey[j] * tensor.TanhPrime(f.key[j])
	}
	dh.Add(keyL.bwd(h, dkeyRaw))
	return dh, dwPrev
}

// BackwardSeq backpropagates through the whole sequence. dyRaw[t] must hold
// dL/d(pre-sigmoid output) at step t (nil entries mean no loss there, e.g.
// during the input phase of the copy task). Gradients accumulate in the
// linears and the returned LSTM grads; call ApplyGrads to take the step.
func (m *TrainableNTM) BackwardSeq(steps []*ntmStep, dyRaw []tensor.Vector) *nn.LSTMGrads {
	g := m.Ctrl.NewLSTMGrads()
	dM := tensor.NewMatrix(m.N, m.W)
	dhNext := tensor.NewVector(m.H)
	dcNext := tensor.NewVector(m.H)
	drNext := tensor.NewVector(m.W)
	dwrNext := tensor.NewVector(m.N)
	dwwNext := tensor.NewVector(m.N)

	for t := len(steps) - 1; t >= 0; t-- {
		c := steps[t]
		dh := tensor.NewVector(m.H)
		dr := drNext.Clone()

		// Output layer.
		if t < len(dyRaw) && dyRaw[t] != nil {
			dOutIn := m.out.bwd(c.outIn, dyRaw[t])
			dh.Add(dOutIn[:m.H])
			dr.Add(dOutIn[m.H:])
		}

		// Read: r = M_newᵀ·w_r.
		dM.AddOuter(1, c.read.w, dr)
		dwr := c.MNew.MatVec(dr)
		dwr.Add(dwrNext)

		// Write backward: consumes dM (for M_new), produces dM for M_prev.
		dww := dwwNext.Clone()
		dErase := tensor.NewVector(m.W)
		dAdd := tensor.NewVector(m.W)
		dMPrev := tensor.NewMatrix(m.N, m.W)
		for i := 0; i < m.N; i++ {
			wi := c.write.w[i]
			dRow := dM.Row(i)
			pRow := c.MPrev.Row(i)
			for j := 0; j < m.W; j++ {
				dij := dRow[j]
				if dij == 0 {
					continue
				}
				dMPrev.Row(i)[j] += dij * (1 - wi*c.eraseV[j])
				dww[i] += dij * (c.addV[j] - pRow[j]*c.eraseV[j])
				dErase[j] += dij * (-pRow[j] * wi)
				dAdd[j] += dij * wi
			}
		}
		// Erase (sigmoid) and add (tanh) projections.
		dEraseRaw := make(tensor.Vector, m.W)
		dAddRaw := make(tensor.Vector, m.W)
		for j := 0; j < m.W; j++ {
			dEraseRaw[j] = dErase[j] * tensor.SigmoidPrime(c.eraseV[j])
			dAddRaw[j] = dAdd[j] * tensor.TanhPrime(c.addV[j])
		}
		dh.Add(m.erase.bwd(c.h, dEraseRaw))
		dh.Add(m.add.bwd(c.h, dAddRaw))

		// Addressing backward for both heads (against M_prev).
		dhR, dwrPrev := m.headBwd(c.read, dwr, c.h, c.MPrev, dMPrev, m.rKey, m.rBeta, m.rGate, m.rShift)
		dhW, dwwPrev := m.headBwd(c.write, dww, c.h, c.MPrev, dMPrev, m.wKey, m.wBeta, m.wGate, m.wShift)
		dh.Add(dhR)
		dh.Add(dhW)

		// Controller backward.
		dh.Add(dhNext)
		dx, dhPrev, dcPrev := m.Ctrl.StepBackward(c.ctrlCache, dh, dcNext, g)
		dhNext, dcNext = dhPrev, dcPrev
		drNext = dx[m.In:].Clone() // gradient into r_{t-1}

		dM = dMPrev
		dwrNext, dwwNext = dwrPrev, dwwPrev
	}
	return g
}

// linears lists every projection for gradient management.
func (m *TrainableNTM) linears() []*linear {
	return []*linear{
		m.rKey, m.wKey, m.rBeta, m.wBeta, m.rGate, m.wGate,
		m.rShift, m.wShift, m.erase, m.add, m.out,
	}
}

// ZeroGrads clears accumulated projection gradients.
func (m *TrainableNTM) ZeroGrads() {
	for _, l := range m.linears() {
		l.zeroGrad()
	}
}

// ApplyGrads performs the SGD step with global-norm clipping over all
// parameters (clip <= 0 disables clipping).
func (m *TrainableNTM) ApplyGrads(g *nn.LSTMGrads, lr, clip float64) {
	scale := 1.0
	if clip > 0 {
		norm := g.DWx.FrobeniusNorm() + g.DWh.FrobeniusNorm() + g.DB.Norm2()
		for _, l := range m.linears() {
			norm += l.gradNorm()
		}
		if norm > clip {
			scale = clip / norm
		}
	}
	m.Ctrl.ApplyGrads(g, lr*scale, 0)
	for _, l := range m.linears() {
		l.apply(lr, scale)
	}
}

// CopyTaskLoss runs one copy-task sequence (store phase: start marker +
// payload; recall phase: end marker + blanks) and, when lr > 0, takes one
// BPTT training step. It returns the mean recall-phase BCE.
func (m *TrainableNTM) CopyTaskLoss(payload []tensor.Vector, lr, clip float64) float64 {
	bits := m.Out
	T := 2*len(payload) + 2
	xs := make([]tensor.Vector, T)
	// Input layout: [bits payload channels; start flag; end flag].
	start := tensor.NewVector(m.In)
	start[bits] = 1
	end := tensor.NewVector(m.In)
	end[bits+1] = 1
	xs[0] = start
	for i, p := range payload {
		v := tensor.NewVector(m.In)
		copy(v, p)
		xs[1+i] = v
	}
	xs[1+len(payload)] = end
	for t := 2 + len(payload); t < T; t++ {
		xs[t] = tensor.NewVector(m.In)
	}

	ys, steps := m.ForwardSeq(xs)
	dyRaw := make([]tensor.Vector, T)
	var loss float64
	recallStart := len(payload) + 2
	for i, p := range payload {
		t := recallStart + i
		y := ys[t]
		loss += nn.BCE(y, p)
		d := make(tensor.Vector, bits)
		for j := range d {
			d[j] = (y[j] - p[j]) / float64(bits*len(payload))
		}
		dyRaw[t] = d
	}
	loss /= float64(len(payload))
	if lr > 0 {
		m.ZeroGrads()
		g := m.BackwardSeq(steps, dyRaw)
		m.ApplyGrads(g, lr, clip)
	}
	return loss
}
