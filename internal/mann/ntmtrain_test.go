package mann

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// ntmTestLoss computes a full-sequence BCE loss against fixed targets and,
// when wantGrads, the analytic gradients — the harness for the numeric
// gradient checks.
func ntmTestLoss(m *TrainableNTM, xs, targets []tensor.Vector, wantGrads bool) (float64, *nn.LSTMGrads) {
	ys, steps := m.ForwardSeq(xs)
	var loss float64
	dyRaw := make([]tensor.Vector, len(xs))
	denom := float64(m.Out * len(xs))
	for t := range xs {
		loss += nn.BCE(ys[t], targets[t]) / float64(len(xs))
		d := make(tensor.Vector, m.Out)
		for j := range d {
			d[j] = (ys[t][j] - targets[t][j]) / denom
		}
		dyRaw[t] = d
	}
	if !wantGrads {
		return loss, nil
	}
	m.ZeroGrads()
	return loss, m.BackwardSeq(steps, dyRaw)
}

// The decisive correctness test: every parameter group's analytic BPTT
// gradient must match numerical differentiation through the entire machine
// (controller → heads → addressing → memory evolution → reads → output).
func TestNTMBPTTGradientCheck(t *testing.T) {
	rng := rngutil.New(11)
	m := NewTrainableNTM(4, 3, 5, 3, 6, rng)
	dr := rng.Child("data")
	T := 4
	xs := make([]tensor.Vector, T)
	targets := make([]tensor.Vector, T)
	for t2 := 0; t2 < T; t2++ {
		xs[t2] = make(tensor.Vector, 5)
		targets[t2] = make(tensor.Vector, 3)
		for j := range xs[t2] {
			xs[t2][j] = dr.Uniform(0, 1)
		}
		for j := range targets[t2] {
			if dr.Bernoulli(0.5) {
				targets[t2][j] = 1
			}
		}
	}

	_, g := ntmTestLoss(m, xs, targets, true)

	check := func(name string, p *float64, analytic float64) {
		t.Helper()
		const h = 1e-6
		orig := *p
		*p = orig + h
		lp, _ := ntmTestLoss(m, xs, targets, false)
		*p = orig - h
		lm, _ := ntmTestLoss(m, xs, targets, false)
		*p = orig
		numeric := (lp - lm) / (2 * h)
		tol := 1e-4 * (1 + math.Abs(numeric))
		if math.Abs(numeric-analytic) > tol {
			t.Errorf("%s: numeric %v vs analytic %v", name, numeric, analytic)
		}
	}

	check("rKey.W[0]", &m.rKey.W.Data[0], m.rKey.DW.Data[0])
	check("rKey.B[1]", &m.rKey.B[1], m.rKey.DB[1])
	check("wKey.W[4]", &m.wKey.W.Data[4], m.wKey.DW.Data[4])
	check("rBeta.W[2]", &m.rBeta.W.Data[2], m.rBeta.DW.Data[2])
	check("wBeta.W[0]", &m.wBeta.W.Data[0], m.wBeta.DW.Data[0])
	check("rGate.W[3]", &m.rGate.W.Data[3], m.rGate.DW.Data[3])
	check("wGate.W[1]", &m.wGate.W.Data[1], m.wGate.DW.Data[1])
	check("rShift.W[5]", &m.rShift.W.Data[5], m.rShift.DW.Data[5])
	check("wShift.W[2]", &m.wShift.W.Data[2], m.wShift.DW.Data[2])
	check("erase.W[7]", &m.erase.W.Data[7], m.erase.DW.Data[7])
	check("add.W[6]", &m.add.W.Data[6], m.add.DW.Data[6])
	check("out.W[10]", &m.out.W.Data[10], m.out.DW.Data[10])
	check("out.B[0]", &m.out.B[0], m.out.DB[0])
	check("Ctrl.Wx[8]", &m.Ctrl.Wx.Data[8], g.DWx.Data[8])
	check("Ctrl.Wh[3]", &m.Ctrl.Wh.Data[3], g.DWh.Data[3])
	check("Ctrl.B[5]", &m.Ctrl.B[5], g.DB[5])
}

func TestNTMForwardShapes(t *testing.T) {
	rng := rngutil.New(1)
	m := NewTrainableNTM(8, 4, 6, 4, 10, rng)
	xs := make([]tensor.Vector, 5)
	for i := range xs {
		xs[i] = tensor.NewVector(6)
	}
	ys, steps := m.ForwardSeq(xs)
	if len(ys) != 5 || len(steps) != 5 {
		t.Fatal("sequence lengths wrong")
	}
	for _, y := range ys {
		if len(y) != 4 {
			t.Fatal("output width wrong")
		}
		for _, v := range y {
			if v < 0 || v > 1 {
				t.Fatalf("sigmoid output %v out of range", v)
			}
		}
	}
	// Attention weights stay distributions through the pipeline.
	for _, s := range steps {
		for _, w := range []tensor.Vector{s.read.w, s.write.w} {
			if math.Abs(w.Sum()-1) > 1e-6 {
				t.Fatalf("attention sums to %v", w.Sum())
			}
			for _, v := range w {
				if v < -1e-9 {
					t.Fatalf("negative attention %v", v)
				}
			}
		}
	}
}

func TestNTMCopyTaskLearns(t *testing.T) {
	rng := rngutil.New(33)
	const bits = 4
	m := NewTrainableNTM(12, 8, bits+2, bits, 24, rng)
	dr := rng.Child("payloads")

	sample := func() []tensor.Vector {
		n := 1 + dr.Intn(3)
		return dataset.CopyTask(n, bits, dr)
	}
	var first, last float64
	const train = 600
	for i := 0; i < train; i++ {
		loss := m.CopyTaskLoss(sample(), 1.0, 10)
		if i < 25 {
			first += loss
		}
		if i >= train-25 {
			last += loss
		}
	}
	first /= 25
	last /= 25
	if last > 0.7*first {
		t.Fatalf("NTM copy loss did not improve: first %v, last %v", first, last)
	}
}

func TestNTMCopyLossZeroLRDoesNotTrain(t *testing.T) {
	rng := rngutil.New(7)
	m := NewTrainableNTM(8, 4, 5, 3, 8, rng)
	payload := dataset.CopyTask(2, 3, rng.Child("p"))
	before := m.rKey.W.Clone()
	m.CopyTaskLoss(payload, 0, 0)
	for i := range before.Data {
		if before.Data[i] != m.rKey.W.Data[i] {
			t.Fatal("lr=0 must not change parameters")
		}
	}
}
