// Package memsys is a small memory-hierarchy simulator: a set-associative
// LRU cache in front of a bandwidth/latency/energy DRAM model. It drives
// the embedding-table locality studies of §V (irregular, Zipf-skewed
// accesses against tables far larger than on-chip storage) and supplies the
// DRAM side of the GPU baselines in §III–IV.
package memsys

import (
	"fmt"

	"repro/internal/perfmodel"
)

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	LineSize int // bytes per line
	Ways     int
	Sets     int

	// tags[set] is ordered most-recent-first; len ≤ Ways.
	tags [][]uint64

	Stats CacheStats
}

// CacheStats counts cache events.
type CacheStats struct {
	Accesses, Hits, Misses, Evictions int64
}

// HitRate returns hits/accesses (0 when idle).
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// NewCache builds a cache of the given capacity. Capacity must be an exact
// multiple of ways·lineSize and the resulting set count a power of two.
func NewCache(capacityBytes, ways, lineSize int) *Cache {
	if capacityBytes <= 0 || ways <= 0 || lineSize <= 0 {
		panic("memsys: cache parameters must be positive")
	}
	if capacityBytes%(ways*lineSize) != 0 {
		panic(fmt.Sprintf("memsys: capacity %d not divisible by ways*line %d", capacityBytes, ways*lineSize))
	}
	sets := capacityBytes / (ways * lineSize)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("memsys: set count %d must be a power of two", sets))
	}
	return &Cache{LineSize: lineSize, Ways: ways, Sets: sets, tags: make([][]uint64, sets)}
}

// CapacityBytes reports the total cache capacity.
func (c *Cache) CapacityBytes() int { return c.Sets * c.Ways * c.LineSize }

// Access touches the byte address and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.Stats.Accesses++
	line := addr / uint64(c.LineSize)
	set := int(line % uint64(c.Sets))
	tag := line / uint64(c.Sets)
	ways := c.tags[set]
	for i, t := range ways {
		if t == tag {
			// Move to MRU position.
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	if len(ways) < c.Ways {
		ways = append(ways, 0)
	} else {
		c.Stats.Evictions++
	}
	copy(ways[1:], ways)
	ways[0] = tag
	c.tags[set] = ways
	return false
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	c.tags = make([][]uint64, c.Sets)
	c.Stats = CacheStats{}
}

// DRAM is a first-order main-memory model.
type DRAM struct {
	Bandwidth     float64 // bytes/s
	AccessLatency float64 // seconds per independent access (row activation+CAS)
	EnergyPerByte float64 // J/byte transferred
}

// DefaultDRAM returns DDR4-class parameters.
func DefaultDRAM() DRAM {
	return DRAM{
		Bandwidth:     25.6e9, // one DDR4-3200 channel
		AccessLatency: 60e-9,  // ~60 ns loaded latency
		EnergyPerByte: 20e-12, // ~20 pJ/byte incl. I/O
	}
}

// Stream returns the cost of a sequential transfer of the given size:
// one access latency plus bandwidth-limited streaming.
func (d DRAM) Stream(bytes float64) *perfmodel.Cost {
	c := perfmodel.NewCost()
	c.Latency = d.AccessLatency + bytes/d.Bandwidth
	c.Energy = bytes * d.EnergyPerByte
	c.Ops["dram.bytes"] = int64(bytes)
	c.Ops["dram.bursts"] = 1
	return c
}

// RandomAccesses returns the cost of n independent random accesses of
// touchBytes each (no spatial locality): each pays the access latency, with
// up to parallelism accesses overlapped (memory-level parallelism).
func (d DRAM) RandomAccesses(n int64, touchBytes, parallelism float64) *perfmodel.Cost {
	if parallelism < 1 {
		parallelism = 1
	}
	c := perfmodel.NewCost()
	total := float64(n) * touchBytes
	serialized := float64(n) / parallelism
	c.Latency = serialized*d.AccessLatency + total/d.Bandwidth
	c.Energy = total * d.EnergyPerByte
	c.Ops["dram.bytes"] = int64(total)
	c.Ops["dram.bursts"] = n
	return c
}

// HierarchySim replays an address trace through the cache and prices the
// misses on DRAM; hits are charged the given on-chip energy/latency.
type HierarchySim struct {
	Cache      *Cache
	DRAM       DRAM
	HitEnergy  float64 // J per cache hit (SRAM read)
	HitLatency float64 // s per cache hit
	MLP        float64 // memory-level parallelism for misses
}

// Replay runs the trace of byte addresses and returns the total cost plus
// the hit rate over this trace.
func (h *HierarchySim) Replay(addrs []uint64) (*perfmodel.Cost, float64) {
	start := h.Cache.Stats
	var misses int64
	for _, a := range addrs {
		if !h.Cache.Access(a) {
			misses++
		}
	}
	cost := perfmodel.NewCost()
	hits := h.Cache.Stats.Hits - start.Hits
	cost.Add("cache.hit", hits, h.HitEnergy, h.HitLatency)
	miss := h.DRAM.RandomAccesses(misses, float64(h.Cache.LineSize), h.MLP)
	cost.Merge(miss)
	accessed := h.Cache.Stats.Accesses - start.Accesses
	hr := 0.0
	if accessed > 0 {
		hr = float64(hits) / float64(accessed)
	}
	return cost, hr
}
