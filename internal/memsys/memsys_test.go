package memsys

import (
	"testing"
	"testing/quick"

	"repro/internal/rngutil"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(1024, 2, 64) // 8 sets
	if c.CapacityBytes() != 1024 {
		t.Fatalf("capacity = %d", c.CapacityBytes())
	}
	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0) {
		t.Fatal("repeat access must hit")
	}
	if !c.Access(63) {
		t.Fatal("same-line access must hit")
	}
	if c.Access(64) {
		t.Fatal("next line must miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Fatalf("stats wrong: %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2*64, 2, 64) // 1 set, 2 ways
	c.Access(0)                // A
	c.Access(64)               // B
	c.Access(0)                // hit A, making B the LRU
	c.Access(128)              // C evicts B
	if !c.Access(0) {
		t.Fatal("A should survive")
	}
	if c.Access(64) {
		t.Fatal("B should have been evicted")
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(1024, 2, 64)
	c.Access(0)
	c.Reset()
	if c.Stats.Accesses != 0 {
		t.Fatal("stats should reset")
	}
	if c.Access(0) {
		t.Fatal("contents should reset")
	}
}

func TestCacheParamValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCache(0, 1, 64) },
		func() { NewCache(100, 2, 64) },  // not divisible
		func() { NewCache(3*64, 1, 64) }, // 3 sets: not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: hit rate always lies in [0,1] and hits+misses == accesses.
func TestCacheStatsInvariant(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		c := NewCache(512, 2, 32)
		rng := rngutil.New(uint64(seed))
		for i := 0; i < int(n); i++ {
			c.Access(uint64(rng.Intn(4096)))
		}
		s := c.Stats
		if s.Hits+s.Misses != s.Accesses {
			return false
		}
		hr := s.HitRate()
		return hr >= 0 && hr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCacheWorkingSetBehaviour(t *testing.T) {
	// A working set that fits must converge to ~100 % hits; one that
	// thrashes a direct-mapped-style pattern must not.
	c := NewCache(4096, 4, 64)
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 4096; a += 64 {
			c.Access(a)
		}
	}
	if hr := c.Stats.HitRate(); hr < 0.7 {
		t.Fatalf("resident working set hit rate %v too low", hr)
	}
	c.Reset()
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 1<<20; a += 64 {
			c.Access(a)
		}
	}
	if hr := c.Stats.HitRate(); hr > 0.01 {
		t.Fatalf("streaming working set hit rate %v should be ~0", hr)
	}
}

func TestDRAMStream(t *testing.T) {
	d := DefaultDRAM()
	c := d.Stream(1 << 20)
	wantLat := d.AccessLatency + float64(1<<20)/d.Bandwidth
	if c.Latency != wantLat {
		t.Errorf("latency = %v, want %v", c.Latency, wantLat)
	}
	if c.Energy != float64(1<<20)*d.EnergyPerByte {
		t.Errorf("energy = %v", c.Energy)
	}
}

func TestDRAMRandomAccessesMLP(t *testing.T) {
	d := DefaultDRAM()
	serial := d.RandomAccesses(1000, 64, 1)
	overlapped := d.RandomAccesses(1000, 64, 16)
	if overlapped.Latency >= serial.Latency {
		t.Fatal("memory-level parallelism must reduce latency")
	}
	if overlapped.Energy != serial.Energy {
		t.Fatal("parallelism must not change energy")
	}
}

func TestHierarchySimLocalityMatters(t *testing.T) {
	dram := DefaultDRAM()
	sim := &HierarchySim{
		Cache:      NewCache(8192, 4, 64),
		DRAM:       dram,
		HitEnergy:  1e-12,
		HitLatency: 1e-9,
		MLP:        8,
	}
	// Hot trace: repeatedly touch a small region.
	hot := make([]uint64, 4000)
	rng := rngutil.New(1)
	for i := range hot {
		hot[i] = uint64(rng.Intn(4096))
	}
	hotCost, hotHR := sim.Replay(hot)

	sim.Cache.Reset()
	// Cold trace: uniform over a space much larger than the cache.
	cold := make([]uint64, 4000)
	for i := range cold {
		cold[i] = uint64(rng.Intn(1 << 26))
	}
	coldCost, coldHR := sim.Replay(cold)

	if hotHR <= coldHR {
		t.Fatalf("hot hit rate %v should beat cold %v", hotHR, coldHR)
	}
	if hotCost.Energy >= coldCost.Energy {
		t.Fatalf("hot energy %v should be below cold %v", hotCost.Energy, coldCost.Energy)
	}
	if hotCost.Latency >= coldCost.Latency {
		t.Fatalf("hot latency %v should be below cold %v", hotCost.Latency, coldCost.Latency)
	}
}
