package nn

import (
	"fmt"
	"math"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// Image is a dense C×H×W feature map stored channel-major.
type Image struct {
	C, H, W int
	Data    []float64
}

// NewImage returns a zeroed C×H×W image.
func NewImage(c, h, w int) *Image {
	return &Image{C: c, H: h, W: w, Data: make([]float64, c*h*w)}
}

// At returns element (c, y, x).
func (im *Image) At(c, y, x int) float64 { return im.Data[(c*im.H+y)*im.W+x] }

// Set assigns element (c, y, x).
func (im *Image) Set(c, y, x int, v float64) { im.Data[(c*im.H+y)*im.W+x] = v }

// Flatten returns the image contents as a vector (a copy).
func (im *Image) Flatten() tensor.Vector {
	out := make(tensor.Vector, len(im.Data))
	copy(out, im.Data)
	return out
}

// Conv2D is a valid-padding, stride-1 2-D convolution layer with ReLU,
// the building block of the 4-layer embedding CNN used by the few-shot
// pipelines in §IV (the paper's ref. [48]).
type Conv2D struct {
	InC, OutC, K int
	// Kernels[o] is the o-th filter: InC × K × K, stored like an Image.
	Kernels []*Image
	Bias    tensor.Vector

	in   *Image // cached input
	preZ *Image // cached pre-activation
}

// NewConv2D builds a convolution layer with He-initialized kernels.
func NewConv2D(inC, outC, k int, rng *rngutil.Source) *Conv2D {
	c := &Conv2D{InC: inC, OutC: outC, K: k, Bias: tensor.NewVector(outC)}
	std := math.Sqrt(2.0 / float64(inC*k*k))
	for o := 0; o < outC; o++ {
		ker := NewImage(inC, k, k)
		for i := range ker.Data {
			ker.Data[i] = rng.Normal(0, std)
		}
		c.Kernels = append(c.Kernels, ker)
	}
	return c
}

// OutShape reports the output dimensions for an inH×inW input.
func (c *Conv2D) OutShape(inH, inW int) (int, int) { return inH - c.K + 1, inW - c.K + 1 }

// Forward applies the convolution and ReLU.
func (c *Conv2D) Forward(in *Image) *Image {
	if in.C != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects %d channels, got %d", c.InC, in.C))
	}
	outH, outW := c.OutShape(in.H, in.W)
	if outH <= 0 || outW <= 0 {
		panic("nn: Conv2D input smaller than kernel")
	}
	c.in = in
	c.preZ = NewImage(c.OutC, outH, outW)
	out := NewImage(c.OutC, outH, outW)
	for o := 0; o < c.OutC; o++ {
		ker := c.Kernels[o]
		for y := 0; y < outH; y++ {
			for x := 0; x < outW; x++ {
				s := c.Bias[o]
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						for kx := 0; kx < c.K; kx++ {
							s += ker.At(ic, ky, kx) * in.At(ic, y+ky, x+kx)
						}
					}
				}
				c.preZ.Set(o, y, x, s)
				out.Set(o, y, x, tensor.ReLU(s))
			}
		}
	}
	return out
}

// Backward consumes dL/dout, applies SGD with learning rate lr, and returns
// dL/din.
func (c *Conv2D) Backward(dout *Image, lr float64) *Image {
	in := c.in
	din := NewImage(in.C, in.H, in.W)
	for o := 0; o < c.OutC; o++ {
		ker := c.Kernels[o]
		dker := NewImage(c.InC, c.K, c.K)
		var dbias float64
		for y := 0; y < dout.H; y++ {
			for x := 0; x < dout.W; x++ {
				g := dout.At(o, y, x)
				if c.preZ.At(o, y, x) <= 0 {
					continue // ReLU gate
				}
				dbias += g
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						for kx := 0; kx < c.K; kx++ {
							dker.Set(ic, ky, kx, dker.At(ic, ky, kx)+g*in.At(ic, y+ky, x+kx))
							din.Set(ic, y+ky, x+kx, din.At(ic, y+ky, x+kx)+g*ker.At(ic, ky, kx))
						}
					}
				}
			}
		}
		for i := range ker.Data {
			ker.Data[i] -= lr * dker.Data[i]
		}
		c.Bias[o] -= lr * dbias
	}
	return din
}

// MaxPool2 is a 2×2, stride-2 max-pooling layer.
type MaxPool2 struct {
	in     *Image
	argmax []int // flat input index of each output's maximum
}

// Forward pools the image; odd trailing rows/columns are dropped.
func (p *MaxPool2) Forward(in *Image) *Image {
	outH, outW := in.H/2, in.W/2
	out := NewImage(in.C, outH, outW)
	p.in = in
	p.argmax = make([]int, in.C*outH*outW)
	idx := 0
	for c := 0; c < in.C; c++ {
		for y := 0; y < outH; y++ {
			for x := 0; x < outW; x++ {
				best := math.Inf(-1)
				bestIdx := 0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						iy, ix := 2*y+dy, 2*x+dx
						v := in.At(c, iy, ix)
						if v > best {
							best = v
							bestIdx = (c*in.H+iy)*in.W + ix
						}
					}
				}
				out.Set(c, y, x, best)
				p.argmax[idx] = bestIdx
				idx++
			}
		}
	}
	return out
}

// Backward routes gradients to the argmax positions.
func (p *MaxPool2) Backward(dout *Image) *Image {
	din := NewImage(p.in.C, p.in.H, p.in.W)
	for i, g := range dout.Data {
		din.Data[p.argmax[i]] += g
	}
	return din
}

// ConvNet is the small embedding CNN: repeated (conv3×3 + ReLU + pool2)
// blocks followed by a dense projection to the embedding dimension.
type ConvNet struct {
	Convs []*Conv2D
	Pools []*MaxPool2
	Proj  *DenseLayer

	flatShape *Image // shape of the last feature map, for Backward
}

// NewConvNet builds a CNN for inC×inH×inW inputs with the given channel
// widths per block and a final embedding dimension.
func NewConvNet(inC, inH, inW int, channels []int, embedDim int, rng *rngutil.Source) *ConvNet {
	net := &ConvNet{}
	c, h, w := inC, inH, inW
	for bi, ch := range channels {
		conv := NewConv2D(c, ch, 3, rng.Child(fmt.Sprintf("conv%d", bi)))
		net.Convs = append(net.Convs, conv)
		net.Pools = append(net.Pools, &MaxPool2{})
		h, w = conv.OutShape(h, w)
		h, w = h/2, w/2
		c = ch
		if h < 3 || w < 3 {
			break
		}
	}
	flat := c * h * w
	net.Proj = NewDenseLayer(flat, embedDim, Identity, true, DenseFactory(rng.Child("proj")))
	return net
}

// Embed returns the embedding vector for an image.
func (n *ConvNet) Embed(im *Image) tensor.Vector {
	x := im
	for i, conv := range n.Convs {
		x = conv.Forward(x)
		x = n.Pools[i].Forward(x)
	}
	n.flatShape = x
	return n.Proj.Forward(x.Flatten())
}

// Backward propagates dL/dembedding through the network with learning rate
// lr, updating all parameters.
func (n *ConvNet) Backward(dembed tensor.Vector, lr float64) {
	dflat := n.Proj.Backward(dembed, lr)
	d := NewImage(n.flatShape.C, n.flatShape.H, n.flatShape.W)
	copy(d.Data, dflat)
	for i := len(n.Convs) - 1; i >= 0; i-- {
		d = n.Pools[i].Backward(d)
		d = n.Convs[i].Backward(d, lr)
	}
}
