package nn

import (
	"math"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func TestImageAccessors(t *testing.T) {
	im := NewImage(2, 3, 4)
	im.Set(1, 2, 3, 7)
	if im.At(1, 2, 3) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	f := im.Flatten()
	if len(f) != 24 {
		t.Fatalf("Flatten len = %d", len(f))
	}
	f[0] = 99
	if im.Data[0] == 99 {
		t.Fatal("Flatten must copy")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	rng := rngutil.New(1)
	c := NewConv2D(1, 1, 3, rng)
	// Identity-center kernel: output = input interior (after ReLU).
	for i := range c.Kernels[0].Data {
		c.Kernels[0].Data[i] = 0
	}
	c.Kernels[0].Set(0, 1, 1, 1)
	c.Bias[0] = 0

	in := NewImage(1, 5, 5)
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			in.Set(0, y, x, float64(y*5+x))
		}
	}
	out := c.Forward(in)
	if out.H != 3 || out.W != 3 {
		t.Fatalf("out shape %dx%d", out.H, out.W)
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if out.At(0, y, x) != in.At(0, y+1, x+1) {
				t.Fatalf("identity conv wrong at (%d,%d)", y, x)
			}
		}
	}
}

func TestConv2DGradientCheck(t *testing.T) {
	rng := rngutil.New(5)
	c := NewConv2D(1, 2, 3, rng)
	in := NewImage(1, 6, 6)
	dr := rng.Child("in")
	for i := range in.Data {
		in.Data[i] = dr.NormFloat64()
	}
	target := NewImage(2, 4, 4)
	for i := range target.Data {
		target.Data[i] = dr.NormFloat64()
	}

	loss := func() float64 {
		out := c.Forward(in)
		return MSE(tensor.Vector(out.Data), tensor.Vector(target.Data))
	}

	out := c.Forward(in)
	dout := NewImage(2, 4, 4)
	g := MSEGrad(tensor.Vector(out.Data), tensor.Vector(target.Data))
	copy(dout.Data, g)
	// Analytic kernel grad via small-lr trick.
	kBefore := c.Kernels[0].Data[4]
	const lr = 1e-7
	din := c.Backward(dout, lr)
	analyticKernelGrad := (kBefore - c.Kernels[0].Data[4]) / lr
	c.Kernels[0].Data[4] = kBefore

	const h = 1e-5
	c.Kernels[0].Data[4] = kBefore + h
	lp := loss()
	c.Kernels[0].Data[4] = kBefore - h
	lm := loss()
	c.Kernels[0].Data[4] = kBefore
	numeric := (lp - lm) / (2 * h)
	if math.Abs(numeric-analyticKernelGrad) > 1e-3 {
		t.Errorf("kernel grad: numeric %v vs analytic %v", numeric, analyticKernelGrad)
	}

	// Input gradient check.
	iBefore := in.Data[10]
	in.Data[10] = iBefore + h
	lp = loss()
	in.Data[10] = iBefore - h
	lm = loss()
	in.Data[10] = iBefore
	numeric = (lp - lm) / (2 * h)
	if math.Abs(numeric-din.Data[10]) > 1e-4 {
		t.Errorf("input grad: numeric %v vs analytic %v", numeric, din.Data[10])
	}
}

func TestMaxPool2(t *testing.T) {
	in := NewImage(1, 4, 4)
	copy(in.Data, []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	p := &MaxPool2{}
	out := p.Forward(in)
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pool shape %dx%d", out.H, out.W)
	}
	want := []float64{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("pool = %v, want %v", out.Data, want)
		}
	}
	dout := NewImage(1, 2, 2)
	dout.Data = []float64{1, 1, 1, 1}
	din := p.Backward(dout)
	// Gradient must land only on the argmax positions.
	if din.At(0, 1, 1) != 1 || din.At(0, 0, 0) != 0 {
		t.Fatal("pool backward routing wrong")
	}
}

func TestConvNetEmbedTrains(t *testing.T) {
	rng := rngutil.New(9)
	net := NewConvNet(1, 12, 12, []int{4}, 8, rng)
	im := NewImage(1, 12, 12)
	dr := rng.Child("im")
	for i := range im.Data {
		im.Data[i] = dr.Float64()
	}
	target := make(tensor.Vector, 8)
	for i := range target {
		target[i] = dr.NormFloat64() * 0.2
	}
	var first, last float64
	for it := 0; it < 40; it++ {
		e := net.Embed(im)
		loss := MSE(e, target)
		if it == 0 {
			first = loss
		}
		last = loss
		net.Backward(MSEGrad(e, target), 0.01)
	}
	if last >= first*0.5 {
		t.Fatalf("ConvNet did not train: first %v last %v", first, last)
	}
}

func TestConvMatGradientCheck(t *testing.T) {
	rng := rngutil.New(21)
	c := NewConvMat(1, 2, 3, DenseFactory(rng))
	in := NewImage(1, 5, 5)
	dr := rng.Child("in")
	for i := range in.Data {
		in.Data[i] = dr.NormFloat64()
	}
	target := NewImage(2, 3, 3)
	for i := range target.Data {
		target.Data[i] = dr.NormFloat64()
	}
	loss := func() float64 {
		out := c.Forward(in)
		return MSE(tensor.Vector(out.Data), tensor.Vector(target.Data))
	}
	out := c.Forward(in)
	dout := NewImage(2, 3, 3)
	copy(dout.Data, MSEGrad(tensor.Vector(out.Data), tensor.Vector(target.Data)))
	din := c.Backward(dout, 0) // input grads only

	const h = 1e-5
	iBefore := in.Data[7]
	in.Data[7] = iBefore + h
	lp := loss()
	in.Data[7] = iBefore - h
	lm := loss()
	in.Data[7] = iBefore
	numeric := (lp - lm) / (2 * h)
	if math.Abs(numeric-din.Data[7]) > 1e-4 {
		t.Fatalf("ConvMat input grad: numeric %v vs analytic %v", numeric, din.Data[7])
	}

	// Weight gradient via the small-lr trick.
	dm := c.W.(*DenseMat)
	wBefore := dm.M.Data[3]
	out = c.Forward(in)
	copy(dout.Data, MSEGrad(tensor.Vector(out.Data), tensor.Vector(target.Data)))
	const lr = 1e-7
	c.Backward(dout, lr)
	analytic := (wBefore - dm.M.Data[3]) / lr
	dm.M.Data[3] = wBefore
	dm.M.Data[3] = wBefore + h
	lp = loss()
	dm.M.Data[3] = wBefore - h
	lm = loss()
	dm.M.Data[3] = wBefore
	numeric = (lp - lm) / (2 * h)
	if math.Abs(numeric-analytic) > 1e-3*(1+math.Abs(numeric)) {
		t.Fatalf("ConvMat weight grad: numeric %v vs analytic %v", numeric, analytic)
	}
}

func TestConvMatBiasColumn(t *testing.T) {
	rng := rngutil.New(23)
	c := NewConvMat(1, 1, 2, DenseFactory(rng))
	dm := c.W.(*DenseMat)
	if dm.Cols() != 1*2*2+1 {
		t.Fatalf("bias column missing: cols=%d", dm.Cols())
	}
	dm.M.Fill(0)
	dm.M.Set(0, 4, 0.6) // bias weight only
	in := NewImage(1, 3, 3)
	out := c.Forward(in)
	for _, v := range out.Data {
		if math.Abs(v-0.6) > 1e-12 {
			t.Fatalf("bias not applied through ReLU: %v", v)
		}
	}
}

func TestConvMatTrainsOnTinyTask(t *testing.T) {
	// Learn to detect a vertical edge: target = 1 where the 2x2 patch has a
	// left-right intensity step.
	rng := rngutil.New(25)
	c := NewConvMat(1, 1, 2, DenseFactory(rng))
	// Start the ReLU alive: positive bias column (standard anti-dead-unit
	// initialization for single-filter toy nets).
	cm := c.W.(*DenseMat)
	cm.M.Set(0, cm.Cols()-1, 0.3)
	dr := rng.Child("data")
	var first, last float64
	for it := 0; it < 600; it++ {
		in := NewImage(1, 4, 4)
		edge := dr.Bernoulli(0.5)
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				v := 0.1 * dr.NormFloat64()
				if edge && x >= 2 {
					v += 1
				}
				in.Set(0, y, x, v)
			}
		}
		out := c.Forward(in)
		target := NewImage(1, 3, 3)
		if edge {
			for y := 0; y < 3; y++ {
				target.Set(0, y, 1, 1) // edge column responds
			}
		}
		loss := MSE(tensor.Vector(out.Data), tensor.Vector(target.Data))
		if it < 20 {
			first += loss
		}
		if it >= 580 {
			last += loss
		}
		dout := NewImage(1, 3, 3)
		copy(dout.Data, MSEGrad(tensor.Vector(out.Data), tensor.Vector(target.Data)))
		c.Backward(dout, 0.05)
	}
	if last >= 0.5*first {
		t.Fatalf("ConvMat did not learn: first %v last %v", first/20, last/20)
	}
}
