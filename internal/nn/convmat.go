package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvMat is a valid-padding, stride-1 convolution layer whose kernel bank
// lives behind the Mat interface: each receptive field is flattened
// (im2col) and pushed through the outC × (inC·K·K + 1) kernel matrix as one
// MVM, with the bias folded as a constant-1 column. With a crossbar-backed
// Mat this is exactly how CNNs map onto analog arrays for training
// (the paper's §II, ref. [19]): every patch position is one forward MVM,
// one backward MVM, and one rank-1 pulse update.
type ConvMat struct {
	InC, OutC, K int
	W            Mat

	in    *Image
	preZ  *Image
	patch tensor.Vector // scratch, reused across positions
}

// NewConvMat builds the layer with kernels from factory.
func NewConvMat(inC, outC, k int, factory MatFactory) *ConvMat {
	cols := inC*k*k + 1
	return &ConvMat{
		InC: inC, OutC: outC, K: k,
		W:     factory(outC, cols),
		patch: make(tensor.Vector, cols),
	}
}

// OutShape reports the output dimensions for an inH×inW input.
func (c *ConvMat) OutShape(inH, inW int) (int, int) { return inH - c.K + 1, inW - c.K + 1 }

// gather fills c.patch with the receptive field at (y, x) plus the bias 1.
func (c *ConvMat) gather(in *Image, y, x int) tensor.Vector {
	idx := 0
	for ic := 0; ic < c.InC; ic++ {
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				c.patch[idx] = in.At(ic, y+ky, x+kx)
				idx++
			}
		}
	}
	c.patch[idx] = 1
	return c.patch
}

// Forward applies the convolution and ReLU, one MVM per output position.
func (c *ConvMat) Forward(in *Image) *Image {
	if in.C != c.InC {
		panic(fmt.Sprintf("nn: ConvMat expects %d channels, got %d", c.InC, in.C))
	}
	outH, outW := c.OutShape(in.H, in.W)
	if outH <= 0 || outW <= 0 {
		panic("nn: ConvMat input smaller than kernel")
	}
	c.in = in
	c.preZ = NewImage(c.OutC, outH, outW)
	out := NewImage(c.OutC, outH, outW)
	for y := 0; y < outH; y++ {
		for x := 0; x < outW; x++ {
			z := c.W.Forward(c.gather(in, y, x))
			for o := 0; o < c.OutC; o++ {
				c.preZ.Set(o, y, x, z[o])
				out.Set(o, y, x, tensor.ReLU(z[o]))
			}
		}
	}
	return out
}

// Backward consumes dL/dout, updates the kernels through the Mat (one
// rank-1 update per patch position), and returns dL/din.
func (c *ConvMat) Backward(dout *Image, lr float64) *Image {
	in := c.in
	din := NewImage(in.C, in.H, in.W)
	delta := make(tensor.Vector, c.OutC)
	for y := 0; y < dout.H; y++ {
		for x := 0; x < dout.W; x++ {
			active := false
			for o := 0; o < c.OutC; o++ {
				if c.preZ.At(o, y, x) > 0 {
					delta[o] = dout.At(o, y, x)
					if delta[o] != 0 {
						active = true
					}
				} else {
					delta[o] = 0
				}
			}
			if !active {
				continue
			}
			dpatch := c.W.Backward(delta)
			idx := 0
			for ic := 0; ic < c.InC; ic++ {
				for ky := 0; ky < c.K; ky++ {
					for kx := 0; kx < c.K; kx++ {
						din.Set(ic, y+ky, x+kx, din.At(ic, y+ky, x+kx)+dpatch[idx])
						idx++
					}
				}
			}
			if lr != 0 {
				c.W.Update(-lr, delta, c.gather(in, y, x))
			}
		}
	}
	return din
}
