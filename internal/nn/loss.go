package nn

import (
	"math"

	"repro/internal/tensor"
)

// CrossEntropy returns -log p[label] with a numerical floor so that a
// confidently wrong prediction yields a large but finite loss.
func CrossEntropy(probs tensor.Vector, label int) float64 {
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

// MSE returns the mean squared error between prediction and target.
func MSE(pred, target tensor.Vector) float64 {
	if len(pred) != len(target) {
		panic("nn: MSE length mismatch")
	}
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MSEGrad returns d(MSE)/d(pred) = 2(pred-target)/n.
func MSEGrad(pred, target tensor.Vector) tensor.Vector {
	g := make(tensor.Vector, len(pred))
	n := float64(len(pred))
	for i := range pred {
		g[i] = 2 * (pred[i] - target[i]) / n
	}
	return g
}

// BCE returns the element-wise mean binary cross-entropy between predicted
// probabilities and 0/1 targets, with clamping for numerical safety. It is
// the training loss of the click-through-rate models in §V.
func BCE(pred, target tensor.Vector) float64 {
	if len(pred) != len(target) {
		panic("nn: BCE length mismatch")
	}
	var s float64
	for i := range pred {
		p := math.Min(math.Max(pred[i], 1e-12), 1-1e-12)
		s += -(target[i]*math.Log(p) + (1-target[i])*math.Log(1-p))
	}
	return s / float64(len(pred))
}
