package nn

import (
	"fmt"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// LSTM is a single-layer long short-term memory network (Hochreiter &
// Schmidhuber, the paper's ref. [51]) used as the recurrent controller of
// the memory-augmented networks in §III. It supports stateful stepping for
// inference and truncated BPTT for training.
type LSTM struct {
	InSize, HiddenSize int

	// Gate order within the stacked matrices: input, forget, output, cell.
	Wx *tensor.Matrix // 4H × In
	Wh *tensor.Matrix // 4H × H
	B  tensor.Vector  // 4H

	h, c tensor.Vector // current recurrent state
}

// StepCache holds the intermediates of one time step needed by BPTT.
type StepCache struct {
	x, hPrev, cPrev        tensor.Vector
	i, f, o, g, c, h, tanc tensor.Vector
}

// NewLSTM builds an LSTM with Xavier-initialized weights and a forget-gate
// bias of 1 (the standard trick that eases gradient flow early in training).
func NewLSTM(inSize, hiddenSize int, rng *rngutil.Source) *LSTM {
	l := &LSTM{
		InSize:     inSize,
		HiddenSize: hiddenSize,
		Wx:         tensor.NewMatrix(4*hiddenSize, inSize),
		Wh:         tensor.NewMatrix(4*hiddenSize, hiddenSize),
		B:          tensor.NewVector(4 * hiddenSize),
	}
	InitXavier(l.Wx, rng.Child("lstm-wx"))
	InitXavier(l.Wh, rng.Child("lstm-wh"))
	for j := 0; j < hiddenSize; j++ {
		l.B[hiddenSize+j] = 1 // forget gate bias
	}
	l.Reset()
	return l
}

// Reset zeroes the recurrent state.
func (l *LSTM) Reset() {
	l.h = tensor.NewVector(l.HiddenSize)
	l.c = tensor.NewVector(l.HiddenSize)
}

// State returns copies of the current hidden and cell state.
func (l *LSTM) State() (h, c tensor.Vector) { return l.h.Clone(), l.c.Clone() }

// Step advances the network one time step and returns the new hidden state.
func (l *LSTM) Step(x tensor.Vector) tensor.Vector {
	h, _, _ := l.step(x, l.h, l.c)
	return h
}

func (l *LSTM) step(x, hPrev, cPrev tensor.Vector) (tensor.Vector, tensor.Vector, *StepCache) {
	if len(x) != l.InSize {
		panic(fmt.Sprintf("nn: LSTM expects %d inputs, got %d", l.InSize, len(x)))
	}
	H := l.HiddenSize
	z := l.Wx.MatVec(x)
	z.Add(l.Wh.MatVec(hPrev))
	z.Add(l.B)

	cache := &StepCache{
		x: x.Clone(), hPrev: hPrev.Clone(), cPrev: cPrev.Clone(),
		i: make(tensor.Vector, H), f: make(tensor.Vector, H),
		o: make(tensor.Vector, H), g: make(tensor.Vector, H),
		c: make(tensor.Vector, H), h: make(tensor.Vector, H),
		tanc: make(tensor.Vector, H),
	}
	for j := 0; j < H; j++ {
		cache.i[j] = tensor.Sigmoid(z[j])
		cache.f[j] = tensor.Sigmoid(z[H+j])
		cache.o[j] = tensor.Sigmoid(z[2*H+j])
		cache.g[j] = tensor.Tanh(z[3*H+j])
		cache.c[j] = cache.f[j]*cPrev[j] + cache.i[j]*cache.g[j]
		cache.tanc[j] = tensor.Tanh(cache.c[j])
		cache.h[j] = cache.o[j] * cache.tanc[j]
	}
	l.h = cache.h.Clone()
	l.c = cache.c.Clone()
	return cache.h, cache.c, cache
}

// StepWithCache advances one time step from an explicit previous state and
// returns the new state plus the cache needed by StepBackward — the entry
// point for models (like the trainable NTM) whose per-step inputs depend on
// their own previous outputs, making ForwardSeq unusable.
func (l *LSTM) StepWithCache(x, hPrev, cPrev tensor.Vector) (h, c tensor.Vector, cache *StepCache) {
	return l.step(x, hPrev, cPrev)
}

// StepBackward backpropagates one time step: given the step cache, the
// total dL/dh_t (external + recurrent) and the recurrent dL/dc_t flowing in
// from step t+1, it accumulates parameter gradients into g and returns
// dL/dx_t plus the recurrent gradients for step t−1.
func (l *LSTM) StepBackward(cc *StepCache, dh, dcIn tensor.Vector, g *LSTMGrads) (dx, dhPrev, dcPrev tensor.Vector) {
	H := l.HiddenSize
	dz := make(tensor.Vector, 4*H)
	dc := dcIn.Clone()
	for j := 0; j < H; j++ {
		do := dh[j] * cc.tanc[j]
		dc[j] += dh[j] * cc.o[j] * (1 - cc.tanc[j]*cc.tanc[j])
		di := dc[j] * cc.g[j]
		df := dc[j] * cc.cPrev[j]
		dg := dc[j] * cc.i[j]
		dz[j] = di * tensor.SigmoidPrime(cc.i[j])
		dz[H+j] = df * tensor.SigmoidPrime(cc.f[j])
		dz[2*H+j] = do * tensor.SigmoidPrime(cc.o[j])
		dz[3*H+j] = dg * tensor.TanhPrime(cc.g[j])
	}
	g.DWx.AddOuter(1, dz, cc.x)
	g.DWh.AddOuter(1, dz, cc.hPrev)
	g.DB.Add(dz)
	dx = l.Wx.MatVecT(dz)
	dhPrev = l.Wh.MatVecT(dz)
	dcPrev = make(tensor.Vector, H)
	for j := 0; j < H; j++ {
		dcPrev[j] = dc[j] * cc.f[j]
	}
	return dx, dhPrev, dcPrev
}

// LSTMGrads accumulates parameter gradients across a BPTT pass.
type LSTMGrads struct {
	DWx, DWh *tensor.Matrix
	DB       tensor.Vector
}

// NewLSTMGrads returns zeroed gradient storage matching l.
func (l *LSTM) NewLSTMGrads() *LSTMGrads {
	return &LSTMGrads{
		DWx: tensor.NewMatrix(4*l.HiddenSize, l.InSize),
		DWh: tensor.NewMatrix(4*l.HiddenSize, l.HiddenSize),
		DB:  tensor.NewVector(4 * l.HiddenSize),
	}
}

// ForwardSeq resets state, runs the whole sequence, and returns the hidden
// state at every step plus the caches needed for BackwardSeq.
func (l *LSTM) ForwardSeq(xs []tensor.Vector) ([]tensor.Vector, []*StepCache) {
	l.Reset()
	hs := make([]tensor.Vector, len(xs))
	caches := make([]*StepCache, len(xs))
	for t, x := range xs {
		h, _, cache := l.step(x, l.h, l.c)
		hs[t] = h
		caches[t] = cache
	}
	return hs, caches
}

// BackwardSeq runs full BPTT given dL/dh at every step, accumulating
// parameter gradients into g and returning dL/dx at every step.
func (l *LSTM) BackwardSeq(caches []*StepCache, dhs []tensor.Vector, g *LSTMGrads) []tensor.Vector {
	T := len(caches)
	dxs := make([]tensor.Vector, T)
	dhNext := tensor.NewVector(l.HiddenSize)
	dcNext := tensor.NewVector(l.HiddenSize)
	for t := T - 1; t >= 0; t-- {
		dh := dhs[t].Clone()
		dh.Add(dhNext)
		dxs[t], dhNext, dcNext = l.StepBackward(caches[t], dh, dcNext, g)
	}
	return dxs
}

// ApplyGrads performs W -= lr·dW with optional gradient clipping (clip <= 0
// disables clipping).
func (l *LSTM) ApplyGrads(g *LSTMGrads, lr, clip float64) {
	scale := 1.0
	if clip > 0 {
		norm := g.DWx.FrobeniusNorm() + g.DWh.FrobeniusNorm() + g.DB.Norm2()
		if norm > clip {
			scale = clip / norm
		}
	}
	for i := range l.Wx.Data {
		l.Wx.Data[i] -= lr * scale * g.DWx.Data[i]
	}
	for i := range l.Wh.Data {
		l.Wh.Data[i] -= lr * scale * g.DWh.Data[i]
	}
	for i := range l.B {
		l.B[i] -= lr * scale * g.DB[i]
	}
}
