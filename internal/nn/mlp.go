package nn

import (
	"fmt"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// DenseLayer is one fully connected layer y = act(W·[x;1]).
//
// The bias is folded into the weight matrix as an extra input column driven
// by a constant 1, mirroring how analog crossbars implement biases with a
// dedicated always-on input line. W therefore has shape out × (in+1) when
// Bias is true.
type DenseLayer struct {
	In, Out int
	Bias    bool
	Act     Activation
	W       Mat

	// caches from the most recent Forward, used by Backward.
	x tensor.Vector // extended input [x;1]
	z tensor.Vector // pre-activation
	y tensor.Vector // activation
}

// MatFactory constructs the weight storage for a layer; it lets callers swap
// dense digital matrices for simulated analog arrays.
type MatFactory func(rows, cols int) Mat

// DenseFactory builds exact digital matrices with Xavier initialization.
func DenseFactory(rng *rngutil.Source) MatFactory {
	return func(rows, cols int) Mat {
		d := NewDenseMat(rows, cols)
		InitXavier(d.M, rng.Child(fmt.Sprintf("xavier-%dx%d", rows, cols)))
		return d
	}
}

// NewDenseLayer builds a layer with weights from factory.
func NewDenseLayer(in, out int, act Activation, bias bool, factory MatFactory) *DenseLayer {
	cols := in
	if bias {
		cols++
	}
	return &DenseLayer{In: in, Out: out, Bias: bias, Act: act, W: factory(out, cols)}
}

// extend returns [x;1] when the layer has a bias, else x itself.
func (l *DenseLayer) extend(x tensor.Vector) tensor.Vector {
	if !l.Bias {
		return x
	}
	ext := make(tensor.Vector, len(x)+1)
	copy(ext, x)
	ext[len(x)] = 1
	return ext
}

// Forward runs the layer and caches intermediates for Backward.
func (l *DenseLayer) Forward(x tensor.Vector) tensor.Vector {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: layer expects %d inputs, got %d", l.In, len(x)))
	}
	l.x = l.extend(x)
	l.z = l.W.Forward(l.x)
	l.y = l.Act.apply(l.z)
	return l.y
}

// ForwardBatch runs the layer on a batch of inputs through the weight
// storage's batched MVM path, without touching the Backward caches — the
// inference path used by evaluation loops and serving pipelines. Outputs
// are bit-identical to calling Forward on each input in order.
func (l *DenseLayer) ForwardBatch(xs []tensor.Vector) []tensor.Vector {
	ext := make([]tensor.Vector, len(xs))
	for i, x := range xs {
		if len(x) != l.In {
			panic(fmt.Sprintf("nn: layer expects %d inputs, got %d (sample %d)", l.In, len(x), i))
		}
		ext[i] = l.extend(x)
	}
	zs := ForwardBatch(l.W, ext)
	ys := make([]tensor.Vector, len(zs))
	for i, z := range zs {
		ys[i] = l.Act.apply(z)
	}
	return ys
}

// Backward consumes dL/dy and returns dL/dx for the layer below, applying
// the weight update W += -lr·(δ ⊗ x) in the same pass (lr == 0 skips the
// update, e.g. for inference-only sensitivity analysis).
func (l *DenseLayer) Backward(dy tensor.Vector, lr float64) tensor.Vector {
	if l.x == nil {
		panic("nn: Backward called before Forward")
	}
	prime := l.Act.prime(l.z, l.y)
	delta := tensor.Hadamard(dy, prime)
	// dL/dx before the bias column is stripped.
	dxExt := l.W.Backward(delta)
	if lr != 0 {
		l.W.Update(-lr, delta, l.x)
	}
	if l.Bias {
		return dxExt[:l.In]
	}
	return dxExt
}

// MLP is a feedforward stack of dense layers.
type MLP struct {
	Layers []*DenseLayer
}

// NewMLP builds an MLP with the given layer sizes (sizes[0] inputs through
// sizes[len-1] outputs). Hidden layers use hiddenAct; the final layer uses
// outAct. All layers carry biases.
func NewMLP(sizes []int, hiddenAct, outAct Activation, factory MatFactory) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = outAct
		}
		m.Layers = append(m.Layers, NewDenseLayer(sizes[i], sizes[i+1], act, true, factory))
	}
	return m
}

// Forward runs the full stack.
func (m *MLP) Forward(x tensor.Vector) tensor.Vector {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dL/dy_out down the stack, updating every layer with
// learning rate lr, and returns dL/dx_in.
func (m *MLP) Backward(dy tensor.Vector, lr float64) tensor.Vector {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy, lr)
	}
	return dy
}

// TrainStep performs one softmax-cross-entropy SGD step on (x, label) and
// returns the loss before the update. The final layer must use SoftmaxAct.
func (m *MLP) TrainStep(x tensor.Vector, label int, lr float64) float64 {
	probs := m.Forward(x)
	loss := CrossEntropy(probs, label)
	// d(CE∘softmax)/dz = p - onehot; the softmax layer's prime is identity.
	dy := probs.Clone()
	dy[label] -= 1
	m.Backward(dy, lr)
	return loss
}

// ForwardBatch runs the full stack on a batch of inputs through each
// layer's batched MVM path. Outputs are bit-identical to calling Forward on
// each input in order: per layer the batched MVMs preserve the sequential
// summation order and periphery-randomness sequence, and when any layer's
// weight storage pins its op order (a crossbar with a fault hook attached,
// whose hook state is shared across layers and order-sensitive) the whole
// batch falls back to the literal per-sample sequential stream. Layer
// Backward caches are untouched on the batched path but clobbered on the
// fallback, as with any Forward.
func (m *MLP) ForwardBatch(xs []tensor.Vector) []tensor.Vector {
	for _, l := range m.Layers {
		if opOrderPinned(l.W) {
			ys := make([]tensor.Vector, len(xs))
			for i, x := range xs {
				ys[i] = m.Forward(x)
			}
			return ys
		}
	}
	for _, l := range m.Layers {
		xs = l.ForwardBatch(xs)
	}
	return xs
}

// Predict returns the argmax class for x.
func (m *MLP) Predict(x tensor.Vector) int { return m.Forward(x).ArgMax() }

// Accuracy evaluates classification accuracy over a set of examples,
// batching the forward passes through the weight storage.
func (m *MLP) Accuracy(xs []tensor.Vector, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, y := range m.ForwardBatch(xs) {
		if y.ArgMax() == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// ParamCount reports the total number of weights (including biases).
func (m *MLP) ParamCount() int {
	n := 0
	for _, l := range m.Layers {
		n += l.W.Rows() * l.W.Cols()
	}
	return n
}
