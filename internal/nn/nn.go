// Package nn is the digital neural-network substrate: fully connected
// networks with backpropagation, an LSTM cell with BPTT, small 2-D
// convolution/pooling layers, and the loss functions used across the
// repository.
//
// The package defines the Mat interface — the contract between a network and
// the thing that stores its weight matrix. A Mat can be a plain dense
// float64 matrix (this package) or a simulated analog crossbar array
// (package crossbar). Networks express forward, backward, and rank-1 update
// passes only through this interface, which is exactly the structure of the
// three RPU cycles in Fig. 1 of the paper: the same network code trains on
// ideal digital weights and on non-ideal analog devices.
package nn

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// Mat is a weight matrix supporting the three crossbar cycles: forward MVM,
// transposed (backward) MVM, and a rank-1 outer-product update.
type Mat interface {
	// Rows and Cols report the matrix shape (output × input).
	Rows() int
	Cols() int
	// Forward returns W·x.
	Forward(x tensor.Vector) tensor.Vector
	// Backward returns Wᵀ·d.
	Backward(d tensor.Vector) tensor.Vector
	// Update applies W += scale·(u ⊗ v) (in expectation, for stochastic
	// implementations). u has Rows elements, v has Cols elements.
	Update(scale float64, u, v tensor.Vector)
}

// BatchMat is an optional Mat extension: weight storage that can execute a
// batch of forward MVMs as one parallel grid (crossbar arrays do this under
// a single periphery acquisition). Implementations must be bit-identical to
// calling Forward on each input in order.
type BatchMat interface {
	Mat
	ForwardBatch(xs []tensor.Vector) []tensor.Vector
}

// OrderPinned is an optional Mat extension: storage whose observable state
// depends on the exact sample-by-sample op order of the sequential path.
// Crossbar arrays report this while a fault-injection hook is attached —
// campaign hooks keep op-order-sensitive state shared across a network's
// arrays, so reordering ops across layers would change which op a fault
// lands on. Batched network evaluation degrades to the sequential per-sample
// stream when any layer reports a pinned order.
type OrderPinned interface {
	// OpOrderPinned reports whether ops must retain per-sample order.
	OpOrderPinned() bool
}

func opOrderPinned(m Mat) bool {
	p, ok := m.(OrderPinned)
	return ok && p.OpOrderPinned()
}

// ForwardBatch computes one forward MVM per input, through the Mat's
// batched path when it has one and falling back to sequential Forward calls
// otherwise. Either way the results are bit-identical to the sequential
// loop.
func ForwardBatch(m Mat, xs []tensor.Vector) []tensor.Vector {
	if b, ok := m.(BatchMat); ok {
		return b.ForwardBatch(xs)
	}
	ys := make([]tensor.Vector, len(xs))
	for i, x := range xs {
		ys[i] = m.Forward(x)
	}
	return ys
}

// DenseMat is the ideal digital Mat: an exact float64 matrix.
type DenseMat struct {
	M *tensor.Matrix
}

// NewDenseMat returns a zero-initialized rows×cols dense Mat.
func NewDenseMat(rows, cols int) *DenseMat {
	return &DenseMat{M: tensor.NewMatrix(rows, cols)}
}

// Rows implements Mat.
func (d *DenseMat) Rows() int { return d.M.Rows }

// Cols implements Mat.
func (d *DenseMat) Cols() int { return d.M.Cols }

// Forward implements Mat via the tiled kernel (bit-identical to the scalar
// reference m.MatVec at every worker count).
func (d *DenseMat) Forward(x tensor.Vector) tensor.Vector { return par.MatVec(d.M, x) }

// Backward implements Mat via the tiled transposed kernel.
func (d *DenseMat) Backward(dd tensor.Vector) tensor.Vector { return par.MatVecT(d.M, dd) }

// Update implements Mat.
func (d *DenseMat) Update(scale float64, u, v tensor.Vector) { d.M.AddOuter(scale, u, v) }

// ForwardBatch implements BatchMat: the batch runs as one sample-blocked
// (row-tile × sample-block) grid on the par worker pool (par.MatVecBatch),
// amortizing each weight-row load over BatchSpan samples. The blocked kernel
// preserves the scalar reference summation order, so results are
// bit-identical to sequential Forward calls at every worker count.
func (d *DenseMat) ForwardBatch(xs []tensor.Vector) []tensor.Vector {
	for s, x := range xs {
		if len(x) != d.M.Cols {
			panic(fmt.Sprintf("nn: ForwardBatch expects %d inputs, got %d (sample %d)", d.M.Cols, len(x), s))
		}
	}
	return par.MatVecBatch(d.M, xs)
}

// InitXavier fills m with Xavier/Glorot-uniform weights using rng.
func InitXavier(m *tensor.Matrix, rng *rngutil.Source) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = rng.Uniform(-limit, limit)
	}
}

// Activation identifies an element-wise nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	TanhAct
	SigmoidAct
	ReLUAct
	SoftmaxAct // only valid as the output activation with cross-entropy loss
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case TanhAct:
		return "tanh"
	case SigmoidAct:
		return "sigmoid"
	case ReLUAct:
		return "relu"
	case SoftmaxAct:
		return "softmax"
	}
	return fmt.Sprintf("Activation(%d)", int(a))
}

// apply computes the activation of the pre-activation vector z.
func (a Activation) apply(z tensor.Vector) tensor.Vector {
	switch a {
	case Identity:
		return z.Clone()
	case TanhAct:
		return tensor.Apply(z, tensor.Tanh)
	case SigmoidAct:
		return tensor.Apply(z, tensor.Sigmoid)
	case ReLUAct:
		return tensor.Apply(z, tensor.ReLU)
	case SoftmaxAct:
		return tensor.Softmax(z)
	}
	panic("nn: unknown activation")
}

// prime computes the derivative dy/dz given pre-activation z and activation y.
func (a Activation) prime(z, y tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, len(z))
	switch a {
	case Identity:
		out.Fill(1)
	case TanhAct:
		for i := range out {
			out[i] = tensor.TanhPrime(y[i])
		}
	case SigmoidAct:
		for i := range out {
			out[i] = tensor.SigmoidPrime(y[i])
		}
	case ReLUAct:
		for i := range out {
			out[i] = tensor.ReLUPrime(z[i])
		}
	case SoftmaxAct:
		// Softmax derivative is handled jointly with cross-entropy in the
		// output delta; treated as identity here.
		out.Fill(1)
	default:
		panic("nn: unknown activation")
	}
	return out
}
