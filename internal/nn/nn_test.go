package nn

import (
	"math"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func TestDenseMatImplementsCycles(t *testing.T) {
	d := NewDenseMat(2, 3)
	copy(d.M.Data, []float64{1, 2, 3, 4, 5, 6})
	if d.Rows() != 2 || d.Cols() != 3 {
		t.Fatal("shape wrong")
	}
	y := d.Forward(tensor.Vector{1, 0, 1})
	if y[0] != 4 || y[1] != 10 {
		t.Fatalf("Forward = %v", y)
	}
	b := d.Backward(tensor.Vector{1, 1})
	if b[0] != 5 || b[1] != 7 || b[2] != 9 {
		t.Fatalf("Backward = %v", b)
	}
	d.Update(2, tensor.Vector{1, 0}, tensor.Vector{0, 1, 0})
	if d.M.At(0, 1) != 4 {
		t.Fatalf("Update: got %v", d.M.At(0, 1))
	}
}

func TestXavierInitRange(t *testing.T) {
	m := tensor.NewMatrix(10, 20)
	InitXavier(m, rngutil.New(1))
	limit := math.Sqrt(6.0 / 30.0)
	nonzero := 0
	for _, w := range m.Data {
		if math.Abs(w) > limit {
			t.Fatalf("weight %v outside Xavier limit %v", w, limit)
		}
		if w != 0 {
			nonzero++
		}
	}
	if nonzero < len(m.Data)/2 {
		t.Fatal("most weights should be nonzero")
	}
}

func TestActivationString(t *testing.T) {
	for a, want := range map[Activation]string{
		Identity: "identity", TanhAct: "tanh", SigmoidAct: "sigmoid",
		ReLUAct: "relu", SoftmaxAct: "softmax",
	} {
		if a.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestDenseLayerBiasFolding(t *testing.T) {
	rng := rngutil.New(3)
	l := NewDenseLayer(2, 3, Identity, true, DenseFactory(rng))
	if l.W.Cols() != 3 { // 2 inputs + 1 bias column
		t.Fatalf("bias column missing: cols=%d", l.W.Cols())
	}
	// Zero input must still produce the bias column's contribution.
	dm := l.W.(*DenseMat)
	dm.M.Fill(0)
	dm.M.Set(0, 2, 0.7)
	y := l.Forward(tensor.Vector{0, 0})
	if y[0] != 0.7 {
		t.Fatalf("bias not applied: %v", y)
	}
}

// Gradient check: MLP backward must match numerical gradients of the loss
// with respect to the input.
func TestMLPGradientCheck(t *testing.T) {
	rng := rngutil.New(7)
	m := NewMLP([]int{4, 5, 3}, TanhAct, SoftmaxAct, DenseFactory(rng))
	x := tensor.Vector{0.3, -0.2, 0.8, 0.1}
	label := 1

	loss := func(xx tensor.Vector) float64 {
		return CrossEntropy(m.Forward(xx), label)
	}
	probs := m.Forward(x)
	dy := probs.Clone()
	dy[label] -= 1
	dx := m.Backward(dy, 0) // lr=0: compute input grads without updating

	const h = 1e-5
	for i := range x {
		xp := x.Clone()
		xp[i] += h
		xm := x.Clone()
		xm[i] -= h
		num := (loss(xp) - loss(xm)) / (2 * h)
		if math.Abs(num-dx[i]) > 1e-4 {
			t.Errorf("input grad %d: numeric %v vs backprop %v", i, num, dx[i])
		}
	}
}

// Gradient check on weights: perturb one weight, compare loss delta.
func TestMLPWeightGradientCheck(t *testing.T) {
	rng := rngutil.New(8)
	m := NewMLP([]int{3, 4, 2}, SigmoidAct, SoftmaxAct, DenseFactory(rng))
	x := tensor.Vector{0.5, -1, 0.2}
	label := 0

	// Analytic dL/dW for layer 0 weight (1,2) via a tiny lr step:
	// W -= lr*g  =>  g ≈ (W_before - W_after)/lr.
	dm := m.Layers[0].W.(*DenseMat)
	before := dm.M.At(1, 2)
	probs := m.Forward(x)
	dy := probs.Clone()
	dy[label] -= 1
	const lr = 1e-6
	m.Backward(dy, lr)
	analytic := (before - dm.M.At(1, 2)) / lr
	dm.M.Set(1, 2, before) // restore

	const h = 1e-5
	loss := func() float64 { return CrossEntropy(m.Forward(x), label) }
	dm.M.Set(1, 2, before+h)
	lp := loss()
	dm.M.Set(1, 2, before-h)
	lm := loss()
	dm.M.Set(1, 2, before)
	numeric := (lp - lm) / (2 * h)
	if math.Abs(numeric-analytic) > 1e-3 {
		t.Errorf("weight grad: numeric %v vs analytic %v", numeric, analytic)
	}
}

func TestMLPLearnsBlobs(t *testing.T) {
	rng := rngutil.New(11)
	m := NewMLP([]int{4, 8, 2}, TanhAct, SoftmaxAct, DenseFactory(rng))
	// Two well-separated Gaussian blobs.
	var xs []tensor.Vector
	var ys []int
	dr := rng.Child("data")
	for i := 0; i < 200; i++ {
		c := i % 2
		center := 1.5
		if c == 0 {
			center = -1.5
		}
		x := make(tensor.Vector, 4)
		for j := range x {
			x[j] = dr.Normal(center, 1)
		}
		xs = append(xs, x)
		ys = append(ys, c)
	}
	for epoch := 0; epoch < 10; epoch++ {
		for i := range xs {
			m.TrainStep(xs[i], ys[i], 0.05)
		}
	}
	if acc := m.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("MLP failed to learn separable blobs: acc=%v", acc)
	}
}

func TestMLPParamCount(t *testing.T) {
	rng := rngutil.New(1)
	m := NewMLP([]int{4, 8, 2}, TanhAct, SoftmaxAct, DenseFactory(rng))
	want := 8*5 + 2*9 // (4+1)*8 + (8+1)*2
	if got := m.ParamCount(); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

func TestMLPTrainLossDecreases(t *testing.T) {
	rng := rngutil.New(13)
	m := NewMLP([]int{2, 6, 2}, ReLUAct, SoftmaxAct, DenseFactory(rng))
	x := tensor.Vector{1, -1}
	first := m.TrainStep(x, 0, 0.1)
	var last float64
	for i := 0; i < 30; i++ {
		last = m.TrainStep(x, 0, 0.1)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first=%v last=%v", first, last)
	}
}

func TestLSTMStepShapesAndState(t *testing.T) {
	rng := rngutil.New(17)
	l := NewLSTM(3, 5, rng)
	h := l.Step(tensor.Vector{1, 0, -1})
	if len(h) != 5 {
		t.Fatalf("hidden size %d", len(h))
	}
	h2, c2 := l.State()
	if len(h2) != 5 || len(c2) != 5 {
		t.Fatal("State shapes wrong")
	}
	// Stepping twice with same input should generally differ (state evolves).
	h3 := l.Step(tensor.Vector{1, 0, -1})
	same := true
	for i := range h {
		if h[i] != h3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("LSTM state does not evolve")
	}
	l.Reset()
	hr, cr := l.State()
	if hr.Norm2() != 0 || cr.Norm2() != 0 {
		t.Fatal("Reset must zero state")
	}
}

// BPTT gradient check against numerical differentiation of a scalar loss.
func TestLSTMBPTTGradientCheck(t *testing.T) {
	rng := rngutil.New(19)
	l := NewLSTM(2, 3, rng)
	xs := []tensor.Vector{{0.5, -0.3}, {0.1, 0.9}, {-0.7, 0.2}}
	target := tensor.Vector{0.2, -0.1, 0.4}

	loss := func() float64 {
		hs, _ := l.ForwardSeq(xs)
		return MSE(hs[len(hs)-1], target)
	}

	hs, caches := l.ForwardSeq(xs)
	dhs := make([]tensor.Vector, len(xs))
	for t2 := range dhs {
		dhs[t2] = tensor.NewVector(3)
	}
	dhs[len(xs)-1] = MSEGrad(hs[len(hs)-1], target)
	g := l.NewLSTMGrads()
	l.BackwardSeq(caches, dhs, g)

	const h = 1e-5
	// Check a few representative weights in each parameter block.
	checks := []struct {
		name string
		get  func() *float64
		grad float64
	}{
		{"Wx[0]", func() *float64 { return &l.Wx.Data[0] }, g.DWx.Data[0]},
		{"Wx[5]", func() *float64 { return &l.Wx.Data[5] }, g.DWx.Data[5]},
		{"Wh[1]", func() *float64 { return &l.Wh.Data[1] }, g.DWh.Data[1]},
		{"Wh[7]", func() *float64 { return &l.Wh.Data[7] }, g.DWh.Data[7]},
		{"B[2]", func() *float64 { return &l.B[2] }, g.DB[2]},
		{"B[10]", func() *float64 { return &l.B[10] }, g.DB[10]},
	}
	for _, c := range checks {
		p := c.get()
		orig := *p
		*p = orig + h
		lp := loss()
		*p = orig - h
		lm := loss()
		*p = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-c.grad) > 1e-4 {
			t.Errorf("%s: numeric %v vs BPTT %v", c.name, numeric, c.grad)
		}
	}
}

func TestLSTMLearnsToRememberFirstInput(t *testing.T) {
	// Task: output at the last step should equal the first input bit.
	rng := rngutil.New(23)
	l := NewLSTM(1, 8, rng)
	readout := NewDenseLayer(8, 1, SigmoidAct, true, DenseFactory(rng.Child("ro")))

	dr := rng.Child("data")
	seqLen := 4
	trainCase := func(lr float64) float64 {
		bit := 0.0
		if dr.Bernoulli(0.5) {
			bit = 1
		}
		xs := make([]tensor.Vector, seqLen)
		xs[0] = tensor.Vector{bit}
		for t2 := 1; t2 < seqLen; t2++ {
			xs[t2] = tensor.Vector{dr.Float64()*0.2 - 0.1} // distractors
		}
		hs, caches := l.ForwardSeq(xs)
		pred := readout.Forward(hs[seqLen-1])
		loss := MSE(pred, tensor.Vector{bit})
		if lr > 0 {
			dh := readout.Backward(MSEGrad(pred, tensor.Vector{bit}), lr)
			dhs := make([]tensor.Vector, seqLen)
			for t2 := range dhs {
				dhs[t2] = tensor.NewVector(8)
			}
			dhs[seqLen-1] = dh
			g := l.NewLSTMGrads()
			l.BackwardSeq(caches, dhs, g)
			l.ApplyGrads(g, lr, 5)
		}
		return loss
	}

	var early, late float64
	for i := 0; i < 60; i++ {
		early += trainCase(0.2)
	}
	for i := 0; i < 500; i++ {
		trainCase(0.2)
	}
	for i := 0; i < 60; i++ {
		late += trainCase(0)
	}
	if late >= early {
		t.Fatalf("LSTM did not learn: early loss %v, late loss %v", early/60, late/60)
	}
}

func TestLossFunctions(t *testing.T) {
	if got := CrossEntropy(tensor.Vector{0.5, 0.5}, 0); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("CE = %v, want ln2", got)
	}
	if got := CrossEntropy(tensor.Vector{0, 1}, 0); math.IsInf(got, 1) {
		t.Error("CE must be finite under clamping")
	}
	if got := MSE(tensor.Vector{1, 2}, tensor.Vector{1, 4}); got != 2 {
		t.Errorf("MSE = %v, want 2", got)
	}
	g := MSEGrad(tensor.Vector{1, 2}, tensor.Vector{1, 4})
	if g[0] != 0 || g[1] != -2 {
		t.Errorf("MSEGrad = %v", g)
	}
	if got := BCE(tensor.Vector{0.5}, tensor.Vector{1}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("BCE = %v, want ln2", got)
	}
	if got := BCE(tensor.Vector{1}, tensor.Vector{1}); got > 1e-9 {
		t.Errorf("BCE perfect pred = %v, want ~0", got)
	}
}
