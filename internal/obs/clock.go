package obs

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time so the real serving runtime reads every
// deadline-relevant timestamp — and waits out every backoff, hedge delay,
// and deadline — from one injectable source: production uses System, tests
// use a Manual clock whose time (and therefore every Sleep/After) advances
// virtually, and the two paths share the simulator's "one clock per run"
// discipline.
type Clock interface {
	Now() time.Time
	// Sleep blocks until the clock has advanced by d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's reading once it has
	// advanced by d. Unlike time.NewTimer there is no Stop: abandoned
	// channels are buffered and simply fire into the void, which keeps the
	// Manual implementation free of timer bookkeeping.
	After(d time.Duration) <-chan time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// System is the wall clock.
var System Clock = systemClock{}

// waiter is one pending Manual.After registration.
type waiter struct {
	at time.Time
	ch chan time.Time
}

// Manual is a hand-advanced clock for tests: time moves only when the test
// says so, making deadline checks exact instead of racy. Sleep and After
// block until Advance (or Set) moves the clock past their due time, so
// code that backs off or arms hedge/deadline timers through the Clock
// burns no wall-clock time under test.
type Manual struct {
	mu      sync.Mutex
	t       time.Time
	waiters []waiter
}

// NewManual builds a manual clock starting at start.
func NewManual(start time.Time) *Manual { return &Manual{t: start} }

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Sleep implements Clock: it blocks until the clock has been advanced by d.
func (m *Manual) Sleep(d time.Duration) { <-m.After(d) }

// After implements Clock: the returned channel fires (with the clock
// reading at fire time) once the clock reaches now+d. A non-positive d
// fires immediately.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	m.mu.Lock()
	due := m.t.Add(d)
	if d <= 0 {
		ch <- m.t
	} else {
		m.waiters = append(m.waiters, waiter{at: due, ch: ch})
	}
	m.mu.Unlock()
	return ch
}

// Advance moves the clock forward by d, firing every Sleep/After whose due
// time has been reached.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.t = m.t.Add(d)
	m.fireLocked()
	m.mu.Unlock()
}

// Set jumps the clock to t (firing due waiters when t is in the future).
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	m.t = t
	m.fireLocked()
	m.mu.Unlock()
}

// fireLocked delivers to every waiter due at or before the current time, in
// due-time order (stable for waiters registered at the same instant).
func (m *Manual) fireLocked() {
	if len(m.waiters) == 0 {
		return
	}
	sort.SliceStable(m.waiters, func(i, j int) bool { return m.waiters[i].at.Before(m.waiters[j].at) })
	n := 0
	for _, w := range m.waiters {
		if !w.at.After(m.t) {
			w.ch <- m.t
		} else {
			m.waiters[n] = w
			n++
		}
	}
	m.waiters = m.waiters[:n]
}
