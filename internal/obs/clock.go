package obs

import (
	"sync"
	"time"
)

// Clock abstracts time.Now so the real serving runtime reads every
// deadline-relevant timestamp from one injectable source: production uses
// System, tests use a Manual clock for flake-free deadline semantics, and
// the two paths share the simulator's "one clock per run" discipline.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// System is the wall clock.
var System Clock = systemClock{}

// Manual is a hand-advanced clock for tests: time moves only when the test
// says so, making deadline checks exact instead of racy.
type Manual struct {
	mu sync.Mutex
	t  time.Time
}

// NewManual builds a manual clock starting at start.
func NewManual(start time.Time) *Manual { return &Manual{t: start} }

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Advance moves the clock forward by d.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.t = m.t.Add(d)
	m.mu.Unlock()
}

// Set jumps the clock to t.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	m.t = t
	m.mu.Unlock()
}
