package obs

import (
	"sync"
	"testing"
	"time"
)

// TestManualAfterFiresOnAdvance pins the virtual-timer contract: After
// channels fire exactly when the hand-advanced clock crosses their due
// time, never on wall time.
func TestManualAfterFiresOnAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	early := m.After(10 * time.Millisecond)
	late := m.After(30 * time.Millisecond)

	select {
	case <-early:
		t.Fatal("After fired before any Advance")
	default:
	}

	m.Advance(10 * time.Millisecond)
	select {
	case at := <-early:
		if !at.Equal(start.Add(10 * time.Millisecond)) {
			t.Fatalf("early fired at %v, want %v", at, start.Add(10*time.Millisecond))
		}
	default:
		t.Fatal("early waiter did not fire at its due time")
	}
	select {
	case <-late:
		t.Fatal("late waiter fired ahead of its due time")
	default:
	}

	m.Advance(25 * time.Millisecond)
	select {
	case <-late:
	default:
		t.Fatal("late waiter did not fire after the clock passed it")
	}
}

// TestManualAfterImmediate pins the non-positive-duration edge: it must fire
// without any Advance (the deadline-already-passed case in serve).
func TestManualAfterImmediate(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) must fire immediately")
	}
	select {
	case <-m.After(-time.Second):
	default:
		t.Fatal("After(negative) must fire immediately")
	}
}

// TestManualSleepIsVirtual proves Sleep consumes no wall time beyond
// scheduling: a 10-virtual-second sleep completes as soon as the clock is
// advanced past it.
func TestManualSleepIsVirtual(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var wg sync.WaitGroup
	wg.Add(1)
	slept := make(chan struct{})
	go func() {
		defer wg.Done()
		m.Sleep(10 * time.Second)
		close(slept)
	}()
	// Drive the clock until the sleeper wakes; wall-clock bound is generous
	// but the virtual duration (10s) would dwarf it if Sleep were real.
	t0 := time.Now()
	for {
		select {
		case <-slept:
			wg.Wait()
			if el := time.Since(t0); el > 5*time.Second {
				t.Fatalf("virtual sleep took %v wall time", el)
			}
			return
		default:
			m.Advance(time.Second)
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// TestManualSetFiresWaiters verifies Set (jumping forward) releases due
// waiters just like Advance.
func TestManualSetFiresWaiters(t *testing.T) {
	start := time.Unix(50, 0)
	m := NewManual(start)
	ch := m.After(time.Minute)
	m.Set(start.Add(2 * time.Minute))
	select {
	case <-ch:
	default:
		t.Fatal("Set past the due time did not fire the waiter")
	}
}

// TestSystemClockAfter smoke-checks the wall-clock implementation so the
// interface extension stays covered on both paths.
func TestSystemClockAfter(t *testing.T) {
	select {
	case <-System.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("System.After never fired")
	}
	t0 := System.Now()
	System.Sleep(time.Millisecond)
	if !System.Now().After(t0) {
		t.Fatal("System.Sleep did not advance wall time")
	}
}
