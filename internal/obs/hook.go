package obs

import (
	"flag"
	"fmt"
	"os"
)

// Hook is the shared observability wiring for the campaign binaries: three
// flags (-obs-addr, -metrics-out, -trace-out), a Start that builds the
// registry/tracer and boots the optional HTTP endpoint, and a Finish that
// writes the requested dump files. When none of the flags are set, Start
// leaves everything nil and the whole layer stays disabled (free).
type Hook struct {
	Addr       string // -obs-addr: listen address for /metrics, /traces, /debug/pprof/
	MetricsOut string // -metrics-out: write the deterministic (stable) metric dump here on exit
	TraceOut   string // -trace-out: write the trace ring as JSON here on exit

	Registry *Registry
	Tracer   *Tracer
	server   *Server
}

// BindFlags registers the observability flags on fs (the process FlagSet).
func (h *Hook) BindFlags(fs *flag.FlagSet) {
	fs.StringVar(&h.Addr, "obs-addr", "", "serve /metrics, /traces and /debug/pprof/ on this address (empty = off)")
	fs.StringVar(&h.MetricsOut, "metrics-out", "", "write deterministic metric dump to this file on exit (empty = off)")
	fs.StringVar(&h.TraceOut, "trace-out", "", "write trace span dump (JSON) to this file on exit (empty = off)")
}

// Server returns the live HTTP endpoint, or nil when -obs-addr was not set
// (or Start has not run).
func (h *Hook) Server() *Server { return h.server }

// Enabled reports whether any observability flag was set.
func (h *Hook) Enabled() bool {
	return h.Addr != "" || h.MetricsOut != "" || h.TraceOut != ""
}

// Start builds the registry and tracer (when any flag asks for them),
// installs them as the process defaults, and boots the HTTP endpoint if
// -obs-addr was given. Returns an error only for a failed listen.
func (h *Hook) Start() error {
	if !h.Enabled() {
		return nil
	}
	h.Registry = NewRegistry()
	h.Tracer = NewTracer(0)
	SetDefault(h.Registry, h.Tracer)
	if h.Addr != "" {
		s, err := Serve(h.Addr, h.Registry, h.Tracer)
		if err != nil {
			return err
		}
		h.server = s
		fmt.Fprintf(os.Stderr, "obs: serving /metrics /traces /debug/pprof/ on http://%s\n", s.Addr())
	}
	return nil
}

// Finish writes the -metrics-out and -trace-out dumps and shuts the HTTP
// endpoint down. Safe to call when Start never ran.
func (h *Hook) Finish() error {
	var firstErr error
	if h.MetricsOut != "" && h.Registry != nil {
		if err := writeFileWith(h.MetricsOut, func(w *os.File) { h.Registry.WriteStable(w) }); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if h.TraceOut != "" && h.Tracer != nil {
		if err := writeFileWith(h.TraceOut, func(w *os.File) { h.Tracer.WriteJSON(w) }); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if h.server != nil {
		if err := h.server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		h.server = nil
	}
	return firstErr
}

func writeFileWith(path string, fill func(*os.File)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fill(f)
	return f.Close()
}
