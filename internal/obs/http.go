package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewHandler builds the observability mux: /metrics (Prometheus text
// format, volatile metrics included), /traces (ring-buffer JSON dump),
// and the full /debug/pprof/* suite on a private mux (nothing touches
// http.DefaultServeMux). Either handle may be nil; the endpoints then
// serve empty dumps.
func NewHandler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		tr.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "obs endpoints: /metrics /traces /debug/pprof/\n")
	})
	return mux
}

// Server is one live observability endpoint.
type Server struct {
	l   net.Listener
	srv *http.Server
}

// Serve starts the observability endpoints on addr (e.g. "127.0.0.1:9090";
// ":0" picks a free port — read it back with Addr). The server runs until
// Close.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{l: l, srv: &http.Server{Handler: NewHandler(reg, tr)}}
	go s.srv.Serve(l) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
