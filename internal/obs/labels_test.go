package obs

import (
	"strings"
	"testing"
)

// TestSeriesCanonical pins the canonical form: keys sorted, values quoted,
// so the same label set always maps to the same registry entry.
func TestSeriesCanonical(t *testing.T) {
	if got := Series("m"); got != "m" {
		t.Fatalf("Series with no labels = %q, want %q", got, "m")
	}
	a := Series("cluster_node_served_total", "node", "3", "shard", "1")
	b := Series("cluster_node_served_total", "shard", "1", "node", "3")
	if a != b {
		t.Fatalf("label order changed the series key: %q vs %q", a, b)
	}
	want := `cluster_node_served_total{node="3",shard="1"}`
	if a != want {
		t.Fatalf("Series = %q, want %q", a, want)
	}
	if esc := Series("m", "k", `a"b`); esc != `m{k="a\"b"}` {
		t.Fatalf("Series did not escape the value: %q", esc)
	}
}

// TestSeriesSameInstrument verifies labeled registration is idempotent per
// label set and distinct across label sets.
func TestSeriesSameInstrument(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter(Series("f_total", "node", "0"), "h")
	c2 := r.Counter(Series("f_total", "node", "0"), "h")
	c3 := r.Counter(Series("f_total", "node", "1"), "h")
	if c1 != c2 {
		t.Fatal("same series resolved to two instruments")
	}
	if c1 == c3 {
		t.Fatal("distinct label sets resolved to one instrument")
	}
}

// TestDumpFamilyGrouping pins the exposition contract for labeled series:
// one HELP/TYPE header per family, series contiguous beneath it, histogram
// quantile labels merged with the series labels.
func TestDumpFamilyGrouping(t *testing.T) {
	r := NewRegistry()
	r.Counter(Series("f_total", "node", "1"), "per-node count").Add(2)
	r.Counter(Series("f_total", "node", "0"), "per-node count").Add(1)
	r.Counter("f_other_total", "plain count").Add(5)
	r.Histogram(Series("lat_seconds", "node", "0"), "per-node latency", 0).Observe(0.25)

	var sb strings.Builder
	r.WriteStable(&sb)
	out := sb.String()

	if n := strings.Count(out, "# TYPE f_total counter"); n != 1 {
		t.Fatalf("family f_total has %d TYPE headers, want 1:\n%s", n, out)
	}
	for _, line := range []string{
		`f_total{node="0"} 1`,
		`f_total{node="1"} 2`,
		"f_other_total 5",
		`lat_seconds{node="0",quantile="0.5"} 0.25`,
		`lat_seconds_sum{node="0"} 0.25`,
		`lat_seconds_count{node="0"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("dump missing line %q:\n%s", line, out)
		}
	}
	if strings.Index(out, `f_total{node="0"}`) > strings.Index(out, `f_total{node="1"}`) {
		t.Fatalf("series not sorted by labels within the family:\n%s", out)
	}
}
