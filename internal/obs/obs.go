// Package obs is the repository's stdlib-only observability layer: a typed
// metrics registry (counters, gauges, and histograms with exact quantiles
// in sim mode and streaming windows in real mode), per-request trace spans
// with parent/child IDs and stage timings, and opt-in net/http endpoints
// (/metrics in Prometheus text format, /debug/pprof/*, /traces).
//
// Two design rules run through everything:
//
//  1. Disabled must be free. Every constructor accepts a nil registry or
//     tracer and returns nil instruments, and every instrument method is a
//     no-op on a nil receiver — so instrumented hot paths cost exactly one
//     nil check when observability is off. The PR 4 benchmark gate holds
//     with instrumentation compiled in.
//
//  2. Dumps must be deterministic when the feed is. The virtual-time
//     simulator feeds the registry from event time, never the wall clock,
//     so WriteStable output is byte-identical at any -workers value — the
//     same contract the campaign tables obey. Instruments that are fed
//     wall-clock measurements (real-service latencies, fsync timings,
//     scheduling-dependent tile batches) are marked Volatile at creation
//     and excluded from WriteStable; they still appear on the live
//     /metrics endpoint.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "summary"
	}
	return "untyped"
}

// metric is the registry-internal interface of all instrument types.
// write receives the series' family name and its (possibly empty) label
// body so multi-line instruments can merge their own labels in.
type metric interface {
	kindOf() metricKind
	helpOf() string
	isVolatile() bool
	write(w io.Writer, family, labels string)
}

// Series builds a labeled metric name — family{k1="v1",k2="v2"} — for use
// with Counter/Gauge/Histogram. Pairs are canonicalised (sorted by key) so
// the same label set always yields the same registry key, and values are
// quoted/escaped. Every series of a family shares one HELP/TYPE header in
// the dumps; give them all the same help string. Panics on an odd kv count
// (always a programming error).
func Series(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: Series(%q): odd label key/value count %d", family, len(kv)))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(p.v))
	}
	b.WriteByte('}')
	return b.String()
}

// splitSeries splits a registry key into its family name and label body.
func splitSeries(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// seriesRef renders a sample-line name: family or family{labels}.
func seriesRef(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

// Registry holds named instruments. A nil *Registry is the disabled layer:
// its constructors return nil instruments whose methods are no-ops.
// Registration is idempotent — asking for an existing name returns the
// existing instrument (and panics on a kind mismatch, which is always a
// programming error).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

// register is the common idempotent-registration path.
func (r *Registry) register(name string, make func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := make()
	r.metrics[name] = m
	return m
}

// Counter registers (or fetches) a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, func() metric { return &Counter{help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.kindOf()))
	}
	return c
}

// Gauge registers (or fetches) a settable instantaneous value.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, func() metric { return &Gauge{help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.kindOf()))
	}
	return g
}

// Histogram registers (or fetches) a sample distribution exported as a
// Prometheus summary (nearest-rank quantiles, sum, count). window == 0
// keeps every sample (exact mode — what the deterministic simulator
// feeds); window > 0 keeps only the most recent window samples (streaming
// mode for long-lived real services).
func (r *Registry) Histogram(name, help string, window int) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, func() metric {
		h := &Histogram{help: help, window: window}
		if window > 0 {
			h.samples = make([]float64, 0, window)
		}
		return h
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.kindOf()))
	}
	return h
}

// WritePrometheus renders every metric — volatile ones included — in the
// Prometheus text exposition format, sorted by name. This is what the live
// /metrics endpoint serves.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.dump(w, true)
}

// WriteStable renders only the non-volatile metrics, sorted by name: the
// byte-deterministic dump the -metrics-out flag writes and the CI
// determinism gate diffs across worker counts.
func (r *Registry) WriteStable(w io.Writer) {
	r.dump(w, false)
}

func (r *Registry) dump(w io.Writer, includeVolatile bool) {
	if r == nil {
		return
	}
	type entry struct {
		family, labels string
		m              metric
	}
	r.mu.Lock()
	entries := make([]entry, 0, len(r.metrics))
	for name, m := range r.metrics {
		if includeVolatile || !m.isVolatile() {
			family, labels := splitSeries(name)
			entries = append(entries, entry{family, labels, m})
		}
	}
	r.mu.Unlock()
	// Sort by (family, labels) so every series of a family is contiguous and
	// gets exactly one HELP/TYPE header — and the dump stays byte-stable.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].family != entries[j].family {
			return entries[i].family < entries[j].family
		}
		return entries[i].labels < entries[j].labels
	})
	prev := ""
	for _, e := range entries {
		if e.family != prev {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.family, e.m.helpOf(), e.family, e.m.kindOf())
			prev = e.family
		}
		e.m.write(w, e.family, e.labels)
	}
}

// ftoa is the deterministic float rendering all dumps share (shortest
// round-trippable representation, no locale, no exponent surprises across
// platforms).
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Counter is a monotonically increasing event count.
type Counter struct {
	help     string
	volatile bool
	v        atomic.Int64
}

// Volatile marks the counter wall-clock-fed (excluded from WriteStable)
// and returns it, for chaining at registration.
func (c *Counter) Volatile() *Counter {
	if c != nil {
		c.volatile = true
	}
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (no-op on a nil receiver — the disabled path).
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) kindOf() metricKind { return kindCounter }
func (c *Counter) helpOf() string     { return c.help }
func (c *Counter) isVolatile() bool   { return c.volatile }
func (c *Counter) write(w io.Writer, family, labels string) {
	fmt.Fprintf(w, "%s %d\n", seriesRef(family, labels), c.v.Load())
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	help     string
	volatile bool
	bits     atomic.Uint64
}

// Volatile marks the gauge wall-clock-fed and returns it.
func (g *Gauge) Volatile() *Gauge {
	if g != nil {
		g.volatile = true
	}
	return g
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value reports the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

func (g *Gauge) kindOf() metricKind { return kindGauge }
func (g *Gauge) helpOf() string     { return g.help }
func (g *Gauge) isVolatile() bool   { return g.volatile }
func (g *Gauge) write(w io.Writer, family, labels string) {
	fmt.Fprintf(w, "%s %s\n", seriesRef(family, labels), ftoa(g.Value()))
}

// Histogram collects a sample distribution. In exact mode (window 0) it
// keeps every observation, so quantiles are exact — the mode the
// deterministic simulator feeds. In windowed mode it keeps a ring of the
// most recent window samples — the streaming mode for unbounded
// real-service feeds. Sum and Count always cover every observation ever
// made, window or not.
type Histogram struct {
	help     string
	volatile bool
	window   int

	mu      sync.Mutex
	samples []float64
	next    int // ring cursor (windowed mode)
	count   int64
	sum     float64
}

// Volatile marks the histogram wall-clock-fed and returns it.
func (h *Histogram) Volatile() *Histogram {
	if h != nil {
		h.volatile = true
	}
	return h
}

// Observe folds one sample in (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if h.window <= 0 || len(h.samples) < h.window {
		h.samples = append(h.samples, v)
	} else {
		h.samples[h.next] = v
		h.next = (h.next + 1) % h.window
	}
	h.mu.Unlock()
}

// Count reports how many samples were ever observed (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the running sum of every observation (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile reports the nearest-rank q-th quantile over the retained
// samples (all of them in exact mode, the most recent window otherwise).
// 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	s := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	return Quantile(s, q)
}

func (h *Histogram) kindOf() metricKind { return kindHistogram }
func (h *Histogram) helpOf() string     { return h.help }
func (h *Histogram) isVolatile() bool   { return h.volatile }

// summaryQuantiles are the quantile lines every histogram exports.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

func (h *Histogram) write(w io.Writer, family, labels string) {
	h.mu.Lock()
	s := append([]float64(nil), h.samples...)
	count, sum := h.count, h.sum
	h.mu.Unlock()
	sort.Float64s(s)
	for _, q := range summaryQuantiles {
		qLabels := fmt.Sprintf("quantile=%q", ftoa(q))
		if labels != "" {
			qLabels = labels + "," + qLabels
		}
		fmt.Fprintf(w, "%s{%s} %s\n", family, qLabels, ftoa(NearestRank(s, q)))
	}
	fmt.Fprintf(w, "%s %s\n%s %d\n", seriesRef(family+"_sum", labels), ftoa(sum), seriesRef(family+"_count", labels), count)
}

// floatBits/floatFromBits adapt float64 gauges to the atomic word.
func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// defaultReg and defaultTr hold the process-wide default observability
// handles the campaign binaries install from their -obs-addr/-metrics-out/
// -trace-out flags; library code never reads them — only the experiment
// runners in internal/core fetch them to thread into campaign configs.
var (
	defaultReg atomic.Pointer[Registry]
	defaultTr  atomic.Pointer[Tracer]
)

// SetDefault installs the process-wide default registry and tracer (either
// may be nil).
func SetDefault(r *Registry, t *Tracer) {
	defaultReg.Store(r)
	defaultTr.Store(t)
}

// Default reports the process-wide default registry (nil when observability
// is disabled).
func Default() *Registry { return defaultReg.Load() }

// DefaultTracer reports the process-wide default tracer (nil when tracing
// is disabled).
func DefaultTracer() *Tracer { return defaultTr.Load() }
