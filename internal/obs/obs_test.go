package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNearestRankEdges(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"single-q0", []float64{7}, 0, 7},
		{"single-q50", []float64{7}, 0.5, 7},
		{"single-q100", []float64{7}, 1, 7},
		{"pair-min", []float64{1, 2}, 0, 1},
		{"pair-median", []float64{1, 2}, 0.5, 1}, // ceil(0.5*2)=1 → first
		{"pair-max", []float64{1, 2}, 1, 2},
		{"ten-p90", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9, 9},
		{"ten-p99", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},
		{"q-above-1", []float64{1, 2, 3}, 1.5, 3},
		{"q-below-0", []float64{1, 2, 3}, -0.5, 1},
	}
	for _, c := range cases {
		if got := NearestRank(c.sorted, c.q); got != c.want {
			t.Errorf("%s: NearestRank(%v, %v) = %v, want %v", c.name, c.sorted, c.q, got, c.want)
		}
	}
}

// TestNearestRankUnbiased pins the satellite bugfix: over 64 samples the old
// floor-biased estimator int(q*(n-1)) lands on index 59 for p95 (≈ the true
// p94), while nearest rank takes the ceil(0.95*64) = 61st order statistic —
// index 60.
func TestNearestRankUnbiased(t *testing.T) {
	s := make([]float64, 64)
	for i := range s {
		s[i] = float64(i)
	}
	if got := NearestRank(s, 0.95); got != 60 {
		t.Fatalf("p95 of 0..63 = %v, want 60 (nearest rank)", got)
	}
	if biased := s[int(0.95*float64(len(s)-1))]; biased != 59 {
		t.Fatalf("floor-biased index moved: got %v", biased) // documents the old behavior
	}
}

func TestQuantileSortsCopy(t *testing.T) {
	in := []float64{3, 1, 2}
	if got := Quantile(in, 1); got != 3 {
		t.Fatalf("Quantile max = %v, want 3", got)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", in)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", "other help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("c_total", "wrong kind")
}

func TestHistogramWindowRing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", 4)
	for i := 1; i <= 4; i++ { // exactly full, no wrap yet
		h.Observe(float64(i))
	}
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("max over exactly-full window = %v, want 4", got)
	}
	for i := 5; i <= 10; i++ { // wrap: retained should be 7..10
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); got != 7 {
		t.Fatalf("min after wrap = %v, want 7 (oldest retained)", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("max after wrap = %v, want 10", got)
	}
	if h.Count() != 10 {
		t.Fatalf("lifetime count = %d, want 10", h.Count())
	}
	if h.Sum() != 55 {
		t.Fatalf("lifetime sum = %v, want 55", h.Sum())
	}
}

func TestHistogramExactMode(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e_seconds", "help", 0)
	for i := 100; i >= 1; i-- {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("exact p50 = %v, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Fatalf("exact p99 = %v, want 99", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", 8)
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments are not inert")
	}
	c.Volatile().Inc()
	r.WriteStable(io.Discard)
	r.WritePrometheus(io.Discard)

	var tr *Tracer
	sp := tr.Start("root", 0)
	sp.Stage("s", 1)
	sp.SetErr("e")
	ch := sp.Child("c", 1)
	ch.End(2)
	sp.End(2)
	if tr.Snapshot() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer is not inert")
	}
}

func TestStableDumpExcludesVolatile(t *testing.T) {
	r := NewRegistry()
	r.Counter("stable_total", "kept").Inc()
	r.Counter("wallclock_total", "dropped").Volatile().Inc()
	r.Histogram("wallclock_seconds", "dropped", 8).Volatile().Observe(1)

	var stable, live strings.Builder
	r.WriteStable(&stable)
	r.WritePrometheus(&live)
	if strings.Contains(stable.String(), "wallclock") {
		t.Fatalf("WriteStable leaked a volatile metric:\n%s", stable.String())
	}
	if !strings.Contains(stable.String(), "stable_total 1") {
		t.Fatalf("WriteStable is missing the stable counter:\n%s", stable.String())
	}
	for _, want := range []string{"wallclock_total 1", "wallclock_seconds_count 1", "stable_total 1"} {
		if !strings.Contains(live.String(), want) {
			t.Fatalf("WritePrometheus is missing %q:\n%s", want, live.String())
		}
	}
}

func TestDumpIsSortedAndDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("zz_total", "z").Add(3)
		r.Gauge("aa", "a").Set(1.25)
		h := r.Histogram("mm_seconds", "m", 0)
		h.Observe(0.5)
		h.Observe(0.25)
		return r
	}
	var d1, d2 strings.Builder
	build().WriteStable(&d1)
	build().WriteStable(&d2)
	if d1.String() != d2.String() {
		t.Fatalf("identical feeds produced different dumps:\n%s\nvs\n%s", d1.String(), d2.String())
	}
	ia := strings.Index(d1.String(), "aa")
	im := strings.Index(d1.String(), "mm_seconds")
	iz := strings.Index(d1.String(), "zz_total")
	if !(ia < im && im < iz) {
		t.Fatalf("dump is not sorted by name:\n%s", d1.String())
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(3)
	for i := 1; i <= 5; i++ {
		sp := tr.Start("op", float64(i))
		sp.End(float64(i) + 0.5)
	}
	got := tr.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring retained %d spans, want 3", len(got))
	}
	for i, rec := range got { // oldest first: spans 3, 4, 5
		if want := float64(i + 3); rec.Start != want {
			t.Fatalf("span %d start = %v, want %v (oldest-first order)", i, rec.Start, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestTraceParentChildIDs(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("request", 0)
	root.Stage("queue", 0.1)
	child := root.Child("attempt", 0.2)
	child.End(0.3)
	root.Stage("complete", 0.4)
	root.End(0.4)

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	att, req := spans[0], spans[1] // child ended first
	if att.Trace != req.Trace {
		t.Fatalf("child trace %d != root trace %d", att.Trace, req.Trace)
	}
	if att.Parent != req.ID {
		t.Fatalf("child parent %d != root id %d", att.Parent, req.ID)
	}
	if req.Trace != req.ID || req.Parent != 0 {
		t.Fatalf("root span ids wrong: %+v", req)
	}
	if len(req.Stages) != 2 || req.Stages[0].Name != "queue" || req.Stages[1].Name != "complete" {
		t.Fatalf("root stages wrong: %+v", req.Stages)
	}

	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Dropped int64        `json:"dropped"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &dump); err != nil {
		t.Fatalf("trace dump is not valid JSON: %v", err)
	}
	if len(dump.Spans) != 2 || dump.Dropped != 0 {
		t.Fatalf("dump = %+v", dump)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("pings_total", "").Add(7)
	tr := NewTracer(4)
	tr.Start("op", 1).End(2)
	srv := httptest.NewServer(NewHandler(r, tr))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "pings_total 7") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/traces"); code != 200 || !strings.Contains(body, `"spans"`) {
		t.Fatalf("/traces: code %d body %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("/nope: code %d, want 404", code)
	}
}

func TestManualClock(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatal("manual clock did not start where asked")
	}
	m.Advance(3 * time.Second)
	if got := m.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("advance moved %v, want 3s", got)
	}
	m.Set(start)
	if !m.Now().Equal(start) {
		t.Fatal("set did not jump the clock")
	}
	if System.Now().IsZero() {
		t.Fatal("system clock returned zero time")
	}
}

func TestDefaultRegistryInstall(t *testing.T) {
	defer SetDefault(nil, nil)
	if Default() != nil || DefaultTracer() != nil {
		t.Fatal("defaults not nil at start")
	}
	r, tr := NewRegistry(), NewTracer(0)
	SetDefault(r, tr)
	if Default() != r || DefaultTracer() != tr {
		t.Fatal("SetDefault did not install the handles")
	}
}

func TestFtoaDeterministic(t *testing.T) {
	a, b := 0.1, 0.2 // variables, so the sum is float64 arithmetic, not exact constant folding
	if got := ftoa(a + b); got != "0.30000000000000004" {
		t.Fatalf("ftoa is not the shortest round-trippable form: %q", got)
	}
	if got := ftoa(math.Inf(1)); got != "+Inf" {
		t.Fatalf("ftoa(+Inf) = %q", got)
	}
}
