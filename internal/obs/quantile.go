package obs

import (
	"math"
	"sort"
)

// NearestRank returns the q-th quantile of the ascending-sorted sample set
// by the nearest-rank definition: the smallest element whose cumulative
// probability is at least q, i.e. sorted[ceil(q·n)-1]. Unlike the
// floor-truncated index int(q·(n-1)) it never rounds the rank down, so
// p99 over a small window picks the observed tail sample instead of a
// cheaper neighbor — the bias this helper exists to remove (it is the
// single quantile implementation shared by the hedging window, the
// campaign tables, and histogram summaries).
//
// Edge cases: an empty set reports 0; q <= 0 reports the minimum; q >= 1
// the maximum.
func NearestRank(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	k := int(math.Ceil(q*float64(n))) - 1
	if k < 0 {
		k = 0
	}
	if k > n-1 {
		k = n - 1
	}
	return sorted[k]
}

// Quantile is NearestRank over an unsorted sample set: it sorts a copy,
// leaving the input untouched.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return NearestRank(s, q)
}
