package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Stage is one named timestamp inside a span: the request lifecycle points
// (queue → dispatch → hedge → verify-read → complete) the serving layer
// records.
type Stage struct {
	Name string  `json:"name"`
	At   float64 `json:"at"`
}

// SpanRecord is one completed span. Times are float64 seconds on whatever
// clock fed the tracer: virtual time in the simulator (making trace dumps
// byte-deterministic), seconds-since-service-start in the real runtime.
type SpanRecord struct {
	Trace  uint64  `json:"trace"`
	ID     uint64  `json:"id"`
	Parent uint64  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Stages []Stage `json:"stages,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// Tracer collects completed spans into a fixed-capacity ring buffer. IDs
// are assigned from a deterministic counter, so a deterministically fed
// tracer dumps identically run-to-run. A nil *Tracer is the disabled
// layer: Start returns a nil *Span whose methods are all no-ops.
type Tracer struct {
	mu      sync.Mutex
	nextID  uint64
	ring    []SpanRecord
	head    int // next write position
	n       int // valid entries
	dropped int64
}

// DefaultTraceCapacity is the ring size NewTracer(0) uses.
const DefaultTraceCapacity = 4096

// NewTracer builds a tracer retaining the most recent capacity spans
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]SpanRecord, capacity)}
}

// Start opens a new root span at time at (a fresh trace ID, span ID 1
// within it would be overkill — trace and span IDs share one counter, so
// a root span's Trace equals its ID).
func (t *Tracer) Start(name string, at float64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{t: t, rec: SpanRecord{Trace: id, ID: id, Name: name, Start: at}}
}

// commit pushes a finished record into the ring.
func (t *Tracer) commit(rec SpanRecord) {
	t.mu.Lock()
	if t.n == len(t.ring) {
		t.dropped++
	} else {
		t.n++
	}
	t.ring[t.head] = rec
	t.head = (t.head + 1) % len(t.ring)
	t.mu.Unlock()
}

// Dropped reports how many completed spans the ring has evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	start := (t.head - t.n + len(t.ring)) % len(t.ring)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// traceDump is the /traces and -trace-out JSON schema.
type traceDump struct {
	Dropped int64        `json:"dropped"`
	Spans   []SpanRecord `json:"spans"`
}

// WriteJSON dumps the ring as indented JSON (deterministic given a
// deterministic feed: Go's float64 JSON rendering is the shortest
// round-trippable form). A nil tracer writes an empty dump.
func (t *Tracer) WriteJSON(w io.Writer) error {
	dump := traceDump{Spans: t.Snapshot(), Dropped: t.Dropped()}
	if dump.Spans == nil {
		dump.Spans = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// Span is one in-progress operation. Methods are safe for use from the
// goroutine that owns the span; a span is not shared across goroutines
// (hedged attempts get child spans instead).
type Span struct {
	t   *Tracer
	mu  sync.Mutex
	rec SpanRecord
}

// Child opens a sub-span (same trace, fresh span ID, parent set to s).
func (s *Span) Child(name string, at float64) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	s.t.nextID++
	id := s.t.nextID
	s.t.mu.Unlock()
	s.mu.Lock()
	trace, parent := s.rec.Trace, s.rec.ID
	s.mu.Unlock()
	return &Span{t: s.t, rec: SpanRecord{Trace: trace, ID: id, Parent: parent, Name: name, Start: at}}
}

// Stage appends one named timestamp.
func (s *Span) Stage(name string, at float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.Stages = append(s.rec.Stages, Stage{Name: name, At: at})
	s.mu.Unlock()
}

// SetErr records the span's failure cause.
func (s *Span) SetErr(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.Err = msg
	s.mu.Unlock()
}

// End closes the span at time at and commits it to the tracer's ring.
// Ending a span twice commits it twice; callers own that discipline.
func (s *Span) End(at float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.End = at
	rec := s.rec
	// Copy the stage slice so the committed record is immutable even if
	// the caller (incorrectly) keeps staging.
	rec.Stages = append([]Stage(nil), s.rec.Stages...)
	s.mu.Unlock()
	s.t.commit(rec)
}
