package par

import (
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// The allocation contract of the dispatch layer: a hot kernel pays for its
// own closure and output vector, never for dispatch. These tests are the
// unit-level twin of the bench-report allocs/op budgets (≤2 on every hot
// kernel); they skip under -race because detector instrumentation changes
// allocation counts.

func requireAllocs(t *testing.T, name string, budget float64, fn func()) {
	t.Helper()
	if RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	if got := testing.AllocsPerRun(50, fn); got > budget {
		t.Errorf("%s: %.1f allocs/op, budget %.0f", name, got, budget)
	}
}

func TestKernelAllocBudgets(t *testing.T) {
	defer SetWorkers(0)
	rng := rngutil.New(1234)
	m := randomMatrix(256, 256, rng)
	x := randomVector(256, rng, 7)
	d := randomVector(256, rng, 5)
	y := make(tensor.Vector, 256)
	yT := make(tensor.Vector, 256)
	xs := make([]tensor.Vector, 8)
	ys := make([]tensor.Vector, 8)
	for s := range xs {
		xs[s] = randomVector(256, rng, 7)
		ys[s] = make(tensor.Vector, 256)
	}
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		// Into-variants carry only the dispatch closure (parallel) or
		// nothing (sequential fallback at 1 worker).
		requireAllocs(t, "MatVecInto", 1, func() { MatVecInto(m, x, y) })
		requireAllocs(t, "MatVecTInto", 1, func() {
			for i := range yT {
				yT[i] = 0
			}
			MatVecTInto(m, d, yT)
		})
		requireAllocs(t, "MatVecBatchInto", 1, func() { MatVecBatchInto(m, xs, ys) })
		// Allocating wrappers add exactly the output vector.
		requireAllocs(t, "MatVec", 2, func() { MatVec(m, x) })
		requireAllocs(t, "MatVecT", 2, func() { MatVecT(m, d) })
	}
}
