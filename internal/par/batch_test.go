package par

import (
	"math"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// TestMatVecBatchBitIdentical pins the batched kernel's guarantee: every
// per-sample output is bit-identical to the scalar reference and to the
// single-sample tiled kernel, at every worker count, for batch sizes that
// are and are not multiples of BatchSpan.
func TestMatVecBatchBitIdentical(t *testing.T) {
	defer SetWorkers(0)
	rng := rngutil.New(99)
	shapes := [][2]int{{1, 1}, {3, 5}, {64, 64}, {65, 63}, {128, 200}}
	for _, sh := range shapes {
		rows, cols := sh[0], sh[1]
		m := randomMatrix(rows, cols, rng)
		for _, ns := range []int{1, 2, 3, 4, 5, 8, 13} {
			xs := make([]tensor.Vector, ns)
			want := make([]tensor.Vector, ns)
			for s := range xs {
				xs[s] = randomVector(cols, rng, 7)
				want[s] = m.MatVec(xs[s])
			}
			for _, w := range []int{1, 2, 8} {
				SetWorkers(w)
				got := MatVecBatch(m, xs)
				for s := range want {
					for i := range want[s] {
						if math.Float64bits(got[s][i]) != math.Float64bits(want[s][i]) {
							t.Fatalf("%dx%d ns=%d workers=%d: sample %d out[%d] = %x, want %x",
								rows, cols, ns, w, s, i,
								math.Float64bits(got[s][i]), math.Float64bits(want[s][i]))
						}
					}
				}
			}
		}
	}
}

// TestBatchBoundsPartition pins the sample-block decomposition the same way
// TestBoundsPartition pins the tile grid.
func TestBatchBoundsPartition(t *testing.T) {
	for _, ns := range []int{0, 1, 3, 4, 5, 8, 9, 100} {
		blocks := BatchBlocks(ns)
		covered, prevHi := 0, 0
		for b := 0; b < blocks; b++ {
			lo, hi := BatchBounds(b, ns)
			if lo != prevHi || hi <= lo || hi > ns {
				t.Fatalf("ns=%d block %d has bounds [%d,%d), prev end %d", ns, b, lo, hi, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != ns {
			t.Fatalf("ns=%d blocks cover %d samples", ns, covered)
		}
	}
}

func TestMatVecBatchShapePanics(t *testing.T) {
	m := tensor.NewMatrix(4, 3)
	for name, fn := range map[string]func(){
		"input-short": func() { MatVecBatch(m, []tensor.Vector{make(tensor.Vector, 2)}) },
		"output-count": func() {
			MatVecBatchInto(m, []tensor.Vector{make(tensor.Vector, 3)}, nil)
		},
		"output-short": func() {
			MatVecBatchInto(m, []tensor.Vector{make(tensor.Vector, 3)}, []tensor.Vector{make(tensor.Vector, 2)})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestPoolReusesJobs hammers Run/RunChunks from concurrent goroutines to
// exercise job recycling and worker spawning under contention (most useful
// under -race, where stale-job bugs in the pool would surface as races on
// recycled descriptors).
func TestPoolReusesJobs(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var sink [257]float64
			for it := 0; it < 200; it++ {
				Run(9, func(ti int) { sink[ti] += 1 })
				RunChunks(257, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						sink[i] += 1
					}
				})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
