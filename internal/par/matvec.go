package par

import (
	"fmt"

	"repro/internal/tensor"
)

// The MVM kernels below are the tile engine's compute core. Each output
// element is accumulated in strictly ascending index order with a single
// accumulator, exactly like the scalar reference loops in package tensor —
// so the tiled kernels are bit-identical to tensor.Matrix.MatVec/MatVecT
// at every worker count. The speed comes from processing four rows per
// pass (one load of x feeds four dot products, quartering the traffic on
// the input vector and giving the CPU four independent dependency chains),
// and from tiles executing in parallel across workers.

// forwardTile computes y[i] = Σ_j w[i,j]·x[j] for rows lo ≤ i < hi.
func forwardTile(w []float64, cols int, x, y tensor.Vector, lo, hi int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := w[i*cols : (i+1)*cols : (i+1)*cols]
		r1 := w[(i+1)*cols : (i+2)*cols : (i+2)*cols]
		r2 := w[(i+2)*cols : (i+3)*cols : (i+3)*cols]
		r3 := w[(i+3)*cols : (i+4)*cols : (i+4)*cols]
		var s0, s1, s2, s3 float64
		for j, xj := range x {
			s0 += r0[j] * xj
			s1 += r1[j] * xj
			s2 += r2[j] * xj
			s3 += r3[j] * xj
		}
		y[i], y[i+1], y[i+2], y[i+3] = s0, s1, s2, s3
	}
	for ; i < hi; i++ {
		row := w[i*cols : (i+1)*cols : (i+1)*cols]
		var s float64
		for j, xj := range x {
			s += row[j] * xj
		}
		y[i] = s
	}
}

// backwardTile accumulates y[j] += Σ_i w[i,j]·x[i] for columns lo ≤ j < hi,
// visiting i in ascending order per output element and skipping x[i] == 0
// exactly like the scalar reference (the skip is observable: 0·w can raise
// -0.0 or NaN artifacts the reference never produces).
func backwardTile(w []float64, rows, cols int, x, y tensor.Vector, lo, hi int) {
	i := 0
	for ; i+4 <= rows; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		if x0 != 0 && x1 != 0 && x2 != 0 && x3 != 0 {
			// Branch-free block: one load of y[j] covers four rows. The
			// adds stay sequential per output (t += r0·x0, then r1·x1, …),
			// the exact i-ascending order of the scalar reference.
			r0 := w[i*cols : (i+1)*cols : (i+1)*cols]
			r1 := w[(i+1)*cols : (i+2)*cols : (i+2)*cols]
			r2 := w[(i+2)*cols : (i+3)*cols : (i+3)*cols]
			r3 := w[(i+3)*cols : (i+4)*cols : (i+4)*cols]
			for j := lo; j < hi; j++ {
				t := y[j]
				t += r0[j] * x0
				t += r1[j] * x1
				t += r2[j] * x2
				t += r3[j] * x3
				y[j] = t
			}
			continue
		}
		// A lane is zero: stream the four rows one at a time with the
		// reference's per-row skip.
		for k := i; k < i+4; k++ {
			xk := x[k]
			if xk == 0 {
				continue
			}
			row := w[k*cols : (k+1)*cols : (k+1)*cols]
			for j := lo; j < hi; j++ {
				y[j] += row[j] * xk
			}
		}
	}
	for ; i < rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := w[i*cols : (i+1)*cols : (i+1)*cols]
		for j := lo; j < hi; j++ {
			y[j] += row[j] * xi
		}
	}
}

// ForwardTile computes y[i] = Σ_j m[i,j]·x[j] for rows lo ≤ i < hi — the
// tile-level kernel entry for callers scheduling their own tile grids
// (e.g. a batched forward running a sample × row-tile grid).
func ForwardTile(m *tensor.Matrix, x, y tensor.Vector, lo, hi int) {
	forwardTile(m.Data, m.Cols, x, y, lo, hi)
}

// MatVecInto computes y = m·x into y, sharded into TileSpan-row tiles
// across the worker pool. It is bit-identical to tensor.Matrix.MatVec at
// every worker count.
func MatVecInto(m *tensor.Matrix, x, y tensor.Vector) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("par: MatVec length mismatch: %d cols vs %d", m.Cols, len(x)))
	}
	if len(y) != m.Rows {
		panic(fmt.Sprintf("par: MatVec output length %d, want %d", len(y), m.Rows))
	}
	Run(Tiles(m.Rows), func(t int) {
		lo, hi := Bounds(t, m.Rows)
		forwardTile(m.Data, m.Cols, x, y, lo, hi)
	})
}

// MatVec computes y = m·x, tile-parallel. See MatVecInto.
func MatVec(m *tensor.Matrix, x tensor.Vector) tensor.Vector {
	y := make(tensor.Vector, m.Rows)
	MatVecInto(m, x, y)
	return y
}

// MatVecTInto computes y = mᵀ·x into y (which must be zeroed by the
// caller), sharded into one contiguous column chunk per worker. Each chunk
// owns a disjoint range of output columns and walks all rows, so no
// reduction across workers is needed, and each output element accumulates
// in the reference's i-ascending order regardless of where the chunk
// boundaries fall — bit-identical to tensor.Matrix.MatVecT at every worker
// count. Worker-wide chunks (RunChunks, not the fixed tile grid) keep each
// worker streaming wide strips of the row-major matrix.
func MatVecTInto(m *tensor.Matrix, x, y tensor.Vector) {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("par: MatVecT length mismatch: %d rows vs %d", m.Rows, len(x)))
	}
	if len(y) != m.Cols {
		panic(fmt.Sprintf("par: MatVecT output length %d, want %d", len(y), m.Cols))
	}
	RunChunks(m.Cols, func(lo, hi int) {
		backwardTile(m.Data, m.Rows, m.Cols, x, y, lo, hi)
	})
}

// MatVecT computes y = mᵀ·x, tile-parallel. See MatVecTInto.
func MatVecT(m *tensor.Matrix, x tensor.Vector) tensor.Vector {
	y := make(tensor.Vector, m.Cols)
	MatVecTInto(m, x, y)
	return y
}
