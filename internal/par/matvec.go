package par

import (
	"fmt"

	"repro/internal/tensor"
)

// The MVM kernels below are the tile engine's compute core. Each output
// element is accumulated in strictly ascending index order with a single
// accumulator, exactly like the scalar reference loops in package tensor —
// so the tiled kernels are bit-identical to tensor.Matrix.MatVec/MatVecT
// at every worker count. The speed comes from processing several rows per
// pass (one load of x feeds that many dot products, cutting the traffic on
// the input vector and giving the CPU as many independent dependency
// chains), and from tiles executing in parallel across workers.

// forwardTile computes y[i] = Σ_j w[i,j]·x[j] for rows lo ≤ i < hi. Six
// rows per pass is the measured sweet spot for the scalar-code generator:
// six accumulator chains hide the FP add latency without spilling the row
// base pointers to the stack (eight rows does spill, and loses the gain).
func forwardTile(w []float64, cols int, x, y tensor.Vector, lo, hi int) {
	i := lo
	for ; i+6 <= hi; i += 6 {
		r0 := w[i*cols : (i+1)*cols : (i+1)*cols]
		r1 := w[(i+1)*cols : (i+2)*cols : (i+2)*cols]
		r2 := w[(i+2)*cols : (i+3)*cols : (i+3)*cols]
		r3 := w[(i+3)*cols : (i+4)*cols : (i+4)*cols]
		r4 := w[(i+4)*cols : (i+5)*cols : (i+5)*cols]
		r5 := w[(i+5)*cols : (i+6)*cols : (i+6)*cols]
		var s0, s1, s2, s3, s4, s5 float64
		for j, xj := range x {
			s0 += r0[j] * xj
			s1 += r1[j] * xj
			s2 += r2[j] * xj
			s3 += r3[j] * xj
			s4 += r4[j] * xj
			s5 += r5[j] * xj
		}
		y[i], y[i+1], y[i+2] = s0, s1, s2
		y[i+3], y[i+4], y[i+5] = s3, s4, s5
	}
	for ; i+4 <= hi; i += 4 {
		r0 := w[i*cols : (i+1)*cols : (i+1)*cols]
		r1 := w[(i+1)*cols : (i+2)*cols : (i+2)*cols]
		r2 := w[(i+2)*cols : (i+3)*cols : (i+3)*cols]
		r3 := w[(i+3)*cols : (i+4)*cols : (i+4)*cols]
		var s0, s1, s2, s3 float64
		for j, xj := range x {
			s0 += r0[j] * xj
			s1 += r1[j] * xj
			s2 += r2[j] * xj
			s3 += r3[j] * xj
		}
		y[i], y[i+1], y[i+2], y[i+3] = s0, s1, s2, s3
	}
	for ; i < hi; i++ {
		row := w[i*cols : (i+1)*cols : (i+1)*cols]
		var s float64
		for j, xj := range x {
			s += row[j] * xj
		}
		y[i] = s
	}
}

// backwardTile accumulates y[j] += Σ_i w[i,j]·x[i] for columns lo ≤ j < hi,
// visiting i in ascending order per output element and skipping x[i] == 0
// exactly like the scalar reference (the skip is observable: 0·w can raise
// -0.0 or NaN artifacts the reference never produces).
func backwardTile(w []float64, rows, cols int, x, y tensor.Vector, lo, hi int) {
	i := 0
	for ; i+4 <= rows; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		if x0 != 0 && x1 != 0 && x2 != 0 && x3 != 0 {
			// Branch-free block: one load of y[j] covers four rows. The
			// adds stay sequential per output (t += r0·x0, then r1·x1, …),
			// the exact i-ascending order of the scalar reference.
			r0 := w[i*cols : (i+1)*cols : (i+1)*cols]
			r1 := w[(i+1)*cols : (i+2)*cols : (i+2)*cols]
			r2 := w[(i+2)*cols : (i+3)*cols : (i+3)*cols]
			r3 := w[(i+3)*cols : (i+4)*cols : (i+4)*cols]
			for j := lo; j < hi; j++ {
				t := y[j]
				t += r0[j] * x0
				t += r1[j] * x1
				t += r2[j] * x2
				t += r3[j] * x3
				y[j] = t
			}
			continue
		}
		// A lane is zero: stream the four rows one at a time with the
		// reference's per-row skip.
		for k := i; k < i+4; k++ {
			xk := x[k]
			if xk == 0 {
				continue
			}
			row := w[k*cols : (k+1)*cols : (k+1)*cols]
			for j := lo; j < hi; j++ {
				y[j] += row[j] * xk
			}
		}
	}
	for ; i < rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := w[i*cols : (i+1)*cols : (i+1)*cols]
		for j := lo; j < hi; j++ {
			y[j] += row[j] * xi
		}
	}
}

// ForwardTile computes y[i] = Σ_j m[i,j]·x[j] for rows lo ≤ i < hi — the
// tile-level kernel entry for callers scheduling their own tile grids
// (e.g. a batched forward running a sample × row-tile grid).
func ForwardTile(m *tensor.Matrix, x, y tensor.Vector, lo, hi int) {
	forwardTile(m.Data, m.Cols, x, y, lo, hi)
}

// forwardTileBatch computes ys[s][i] = Σ_j w[i,j]·xs[s][j] for rows
// lo ≤ i < hi across all samples of the block. Sample-blocking is the
// GEMM-style amortization: each weight row is streamed once per sample
// block instead of once per sample, dividing the matrix traffic that
// dominates wide batched MVMs. Every output element still accumulates in
// strictly ascending j with a single accumulator, so per-sample results are
// bit-identical to forwardTile and to the scalar reference.
func forwardTileBatch(w []float64, cols int, xs, ys []tensor.Vector, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := w[i*cols : (i+1)*cols : (i+1)*cols]
		s := 0
		// Six accumulator chains per weight pass — the same in-flight depth
		// (and register budget: six stream pointers, one shared pointer, six
		// accumulators) that forwardTile's six row chains use to cover FMA
		// latency. Four chains leave the kernel latency-bound; eight spill
		// registers and lose more than the extra chains buy.
		for ; s+6 <= len(xs); s += 6 {
			x0 := xs[s][:cols:cols]
			x1 := xs[s+1][:cols:cols]
			x2 := xs[s+2][:cols:cols]
			x3 := xs[s+3][:cols:cols]
			x4 := xs[s+4][:cols:cols]
			x5 := xs[s+5][:cols:cols]
			var a0, a1, a2, a3, a4, a5 float64
			for j, wj := range row {
				a0 += wj * x0[j]
				a1 += wj * x1[j]
				a2 += wj * x2[j]
				a3 += wj * x3[j]
				a4 += wj * x4[j]
				a5 += wj * x5[j]
			}
			ys[s][i], ys[s+1][i], ys[s+2][i] = a0, a1, a2
			ys[s+3][i], ys[s+4][i], ys[s+5][i] = a3, a4, a5
		}
		for ; s+4 <= len(xs); s += 4 {
			x0 := xs[s][:cols:cols]
			x1 := xs[s+1][:cols:cols]
			x2 := xs[s+2][:cols:cols]
			x3 := xs[s+3][:cols:cols]
			var a0, a1, a2, a3 float64
			for j, wj := range row {
				a0 += wj * x0[j]
				a1 += wj * x1[j]
				a2 += wj * x2[j]
				a3 += wj * x3[j]
			}
			ys[s][i], ys[s+1][i], ys[s+2][i], ys[s+3][i] = a0, a1, a2, a3
		}
		for ; s+2 <= len(xs); s += 2 {
			x0 := xs[s][:cols:cols]
			x1 := xs[s+1][:cols:cols]
			var a0, a1 float64
			for j, wj := range row {
				a0 += wj * x0[j]
				a1 += wj * x1[j]
			}
			ys[s][i], ys[s+1][i] = a0, a1
		}
		for ; s < len(xs); s++ {
			x0 := xs[s][:cols:cols]
			var a0 float64
			for j, wj := range row {
				a0 += wj * x0[j]
			}
			ys[s][i] = a0
		}
	}
}

// ForwardTileBatch is the exported entry of the sample-blocked kernel for
// callers scheduling their own (row-tile × sample-block) grids — the
// crossbar batched read uses it under its periphery handling.
func ForwardTileBatch(m *tensor.Matrix, xs, ys []tensor.Vector, lo, hi int) {
	forwardTileBatch(m.Data, m.Cols, xs, ys, lo, hi)
}

// BatchBlocks reports how many sample blocks of the active plan's
// BatchSpan cover ns samples.
func BatchBlocks(ns int) int {
	if ns <= 0 {
		return 0
	}
	span := batchSpan()
	return (ns + span - 1) / span
}

// BatchBounds reports the half-open sample range [lo, hi) of block b over
// ns samples.
func BatchBounds(b, ns int) (lo, hi int) {
	span := batchSpan()
	lo = b * span
	hi = lo + span
	if hi > ns {
		hi = ns
	}
	return lo, hi
}

// MatVecBatchInto computes ys[s] = m·xs[s] for every sample, sharded into a
// (row-tile × sample-block) grid across the worker pool — true row×sample
// blocking rather than per-sample fan-out, so dispatch and weight-row
// traffic amortize over the batch. Each grid cell owns a disjoint
// (row-range × sample-range) region of the outputs, and per-sample results
// are bit-identical to MatVecInto at every worker count. Outputs must be
// preallocated by the caller (length m.Rows each); the kernel allocates
// nothing beyond its own closure.
func MatVecBatchInto(m *tensor.Matrix, xs, ys []tensor.Vector) {
	if len(ys) != len(xs) {
		panic(fmt.Sprintf("par: MatVecBatch output count %d, want %d", len(ys), len(xs)))
	}
	for s, x := range xs {
		if len(x) != m.Cols {
			panic(fmt.Sprintf("par: MatVecBatch length mismatch: %d cols vs %d (sample %d)", m.Cols, len(x), s))
		}
		if len(ys[s]) != m.Rows {
			panic(fmt.Sprintf("par: MatVecBatch output length %d, want %d (sample %d)", len(ys[s]), m.Rows, s))
		}
	}
	rowTiles := Tiles(m.Rows)
	blocks := BatchBlocks(len(xs))
	Run(rowTiles*blocks, func(g int) {
		b, t := g/rowTiles, g%rowTiles
		lo, hi := Bounds(t, m.Rows)
		s0, s1 := BatchBounds(b, len(xs))
		forwardTileBatch(m.Data, m.Cols, xs[s0:s1], ys[s0:s1], lo, hi)
	})
}

// MatVecBatch computes ys[s] = m·xs[s], tile- and sample-blocked. See
// MatVecBatchInto.
func MatVecBatch(m *tensor.Matrix, xs []tensor.Vector) []tensor.Vector {
	ys := make([]tensor.Vector, len(xs))
	for s := range ys {
		ys[s] = make(tensor.Vector, m.Rows)
	}
	MatVecBatchInto(m, xs, ys)
	return ys
}

// MatVecInto computes y = m·x into y, sharded into TileSpan-row tiles
// across the worker pool. It is bit-identical to tensor.Matrix.MatVec at
// every worker count.
func MatVecInto(m *tensor.Matrix, x, y tensor.Vector) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("par: MatVec length mismatch: %d cols vs %d", m.Cols, len(x)))
	}
	if len(y) != m.Rows {
		panic(fmt.Sprintf("par: MatVec output length %d, want %d", len(y), m.Rows))
	}
	Run(Tiles(m.Rows), func(t int) {
		lo, hi := Bounds(t, m.Rows)
		forwardTile(m.Data, m.Cols, x, y, lo, hi)
	})
}

// MatVec computes y = m·x, tile-parallel. See MatVecInto.
func MatVec(m *tensor.Matrix, x tensor.Vector) tensor.Vector {
	y := make(tensor.Vector, m.Rows)
	MatVecInto(m, x, y)
	return y
}

// MatVecTInto computes y = mᵀ·x into y (which must be zeroed by the
// caller), sharded into one contiguous column chunk per worker. Each chunk
// owns a disjoint range of output columns and walks all rows, so no
// reduction across workers is needed, and each output element accumulates
// in the reference's i-ascending order regardless of where the chunk
// boundaries fall — bit-identical to tensor.Matrix.MatVecT at every worker
// count. Worker-wide chunks (RunChunks, not the fixed tile grid) keep each
// worker streaming wide strips of the row-major matrix.
func MatVecTInto(m *tensor.Matrix, x, y tensor.Vector) {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("par: MatVecT length mismatch: %d rows vs %d", m.Rows, len(x)))
	}
	if len(y) != m.Cols {
		panic(fmt.Sprintf("par: MatVecT output length %d, want %d", len(y), m.Cols))
	}
	RunChunks(m.Cols, func(lo, hi int) {
		backwardTile(m.Data, m.Rows, m.Cols, x, y, lo, hi)
	})
}

// MatVecT computes y = mᵀ·x, tile-parallel. See MatVecTInto.
func MatVecT(m *tensor.Matrix, x tensor.Vector) tensor.Vector {
	y := make(tensor.Vector, m.Cols)
	MatVecTInto(m, x, y)
	return y
}
