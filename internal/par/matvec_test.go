package par

import (
	"math"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// randomMatrix fills a rows×cols matrix with unit normals, zeroing a few
// entries so the MatVecT skip path is exercised.
func randomMatrix(rows, cols int, rng *rngutil.Source) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randomVector(n int, rng *rngutil.Source, zeroEvery int) tensor.Vector {
	v := make(tensor.Vector, n)
	for i := range v {
		if zeroEvery > 0 && i%zeroEvery == 0 {
			continue // leave exact zeros to exercise the skip path
		}
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestMatVecBitIdentical pins the package's core guarantee: the tiled
// kernels produce bit-identical results to the scalar reference loops in
// package tensor, at every worker count, for shapes that are and are not
// multiples of the 4-row block and the tile span.
func TestMatVecBitIdentical(t *testing.T) {
	defer SetWorkers(0)
	rng := rngutil.New(42)
	shapes := [][2]int{{1, 1}, {3, 5}, {4, 4}, {7, 129}, {64, 64}, {65, 63}, {128, 200}, {257, 511}}
	for _, sh := range shapes {
		rows, cols := sh[0], sh[1]
		m := randomMatrix(rows, cols, rng)
		x := randomVector(cols, rng, 7)
		d := randomVector(rows, rng, 5)
		wantF := m.MatVec(x)
		wantB := m.MatVecT(d)
		for _, w := range []int{1, 2, 8} {
			SetWorkers(w)
			gotF := MatVec(m, x)
			gotB := MatVecT(m, d)
			for i := range wantF {
				if math.Float64bits(gotF[i]) != math.Float64bits(wantF[i]) {
					t.Fatalf("%dx%d workers=%d: forward[%d] = %x, want %x",
						rows, cols, w, i, math.Float64bits(gotF[i]), math.Float64bits(wantF[i]))
				}
			}
			for j := range wantB {
				if math.Float64bits(gotB[j]) != math.Float64bits(wantB[j]) {
					t.Fatalf("%dx%d workers=%d: backward[%d] = %x, want %x",
						rows, cols, w, j, math.Float64bits(gotB[j]), math.Float64bits(wantB[j]))
				}
			}
		}
	}
}

// TestMatVecTAccumulates verifies MatVecTInto adds into a caller-zeroed
// vector (the documented contract).
func TestMatVecTAccumulates(t *testing.T) {
	rng := rngutil.New(7)
	m := randomMatrix(10, 6, rng)
	x := randomVector(10, rng, 0)
	y := make(tensor.Vector, 6)
	MatVecTInto(m, x, y)
	want := m.MatVecT(x)
	for j := range want {
		if math.Float64bits(y[j]) != math.Float64bits(want[j]) {
			t.Fatalf("accumulate mismatch at %d", j)
		}
	}
}

func TestMatVecShapePanics(t *testing.T) {
	m := tensor.NewMatrix(4, 3)
	for name, fn := range map[string]func(){
		"forward-short": func() { MatVec(m, make(tensor.Vector, 2)) },
		"backward-long": func() { MatVecT(m, make(tensor.Vector, 5)) },
		"into-short":    func() { MatVecInto(m, make(tensor.Vector, 3), make(tensor.Vector, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
