package par

import (
	"sync/atomic"

	"repro/internal/obs"
)

// parObs is the engine's instrument set. Everything here is Volatile: how
// many Run batches execute, and how wide RunChunks splits are, depend on the
// worker count and on call-time GOMAXPROCS — exactly the scheduling facts
// the determinism contract promises are unobservable in results. They belong
// on the live /metrics endpoint, never in the stable dump.
type parObs struct {
	runs    *obs.Counter
	tiles   *obs.Counter
	chunks  *obs.Counter
	seqRuns *obs.Counter
	workers *obs.Gauge
	batch   *obs.Histogram
}

var instruments atomic.Pointer[parObs]

// Instrument attaches the tile engine to a registry (nil detaches). The hot
// path pays one atomic pointer load when detached; counter updates happen
// once per Run batch, never per tile.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		instruments.Store(nil)
		return
	}
	instruments.Store(&parObs{
		runs:    reg.Counter("par_runs_total", "parallel tile batches executed").Volatile(),
		tiles:   reg.Counter("par_tiles_total", "tiles executed across all batches").Volatile(),
		chunks:  reg.Counter("par_chunks_total", "contiguous chunks executed by RunChunks").Volatile(),
		seqRuns: reg.Counter("par_seq_runs_total", "batches executed sequentially (order-sensitive or single-worker)").Volatile(),
		workers: reg.Gauge("par_workers", "effective worker count at the last batch").Volatile(),
		batch:   reg.Histogram("par_batch_tiles", "tiles per batch (queue depth handed to the worker pool)", 1024).Volatile(),
	})
}

// note records one batch. seq marks batches that ran on the calling
// goroutine only.
func note(tiles, workers int, seq bool) {
	io := instruments.Load()
	if io == nil {
		return
	}
	io.runs.Inc()
	io.tiles.Add(int64(tiles))
	io.workers.Set(float64(workers))
	io.batch.Observe(float64(tiles))
	if seq {
		io.seqRuns.Inc()
	}
}

// noteChunks records one RunChunks split.
func noteChunks(chunks int) {
	io := instruments.Load()
	if io == nil {
		return
	}
	io.chunks.Add(int64(chunks))
}
