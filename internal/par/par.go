// Package par is the deterministic parallel tile execution engine.
//
// The paper's core performance claim (§II-A) is that crossbar MVMs and
// rank-1 updates are O(1) in array time because every tile operates in
// parallel. This package mirrors that decomposition in software: array
// operations are sharded into fixed row/column tiles that execute across a
// configurable number of workers.
//
// Determinism contract: results are bit-identical at every worker count.
// Two properties guarantee it:
//
//  1. The tile decomposition is fixed — Tiles/Bounds depend only on the
//     problem size (TileSpan), never on the worker count or on which worker
//     picks up which tile.
//  2. Every tile writes only tile-disjoint state, and any randomness a tile
//     consumes comes from a stream keyed by the tile index (see
//     rngutil.Source.Sub), never from a stream shared across tiles.
//
// Under those two rules the execution schedule cannot be observed, so a
// campaign table produced at -workers 1 is byte-identical to the same
// campaign at -workers 8 — the invariant the CI determinism leg enforces.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// TileSpan is the fixed tile extent: forward MVMs shard into TileSpan-row
// tiles, backward MVMs into TileSpan-column tiles, and updates into
// TileSpan-row tiles. It is a constant, not a tunable, because the tile
// grid must be identical on every machine for results to be portable.
const TileSpan = 64

// workers holds the configured worker count; 0 means "use GOMAXPROCS at
// call time" (the default).
var workers atomic.Int32

// SetWorkers configures the number of workers used by Run. n <= 0 restores
// the default (GOMAXPROCS). Changing the worker count never changes
// results, only how many goroutines compute them.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int32(n))
}

// Workers reports the effective worker count Run will use.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Tiles reports how many TileSpan-sized tiles cover [0, n).
func Tiles(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + TileSpan - 1) / TileSpan
}

// Bounds reports the half-open index range [lo, hi) of tile t over [0, n).
func Bounds(t, n int) (lo, hi int) {
	lo = t * TileSpan
	hi = lo + TileSpan
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Run executes fn(t) once for every tile index t in [0, tiles), across up
// to Workers() goroutines (the caller participates). Tiles are handed out
// by an atomic counter, so the assignment of tiles to workers — and the
// completion order — is unspecified; fn must follow the package
// determinism contract (tile-disjoint writes, tile-keyed randomness) so
// that the schedule is unobservable. Run returns when every tile has
// completed.
func Run(tiles int, fn func(t int)) {
	p := Workers()
	if p > tiles {
		p = tiles
	}
	if p <= 1 {
		RunSeq(tiles, fn)
		return
	}
	note(tiles, p, false)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p - 1)
	for w := 0; w < p-1; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tiles {
					return
				}
				fn(t)
			}
		}()
	}
	for {
		t := int(next.Add(1)) - 1
		if t >= tiles {
			break
		}
		fn(t)
	}
	wg.Wait()
}

// RunChunks splits [0, n) into one contiguous chunk per worker (at most
// Workers() chunks, each at least TileSpan wide when n allows) and executes
// fn(lo, hi) for each. Unlike Tiles/Bounds, the chunk boundaries DO depend
// on the worker count — so RunChunks is only for kernels whose per-element
// results are independent of the split (element-disjoint outputs, each
// accumulated in a fixed order; no randomness). MVM kernels qualify; pulse
// updates do not (their per-tile RNG streams need the fixed tile grid).
// Fewer, wider chunks keep each worker streaming long contiguous runs of
// the matrix instead of hopping between narrow strips.
func RunChunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if max := (n + TileSpan - 1) / TileSpan; p > max {
		p = max
	}
	if p <= 1 {
		noteChunks(1)
		fn(0, n)
		return
	}
	noteChunks(p)
	Run(p, func(c int) {
		fn(c*n/p, (c+1)*n/p)
	})
}

// RunSeq executes fn(t) for t = 0..tiles-1 in ascending order on the
// calling goroutine. It is the execution mode for operations whose
// side-channel ordering must stay fixed (fault-hook callbacks observe the
// op stream in tile order), and — by the determinism contract — produces
// exactly the same results Run would.
func RunSeq(tiles int, fn func(t int)) {
	note(tiles, 1, true)
	for t := 0; t < tiles; t++ {
		fn(t)
	}
}
