// Package par is the deterministic parallel tile execution engine.
//
// The paper's core performance claim (§II-A) is that crossbar MVMs and
// rank-1 updates are O(1) in array time because every tile operates in
// parallel. This package mirrors that decomposition in software: array
// operations are sharded into fixed row/column tiles that execute across a
// configurable number of workers.
//
// Determinism contract: results are bit-identical at every worker count.
// Two properties guarantee it:
//
//  1. The tile decomposition is fixed — Tiles/Bounds depend only on the
//     problem size and the active Plan (the configured tile/batch spans),
//     never on the worker count or on which worker picks up which tile.
//  2. Every tile writes only tile-disjoint state, and any randomness a tile
//     consumes comes from a stream keyed by the tile index (see
//     rngutil.Source.Sub), never from a stream shared across tiles.
//
// Under those two rules the execution schedule cannot be observed, so a
// campaign table produced at -workers 1 is byte-identical to the same
// campaign at -workers 8 — the invariant the CI determinism leg enforces.
//
// Allocation contract: dispatch is allocation-free in steady state. Workers
// are persistent goroutines handed jobs directly off an idle stack, and the
// per-call job descriptors are recycled through a sync.Pool, so a hot
// kernel pays for its own closure and nothing else — the property the
// bench-report alloc budgets (≤2 allocs/op on every hot kernel) pin in CI.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultTileSpan is the default tile extent: forward MVMs shard into
// TileSpan-row tiles, backward MVMs into TileSpan-column tiles, and updates
// into TileSpan-row tiles.
const DefaultTileSpan = 64

// DefaultBatchSpan is the default sample-block extent of the batched
// forward kernel: the multi-sample grid shards into BatchSpan-sample
// blocks, so one load of a weight row feeds BatchSpan dot products.
const DefaultBatchSpan = 4

// Plan is the blocking geometry the kernels execute under: the tile extent
// the row/column grids shard into and the sample-block extent of the
// batched kernels. The geometry is part of the *configuration*, not of the
// schedule: for a fixed plan, results are bit-identical at every worker
// count (the determinism contract), and the default plan reproduces the
// historical hard-coded TileSpan=64 / BatchSpan=4 grids byte for byte.
// Changing the plan changes which RNG substream a pulse update's tile
// draws from (streams are keyed by tile index), so a plan is chosen once
// per process — before arrays are built — not swapped mid-campaign.
type Plan struct {
	TileSpan  int // rows (or columns) per tile; <=0 means DefaultTileSpan
	BatchSpan int // samples per block; <=0 means DefaultBatchSpan
}

// DefaultPlan is the geometry every campaign and committed golden was
// produced under.
func DefaultPlan() Plan {
	return Plan{TileSpan: DefaultTileSpan, BatchSpan: DefaultBatchSpan}
}

// normalize fills unset (or nonsensical) fields with the defaults.
func (p Plan) normalize() Plan {
	if p.TileSpan <= 0 {
		p.TileSpan = DefaultTileSpan
	}
	if p.BatchSpan <= 0 {
		p.BatchSpan = DefaultBatchSpan
	}
	return p
}

// plan packs the active geometry into one word (TileSpan in the high 32
// bits, BatchSpan in the low 32) so a kernel reads a consistent pair with
// a single atomic load.
var plan = func() *atomic.Uint64 {
	var v atomic.Uint64
	v.Store(packPlan(DefaultPlan()))
	return &v
}()

func packPlan(p Plan) uint64 {
	return uint64(uint32(p.TileSpan))<<32 | uint64(uint32(p.BatchSpan))
}

// SetPlan installs p (normalized) as the active blocking geometry. Call it
// before constructing crossbar arrays or launching campaigns: per-tile
// arena buffers and RNG substreams are laid out against the active grid.
func SetPlan(p Plan) {
	plan.Store(packPlan(p.normalize()))
}

// ActivePlan reports the geometry the kernels are currently executing
// under.
func ActivePlan() Plan {
	v := plan.Load()
	return Plan{TileSpan: int(uint32(v >> 32)), BatchSpan: int(uint32(v))}
}

// tileSpan is the active tile extent (hot-path accessor).
func tileSpan() int {
	return int(uint32(plan.Load() >> 32))
}

// batchSpan is the active sample-block extent (hot-path accessor).
func batchSpan() int {
	return int(uint32(plan.Load()))
}

// workers holds the configured worker count; 0 means "use GOMAXPROCS at
// call time" (the default).
var workers atomic.Int32

// SetWorkers configures the number of workers used by Run. n <= 0 restores
// the default (GOMAXPROCS). Changing the worker count never changes
// results, only how many goroutines compute them.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int32(n))
}

// Workers reports the effective worker count Run will use.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Tiles reports how many tiles of the active plan's TileSpan cover [0, n).
func Tiles(n int) int {
	if n <= 0 {
		return 0
	}
	span := tileSpan()
	return (n + span - 1) / span
}

// Bounds reports the half-open index range [lo, hi) of tile t over [0, n).
func Bounds(t, n int) (lo, hi int) {
	span := tileSpan()
	lo = t * span
	hi = lo + span
	if hi > n {
		hi = n
	}
	return lo, hi
}

// job is one Run invocation in flight: the tile function, the atomic tile
// cursor, and the completion accounting. Jobs are recycled through jobPool;
// refs counts every goroutine that may still touch the job (the submitting
// caller plus one per worker hand-off), and the job returns to the pool
// only when the last reference drops, so a helper that finishes after the
// caller has already returned can never observe a job that was reset for
// its next use. Hand-offs are direct (one job to one specific worker),
// never broadcast, so a job's references are bounded by the worker pool
// size and jobs recycle promptly.
type job struct {
	fn    func(t int)      // tile body (tile-index form)
	chunk func(lo, hi int) // chunk body (RunChunks form); nil for tile jobs
	tiles int              // grid size (tile jobs) or chunk count
	n     int              // total element count for chunk jobs
	next  atomic.Int64     // tile hand-out cursor
	done  atomic.Int64     // tiles completed
	refs  atomic.Int64     // goroutines that may still hold the job
	wg    sync.WaitGroup   // released when every tile has completed
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// workerState is one persistent pool goroutine. Its park channel carries at
// most one pending job: a worker is handed a job only by popping it off the
// idle stack (or at spawn), and it re-registers as idle exactly once per
// job taken, so a send can never block and a handed job is always worked.
type workerState struct {
	park chan *job
}

// idleWorkers is the stack of workers currently available for hand-off.
// The slice is reused, so steady-state push/pop does not allocate; the
// mutex is taken once per hand-off attempt (per Run, not per tile).
var (
	idleMu      sync.Mutex
	idleWorkers []*workerState
	live        atomic.Int64 // worker goroutines in existence
)

// workerCap bounds the persistent pool at a small multiple of the CPU
// count: goroutines beyond that add no parallelism, only stacks. Workers()
// may exceed this freely; the submitting caller always participates and
// correctness never depends on how many helpers exist.
var workerCap = func() int64 {
	c := int64(2*runtime.NumCPU() + 2)
	if c > 256 {
		c = 256
	}
	return c
}()

// worker is the persistent loop each pool goroutine runs: join the job it
// was spawned with, then forever register as idle, park until handed the
// next job, join it, drop the reference. A channel hand-off only ever
// follows an idle-stack pop, so each park send finds the buffer empty.
func worker(ws *workerState, first *job) {
	first.work()
	first.unref()
	for {
		idleMu.Lock()
		idleWorkers = append(idleWorkers, ws)
		idleMu.Unlock()
		j := <-ws.park
		j.work()
		j.unref()
	}
}

// work drains tiles from the job until the cursor passes the grid. The
// atomic cursor hands each tile to exactly one goroutine; completion is
// counted separately so the submitter's wait releases only after the last
// tile body has returned, never merely after the last tile was handed out.
func (j *job) work() {
	tiles := j.tiles
	for {
		t := int(j.next.Add(1)) - 1
		if t >= tiles {
			return
		}
		if j.chunk != nil {
			j.chunk(t*j.n/tiles, (t+1)*j.n/tiles)
		} else {
			j.fn(t)
		}
		if j.done.Add(1) == int64(tiles) {
			j.wg.Done()
		}
	}
}

// unref drops one reference and recycles the job when the last holder lets
// go.
func (j *job) unref() {
	if j.refs.Add(-1) == 0 {
		j.fn = nil
		j.chunk = nil
		jobPool.Put(j)
	}
}

// dispatch runs a prepared job across the pool: hand the job to up to extra
// available workers (popping parked ones off the idle stack, spawning
// persistent ones while under workerCap, and simply keeping the tiles when
// neither is possible), join the job on the calling goroutine, then wait
// for the last tile to complete. A hand-off never blocks: the park channel
// is 1-buffered and the idle-token discipline guarantees at most one
// outstanding send per worker.
func dispatch(j *job, extra int) {
	j.next.Store(0)
	j.done.Store(0)
	j.wg.Add(1)
	j.refs.Store(1) // the caller's reference
	for w := 0; w < extra; w++ {
		idleMu.Lock()
		var ws *workerState
		if n := len(idleWorkers); n > 0 {
			ws = idleWorkers[n-1]
			idleWorkers[n-1] = nil
			idleWorkers = idleWorkers[:n-1]
		}
		idleMu.Unlock()
		if ws == nil {
			if live.Add(1) > workerCap {
				// Pool at capacity and everyone is busy: plenty of runnable
				// work already; keep the remaining tiles for the caller.
				live.Add(-1)
				break
			}
			j.refs.Add(1)
			go worker(&workerState{park: make(chan *job, 1)}, j)
			continue
		}
		j.refs.Add(1)
		ws.park <- j
	}
	j.work()
	j.wg.Wait()
	j.unref()
}

// Run executes fn(t) once for every tile index t in [0, tiles), across up
// to Workers() goroutines (the caller participates). Tiles are handed out
// by an atomic counter, so the assignment of tiles to workers — and the
// completion order — is unspecified; fn must follow the package
// determinism contract (tile-disjoint writes, tile-keyed randomness) so
// that the schedule is unobservable. Run returns when every tile has
// completed.
func Run(tiles int, fn func(t int)) {
	p := Workers()
	if p > tiles {
		p = tiles
	}
	if p <= 1 {
		RunSeq(tiles, fn)
		return
	}
	note(tiles, p, false)
	j := jobPool.Get().(*job)
	j.fn = fn
	j.chunk = nil
	j.tiles = tiles
	dispatch(j, p-1)
}

// RunChunks splits [0, n) into one contiguous chunk per worker (at most
// Workers() chunks, each at least a tile span wide when n allows) and executes
// fn(lo, hi) for each. Unlike Tiles/Bounds, the chunk boundaries DO depend
// on the worker count — so RunChunks is only for kernels whose per-element
// results are independent of the split (element-disjoint outputs, each
// accumulated in a fixed order; no randomness). MVM kernels qualify; pulse
// updates do not (their per-tile RNG streams need the fixed tile grid).
// Fewer, wider chunks keep each worker streaming long contiguous runs of
// the matrix instead of hopping between narrow strips.
func RunChunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if max := Tiles(n); p > max {
		p = max
	}
	if p <= 1 {
		noteChunks(1)
		fn(0, n)
		return
	}
	noteChunks(p)
	j := jobPool.Get().(*job)
	j.fn = nil
	j.chunk = fn
	j.tiles = p
	j.n = n
	dispatch(j, p-1)
}

// RunSeq executes fn(t) for t = 0..tiles-1 in ascending order on the
// calling goroutine. It is the execution mode for operations whose
// side-channel ordering must stay fixed (fault-hook callbacks observe the
// op stream in tile order), and — by the determinism contract — produces
// exactly the same results Run would.
func RunSeq(tiles int, fn func(t int)) {
	note(tiles, 1, true)
	for t := 0; t < tiles; t++ {
		fn(t)
	}
}
