package par

import (
	"sync/atomic"
	"testing"
)

func TestBoundsPartition(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200, 512, 1000} {
		tiles := Tiles(n)
		covered := 0
		prevHi := 0
		for ti := 0; ti < tiles; ti++ {
			lo, hi := Bounds(ti, n)
			if lo != prevHi {
				t.Fatalf("n=%d tile %d starts at %d, want %d", n, ti, lo, prevHi)
			}
			if hi <= lo || hi > n {
				t.Fatalf("n=%d tile %d has bounds [%d,%d)", n, ti, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n {
			t.Fatalf("n=%d tiles cover %d elements", n, covered)
		}
	}
}

func TestRunExecutesEveryTileOnce(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 3, 8} {
		SetWorkers(w)
		const tiles = 37
		var hits [tiles]atomic.Int32
		Run(tiles, func(ti int) { hits[ti].Add(1) })
		for ti := range hits {
			if got := hits[ti].Load(); got != 1 {
				t.Fatalf("workers=%d: tile %d executed %d times", w, ti, got)
			}
		}
	}
}

func TestRunZeroTiles(t *testing.T) {
	Run(0, func(int) { t.Fatal("fn called for zero tiles") })
	RunSeq(0, func(int) { t.Fatal("fn called for zero tiles") })
}

func TestSetWorkersResolution(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(5)
	if Workers() != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", Workers())
	}
	SetWorkers(-3)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-3), want default", Workers())
	}
}

// TestRunChunksCoversEveryElementOnce pins the chunked sharding: disjoint
// contiguous chunks, full coverage, at most Workers() chunks, and nothing
// executed for empty input.
func TestRunChunksCoversEveryElementOnce(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 3, 8} {
		SetWorkers(w)
		for _, n := range []int{1, 5, 63, 64, 65, 257, 1000} {
			var hits [1000]atomic.Int32
			var chunks atomic.Int32
			RunChunks(n, func(lo, hi int) {
				chunks.Add(1)
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", w, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: element %d covered %d times", w, n, i, got)
				}
			}
			if int(chunks.Load()) > w {
				t.Fatalf("workers=%d n=%d: %d chunks, want <= workers", w, n, chunks.Load())
			}
		}
		RunChunks(0, func(int, int) { t.Fatal("fn called for empty range") })
	}
}

func TestRunSeqOrdered(t *testing.T) {
	var order []int
	RunSeq(9, func(ti int) { order = append(order, ti) })
	for i, ti := range order {
		if i != ti {
			t.Fatalf("RunSeq order %v", order)
		}
	}
}
