package par

import (
	"math"
	"testing"

	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// TestPlanDefaults pins that the process boots under the historical
// geometry and that SetPlan normalizes unset fields back to it.
func TestPlanDefaults(t *testing.T) {
	if got := ActivePlan(); got != DefaultPlan() {
		t.Fatalf("boot plan = %+v, want %+v", got, DefaultPlan())
	}
	defer SetPlan(DefaultPlan())
	SetPlan(Plan{})
	if got := ActivePlan(); got != DefaultPlan() {
		t.Fatalf("SetPlan(zero) = %+v, want defaults %+v", got, DefaultPlan())
	}
	SetPlan(Plan{TileSpan: -3, BatchSpan: 7})
	if got := (Plan{TileSpan: DefaultTileSpan, BatchSpan: 7}); ActivePlan() != got {
		t.Fatalf("SetPlan(partial) = %+v, want %+v", ActivePlan(), got)
	}
}

// TestPlanGridPartition checks Tiles/Bounds and BatchBlocks/BatchBounds
// still tile their ranges exactly under non-default spans.
func TestPlanGridPartition(t *testing.T) {
	defer SetPlan(DefaultPlan())
	for _, span := range []int{1, 16, 48, 200} {
		SetPlan(Plan{TileSpan: span, BatchSpan: span})
		for _, n := range []int{0, 1, span - 1, span, span + 1, 3*span + 2} {
			if n < 0 {
				continue
			}
			covered, prevHi := 0, 0
			for ti := 0; ti < Tiles(n); ti++ {
				lo, hi := Bounds(ti, n)
				if lo != prevHi || hi <= lo || hi > n {
					t.Fatalf("span=%d n=%d tile %d bounds [%d,%d), prev end %d", span, n, ti, lo, hi, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("span=%d n=%d tiles cover %d", span, n, covered)
			}
		}
	}
}

// TestPlanInvariantMVM pins that the MVM kernels are plan-invariant: every
// output element accumulates in strictly ascending index order with a
// single accumulator no matter where the tile and sample-block boundaries
// fall, so moving the plan must not move a single bit of the result.
func TestPlanInvariantMVM(t *testing.T) {
	defer SetPlan(DefaultPlan())
	defer SetWorkers(0)
	rng := rngutil.New(1234)
	m := randomMatrix(130, 75, rng)
	// 16 samples: one span-32 block runs the full 6+6+4 accumulator-chain
	// decomposition of the batch kernel, while span 1/2/4 cover the narrow
	// chains — every unroll variant must agree bit for bit.
	xs := make([]tensor.Vector, 16)
	for s := range xs {
		xs[s] = randomVector(75, rng, 5)
	}
	xt := randomVector(130, rng, 5)

	SetPlan(DefaultPlan())
	wantF := MatVec(m, xs[0])
	wantB := MatVecBatch(m, xs)
	wantT := MatVecT(m, xt)

	for _, p := range []Plan{{TileSpan: 1, BatchSpan: 1}, {TileSpan: 16, BatchSpan: 2}, {TileSpan: 512, BatchSpan: 32}} {
		for _, w := range []int{1, 4} {
			SetPlan(p)
			SetWorkers(w)
			gotF := MatVec(m, xs[0])
			gotB := MatVecBatch(m, xs)
			gotT := MatVecT(m, xt)
			for i := range wantF {
				if math.Float64bits(gotF[i]) != math.Float64bits(wantF[i]) {
					t.Fatalf("plan %+v workers=%d: forward[%d] differs", p, w, i)
				}
			}
			for s := range wantB {
				for i := range wantB[s] {
					if math.Float64bits(gotB[s][i]) != math.Float64bits(wantB[s][i]) {
						t.Fatalf("plan %+v workers=%d: batch sample %d out[%d] differs", p, w, s, i)
					}
				}
			}
			for j := range wantT {
				if math.Float64bits(gotT[j]) != math.Float64bits(wantT[j]) {
					t.Fatalf("plan %+v workers=%d: backward[%d] differs", p, w, j)
				}
			}
		}
	}
}
