//go:build !race

package par

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-contract tests skip under -race: the detector instruments
// allocations and closures, so AllocsPerRun counts stop reflecting the
// production binary.
const RaceEnabled = false
