//go:build race

package par

// RaceEnabled reports whether the binary was built with the race detector.
const RaceEnabled = true
