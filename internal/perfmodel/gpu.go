package perfmodel

// GPU is a first-order model of a datacenter GPU backed by external DRAM,
// used as the baseline architecture in §III (X-MANN) and §IV (TCAM search).
// Values are representative of a V100-class part; what the reproduction
// relies on is the structure (bandwidth-bound streaming plus fixed kernel
// overhead), not the absolute constants.
type GPU struct {
	// PeakFLOPS is the effective fp32 throughput (FLOP/s).
	PeakFLOPS float64
	// MemBW is the effective device-memory bandwidth (bytes/s).
	MemBW float64
	// EnergyPerFLOP is the compute energy (J/FLOP), core + on-chip movement.
	EnergyPerFLOP float64
	// EnergyPerByte is the DRAM access energy (J/byte).
	EnergyPerByte float64
	// KernelLaunch is the fixed host-side overhead per kernel (s).
	KernelLaunch float64
	// IdlePower is the power draw attributed to the part while the kernel
	// runs (J/s), capturing static/leakage energy of small kernels.
	IdlePower float64
}

// DefaultGPU returns the baseline used across the benchmark tables.
func DefaultGPU() GPU {
	return GPU{
		PeakFLOPS:     10e12,  // 10 TFLOP/s effective fp32
		MemBW:         600e9,  // 600 GB/s effective HBM bandwidth
		EnergyPerFLOP: 10e-12, // 10 pJ/FLOP
		EnergyPerByte: 15e-12, // 15 pJ/byte DRAM access
		KernelLaunch:  5e-6,   // 5 µs per kernel
		IdlePower:     50,     // 50 W attributable static power
	}
}

// Kernel returns the cost of one GPU kernel that performs the given FLOPs
// over the given bytes of memory traffic (roofline-timed), including launch
// overhead and static energy.
func (g GPU) Kernel(flops, bytes float64) *Cost {
	c := NewCost()
	r := Roofline{PeakFLOPS: g.PeakFLOPS, MemBW: g.MemBW}
	t := r.Time(flops, bytes) + g.KernelLaunch
	c.Energy = flops*g.EnergyPerFLOP + bytes*g.EnergyPerByte + t*g.IdlePower
	c.Latency = t
	c.Ops["kernel"] = 1
	c.Ops["flops"] = int64(flops)
	c.Ops["bytes"] = int64(bytes)
	return c
}

// MatVec returns the cost of a dense rows×cols fp32 matrix-vector product
// whose matrix streams from DRAM (the memory-bound regime of soft reads and
// similarity scans over large MANN memories).
func (g GPU) MatVec(rows, cols int) *Cost {
	flops := 2 * float64(rows) * float64(cols)
	bytes := 4 * (float64(rows)*float64(cols) + float64(rows) + float64(cols))
	return g.Kernel(flops, bytes)
}
