// Package perfmodel provides the first-order performance and energy
// modeling primitives shared by the accelerator studies in §III (X-MANN),
// §IV (TCAM search) and §V (recommendation characterization): cost
// accumulators, a roofline model, and a parameterized GPU+DRAM baseline.
//
// Absolute constants are literature-typical (documented per field); the
// reproduction targets are the *ratios* between architectures, per
// DESIGN.md §4 substitution 3.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Cost accumulates energy (joules), latency (seconds) and named op counts
// for one operation or workload.
type Cost struct {
	Energy  float64
	Latency float64
	Ops     map[string]int64
}

// NewCost returns an empty accumulator.
func NewCost() *Cost { return &Cost{Ops: make(map[string]int64)} }

// Add accumulates n occurrences of a serial component op.
func (c *Cost) Add(name string, n int64, energyEach, latencyEach float64) {
	if c.Ops == nil {
		c.Ops = make(map[string]int64)
	}
	c.Ops[name] += n
	c.Energy += float64(n) * energyEach
	c.Latency += float64(n) * latencyEach
}

// AddParallel accumulates n occurrences that run concurrently: energy
// scales with n, latency with the single slowest occurrence.
func (c *Cost) AddParallel(name string, n int64, energyEach, latencyEach float64) {
	if c.Ops == nil {
		c.Ops = make(map[string]int64)
	}
	c.Ops[name] += n
	c.Energy += float64(n) * energyEach
	c.Latency += latencyEach
}

// Merge adds other's energy, latency and op counts into c (serial
// composition).
func (c *Cost) Merge(other *Cost) {
	c.Energy += other.Energy
	c.Latency += other.Latency
	for k, v := range other.Ops {
		if c.Ops == nil {
			c.Ops = make(map[string]int64)
		}
		c.Ops[k] += v
	}
}

// Scale multiplies energy, latency and op counts by f (e.g. to extrapolate
// one inference to a batch).
func (c *Cost) Scale(f float64) {
	c.Energy *= f
	c.Latency *= f
	for k := range c.Ops {
		c.Ops[k] = int64(float64(c.Ops[k]) * f)
	}
}

// String renders the cost compactly for tables.
func (c *Cost) String() string {
	keys := make([]string, 0, len(c.Ops))
	for k := range c.Ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, c.Ops[k]))
	}
	return fmt.Sprintf("E=%.3g J, T=%.3g s [%s]", c.Energy, c.Latency, strings.Join(parts, " "))
}

// Speedup returns baseline.Latency / c.Latency.
func (c *Cost) Speedup(baseline *Cost) float64 {
	if c.Latency == 0 {
		return math.Inf(1)
	}
	return baseline.Latency / c.Latency
}

// EnergyRatio returns baseline.Energy / c.Energy.
func (c *Cost) EnergyRatio(baseline *Cost) float64 {
	if c.Energy == 0 {
		return math.Inf(1)
	}
	return baseline.Energy / c.Energy
}

// Roofline is the standard two-parameter machine model: performance is
// bounded by peak compute and by memory bandwidth times arithmetic
// intensity.
type Roofline struct {
	PeakFLOPS float64 // FLOP/s
	MemBW     float64 // bytes/s
}

// Ridge returns the arithmetic intensity (FLOP/byte) at which the model
// transitions from memory- to compute-bound.
func (r Roofline) Ridge() float64 { return r.PeakFLOPS / r.MemBW }

// Attainable returns the achievable FLOP/s at the given intensity.
func (r Roofline) Attainable(intensity float64) float64 {
	return math.Min(r.PeakFLOPS, r.MemBW*intensity)
}

// Time returns the roofline execution time for an op with the given totals.
func (r Roofline) Time(flops, bytes float64) float64 {
	return math.Max(flops/r.PeakFLOPS, bytes/r.MemBW)
}

// Bound classifies an op by its intensity.
func (r Roofline) Bound(intensity float64) string {
	if intensity < r.Ridge() {
		return "memory"
	}
	return "compute"
}
