package perfmodel

import (
	"math"
	"strings"
	"testing"
)

func TestCostAddSerial(t *testing.T) {
	c := NewCost()
	c.Add("adc", 10, 2e-12, 1e-9)
	if c.Energy != 20e-12 {
		t.Errorf("Energy = %v", c.Energy)
	}
	if c.Latency != 10e-9 {
		t.Errorf("Latency = %v", c.Latency)
	}
	if c.Ops["adc"] != 10 {
		t.Errorf("Ops = %v", c.Ops)
	}
}

func TestCostAddParallel(t *testing.T) {
	c := NewCost()
	c.AddParallel("tile", 8, 1e-12, 5e-9)
	if c.Energy != 8e-12 {
		t.Errorf("parallel energy should sum: %v", c.Energy)
	}
	if c.Latency != 5e-9 {
		t.Errorf("parallel latency should be single-occurrence: %v", c.Latency)
	}
}

func TestCostMergeAndScale(t *testing.T) {
	a := NewCost()
	a.Add("x", 1, 1, 1)
	b := NewCost()
	b.Add("x", 2, 1, 1)
	b.Add("y", 1, 3, 0.5)
	a.Merge(b)
	if a.Energy != 6 || a.Latency != 3.5 || a.Ops["x"] != 3 || a.Ops["y"] != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
	a.Scale(2)
	if a.Energy != 12 || a.Ops["x"] != 6 {
		t.Fatalf("scale wrong: %+v", a)
	}
}

func TestSpeedupAndEnergyRatio(t *testing.T) {
	fast := &Cost{Energy: 1, Latency: 2}
	slow := &Cost{Energy: 100, Latency: 50}
	if got := fast.Speedup(slow); got != 25 {
		t.Errorf("Speedup = %v", got)
	}
	if got := fast.EnergyRatio(slow); got != 100 {
		t.Errorf("EnergyRatio = %v", got)
	}
	zero := &Cost{}
	if !math.IsInf(zero.Speedup(slow), 1) {
		t.Error("zero-latency speedup should be +Inf")
	}
}

func TestCostString(t *testing.T) {
	c := NewCost()
	c.Add("b", 1, 1, 1)
	c.Add("a", 2, 0, 0)
	s := c.String()
	if !strings.Contains(s, "a=2") || !strings.Contains(s, "b=1") {
		t.Errorf("String = %q", s)
	}
	// Keys must be sorted for stable table output.
	if strings.Index(s, "a=2") > strings.Index(s, "b=1") {
		t.Errorf("ops not sorted: %q", s)
	}
}

func TestRoofline(t *testing.T) {
	r := Roofline{PeakFLOPS: 100, MemBW: 10}
	if r.Ridge() != 10 {
		t.Errorf("Ridge = %v", r.Ridge())
	}
	if r.Attainable(1) != 10 {
		t.Errorf("memory-bound attainable = %v", r.Attainable(1))
	}
	if r.Attainable(1000) != 100 {
		t.Errorf("compute-bound attainable = %v", r.Attainable(1000))
	}
	if r.Bound(1) != "memory" || r.Bound(100) != "compute" {
		t.Error("Bound classification wrong")
	}
	// Time is max of compute and memory times.
	if got := r.Time(200, 10); got != 2 {
		t.Errorf("Time = %v, want 2 (compute-limited)", got)
	}
	if got := r.Time(10, 100); got != 10 {
		t.Errorf("Time = %v, want 10 (memory-limited)", got)
	}
}

func TestGPUMatVecMemoryBound(t *testing.T) {
	g := DefaultGPU()
	// A large MVM has intensity ~0.5 FLOP/byte — far below any GPU ridge —
	// so its time must be bandwidth-dominated.
	c := g.MatVec(4096, 4096)
	bytes := 4.0 * (4096*4096 + 4096 + 4096)
	bwTime := bytes / g.MemBW
	if c.Latency < bwTime {
		t.Fatalf("latency %v below bandwidth bound %v", c.Latency, bwTime)
	}
	if c.Latency > 3*bwTime+g.KernelLaunch {
		t.Fatalf("latency %v too far above bandwidth bound %v", c.Latency, bwTime)
	}
	if c.Energy <= 0 {
		t.Fatal("energy must be positive")
	}
}

func TestGPUKernelLaunchDominatesTinyKernels(t *testing.T) {
	g := DefaultGPU()
	c := g.MatVec(8, 8)
	if c.Latency < g.KernelLaunch {
		t.Fatalf("tiny kernel latency %v must include launch overhead %v", c.Latency, g.KernelLaunch)
	}
}
