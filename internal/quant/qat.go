package quant

import (
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// QATMat implements quantization-aware training (the §II reduced-precision
// inference result, paper ref. [13]): full-precision master weights are
// fake-quantized on every forward and backward pass — and layer inputs
// (activations) optionally quantized too — while gradient updates flow to
// the fp32 master copy (the straight-through estimator). After training,
// inference at the target precision matches what training saw.
type QATMat struct {
	Inner *nn.DenseMat
	WQ    *Quantizer // weight quantizer
	AQ    *Quantizer // activation (input) quantizer; nil disables
}

// Rows implements nn.Mat.
func (q *QATMat) Rows() int { return q.Inner.Rows() }

// Cols implements nn.Mat.
func (q *QATMat) Cols() int { return q.Inner.Cols() }

func (q *QATMat) quantIn(x tensor.Vector) tensor.Vector {
	if q.AQ == nil {
		return x
	}
	return q.AQ.QuantizeVec(x)
}

// Forward implements nn.Mat with quantized weights and inputs.
func (q *QATMat) Forward(x tensor.Vector) tensor.Vector {
	x = q.quantIn(x)
	m := q.Inner.M
	y := make(tensor.Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += q.WQ.Quantize(w) * x[j]
		}
		y[i] = s
	}
	return y
}

// Backward implements nn.Mat through the quantized weights (STE: the
// quantizer is treated as identity for gradients).
func (q *QATMat) Backward(d tensor.Vector) tensor.Vector {
	m := q.Inner.M
	y := make(tensor.Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		di := d[i]
		if di == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			y[j] += q.WQ.Quantize(w) * di
		}
	}
	return y
}

// Update implements nn.Mat on the fp32 master weights.
func (q *QATMat) Update(scale float64, u, v tensor.Vector) {
	q.Inner.Update(scale, u, v.Clone()) // v may alias caller's activation
}

var _ nn.Mat = (*QATMat)(nil)

// QATFactory builds QAT layers with the given weight/activation precision.
// aBits <= 0 disables activation quantization.
func QATFactory(wBits int, wScale float64, aBits int, aScale float64, rng *rngutil.Source) nn.MatFactory {
	dense := nn.DenseFactory(rng)
	return func(rows, cols int) nn.Mat {
		q := &QATMat{Inner: dense(rows, cols).(*nn.DenseMat), WQ: New(wBits, wScale)}
		if aBits > 0 {
			q.AQ = New(aBits, aScale)
		}
		return q
	}
}

// SRMat trains with weights *stored* at reduced precision (the §II
// reduced-precision training result, paper ref. [11]): every weight lives
// on the quantizer grid, and updates are applied with stochastic rounding
// so that sub-step gradients still accumulate in expectation. This is the
// digital analogue of the crossbar's finite conductance states.
type SRMat struct {
	Inner *nn.DenseMat
	Q     *Quantizer
	rng   *rngutil.Source
}

// NewSRMat wraps inner, snapping existing weights to the grid.
func NewSRMat(inner *nn.DenseMat, q *Quantizer, rng *rngutil.Source) *SRMat {
	for i, w := range inner.M.Data {
		inner.M.Data[i] = q.Quantize(w)
	}
	return &SRMat{Inner: inner, Q: q, rng: rng}
}

// Rows implements nn.Mat.
func (s *SRMat) Rows() int { return s.Inner.Rows() }

// Cols implements nn.Mat.
func (s *SRMat) Cols() int { return s.Inner.Cols() }

// Forward implements nn.Mat.
func (s *SRMat) Forward(x tensor.Vector) tensor.Vector { return s.Inner.Forward(x) }

// Backward implements nn.Mat.
func (s *SRMat) Backward(d tensor.Vector) tensor.Vector { return s.Inner.Backward(d) }

// Update implements nn.Mat: the fp update target is stochastically rounded
// to the nearest grid values so E[new weight] equals the exact update.
func (s *SRMat) Update(scale float64, u, v tensor.Vector) {
	m := s.Inner.M
	step := 2 * s.Q.Scale / float64(s.Q.Levels()-1)
	for i := 0; i < m.Rows; i++ {
		su := scale * u[i]
		if su == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			target := row[j] + su*v[j]
			lo := s.Q.Quantize(target)
			diff := target - lo
			// Quantize rounds to nearest; recover the floor of the grid cell.
			if diff < 0 {
				lo -= step
				diff += step
			}
			w := lo
			if s.rng.Float64() < diff/step {
				w = lo + step
			}
			if w > s.Q.Scale {
				w = s.Q.Scale
			} else if w < -s.Q.Scale {
				w = -s.Q.Scale
			}
			row[j] = w
		}
	}
}

var _ nn.Mat = (*SRMat)(nil)

// SRFactory builds stochastic-rounding low-precision training layers.
func SRFactory(bits int, scale float64, rng *rngutil.Source) nn.MatFactory {
	dense := nn.DenseFactory(rng.Child("init"))
	return func(rows, cols int) nn.Mat {
		return NewSRMat(dense(rows, cols).(*nn.DenseMat), New(bits, scale), rng.Child("sr"))
	}
}
