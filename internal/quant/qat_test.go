package quant

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func TestQATForwardUsesQuantizedWeights(t *testing.T) {
	inner := nn.NewDenseMat(1, 2)
	inner.M.Data = []float64{0.34, -0.81} // off-grid values
	q := &QATMat{Inner: inner, WQ: New(2, 1)}
	y := q.Forward(tensor.Vector{1, 1})
	// 2-bit grid over [-1,1]: {-1, -1/3, 1/3, 1}; 0.34 -> 1/3, -0.81 -> -1.
	want := 1.0/3 - 1
	if math.Abs(y[0]-want) > 1e-9 {
		t.Fatalf("Forward = %v, want %v", y[0], want)
	}
}

func TestQATActivationQuantization(t *testing.T) {
	inner := nn.NewDenseMat(1, 1)
	inner.M.Data = []float64{1}
	q := &QATMat{Inner: inner, WQ: New(8, 1), AQ: New(1, 1)}
	// 1-bit activations: inputs snap to ±1.
	if y := q.Forward(tensor.Vector{0.2}); math.Abs(y[0]-1) > 1e-9 {
		t.Fatalf("activation not quantized: %v", y)
	}
}

func TestQATUpdateHitsMasterWeights(t *testing.T) {
	inner := nn.NewDenseMat(1, 1)
	q := &QATMat{Inner: inner, WQ: New(2, 1)}
	q.Update(0.001, tensor.Vector{1}, tensor.Vector{1})
	if inner.M.Data[0] != 0.001 {
		t.Fatalf("master weight = %v, want fp update 0.001", inner.M.Data[0])
	}
	// The quantized view may still read as 0-level until the master crosses
	// a grid boundary — that's the STE contract.
	if y := q.Forward(tensor.Vector{1}); math.Abs(y[0]) > 0.5 {
		t.Fatalf("quantized view jumped early: %v", y)
	}
}

func TestQATBackwardMatchesQuantizedForward(t *testing.T) {
	rng := rngutil.New(1)
	inner := nn.NewDenseMat(3, 2)
	for i := range inner.M.Data {
		inner.M.Data[i] = rng.Uniform(-1, 1)
	}
	q := &QATMat{Inner: inner, WQ: New(4, 1)}
	d := tensor.Vector{0.5, -0.2, 0.8}
	got := q.Backward(d)
	// Reference: quantize the matrix, then transpose-MVM.
	ref := tensor.NewMatrix(3, 2)
	for i, w := range inner.M.Data {
		ref.Data[i] = q.WQ.Quantize(w)
	}
	want := ref.MatVecT(d)
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-9 {
			t.Fatalf("Backward = %v, want %v", got, want)
		}
	}
}

func TestSRMatWeightsStayOnGrid(t *testing.T) {
	rng := rngutil.New(3)
	inner := nn.NewDenseMat(4, 4)
	for i := range inner.M.Data {
		inner.M.Data[i] = rng.Uniform(-1, 1)
	}
	q := New(4, 1)
	s := NewSRMat(inner, q, rng.Child("sr"))
	for step := 0; step < 50; step++ {
		u := make(tensor.Vector, 4)
		v := make(tensor.Vector, 4)
		for i := range u {
			u[i] = rng.Normal(0, 1)
			v[i] = rng.Normal(0, 1)
		}
		s.Update(0.01, u, v)
	}
	for _, w := range inner.M.Data {
		if math.Abs(q.Quantize(w)-w) > 1e-9 {
			t.Fatalf("weight %v off grid", w)
		}
		if w < -1-1e-9 || w > 1+1e-9 {
			t.Fatalf("weight %v out of range", w)
		}
	}
}

// Stochastic rounding must be unbiased: tiny updates accumulate in
// expectation even when far below one grid step.
func TestSRMatUnbiasedSmallUpdates(t *testing.T) {
	rng := rngutil.New(5)
	q := New(4, 1) // step = 2/15 ≈ 0.133
	const trials = 3000
	var sum float64
	for trial := 0; trial < trials; trial++ {
		inner := nn.NewDenseMat(1, 1)
		s := NewSRMat(inner, q, rng.Child(fmt.Sprintf("sr%d", trial)))
		start := inner.M.Data[0]                           // 0 snapped onto the grid
		s.Update(0.01, tensor.Vector{1}, tensor.Vector{1}) // +0.01 << step
		sum += inner.M.Data[0] - start
	}
	mean := sum / trials
	if math.Abs(mean-0.01) > 0.004 {
		t.Fatalf("E[dw] after +0.01 update = %v, want ~0.01", mean)
	}
}

func TestSRTrainingLearns(t *testing.T) {
	// An 8-bit SR-trained MLP should learn a separable task like fp32 does.
	rng := rngutil.New(7)
	m := nn.NewMLP([]int{4, 8, 2}, nn.TanhAct, nn.SoftmaxAct, SRFactory(8, 1, rng))
	dr := rngutil.New(8)
	var xs []tensor.Vector
	var ys []int
	for i := 0; i < 200; i++ {
		c := i % 2
		center := 1.5
		if c == 0 {
			center = -1.5
		}
		x := make(tensor.Vector, 4)
		for j := range x {
			x[j] = dr.Normal(center, 1)
		}
		xs = append(xs, x)
		ys = append(ys, c)
	}
	for epoch := 0; epoch < 10; epoch++ {
		for i := range xs {
			m.TrainStep(xs[i], ys[i], 0.05)
		}
	}
	if acc := m.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("8-bit SR training accuracy %v", acc)
	}
}

func TestQATTrainingLearns(t *testing.T) {
	rng := rngutil.New(9)
	m := nn.NewMLP([]int{4, 12, 2}, nn.TanhAct, nn.SoftmaxAct, QATFactory(2, 1, 2, 2, rng))
	dr := rngutil.New(10)
	var xs []tensor.Vector
	var ys []int
	for i := 0; i < 200; i++ {
		c := i % 2
		center := 1.5
		if c == 0 {
			center = -1.5
		}
		x := make(tensor.Vector, 4)
		for j := range x {
			x[j] = dr.Normal(center, 1)
		}
		xs = append(xs, x)
		ys = append(ys, c)
	}
	for epoch := 0; epoch < 15; epoch++ {
		for i := range xs {
			m.TrainStep(xs[i], ys[i], 0.05)
		}
	}
	if acc := m.Accuracy(xs, ys); acc < 0.9 {
		t.Fatalf("2-bit QAT accuracy %v", acc)
	}
}
