// Package quant implements the fixed-point quantization used by the
// CAM-friendly few-shot pipelines of §IV (floating-point feature vectors
// are converted to low-precision fixed point before TCAM storage) and by
// the reduced-precision discussion of §II: symmetric uniform quantizers
// with 2–8 bits and a clipping-scale search in the spirit of PACT
// (paper ref. [13]).
package quant

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Quantizer maps real values onto a symmetric uniform grid of 2^Bits levels
// spanning [-Scale, +Scale].
type Quantizer struct {
	Bits  int
	Scale float64
}

// New returns a quantizer; it panics for bits outside [1, 16] or a
// non-positive scale.
func New(bits int, scale float64) *Quantizer {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: bits must be in [1,16], got %d", bits))
	}
	if scale <= 0 {
		panic("quant: scale must be positive")
	}
	return &Quantizer{Bits: bits, Scale: scale}
}

// Levels reports the number of representable values.
func (q *Quantizer) Levels() int { return 1 << uint(q.Bits) }

func (q *Quantizer) step() float64 {
	return 2 * q.Scale / float64(q.Levels()-1)
}

// Index returns the integer code (0 .. Levels-1) for x, clipping to range.
func (q *Quantizer) Index(x float64) int {
	k := int(math.Round((x + q.Scale) / q.step()))
	if k < 0 {
		k = 0
	} else if k > q.Levels()-1 {
		k = q.Levels() - 1
	}
	return k
}

// Value returns the real value represented by integer code k.
func (q *Quantizer) Value(k int) float64 {
	return -q.Scale + float64(k)*q.step()
}

// Quantize rounds x to its nearest representable value.
func (q *Quantizer) Quantize(x float64) float64 { return q.Value(q.Index(x)) }

// QuantizeVec returns a new vector with every element quantized.
func (q *Quantizer) QuantizeVec(v tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, len(v))
	for i, x := range v {
		out[i] = q.Quantize(x)
	}
	return out
}

// Codes returns the integer codes for every element of v — the fixed-point
// representation stored in CAM rows.
func (q *Quantizer) Codes(v tensor.Vector) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = q.Index(x)
	}
	return out
}

// MaxError reports the worst-case rounding error for in-range inputs
// (half a step).
func (q *Quantizer) MaxError() float64 { return q.step() / 2 }

// CalibrateScale chooses a clipping scale for the given data by taking the
// p-quantile of absolute values (p in (0, 1]; p = 1 means max-abs). Clipping
// below the max trades outlier saturation for finer resolution of the bulk,
// the optimization that PACT performs during training.
func CalibrateScale(data []tensor.Vector, p float64) float64 {
	var all []float64
	for _, v := range data {
		for _, x := range v {
			all = append(all, math.Abs(x))
		}
	}
	if len(all) == 0 {
		return 1
	}
	sort.Float64s(all)
	if p >= 1 {
		return math.Max(all[len(all)-1], 1e-12)
	}
	idx := int(p * float64(len(all)-1))
	return math.Max(all[idx], 1e-12)
}
