package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestLevelsAndGrid(t *testing.T) {
	q := New(2, 1)
	if q.Levels() != 4 {
		t.Fatalf("Levels = %d", q.Levels())
	}
	want := []float64{-1, -1.0 / 3, 1.0 / 3, 1}
	for k, w := range want {
		if math.Abs(q.Value(k)-w) > 1e-12 {
			t.Fatalf("Value(%d) = %v, want %v", k, q.Value(k), w)
		}
	}
}

func TestQuantizeRoundsToNearest(t *testing.T) {
	q := New(2, 1)
	cases := map[float64]float64{
		0.0:  1.0 / 3, // midpoint ties round away from zero in the index
		0.4:  1.0 / 3,
		0.9:  1,
		-0.9: -1,
		5:    1,  // clips
		-5:   -1, // clips
	}
	for in, want := range cases {
		if got := q.Quantize(in); math.Abs(got-want) > 1e-9 {
			t.Errorf("Quantize(%v) = %v, want %v", in, got, want)
		}
	}
}

// Property: quantization is idempotent and error-bounded for in-range input.
func TestQuantizeProperties(t *testing.T) {
	f := func(x float64, bits8 uint8) bool {
		bits := int(bits8%8) + 1
		q := New(bits, 2)
		x = math.Mod(x, 2) // keep in range
		if math.IsNaN(x) {
			return true
		}
		y := q.Quantize(x)
		// Idempotent.
		if q.Quantize(y) != y {
			return false
		}
		// Error bounded by half a step.
		return math.Abs(y-x) <= q.MaxError()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: codes roundtrip through Value.
func TestCodeRoundtrip(t *testing.T) {
	q := New(4, 1.5)
	for k := 0; k < q.Levels(); k++ {
		if got := q.Index(q.Value(k)); got != k {
			t.Fatalf("Index(Value(%d)) = %d", k, got)
		}
	}
}

func TestCodesVec(t *testing.T) {
	q := New(4, 1)
	v := tensor.Vector{-1, 0, 1}
	codes := q.Codes(v)
	if codes[0] != 0 || codes[2] != q.Levels()-1 {
		t.Fatalf("Codes = %v", codes)
	}
	qv := q.QuantizeVec(v)
	if qv[0] != -1 || qv[2] != 1 {
		t.Fatalf("QuantizeVec = %v", qv)
	}
	// Input must be untouched.
	if v[0] != -1 {
		t.Fatal("QuantizeVec mutated input")
	}
}

func TestMoreBitsLessError(t *testing.T) {
	data := tensor.Vector{0.13, -0.77, 0.42, 0.99, -0.31}
	var prevErr = math.Inf(1)
	for _, bits := range []int{2, 4, 8} {
		q := New(bits, 1)
		var e float64
		for _, x := range data {
			e += math.Abs(q.Quantize(x) - x)
		}
		if e >= prevErr {
			t.Fatalf("%d bits error %v not below previous %v", bits, e, prevErr)
		}
		prevErr = e
	}
}

func TestCalibrateScale(t *testing.T) {
	data := []tensor.Vector{{0.1, 0.2, -0.3}, {0.4, -10}} // one outlier
	full := CalibrateScale(data, 1)
	if full != 10 {
		t.Fatalf("max-abs scale = %v, want 10", full)
	}
	clipped := CalibrateScale(data, 0.75)
	if clipped >= full {
		t.Fatalf("percentile scale %v should clip below max %v", clipped, full)
	}
	if CalibrateScale(nil, 1) != 1 {
		t.Fatal("empty data should default to 1")
	}
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 1) },
		func() { New(17, 1) },
		func() { New(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
