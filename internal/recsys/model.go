// Package recsys implements the neural recommendation models of §V
// (Fig. 6): dense features through a bottom MLP, categorical features
// through sparsely indexed embedding tables with multi-hot pooling, feature
// interaction by concatenation, and a top (predictor) MLP emitting a
// click-through-rate. It also provides the workload characterization the
// paper discusses — per-operator FLOPs, bytes, arithmetic intensity,
// roofline placement, and model-capacity accounting — via profile.go.
package recsys

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// EmbeddingTable maps sparse categorical indices to learned dense vectors.
type EmbeddingTable struct {
	Rows, Dim int
	W         *tensor.Matrix
}

// NewEmbeddingTable builds a table with small random initialization.
func NewEmbeddingTable(rows, dim int, rng *rngutil.Source) *EmbeddingTable {
	t := &EmbeddingTable{Rows: rows, Dim: dim, W: tensor.NewMatrix(rows, dim)}
	scale := 1 / math.Sqrt(float64(dim))
	for i := range t.W.Data {
		t.W.Data[i] = rng.Uniform(-scale, scale)
	}
	return t
}

// Lookup gathers and sum-pools the rows for a multi-hot index list — the
// low-compute-intensity, irregular-access operator at the heart of §V-B.
func (t *EmbeddingTable) Lookup(idxs []int) tensor.Vector {
	out := tensor.NewVector(t.Dim)
	for _, ix := range idxs {
		if ix < 0 || ix >= t.Rows {
			panic(fmt.Sprintf("recsys: index %d out of table with %d rows", ix, t.Rows))
		}
		out.Add(t.W.Row(ix))
	}
	return out
}

// ApplyGrad scatters the pooled-vector gradient back to the touched rows.
func (t *EmbeddingTable) ApplyGrad(idxs []int, grad tensor.Vector, lr float64) {
	for _, ix := range idxs {
		row := t.W.Row(ix)
		row.AXPY(-lr, grad)
	}
}

// Bytes reports the table's fp32 footprint.
func (t *EmbeddingTable) Bytes() int64 { return int64(t.Rows) * int64(t.Dim) * 4 }

// Config specifies a recommendation-model architecture (Fig. 6).
type Config struct {
	Name       string
	DenseDim   int
	BottomMLP  []int // hidden sizes; output of the last is the dense feature
	EmbDim     int
	TableSizes []int
	LookupsPer int   // multi-hot indices per table
	TopMLP     []int // hidden sizes of the predictor stack
}

// Model is a runnable, trainable recommendation model.
type Model struct {
	Cfg    Config
	Bottom *nn.MLP
	Tables []*EmbeddingTable
	Top    *nn.MLP
}

// NewModel builds the model with fresh parameters.
func NewModel(cfg Config, rng *rngutil.Source) *Model {
	if len(cfg.BottomMLP) == 0 || len(cfg.TopMLP) == 0 {
		panic("recsys: config needs bottom and top MLP sizes")
	}
	m := &Model{Cfg: cfg}
	bottomSizes := append([]int{cfg.DenseDim}, cfg.BottomMLP...)
	m.Bottom = nn.NewMLP(bottomSizes, nn.ReLUAct, nn.ReLUAct, nn.DenseFactory(rng.Child("bottom")))
	for ti, rows := range cfg.TableSizes {
		m.Tables = append(m.Tables, NewEmbeddingTable(rows, cfg.EmbDim, rng.Child(fmt.Sprintf("table%d", ti))))
	}
	interDim := cfg.BottomMLP[len(cfg.BottomMLP)-1] + len(cfg.TableSizes)*cfg.EmbDim
	topSizes := append([]int{interDim}, cfg.TopMLP...)
	topSizes = append(topSizes, 1)
	m.Top = nn.NewMLP(topSizes, nn.ReLUAct, nn.SigmoidAct, nn.DenseFactory(rng.Child("top")))
	return m
}

// Forward returns the predicted click probability for one sample.
func (m *Model) Forward(s dataset.ClickSample) float64 {
	return m.forward(s)[0]
}

func (m *Model) forward(s dataset.ClickSample) tensor.Vector {
	dense := m.Bottom.Forward(s.Dense)
	// Feature interaction: concatenate dense output with pooled embeddings.
	inter := make(tensor.Vector, 0, len(dense)+len(m.Tables)*m.Cfg.EmbDim)
	inter = append(inter, dense...)
	for ti, t := range m.Tables {
		inter = append(inter, t.Lookup(s.Sparse[ti])...)
	}
	return m.Top.Forward(inter)
}

// TrainStep performs one SGD step with binary cross-entropy and returns the
// pre-update loss.
func (m *Model) TrainStep(s dataset.ClickSample, lr float64) float64 {
	pred := m.forward(s)
	loss := nn.BCE(pred, tensor.Vector{s.Click})
	// dBCE/dp for sigmoid output combines to (p - y) on the pre-activation;
	// with the sigmoid layer's own prime applied in Backward, feed dL/dp.
	p := math.Min(math.Max(pred[0], 1e-12), 1-1e-12)
	dp := (p - s.Click) / (p * (1 - p))
	dInter := m.Top.Backward(tensor.Vector{dp}, lr)

	denseLen := m.Cfg.BottomMLP[len(m.Cfg.BottomMLP)-1]
	m.Bottom.Backward(dInter[:denseLen], lr)
	off := denseLen
	for ti, t := range m.Tables {
		t.ApplyGrad(s.Sparse[ti], dInter[off:off+m.Cfg.EmbDim], lr)
		off += m.Cfg.EmbDim
	}
	return loss
}

// LogLoss evaluates mean BCE over samples.
func (m *Model) LogLoss(samples []dataset.ClickSample) float64 {
	var sum float64
	for _, s := range samples {
		sum += nn.BCE(tensor.Vector{m.Forward(s)}, tensor.Vector{s.Click})
	}
	return sum / float64(len(samples))
}

// Accuracy evaluates thresholded click accuracy over samples.
func (m *Model) Accuracy(samples []dataset.ClickSample) float64 {
	correct := 0
	for _, s := range samples {
		pred := 0.0
		if m.Forward(s) > 0.5 {
			pred = 1
		}
		if pred == s.Click {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// EmbeddingBytes reports the total embedding-table footprint.
func (m *Model) EmbeddingBytes() int64 {
	var b int64
	for _, t := range m.Tables {
		b += t.Bytes()
	}
	return b
}

// MLPParams reports the dense parameter count of both stacks.
func (m *Model) MLPParams() int {
	return m.Bottom.ParamCount() + m.Top.ParamCount()
}
