package recsys

import (
	"repro/internal/memsys"
	"repro/internal/perfmodel"
)

// NMPConfig models a near-memory-processing memory system for embedding
// gathers (§V-B's "caching, prefetching, and near memory processing",
// paper ref. [66] — TensorDIMM): pooling units sit at the DIMM rank, so
// gathered rows are summed *inside* the memory modules and only the pooled
// vector crosses the host memory channel.
type NMPConfig struct {
	// Ranks is the number of memory ranks gathering in parallel; internal
	// bandwidth scales with it while the host channel does not.
	Ranks int
	// ChannelBW is the host-visible memory channel bandwidth (bytes/s).
	ChannelBW float64
	// InternalBWPerRank is each rank's internal access bandwidth.
	InternalBWPerRank float64
	// AccessLatency is the per-burst DRAM latency (shared by both paths).
	AccessLatency float64
	// EnergyPerByteInternal / EnergyPerByteChannel split the access energy:
	// channel (I/O) bytes cost extra over internal array reads.
	EnergyPerByteInternal float64
	EnergyPerByteChannel  float64
	// PoolEnergyPerElem prices the near-memory adders.
	PoolEnergyPerElem float64
}

// DefaultNMP returns DDR4-class parameters with 4 ranks.
func DefaultNMP() NMPConfig {
	d := memsys.DefaultDRAM()
	return NMPConfig{
		Ranks:                 4,
		ChannelBW:             d.Bandwidth,
		InternalBWPerRank:     d.Bandwidth, // each rank can stream at channel rate internally
		AccessLatency:         d.AccessLatency,
		EnergyPerByteInternal: 7e-12,  // array + on-DIMM movement
		EnergyPerByteChannel:  13e-12, // I/O + termination
		PoolEnergyPerElem:     0.5e-12,
	}
}

// GatherWork describes one batch of embedding gathers.
type GatherWork struct {
	Tables     int
	LookupsPer int // rows gathered per table (multi-hot)
	EmbDim     int
	Batch      int
}

// rows returns the total gathered rows and the pooled output vectors.
func (w GatherWork) rows() (gathered, pooled float64) {
	gathered = float64(w.Tables) * float64(w.LookupsPer) * float64(w.Batch)
	pooled = float64(w.Tables) * float64(w.Batch)
	return gathered, pooled
}

// BaselineGatherCost prices the conventional path: every gathered row
// crosses the host channel, and the CPU performs the pooling.
func (c NMPConfig) BaselineGatherCost(w GatherWork) *perfmodel.Cost {
	gathered, _ := w.rows()
	rowBytes := float64(w.EmbDim) * 4
	total := gathered * rowBytes
	cost := perfmodel.NewCost()
	cost.Latency = c.AccessLatency + total/c.ChannelBW
	cost.Energy = total * (c.EnergyPerByteInternal + c.EnergyPerByteChannel)
	cost.Ops["gather.rows"] = int64(gathered)
	cost.Ops["channel.bytes"] = int64(total)
	return cost
}

// NMPGatherCost prices the near-memory path: rows stream inside the ranks
// (in parallel), pooling happens at the DIMM, and only pooled vectors cross
// the channel.
func (c NMPConfig) NMPGatherCost(w GatherWork) *perfmodel.Cost {
	gathered, pooled := w.rows()
	rowBytes := float64(w.EmbDim) * 4
	internalBytes := gathered * rowBytes
	channelBytes := pooled * rowBytes
	cost := perfmodel.NewCost()
	internalTime := internalBytes / (c.InternalBWPerRank * float64(c.Ranks))
	channelTime := channelBytes / c.ChannelBW
	cost.Latency = c.AccessLatency + internalTime + channelTime
	cost.Energy = internalBytes*c.EnergyPerByteInternal +
		channelBytes*c.EnergyPerByteChannel +
		gathered*float64(w.EmbDim)*c.PoolEnergyPerElem
	cost.Ops["gather.rows"] = int64(gathered)
	cost.Ops["channel.bytes"] = int64(channelBytes)
	return cost
}

// NMPSpeedup reports the latency and energy gains of near-memory pooling
// for the given gather workload.
func (c NMPConfig) NMPSpeedup(w GatherWork) (latency, energy float64) {
	base := c.BaselineGatherCost(w)
	nmp := c.NMPGatherCost(w)
	return nmp.Speedup(base), nmp.EnergyRatio(base)
}
