package recsys

import (
	"math"
	"math/rand"

	"repro/internal/memsys"
	"repro/internal/perfmodel"
	"repro/internal/rngutil"
)

// RMCSmall is a balanced small model (the Fig. 6 shape at toy scale),
// convenient for functional tests and examples.
func RMCSmall() Config {
	return Config{
		Name:     "rm-small",
		DenseDim: 16, BottomMLP: []int{32, 16},
		EmbDim: 16, TableSizes: []int{10000, 5000, 2000, 500}, LookupsPer: 4,
		TopMLP: []int{32, 16},
	}
}

// RMCEmbed is the embedding-dominated configuration of §V-B: many large
// tables, many lookups, thin MLP stacks — memory capacity and bandwidth
// bound (the DLRM-RMC1/RMC2 regime of the paper's ref. [59]).
func RMCEmbed() Config {
	return Config{
		Name:     "rm-embed",
		DenseDim: 16, BottomMLP: []int{32, 32},
		EmbDim: 64,
		TableSizes: []int{
			10_000_000, 10_000_000, 5_000_000, 5_000_000,
			2_000_000, 2_000_000, 1_000_000, 1_000_000,
		},
		LookupsPer: 32,
		TopMLP:     []int{64, 32},
	}
}

// RMCMLP is the compute-dominated configuration: heavy dense and predictor
// stacks over few small tables (the DLRM-RMC3 regime).
func RMCMLP() Config {
	return Config{
		Name:     "rm-mlp",
		DenseDim: 256, BottomMLP: []int{1024, 1024, 512},
		EmbDim: 32, TableSizes: []int{100000, 100000}, LookupsPer: 1,
		TopMLP: []int{1024, 1024, 512},
	}
}

// ProductionScale returns an RM-embed-shaped config scaled to production
// capacity (tens of GB), used only for analytic capacity accounting —
// nothing this size is ever allocated.
func ProductionScale() Config {
	c := RMCEmbed()
	c.Name = "rm-production"
	c.TableSizes = nil
	for i := 0; i < 16; i++ {
		c.TableSizes = append(c.TableSizes, 10_000_000)
	}
	c.EmbDim = 64
	return c
}

// OpProfile characterizes one operator of the model.
type OpProfile struct {
	Name      string
	FLOPs     float64 // per batch
	Bytes     float64 // per batch (weights once per batch + activations/gathers)
	Intensity float64 // FLOPs/byte
	Bound     string  // roofline classification
}

// mlpCost returns flops and weight bytes for a stack of dense layers
// (including bias columns) at the given batch size. Weights stream once per
// batch (the amortization embeddings can never enjoy).
func mlpCost(sizes []int, batch int) (flops, bytes float64) {
	for i := 0; i+1 < len(sizes); i++ {
		in, out := sizes[i], sizes[i+1]
		weights := float64(out) * float64(in+1)
		flops += 2 * weights * float64(batch)
		bytes += weights * 4
		bytes += float64(in+out) * 4 * float64(batch) // activations
	}
	return flops, bytes
}

// Profile characterizes every operator of a config at the given batch size
// against the given roofline machine.
func Profile(cfg Config, batch int, r perfmodel.Roofline) []OpProfile {
	var out []OpProfile

	bottomSizes := append([]int{cfg.DenseDim}, cfg.BottomMLP...)
	bf, bb := mlpCost(bottomSizes, batch)
	out = append(out, newOp("bottom-mlp", bf, bb, r))

	// Embedding gather+pool: every lookup touches a distinct row — bytes
	// scale with batch, so intensity never amortizes.
	lookups := float64(len(cfg.TableSizes)) * float64(cfg.LookupsPer) * float64(batch)
	ef := lookups * float64(cfg.EmbDim)     // pooling adds
	eb := lookups * float64(cfg.EmbDim) * 4 // row gathers
	out = append(out, newOp("embedding", ef, eb, r))

	interDim := cfg.BottomMLP[len(cfg.BottomMLP)-1] + len(cfg.TableSizes)*cfg.EmbDim
	cf := float64(interDim) * float64(batch) // concatenation copies
	cb := float64(interDim) * 4 * float64(batch) * 2
	out = append(out, newOp("interaction", cf, cb, r))

	topSizes := append([]int{interDim}, cfg.TopMLP...)
	topSizes = append(topSizes, 1)
	tf, tb := mlpCost(topSizes, batch)
	out = append(out, newOp("top-mlp", tf, tb, r))
	return out
}

func newOp(name string, flops, bytes float64, r perfmodel.Roofline) OpProfile {
	intensity := 0.0
	if bytes > 0 {
		intensity = flops / bytes
	}
	return OpProfile{Name: name, FLOPs: flops, Bytes: bytes, Intensity: intensity, Bound: r.Bound(intensity)}
}

// CapacityBytes reports the full model footprint (tables + MLPs) without
// instantiating it.
func CapacityBytes(cfg Config) int64 {
	var b int64
	for _, rows := range cfg.TableSizes {
		b += int64(rows) * int64(cfg.EmbDim) * 4
	}
	sizes := append([]int{cfg.DenseDim}, cfg.BottomMLP...)
	for i := 0; i+1 < len(sizes); i++ {
		b += int64(sizes[i+1]) * int64(sizes[i]+1) * 4
	}
	interDim := cfg.BottomMLP[len(cfg.BottomMLP)-1] + len(cfg.TableSizes)*cfg.EmbDim
	top := append([]int{interDim}, cfg.TopMLP...)
	top = append(top, 1)
	for i := 0; i+1 < len(top); i++ {
		b += int64(top[i+1]) * int64(top[i]+1) * 4
	}
	return b
}

// InferenceTime estimates one batch's execution time on the roofline
// machine, summing per-operator times (max of compute and memory time per
// op).
func InferenceTime(cfg Config, batch int, r perfmodel.Roofline) float64 {
	var t float64
	for _, op := range Profile(cfg, batch, r) {
		t += r.Time(op.FLOPs, op.Bytes)
	}
	return t
}

// DominantOp reports which operator consumes the largest share of roofline
// time — the compute-dominated vs memory-bound distinction of §V-B.
func DominantOp(cfg Config, batch int, r perfmodel.Roofline) string {
	best, bestT := "", -1.0
	for _, op := range Profile(cfg, batch, r) {
		if tt := r.Time(op.FLOPs, op.Bytes); tt > bestT {
			best, bestT = op.Name, tt
		}
	}
	return best
}

// EmbeddingCacheStudy replays a Zipf-skewed embedding access trace against
// an on-chip cache of the given capacity and returns the hit rate — the
// locality headroom that caching/prefetching co-design can exploit (§V-B).
func EmbeddingCacheStudy(tableRows, embDim, cacheBytes int, zipfS float64, accesses int, seed uint64) float64 {
	rng := rngutil.New(seed)
	z := newZipf(rng, zipfS, tableRows)
	cache := memsys.NewCache(cacheBytes, 8, 64)
	rowBytes := uint64(embDim * 4)
	for i := 0; i < accesses; i++ {
		row := z()
		// Touch the first line of the row (pooled rows are read fully, but
		// line-granularity hit behaviour is identical for aligned rows).
		cache.Access(uint64(row) * rowBytes)
	}
	return cache.Stats.HitRate()
}

// newZipf returns a seeded Zipf row sampler over [0, n).
func newZipf(rng *rngutil.Source, s float64, n int) func() int {
	z := rand.NewZipf(rng.Rand, math.Max(s, 1.001), 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}
