package recsys

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/perfmodel"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func TestEmbeddingLookupIsSumPool(t *testing.T) {
	rng := rngutil.New(1)
	tab := NewEmbeddingTable(10, 4, rng)
	got := tab.Lookup([]int{2, 5, 2})
	want := tensor.NewVector(4)
	want.Add(tab.W.Row(2))
	want.Add(tab.W.Row(5))
	want.Add(tab.W.Row(2))
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Lookup = %v, want %v", got, want)
		}
	}
}

func TestEmbeddingLookupPanicsOutOfRange(t *testing.T) {
	tab := NewEmbeddingTable(4, 2, rngutil.New(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.Lookup([]int{4})
}

func TestEmbeddingGradScatter(t *testing.T) {
	tab := NewEmbeddingTable(4, 2, rngutil.New(3))
	before := tab.W.Row(1).Clone()
	tab.ApplyGrad([]int{1}, tensor.Vector{1, -2}, 0.1)
	after := tab.W.Row(1)
	if math.Abs(after[0]-(before[0]-0.1)) > 1e-12 || math.Abs(after[1]-(before[1]+0.2)) > 1e-12 {
		t.Fatalf("grad scatter wrong: %v -> %v", before, after)
	}
}

func TestModelForwardInRange(t *testing.T) {
	rng := rngutil.New(5)
	m := NewModel(RMCSmall(), rng)
	log := dataset.NewClickLog(dataset.DefaultClickLog(), 20, rng.Child("log"))
	for _, s := range log.Samples {
		p := m.Forward(s)
		if p < 0 || p > 1 {
			t.Fatalf("CTR prediction %v out of [0,1]", p)
		}
	}
}

func TestModelTrainsOnClickLog(t *testing.T) {
	rng := rngutil.New(7)
	m := NewModel(RMCSmall(), rng)
	log := dataset.NewClickLog(dataset.DefaultClickLog(), 1200, rng.Child("log"))
	train, test := log.Samples[:1000], log.Samples[1000:]
	before := m.LogLoss(test)
	for epoch := 0; epoch < 3; epoch++ {
		for _, s := range train {
			m.TrainStep(s, 0.03)
		}
	}
	after := m.LogLoss(test)
	if after >= before {
		t.Fatalf("training did not reduce held-out logloss: %v -> %v", before, after)
	}
	if acc := m.Accuracy(test); acc < 0.6 {
		t.Fatalf("trained accuracy %v barely above chance", acc)
	}
}

// Gradient check for the embedding path: nudge one embedding weight and
// compare loss delta with the scatter gradient.
func TestEmbeddingGradientCheck(t *testing.T) {
	rng := rngutil.New(9)
	cfg := RMCSmall()
	m := NewModel(cfg, rng)
	log := dataset.NewClickLog(dataset.DefaultClickLog(), 1, rng.Child("log"))
	s := log.Samples[0]

	ix := s.Sparse[0][0]
	loss := func() float64 {
		p := m.Forward(s)
		pp := math.Min(math.Max(p, 1e-12), 1-1e-12)
		if s.Click == 1 {
			return -math.Log(pp)
		}
		return -math.Log(1 - pp)
	}
	// Analytic gradient via tiny-lr update of only embeddings: freeze MLPs
	// by using lr on a cloned model is complex; instead compute numerically
	// on both sides of the weight and compare to the TrainStep direction.
	const h = 1e-5
	w := m.Tables[0].W.Row(ix)
	orig := w[0]
	w[0] = orig + h
	lp := loss()
	w[0] = orig - h
	lm := loss()
	w[0] = orig
	numeric := (lp - lm) / (2 * h)

	// One very-small-lr TrainStep: the weight must move opposite the
	// numeric gradient, proportionally. The same row may be looked up more
	// than once in a multi-hot sample, scaling the step.
	count := 0
	for _, j := range s.Sparse[0] {
		if j == ix {
			count++
		}
	}
	const lr = 1e-7
	m.TrainStep(s, lr)
	moved := m.Tables[0].W.Row(ix)[0] - orig
	analytic := -moved / (lr * float64(count))
	if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
		t.Fatalf("embedding grad: numeric %v vs implied %v", numeric, analytic)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty MLP config")
		}
	}()
	NewModel(Config{DenseDim: 4}, rngutil.New(1))
}

func TestCapacityAccounting(t *testing.T) {
	small := CapacityBytes(RMCSmall())
	m := NewModel(RMCSmall(), rngutil.New(11))
	got := m.EmbeddingBytes() + int64(m.MLPParams()*4)
	if small != got {
		t.Fatalf("CapacityBytes %d != instantiated %d", small, got)
	}
	// T2: production-scale capacity must land in the tens of GB without
	// allocation.
	prod := CapacityBytes(ProductionScale())
	gb := float64(prod) / 1e9
	if gb < 10 || gb > 500 {
		t.Fatalf("production capacity %.1f GB outside the paper's 'tens of GB' band", gb)
	}
	// And the embedding-heavy config is 100s of MB to GBs.
	embed := float64(CapacityBytes(RMCEmbed())) / 1e6
	if embed < 100 {
		t.Fatalf("rm-embed capacity %.1f MB below the paper's 100s-of-MB floor", embed)
	}
}

func TestProfileIntensityGap(t *testing.T) {
	r := perfmodel.Roofline{PeakFLOPS: 10e12, MemBW: 600e9}
	// T2 headline: embedding intensity is orders of magnitude below MLP
	// intensity at serving batch sizes.
	for _, cfg := range []Config{RMCSmall(), RMCEmbed(), RMCMLP()} {
		ops := Profile(cfg, 128, r)
		var mlpI, embI float64
		for _, op := range ops {
			switch op.Name {
			case "bottom-mlp":
				mlpI = op.Intensity
			case "embedding":
				embI = op.Intensity
			}
		}
		if mlpI < 20*embI {
			t.Errorf("%s: MLP intensity %v not >> embedding %v", cfg.Name, mlpI, embI)
		}
	}
}

func TestProfileEmbeddingNeverAmortizes(t *testing.T) {
	r := perfmodel.Roofline{PeakFLOPS: 10e12, MemBW: 600e9}
	i1 := Profile(RMCEmbed(), 1, r)[1].Intensity
	i128 := Profile(RMCEmbed(), 128, r)[1].Intensity
	if math.Abs(i1-i128) > 1e-9 {
		t.Fatalf("embedding intensity must not improve with batch: %v vs %v", i1, i128)
	}
	// While MLP intensity must grow with batch.
	m1 := Profile(RMCMLP(), 1, r)[0].Intensity
	m128 := Profile(RMCMLP(), 128, r)[0].Intensity
	if m128 <= m1 {
		t.Fatalf("MLP intensity should amortize with batch: %v vs %v", m1, m128)
	}
}

func TestDominantOpDistinguishesConfigs(t *testing.T) {
	r := perfmodel.Roofline{PeakFLOPS: 10e12, MemBW: 600e9}
	if got := DominantOp(RMCEmbed(), 128, r); got != "embedding" {
		t.Errorf("rm-embed dominant op = %s, want embedding", got)
	}
	got := DominantOp(RMCMLP(), 128, r)
	if got != "bottom-mlp" && got != "top-mlp" {
		t.Errorf("rm-mlp dominant op = %s, want an MLP stack", got)
	}
}

func TestInferenceTimePositiveAndOrdered(t *testing.T) {
	r := perfmodel.Roofline{PeakFLOPS: 10e12, MemBW: 600e9}
	small := InferenceTime(RMCSmall(), 1, r)
	embed := InferenceTime(RMCEmbed(), 1, r)
	if small <= 0 || embed <= small {
		t.Fatalf("inference times implausible: small %v embed %v", small, embed)
	}
}

func TestEmbeddingCacheStudySkewMatters(t *testing.T) {
	// Higher Zipf skew concentrates accesses: the cache must hit more.
	flat := EmbeddingCacheStudy(1_000_000, 16, 1<<16, 1.05, 20000, 1)
	skew := EmbeddingCacheStudy(1_000_000, 16, 1<<16, 2.0, 20000, 1)
	if skew <= flat {
		t.Fatalf("skewed trace hit rate %v should beat flat %v", skew, flat)
	}
	// Bigger cache helps.
	smallC := EmbeddingCacheStudy(1_000_000, 16, 1<<14, 1.2, 20000, 2)
	bigC := EmbeddingCacheStudy(1_000_000, 16, 1<<20, 1.2, 20000, 2)
	if bigC <= smallC {
		t.Fatalf("bigger cache hit rate %v should beat smaller %v", bigC, smallC)
	}
}

func TestInterestPoolAttendsToRelevantHistory(t *testing.T) {
	rng := rngutil.New(31)
	m := NewInterestModule(16, 4)
	history, taste := SyntheticHistory(16, 32, rng)
	// A candidate aligned with the taste should produce a pooled vector
	// more aligned with taste than a random candidate's pooling.
	aligned := taste.Clone()
	random := make(tensor.Vector, 16)
	for i := range random {
		random[i] = rng.NormFloat64()
	}
	pa, attnA := m.Pool(aligned, history)
	pr, _ := m.Pool(random, history)
	if len(attnA) != 32 {
		t.Fatalf("attention length %d", len(attnA))
	}
	if s := attnA.Sum(); math.Abs(s-1) > 1e-9 {
		t.Fatalf("attention sums to %v", s)
	}
	simA := tensor.CosineSimilarity(pa, taste)
	simR := tensor.CosineSimilarity(pr, taste)
	if simA <= simR {
		t.Fatalf("taste-aligned pooling %v should beat random %v", simA, simR)
	}
}

func TestInterestPoolEmptyHistory(t *testing.T) {
	m := NewInterestModule(8, 1)
	out, attn := m.Pool(make(tensor.Vector, 8), nil)
	if out.Norm2() != 0 || attn != nil {
		t.Fatal("empty history should pool to zero")
	}
}

func TestSeqProfileAddsAttentionOp(t *testing.T) {
	r := perfmodel.Roofline{PeakFLOPS: 10e12, MemBW: 600e9}
	cfg := RMCSeq()
	ops := SeqProfile(cfg, 64, r)
	last := ops[len(ops)-1]
	if last.Name != "interest-attn" {
		t.Fatalf("last op = %s", last.Name)
	}
	if last.FLOPs <= 0 || last.Bytes <= 0 {
		t.Fatal("attention op must have cost")
	}
	// Attention over gathered history stays memory-bound like embeddings —
	// the §V-B point that sequence models add further irregular access.
	if last.Bound != "memory" {
		t.Fatalf("interest-attn bound = %s, want memory", last.Bound)
	}
	if len(ops) != 5 {
		t.Fatalf("expected 5 ops, got %d", len(ops))
	}
}

func TestInterestModuleCosts(t *testing.T) {
	m := NewInterestModule(32, 1)
	if m.FLOPs(10) <= 0 || m.Bytes(10) != 10*32*4 {
		t.Fatalf("cost accounting wrong: flops=%v bytes=%v", m.FLOPs(10), m.Bytes(10))
	}
	// Longer history costs more.
	if m.FLOPs(64) <= m.FLOPs(8) {
		t.Fatal("FLOPs must grow with history")
	}
}

func TestNMPGatherBeatsBaseline(t *testing.T) {
	c := DefaultNMP()
	w := GatherWork{Tables: 8, LookupsPer: 32, EmbDim: 64, Batch: 16}
	lat, en := c.NMPSpeedup(w)
	if lat <= 1 || en <= 1 {
		t.Fatalf("NMP should win on both axes: latency %vx energy %vx", lat, en)
	}
	// With 32-way pooling, channel traffic shrinks 32x; latency gain is
	// bounded by rank parallelism + pooling, well above 2x here.
	if lat < 2 {
		t.Fatalf("latency gain %v implausibly small", lat)
	}
}

func TestNMPGainGrowsWithPooling(t *testing.T) {
	c := DefaultNMP()
	small := GatherWork{Tables: 8, LookupsPer: 2, EmbDim: 64, Batch: 16}
	big := GatherWork{Tables: 8, LookupsPer: 64, EmbDim: 64, Batch: 16}
	latS, _ := c.NMPSpeedup(small)
	latB, _ := c.NMPSpeedup(big)
	if latB <= latS {
		t.Fatalf("more pooling should mean more NMP gain: %v vs %v", latS, latB)
	}
}

func TestNMPMoreRanksFaster(t *testing.T) {
	w := GatherWork{Tables: 8, LookupsPer: 32, EmbDim: 64, Batch: 16}
	c1 := DefaultNMP()
	c1.Ranks = 1
	c8 := DefaultNMP()
	c8.Ranks = 8
	if c8.NMPGatherCost(w).Latency >= c1.NMPGatherCost(w).Latency {
		t.Fatal("more ranks must reduce internal gather time")
	}
	// Baseline is rank-independent.
	if c8.BaselineGatherCost(w).Latency != c1.BaselineGatherCost(w).Latency {
		t.Fatal("baseline must not depend on rank count")
	}
}

func TestNMPChannelTrafficAccounting(t *testing.T) {
	c := DefaultNMP()
	w := GatherWork{Tables: 4, LookupsPer: 8, EmbDim: 16, Batch: 2}
	base := c.BaselineGatherCost(w)
	nmp := c.NMPGatherCost(w)
	if base.Ops["channel.bytes"] != int64(4*8*2*16*4) {
		t.Fatalf("baseline channel bytes %d", base.Ops["channel.bytes"])
	}
	if nmp.Ops["channel.bytes"] != int64(4*2*16*4) {
		t.Fatalf("NMP channel bytes %d", nmp.Ops["channel.bytes"])
	}
}
