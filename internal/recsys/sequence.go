package recsys

import (
	"math"

	"repro/internal/perfmodel"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// InterestModule models a user's interaction history with attention, the
// §V-B "emerging recommendation models [that] rely on explicitly modeling
// sequences of user interactions and interests with RNNs and attention"
// (deep-interest-network style): the candidate item's embedding queries the
// history embeddings, and the attention-pooled history becomes an extra
// interaction feature.
type InterestModule struct {
	Dim  int
	Beta float64 // attention temperature
}

// NewInterestModule builds the attention pooler for Dim-wide embeddings.
func NewInterestModule(dim int, beta float64) *InterestModule {
	return &InterestModule{Dim: dim, Beta: beta}
}

// Pool computes softmax(β·⟨candidate, hᵢ⟩)-weighted sum of the history
// embeddings, plus the attention weights for inspection.
func (m *InterestModule) Pool(candidate tensor.Vector, history []tensor.Vector) (tensor.Vector, tensor.Vector) {
	if len(history) == 0 {
		return tensor.NewVector(m.Dim), nil
	}
	logits := make(tensor.Vector, len(history))
	for i, h := range history {
		logits[i] = tensor.Dot(candidate, h) / math.Sqrt(float64(m.Dim))
	}
	attn := tensor.SoftmaxT(logits, m.Beta)
	out := tensor.NewVector(m.Dim)
	for i, h := range history {
		out.AXPY(attn[i], h)
	}
	return out, attn
}

// FLOPs reports the compute of one pooling over a history of length n.
func (m *InterestModule) FLOPs(n int) float64 {
	// n dot products + softmax + weighted sum.
	return float64(n)*(2*float64(m.Dim)) + 4*float64(n) + float64(n)*2*float64(m.Dim)
}

// Bytes reports the memory traffic of one pooling (history gather).
func (m *InterestModule) Bytes(n int) float64 { return float64(n) * float64(m.Dim) * 4 }

// RMCSeq is the sequence-interest configuration: an RM-embed-like model
// whose per-sample work additionally includes attention over a user-history
// window. HistoryLen history items are gathered per inference.
type SeqConfig struct {
	Config
	HistoryLen int
}

// RMCSeq returns the sequence-interest variant of §V-B.
func RMCSeq() SeqConfig {
	c := RMCEmbed()
	c.Name = "rm-seq"
	return SeqConfig{Config: c, HistoryLen: 64}
}

// SeqProfile extends the operator profile with the attention-pooling op.
func SeqProfile(cfg SeqConfig, batch int, r perfmodel.Roofline) []OpProfile {
	base := Profile(cfg.Config, batch, r)
	m := NewInterestModule(cfg.EmbDim, 1)
	flops := m.FLOPs(cfg.HistoryLen) * float64(batch)
	bytes := m.Bytes(cfg.HistoryLen) * float64(batch)
	return append(base, newOp("interest-attn", flops, bytes, r))
}

// SyntheticHistory draws a user history of embeddings biased toward a taste
// direction, plus a matching (positive) and a random (negative) candidate —
// a self-contained demonstration that attention pooling ranks the matching
// candidate higher.
func SyntheticHistory(dim, n int, rng *rngutil.Source) (history []tensor.Vector, taste tensor.Vector) {
	taste = make(tensor.Vector, dim)
	for i := range taste {
		taste[i] = rng.NormFloat64()
	}
	norm := taste.Norm2()
	if norm > 0 {
		taste.Scale(1 / norm)
	}
	for k := 0; k < n; k++ {
		h := make(tensor.Vector, dim)
		for i := range h {
			h[i] = 0.8*taste[i] + 0.6*rng.NormFloat64()
		}
		history = append(history, h)
	}
	return history, taste
}
