// Package rngutil provides deterministic, splittable random-number streams.
//
// Every experiment in this repository is seeded, and sub-components derive
// independent streams from a parent seed so that changing the amount of
// randomness consumed by one component does not perturb another. This is the
// property that makes the benchmark tables reproducible run-to-run.
package rngutil

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic random stream with the ability to derive
// independent child streams by name.
type Source struct {
	seed uint64
	*rand.Rand
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{seed: seed, Rand: rand.New(rand.NewSource(int64(seed)))}
}

// Child derives an independent stream from this source's seed and a label.
// Children with distinct labels produce uncorrelated streams; the same
// (seed, label) pair always produces the same stream.
func (s *Source) Child(label string) *Source {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(s.seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// Seed reports the seed this source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Bernoulli reports true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Normal(mean, std float64) float64 {
	return mean + std*s.NormFloat64()
}

// Uniform returns a uniformly distributed value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}
