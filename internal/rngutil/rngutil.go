// Package rngutil provides deterministic, splittable random-number streams.
//
// Every experiment in this repository is seeded, and sub-components derive
// independent streams from a parent seed so that changing the amount of
// randomness consumed by one component does not perturb another. This is the
// property that makes the benchmark tables reproducible run-to-run.
//
// Streams are also *checkpointable*: every Source counts the values it has
// drawn, so its exact position is the pair (seed, draws). State captures it
// and FromState rebuilds a stream at the identical position by fast-forward,
// which is what lets a crash-recovered training run continue bit-identically
// with an uninterrupted one (package ckpt).
package rngutil

import (
	"hash/fnv"
	"math/rand"
)

// countingSource wraps the standard generator and counts how many values
// have been drawn. Both Int63 and Uint64 advance the underlying generator by
// exactly one step, so the count alone pins the stream position.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// Source is a deterministic random stream with the ability to derive
// independent child streams by name.
type Source struct {
	seed uint64
	cnt  *countingSource
	*rand.Rand
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	cnt := &countingSource{src: rand.NewSource(int64(seed)).(rand.Source64)}
	return &Source{seed: seed, cnt: cnt, Rand: rand.New(cnt)}
}

// State is the exact position of a Source: the seed it was created with and
// the number of values drawn since. It is plain data, safe to serialize.
type State struct {
	Seed  uint64
	Draws uint64
}

// State captures the stream's current position.
func (s *Source) State() State { return State{Seed: s.seed, Draws: s.cnt.n} }

// FromState rebuilds a Source at exactly the captured position: the stream
// it returns produces the same values the original would have produced next.
// Restoring is O(Draws) — the generator is replayed — but each step is a few
// nanoseconds, so even multi-epoch training positions restore in well under
// a second.
func FromState(st State) *Source {
	s := New(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.cnt.src.Uint64()
	}
	s.cnt.n = st.Draws
	return s
}

// Child derives an independent stream from this source's seed and a label.
// Children with distinct labels produce uncorrelated streams; the same
// (seed, label) pair always produces the same stream.
func (s *Source) Child(label string) *Source {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(s.seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// Sub derives an independent stream keyed by integers instead of a string
// label. The derived stream depends only on (seed, keys), never on how many
// values the parent has drawn, so tile-parallel code can derive per-(op,
// tile) streams that are identical at any worker count and across
// checkpoint resume. Sub and Child occupy disjoint key spaces: a Sub stream
// never collides with a Child stream of the same parent. Sub allocates a
// fresh Source; hot paths that reuse stream objects call SubInto instead.
func (s *Source) Sub(keys ...uint64) *Source {
	return New(s.subSeed(keys...))
}

// SubInto repositions dst at the start of the stream Sub(keys...) would
// return, reusing dst's existing allocations — the alloc-free derivation
// used by per-tile buffer arenas. dst behaves exactly like a fresh
// s.Sub(keys...) afterwards (same values, same State accounting).
func (s *Source) SubInto(dst *Source, keys ...uint64) {
	dst.Reseed(s.subSeed(keys...))
}

// subSeed computes the derived seed of the integer-keyed stream space:
// FNV-1a over the parent seed and the keys, with a domain-separation tag so
// Sub(k...) cannot collide with Child(label).
func (s *Source) subSeed(keys ...uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= 1099511628211
		}
	}
	mix(s.seed)
	h ^= uint64('#') // domain tag: integer-keyed space
	h *= 1099511628211
	for _, k := range keys {
		mix(k)
	}
	return h
}

// Reseed repositions s at the start of the stream for seed, reusing every
// existing allocation — the alloc-free twin of New(seed). The generator
// state, draw counter, and seed all match a freshly constructed Source.
func (s *Source) Reseed(seed uint64) {
	s.seed = seed
	// Rand.Seed resets the generator and the Rand's cached Read state; the
	// draw counter is ours to reset (countingSource.Seed leaves it alone).
	s.Rand.Seed(int64(seed))
	s.cnt.n = 0
}

// Seed reports the seed this source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Bernoulli reports true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Normal(mean, std float64) float64 {
	return mean + std*s.NormFloat64()
}

// Uniform returns a uniformly distributed value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}
