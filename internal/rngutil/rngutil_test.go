package rngutil

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestChildIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Child("weights")
	c2 := root.Child("noise")
	// Distinct labels should give distinct streams.
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("child streams look identical (%d/50 equal draws)", same)
	}
	// Same label from same seed must reproduce.
	d1 := New(7).Child("weights")
	d2 := New(7).Child("weights")
	for i := 0; i < 50; i++ {
		if d1.Float64() != d2.Float64() {
			t.Fatal("same (seed,label) must reproduce")
		}
	}
}

func TestChildDoesNotConsumeParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Child("x") // deriving a child must not advance the parent stream
	if a.Float64() != b.Float64() {
		t.Fatal("Child must not consume parent stream state")
	}
}

// TestSubKeyedStreams pins the properties tile-parallel execution relies
// on: Sub streams are reproducible from (seed, keys) alone, distinct keys
// give distinct streams, deriving consumes nothing from the parent, and the
// parent's draw position is irrelevant to what a Sub stream yields.
func TestSubKeyedStreams(t *testing.T) {
	a := New(7).Sub(3, 1)
	b := New(7).Sub(3, 1)
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed,keys) must reproduce")
		}
	}
	c1 := New(7).Sub(3, 1)
	c2 := New(7).Sub(3, 2)
	c3 := New(7).Sub(4, 1)
	same12, same13 := 0, 0
	for i := 0; i < 50; i++ {
		v1 := c1.Float64()
		if v1 == c2.Float64() {
			same12++
		}
		if v1 == c3.Float64() {
			same13++
		}
	}
	if same12 > 5 || same13 > 5 {
		t.Fatalf("Sub streams with distinct keys look identical (%d,%d /50)", same12, same13)
	}

	p := New(9)
	q := New(9)
	_ = p.Sub(1, 2) // deriving must not advance the parent
	if p.Float64() != q.Float64() {
		t.Fatal("Sub must not consume parent stream state")
	}
	// Parent position must not influence the derived stream (resume safety).
	drained := New(11)
	for i := 0; i < 123; i++ {
		drained.Float64()
	}
	if drained.Sub(5).Float64() != New(11).Sub(5).Float64() {
		t.Fatal("Sub stream must depend only on (seed, keys), not parent position")
	}
}

// TestSubChildDisjoint guards the domain separation between the string- and
// integer-keyed derivation spaces.
func TestSubChildDisjoint(t *testing.T) {
	root := New(21)
	sub := root.Sub(0)
	for _, label := range []string{"", "0", "array", "tile0"} {
		child := New(21).Child(label)
		if child.Seed() == sub.Seed() {
			t.Fatalf("Sub(0) collides with Child(%q)", label)
		}
	}
}

func TestSeed(t *testing.T) {
	if New(123).Seed() != 123 {
		t.Fatal("Seed() should report construction seed")
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 20; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) must be false")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) must be true")
		}
		if s.Bernoulli(-0.5) || !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli must clamp")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(11)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := s.Normal(2, 3)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-2) > 0.1 {
		t.Errorf("mean = %v, want ~2", mean)
	}
	if math.Abs(std-3) > 0.1 {
		t.Errorf("std = %v, want ~3", std)
	}
}

// TestStateRoundTrip is the checkpointing property: a stream restored via
// FromState must continue exactly where the original left off, across every
// draw kind the repository uses (each consumes a different number of
// underlying values per call — Normal rejection-samples, Shuffle draws
// bounded ints — so this also pins the draw counting).
func TestStateRoundTrip(t *testing.T) {
	s := New(23)
	// Consume a messy mix of draws.
	perm := make([]int, 17)
	for i := 0; i < 500; i++ {
		s.Float64()
		s.Normal(0, 2)
		s.Intn(91)
		s.Bernoulli(0.37)
		if i%50 == 0 {
			s.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		}
	}
	r := FromState(s.State())
	for i := 0; i < 200; i++ {
		if a, b := s.Float64(), r.Float64(); a != b {
			t.Fatalf("draw %d: restored stream diverged (%v vs %v)", i, a, b)
		}
		if a, b := s.NormFloat64(), r.NormFloat64(); a != b {
			t.Fatalf("draw %d: restored normal diverged (%v vs %v)", i, a, b)
		}
	}
}

// TestStateOfFreshSource pins the trivial cases: zero draws restores to the
// start of the stream, and State is stable under capture-without-drawing.
func TestStateOfFreshSource(t *testing.T) {
	s := New(5)
	st := s.State()
	if st.Seed != 5 || st.Draws != 0 {
		t.Fatalf("fresh state = %+v, want {5 0}", st)
	}
	if FromState(st).Float64() != New(5).Float64() {
		t.Fatal("zero-draw restore must equal a fresh stream")
	}
}

// TestCountingDoesNotPerturbStream guards the seed-compatibility invariant:
// the counting wrapper must produce the identical value sequence the
// pre-checkpointing implementation produced, or every pinned table in the
// repository would silently shift.
func TestCountingDoesNotPerturbStream(t *testing.T) {
	want := []uint64{New(1).Uint64(), New(1).Child("x").Uint64()}
	got := []uint64{New(1).Uint64(), New(1).Child("x").Uint64()}
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(-2, 5)
		if x < -2 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

// TestSubIntoMatchesSub pins the alloc-free derivation contract: after
// SubInto, the destination behaves exactly like a fresh Sub(keys...) —
// same values, same seed, same State accounting — regardless of where the
// destination stream was positioned before.
func TestSubIntoMatchesSub(t *testing.T) {
	parent := New(31)
	dst := New(999)
	for i := 0; i < 17; i++ { // position dst mid-stream before reuse
		dst.Float64()
	}
	for _, keys := range [][]uint64{{0}, {1, 0}, {7, 42}, {1 << 40, 3}} {
		want := parent.Sub(keys...)
		parent.SubInto(dst, keys...)
		if dst.Seed() != want.Seed() {
			t.Fatalf("keys %v: SubInto seed %d, want %d", keys, dst.Seed(), want.Seed())
		}
		if dst.State() != want.State() {
			t.Fatalf("keys %v: SubInto state %+v, want %+v", keys, dst.State(), want.State())
		}
		for i := 0; i < 40; i++ {
			if dst.NormFloat64() != want.NormFloat64() || dst.Float64() != want.Float64() {
				t.Fatalf("keys %v: SubInto stream diverged from Sub at draw %d", keys, i)
			}
		}
		if dst.State() != want.State() {
			t.Fatalf("keys %v: draw accounting diverged: %+v vs %+v", keys, dst.State(), want.State())
		}
	}
}

// TestReseedMatchesNew pins Reseed as the alloc-free twin of New: values,
// seed, and checkpoint state all match a freshly constructed source, even
// when the reused source had cached normal-draw state.
func TestReseedMatchesNew(t *testing.T) {
	s := New(5)
	for i := 0; i < 9; i++ {
		s.NormFloat64() // populate cached generator state worth resetting
	}
	s.Reseed(77)
	want := New(77)
	if s.Seed() != 77 || s.State() != want.State() {
		t.Fatalf("Reseed state %+v, want %+v", s.State(), want.State())
	}
	for i := 0; i < 50; i++ {
		if s.NormFloat64() != want.NormFloat64() {
			t.Fatalf("Reseed stream diverged from New at draw %d", i)
		}
	}
}

// TestSubIntoAllocFree is the property the per-tile update arenas rely on:
// deriving a substream into an existing Source allocates nothing.
func TestSubIntoAllocFree(t *testing.T) {
	parent := New(3)
	dst := New(0)
	keys := [2]uint64{9, 4}
	if got := testing.AllocsPerRun(100, func() {
		parent.SubInto(dst, keys[0], keys[1])
		dst.Float64()
	}); got > 0 {
		t.Fatalf("SubInto: %.1f allocs/op, want 0", got)
	}
}
