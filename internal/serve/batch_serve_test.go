package serve

import (
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// TestServiceDoCloseShutdownRace is the shutdown-hang regression test: Do
// used to check closed only before enqueueing, so a request slipped into
// the queue after Close's one-shot drain was never answered and its caller
// blocked on <-req.done forever. With the post-enqueue re-check every Do
// racing Close must return — served or ErrClosed — within the watchdog.
func TestServiceDoCloseShutdownRace(t *testing.T) {
	vec := tensor.Vector{1, 0}
	pol := PolicyNone()
	pol.Deadline = 10
	watchdog := time.After(60 * time.Second)
	for iter := 0; iter < 150; iter++ {
		pipe := &stubPipe{infer: func() (tensor.Vector, bool) { return vec.Clone(), true }}
		svc := NewService(pol, []*Replica{NewReplica(0, pipe, pol)}, nil, 1)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 3; i++ {
					if _, err := svc.Do(vec); err == ErrClosed {
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			svc.Close()
		}()
		close(start)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-watchdog:
			t.Fatal("a Do blocked forever across Close — the post-enqueue closed re-check is broken")
		}
	}
}

// TestPickRotationOverflow is the rotation-counter regression test: pick
// used to compute int(rr.Add(1)) % n, which goes negative — and indexes out
// of range — once the uint64 counter maps to a negative int (wrap-around,
// or any count past 2³¹ on 32-bit platforms). Seeded at the wrap points,
// pick must keep returning in-rotation replicas.
func TestPickRotationOverflow(t *testing.T) {
	vec := tensor.Vector{1}
	pol := PolicyNone()
	var reps []*Replica
	for i := 0; i < 3; i++ {
		pipe := &stubPipe{infer: func() (tensor.Vector, bool) { return vec.Clone(), true }}
		reps = append(reps, NewReplica(i, pipe, pol))
	}
	svc := NewService(pol, reps, nil, 1)
	defer svc.Close()
	for _, seed := range []uint64{math.MaxUint64 - 2, math.MaxInt64 - 1, math.MaxInt64} {
		svc.rr.Store(seed)
		for i := 0; i < 5; i++ {
			r := svc.pick(nil)
			if r == nil {
				t.Fatalf("pick returned nil from a healthy pool at rr seed %d", seed)
			}
			if r.ID < 0 || r.ID >= len(reps) {
				t.Fatalf("pick returned out-of-pool replica %d at rr seed %d", r.ID, seed)
			}
		}
	}
}

// TestServiceBatchDropsExpiredFromBlock choreographs a mixed coalesced
// block on the Manual clock: a plug request holds the single worker (and
// the replica mutex) while five requests queue behind it with staggered
// deadlines; by the time the worker gathers them, three have expired in
// the queue. Those must be dropped from the block before dispatch —
// counted expired, answered ErrDeadline, never served — while the two
// still-live members are served through one coalesced dispatch.
func TestServiceBatchDropsExpiredFromBlock(t *testing.T) {
	pol := PolicyNone()
	pol.Deadline = 10
	pol.BatchMax = 8
	vec := tensor.Vector{0, 1}
	var calls atomic.Int32
	blocked := make(chan struct{})
	release := make(chan struct{})
	pipe := &stubPipe{infer: func() (tensor.Vector, bool) {
		if calls.Add(1) == 1 {
			close(blocked)
			<-release
		}
		return vec.Clone(), true
	}}
	svc := NewService(pol, []*Replica{NewReplica(0, pipe, pol)}, nil, 1)
	defer svc.Close()
	clk := obs.NewManual(time.Unix(0, 0))
	svc.SetClock(clk)

	do := func(ch chan error) {
		go func() {
			_, err := svc.Do(tensor.Vector{0})
			ch <- err
		}()
	}

	// The plug dispatches immediately (empty queue) and blocks inside its
	// inference, holding both the worker and the replica mutex.
	plugCh := make(chan error, 1)
	do(plugCh)
	select {
	case <-blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("plug request never dispatched")
	}

	// Three requests queue at t=0 (deadline t=10) ...
	staleCh := make(chan error, 3)
	for i := 0; i < 3; i++ {
		do(staleCh)
	}
	waitUntil(t, func() bool { return len(svc.queue) == 3 })
	// ... and two more at t=5 (deadline t=15).
	clk.Advance(5 * time.Second)
	liveCh := make(chan error, 2)
	for i := 0; i < 2; i++ {
		do(liveCh)
	}
	waitUntil(t, func() bool { return len(svc.queue) == 5 })

	// t=11: the plug's deadline fires (it expires), the worker gathers the
	// whole backlog, and the first three members are stale.
	clk.Advance(6 * time.Second)
	select {
	case err := <-plugCh:
		if err != ErrDeadline {
			t.Fatalf("plug request: err = %v, want ErrDeadline", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("plug request never returned after its deadline fired")
	}
	close(release) // free the replica mutex for the batched dispatch

	for i := 0; i < 3; i++ {
		select {
		case err := <-staleCh:
			if err != ErrDeadline {
				t.Fatalf("stale member %d: err = %v, want ErrDeadline", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("stale member never answered")
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-liveCh:
			if err != nil {
				t.Fatalf("live member %d: unexpected error %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("live member never served")
		}
	}

	c := svc.Counters()
	if c.Expired != 4 {
		t.Fatalf("Expired = %d, want 4 (plug + 3 stale in queue)", c.Expired)
	}
	if c.Served != 2 {
		t.Fatalf("Served = %d, want 2", c.Served)
	}
	if c.Batches != 1 || c.Coalesced != 2 {
		t.Fatalf("Batches/Coalesced = %d/%d, want 1/2 (one block of the two live members)",
			c.Batches, c.Coalesced)
	}
}

// TestServiceBatchWaitOnInjectedClock pins two properties of the gather
// wait: it collects late arrivals into the block, and it runs on the
// service clock — 30 virtual seconds of BatchWait must cost milliseconds
// of wall time, not a real timer.
func TestServiceBatchWaitOnInjectedClock(t *testing.T) {
	pol := PolicyNone()
	pol.Deadline = 1e4
	pol.BatchMax = 3
	pol.BatchWait = 30 // lethal if this ever hits a wall-clock timer
	vec := tensor.Vector{0, 1}
	pipe := &stubPipe{infer: func() (tensor.Vector, bool) { return vec.Clone(), true }}
	svc := NewService(pol, []*Replica{NewReplica(0, pipe, pol)}, nil, 1)
	defer svc.Close()
	clk := obs.NewManual(time.Unix(0, 0))
	svc.SetClock(clk)

	t0 := time.Now()
	resCh := make(chan error, 2)
	do := func() {
		go func() {
			_, err := svc.Do(tensor.Vector{0})
			resCh <- err
		}()
	}
	// First arrival: the worker takes it and waits for companions. Second
	// arrival lands mid-wait and must join the block (the queue drains into
	// the gathering worker).
	do()
	do()
	waitUntil(t, func() bool { return len(svc.queue) == 0 })
	// Fire the wait: the worker registers its clock.After asynchronously, so
	// keep advancing virtual time until the block dispatches (the policy
	// deadline is far enough out that the extra advances cannot expire it).
	wall := time.Now().Add(10 * time.Second)
	for svc.Counters().Served < 2 && time.Now().Before(wall) {
		clk.Advance(31 * time.Second)
		time.Sleep(100 * time.Microsecond)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-resCh:
			if err != nil {
				t.Fatalf("batched request %d failed: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("batched request never served — gather wait is not on the injected clock")
		}
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("30 virtual seconds of BatchWait took %v wall time", el)
	}
	c := svc.Counters()
	if c.Batches != 1 || c.Coalesced != 2 || c.Served != 2 {
		t.Fatalf("Batches/Coalesced/Served = %d/%d/%d, want 1/2/2", c.Batches, c.Coalesced, c.Served)
	}
}

// batchSimMetrics runs one saturating single-replica simulator arm (heavy
// overload, so the queue builds and blocks coalesce) with the given
// BatchMax and returns its metrics.
func batchSimMetrics(golden *nn.MLP, train, test *dataset.Classification, bmax int) Metrics {
	pol := PolicyRetry()
	pol.BatchMax = bmax
	pipe := NewMLPPipeline(golden, train.X[:4], DefaultMLPPipelineConfig(), nil, rngutil.New(8))
	reps := []*Replica{NewReplica(0, pipe, pol)}
	var reqs []SimRequest
	for i := range test.X {
		reqs = append(reqs, SimRequest{X: test.X[i], Want: test.Y[i]})
	}
	return RunSim(SimConfig{
		Policy: pol, Lat: DefaultLatencyModel(),
		Duration: 0.3, Rate: 2500,
		Requests: reqs,
		RNG:      rngutil.New(6),
	}, reps)
}

// TestSimBatchMaxOneDegenerates pins the exact degeneracy: BatchMax=1 (and
// 0) must reproduce the unbatched simulator bit for bit — same draws, same
// dispositions, same latencies.
func TestSimBatchMaxOneDegenerates(t *testing.T) {
	golden, train, test := trainTestMLP(31)
	off := batchSimMetrics(golden, train, test, 0)
	one := batchSimMetrics(golden, train, test, 1)
	if !reflect.DeepEqual(off, one) {
		t.Fatalf("BatchMax=1 diverged from unbatched:\noff %+v\none %+v", off, one)
	}
	if off.Batches != 0 || one.Batches != 0 {
		t.Fatalf("degenerate arms recorded batches: %d / %d", off.Batches, one.Batches)
	}
}

// TestSimBatchingWorkerInvariance is the batched analogue of the
// determinism acceptance: the same batched arm must produce identical
// metrics — dispositions, batch counters, and the full latency
// distribution — at any tile-engine worker count, and its accounting must
// balance (every offered request reaches exactly one terminal
// disposition, queue-expired members included). Under saturation batching
// must also complete strictly more requests than single dispatch.
func TestSimBatchingWorkerInvariance(t *testing.T) {
	defer par.SetWorkers(0)
	golden, train, test := trainTestMLP(31)
	par.SetWorkers(1)
	w1 := batchSimMetrics(golden, train, test, 8)
	par.SetWorkers(4)
	w4 := batchSimMetrics(golden, train, test, 8)
	if !reflect.DeepEqual(w1, w4) {
		t.Fatalf("batched sim metrics differ across worker counts:\nw1 %+v\nw4 %+v", w1, w4)
	}
	if w1.Batches == 0 {
		t.Fatal("saturating load never coalesced a block")
	}
	if w1.Coalesced <= w1.Batches {
		t.Fatalf("Coalesced %d / Batches %d: blocks never held more than one request",
			w1.Coalesced, w1.Batches)
	}
	if w1.Expired == 0 {
		t.Fatal("saturating load never expired a queued request — the queue-expiry path went unexercised")
	}
	if err := w1.Check(); err != nil {
		t.Fatalf("batched arm accounting does not balance: %v", err)
	}
	off := batchSimMetrics(golden, train, test, 0)
	if err := off.Check(); err != nil {
		t.Fatalf("unbatched arm accounting does not balance: %v", err)
	}
	if w1.Completed <= off.Completed {
		t.Fatalf("batched arm completed %d ≤ unbatched %d under saturation — coalescing bought nothing",
			w1.Completed, off.Completed)
	}
}
