package serve

import (
	"fmt"
	"io"

	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rngutil"
	"repro/internal/tensor"
	"repro/internal/xmann"
)

// CampaignConfig parameterizes experiment R2: open-loop Poisson load
// against a replicated analog pipeline under progressive fault injection,
// compared across serving policies. Bit-reproducible in (config, Seed).
type CampaignConfig struct {
	Seed  uint64
	Quick bool
	// Replicas is the tile-group pool size.
	Replicas int
	// Levels are the fault-intensity multipliers swept (0 = fault-free).
	Levels []float64
	// Duration (virtual seconds) and Rate (requests/s) shape the load.
	Duration float64
	Rate     float64
	Lat      LatencyModel
	// Policies are the arms; every arm faces a cloned fault schedule and
	// the same arrival/latency draws (common random numbers).
	Policies []Policy
	// Obs and Tracer, when non-nil, are threaded into every arm's SimConfig;
	// both are fed from virtual time only, keeping dumps deterministic.
	Obs    *obs.Registry
	Tracer *obs.Tracer
}

// DefaultCampaignConfig returns the R2 configuration.
func DefaultCampaignConfig(seed uint64, quick bool) CampaignConfig {
	c := CampaignConfig{
		Seed:     seed,
		Quick:    quick,
		Replicas: 3,
		Levels:   []float64{0, 0.5, 1, 2},
		Duration: 3.0,
		Rate:     600,
		Lat:      DefaultLatencyModel(),
		Policies: []Policy{PolicyNone(), PolicyRetry(), PolicyFull()},
	}
	if quick {
		c.Levels = []float64{0, 1, 2}
		c.Duration = 1.0
		c.Rate = 300
	}
	return c
}

// WithBatch returns a copy of cfg with dynamic request batching enabled on
// every policy arm: each dispatch coalesces up to max queued requests into
// one batched read. max <= 1 returns cfg unchanged (the unbatched
// campaign, bit for bit).
func (cfg CampaignConfig) WithBatch(max int) CampaignConfig {
	if max <= 1 {
		return cfg
	}
	pols := make([]Policy, len(cfg.Policies))
	for i, p := range cfg.Policies {
		p.BatchMax = max
		pols[i] = p
	}
	cfg.Policies = pols
	return cfg
}

// planAt scales the R2 fault processes by the level multiplier for a
// typical replica. The mix is chosen so every remediation layer has work:
// read upsets feed the verify-retry path, mild progressive stuck-at and
// drift bursts feed the canary/recalibration loop, write failures tax
// recalibration itself.
func planAt(level float64) faults.Plan {
	if level <= 0 {
		return faults.Plan{}
	}
	return faults.Plan{
		StuckPerOp:      0.004 * level,
		StuckValueStd:   0.6,
		ReadUpset:       0.004 * level,
		UpsetMag:        1.8,
		WriteFail:       0.04 * level,
		LineOpenPerOp:   0.0003 * level,
		DriftBurstEvery: 150,
		DriftBurstDt:    6 * level,
	}
}

// lemonPlanAt is the fault corner of the pool's worst tile group: the same
// transient environment as planAt but an order of magnitude more
// progressive stuck-at damage and line opens. Real deployments see exactly
// this process spread across tile groups; the serving question R2 asks is
// whether the runtime notices the lemon and routes around it, or keeps
// handing it a third of the traffic.
func lemonPlanAt(level float64) faults.Plan {
	p := planAt(level)
	if level <= 0 {
		return p
	}
	p.StuckPerOp = 0.08 * level
	p.StuckValueStd = 0.8
	p.LineOpenPerOp = 0.012 * level
	return p
}

// campaignEngines derives one base fault engine per replica for a level;
// replica 0 is the lemon. Arms clone them, so every arm's replica i
// replays the identical fault schedule.
func campaignEngines(cfg CampaignConfig, levelIdx int, level float64) []*faults.Engine {
	var bases []*faults.Engine
	for r := 0; r < cfg.Replicas; r++ {
		plan := planAt(level)
		if r == 0 {
			plan = lemonPlanAt(level)
		}
		bases = append(bases, faults.NewEngine(plan,
			rngutil.New(cfg.Seed+7919*uint64(levelIdx+1)+31*uint64(r))))
	}
	return bases
}

// MLPCampaign runs R2 against the analog digits MLP: a digitally trained
// golden network served from PCM-device replica pipelines.
func MLPCampaign(cfg CampaignConfig) []ArmResult {
	rng := rngutil.New(cfg.Seed)
	dcfg := dataset.DigitsConfig{Classes: 6, Dim: 16, PerClass: 80, Noise: 0.5, Separation: 1}
	ds := dataset.Digits(dcfg, rng.Child("data"))
	train, test := ds.Split(0.75)

	golden := nn.NewMLP([]int{dcfg.Dim, 12, dcfg.Classes}, nn.TanhAct, nn.SoftmaxAct,
		nn.DenseFactory(rng.Child("weights")))
	for epoch := 0; epoch < 8; epoch++ {
		for i := range train.X {
			golden.TrainStep(train.X[i], train.Y[i], 0.05)
		}
	}

	var reqs []SimRequest
	for i := range test.X {
		reqs = append(reqs, SimRequest{X: test.X[i], Want: test.Y[i]})
	}
	canaryX := train.X[:8]
	fallback := func(x tensor.Vector) tensor.Vector { return golden.Forward(x).Clone() }
	pcfg := DefaultMLPPipelineConfig()

	var results []ArmResult
	for li, level := range cfg.Levels {
		bases := campaignEngines(cfg, li, level)
		// Program each replica's tiles once per level under its fault engine
		// and snapshot the post-programming device + engine state; every
		// policy arm then imports the snapshot instead of re-programming by
		// pulses, so all arms face bit-identical programmed hardware with
		// their fault schedules resumed from the same stream position.
		type snapshot struct {
			arrays []crossbar.ArrayState
			engine []byte
		}
		snaps := make([]snapshot, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			eng := bases[r].Clone()
			pipe := NewMLPPipeline(golden, canaryX, pcfg, eng.Attach,
				rngutil.New(cfg.Seed+101*uint64(r)+13))
			blob, err := eng.ExportState()
			if err != nil {
				panic(err)
			}
			snaps[r] = snapshot{arrays: pipe.ExportArrayStates(), engine: blob}
		}
		for _, pol := range cfg.Policies {
			var reps []*Replica
			for r := 0; r < cfg.Replicas; r++ {
				eng := bases[r].Clone()
				pipe, err := NewMLPPipelineFromState(golden, canaryX, pcfg, snaps[r].arrays,
					eng.Attach, rngutil.New(cfg.Seed+101*uint64(r)+13))
				if err != nil {
					panic(err)
				}
				if err := eng.ImportState(snaps[r].engine); err != nil {
					panic(err)
				}
				reps = append(reps, NewReplica(r, pipe, pol))
			}
			m := RunSim(SimConfig{
				Policy:   pol,
				Lat:      cfg.Lat,
				Duration: cfg.Duration,
				Rate:     cfg.Rate,
				Requests: reqs,
				Fallback: fallback,
				RNG:      rngutil.New(cfg.Seed + 104729*uint64(li+1)),
				Obs:      cfg.Obs,
				Tracer:   cfg.Tracer,
			}, reps)
			results = append(results, ArmResult{Policy: pol.Name, Level: level, M: m})
		}
	}
	return results
}

// XMannCampaign runs R2 against the X-MANN differentiable memory: attention
// queries over a distributed memory served from transposable-tile replica
// pipelines, graded against xmann.ReferenceSimilarity.
func XMannCampaign(cfg CampaignConfig) []ArmResult {
	xcfg := DefaultXMannPipelineConfig()
	M, D, keyCount := 32, 16, 64
	if cfg.Quick {
		M, D, keyCount = 16, 8, 32
	}
	rng := rngutil.New(cfg.Seed + 5)
	mem := tensor.NewMatrix(M, D)
	mr := rng.Child("memory")
	for i := range mem.Data {
		mem.Data[i] = mr.Float64()
	}

	kr := rng.Child("keys")
	var reqs []SimRequest
	for k := 0; k < keyCount; k++ {
		key := make(tensor.Vector, D)
		for i := range key {
			key[i] = kr.Float64()
		}
		ref := xmann.ReferenceSimilarity(mem, key, xcfg.Beta)
		reqs = append(reqs, SimRequest{X: key, Want: ref.ArgMax()})
	}
	canaryK := make([]tensor.Vector, 0, 8)
	cr := rng.Child("canary")
	for k := 0; k < 8; k++ {
		key := make(tensor.Vector, D)
		for i := range key {
			key[i] = cr.Float64()
		}
		canaryK = append(canaryK, key)
	}
	fallback := func(k tensor.Vector) tensor.Vector {
		return xmann.ReferenceSimilarity(mem, k, xcfg.Beta)
	}

	var results []ArmResult
	for li, level := range cfg.Levels {
		bases := campaignEngines(cfg, li, level)
		for _, pol := range cfg.Policies {
			var reps []*Replica
			for r := 0; r < cfg.Replicas; r++ {
				eng := bases[r].Clone()
				pipe := NewXMannPipeline(mem, canaryK, xcfg, eng.Attach,
					rngutil.New(cfg.Seed+211*uint64(r)+29))
				reps = append(reps, NewReplica(r, pipe, pol))
			}
			m := RunSim(SimConfig{
				Policy:   pol,
				Lat:      cfg.Lat,
				Duration: cfg.Duration,
				Rate:     cfg.Rate,
				Requests: reqs,
				Fallback: fallback,
				RNG:      rngutil.New(cfg.Seed + 130363*uint64(li+1)),
				Obs:      cfg.Obs,
				Tracer:   cfg.Tracer,
			}, reps)
			results = append(results, ArmResult{Policy: pol.Name, Level: level, M: m})
		}
	}
	return results
}

// RunR2 renders the full R2 experiment — both pipelines' campaign tables —
// to w. This is the body the repro pipeline and cmd/serve-campaign share, so
// every caller prints byte-identical tables for one config.
func RunR2(w io.Writer, cfg CampaignConfig) error {
	fmt.Fprintf(w, "open-loop Poisson load: %.0f req/s for %.1fs virtual, %d replicas, deadline %.1fms\n",
		cfg.Rate, cfg.Duration, cfg.Replicas, cfg.Policies[0].Deadline*1e3)
	fmt.Fprintf(w, "policies: none (no remediation), retry (verify reads + backoff), self-heal (full stack)\n\n")
	fmt.Fprint(w, FormatTable("analog digits MLP (PCM devices)", MLPCampaign(cfg)))
	fmt.Fprintln(w)
	fmt.Fprint(w, FormatTable("X-MANN distributed memory", XMannCampaign(cfg)))
	return nil
}
