package serve

import (
	"sort"
	"sync"

	"repro/internal/obs"
)

// BreakerState is the three-state circuit breaker of a replica.
type BreakerState int32

// Breaker states, in order of declining trust.
const (
	// Healthy replicas take traffic first.
	Healthy BreakerState = iota
	// Degraded replicas serve only when no healthy replica is free and are
	// never chosen as hedge targets.
	Degraded
	// Quarantined replicas are out of rotation until recalibration
	// re-admits them.
	Quarantined
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	}
	return "state?"
}

// latWindow is a fixed-size ring of recent service latencies supporting
// deterministic quantile queries (sorted copy — the windows are tiny).
type latWindow struct {
	buf  []float64
	n    int // valid entries
	next int
}

func newLatWindow(size int) *latWindow { return &latWindow{buf: make([]float64, size)} }

func (w *latWindow) add(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// quantile returns the q-th latency quantile of the window by nearest rank,
// or 0 when empty. The window may have wrapped, in which case buf[:n] is the
// full ring regardless of cursor position — order doesn't matter since the
// quantile sorts anyway.
func (w *latWindow) quantile(q float64) float64 {
	if w.n == 0 {
		return 0
	}
	s := make([]float64, w.n)
	copy(s, w.buf[:w.n])
	sort.Float64s(s)
	return obs.NearestRank(s, q)
}

// Health is the per-replica accounting driving the circuit breaker:
// canary-divergence and latency EWMAs, a transient-rate EWMA from serving,
// and a latency window for the hedging quantile. It synchronizes itself so
// the concurrent Service can read state while workers and the canary
// goroutine feed it; the virtual-time simulator calls it single-threaded.
type Health struct {
	mu sync.Mutex

	state     BreakerState
	alpha     float64
	degradeAt float64
	quarAt    float64

	divEWMA   float64 // canary divergence
	transEWMA float64 // serving transient (verify-read mismatch) rate
	latEWMA   float64 // service latency, seconds
	window    *latWindow
}

// NewHealth builds the tracker for one replica under pol.
func NewHealth(pol Policy) *Health {
	alpha := pol.EWMAAlpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	degrade, quarantine := pol.DegradeThresh, pol.QuarantineThresh
	if quarantine <= 0 {
		quarantine = 2 // unreachable: breaker effectively disabled
	}
	if degrade <= 0 {
		degrade = quarantine
	}
	return &Health{
		state:     Healthy,
		alpha:     alpha,
		degradeAt: degrade,
		quarAt:    quarantine,
		window:    newLatWindow(64),
	}
}

// State reports the current breaker state.
func (h *Health) State() BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// InRotation reports whether the replica may take new requests.
func (h *Health) InRotation() bool { return h.State() != Quarantined }

// Divergence reports the canary-divergence EWMA.
func (h *Health) Divergence() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.divEWMA
}

// Latency reports the service-latency EWMA in seconds.
func (h *Health) Latency() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.latEWMA
}

// ObserveServe folds one completed serving attempt into the accounting.
func (h *Health) ObserveServe(latency float64, transient bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.latEWMA == 0 {
		h.latEWMA = latency
	} else {
		h.latEWMA = h.alpha*latency + (1-h.alpha)*h.latEWMA
	}
	t := 0.0
	if transient {
		t = 1
	}
	h.transEWMA = h.alpha*t + (1-h.alpha)*h.transEWMA
	h.window.add(latency)
}

// ObserveCanary folds one canary round's divergence fraction into the EWMA
// and applies the breaker transition, returning the resulting state. A
// quarantined replica stays quarantined: only Readmit (the recalibration
// path) brings it back.
func (h *Health) ObserveCanary(div float64) BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.divEWMA = h.alpha*div + (1-h.alpha)*h.divEWMA
	if h.state == Quarantined {
		return h.state
	}
	switch {
	case h.divEWMA >= h.quarAt:
		h.state = Quarantined
	case h.divEWMA >= h.degradeAt || h.transEWMA >= h.degradeAt:
		h.state = Degraded
	default:
		h.state = Healthy
	}
	return h.state
}

// Readmit returns a recalibrated replica to rotation, seeding the
// divergence EWMA with its fresh post-recalibration measurement.
func (h *Health) Readmit(div float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.divEWMA = div
	h.transEWMA = 0
	if div >= h.degradeAt {
		h.state = Degraded
	} else {
		h.state = Healthy
	}
}

// HedgeDelay reports how long to wait before hedging against this replica:
// the q-th quantile of its recent latencies, floored by min (used until
// the window warms up) and capped by max.
func (h *Health) HedgeDelay(q, min, max float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	d := h.window.quantile(q)
	if d < min {
		d = min
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}
