package serve

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Metrics is the per-arm accounting of one campaign run. Counters are in
// requests unless noted.
type Metrics struct {
	// Offered is the total arrival count; Shed were rejected at a full
	// queue; Expired missed their deadline before completing (in queue or
	// mid-retry); Late completed after their deadline; Unavailable found no
	// replica and no fallback.
	Offered, Shed, Expired, Late, Unavailable int
	// Completed requests returned a result; Correct of those matched the
	// digital reference label; Good completed on time AND correct.
	Completed, Correct, Good int
	// Remediation activity. Readmits counts quarantined replicas returned
	// to rotation after a clean post-recalibration canary.
	Retries, Hedges, Recals, Fallbacks, Quarantines, Readmits int
	// Batches counts coalesced blocks dispatched (batching arms only);
	// Coalesced the requests those blocks carried. Both stay zero with
	// batching off and neither is a request disposition.
	Batches, Coalesced int

	latencies []float64 // completion latencies, seconds
}

// Check verifies the terminal-disposition accounting: every offered
// request must end in exactly one of completed, shed, expired, or
// unavailable (Late is a subset of Completed), mirroring the fleet
// simulator's cluster.Metrics.Check discipline.
func (m *Metrics) Check() error {
	terminals := m.Completed + m.Shed + m.Expired + m.Unavailable
	if terminals != m.Offered {
		return fmt.Errorf("serve: %d offered requests but %d terminal dispositions", m.Offered, terminals)
	}
	return nil
}

// Goodput is the fraction of offered requests answered on time and
// correctly — the headline number of R2.
func (m *Metrics) Goodput() float64 {
	if m.Offered == 0 {
		return 0
	}
	return float64(m.Good) / float64(m.Offered)
}

// Accuracy is the fraction of completed requests answered correctly.
func (m *Metrics) Accuracy() float64 {
	if m.Completed == 0 {
		return 0
	}
	return float64(m.Correct) / float64(m.Completed)
}

// MissRate is the fraction of offered requests that missed their deadline
// one way or another: shed, expired, completed late, or unservable.
func (m *Metrics) MissRate() float64 {
	if m.Offered == 0 {
		return 0
	}
	return float64(m.Shed+m.Expired+m.Late+m.Unavailable) / float64(m.Offered)
}

// LatencyQuantile reports the q-th completion-latency quantile in seconds by
// nearest rank (0 when nothing completed).
func (m *Metrics) LatencyQuantile(q float64) float64 {
	return obs.Quantile(m.latencies, q)
}

// ArmResult is one (policy, fault level) cell of the campaign table.
type ArmResult struct {
	Policy string
	Level  float64
	M      Metrics
}

// FormatTable renders one pipeline's campaign results as the fixed-width
// deterministic table the R2 acceptance criterion pins: goodput, latency
// quantiles, deadline-miss rate, and accuracy-under-fire for every arm at
// every fault level.
func FormatTable(title string, results []ArmResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-10s %6s %9s %9s %9s %9s %9s %6s %6s %6s %6s %6s\n",
		"policy", "level", "goodput", "p50ms", "p99ms", "miss", "acc",
		"retry", "hedge", "quar", "recal", "fback")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %6.2f %9.4f %9.3f %9.3f %9.4f %9.4f %6d %6d %6d %6d %6d\n",
			r.Policy, r.Level,
			r.M.Goodput(),
			r.M.LatencyQuantile(0.50)*1e3,
			r.M.LatencyQuantile(0.99)*1e3,
			r.M.MissRate(),
			r.M.Accuracy(),
			r.M.Retries, r.M.Hedges, r.M.Quarantines, r.M.Recals, r.M.Fallbacks)
	}
	return b.String()
}
