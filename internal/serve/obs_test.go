package serve

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

func TestLatWindowQuantileEdges(t *testing.T) {
	w := newLatWindow(4)
	if got := w.quantile(0.5); got != 0 {
		t.Fatalf("empty window quantile = %v, want 0", got)
	}

	w.add(7) // n = 1: every quantile is the one sample
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := w.quantile(q); got != 7 {
			t.Fatalf("single-sample quantile(%v) = %v, want 7", q, got)
		}
	}

	w.add(3)
	w.add(9)
	w.add(1) // window exactly full, cursor wrapped to 0, no eviction yet
	if got := w.quantile(0); got != 1 {
		t.Fatalf("full-window min = %v, want 1", got)
	}
	if got := w.quantile(1); got != 9 {
		t.Fatalf("full-window max = %v, want 9", got)
	}
	if got := w.quantile(0.5); got != 3 { // nearest rank: ceil(0.5*4)=2nd of {1,3,7,9}
		t.Fatalf("full-window p50 = %v, want 3", got)
	}
}

func TestLatWindowWraparound(t *testing.T) {
	w := newLatWindow(4)
	for i := 1; i <= 10; i++ { // retained after wrap: {7, 8, 9, 10}
		w.add(float64(i))
	}
	if w.n != 4 {
		t.Fatalf("window n = %d, want 4", w.n)
	}
	if got := w.quantile(0); got != 7 {
		t.Fatalf("post-wrap min = %v, want 7 (oldest retained)", got)
	}
	if got := w.quantile(1); got != 10 {
		t.Fatalf("post-wrap max = %v, want 10", got)
	}
	if got := w.quantile(0.75); got != 9 { // ceil(0.75*4)=3rd of {7,8,9,10}
		t.Fatalf("post-wrap p75 = %v, want 9", got)
	}
	// Quantiles must not depend on where the ring cursor happens to sit.
	w2 := newLatWindow(4)
	for _, v := range []float64{10, 7, 9, 8} {
		w2.add(v)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if a, b := w.quantile(q), w2.quantile(q); a != b {
			t.Fatalf("quantile(%v) depends on insertion order: %v vs %v", q, a, b)
		}
	}
}

func TestMetricsLatencyQuantileNearestRank(t *testing.T) {
	m := Metrics{latencies: []float64{0.004, 0.001, 0.003, 0.002}}
	if got := m.LatencyQuantile(0.5); got != 0.002 { // ceil(0.5*4)=2nd
		t.Fatalf("p50 = %v, want 0.002", got)
	}
	if got := m.LatencyQuantile(1); got != 0.004 {
		t.Fatalf("p100 = %v, want 0.004", got)
	}
	if got := (&Metrics{}).LatencyQuantile(0.99); got != 0 {
		t.Fatalf("empty metrics quantile = %v, want 0", got)
	}
}

// TestGoldenMetricsDump pins the exact stable /metrics dump of a seeded
// simulation campaign: the same bytes CI diffs across -workers values must
// also be stable across commits unless the simulator's behavior
// intentionally changes (then: go test ./internal/serve -run Golden -update).
func TestGoldenMetricsDump(t *testing.T) {
	cfg := testCampaignConfig()
	cfg.Obs = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(0)
	MLPCampaign(cfg)

	var b strings.Builder
	cfg.Obs.WriteStable(&b)
	got := b.String()
	if !strings.Contains(got, "serve_sim_offered_total") {
		t.Fatalf("dump is missing the sim counters:\n%s", got)
	}
	if spans := cfg.Tracer.Snapshot(); len(spans) == 0 {
		t.Fatal("seeded sim produced no trace spans")
	}

	golden := filepath.Join("testdata", "golden_metrics.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("stable metrics dump drifted from golden (regenerate with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSimObsDumpWorkerIndependence is the in-test twin of the CI obs-smoke
// diff: the stable dump must not change with scheduling, which the golden
// test can't see because it runs at one worker count.
func TestSimObsDumpWorkerIndependence(t *testing.T) {
	run := func() string {
		cfg := testCampaignConfig()
		cfg.Obs = obs.NewRegistry()
		MLPCampaign(cfg)
		var b strings.Builder
		cfg.Obs.WriteStable(&b)
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("stable dumps differ between runs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}
