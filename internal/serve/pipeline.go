package serve

import (
	"fmt"
	"math"

	"repro/internal/crossbar"
	"repro/internal/faults"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// Pipeline is one replica's inference hardware: a replicated tile group
// holding a copy of the served model's golden weights, plus the
// maintenance operations the self-healing runtime needs. Implementations
// are NOT safe for concurrent use — the owning Replica serializes access
// (the crossbar single-writer contract).
type Pipeline interface {
	// Infer runs one inference. With verify set it reads twice (temporal
	// redundancy) and reports ok=false when the two reads diverge — the
	// signature of a transient upset rather than a persistent fault.
	Infer(x tensor.Vector, verify bool) (y tensor.Vector, ok bool)
	// CanaryDivergence replays the golden canary vectors and returns the
	// fraction whose outputs diverged from the known digital references.
	CanaryDivergence() float64
	// Recalibrate re-programs the replica from its golden weights
	// (write-verify retry, plus detect/remap where spares exist) and
	// reports the cost.
	Recalibrate() RecalStats
}

// BatchPipeline is the optional batched-read extension of Pipeline: one
// call serves a whole coalesced block of inferences with per-sample verify
// verdicts, equivalent to calling Infer on each input in order but paying
// the periphery/dispatch cost once. Implementations get the same
// serialization guarantee as Infer (the owning Replica holds its lock for
// the whole block).
type BatchPipeline interface {
	Pipeline
	// InferBatch runs one inference per input, returning per-sample outputs
	// and verify verdicts.
	InferBatch(xs []tensor.Vector, verify bool) (ys []tensor.Vector, oks []bool)
}

// RecalStats is the cost of one background recalibration pass.
type RecalStats struct {
	// Pulses is the total write pulses issued re-programming the tiles.
	Pulses int
	// DetectReads is the array reads consumed by checksum-probe detection.
	DetectReads int
	// Remapped is the number of logical columns relocated onto spares.
	Remapped int
	// Residual is the mean post-recalibration programming residual.
	Residual float64
}

func (s *RecalStats) add(o RecalStats) {
	s.Pulses += o.Pulses
	s.DetectReads += o.DetectReads
	s.Remapped += o.Remapped
	s.Residual += o.Residual
}

// relL2 is the relative L2 distance ‖got−want‖/‖want‖ (0 when want = 0).
func relL2(got, want tensor.Vector) float64 {
	var num, den float64
	for i := range want {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// MLPPipelineConfig parameterizes one analog MLP replica.
type MLPPipelineConfig struct {
	// Model is the device technology (e.g. crossbar.PCM() for the drift
	// study); Array the periphery configuration.
	Model crossbar.Model
	Array crossbar.Config
	// Prog is the write-verify policy for programming and recalibration.
	Prog crossbar.ProgramPolicy
	// SpareCols gives each layer max(2, cols*SpareCols) redundant columns
	// for remapping; 0 keeps the default 1/4.
	SpareCols float64
	// VerifyTol is the relative-L2 divergence between the two reads of a
	// verify pair above which the result is flagged transient.
	VerifyTol float64
	// CanaryTol is the relative-L2 divergence of a canary output against
	// its digital reference above which the canary counts as diverged
	// (top-1 disagreement always counts).
	CanaryTol float64
	// Repair enables checksum-probe detection + column remapping during
	// recalibration.
	Repair bool
}

// DefaultMLPPipelineConfig returns the R2 replica configuration.
func DefaultMLPPipelineConfig() MLPPipelineConfig {
	return MLPPipelineConfig{
		Model:     crossbar.PCM(),
		Array:     crossbar.DefaultConfig(),
		Prog:      crossbar.ProgramPolicy{MaxPulses: 800, MaxRetries: 2},
		SpareCols: 0.25,
		VerifyTol: 0.05,
		CanaryTol: 0.25,
		Repair:    true,
	}
}

// MLPPipeline is an analog replica of a digitally trained MLP: every layer
// lives on a faults.RemappedArray (spare columns for remapping) programmed
// from the golden weights with write-verify retry.
type MLPPipeline struct {
	cfg     MLPPipelineConfig
	net     *nn.MLP
	arrays  []*faults.RemappedArray
	golden  []*tensor.Matrix // per-layer golden weight targets
	canaryX []tensor.Vector
	canaryY []tensor.Vector // digital reference outputs
}

// NewMLPPipeline programs one replica of golden onto fresh arrays. attach,
// if non-nil, receives each physical array before programming — the hook
// point fault campaigns use. The canary vectors' digital reference outputs
// are captured from golden before any analog hardware touches them.
func NewMLPPipeline(golden *nn.MLP, canaryX []tensor.Vector, cfg MLPPipelineConfig, attach func(*crossbar.Array), rng *rngutil.Source) *MLPPipeline {
	if cfg.SpareCols <= 0 {
		cfg.SpareCols = 0.25
	}
	p := &MLPPipeline{cfg: cfg, net: &nn.MLP{}}
	for _, x := range canaryX {
		p.canaryX = append(p.canaryX, x.Clone())
		p.canaryY = append(p.canaryY, golden.Forward(x).Clone())
	}
	for li, l := range golden.Layers {
		src := l.W.(*nn.DenseMat).M.Clone()
		spares := tensor.MaxInt(2, int(float64(l.W.Cols())*cfg.SpareCols))
		arr := faults.NewRemappedArray(l.W.Rows(), l.W.Cols(), spares, cfg.Model, cfg.Array,
			rng.Child(fmt.Sprintf("layer%d", li)))
		if attach != nil {
			attach(arr.Arr)
		}
		arr.Program(src, cfg.Prog)
		p.arrays = append(p.arrays, arr)
		p.golden = append(p.golden, src)
		p.net.Layers = append(p.net.Layers, &nn.DenseLayer{
			In: l.In, Out: l.Out, Bias: l.Bias, Act: l.Act, W: arr,
		})
	}
	return p
}

// ExportArrayStates snapshots the physical device state of every layer
// array (spare columns included), noise-free, in layer order. Taken right
// after programming — before any Repair has remapped columns — it captures
// everything a twin replica needs to serve identically.
func (p *MLPPipeline) ExportArrayStates() []crossbar.ArrayState {
	states := make([]crossbar.ArrayState, len(p.arrays))
	for i, arr := range p.arrays {
		states[i] = arr.Arr.ExportState()
	}
	return states
}

// NewMLPPipelineFromState builds a replica from a post-programming snapshot
// instead of re-programming the golden weights by pulses: the arrays are
// constructed to shape and their device state imported directly. Campaign
// arms use it so every policy faces the same programmed hardware without
// paying (or re-randomizing) thousands of write pulses per arm. The
// snapshot must come from ExportArrayStates taken before any column
// remapping (the fresh remap table is identity).
func NewMLPPipelineFromState(golden *nn.MLP, canaryX []tensor.Vector, cfg MLPPipelineConfig, states []crossbar.ArrayState, attach func(*crossbar.Array), rng *rngutil.Source) (*MLPPipeline, error) {
	if cfg.SpareCols <= 0 {
		cfg.SpareCols = 0.25
	}
	if len(states) != len(golden.Layers) {
		return nil, fmt.Errorf("serve: snapshot has %d arrays, network has %d layers", len(states), len(golden.Layers))
	}
	p := &MLPPipeline{cfg: cfg, net: &nn.MLP{}}
	for _, x := range canaryX {
		p.canaryX = append(p.canaryX, x.Clone())
		p.canaryY = append(p.canaryY, golden.Forward(x).Clone())
	}
	for li, l := range golden.Layers {
		src := l.W.(*nn.DenseMat).M.Clone()
		spares := tensor.MaxInt(2, int(float64(l.W.Cols())*cfg.SpareCols))
		arr := faults.NewRemappedArray(l.W.Rows(), l.W.Cols(), spares, cfg.Model, cfg.Array,
			rng.Child(fmt.Sprintf("layer%d", li)))
		if attach != nil {
			attach(arr.Arr)
		}
		if err := arr.Arr.ImportState(states[li]); err != nil {
			return nil, fmt.Errorf("serve: layer %d: %w", li, err)
		}
		p.arrays = append(p.arrays, arr)
		p.golden = append(p.golden, src)
		p.net.Layers = append(p.net.Layers, &nn.DenseLayer{
			In: l.In, Out: l.Out, Bias: l.Bias, Act: l.Act, W: arr,
		})
	}
	return p, nil
}

// Infer implements Pipeline.
func (p *MLPPipeline) Infer(x tensor.Vector, verify bool) (tensor.Vector, bool) {
	y := p.net.Forward(x).Clone()
	if !verify {
		return y, true
	}
	y2 := p.net.Forward(x).Clone()
	return y2, relL2(y, y2) <= p.cfg.VerifyTol
}

// InferBatch implements BatchPipeline: the block's MVMs execute as
// sample-blocked tile grids (nn.MLP.ForwardBatch → par.MatVecBatchInto),
// one grid per layer for the whole block instead of one per request, with
// Infer's verify discipline kept per sample: under verify the block is
// read twice and each sample's pair is compared individually, so a
// transient upset flags only the members it touched.
func (p *MLPPipeline) InferBatch(xs []tensor.Vector, verify bool) ([]tensor.Vector, []bool) {
	oks := make([]bool, len(xs))
	ys := p.net.ForwardBatch(xs)
	if !verify {
		for i := range oks {
			oks[i] = true
		}
		return ys, oks
	}
	ys2 := p.net.ForwardBatch(xs)
	for i := range xs {
		oks[i] = relL2(ys[i], ys2[i]) <= p.cfg.VerifyTol
	}
	return ys2, oks
}

// CanaryDivergence implements Pipeline. The canary replay runs through the
// batched MVM path — all canaries execute as one tile grid per layer —
// which is bit-identical to replaying them one at a time.
func (p *MLPPipeline) CanaryDivergence() float64 {
	if len(p.canaryX) == 0 {
		return 0
	}
	diverged := 0
	for i, y := range p.net.ForwardBatch(p.canaryX) {
		if y.ArgMax() != p.canaryY[i].ArgMax() || relL2(y, p.canaryY[i]) > p.cfg.CanaryTol {
			diverged++
		}
	}
	return float64(diverged) / float64(len(p.canaryX))
}

// Recalibrate implements Pipeline: write-verify the golden weights back
// into every layer, remap freshly dead columns onto spares (when enabled),
// and give relocated columns the same write-verify service. PCM legs that
// saturated across repeated recalibrations get the difference-preserving
// RESET first, restoring programming headroom (§II-B.1).
func (p *MLPPipeline) Recalibrate() RecalStats {
	var st RecalStats
	for li, arr := range p.arrays {
		if arr.Arr.MaxSaturation() > 0.85 {
			arr.Arr.ResetAll()
		}
		rep := arr.Program(p.golden[li], p.cfg.Prog)
		st.Pulses += rep.Pulses
		if p.cfg.Repair {
			fix := arr.Repair(p.golden[li], 0, p.cfg.Prog.MaxPulses)
			rep2 := arr.Program(p.golden[li], p.cfg.Prog)
			st.Pulses += fix.Pulses + rep2.Pulses
			st.DetectReads += fix.Diagnosis.Reads
			st.Remapped += fix.Remapped
		}
		st.Residual += arr.Residual(p.golden[li]) / float64(len(p.arrays))
	}
	return st
}

var _ BatchPipeline = (*MLPPipeline)(nil)
