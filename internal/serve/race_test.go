package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// TestReplicaReadsDuringReprogram is the single-writer-contract test: many
// goroutines hammer forward reads on a replica while another repeatedly
// reprograms it from golden. The replica mutex is the documented ownership
// handoff; under -race this proves the arrays underneath never see two
// operations at once (crossbar.Array additionally panics on overlap).
func TestReplicaReadsDuringReprogram(t *testing.T) {
	replicaReprogramHammer(t)
}

// TestReplicaReadsDuringReprogramParallelTiles re-runs the reprogram hammer
// with the tile engine forced to 8 workers, so tile goroutines are
// genuinely in flight inside every array op while ownership bounces between
// readers and the reprogrammer — the engine's goroutines must stay confined
// to the op that spawned them.
func TestReplicaReadsDuringReprogramParallelTiles(t *testing.T) {
	defer par.SetWorkers(0)
	par.SetWorkers(8)
	replicaReprogramHammer(t)
}

func replicaReprogramHammer(t *testing.T) {
	golden, train, test := trainTestMLP(41)
	eng := faults.NewEngine(faults.Plan{DriftBurstEvery: 40, DriftBurstDt: 20},
		rngutil.New(7))
	pipe := NewMLPPipeline(golden, train.X[:8], DefaultMLPPipelineConfig(), eng.Attach,
		rngutil.New(9))
	rep := NewReplica(0, pipe, PolicyFull())

	var stop atomic.Bool
	var reads atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				x := test.X[(g*31+i)%len(test.X)]
				if y, _ := rep.Infer(x, i%2 == 0); y == nil {
					t.Error("Infer returned nil during reprogram hammer")
					return
				}
				reads.Add(1)
			}
		}(g)
	}
	for i := 0; i < 15; i++ {
		rep.Recalibrate()
		rep.Canary()
	}
	stop.Store(true)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no forward reads completed during the reprogram hammer")
	}
}

// TestServiceConcurrentHammer drives the real goroutine runtime end to end
// under -race: a worker pool serving concurrent Do calls with deadlines and
// hedging while the canary prober and background recalibrator run against
// fault-injected replicas. Heavy drift forces quarantine/recalibration
// cycles, so background reprograms genuinely overlap live traffic.
func TestServiceConcurrentHammer(t *testing.T) {
	golden, train, test := trainTestMLP(51)
	pol := PolicyFull()
	pol.Deadline = 50e-3
	pol.CanaryEvery = 5e-3
	pol.RetryBackoff = 0.1e-3

	var reps []*Replica
	for r := 0; r < 3; r++ {
		plan := faults.Plan{ReadUpset: 0.002, UpsetMag: 1.5}
		if r == 0 {
			// Lemon replica: drift hard enough that the watchdog must pull
			// it and reprogram mid-run.
			plan.DriftBurstEvery = 10
			plan.DriftBurstDt = 300
		}
		eng := faults.NewEngine(plan, rngutil.New(uint64(600+r)))
		pipe := NewMLPPipeline(golden, train.X[:8], DefaultMLPPipelineConfig(), eng.Attach,
			rngutil.New(uint64(700+r)))
		reps = append(reps, NewReplica(r, pipe, pol))
	}
	svc := NewService(pol, reps, func(x tensor.Vector) tensor.Vector {
		return golden.Forward(x).Clone()
	}, 4)

	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(1500 * time.Millisecond)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				y, err := svc.Do(test.X[(g*17+i)%len(test.X)])
				if err != nil {
					failed.Add(1)
					time.Sleep(200 * time.Microsecond)
					continue
				}
				if len(y) == 0 {
					t.Error("Do returned empty vector without error")
					return
				}
				ok.Add(1)
			}
		}(g)
	}
	wg.Wait()
	svc.Close()

	c := svc.Counters()
	if ok.Load() == 0 {
		t.Fatalf("no request succeeded: %+v", c)
	}
	if c.Recals == 0 {
		t.Fatalf("watchdog never recalibrated the drifting replica: %+v", c)
	}
	if ok.Load()+failed.Load() == 0 || c.Served == 0 {
		t.Fatalf("inconsistent accounting: ok=%d failed=%d counters=%+v",
			ok.Load(), failed.Load(), c)
	}
	// The service must reject new work after Close rather than hang.
	if _, err := svc.Do(test.X[0]); err == nil {
		t.Fatal("Do after Close must fail")
	}
}

// TestServiceCloseUnblocksQueued verifies shutdown drains queued requests
// with ErrClosed instead of leaking blocked callers.
func TestServiceCloseUnblocksQueued(t *testing.T) {
	golden, train, test := trainTestMLP(61)
	pol := PolicyNone()
	pol.Deadline = 1.0
	pipe := NewMLPPipeline(golden, train.X[:4], DefaultMLPPipelineConfig(), nil, rngutil.New(3))
	svc := NewService(pol, []*Replica{NewReplica(0, pipe, pol)}, nil, 2)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := svc.Do(test.X[(g+i)%len(test.X)]); err == ErrClosed {
					return
				}
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	svc.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("callers still blocked after Close")
	}
}
