package serve

import (
	"sync"

	"repro/internal/tensor"
)

// Replica owns one Pipeline plus its Health. The mutex is the ownership
// handoff required by the crossbar single-writer contract: workers, the
// canary prober, and the background recalibrator all funnel through it, so
// the arrays underneath only ever see one operation at a time even while
// the Service runs them from many goroutines.
type Replica struct {
	ID     int
	Health *Health

	mu   sync.Mutex
	pipe Pipeline
}

// NewReplica wraps pipe for service under pol.
func NewReplica(id int, pipe Pipeline, pol Policy) *Replica {
	return &Replica{ID: id, Health: NewHealth(pol), pipe: pipe}
}

// Infer serializes one inference through the replica's pipeline.
func (r *Replica) Infer(x tensor.Vector, verify bool) (tensor.Vector, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pipe.Infer(x, verify)
}

// InferBatch serializes one coalesced block through the replica's
// pipeline, taking the pipeline's batched read when it implements
// BatchPipeline and otherwise running the inferences sequentially under a
// single lock hold (so the block still pays for one ownership handoff).
func (r *Replica) InferBatch(xs []tensor.Vector, verify bool) ([]tensor.Vector, []bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if bp, ok := r.pipe.(BatchPipeline); ok {
		return bp.InferBatch(xs, verify)
	}
	ys := make([]tensor.Vector, len(xs))
	oks := make([]bool, len(xs))
	for i, x := range xs {
		ys[i], oks[i] = r.pipe.Infer(x, verify)
	}
	return ys, oks
}

// Canary serializes one canary round.
func (r *Replica) Canary() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pipe.CanaryDivergence()
}

// Recalibrate serializes a recalibration pass and returns the fresh canary
// divergence measured while still holding the array.
func (r *Replica) Recalibrate() (RecalStats, float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.pipe.Recalibrate()
	return st, r.pipe.CanaryDivergence()
}
