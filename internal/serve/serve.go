// Package serve is the self-healing concurrent inference service of the
// repository: the layer that keeps the analog substrates of the paper —
// crossbar MLP tiles (§II) and X-MANN distributed memories (§III) — serving
// under live load while the device non-idealities of §II-B (stuck
// crosspoints, PCM drift, transient read upsets, write failures) degrade
// them, and repairs the damage in the background without going down.
//
// The runtime fronts a pool of replicated tile groups (each replica an
// nn.Mat-compatible copy of the same golden weights, programmed with
// crossbar.ProgramVerify and optionally wrapped in faults.RemappedArray)
// and provides, in escalating order of machinery:
//
//   - a request scheduler with per-request deadlines, a bounded queue with
//     load shedding, and retry-with-backoff on suspected transient read
//     upsets (detected by temporal redundancy: the read is issued twice and
//     divergent pairs are retried — persistent faults agree with themselves
//     and do not trigger retry storms);
//
//   - hedged reads: when a replica's attempt outlives the replica pool's
//     observed latency quantile, the request is dispatched to a second
//     replica and the first success wins;
//
//   - per-replica health accounting (canary-divergence and latency EWMAs,
//     fed by a canary probe that periodically replays golden vectors with
//     known digital-reference outputs) driving a three-state circuit
//     breaker: healthy → degraded (served only when no healthy replica is
//     free) → quarantined (out of rotation);
//
//   - a drift watchdog: on canary divergence the quarantined replica is
//     pulled from rotation and re-programmed from the golden weights in the
//     background (crossbar.ProgramVerify, plus faults.Detect/remap for
//     replicas with spare columns), then re-admitted once a fresh canary
//     passes — while the remaining replicas, and ultimately a digital
//     float fallback path, keep serving so throughput degrades gracefully
//     instead of failing.
//
// Two drivers exercise the machinery. Service is the real goroutine
// runtime (bounded channel queue, worker pool, wall-clock deadlines and
// hedging timers, background canary and recalibration goroutines); its
// behaviour is timing-dependent by nature and it is hammered by the -race
// tests, including forward reads racing a background reprogram. The R2
// campaign (cmd/serve-campaign) instead drives the identical policy,
// health, and pipeline machinery through a virtual-time discrete-event
// simulator (sim.go), so the published goodput/latency/accuracy tables are
// bit-identical run-to-run at a fixed seed — the serving-layer analogue of
// R1's graceful-degradation tables.
package serve

// Policy bounds the serving behaviour of one arm of the campaign (and of a
// live Service). The zero value is not useful; start from PolicyNone,
// PolicyRetry, or PolicyFull.
type Policy struct {
	// Name labels the arm in tables ("none", "retry", "self-heal").
	Name string

	// QueueCap bounds the request queue; arrivals beyond it are shed
	// immediately (load shedding) rather than queued into certain
	// deadline misses.
	QueueCap int
	// Deadline is the per-request completion deadline in seconds.
	Deadline float64

	// BatchMax enables dynamic request batching: a worker coalesces up to
	// BatchMax queued requests into one batched inference (the sample-blocked
	// MVM path), with per-request verify/retry/fallback disposition
	// preserved and requests that expired in the queue dropped from the
	// block before dispatch. 0 or 1 keeps today's one-request dispatch
	// exactly.
	BatchMax int
	// BatchWait is the longest a live worker holding a partial block waits
	// for more arrivals, in seconds. The wait budget is carved from the
	// earliest pending deadline (the block's head request), so waiting can
	// never spend time that request needs to be served; it runs on the
	// service clock, so virtual-time tests control it exactly. 0 dispatches
	// whatever is immediately queued (the simulator's behaviour: it
	// coalesces only the backlog present at dispatch time).
	BatchWait float64

	// VerifyReads enables temporal-redundancy transient detection: every
	// inference is read twice and a divergent pair is flagged suspect.
	VerifyReads bool
	// MaxAttempts bounds serving attempts per request (1 = no retry).
	MaxAttempts int
	// RetryBackoff is the delay before re-queueing a suspect request, in
	// seconds; it doubles per attempt.
	RetryBackoff float64

	// Hedge enables hedged reads against a second replica.
	Hedge bool
	// HedgeQuantile is the latency quantile after which a hedge launches.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay until enough latency samples exist.
	HedgeMin float64

	// Watchdog enables the canary probe, circuit breaker, and background
	// recalibration.
	Watchdog bool
	// CanaryEvery is the per-replica canary period in seconds.
	CanaryEvery float64
	// CanaryVectors is how many golden vectors one canary round replays.
	CanaryVectors int
	// DegradeThresh and QuarantineThresh are canary-divergence EWMA levels
	// triggering the breaker transitions; ReadmitThresh is the raw
	// post-recalibration divergence a replica must beat to re-enter
	// rotation.
	DegradeThresh    float64
	QuarantineThresh float64
	ReadmitThresh    float64
	// EWMAAlpha is the mixing weight of new canary/latency observations.
	EWMAAlpha float64
	// RecalMaxRetries bounds consecutive failed recalibration attempts
	// before a replica is abandoned as dead.
	RecalMaxRetries int

	// Fallback enables the digital float path when no replica is in
	// rotation.
	Fallback bool
}

// basePolicy carries the queue/deadline parameters every arm shares, so
// the arms differ only in remediation machinery.
func basePolicy() Policy {
	return Policy{
		QueueCap:    64,
		Deadline:    8e-3,
		MaxAttempts: 1,
	}
}

// PolicyNone serves with no remediation at all: single reads, no retry, no
// hedging, no watchdog — the arm that shows what the faults cost.
func PolicyNone() Policy {
	p := basePolicy()
	p.Name = "none"
	return p
}

// PolicyRetry adds transient detection by verify reads and bounded
// retry-with-backoff, nothing else.
func PolicyRetry() Policy {
	p := basePolicy()
	p.Name = "retry"
	p.VerifyReads = true
	p.MaxAttempts = 3
	p.RetryBackoff = 0.4e-3
	return p
}

// PolicyFull is the complete self-healing stack: retry, hedged reads, the
// canary-fed circuit breaker, background recalibration, and the digital
// fallback.
func PolicyFull() Policy {
	p := PolicyRetry()
	p.Name = "self-heal"
	p.Hedge = true
	// p85, tuned against the unbiased nearest-rank estimator. (The original
	// 0.95 was tuned against a floor-biased quantile that actually fired
	// around p94; re-tuning against the fixed estimator, p85 hedges early
	// enough to rescue the straggler tail at every fault level.)
	p.HedgeQuantile = 0.85
	p.HedgeMin = 2.5e-3
	p.Watchdog = true
	p.CanaryEvery = 0.20
	p.CanaryVectors = 8
	p.DegradeThresh = 0.10
	p.QuarantineThresh = 0.25
	p.ReadmitThresh = 0.10
	p.EWMAAlpha = 0.5
	p.RecalMaxRetries = 2
	p.Fallback = true
	return p
}
