package serve

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/nn"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// trainTestMLP builds a small digitally trained golden network plus its
// dataset for pipeline tests. The net must be trained to confident
// predictions: the canary grades analog softmax outputs against digital
// references, and a golden net sitting near its own decision boundaries
// would make programming residual alone look like divergence.
func trainTestMLP(seed uint64) (*nn.MLP, *dataset.Classification, *dataset.Classification) {
	rng := rngutil.New(seed)
	dcfg := dataset.DigitsConfig{Classes: 4, Dim: 12, PerClass: 50, Noise: 0.3, Separation: 2}
	ds := dataset.Digits(dcfg, rng.Child("data"))
	train, test := ds.Split(0.75)
	m := nn.NewMLP([]int{dcfg.Dim, 10, dcfg.Classes}, nn.TanhAct, nn.SoftmaxAct,
		nn.DenseFactory(rng.Child("weights")))
	for epoch := 0; epoch < 12; epoch++ {
		for i := range train.X {
			m.TrainStep(train.X[i], train.Y[i], 0.05)
		}
	}
	return m, train, test
}

func TestBreakerTransitions(t *testing.T) {
	pol := PolicyFull()
	h := NewHealth(pol)
	if h.State() != Healthy {
		t.Fatalf("fresh health state = %v, want healthy", h.State())
	}
	// Clean canaries keep it healthy.
	for i := 0; i < 5; i++ {
		if st := h.ObserveCanary(0); st != Healthy {
			t.Fatalf("clean canary %d moved state to %v", i, st)
		}
	}
	// Mild divergence degrades without quarantining.
	if st := h.ObserveCanary(0.2); st != Degraded {
		t.Fatalf("mild divergence gave %v, want degraded", st)
	}
	if !h.InRotation() {
		t.Fatal("degraded replica must stay in rotation")
	}
	// Heavy divergence quarantines; quarantine is sticky even if later
	// canaries would look clean.
	for i := 0; i < 4; i++ {
		h.ObserveCanary(0.9)
	}
	if st := h.State(); st != Quarantined {
		t.Fatalf("heavy divergence gave %v, want quarantined", st)
	}
	if st := h.ObserveCanary(0); st != Quarantined {
		t.Fatalf("quarantine must be sticky, got %v", st)
	}
	if h.InRotation() {
		t.Fatal("quarantined replica must be out of rotation")
	}
	// Only the recalibration path re-admits.
	h.Readmit(0)
	if st := h.State(); st != Healthy {
		t.Fatalf("readmit(0) gave %v, want healthy", st)
	}
}

// TestCanaryFalsePositiveRate pins the canary probe's specificity: with no
// fault engine attached, programming residual and read noise alone must not
// flag divergence, or the watchdog would quarantine healthy replicas.
func TestCanaryFalsePositiveRate(t *testing.T) {
	golden, train, _ := trainTestMLP(11)
	pipe := NewMLPPipeline(golden, train.X[:8], DefaultMLPPipelineConfig(), nil, rngutil.New(77))
	var total float64
	const rounds = 40
	for i := 0; i < rounds; i++ {
		total += pipe.CanaryDivergence()
	}
	if rate := total / rounds; rate > 0.02 {
		t.Fatalf("MLP canary false-positive rate %.4f at zero faults, want <= 0.02", rate)
	}

	xcfg := DefaultXMannPipelineConfig()
	rng := rngutil.New(13)
	mem := tensor.NewMatrix(16, 8)
	for i := range mem.Data {
		mem.Data[i] = rng.Float64()
	}
	keys := make([]tensor.Vector, 8)
	for k := range keys {
		keys[k] = make(tensor.Vector, 8)
		for i := range keys[k] {
			keys[k][i] = rng.Float64()
		}
	}
	xp := NewXMannPipeline(mem, keys, xcfg, nil, rngutil.New(99))
	for i := 0; i < rounds; i++ {
		if div := xp.CanaryDivergence(); div != 0 {
			t.Fatalf("X-MANN canary divergence %.4f on ideal fault-free tiles, want 0", div)
		}
	}
}

// testCampaignConfig is a small-but-representative configuration for
// simulator tests.
func testCampaignConfig() CampaignConfig {
	cfg := DefaultCampaignConfig(4321, true)
	cfg.Duration = 0.6
	cfg.Rate = 250
	cfg.Levels = []float64{0, 1}
	return cfg
}

// TestSimDeterminism is the acceptance property of the R2 tables: the same
// seed renders the identical table, bit for bit.
func TestSimDeterminism(t *testing.T) {
	cfg := testCampaignConfig()
	a := FormatTable("mlp", MLPCampaign(cfg))
	b := FormatTable("mlp", MLPCampaign(cfg))
	if a != b {
		t.Fatalf("MLP campaign not deterministic:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
	if !strings.Contains(a, "self-heal") {
		t.Fatalf("table missing self-heal arm:\n%s", a)
	}
	x := FormatTable("xmann", XMannCampaign(cfg))
	y := FormatTable("xmann", XMannCampaign(cfg))
	if x != y {
		t.Fatalf("X-MANN campaign not deterministic:\n--- first ---\n%s--- second ---\n%s", x, y)
	}
}

// TestSelfHealDominance pins the headline R2 claim at the default seed: the
// full self-healing policy strictly beats no-remediation on goodput AND
// accuracy at every non-zero fault level, for both pipelines.
func TestSelfHealDominance(t *testing.T) {
	cfg := DefaultCampaignConfig(1234, true)
	for name, results := range map[string][]ArmResult{
		"mlp":   MLPCampaign(cfg),
		"xmann": XMannCampaign(cfg),
	} {
		byLevel := map[float64]map[string]*Metrics{}
		for i := range results {
			r := &results[i]
			if byLevel[r.Level] == nil {
				byLevel[r.Level] = map[string]*Metrics{}
			}
			byLevel[r.Level][r.Policy] = &r.M
		}
		for level, arms := range byLevel {
			if level == 0 {
				continue
			}
			none, full := arms["none"], arms["self-heal"]
			if none == nil || full == nil {
				t.Fatalf("%s level %.2f: missing arms", name, level)
			}
			if full.Goodput() <= none.Goodput() {
				t.Errorf("%s level %.2f: self-heal goodput %.4f does not beat none %.4f",
					name, level, full.Goodput(), none.Goodput())
			}
			if full.Accuracy() <= none.Accuracy() {
				t.Errorf("%s level %.2f: self-heal accuracy %.4f does not beat none %.4f",
					name, level, full.Accuracy(), none.Accuracy())
			}
		}
	}
}

// TestWatchdogReadmitsAfterDriftRecal exercises the full heal loop on
// recoverable damage: a drift-only campaign must quarantine replicas, and
// recalibration (reprogramming from golden) must bring them back.
func TestWatchdogReadmitsAfterDriftRecal(t *testing.T) {
	golden, train, test := trainTestMLP(21)
	pol := PolicyFull()
	plan := faults.Plan{DriftBurstEvery: 25, DriftBurstDt: 40}

	var reps []*Replica
	for r := 0; r < 3; r++ {
		eng := faults.NewEngine(plan, rngutil.New(uint64(300+r)))
		pipe := NewMLPPipeline(golden, train.X[:8], DefaultMLPPipelineConfig(), eng.Attach,
			rngutil.New(uint64(400+r)))
		reps = append(reps, NewReplica(r, pipe, pol))
	}
	var reqs []SimRequest
	for i := range test.X {
		reqs = append(reqs, SimRequest{X: test.X[i], Want: test.Y[i]})
	}
	m := RunSim(SimConfig{
		Policy:   pol,
		Lat:      DefaultLatencyModel(),
		Duration: 1.5,
		Rate:     250,
		Requests: reqs,
		Fallback: func(x tensor.Vector) tensor.Vector { return golden.Forward(x).Clone() },
		RNG:      rngutil.New(5),
	}, reps)
	if m.Quarantines == 0 {
		t.Fatal("drift campaign never tripped the watchdog")
	}
	if m.Readmits == 0 {
		t.Fatalf("no quarantined replica was re-admitted after recalibration (quar %d, recals %d)",
			m.Quarantines, m.Recals)
	}
}

// TestSimLoadShedding pins the bounded-queue behaviour: overload must shed
// rather than queue into certain deadline misses.
func TestSimLoadShedding(t *testing.T) {
	golden, train, test := trainTestMLP(31)
	pol := PolicyNone()
	pol.QueueCap = 4
	var reps []*Replica
	pipe := NewMLPPipeline(golden, train.X[:4], DefaultMLPPipelineConfig(), nil, rngutil.New(8))
	reps = append(reps, NewReplica(0, pipe, pol))
	var reqs []SimRequest
	for i := range test.X {
		reqs = append(reqs, SimRequest{X: test.X[i], Want: test.Y[i]})
	}
	lat := DefaultLatencyModel()
	m := RunSim(SimConfig{
		Policy: pol, Lat: lat,
		Duration: 0.3, Rate: 3000, // ~3x a single replica's capacity
		Requests: reqs,
		RNG:      rngutil.New(6),
	}, reps)
	if m.Shed == 0 {
		t.Fatalf("overloaded single-replica service shed nothing: %+v", m)
	}
	// Every offered request must be accounted for: answered, shed, expired,
	// or unservable.
	if m.Completed+m.Shed+m.Expired+m.Unavailable < m.Offered {
		t.Fatalf("requests unaccounted for: %+v", m)
	}
}
