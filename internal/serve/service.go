package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Service errors returned by Do.
var (
	// ErrShed means the bounded queue was full and the request was load-shed
	// on arrival.
	ErrShed = errors.New("serve: queue full, request shed")
	// ErrDeadline means the request missed its completion deadline.
	ErrDeadline = errors.New("serve: deadline exceeded")
	// ErrUnavailable means no replica was in rotation and no fallback path
	// was configured.
	ErrUnavailable = errors.New("serve: no replica in rotation")
	// ErrClosed means the service has shut down.
	ErrClosed = errors.New("serve: service closed")
)

// ServiceCounters is a snapshot of the live runtime's accounting.
type ServiceCounters struct {
	Served, Shed, Expired, Unavailable int64
	Retries, Hedges, Fallbacks, Recals int64
	// SuspectServed counts requests answered with a verify-failed (suspect)
	// vector because retries, hedges, or the deadline ran out — served
	// rather than failed, but flagged so operators can see how much of the
	// traffic got an unverified answer.
	SuspectServed int64
	// Batches counts multi-request coalesced dispatches; Coalesced counts
	// the requests they carried (so Coalesced/Batches is the realized batch
	// size). Single-request dispatches appear in neither.
	Batches, Coalesced int64
}

type request struct {
	x        tensor.Vector
	deadline time.Time
	done     chan result
	span     *obs.Span
}

type result struct {
	y   tensor.Vector
	err error
}

// Service is the real goroutine runtime: a bounded channel queue, a worker
// pool serving with wall-clock deadlines, hedging timers, a background
// canary prober, and a background recalibration worker. It exists to prove
// the machinery safe under true concurrency (the -race tests hammer it,
// including forward reads racing a reprogram); the published R2 tables come
// from the virtual-time simulator in sim.go, which drives the identical
// Policy/Health/Pipeline machinery deterministically.
type Service struct {
	pol      Policy
	replicas []*Replica

	fbMu     sync.Mutex
	fallback func(tensor.Vector) tensor.Vector

	queue   chan *request
	recalCh chan *Replica
	stop    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
	rr      atomic.Uint64

	served, shed, expired, unavailable atomic.Int64
	retries, hedges, fallbacks, recals atomic.Int64
	suspectServed                      atomic.Int64
	batches, coalesced                 atomic.Int64

	// clock is the single source every deadline-relevant timestamp reads
	// from: the wall clock in production, a Manual clock in deadline tests.
	// start anchors trace timestamps (seconds since service start).
	clock obs.Clock
	start time.Time

	// Live-runtime instruments; all volatile (wall-clock-fed), so they show
	// on /metrics but never in the deterministic stable dump. Nil when
	// observability is off — every use is a free nil-receiver no-op.
	tracer                          *obs.Tracer
	mServed, mShed, mExpired, mUnav *obs.Counter
	mRetries, mHedges, mFbacks      *obs.Counter
	mRecals, mSuspect               *obs.Counter
	mBatches, mCoalesced            *obs.Counter
	mLatency                        *obs.Histogram
}

// NewService starts the runtime with the given worker count. fallback, if
// non-nil and enabled by the policy, is the digital float path used when no
// replica is in rotation; it is serialized internally (golden nets cache
// layer state and are not reentrant).
func NewService(pol Policy, replicas []*Replica, fallback func(tensor.Vector) tensor.Vector, workers int) *Service {
	if workers <= 0 {
		workers = 2
	}
	if pol.QueueCap <= 0 {
		pol.QueueCap = 64
	}
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = 1
	}
	s := &Service{
		pol:      pol,
		replicas: replicas,
		fallback: fallback,
		queue:    make(chan *request, pol.QueueCap),
		recalCh:  make(chan *Replica, len(replicas)),
		stop:     make(chan struct{}),
		clock:    obs.System,
	}
	s.start = s.clock.Now()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if pol.Watchdog {
		s.wg.Add(2)
		go s.canaryLoop()
		go s.recalLoop()
	}
	return s
}

// SetClock injects the service's time source. Call before serving traffic;
// tests inject an obs.Manual clock for exact deadline semantics.
func (s *Service) SetClock(c obs.Clock) {
	if c == nil {
		c = obs.System
	}
	s.clock = c
	s.start = c.Now()
}

// SetObservability attaches a registry and tracer to the live runtime. All
// instruments are registered Volatile: the real service is wall-clock-fed,
// so its numbers belong on /metrics but not in the deterministic stable
// dump. Call before serving traffic. Either argument may be nil.
func (s *Service) SetObservability(reg *obs.Registry, tr *obs.Tracer) {
	s.tracer = tr
	s.mServed = reg.Counter("serve_live_served_total", "requests answered by the live runtime").Volatile()
	s.mShed = reg.Counter("serve_live_shed_total", "requests load-shed at a full queue").Volatile()
	s.mExpired = reg.Counter("serve_live_expired_total", "requests that missed their deadline").Volatile()
	s.mUnav = reg.Counter("serve_live_unavailable_total", "requests with no replica and no fallback").Volatile()
	s.mRetries = reg.Counter("serve_live_retries_total", "retry attempts").Volatile()
	s.mHedges = reg.Counter("serve_live_hedges_total", "hedged attempts dispatched").Volatile()
	s.mFbacks = reg.Counter("serve_live_fallbacks_total", "requests served by the digital fallback").Volatile()
	s.mRecals = reg.Counter("serve_live_recals_total", "recalibration passes").Volatile()
	s.mSuspect = reg.Counter("serve_suspect_served_total",
		"requests answered with a verify-failed suspect vector (out of attempts or time)").Volatile()
	s.mBatches = reg.Counter("serve_live_batches_total", "multi-request coalesced dispatches").Volatile()
	s.mCoalesced = reg.Counter("serve_live_coalesced_total", "requests served via coalesced dispatches").Volatile()
	s.mLatency = reg.Histogram("serve_live_latency_seconds",
		"wall-clock service latency of live requests (windowed)", 1024).Volatile()
}

// sinceStart maps a clock reading onto the trace timebase (seconds since
// service start).
func (s *Service) sinceStart(t time.Time) float64 { return t.Sub(s.start).Seconds() }

// Counters snapshots the runtime accounting.
func (s *Service) Counters() ServiceCounters {
	return ServiceCounters{
		Served: s.served.Load(), Shed: s.shed.Load(),
		Expired: s.expired.Load(), Unavailable: s.unavailable.Load(),
		Retries: s.retries.Load(), Hedges: s.hedges.Load(),
		Fallbacks: s.fallbacks.Load(), Recals: s.recals.Load(),
		SuspectServed: s.suspectServed.Load(),
		Batches:       s.batches.Load(), Coalesced: s.coalesced.Load(),
	}
}

// Do submits one inference and blocks for its result (or shedding/deadline
// error). Safe for concurrent use.
func (s *Service) Do(x tensor.Vector) (tensor.Vector, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	now := s.clock.Now()
	req := &request{
		x:        x,
		deadline: now.Add(time.Duration(s.pol.Deadline * float64(time.Second))),
		done:     make(chan result, 1),
		span:     s.tracer.Start("request", s.sinceStart(now)),
	}
	req.span.Stage("queue", s.sinceStart(now))
	select {
	case s.queue <- req:
	default:
		s.shed.Add(1)
		s.mShed.Inc()
		req.span.SetErr(ErrShed.Error())
		req.span.End(s.sinceStart(s.clock.Now()))
		return nil, ErrShed
	}
	// Re-check closed AFTER the enqueue. If this load still reads false,
	// the enqueue happened before Close's closed.Store (both are
	// sequentially consistent atomics), so it also happened before Close's
	// drain, which therefore answers the request if no worker does. If it
	// reads true, Close's one-shot drain may already have run without
	// seeing the request — so sweep the queue here; whoever pops a request
	// (worker, Close, or this sweep) is its sole answerer, so <-req.done
	// below can no longer block forever.
	if s.closed.Load() {
		s.drainQueue()
	}
	r := <-req.done
	if r.err != nil {
		req.span.SetErr(r.err.Error())
	}
	done := s.clock.Now()
	req.span.Stage("complete", s.sinceStart(done))
	req.span.End(s.sinceStart(done))
	s.mLatency.Observe(done.Sub(now).Seconds())
	return r.y, r.err
}

// Close drains the runtime: no new requests are accepted, background
// goroutines exit, and queued-but-unserved requests fail with ErrClosed.
func (s *Service) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.stop)
	s.wg.Wait()
	s.drainQueue()
}

// drainQueue answers every currently queued request with ErrClosed. Both
// Close and a Do that observed closed after its enqueue sweep with this;
// a request is answered exactly once because each is popped exactly once.
func (s *Service) drainQueue() {
	for {
		select {
		case req := <-s.queue:
			req.done <- result{err: ErrClosed}
		default:
			return
		}
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	batching := s.pol.BatchMax > 1
	var batch []*request
	if batching {
		batch = make([]*request, 0, s.pol.BatchMax)
	}
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.queue:
			if batching {
				batch = s.gather(batch[:0], req)
				s.serveBatch(batch)
			} else {
				req.done <- s.serveOne(req)
			}
		}
	}
}

// gather coalesces up to Policy.BatchMax queued requests behind first.
// Whatever is already queued is taken immediately; if the block is still
// short and BatchWait allows, the worker waits for more arrivals on the
// service clock, with the wait budget carved from the head request's
// deadline (deadlines are arrival-ordered, so first is the block's
// earliest) — waiting never spends time that request needs. Every request
// gather returns is answered by serveBatch, including on shutdown: a stop
// signal merely cuts the wait short.
func (s *Service) gather(batch []*request, first *request) []*request {
	batch = append(batch, first)
	max := s.pol.BatchMax
	for len(batch) < max {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
			continue
		default:
		}
		break
	}
	if len(batch) >= max || s.pol.BatchWait <= 0 {
		return batch
	}
	budget := time.Duration(s.pol.BatchWait * float64(time.Second))
	if slack := first.deadline.Sub(s.clock.Now()); slack < budget {
		budget = slack
	}
	if budget <= 0 {
		return batch
	}
	wait := s.clock.After(budget)
	for len(batch) < max {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-wait:
			return batch
		case <-s.stop:
			return batch
		}
	}
	return batch
}

// serveBatch disposes one coalesced block. Requests whose deadline elapsed
// in the queue are dropped from the block before dispatch (counted
// expired, answered ErrDeadline — never served, never double-counted). A
// lone survivor takes the exact sequential path, so BatchMax=1 semantics
// also hold for every block that degenerates to one request. Larger
// blocks are served with one batched read on the picked replica; each
// member keeps its individual disposition — verified members complete,
// verify-failed members continue through the sequential retry/suspect
// machinery with the batched read counted as their first attempt, and
// with no replica in rotation every member takes its own fallback.
func (s *Service) serveBatch(batch []*request) {
	now := s.clock.Now()
	live := batch[:0]
	for _, req := range batch {
		if now.After(req.deadline) {
			s.expired.Add(1)
			s.mExpired.Inc()
			req.done <- result{err: ErrDeadline}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	if len(live) == 1 {
		live[0].done <- s.serveOne(live[0])
		return
	}
	primary := s.pick(nil)
	if primary == nil {
		for _, req := range live {
			req.done <- s.fallbackServe(req)
		}
		return
	}
	s.batches.Add(1)
	s.mBatches.Inc()
	s.coalesced.Add(int64(len(live)))
	s.mCoalesced.Add(int64(len(live)))
	xs := make([]tensor.Vector, len(live))
	dispatchAt := s.sinceStart(s.clock.Now())
	for i, req := range live {
		xs[i] = req.x
		req.span.Stage("dispatch", dispatchAt)
	}
	t0 := s.clock.Now()
	ys, oks := primary.InferBatch(xs, s.pol.VerifyReads)
	took := s.clock.Now().Sub(t0).Seconds()
	for i, req := range live {
		primary.Health.ObserveServe(took, !oks[i])
		if oks[i] {
			s.served.Add(1)
			s.mServed.Inc()
			req.done <- result{y: ys[i]}
			continue
		}
		req.done <- s.serveAfterBatchFail(req, ys[i])
	}
}

// serveAfterBatchFail continues a request whose batched read came back
// verify-failed, preserving the sequential per-request disposition: the
// batched read was attempt 0 and produced a suspect vector; remaining
// attempts retry with backoff through the normal loop (hedging and
// fallback included), and with no attempts left the suspect read is
// served — counted and tagged — rather than nothing.
func (s *Service) serveAfterBatchFail(req *request, suspect tensor.Vector) result {
	req.span.Stage("verify-read", s.sinceStart(s.clock.Now()))
	if s.pol.MaxAttempts > 1 {
		s.retries.Add(1)
		s.mRetries.Inc()
		backoff := s.pol.RetryBackoff
		if backoff > 0 {
			s.clock.Sleep(time.Duration(backoff * float64(time.Second)))
			backoff *= 2
		}
		return s.serveLoop(req, 1, backoff)
	}
	if suspect != nil {
		s.markSuspectServed(req)
		s.served.Add(1)
		s.mServed.Inc()
		return result{y: suspect}
	}
	s.expired.Add(1)
	s.mExpired.Inc()
	return result{err: ErrDeadline}
}

// pick chooses the next replica in rotation, healthy ones first, skipping
// those in avoid. Returns nil when every replica is quarantined.
func (s *Service) pick(avoid *Replica) *Replica {
	n := len(s.replicas)
	// Reduce in uint64 before converting: int(Add(1)) % n goes negative
	// once the counter maps to a negative int (uint64 wrap, or any count
	// past 2³¹ on 32-bit platforms) and would index out of range.
	start := int(s.rr.Add(1) % uint64(n))
	var degraded *Replica
	for i := 0; i < n; i++ {
		r := s.replicas[(start+i)%n]
		if r == avoid {
			continue
		}
		switch r.Health.State() {
		case Healthy:
			return r
		case Degraded:
			if degraded == nil {
				degraded = r
			}
		}
	}
	return degraded
}

// serveOne runs the full per-request policy: replica selection, verify
// reads, bounded retry with backoff, hedging, deadline, digital fallback.
func (s *Service) serveOne(req *request) result {
	return s.serveLoop(req, 0, s.pol.RetryBackoff)
}

// serveLoop is serveOne's attempt loop, entered at a later attempt (with
// the backoff already advanced) when an earlier attempt happened outside —
// a coalesced batched read that failed verify.
func (s *Service) serveLoop(req *request, attempt int, backoff float64) result {
	for ; attempt < s.pol.MaxAttempts; attempt++ {
		if s.clock.Now().After(req.deadline) {
			s.expired.Add(1)
			s.mExpired.Inc()
			return result{err: ErrDeadline}
		}
		primary := s.pick(nil)
		if primary == nil {
			return s.fallbackServe(req)
		}
		req.span.Stage("dispatch", s.sinceStart(s.clock.Now()))
		y, ok := s.attempt(primary, req)
		if ok {
			s.served.Add(1)
			s.mServed.Inc()
			return result{y: y}
		}
		req.span.Stage("verify-read", s.sinceStart(s.clock.Now()))
		if y == nil && s.clock.Now().After(req.deadline) {
			s.expired.Add(1)
			s.mExpired.Inc()
			return result{err: ErrDeadline}
		}
		// Suspected transient: back off and retry (doubling), unless this
		// was the last attempt — then serve the suspect read rather than
		// nothing.
		if attempt+1 < s.pol.MaxAttempts {
			s.retries.Add(1)
			s.mRetries.Inc()
			if backoff > 0 {
				s.clock.Sleep(time.Duration(backoff * float64(time.Second)))
				backoff *= 2
			}
			continue
		}
		if y != nil {
			// Out of attempts: serve the suspect read rather than nothing,
			// but account for it — this answer never passed a verify read.
			s.markSuspectServed(req)
			s.served.Add(1)
			s.mServed.Inc()
			return result{y: y}
		}
	}
	s.expired.Add(1)
	s.mExpired.Inc()
	return result{err: ErrDeadline}
}

// markSuspectServed accounts for a request answered with a verify-failed
// suspect vector (attempts or deadline exhausted) and tags its trace span.
func (s *Service) markSuspectServed(req *request) {
	s.suspectServed.Add(1)
	s.mSuspect.Inc()
	req.span.Stage("suspect-served", s.sinceStart(s.clock.Now()))
}

// attempt runs one (possibly hedged) inference attempt. ok=false with a
// non-nil vector flags a suspected transient.
func (s *Service) attempt(primary *Replica, req *request) (tensor.Vector, bool) {
	type attemptRes struct {
		r    *Replica
		y    tensor.Vector
		ok   bool
		took time.Duration
	}
	run := func(r *Replica, ch chan attemptRes) {
		t0 := s.clock.Now()
		y, ok := r.Infer(req.x, s.pol.VerifyReads)
		ch <- attemptRes{r: r, y: y, ok: ok, took: s.clock.Now().Sub(t0)}
	}
	observe := func(a attemptRes) {
		a.r.Health.ObserveServe(a.took.Seconds(), !a.ok)
	}

	ch := make(chan attemptRes, 2)
	go run(primary, ch)
	inFlight := 1

	// Both timers run on the injected clock: with a Manual clock they fire
	// on virtual advances, so deadline/hedge tests are exact and burn no
	// wall time. Abandoned After channels simply fire into the void.
	var hedgeC <-chan time.Time
	if s.pol.Hedge && len(s.replicas) > 1 {
		d := primary.Health.HedgeDelay(s.pol.HedgeQuantile, s.pol.HedgeMin, s.pol.Deadline)
		hedgeC = s.clock.After(time.Duration(d * float64(time.Second)))
	}
	deadlineC := s.clock.After(req.deadline.Sub(s.clock.Now()))

	var suspect tensor.Vector
	for {
		select {
		case a := <-ch:
			observe(a)
			inFlight--
			if a.ok {
				return a.y, true
			}
			suspect = a.y
			if inFlight == 0 {
				return suspect, false
			}
		case <-hedgeC:
			hedgeC = nil
			if second := s.pick(primary); second != nil {
				s.hedges.Add(1)
				s.mHedges.Inc()
				req.span.Stage("hedge", s.sinceStart(s.clock.Now()))
				go run(second, ch)
				inFlight++
			}
		case <-deadlineC:
			// Leave stragglers to finish into the buffered channel; their
			// health observations are lost, which is acceptable for the
			// wall-clock runtime. A suspect read in hand is served rather
			// than dropped — counted, and tagged on the trace, so the
			// unverified answer is visible instead of silently passing as ok.
			if suspect != nil {
				s.markSuspectServed(req)
			}
			return suspect, suspect != nil
		}
	}
}

func (s *Service) fallbackServe(req *request) result {
	if !s.pol.Fallback || s.fallback == nil {
		s.unavailable.Add(1)
		s.mUnav.Inc()
		return result{err: ErrUnavailable}
	}
	req.span.Stage("fallback", s.sinceStart(s.clock.Now()))
	s.fbMu.Lock()
	y := s.fallback(req.x)
	s.fbMu.Unlock()
	s.fallbacks.Add(1)
	s.mFbacks.Inc()
	s.served.Add(1)
	s.mServed.Inc()
	return result{y: y}
}

// canaryLoop periodically replays golden vectors on every in-rotation
// replica and feeds the breaker; replicas it quarantines are handed to the
// recalibration worker.
func (s *Service) canaryLoop() {
	defer s.wg.Done()
	period := time.Duration(s.pol.CanaryEvery * float64(time.Second))
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			for _, r := range s.replicas {
				if r.Health.State() == Quarantined {
					continue
				}
				div := r.Canary()
				if r.Health.ObserveCanary(div) == Quarantined {
					select {
					case s.recalCh <- r:
					default: // already enqueued
					}
				}
			}
		}
	}
}

// recalLoop reprograms quarantined replicas from golden weights in the
// background and re-admits the ones whose fresh canary passes.
func (s *Service) recalLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case r := <-s.recalCh:
			for try := 0; try <= s.pol.RecalMaxRetries; try++ {
				_, div := r.Recalibrate()
				s.recals.Add(1)
				s.mRecals.Inc()
				if div <= s.pol.ReadmitThresh {
					r.Health.Readmit(div)
					break
				}
			}
		}
	}
}
