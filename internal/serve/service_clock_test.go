package serve

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// stubPipe is a scripted Pipeline for live-runtime tests: Infer delegates
// to a closure, canaries are always clean, recalibration free.
type stubPipe struct {
	infer func() (tensor.Vector, bool)
}

func (p *stubPipe) Infer(x tensor.Vector, verify bool) (tensor.Vector, bool) { return p.infer() }
func (p *stubPipe) CanaryDivergence() float64                                { return 0 }
func (p *stubPipe) Recalibrate() RecalStats                                  { return RecalStats{} }

// driveManual advances m in small virtual steps from a background goroutine
// until the returned stop func is called — the stand-in for "time passes"
// in tests that route every timer through the Manual clock.
func driveManual(m *obs.Manual, step time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			default:
				m.Advance(step)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	return func() { close(done); <-finished }
}

// TestRetryBackoffUsesVirtualClock is the satellite-1 regression test: the
// retry backoff used to call time.Sleep directly, so a test with seconds of
// backoff burned seconds of wall clock. Routed through obs.Clock, a Manual
// clock serves 15 virtual seconds of backoff in milliseconds of wall time.
func TestRetryBackoffUsesVirtualClock(t *testing.T) {
	pol := PolicyNone()
	pol.VerifyReads = true
	pol.MaxAttempts = 3
	pol.RetryBackoff = 5.0 // 5s then 10s of virtual backoff — lethal if real
	pol.Deadline = 120.0

	vec := tensor.Vector{1, 0}
	pipe := &stubPipe{infer: func() (tensor.Vector, bool) { return vec.Clone(), false }}
	svc := NewService(pol, []*Replica{NewReplica(0, pipe, pol)}, nil, 1)
	defer svc.Close()
	clk := obs.NewManual(time.Unix(0, 0))
	svc.SetClock(clk)
	stop := driveManual(clk, 500*time.Millisecond)
	defer stop()

	t0 := time.Now()
	y, err := svc.Do(tensor.Vector{0})
	if err != nil {
		t.Fatalf("Do failed: %v", err)
	}
	if y == nil {
		t.Fatal("Do returned nil vector without error")
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("15s of virtual backoff took %v wall time — backoff is not on the injected clock", el)
	}
	c := svc.Counters()
	if c.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (MaxAttempts 3, every attempt suspect)", c.Retries)
	}
	if c.SuspectServed != 1 {
		t.Fatalf("SuspectServed = %d, want 1 (final attempt served the suspect read)", c.SuspectServed)
	}
}

// TestAttemptDeadlineSuspectAccounted is the satellite-2 regression test:
// the attempt deadline path returns a verify-failed suspect vector as
// ok=true, which used to be served with no accounting at all. It must now
// land in serve_suspect_served_total / Counters().SuspectServed.
//
// Choreography (all on the Manual clock): the primary attempt blocks until
// released, the hedge fires and blocks forever, the primary then completes
// verify-failed (suspect in hand, hedge still in flight), and finally the
// deadline fires — serving the suspect.
func TestAttemptDeadlineSuspectAccounted(t *testing.T) {
	pol := PolicyNone()
	pol.VerifyReads = true
	pol.MaxAttempts = 1
	pol.Hedge = true
	pol.HedgeQuantile = 0.85
	pol.HedgeMin = 1e-3
	pol.Deadline = 0.1

	vec := tensor.Vector{0, 1}
	var calls atomic.Int32
	var firstID atomic.Int32
	releasePrimary := make(chan struct{})
	releaseHedge := make(chan struct{})
	hedgeEntered := make(chan struct{})
	mkPipe := func(id int32) *stubPipe {
		return &stubPipe{infer: func() (tensor.Vector, bool) {
			if calls.Add(1) == 1 {
				firstID.Store(id)
				<-releasePrimary
				return vec.Clone(), false // verify-failed: the suspect
			}
			close(hedgeEntered)
			<-releaseHedge
			return vec.Clone(), true
		}}
	}
	reps := []*Replica{
		NewReplica(0, mkPipe(0), pol),
		NewReplica(1, mkPipe(1), pol),
	}
	svc := NewService(pol, reps, nil, 1)
	defer close(releaseHedge)
	defer svc.Close()
	clk := obs.NewManual(time.Unix(0, 0))
	svc.SetClock(clk)

	type doRes struct {
		y   tensor.Vector
		err error
	}
	resCh := make(chan doRes, 1)
	go func() {
		y, err := svc.Do(tensor.Vector{0})
		resCh <- doRes{y, err}
	}()

	// Let the primary dispatch, then advance past the hedge delay (1ms
	// floor) so the hedge launches into its forever-block.
	waitUntil(t, func() bool { return calls.Load() >= 1 })
	clk.Advance(2 * time.Millisecond)
	select {
	case <-hedgeEntered:
	case <-time.After(10 * time.Second):
		t.Fatal("hedge attempt never started")
	}

	// Release the primary; wait until its verify-failed result has been
	// folded into its health window (the suspect is now in hand), then fire
	// the deadline with the hedge still in flight.
	close(releasePrimary)
	primary := reps[firstID.Load()]
	waitUntil(t, func() bool { return primary.Health.HedgeDelay(0.5, 0, 0) > 0 })
	clk.Advance(200 * time.Millisecond)

	select {
	case r := <-resCh:
		if r.err != nil {
			t.Fatalf("Do failed: %v (suspect should have been served)", r.err)
		}
		if r.y == nil {
			t.Fatal("Do returned nil without error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do never returned after the deadline fired")
	}
	c := svc.Counters()
	if c.SuspectServed != 1 {
		t.Fatalf("SuspectServed = %d, want 1 — deadline path served a suspect without accounting", c.SuspectServed)
	}
	if c.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1", c.Hedges)
	}
	if c.Served != 1 {
		t.Fatalf("Served = %d, want 1", c.Served)
	}
}

// waitUntil polls cond with a generous wall-clock bound; these tests are
// event-choreographed, so the bound only trips on a real deadlock.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
