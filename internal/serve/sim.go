package serve

import (
	"container/heap"
	"math"

	"repro/internal/obs"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// LatencyModel maps the simulator's hardware operations onto virtual-time
// durations. The analog compute itself is executed for real (the crossbar
// ops run, faults inject, answers are right or wrong on their own merits);
// only elapsed time is modeled, which is what makes the event loop
// deterministic while still producing honest latency distributions.
type LatencyModel struct {
	// Base is the mean single-read service time in seconds; each attempt
	// draws Base·exp(N(0, Jitter)) (lognormal), and with probability
	// TailProb the draw is further multiplied by TailMult — the straggler
	// tail hedged reads exist to cut.
	Base     float64
	Jitter   float64
	TailProb float64
	TailMult float64
	// VerifyMult scales attempts that read twice (temporal redundancy).
	VerifyMult float64
	// BatchPerExtra is the marginal service-time cost of each extra sample
	// in a coalesced block, as a fraction of the single-attempt draw: a
	// K-request block costs attempt·(1 + BatchPerExtra·(K−1)). Values below
	// 1 model the periphery/dispatch amortization batched MVMs buy; the
	// field is consulted only by batched dispatches, so arms with batching
	// off are unaffected.
	BatchPerExtra float64
	// CanaryPerVec is the added replica busy time per canary vector.
	CanaryPerVec float64
	// DigitalMult scales Base for the digital float fallback path.
	DigitalMult float64
	// PulseTime and ReadTime price a recalibration pass from its actual
	// pulse and detect-read counts; RecalFloor is its minimum duration.
	PulseTime  float64
	ReadTime   float64
	RecalFloor float64
}

// DefaultLatencyModel is the R2 timing: ~1 ms reads against an 8 ms
// deadline, a 4% straggler tail an order of magnitude slower, and
// recalibrations costing tens of milliseconds — long enough that pulling a
// replica matters, short enough that it returns within the run.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		Base:       1e-3,
		Jitter:     0.25,
		TailProb:   0.04,
		TailMult:   9,
		VerifyMult: 1.8,
		// One extra coalesced sample costs a quarter of a lone read: the
		// block pays periphery once and streams the extra MVMs through the
		// already-open tiles.
		BatchPerExtra: 0.25,
		CanaryPerVec:  0.5e-3,
		DigitalMult:   3,
		PulseTime:     2e-7,
		ReadTime:      2e-6,
		RecalFloor:    0.05,
	}
}

// AttemptDuration draws one service-time sample from the model — the
// shared hot path of this simulator and the fleet simulator in
// internal/cluster, which prices node-local service time with the same
// distribution.
func (m LatencyModel) AttemptDuration(rng *rngutil.Source, verify bool) float64 {
	return m.attempt(rng, verify)
}

func (m LatencyModel) attempt(rng *rngutil.Source, verify bool) float64 {
	d := m.Base * math.Exp(rng.Normal(0, m.Jitter))
	if m.TailProb > 0 && rng.Bernoulli(m.TailProb) {
		d *= m.TailMult
	}
	if verify {
		d *= m.VerifyMult
	}
	return d
}

func (m LatencyModel) recal(st RecalStats) float64 {
	d := float64(st.Pulses)*m.PulseTime + float64(st.DetectReads)*m.ReadTime
	if d < m.RecalFloor {
		d = m.RecalFloor
	}
	return d
}

// SimRequest is one inference request of the campaign stream: an input and
// the digital-reference answer (argmax class) it is graded against.
type SimRequest struct {
	X    tensor.Vector
	Want int
}

// SimConfig drives one arm of the campaign through the virtual-time
// simulator.
type SimConfig struct {
	Policy Policy
	Lat    LatencyModel
	// Duration is the arrival window in virtual seconds; Rate the Poisson
	// arrival rate per second. Requests are drawn from the stream in order,
	// wrapping around.
	Duration float64
	Rate     float64
	Requests []SimRequest
	// Fallback is the digital float path (nil disables it regardless of
	// policy).
	Fallback func(tensor.Vector) tensor.Vector
	// RNG seeds the arrival and latency streams. Use the same seed across
	// arms (common random numbers) so policy differences, not draw
	// differences, separate them.
	RNG *rngutil.Source
	// Obs, when non-nil, accumulates the arm's counters and virtual-time
	// latency distribution into the shared registry; Tracer, when non-nil,
	// records one span per request with its lifecycle stages (queue →
	// dispatch → hedge → verify-read → complete). Both are fed exclusively
	// from virtual time, so their dumps are byte-identical at any -workers
	// value.
	Obs    *obs.Registry
	Tracer *obs.Tracer
}

// event kinds, in tie-break-irrelevant order (seq breaks ties).
const (
	evArrival = iota
	evDone
	evHedge
	evRetry
	evCanary
	evRecalDone
)

type simEvent struct {
	t    float64
	seq  int64
	kind int
	req  *simReq
	rep  *simReplica
	att  *simAttempt
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type simReq struct {
	SimRequest
	arrive   float64
	deadline float64
	attempts int
	backoff  float64
	inFlight int
	hedged   bool
	done     bool
	span     *obs.Span
}

type simAttempt struct {
	req     *simReq
	rep     *simReplica
	dur     float64
	correct bool
	ok      bool
	span    *obs.Span
}

type simReplica struct {
	*Replica
	freeAt     float64
	recalTries int
	recalling  bool
	dead       bool
	lastDiv    float64 // canary divergence measured by the last recal
}

// sim is the virtual-time discrete-event driver sharing the live Service's
// Policy/Health/Pipeline machinery. Single-threaded, heap-ordered by
// (time, seq): bit-identical tables at a fixed seed.
type sim struct {
	cfg   SimConfig
	reps  []*simReplica
	queue []*simReq
	h     eventHeap
	seq   int64
	rr    int
	arrRN *rngutil.Source
	latRN *rngutil.Source
	next  int // next request-stream index
	m     Metrics
	peakQ int // queue-depth high-water mark
}

// RunSim drives one policy arm over the replica pool and returns its
// metrics. The replicas' pipelines are consumed (faults accumulate);
// rebuild them per arm.
func RunSim(cfg SimConfig, replicas []*Replica) Metrics {
	if cfg.Policy.MaxAttempts <= 0 {
		cfg.Policy.MaxAttempts = 1
	}
	if cfg.Policy.QueueCap <= 0 {
		cfg.Policy.QueueCap = 64
	}
	s := &sim{
		cfg:   cfg,
		arrRN: cfg.RNG.Child("arrivals"),
		latRN: cfg.RNG.Child("latency"),
	}
	for _, r := range replicas {
		s.reps = append(s.reps, &simReplica{Replica: r})
	}
	s.push(s.nextArrival(0), evArrival, nil, nil, nil)
	if cfg.Policy.Watchdog && cfg.Policy.CanaryEvery > 0 {
		// Stagger the probes across the pool so canary busy time never
		// takes every replica out of service at the same instant.
		for i, r := range s.reps {
			offset := cfg.Policy.CanaryEvery * float64(i+1) / float64(len(s.reps))
			s.push(offset, evCanary, nil, r, nil)
		}
	}
	for s.h.Len() > 0 {
		e := heap.Pop(&s.h).(*simEvent)
		switch e.kind {
		case evArrival:
			s.onArrival(e.t)
		case evDone:
			s.onDone(e.t, e.att)
		case evHedge:
			s.onHedge(e.t, e.req, e.rep)
		case evRetry:
			s.onRetry(e.t, e.req)
		case evCanary:
			s.onCanary(e.t, e.rep)
		case evRecalDone:
			s.onRecalDone(e.t, e.rep)
		}
	}
	// Anything still queued when the event stream ran dry can never be
	// served: it expired waiting.
	for _, q := range s.queue {
		if !q.done {
			s.m.Expired++
			q.span.SetErr("expired")
			q.span.End(q.deadline)
		}
	}
	s.exportObs()
	return s.m
}

// exportObs folds the arm's final accounting into the shared registry. Arms
// run sequentially, so accumulation order — and therefore the stable dump —
// is deterministic.
func (s *sim) exportObs() {
	r := s.cfg.Obs
	if r == nil {
		return
	}
	add := func(name, help string, v int) {
		r.Counter(name, help).Add(int64(v))
	}
	add("serve_sim_offered_total", "requests offered to the simulated service", s.m.Offered)
	add("serve_sim_shed_total", "requests load-shed at a full queue", s.m.Shed)
	add("serve_sim_expired_total", "requests that missed their deadline before completing", s.m.Expired)
	add("serve_sim_late_total", "requests completed after their deadline", s.m.Late)
	add("serve_sim_unavailable_total", "requests with no replica in rotation and no fallback", s.m.Unavailable)
	add("serve_sim_completed_total", "requests that returned a result", s.m.Completed)
	add("serve_sim_good_total", "requests answered on time and correctly", s.m.Good)
	add("serve_sim_retries_total", "retry attempts scheduled", s.m.Retries)
	add("serve_sim_hedges_total", "hedged attempts dispatched", s.m.Hedges)
	add("serve_sim_recals_total", "recalibration passes started", s.m.Recals)
	add("serve_sim_fallbacks_total", "requests served by the digital fallback", s.m.Fallbacks)
	add("serve_sim_quarantines_total", "replica quarantine transitions", s.m.Quarantines)
	add("serve_sim_readmits_total", "quarantined replicas re-admitted after recalibration", s.m.Readmits)
	// Batch counters appear only when an arm actually coalesced, so the
	// stable dump of batching-off campaigns is unchanged byte for byte.
	if s.m.Batches > 0 {
		add("serve_sim_batches_total", "coalesced blocks dispatched by batching arms", s.m.Batches)
		add("serve_sim_coalesced_total", "requests served inside coalesced blocks", s.m.Coalesced)
	}
	h := r.Histogram("serve_sim_latency_seconds",
		"completion latency of simulated requests (virtual time, exact quantiles)", 0)
	for _, l := range s.m.latencies {
		h.Observe(l)
	}
	g := r.Gauge("serve_sim_queue_peak", "high-water mark of the simulated admission queue")
	if float64(s.peakQ) > g.Value() {
		g.Set(float64(s.peakQ))
	}
}

func (s *sim) push(t float64, kind int, req *simReq, rep *simReplica, att *simAttempt) {
	s.seq++
	heap.Push(&s.h, &simEvent{t: t, seq: s.seq, kind: kind, req: req, rep: rep, att: att})
}

func (s *sim) nextArrival(now float64) float64 {
	u := s.arrRN.Uniform(0, 1)
	if u <= 0 {
		u = 1e-12
	}
	return now - math.Log(u)/s.cfg.Rate
}

// pick returns the next free in-rotation replica, healthy first. allDown
// reports whether every replica is out of rotation entirely (quarantined
// or dead) — the fallback condition, distinct from "merely busy".
func (s *sim) pick(t float64, avoid *simReplica) (best *simReplica, allDown bool) {
	n := len(s.reps)
	start := s.rr
	s.rr = (s.rr + 1) % n
	allDown = true
	var degraded *simReplica
	for i := 0; i < n; i++ {
		r := s.reps[(start+i)%n]
		if r.dead || r.Health.State() == Quarantined {
			continue
		}
		allDown = false
		if r == avoid || r.freeAt > t {
			continue
		}
		switch r.Health.State() {
		case Healthy:
			return r, false
		case Degraded:
			if degraded == nil {
				degraded = r
			}
		}
	}
	return degraded, allDown
}

func (s *sim) onArrival(t float64) {
	if t <= s.cfg.Duration {
		// Admit this arrival and schedule the next while the window is open.
		s.push(s.nextArrival(t), evArrival, nil, nil, nil)
	} else {
		return
	}
	s.m.Offered++
	req := &simReq{
		SimRequest: s.cfg.Requests[s.next%len(s.cfg.Requests)],
		arrive:     t,
		deadline:   t + s.cfg.Policy.Deadline,
		backoff:    s.cfg.Policy.RetryBackoff,
		span:       s.cfg.Tracer.Start("request", t),
	}
	s.next++
	s.admit(t, req)
}

// admit routes a request: dispatch if a replica is free, fall back if the
// whole pool is down, queue if there is room, shed otherwise.
func (s *sim) admit(t float64, req *simReq) {
	rep, allDown := s.pick(t, nil)
	if rep != nil {
		s.dispatch(t, req, rep, false)
		return
	}
	if allDown {
		s.serveFallback(t, req)
		return
	}
	if len(s.queue) >= s.cfg.Policy.QueueCap {
		s.m.Shed++
		req.span.SetErr("shed")
		req.span.End(t)
		return
	}
	req.span.Stage("queue", t)
	s.queue = append(s.queue, req)
	if len(s.queue) > s.peakQ {
		s.peakQ = len(s.queue)
	}
}

func (s *sim) serveFallback(t float64, req *simReq) {
	if !s.cfg.Policy.Fallback || s.cfg.Fallback == nil {
		s.m.Unavailable++
		req.span.SetErr("unavailable")
		req.span.End(t)
		return
	}
	s.m.Fallbacks++
	req.span.Stage("fallback", t)
	y := s.cfg.Fallback(req.X)
	dur := s.cfg.Lat.Base * s.cfg.Lat.DigitalMult * math.Exp(s.latRN.Normal(0, s.cfg.Lat.Jitter))
	att := &simAttempt{req: req, dur: dur, correct: y.ArgMax() == req.Want, ok: true}
	req.inFlight++
	s.push(t+dur, evDone, req, nil, att)
}

// dispatch runs the real analog inference now (faults inject in event
// order) and schedules its completion after a modeled service time.
func (s *sim) dispatch(t float64, req *simReq, rep *simReplica, isHedge bool) {
	req.attempts++
	req.inFlight++
	attName := "attempt"
	if isHedge {
		attName = "hedge-attempt"
	} else {
		req.span.Stage("dispatch", t)
	}
	y, ok := rep.Infer(req.X, s.cfg.Policy.VerifyReads)
	dur := s.cfg.Lat.attempt(s.latRN, s.cfg.Policy.VerifyReads)
	rep.freeAt = t + dur
	att := &simAttempt{req: req, rep: rep, dur: dur, correct: y.ArgMax() == req.Want, ok: ok,
		span: req.span.Child(attName, t)}
	s.push(t+dur, evDone, req, rep, att)
	if s.cfg.Policy.Hedge && !isHedge && !req.hedged && len(s.reps) > 1 {
		d := rep.Health.HedgeDelay(s.cfg.Policy.HedgeQuantile, s.cfg.Policy.HedgeMin, s.cfg.Policy.Deadline)
		if t+d < t+dur { // hedging after completion would be pointless
			s.push(t+d, evHedge, req, rep, nil)
		}
	}
}

func (s *sim) onHedge(t float64, req *simReq, primary *simReplica) {
	if req.done || req.hedged {
		return
	}
	second, _ := s.pick(t, primary)
	if second == nil {
		return
	}
	req.hedged = true
	s.m.Hedges++
	req.span.Stage("hedge", t)
	s.dispatch(t, req, second, true)
}

func (s *sim) onDone(t float64, att *simAttempt) {
	req := att.req
	req.inFlight--
	if att.rep != nil {
		att.rep.Health.ObserveServe(att.dur, !att.ok)
	}
	if !att.ok {
		// The verify read disagreed with the forward read: the stage where
		// temporal redundancy caught (or at least suspected) a transient.
		req.span.Stage("verify-read", t)
		att.span.SetErr("verify-mismatch")
	}
	att.span.End(t)
	if !req.done {
		switch {
		case att.ok:
			s.complete(t, req, att.correct)
		case req.inFlight > 0:
			// A hedge is still running; let it race the retry decision.
		case req.attempts < s.cfg.Policy.MaxAttempts && t+req.backoff < req.deadline:
			s.m.Retries++
			s.push(t+req.backoff, evRetry, req, nil, nil)
			req.backoff *= 2
		default:
			// Out of attempts (or time): serve the suspect read rather
			// than nothing.
			s.complete(t, req, att.correct)
		}
	}
	if att.rep != nil {
		s.pump(t, att.rep)
	}
}

func (s *sim) onRetry(t float64, req *simReq) {
	if req.done {
		return
	}
	if t > req.deadline {
		s.m.Expired++
		req.done = true
		req.span.SetErr("expired")
		req.span.End(t)
		return
	}
	req.span.Stage("retry", t)
	s.admit(t, req)
}

func (s *sim) complete(t float64, req *simReq, correct bool) {
	req.done = true
	s.m.Completed++
	s.m.latencies = append(s.m.latencies, t-req.arrive)
	if correct {
		s.m.Correct++
	}
	if t <= req.deadline {
		if correct {
			s.m.Good++
		}
	} else {
		s.m.Late++
		req.span.SetErr("late")
	}
	req.span.Stage("complete", t)
	req.span.End(t)
}

// pump hands a freed replica the oldest still-live queued requests: one
// with batching off, up to Policy.BatchMax coalesced into a single block
// otherwise. Requests whose deadline already passed in the queue are
// expired here — before dispatch — with the same accounting either way, so
// a stale request never consumes replica time and is never double-counted.
func (s *sim) pump(t float64, rep *simReplica) {
	if rep.dead || rep.recalling || rep.freeAt > t || rep.Health.State() == Quarantined {
		return
	}
	max := s.cfg.Policy.BatchMax
	if max < 1 {
		max = 1
	}
	var batch []*simReq
	for len(s.queue) > 0 && len(batch) < max {
		req := s.queue[0]
		s.queue = s.queue[1:]
		if req.done {
			continue
		}
		if t > req.deadline {
			s.m.Expired++
			req.done = true
			req.span.SetErr("expired")
			req.span.End(t)
			continue
		}
		batch = append(batch, req)
	}
	switch len(batch) {
	case 0:
	case 1:
		// A lone survivor takes the ordinary dispatch path, so BatchMax=1
		// (and any block that coalesces to one) is bit-identical to the
		// unbatched service: same latency draw, same hedge eligibility.
		s.dispatch(t, batch[0], rep, false)
	default:
		s.dispatchBatch(t, batch, rep)
	}
}

// dispatchBatch runs one coalesced block: the analog inference executes as
// a single batched read (the sample-blocked MVM path, with Infer's verify
// discipline kept per sample), one service-time draw prices the whole
// block — scaled by BatchPerExtra per extra member — and every member
// completes at that same instant carrying its own correctness and verify
// verdict, so retry/fallback disposition stays per-request. Blocks are
// never hedged: hedging prices single stragglers, and a block already
// amortizes its dispatch.
func (s *sim) dispatchBatch(t float64, batch []*simReq, rep *simReplica) {
	s.m.Batches++
	s.m.Coalesced += len(batch)
	xs := make([]tensor.Vector, len(batch))
	for i, req := range batch {
		req.attempts++
		req.inFlight++
		req.span.Stage("dispatch", t)
		xs[i] = req.X
	}
	ys, oks := rep.InferBatch(xs, s.cfg.Policy.VerifyReads)
	dur := s.cfg.Lat.attempt(s.latRN, s.cfg.Policy.VerifyReads)
	dur *= 1 + s.cfg.Lat.BatchPerExtra*float64(len(batch)-1)
	rep.freeAt = t + dur
	for i, req := range batch {
		att := &simAttempt{req: req, rep: rep, dur: dur, correct: ys[i].ArgMax() == req.Want, ok: oks[i],
			span: req.span.Child("attempt", t)}
		s.push(t+dur, evDone, req, rep, att)
	}
}

func (s *sim) onCanary(t float64, rep *simReplica) {
	if rep.dead || rep.recalling {
		return
	}
	if t <= s.cfg.Duration {
		s.push(t+s.cfg.Policy.CanaryEvery, evCanary, nil, rep, nil)
	}
	if rep.Health.State() == Quarantined {
		return
	}
	div := rep.Canary()
	busy := float64(s.cfg.Policy.CanaryVectors) * s.cfg.Lat.CanaryPerVec
	if rep.freeAt < t {
		rep.freeAt = t
	}
	rep.freeAt += busy
	if rep.Health.ObserveCanary(div) == Quarantined {
		s.m.Quarantines++
		s.startRecal(t, rep)
	}
}

func (s *sim) startRecal(t float64, rep *simReplica) {
	rep.recalling = true
	s.m.Recals++
	st, div := rep.Recalibrate()
	rep.lastDiv = div
	s.push(t+s.cfg.Lat.recal(st), evRecalDone, nil, rep, nil)
}

func (s *sim) onRecalDone(t float64, rep *simReplica) {
	rep.recalling = false
	if rep.lastDiv <= s.cfg.Policy.ReadmitThresh {
		rep.recalTries = 0
		s.m.Readmits++
		rep.Health.Readmit(rep.lastDiv)
		rep.freeAt = t
		s.pump(t, rep)
		if t <= s.cfg.Duration && s.cfg.Policy.CanaryEvery > 0 {
			s.push(t+s.cfg.Policy.CanaryEvery, evCanary, nil, rep, nil)
		}
		return
	}
	if rep.recalTries < s.cfg.Policy.RecalMaxRetries {
		rep.recalTries++
		s.startRecal(t, rep)
		return
	}
	// Abandoned: the replica stays quarantined for good.
	rep.dead = true
}
