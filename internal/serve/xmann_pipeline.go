package serve

import (
	"repro/internal/crossbar"
	"repro/internal/rngutil"
	"repro/internal/tensor"
	"repro/internal/xmann"
)

// XMannPipelineConfig parameterizes one X-MANN distributed-memory replica.
type XMannPipelineConfig struct {
	// Model and Array configure the tiles (update mode is forced to
	// expected-pulse by the tile constructor either way).
	Model crossbar.Model
	Array crossbar.Config
	// Prog is the write-verify policy for programming and recalibration.
	Prog crossbar.ProgramPolicy
	// TileRows is the row partition of the memory across tiles.
	TileRows int
	// Beta is the similarity softmax temperature.
	Beta float64
	// VerifyTol and CanaryTol mirror MLPPipelineConfig.
	VerifyTol float64
	CanaryTol float64
}

// DefaultXMannPipelineConfig returns the R2 replica configuration. The
// tiles stay on ideal devices — the X-MANN arm isolates the serving layer's
// response to injected faults from PCM drift, which the MLP arm covers.
func DefaultXMannPipelineConfig() XMannPipelineConfig {
	return XMannPipelineConfig{
		Model:     crossbar.Ideal(),
		Array:     crossbar.DefaultConfig(),
		Prog:      crossbar.ProgramPolicy{MaxPulses: 800, MaxRetries: 2},
		TileRows:  8,
		Beta:      10,
		VerifyTol: 0.05,
		CanaryTol: 0.35,
	}
}

// XMannPipeline is a replica of an X-MANN differentiable memory: the golden
// memory matrix partitioned row-wise across transposable tiles, served
// through the two-op similarity dataflow of §III-A. Inference answers
// nearest-memory-row attention queries; the canary replays golden keys
// against xmann.ReferenceSimilarity.
type XMannPipeline struct {
	cfg     XMannPipelineConfig
	mem     *xmann.DistributedMemory
	golden  []*tensor.Matrix // per-tile golden sub-memories
	canaryK []tensor.Vector
	canaryY []tensor.Vector // digital reference attention distributions
}

// NewXMannPipeline programs one replica of goldenMem across fresh tiles.
// attach, if non-nil, receives each tile's array before programming.
func NewXMannPipeline(goldenMem *tensor.Matrix, canaryKeys []tensor.Vector, cfg XMannPipelineConfig, attach func(*crossbar.Array), rng *rngutil.Source) *XMannPipeline {
	if cfg.TileRows <= 0 {
		cfg.TileRows = 8
	}
	if cfg.Beta == 0 {
		cfg.Beta = 10
	}
	p := &XMannPipeline{cfg: cfg}
	for _, k := range canaryKeys {
		p.canaryK = append(p.canaryK, k.Clone())
		p.canaryY = append(p.canaryY, xmann.ReferenceSimilarity(goldenMem, k, cfg.Beta))
	}
	arrCfg := cfg.Array
	p.mem, _ = xmann.NewDistributedMemoryOpts(goldenMem, cfg.TileRows, xmann.MemoryOptions{
		Model:  cfg.Model,
		Cfg:    &arrCfg,
		Policy: &cfg.Prog,
		Attach: attach,
	}, rng)
	for start := 0; start < goldenMem.Rows; start += cfg.TileRows {
		end := tensor.MinInt(start+cfg.TileRows, goldenMem.Rows)
		sub := tensor.NewMatrix(end-start, goldenMem.Cols)
		copy(sub.Data, goldenMem.Data[start*goldenMem.Cols:end*goldenMem.Cols])
		p.golden = append(p.golden, sub)
	}
	return p
}

// Infer implements Pipeline: the attention distribution for one query key.
func (p *XMannPipeline) Infer(key tensor.Vector, verify bool) (tensor.Vector, bool) {
	y := p.mem.Similarity(key, p.cfg.Beta)
	if !verify {
		return y, true
	}
	y2 := p.mem.Similarity(key, p.cfg.Beta)
	return y2, relL2(y, y2) <= p.cfg.VerifyTol
}

// CanaryDivergence implements Pipeline.
func (p *XMannPipeline) CanaryDivergence() float64 {
	if len(p.canaryK) == 0 {
		return 0
	}
	diverged := 0
	for i, k := range p.canaryK {
		y := p.mem.Similarity(k, p.cfg.Beta)
		if y.ArgMax() != p.canaryY[i].ArgMax() || relL2(y, p.canaryY[i]) > p.cfg.CanaryTol {
			diverged++
		}
	}
	return float64(diverged) / float64(len(p.canaryK))
}

// Recalibrate implements Pipeline: write-verify every tile back to its
// golden sub-memory. Tiles have no spare columns, so there is no remap leg;
// saturated devices get the difference-preserving RESET first.
func (p *XMannPipeline) Recalibrate() RecalStats {
	var st RecalStats
	for ti, tile := range p.mem.Tiles {
		if tile.Array().MaxSaturation() > 0.85 {
			tile.Array().ResetAll()
		}
		rep := tile.ProgramVerify(p.golden[ti], p.cfg.Prog)
		st.Pulses += rep.Pulses
		st.Residual += rep.Residual / float64(len(p.mem.Tiles))
	}
	return st
}

var _ Pipeline = (*XMannPipeline)(nil)
