package tensor

import "math"

// Sigmoid returns 1/(1+exp(-x)).
func Sigmoid(x float64) float64 {
	// Split on sign to avoid overflow in exp for large |x|.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// SigmoidPrime returns the derivative of Sigmoid expressed in terms of the
// activation y = Sigmoid(x).
func SigmoidPrime(y float64) float64 { return y * (1 - y) }

// Tanh returns the hyperbolic tangent of x.
func Tanh(x float64) float64 { return math.Tanh(x) }

// TanhPrime returns the derivative of Tanh expressed in terms of the
// activation y = Tanh(x).
func TanhPrime(y float64) float64 { return 1 - y*y }

// ReLU returns max(0, x).
func ReLU(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// ReLUPrime returns the derivative of ReLU at pre-activation x (0 at x==0,
// the standard subgradient choice).
func ReLUPrime(x float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

// Apply returns a new vector with f applied element-wise.
func Apply(v Vector, f func(float64) float64) Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = f(x)
	}
	return out
}

// ApplyInPlace applies f element-wise, overwriting v.
func ApplyInPlace(v Vector, f func(float64) float64) {
	for i, x := range v {
		v[i] = f(x)
	}
}
