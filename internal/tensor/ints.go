package tensor

// Small integer helpers shared across packages (sizing tile grids, clamping
// pixel coordinates, bounding retry budgets). They live here because tensor
// is the one package everything else already imports.

// MinInt returns the smaller of a and b.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MaxInt returns the larger of a and b.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ClampInt limits v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
