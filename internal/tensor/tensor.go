// Package tensor implements the dense linear algebra used throughout the
// repository: vectors, row-major matrices, matrix-vector products (plain and
// transposed), rank-1 outer-product updates, reductions, norms, and the
// element-wise nonlinearities used by the neural-network substrate.
//
// Everything is float64. The analog-crossbar simulator, the digital baseline
// networks, and the accelerator cost models all express their functional
// behaviour in terms of this package, so its correctness properties are
// tested heavily (including with testing/quick).
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense 1-D array of float64.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Add adds w into v element-wise. It panics if lengths differ.
func (v Vector) Add(w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
}

// Sub subtracts w from v element-wise. It panics if lengths differ.
func (v Vector) Sub(w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] -= w[i]
	}
}

// Scale multiplies every element of v by a.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// AXPY computes v += a*w. It panics if lengths differ.
func (v Vector) AXPY(a float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: AXPY length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func Dot(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Hadamard returns the element-wise product of v and w.
func Hadamard(v, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Hadamard length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * w[i]
	}
	return out
}

// Norm1 returns the L1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the L∞ (max-abs) norm of v.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// ArgMax returns the index of the largest element, or -1 for an empty vector.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Clamp limits every element of v to [lo, hi].
func (v Vector) Clamp(lo, hi float64) {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
}

// CosineSimilarity returns the cosine of the angle between v and w, with the
// small epsilon regularization used by NTM-style content addressing. It is 0
// when either vector is (near-)zero.
func CosineSimilarity(v, w Vector) float64 {
	denom := v.Norm2()*w.Norm2() + 1e-12
	return Dot(v, w) / denom
}

// EuclideanDistance returns the L2 distance between v and w.
func EuclideanDistance(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: EuclideanDistance length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// ManhattanDistance returns the L1 distance between v and w.
func ManhattanDistance(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: ManhattanDistance length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += math.Abs(v[i] - w[i])
	}
	return s
}

// ChebyshevDistance returns the L∞ distance between v and w.
func ChebyshevDistance(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: ChebyshevDistance length mismatch %d vs %d", len(v), len(w)))
	}
	var m float64
	for i := range v {
		if d := math.Abs(v[i] - w[i]); d > m {
			m = d
		}
	}
	return m
}

// Softmax returns the softmax of v with temperature 1. The implementation is
// max-shifted for numerical stability; the result always lies on the
// probability simplex.
func Softmax(v Vector) Vector {
	return SoftmaxT(v, 1)
}

// SoftmaxT returns softmax(beta * v). beta > 1 sharpens, beta < 1 flattens.
func SoftmaxT(v Vector, beta float64) Vector {
	out := make(Vector, len(v))
	if len(v) == 0 {
		return out
	}
	maxv := math.Inf(-1)
	for _, x := range v {
		if bx := beta * x; bx > maxv {
			maxv = bx
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(beta*x - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape. It panics on
// negative dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Fill sets every element of m to x.
func (m *Matrix) Fill(x float64) {
	for i := range m.Data {
		m.Data[i] = x
	}
}

// Scale multiplies every element of m by a.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Add adds o into m element-wise. It panics on shape mismatch.
func (m *Matrix) Add(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: Matrix.Add shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	for i := range m.Data {
		m.Data[i] += o.Data[i]
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// MatVec computes y = m · x. It panics if len(x) != Cols.
func (m *Matrix) MatVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec length mismatch: %d cols vs %d", m.Cols, len(x)))
	}
	y := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, xj := range x {
			s += row[j] * xj
		}
		y[i] = s
	}
	return y
}

// MatVecT computes y = mᵀ · x without materializing the transpose. It panics
// if len(x) != Rows.
func (m *Matrix) MatVecT(x Vector) Vector {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVecT length mismatch: %d rows vs %d", m.Rows, len(x)))
	}
	y := make(Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j := range row {
			y[j] += row[j] * xi
		}
	}
	return y
}

// AddOuter performs the rank-1 update m += scale · (u ⊗ v), the digital
// reference for the crossbar's parallel weight update (Fig. 1 right).
// It panics if len(u) != Rows or len(v) != Cols.
func (m *Matrix) AddOuter(scale float64, u, v Vector) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuter shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, len(u), len(v)))
	}
	for i := 0; i < m.Rows; i++ {
		su := scale * u[i]
		if su == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += su * v[j]
		}
	}
}

// MatMul returns m · o. It panics if m.Cols != o.Rows.
func (m *Matrix) MatMul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*o.Cols : (i+1)*o.Cols]
		for k := 0; k < m.Cols; k++ {
			a := mrow[k]
			if a == 0 {
				continue
			}
			brow := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j := range orow {
				orow[j] += a * brow[j]
			}
		}
	}
	return out
}

// MaxAbs returns the largest absolute element of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, x := range m.Data {
		if a := math.Abs(x); a > best {
			best = a
		}
	}
	return best
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}
