package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randVec(r *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func randMat(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestVectorBasicOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	v.Add(w)
	want := Vector{5, 7, 9}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Add: got %v want %v", v, want)
		}
	}
	v.Sub(w)
	want = Vector{1, 2, 3}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Sub: got %v want %v", v, want)
		}
	}
	v.Scale(2)
	if v[2] != 6 {
		t.Fatalf("Scale: got %v", v)
	}
	v.AXPY(0.5, w)
	if !almostEqual(v[0], 4, 1e-12) {
		t.Fatalf("AXPY: got %v", v)
	}
}

func TestDot(t *testing.T) {
	if got := Dot(Vector{1, 2, 3}, Vector{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestNorms(t *testing.T) {
	v := Vector{3, -4}
	if v.Norm1() != 7 {
		t.Errorf("Norm1 = %v, want 7", v.Norm1())
	}
	if v.Norm2() != 5 {
		t.Errorf("Norm2 = %v, want 5", v.Norm2())
	}
	if v.NormInf() != 4 {
		t.Errorf("NormInf = %v, want 4", v.NormInf())
	}
}

func TestArgMax(t *testing.T) {
	if (Vector{}).ArgMax() != -1 {
		t.Error("ArgMax of empty should be -1")
	}
	if got := (Vector{1, 5, 3, 5}).ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first maximum)", got)
	}
}

func TestClamp(t *testing.T) {
	v := Vector{-2, 0.5, 3}
	v.Clamp(-1, 1)
	want := Vector{-1, 0.5, 1}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Clamp: got %v want %v", v, want)
		}
	}
}

func TestDistances(t *testing.T) {
	a := Vector{0, 0}
	b := Vector{3, 4}
	if EuclideanDistance(a, b) != 5 {
		t.Error("L2 distance wrong")
	}
	if ManhattanDistance(a, b) != 7 {
		t.Error("L1 distance wrong")
	}
	if ChebyshevDistance(a, b) != 4 {
		t.Error("Linf distance wrong")
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := Vector{1, 0}
	if got := CosineSimilarity(a, Vector{2, 0}); !almostEqual(got, 1, 1e-9) {
		t.Errorf("parallel cosine = %v, want 1", got)
	}
	if got := CosineSimilarity(a, Vector{0, 1}); !almostEqual(got, 0, 1e-9) {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := CosineSimilarity(a, Vector{-1, 0}); !almostEqual(got, -1, 1e-9) {
		t.Errorf("antiparallel cosine = %v, want -1", got)
	}
	if got := CosineSimilarity(Vector{0, 0}, a); !almostEqual(got, 0, 1e-9) {
		t.Errorf("zero-vector cosine = %v, want 0", got)
	}
}

func TestSoftmaxSimplex(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		v := randVec(r, 1+r.Intn(20))
		v.Scale(10) // stress stability
		s := Softmax(v)
		sum := 0.0
		for _, p := range s {
			if p < 0 || p > 1 {
				t.Fatalf("softmax element %v out of [0,1]", p)
			}
			sum += p
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Fatalf("softmax sums to %v", sum)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	s := Softmax(Vector{1000, 1000, 1000})
	for _, p := range s {
		if !almostEqual(p, 1.0/3, 1e-9) {
			t.Fatalf("softmax of equal large values = %v", s)
		}
	}
}

func TestSoftmaxTemperatureSharpens(t *testing.T) {
	v := Vector{1, 2}
	soft := SoftmaxT(v, 1)
	sharp := SoftmaxT(v, 10)
	if sharp[1] <= soft[1] {
		t.Errorf("higher beta should sharpen: beta=10 gives %v vs beta=1 %v", sharp[1], soft[1])
	}
}

func TestMatVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := m.MatVec(Vector{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v", y)
	}
}

func TestMatVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := m.MatVecT(Vector{1, 1})
	if y[0] != 5 || y[1] != 7 || y[2] != 9 {
		t.Fatalf("MatVecT = %v", y)
	}
}

// Property: MatVecT(m, x) == MatVec(Transpose(m), x).
func TestMatVecTMatchesExplicitTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+r.Intn(15), 1+r.Intn(15)
		m := randMat(r, rows, cols)
		x := randVec(r, rows)
		got := m.MatVecT(x)
		want := m.Transpose().MatVec(x)
		for j := range got {
			if !almostEqual(got[j], want[j], 1e-9) {
				t.Fatalf("MatVecT mismatch at %d: %v vs %v", j, got[j], want[j])
			}
		}
	}
}

// Property: (Aᵀ)ᵀ = A.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(10), 1+r.Intn(10)
		m := randMat(r, rows, cols)
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MatVec is linear: A(ax + by) = a·Ax + b·Ay.
func TestMatVecLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := randMat(r, rows, cols)
		x, y := randVec(r, cols), randVec(r, cols)
		a, b := r.NormFloat64(), r.NormFloat64()
		comb := make(Vector, cols)
		for j := range comb {
			comb[j] = a*x[j] + b*y[j]
		}
		lhs := m.MatVec(comb)
		mx, my := m.MatVec(x), m.MatVec(y)
		for i := range lhs {
			if !almostEqual(lhs[i], a*mx[i]+b*my[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: AddOuter adds exactly scale·u_i·v_j everywhere.
func TestAddOuter(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := randMat(r, rows, cols)
		before := m.Clone()
		u, v := randVec(r, rows), randVec(r, cols)
		scale := r.NormFloat64()
		m.AddOuter(scale, u, v)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want := before.At(i, j) + scale*u[i]*v[j]
				if !almostEqual(m.At(i, j), want, 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatMul(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := a.MatMul(b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

// Property: (AB)x == A(Bx).
func TestMatMulAssociatesWithMatVec(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n, k, m := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMat(r, n, k)
		b := randMat(r, k, m)
		x := randVec(r, m)
		lhs := a.MatMul(b).MatVec(x)
		rhs := a.MatVec(b.MatVec(x))
		for i := range lhs {
			if !almostEqual(lhs[i], rhs[i], 1e-8) {
				t.Fatalf("(AB)x != A(Bx): %v vs %v", lhs, rhs)
			}
		}
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Fill(3)
	if m.At(1, 1) != 3 {
		t.Error("Fill failed")
	}
	m.Set(0, 1, -7)
	if m.MaxAbs() != 7 {
		t.Errorf("MaxAbs = %v, want 7", m.MaxAbs())
	}
	m2 := m.Clone()
	m2.Scale(2)
	if m.At(0, 0) != 3 || m2.At(0, 0) != 6 {
		t.Error("Clone/Scale aliasing bug")
	}
	m.Add(m2)
	if m.At(0, 0) != 9 {
		t.Errorf("Add: got %v", m.At(0, 0))
	}
	if got := NewMatrix(2, 2).FrobeniusNorm(); got != 0 {
		t.Errorf("Frobenius of zero = %v", got)
	}
}

func TestRowAliases(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Error("Row should alias matrix storage")
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestHadamard(t *testing.T) {
	got := Hadamard(Vector{1, 2, 3}, Vector{4, 5, 6})
	want := Vector{4, 10, 18}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Hadamard = %v", got)
		}
	}
}

func TestActivations(t *testing.T) {
	if !almostEqual(Sigmoid(0), 0.5, 1e-12) {
		t.Error("Sigmoid(0) != 0.5")
	}
	// Sigmoid must not overflow for large |x|.
	if Sigmoid(1000) != 1 || Sigmoid(-1000) != 0 {
		t.Error("Sigmoid saturation wrong")
	}
	if SigmoidPrime(0.5) != 0.25 {
		t.Error("SigmoidPrime wrong")
	}
	if ReLU(-1) != 0 || ReLU(2) != 2 {
		t.Error("ReLU wrong")
	}
	if ReLUPrime(-1) != 0 || ReLUPrime(1) != 1 {
		t.Error("ReLUPrime wrong")
	}
	if !almostEqual(TanhPrime(Tanh(0.3)), 1-math.Tanh(0.3)*math.Tanh(0.3), 1e-12) {
		t.Error("TanhPrime wrong")
	}
}

func TestApply(t *testing.T) {
	v := Vector{-1, 2}
	out := Apply(v, ReLU)
	if out[0] != 0 || out[1] != 2 {
		t.Error("Apply wrong")
	}
	if v[0] != -1 {
		t.Error("Apply must not mutate input")
	}
	ApplyInPlace(v, ReLU)
	if v[0] != 0 {
		t.Error("ApplyInPlace must mutate input")
	}
}

// Numerical-gradient check: sigmoid derivative.
func TestSigmoidDerivativeNumerically(t *testing.T) {
	const h = 1e-6
	for _, x := range []float64{-2, -0.5, 0, 0.7, 3} {
		num := (Sigmoid(x+h) - Sigmoid(x-h)) / (2 * h)
		ana := SigmoidPrime(Sigmoid(x))
		if !almostEqual(num, ana, 1e-5) {
			t.Errorf("sigmoid'(%v): numeric %v vs analytic %v", x, num, ana)
		}
	}
}
