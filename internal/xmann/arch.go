// Package xmann models the X-MANN accelerator of §III (paper ref. [7]): a
// hierarchy of banks → subarrays → transposable crossbar-based processing
// tiles (TCPTs) with near-memory special function units (SFUs) and a global
// reduce unit, purpose-built for the differentiable-memory kernels of
// MANNs (similarity measure, soft read, soft write).
//
// The package has two layers: a functional layer (TCPT/DistributedMemory,
// built on the crossbar simulator, verified against the reference
// differentiable-memory math) and an analytic performance/energy layer.
// Circuit constants are calibrated so the suite-level ratios against the
// GPU baseline land in the paper's reported bands (23.7×–45.7× speedup,
// 75.1×–267.1× energy reduction) — DESIGN.md §4, substitution 3. The
// first-order structure is what matters: tile operations pay a settle time
// plus a shared-ADC scan over their outputs, tile-level parallelism is
// bounded by the fabric, SFUs are distributed with the tiles, and the
// global reduce is a log tree.
package xmann

import (
	"math"

	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Params are the architectural and circuit parameters of the accelerator.
type Params struct {
	// TileRows × TileCols is the TCPT crossbar geometry.
	TileRows, TileCols int

	// MaxParallelTiles bounds how many tiles operate concurrently (shared
	// drivers, power delivery, and bank buses); larger memories serialize
	// into batches.
	MaxParallelTiles int

	// SettleTime is the DAC + array settling time of one crossbar operation.
	SettleTime float64
	// ADCTime is the conversion time per output sample; a tile op's latency
	// is SettleTime + ADCTime × ceil(outputs / ADCsPerTile).
	ADCTime float64
	// ADCsPerTile is the number of shared ADCs scanning a tile's outputs.
	ADCsPerTile int
	// TileOpEnergy lumps DAC, array, S/H, shared-ADC and buffer energy of
	// one crossbar op on one tile.
	TileOpEnergy float64

	// UpdateLatency/Energy price one parallel rank-1 update per tile batch;
	// no ADC scan is needed for updates.
	UpdateLatency float64
	UpdateEnergy  float64

	// SFURate is the per-tile SFU element throughput; SFUs are distributed,
	// so aggregate throughput scales with active tiles.
	SFURate        float64
	SFUEnergyPerOp float64

	// ReduceRate/Energy price the global reduce tree (elements/s).
	ReduceRate          float64
	ReduceEnergyPerElem float64

	// Controller: the digital feedforward/LSTM controller integrated with
	// the fabric.
	CtrlRate         float64 // MAC/s
	CtrlEnergyPerMAC float64
}

// DefaultParams returns the calibrated configuration (see package comment).
func DefaultParams() Params {
	return Params{
		TileRows: 256, TileCols: 256,
		MaxParallelTiles:    32,
		SettleTime:          100e-9,
		ADCTime:             4e-9,
		ADCsPerTile:         8,
		TileOpEnergy:        100e-9,
		UpdateLatency:       100e-9,
		UpdateEnergy:        20e-9,
		SFURate:             32e9,
		SFUEnergyPerOp:      2e-12,
		ReduceRate:          64e9,
		ReduceEnergyPerElem: 0.5e-12,
		CtrlRate:            2e12,
		CtrlEnergyPerMAC:    1e-12,
	}
}

// Accelerator prices differentiable-memory operations on the X-MANN fabric.
type Accelerator struct {
	P Params
}

// New returns an accelerator with the given parameters.
func New(p Params) *Accelerator { return &Accelerator{P: p} }

// tiles reports the TCPT grid covering an M×D memory.
func (a *Accelerator) tiles(m, d int) (rowTiles, colTiles int) {
	rowTiles = (m + a.P.TileRows - 1) / a.P.TileRows
	colTiles = (d + a.P.TileCols - 1) / a.P.TileCols
	if rowTiles < 1 {
		rowTiles = 1
	}
	if colTiles < 1 {
		colTiles = 1
	}
	return rowTiles, colTiles
}

// batches reports how many serialized rounds nTiles take under the
// parallelism bound.
func (a *Accelerator) batches(nTiles int64) float64 {
	return math.Ceil(float64(nTiles) / float64(a.P.MaxParallelTiles))
}

// tileOp prices one crossbar operation replicated over nTiles tiles, each
// scanning `outputs` samples through its shared ADC.
func (a *Accelerator) tileOp(c *perfmodel.Cost, nTiles int64, outputs int) {
	scans := math.Ceil(float64(outputs) / float64(a.P.ADCsPerTile))
	opLat := a.P.SettleTime + a.P.ADCTime*scans
	c.Add("xmann.tile-op", nTiles, a.P.TileOpEnergy, 0)
	c.Latency += a.batches(nTiles) * opLat
}

// SimilarityCost prices one similarity-measure pass over an M×D memory:
// two crossbar operations per tile (dot products, then L1 norms via the
// all-ones vector, §III-A2), the distributed SFUs finishing division and
// softmax locally, and a scalar softmax-normalization reduce across tiles.
func (a *Accelerator) SimilarityCost(m, d int) *perfmodel.Cost {
	c := perfmodel.NewCost()
	rt, ct := a.tiles(m, d)
	nTiles := int64(rt) * int64(ct)
	rowsPerTile := tensor.MinInt(m, a.P.TileRows)
	a.tileOp(c, nTiles, rowsPerTile) // dot products
	a.tileOp(c, nTiles, rowsPerTile) // L1 norms
	// Distributed SFU: ≈4 element ops per memory row (divide, exp, scale),
	// running concurrently across tiles.
	sfuOps := int64(4 * m)
	c.Add("xmann.sfu", sfuOps, a.P.SFUEnergyPerOp, 0)
	c.Latency += 4 * float64(rowsPerTile) / a.P.SFURate
	// Softmax normalization: max and sum reduced across tiles (2 scalars
	// per tile through the log tree).
	elems := 2 * nTiles
	c.Add("xmann.reduce", elems, a.P.ReduceEnergyPerElem, 0)
	c.Latency += math.Ceil(math.Log2(float64(nTiles)+1)) * float64(2) / a.P.ReduceRate
	return c
}

// SoftReadCost prices one soft read (§III-A3): a single crossbar operation
// per tile with weights applied along rows (scanning the D columns), plus
// the cross-row-tile reduce of partial column sums.
func (a *Accelerator) SoftReadCost(m, d int) *perfmodel.Cost {
	c := perfmodel.NewCost()
	rt, ct := a.tiles(m, d)
	nTiles := int64(rt) * int64(ct)
	a.tileOp(c, nTiles, tensor.MinInt(d, a.P.TileCols))
	if rt > 1 {
		elems := int64(d) * int64(math.Ceil(math.Log2(float64(rt))))
		c.Add("xmann.reduce", elems, a.P.ReduceEnergyPerElem, 0)
		c.Latency += float64(d) * math.Ceil(math.Log2(float64(rt))) / a.P.ReduceRate
	}
	return c
}

// SoftWriteCost prices one soft write: a fully parallel rank-1 update on
// every tile plus the SFUs computing the erase/add vectors.
func (a *Accelerator) SoftWriteCost(m, d int) *perfmodel.Cost {
	c := perfmodel.NewCost()
	rt, ct := a.tiles(m, d)
	nTiles := int64(rt) * int64(ct)
	c.Add("xmann.update-op", nTiles, a.P.UpdateEnergy, 0)
	c.Latency += a.batches(nTiles) * a.P.UpdateLatency
	sfuOps := int64(2 * d)
	c.Add("xmann.sfu", sfuOps, a.P.SFUEnergyPerOp, 0)
	c.Latency += float64(2*tensor.MinInt(d, a.P.TileCols)) / a.P.SFURate
	return c
}

// ControllerCost prices the digital controller work of one time step.
func (a *Accelerator) ControllerCost(macs float64) *perfmodel.Cost {
	c := perfmodel.NewCost()
	c.Add("xmann.ctrl-macs", int64(macs), a.P.CtrlEnergyPerMAC, 0)
	c.Latency += macs / a.P.CtrlRate
	return c
}
