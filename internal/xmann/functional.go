package xmann

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// TCPT is the functional model of one transposable crossbar-based
// processing tile (§III-A): a crossbar array that can apply inputs along
// its columns and read currents along rows (dot products, L1 norms) or
// apply inputs along rows and read along columns (soft read), plus the
// parallel rank-1 soft write.
//
// The memory vectors are stored as rows, one crosspoint per element, and —
// as in differentiable memories, whose contents live in [0, 1] after
// squashing — are assumed non-negative so that the all-ones input computes
// L1 norms (the hardware uses differential line pairs for signed values).
type TCPT struct {
	arr *crossbar.Array
}

// NewTCPT builds an ideal-device tile (functional verification focuses on
// the dataflow; device non-idealities are the domain of package crossbar).
// Soft writes use expected-pulse updates: X-MANN's writes carry full
// attention weights, far beyond the single-train stochastic-update range.
func NewTCPT(rows, cols int, rng *rngutil.Source) *TCPT {
	cfg := crossbar.DefaultConfig()
	cfg.Update = crossbar.UpdateExpected
	return &TCPT{arr: crossbar.NewArray(rows, cols, crossbar.Ideal(), cfg, rng)}
}

// Program writes the memory contents (non-negative) into the tile.
func (t *TCPT) Program(m *tensor.Matrix) {
	for _, v := range m.Data {
		if v < 0 {
			panic("xmann: TCPT memory values must be non-negative")
		}
	}
	t.arr.Program(m, 8000)
}

// DotProducts applies the key along the columns and reads the per-row
// currents: dot(memory_i, key) for every stored vector, in one crossbar op.
func (t *TCPT) DotProducts(key tensor.Vector) tensor.Vector { return t.arr.Forward(key) }

// L1Norms applies the all-ones vector along the columns, yielding every
// row's L1 norm in a second crossbar op (§III-A2).
func (t *TCPT) L1Norms() tensor.Vector {
	ones := tensor.NewVector(t.arr.Cols())
	ones.Fill(1)
	return t.arr.Forward(ones)
}

// SoftRead applies the attention weights along the rows and reads columns:
// r = wᵀM in a single crossbar op (§III-A3).
func (t *TCPT) SoftRead(w tensor.Vector) tensor.Vector { return t.arr.Backward(w) }

// SoftWrite performs the additive soft write M += w ⊗ add as one parallel
// rank-1 update.
func (t *TCPT) SoftWrite(w, add tensor.Vector) { t.arr.Update(1, w, add) }

// Weights exposes the tile contents for verification.
func (t *TCPT) Weights() *tensor.Matrix { return t.arr.Weights() }

// DistributedMemory partitions an M×D differentiable memory row-wise across
// TCPTs, with the global reduce unit combining partial soft-read outputs —
// the X-MANN dataflow of Fig. 4.
type DistributedMemory struct {
	M, D     int
	TileRows int
	Tiles    []*TCPT
}

// NewDistributedMemory programs the memory matrix across ceil(M/tileRows)
// tiles.
func NewDistributedMemory(mem *tensor.Matrix, tileRows int, rng *rngutil.Source) *DistributedMemory {
	if tileRows <= 0 {
		panic("xmann: tileRows must be positive")
	}
	d := &DistributedMemory{M: mem.Rows, D: mem.Cols, TileRows: tileRows}
	for start := 0; start < mem.Rows; start += tileRows {
		end := start + tileRows
		if end > mem.Rows {
			end = mem.Rows
		}
		sub := tensor.NewMatrix(end-start, mem.Cols)
		copy(sub.Data, mem.Data[start*mem.Cols:end*mem.Cols])
		tile := NewTCPT(end-start, mem.Cols, rng.Child(fmt.Sprintf("tile%d", start)))
		tile.Program(sub)
		d.Tiles = append(d.Tiles, tile)
	}
	return d
}

// Similarity computes the attention distribution over all memory rows with
// the X-MANN similarity measure: softmax(β · dot_i / (‖m_i‖₁ + ε)),
// using two crossbar ops per tile plus the SFU math.
func (d *DistributedMemory) Similarity(key tensor.Vector, beta float64) tensor.Vector {
	scores := make(tensor.Vector, 0, d.M)
	for _, t := range d.Tiles {
		dots := t.DotProducts(key)
		norms := t.L1Norms()
		for i := range dots {
			scores = append(scores, dots[i]/(norms[i]+1e-9))
		}
	}
	return tensor.SoftmaxT(scores, beta)
}

// SoftRead computes r = wᵀM: each tile consumes its slice of w; the global
// reduce unit sums the partial outputs.
func (d *DistributedMemory) SoftRead(w tensor.Vector) tensor.Vector {
	if len(w) != d.M {
		panic("xmann: weight length mismatch")
	}
	out := tensor.NewVector(d.D)
	for ti, t := range d.Tiles {
		start := ti * d.TileRows
		part := t.SoftRead(w[start : start+t.arr.Rows()])
		out.Add(part)
	}
	return out
}

// SoftWrite applies the additive write across tiles.
func (d *DistributedMemory) SoftWrite(w, add tensor.Vector) {
	if len(w) != d.M {
		panic("xmann: weight length mismatch")
	}
	for ti, t := range d.Tiles {
		start := ti * d.TileRows
		t.SoftWrite(w[start:start+t.arr.Rows()], add)
	}
}

// ReferenceSimilarity is the digital reference for Similarity, used in
// verification.
func ReferenceSimilarity(mem *tensor.Matrix, key tensor.Vector, beta float64) tensor.Vector {
	scores := make(tensor.Vector, mem.Rows)
	for i := 0; i < mem.Rows; i++ {
		row := mem.Row(i)
		scores[i] = tensor.Dot(row, key) / (row.Norm1() + 1e-9)
	}
	return tensor.SoftmaxT(scores, beta)
}
